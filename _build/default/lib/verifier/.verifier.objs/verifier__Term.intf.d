lib/verifier/term.mli: Format Set
