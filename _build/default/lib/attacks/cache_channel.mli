(** Prime-probe cache covert channel.

    A second covert-channel medium (paper section 4.4.3: "other types of
    covert channels can also be monitored"): sender and receiver VMs share
    the server's last-level cache, and need not share a pCPU.  Time is
    divided into rounds (default 10 ms, matching the cache monitor's
    accounting window).  The receiver keeps a group of cache sets primed
    with its own lines; in each round the sender either thrashes those sets
    (bit 1) or stays quiet (bit 0); at the end of the round the receiver
    probes: many misses mean its lines were evicted — bit 1.

    Detection signature: both parties' per-window cache-miss counts
    alternate between quiet and loud with a wide gap — the
    [Cache_misses] source of the [Covert_channel_free] property. *)

type params = {
  round : Sim.Time.t;  (** signalling round, default 10 ms *)
  first_set : int;  (** first cache set of the target group *)
  group : int;  (** number of sets in the group, default 16 *)
  start_round : int;  (** rounds to wait before transmitting, default 4 *)
}

val default_params : params

val sender_program :
  Hypervisor.Cache.t ->
  owner:string ->
  ?params:params ->
  bits:bool list ->
  unit ->
  Hypervisor.Program.t
(** Transmit [bits], one per round, starting at [start_round]; then idle. *)

val receiver_program :
  Hypervisor.Cache.t ->
  owner:string ->
  ?params:params ->
  unit ->
  Hypervisor.Program.t * (unit -> (int * bool) list)
(** The receiver and an accessor for its decoded (round, bit) stream. *)

val received_bits : ?params:params -> count:int -> (int * bool) list -> bool list
(** Extract the [count] transmitted bits from the receiver's stream. *)

val sender_vm :
  Hypervisor.Cache.t ->
  vid:string ->
  owner:string ->
  ?params:params ->
  bits:bool list ->
  unit ->
  Hypervisor.Vm.t
(** A VM whose single vCPU runs the sender (the VM id is the cache owner,
    so the Monitor Module attributes the misses correctly). *)
