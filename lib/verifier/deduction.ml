type t = { know : Term.Set.t }

(* Saturation: repeatedly decompose everything decomposable.  Decryption
   needs derivability of the key, which itself depends on the current
   knowledge, so we iterate to a fixpoint; termination holds because each
   round only adds subterms of existing knowledge. *)

let rec derives_in know term =
  Term.Set.mem term know
  ||
  match term with
  | Term.Const _ -> true (* public constants are always constructible *)
  | Term.Fresh _ -> false
  | Term.Pub k -> derives_in know k
  | Term.Pair (a, b) -> derives_in know a && derives_in know b
  | Term.Senc (k, m) -> derives_in know k && derives_in know m
  | Term.Aenc (pk, m) -> derives_in know pk && derives_in know m
  | Term.Sign (sk, m) -> derives_in know sk && derives_in know m
  | Term.Hash m -> derives_in know m

let decompose_once know =
  let added = ref false in
  let know' = ref know in
  let add t =
    if not (Term.Set.mem t !know') then begin
      know' := Term.Set.add t !know';
      added := true
    end
  in
  Term.Set.iter
    (fun t ->
      match t with
      | Term.Pair (a, b) ->
          add a;
          add b
      | Term.Sign (_, m) -> add m (* signatures are not confidential *)
      | Term.Senc (k, m) -> if derives_in know k then add m
      | Term.Aenc (Term.Pub sk, m) -> if derives_in know sk then add m
      | Term.Aenc (_, _) | Term.Hash _ | Term.Pub _ | Term.Const _ | Term.Fresh _ -> ())
    know;
  (!know', !added)

let saturate know =
  let rec go know =
    let know', progressed = decompose_once know in
    if progressed then go know' else know'
  in
  go know

let of_list terms = { know = saturate (Term.Set.of_list terms) }

let add t term = { know = saturate (Term.Set.add term t.know) }

let knows t term = Term.Set.mem term t.know

let derives t term = derives_in t.know term

let atoms t = Term.Set.elements t.know

(* Constructive derivability: the same recursion as [derives_in], but
   returning the witness tree.  [Known] leaves are terms sitting in the
   saturated knowledge set (obtained there by interception or decomposition);
   [Build] nodes are attacker compositions from derivable parts. *)

type proof = Known of Term.t | Build of Term.t * proof list

let rec prove_in know term =
  if Term.Set.mem term know then Some (Known term)
  else
    let build parts =
      let rec all acc = function
        | [] -> Some (List.rev acc)
        | p :: rest -> (
            match prove_in know p with
            | Some proof -> all (proof :: acc) rest
            | None -> None)
      in
      Option.map (fun proofs -> Build (term, proofs)) (all [] parts)
    in
    match term with
    | Term.Const _ -> Some (Build (term, []))
    | Term.Fresh _ -> None
    | Term.Pub k -> build [ k ]
    | Term.Pair (a, b) -> build [ a; b ]
    | Term.Senc (k, m) -> build [ k; m ]
    | Term.Aenc (pk, m) -> build [ pk; m ]
    | Term.Sign (sk, m) -> build [ sk; m ]
    | Term.Hash m -> build [ m ]

let prove t term = prove_in t.know term

let rec pp_proof ppf = function
  | Known t -> Format.fprintf ppf "known %a" Term.pp t
  | Build (t, []) -> Format.fprintf ppf "public %a" Term.pp t
  | Build (t, parts) ->
      Format.fprintf ppf "@[<v 2>build %a from@,%a@]" Term.pp t
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_proof)
        parts
