(** Virtual-machine descriptors.

    A VM is defined by its image, flavor, owner and a workload factory that
    builds one behaviour program per vCPU.  The factory (rather than fixed
    programs) lets the same VM be re-instantiated after suspension or on a
    migration target. *)

type t = {
  vid : string;  (** unique VM identifier ({i Vid} in the protocol) *)
  owner : string;  (** customer name *)
  image : Image.t;
  flavor : Flavor.t;
  programs : unit -> Program.t list;  (** one program per vCPU *)
  guest : Guest_os.t;
}

val make :
  vid:string ->
  owner:string ->
  image:Image.t ->
  flavor:Flavor.t ->
  ?programs:(unit -> Program.t list) ->
  unit ->
  t
(** Default workload: every vCPU idles. *)

val idle_programs : Flavor.t -> unit -> Program.t list
