(* Tests for the hypervisor substrate: programs, credit scheduler, guest OS,
   images, flavors, servers. *)

open Hypervisor

let qtest = QCheck_alcotest.to_alcotest

(* --- Program ----------------------------------------------------------------- *)

let test_program_of_actions () =
  let p = Program.of_actions [ Program.Compute 5; Program.Sleep 3 ] in
  Alcotest.(check bool) "first" true (Program.next p ~now:0 = Program.Compute 5);
  Alcotest.(check bool) "second" true (Program.next p ~now:0 = Program.Sleep 3);
  Alcotest.(check bool) "then halts" true (Program.next p ~now:0 = Program.Halt)

let test_program_repeat () =
  let p = Program.of_actions ~repeat:true [ Program.Compute 1 ] in
  for _ = 1 to 5 do
    Alcotest.(check bool) "loops" true (Program.next p ~now:0 = Program.Compute 1)
  done

let test_program_empty_halts () =
  let p = Program.of_actions [] in
  Alcotest.(check bool) "halt" true (Program.next p ~now:0 = Program.Halt)

let test_program_compute_total () =
  let done_at = ref (-1) in
  let p =
    Program.compute_total ~chunk:(Sim.Time.ms 2) ~total:(Sim.Time.ms 5)
      ~on_done:(fun t -> done_at := t)
      ()
  in
  Alcotest.(check bool) "chunk 1" true (Program.next p ~now:0 = Program.Compute (Sim.Time.ms 2));
  Alcotest.(check bool) "chunk 2" true (Program.next p ~now:0 = Program.Compute (Sim.Time.ms 2));
  Alcotest.(check bool) "last partial chunk" true
    (Program.next p ~now:0 = Program.Compute (Sim.Time.ms 1));
  Alcotest.(check bool) "halts and reports" true (Program.next p ~now:77 = Program.Halt);
  Alcotest.(check int) "completion time" 77 !done_at

(* --- Scheduler helpers -------------------------------------------------------- *)

let make_sched ?(pcpus = 1) () =
  let engine = Sim.Engine.create () in
  (engine, Credit_scheduler.create ~engine ~pcpus ())

let busy_domain sched name ~pin =
  let d = Credit_scheduler.add_domain sched ~name ~weight:256 in
  ignore (Credit_scheduler.add_vcpu sched d ~pin (Program.busy_loop ()) : Credit_scheduler.vcpu);
  d

(* --- Scheduler: fairness and conservation -------------------------------------- *)

let test_sched_single_domain_full_cpu () =
  let engine, sched = make_sched () in
  let d = busy_domain sched "solo" ~pin:0 in
  Sim.Engine.run_until engine (Sim.Time.sec 5);
  Alcotest.(check int) "gets the whole CPU" (Sim.Time.sec 5)
    (Credit_scheduler.domain_runtime sched d)

let test_sched_equal_weights_fair () =
  let engine, sched = make_sched () in
  let d1 = busy_domain sched "a" ~pin:0 in
  let d2 = busy_domain sched "b" ~pin:0 in
  Sim.Engine.run_until engine (Sim.Time.sec 10);
  let r1 = Sim.Time.to_sec (Credit_scheduler.domain_runtime sched d1) in
  let r2 = Sim.Time.to_sec (Credit_scheduler.domain_runtime sched d2) in
  Alcotest.(check bool) "fair within 5%" true (abs_float (r1 -. r2) < 0.5);
  Alcotest.(check bool) "work-conserving" true (r1 +. r2 > 9.99)

let test_sched_weights_proportional () =
  let engine, sched = make_sched () in
  let heavy = Credit_scheduler.add_domain sched ~name:"heavy" ~weight:512 in
  ignore (Credit_scheduler.add_vcpu sched heavy ~pin:0 (Program.busy_loop ()));
  let light = Credit_scheduler.add_domain sched ~name:"light" ~weight:256 in
  ignore (Credit_scheduler.add_vcpu sched light ~pin:0 (Program.busy_loop ()));
  Sim.Engine.run_until engine (Sim.Time.sec 30);
  let rh = Sim.Time.to_sec (Credit_scheduler.domain_runtime sched heavy) in
  let rl = Sim.Time.to_sec (Credit_scheduler.domain_runtime sched light) in
  let ratio = rh /. rl in
  Alcotest.(check bool)
    (Printf.sprintf "2:1 weights give ~2:1 time (got %.2f)" ratio)
    true
    (ratio > 1.6 && ratio < 2.5)

let test_sched_conservation () =
  let engine, sched = make_sched ~pcpus:2 () in
  ignore (busy_domain sched "a" ~pin:0);
  ignore (busy_domain sched "b" ~pin:0);
  ignore (busy_domain sched "c" ~pin:1);
  Sim.Engine.run_until engine (Sim.Time.sec 7);
  Alcotest.(check int) "domain runtime = pcpu busy time"
    (Credit_scheduler.busy_time sched)
    (Credit_scheduler.total_runtime sched);
  Alcotest.(check bool) "never exceeds capacity" true
    (Credit_scheduler.total_runtime sched <= 2 * Sim.Time.sec 7)

let test_sched_idle_cpu_unused () =
  let engine, sched = make_sched ~pcpus:2 () in
  let d = busy_domain sched "a" ~pin:0 in
  Sim.Engine.run_until engine (Sim.Time.sec 3);
  Alcotest.(check int) "only one pCPU used" (Sim.Time.sec 3)
    (Credit_scheduler.domain_runtime sched d)

let test_sched_duty_cycle_share () =
  let engine, sched = make_sched () in
  let d = Credit_scheduler.add_domain sched ~name:"duty" ~weight:256 in
  ignore
    (Credit_scheduler.add_vcpu sched d ~pin:0
       (Program.duty_cycle ~run:(Sim.Time.ms 2) ~idle:(Sim.Time.ms 8)));
  Sim.Engine.run_until engine (Sim.Time.sec 10);
  let share = Sim.Time.to_sec (Credit_scheduler.domain_runtime sched d) /. 10.0 in
  Alcotest.(check bool)
    (Printf.sprintf "20%% duty (got %.2f)" share)
    true
    (share > 0.18 && share < 0.22)

(* --- Scheduler: bursts, boost, steal -------------------------------------------- *)

let test_sched_burst_histogram_slices () =
  let engine, sched = make_sched () in
  let d1 = busy_domain sched "a" ~pin:0 in
  ignore (busy_domain sched "b" ~pin:0);
  Sim.Engine.run_until engine (Sim.Time.sec 10);
  let hist = Credit_scheduler.burst_counts d1 in
  let total = Array.fold_left ( + ) 0 hist in
  Alcotest.(check bool) "bursts recorded" true (total > 100);
  (* Contending CPU-bound domains run full 30 ms slices. *)
  Alcotest.(check bool) "30ms bin dominates" true (hist.(29) > total * 9 / 10)

let test_sched_burst_trace () =
  let engine, sched = make_sched () in
  let d = busy_domain sched "a" ~pin:0 in
  Credit_scheduler.set_burst_trace d true;
  Sim.Engine.run_until engine (Sim.Time.ms 100);
  let trace = Credit_scheduler.burst_trace d in
  Alcotest.(check bool) "trace collected" true (List.length trace >= 3);
  let starts = List.map fst trace in
  Alcotest.(check (list int)) "chronological" (List.sort compare starts) starts;
  Credit_scheduler.set_burst_trace d false;
  Alcotest.(check int) "disabled clears" 0 (List.length (Credit_scheduler.burst_trace d))

let test_sched_clear_burst_counts () =
  let engine, sched = make_sched () in
  let d = busy_domain sched "a" ~pin:0 in
  ignore (busy_domain sched "b" ~pin:0);
  Sim.Engine.run_until engine (Sim.Time.sec 1);
  Credit_scheduler.clear_burst_counts d;
  Alcotest.(check int) "cleared" 0 (Array.fold_left ( + ) 0 (Credit_scheduler.burst_counts d))

let test_sched_boost_preempts () =
  (* A mostly-sleeping vCPU that wakes with credits preempts a CPU hog:
     its wake-to-run latency is far below the 30 ms slice. *)
  let engine, sched = make_sched () in
  ignore (busy_domain sched "hog" ~pin:0);
  let d = Credit_scheduler.add_domain sched ~name:"sleeper" ~weight:256 in
  let wake_latencies = ref [] in
  let sleep_until = ref 0 in
  let prog =
    Program.make (fun ~now ->
        if now >= !sleep_until then begin
          if !sleep_until > 0 then wake_latencies := (now - !sleep_until) :: !wake_latencies;
          sleep_until := now + Sim.Time.ms 50;
          Program.Sleep (Sim.Time.ms 50)
        end
        else Program.Compute (Sim.Time.ms 1))
  in
  ignore (Credit_scheduler.add_vcpu sched d ~pin:0 prog);
  Sim.Engine.run_until engine (Sim.Time.sec 5);
  Alcotest.(check bool) "several wakes" true (List.length !wake_latencies > 10);
  let avg =
    float_of_int (List.fold_left ( + ) 0 !wake_latencies)
    /. float_of_int (List.length !wake_latencies)
  in
  Alcotest.(check bool)
    (Printf.sprintf "boost latency well under a slice (got %.0f us)" avg)
    true (avg < 5_000.0)

let test_sched_waittime_accounting () =
  let engine, sched = make_sched () in
  let d1 = busy_domain sched "a" ~pin:0 in
  let d2 = busy_domain sched "b" ~pin:0 in
  Sim.Engine.run_until engine (Sim.Time.sec 10);
  (* Two contending CPU-bound domains: each runs ~5s and waits ~5s. *)
  let w1 = Sim.Time.to_sec (Credit_scheduler.domain_waittime sched d1) in
  let w2 = Sim.Time.to_sec (Credit_scheduler.domain_waittime sched d2) in
  Alcotest.(check bool) (Printf.sprintf "wait ~5s (got %.2f)" w1) true (abs_float (w1 -. 5.0) < 0.5);
  Alcotest.(check bool) (Printf.sprintf "wait ~5s (got %.2f)" w2) true (abs_float (w2 -. 5.0) < 0.5)

let test_sched_idle_domain_no_wait () =
  let engine, sched = make_sched () in
  ignore (busy_domain sched "hog" ~pin:0);
  let d = Credit_scheduler.add_domain sched ~name:"idle" ~weight:256 in
  ignore
    (Credit_scheduler.add_vcpu sched d ~pin:0
       (Program.duty_cycle ~run:(Sim.Time.us 100) ~idle:(Sim.Time.ms 100)));
  Sim.Engine.run_until engine (Sim.Time.sec 10);
  let wait = Sim.Time.to_sec (Credit_scheduler.domain_waittime sched d) in
  Alcotest.(check bool) (Printf.sprintf "near-zero wait (got %.3f)" wait) true (wait < 0.5)

(* --- Scheduler: IPIs, pause/resume, removal -------------------------------------- *)

let test_sched_ipi_wakes_sibling () =
  let engine, sched = make_sched ~pcpus:2 () in
  let d = Credit_scheduler.add_domain sched ~name:"pair" ~weight:256 in
  let woken = ref 0 in
  (* vCPU 0 sleeps forever; vCPU 1 IPIs it once after computing. *)
  let sleeper =
    Program.make (fun ~now:_ ->
        if !woken >= 0 then begin
          incr woken;
          Program.Sleep (Sim.Time.sec 3600)
        end
        else Program.Halt)
  in
  ignore (Credit_scheduler.add_vcpu sched d ~pin:0 sleeper);
  ignore
    (Credit_scheduler.add_vcpu sched d ~pin:1
       (Program.of_actions [ Program.Compute (Sim.Time.ms 1); Program.Ipi 0; Program.Halt ]));
  Sim.Engine.run_until engine (Sim.Time.sec 2);
  (* sleeper program consulted twice: initial dispatch and after IPI wake. *)
  Alcotest.(check int) "woken exactly once by IPI" 2 !woken

let test_sched_pause_stops_execution () =
  let engine, sched = make_sched () in
  let d = busy_domain sched "p" ~pin:0 in
  Sim.Engine.run_until engine (Sim.Time.sec 1);
  Credit_scheduler.pause_domain sched d;
  let r0 = Credit_scheduler.domain_runtime sched d in
  Sim.Engine.run_until engine (Sim.Time.sec 3);
  Alcotest.(check int) "no progress while paused" r0 (Credit_scheduler.domain_runtime sched d);
  Alcotest.(check bool) "is_paused" true (Credit_scheduler.is_paused d);
  Credit_scheduler.resume_domain sched d;
  Sim.Engine.run_until engine (Sim.Time.sec 4);
  Alcotest.(check bool) "resumes" true (Credit_scheduler.domain_runtime sched d > r0)

let test_sched_pause_preserves_sleep () =
  let engine, sched = make_sched () in
  let d = Credit_scheduler.add_domain sched ~name:"s" ~weight:256 in
  let wakes = ref 0 in
  let prog =
    Program.make (fun ~now:_ ->
        incr wakes;
        Program.Sleep (Sim.Time.sec 2))
  in
  ignore (Credit_scheduler.add_vcpu sched d ~pin:0 prog);
  Sim.Engine.run_until engine (Sim.Time.ms 500);
  (* vCPU is mid-sleep; pause for a while, resume, sleep should continue. *)
  Credit_scheduler.pause_domain sched d;
  Sim.Engine.run_until engine (Sim.Time.sec 10);
  Alcotest.(check int) "no wake while paused" 1 !wakes;
  Credit_scheduler.resume_domain sched d;
  Sim.Engine.run_until engine (Sim.Time.sec 13);
  Alcotest.(check bool) "sleep completed after resume" true (!wakes >= 2)

let test_sched_remove_domain () =
  let engine, sched = make_sched () in
  let d1 = busy_domain sched "gone" ~pin:0 in
  let d2 = busy_domain sched "stays" ~pin:0 in
  Sim.Engine.run_until engine (Sim.Time.sec 1);
  Credit_scheduler.remove_domain sched d1;
  let r2 = Credit_scheduler.domain_runtime sched d2 in
  Sim.Engine.run_until engine (Sim.Time.sec 3);
  Alcotest.(check int) "domain list shrinks" 1 (List.length (Credit_scheduler.domains sched));
  (* The survivor now gets the whole CPU. *)
  Alcotest.(check int) "survivor gets full CPU" (r2 + Sim.Time.sec 2)
    (Credit_scheduler.domain_runtime sched d2)

let test_sched_bad_pin_rejected () =
  let _, sched = make_sched ~pcpus:2 () in
  let d = Credit_scheduler.add_domain sched ~name:"d" ~weight:256 in
  Alcotest.check_raises "bad pin" (Invalid_argument "Credit_scheduler.add_vcpu: bad pCPU pin")
    (fun () -> ignore (Credit_scheduler.add_vcpu sched d ~pin:7 (Program.busy_loop ())))

let test_sched_halted_vcpu_frees_cpu () =
  let engine, sched = make_sched () in
  let d1 = Credit_scheduler.add_domain sched ~name:"batch" ~weight:256 in
  ignore
    (Credit_scheduler.add_vcpu sched d1 ~pin:0
       (Program.of_actions [ Program.Compute (Sim.Time.sec 1); Program.Halt ]));
  let d2 = busy_domain sched "bg" ~pin:0 in
  Sim.Engine.run_until engine (Sim.Time.sec 10);
  Alcotest.(check int) "batch ran exactly its work" (Sim.Time.sec 1)
    (Credit_scheduler.domain_runtime sched d1);
  Alcotest.(check int) "background got the rest" (Sim.Time.sec 9)
    (Credit_scheduler.domain_runtime sched d2)

(* --- Scheduler property tests: random workloads keep the invariants --------------- *)

let random_program prng =
  Program.make (fun ~now:_ ->
      match Sim.Prng.int prng 10 with
      | 0 | 1 | 2 | 3 -> Program.Compute (Sim.Time.us (Sim.Prng.int_in prng 50 40_000))
      | 4 | 5 | 6 -> Program.Sleep (Sim.Time.us (Sim.Prng.int_in prng 50 60_000))
      | 7 -> Program.Ipi (Sim.Prng.int prng 3)
      | 8 -> Program.Compute (Sim.Time.us (Sim.Prng.int_in prng 1 100))
      | _ -> Program.Sleep (Sim.Time.ms (Sim.Prng.int_in prng 1 5)))

let sched_random_invariants =
  QCheck.Test.make ~name:"random workloads: conservation and capacity" ~count:25
    QCheck.(pair small_int (int_range 1 3))
    (fun (seed, pcpus) ->
      let prng = Sim.Prng.create seed in
      let engine = Sim.Engine.create () in
      let sched = Credit_scheduler.create ~engine ~pcpus () in
      let ndoms = 1 + Sim.Prng.int prng 4 in
      let doms =
        List.init ndoms (fun i ->
            let d =
              Credit_scheduler.add_domain sched
                ~name:(Printf.sprintf "d%d" i)
                ~weight:(256 * (1 + Sim.Prng.int prng 3))
            in
            let nv = 1 + Sim.Prng.int prng 3 in
            for _ = 1 to nv do
              ignore (Credit_scheduler.add_vcpu sched d (random_program prng)
                       : Credit_scheduler.vcpu)
            done;
            d)
      in
      let horizon = Sim.Time.sec 5 in
      Sim.Engine.run_until engine horizon;
      let total = Credit_scheduler.total_runtime sched in
      let busy = Credit_scheduler.busy_time sched in
      total = busy
      && total <= pcpus * horizon
      && List.for_all
           (fun d ->
             Credit_scheduler.domain_runtime sched d >= 0
             && Credit_scheduler.domain_runtime sched d <= pcpus * horizon
             && Credit_scheduler.domain_waittime sched d >= 0)
           doms)

let sched_pause_random =
  QCheck.Test.make ~name:"random pause/resume keeps runtime monotone & frozen" ~count:15
    QCheck.small_int
    (fun seed ->
      let prng = Sim.Prng.create (seed + 1000) in
      let engine = Sim.Engine.create () in
      let sched = Credit_scheduler.create ~engine ~pcpus:2 () in
      let d1 = Credit_scheduler.add_domain sched ~name:"a" ~weight:256 in
      ignore (Credit_scheduler.add_vcpu sched d1 (random_program prng) : Credit_scheduler.vcpu);
      let d2 = Credit_scheduler.add_domain sched ~name:"b" ~weight:256 in
      ignore (Credit_scheduler.add_vcpu sched d2 (random_program prng) : Credit_scheduler.vcpu);
      let ok = ref true in
      let last = ref 0 in
      for _round = 1 to 5 do
        Sim.Engine.run_until engine (Sim.Engine.now engine + Sim.Time.ms (Sim.Prng.int_in prng 50 500));
        let r = Credit_scheduler.domain_runtime sched d1 in
        if r < !last then ok := false;
        last := r;
        Credit_scheduler.pause_domain sched d1;
        let frozen = Credit_scheduler.domain_runtime sched d1 in
        Sim.Engine.run_until engine (Sim.Engine.now engine + Sim.Time.ms (Sim.Prng.int_in prng 50 300));
        if Credit_scheduler.domain_runtime sched d1 <> frozen then ok := false;
        Credit_scheduler.resume_domain sched d1;
        last := frozen
      done;
      !ok)

(* --- Cache ------------------------------------------------------------------------- *)

let make_cache ?(sets = 8) ?(ways = 2) () =
  let engine = Sim.Engine.create () in
  (engine, Cache.create ~engine ~sets ~ways ())

let test_cache_hit_miss () =
  let _, c = make_cache () in
  Alcotest.(check bool) "cold miss" true (Cache.access c ~owner:"a" ~set:0 ~tag:1);
  Alcotest.(check bool) "warm hit" false (Cache.access c ~owner:"a" ~set:0 ~tag:1);
  Alcotest.(check bool) "different tag misses" true (Cache.access c ~owner:"a" ~set:0 ~tag:2);
  Alcotest.(check bool) "different set misses" true (Cache.access c ~owner:"a" ~set:1 ~tag:1);
  Alcotest.(check int) "misses counted" 3 (Cache.misses c ~owner:"a")

let test_cache_lru_eviction () =
  let _, c = make_cache ~ways:2 () in
  ignore (Cache.access c ~owner:"a" ~set:0 ~tag:1 : bool);
  ignore (Cache.access c ~owner:"a" ~set:0 ~tag:2 : bool);
  (* Touch tag 1 so tag 2 is LRU, then insert tag 3. *)
  ignore (Cache.access c ~owner:"a" ~set:0 ~tag:1 : bool);
  ignore (Cache.access c ~owner:"a" ~set:0 ~tag:3 : bool);
  Alcotest.(check bool) "MRU survives" false (Cache.access c ~owner:"a" ~set:0 ~tag:1);
  Alcotest.(check bool) "LRU evicted" true (Cache.access c ~owner:"a" ~set:0 ~tag:2)

let test_cache_cross_owner_eviction () =
  let _, c = make_cache ~ways:2 () in
  Cache.fill_set c ~owner:"victim" ~set:3;
  Alcotest.(check int) "primed lines hit" 0 (Cache.probe c ~owner:"victim" ~sets:[ 3 ]);
  Cache.fill_set c ~owner:"attacker" ~set:3;
  Alcotest.(check int) "probe sees full eviction" 2 (Cache.probe c ~owner:"victim" ~sets:[ 3 ])

let test_cache_miss_windows () =
  let engine, c = make_cache () in
  ignore (Cache.access c ~owner:"a" ~set:0 ~tag:0 : bool);
  Sim.Engine.run_until engine (Sim.Time.ms 25);
  ignore (Cache.access c ~owner:"a" ~set:0 ~tag:1 : bool);
  ignore (Cache.access c ~owner:"a" ~set:0 ~tag:2 : bool);
  let w = Cache.miss_windows c ~owner:"a" ~since:0 in
  Alcotest.(check (array int)) "per-window counts" [| 1; 0; 2 |] w;
  let w2 = Cache.miss_windows c ~owner:"a" ~since:(Sim.Time.ms 20) in
  Alcotest.(check (array int)) "since offset" [| 2 |] w2;
  Alcotest.(check (array int)) "unknown owner" [| 0; 0; 0 |]
    (Cache.miss_windows c ~owner:"zz" ~since:0)

let test_cache_forget_owner () =
  let _, c = make_cache () in
  Cache.fill_set c ~owner:"gone" ~set:0;
  Cache.forget_owner c "gone";
  Alcotest.(check int) "counters cleared" 0 (Cache.misses c ~owner:"gone");
  (* Lines are gone too: a re-fill misses everywhere. *)
  Alcotest.(check int) "lines dropped" 2 (Cache.probe c ~owner:"gone" ~sets:[ 0 ])

let test_cache_bounds () =
  let _, c = make_cache () in
  Alcotest.check_raises "set bounds" (Invalid_argument "Cache: set index out of range")
    (fun () -> ignore (Cache.access c ~owner:"a" ~set:99 ~tag:0))

(* --- Guest OS ---------------------------------------------------------------------- *)

let test_guest_visibility () =
  let g = Guest_os.create ~init:[ "init"; "sshd" ] () in
  let m = Guest_os.spawn g ~hidden:true "rootkit" in
  ignore (Guest_os.spawn g "nginx" : Guest_os.process);
  Alcotest.(check (list string)) "visible excludes hidden" [ "init"; "sshd"; "nginx" ]
    (Guest_os.visible_tasks g);
  Alcotest.(check (list string)) "kernel sees all" [ "init"; "sshd"; "rootkit"; "nginx" ]
    (Guest_os.kernel_tasks g);
  Alcotest.(check bool) "hidden flag" true m.Guest_os.hidden

let test_guest_hide_existing () =
  let g = Guest_os.create ~init:[ "init" ] () in
  let p = Guest_os.spawn g "miner" in
  Alcotest.(check bool) "hide succeeds" true (Guest_os.hide g p.Guest_os.pid);
  Alcotest.(check (list string)) "now hidden" [ "init" ] (Guest_os.visible_tasks g);
  Alcotest.(check bool) "hide unknown pid" false (Guest_os.hide g 9999)

let test_guest_kill () =
  let g = Guest_os.create ~init:[ "init" ] () in
  let p = Guest_os.spawn g "x" in
  Alcotest.(check bool) "kill" true (Guest_os.kill g p.Guest_os.pid);
  Alcotest.(check bool) "gone" false (List.mem "x" (Guest_os.kernel_tasks g));
  Alcotest.(check bool) "kill twice" false (Guest_os.kill g p.Guest_os.pid)

let test_guest_ima_log () =
  let g = Guest_os.create ~init:[ "init"; "sshd" ] () in
  ignore (Guest_os.spawn g ~hidden:true "rootkit" : Guest_os.process);
  let log = Guest_os.ima_log g in
  Alcotest.(check int) "all processes measured (hidden included)" 3 (List.length log);
  Alcotest.(check (option string)) "pristine hash recorded"
    (Some (Guest_os.pristine_hash "sshd"))
    (List.assoc_opt "sshd" log)

let test_guest_trojan_binary_hash () =
  let g = Guest_os.create ~init:[] () in
  let clean = Guest_os.spawn g "nginx" in
  let trojan = Guest_os.spawn g ~binary:"evil" "nginx" in
  Alcotest.(check bool) "same name, different hash" false
    (String.equal clean.Guest_os.binary_hash trojan.Guest_os.binary_hash);
  Alcotest.(check string) "clean one is pristine" (Guest_os.pristine_hash "nginx")
    clean.Guest_os.binary_hash

let test_guest_snapshot_independent () =
  let g = Guest_os.create ~init:[ "init" ] () in
  let snap = Guest_os.snapshot g in
  ignore (Guest_os.spawn g "later" : Guest_os.process);
  Alcotest.(check bool) "snapshot unaffected" false
    (List.mem "later" (Guest_os.kernel_tasks snap))

(* --- Image / Flavor ------------------------------------------------------------------ *)

let test_image_tamper_changes_hash () =
  let img = Image.make ~name:"test" ~size_mb:100 in
  let bad = Image.tamper img ~payload:"evil" in
  Alcotest.(check bool) "hash changes" false (String.equal (Image.hash img) (Image.hash bad));
  Alcotest.(check bool) "pristine" true (Image.is_pristine img);
  Alcotest.(check bool) "not pristine" false (Image.is_pristine bad);
  Alcotest.(check string) "same name" "test" (Image.name bad)

let test_image_golden_hashes () =
  List.iter
    (fun img ->
      Alcotest.(check string)
        (Image.name img ^ " golden")
        (Image.hash img)
        (Image.golden_hash ~name:(Image.name img)))
    [ Image.cirros; Image.fedora; Image.ubuntu ]

let test_flavor_lookup () =
  Alcotest.(check bool) "small" true (Flavor.of_name "small" = Some Flavor.small);
  Alcotest.(check bool) "unknown" true (Flavor.of_name "xxl" = None);
  Alcotest.(check int) "large vcpus" 4 Flavor.large.Flavor.vcpus

(* --- Server ----------------------------------------------------------------------------- *)

let make_server ?(secure = true) ?(mem_mb = 8192) () =
  let engine = Sim.Engine.create () in
  ( engine,
    Server.create ~engine ~name:"s1" ~pcpus:2 ~mem_mb ~secure ~key_bits:512 ~seed:"t" () )

let test_server_launch_and_memory () =
  let _, server = make_server () in
  let vm = Vm.make ~vid:"v1" ~owner:"a" ~image:Image.cirros ~flavor:Flavor.small () in
  (match Server.launch server vm with
  | Ok inst ->
      Alcotest.(check string) "image hash recorded" (Image.hash Image.cirros)
        inst.Server.image_hash_at_launch
  | Error `Insufficient_memory -> Alcotest.fail "launch failed");
  Alcotest.(check int) "memory accounted" (8192 - 2048) (Server.mem_free_mb server);
  Alcotest.(check bool) "find" true (Server.find server "v1" <> None);
  Alcotest.(check int) "instances" 1 (List.length (Server.instances server))

let test_server_memory_exhaustion () =
  let _, server = make_server ~mem_mb:3000 () in
  let vm1 = Vm.make ~vid:"v1" ~owner:"a" ~image:Image.cirros ~flavor:Flavor.small () in
  let vm2 = Vm.make ~vid:"v2" ~owner:"a" ~image:Image.cirros ~flavor:Flavor.small () in
  (match Server.launch server vm1 with
  | Ok _ -> ()
  | Error `Insufficient_memory -> Alcotest.fail "first should fit");
  (match Server.launch server vm2 with
  | Error `Insufficient_memory -> ()
  | Ok _ -> Alcotest.fail "second should not fit");
  Alcotest.(check bool) "destroy frees" true (Server.destroy server "v1");
  (match Server.launch server vm2 with
  | Ok _ -> ()
  | Error `Insufficient_memory -> Alcotest.fail "should fit after destroy")

let test_server_suspend_resume () =
  let engine, server = make_server () in
  let vm =
    Vm.make ~vid:"v1" ~owner:"a" ~image:Image.cirros ~flavor:Flavor.small
      ~programs:(fun () -> [ Program.busy_loop () ])
      ()
  in
  let inst = Result.get_ok (Server.launch server vm) in
  Sim.Engine.run_until engine (Sim.Time.sec 1);
  Alcotest.(check bool) "suspend" true (Server.suspend server "v1");
  Alcotest.(check bool) "suspend twice fails" false (Server.suspend server "v1");
  let r0 = Credit_scheduler.domain_runtime (Server.scheduler server) inst.Server.domain in
  Sim.Engine.run_until engine (Sim.Time.sec 2);
  Alcotest.(check int) "frozen" r0
    (Credit_scheduler.domain_runtime (Server.scheduler server) inst.Server.domain);
  Alcotest.(check bool) "resume" true (Server.resume server "v1")

let test_server_detach () =
  let _, server = make_server () in
  let vm = Vm.make ~vid:"v1" ~owner:"a" ~image:Image.cirros ~flavor:Flavor.small () in
  ignore (Result.get_ok (Server.launch server vm) : Server.instance);
  (match Server.detach server "v1" with
  | Some inst -> Alcotest.(check string) "vm travels" "v1" inst.Server.vm.Vm.vid
  | None -> Alcotest.fail "detach failed");
  Alcotest.(check bool) "gone" true (Server.find server "v1" = None);
  Alcotest.(check int) "memory freed" 8192 (Server.mem_free_mb server)

let test_server_measured_boot () =
  let _, server = make_server () in
  (match Server.trust_module server with
  | None -> Alcotest.fail "secure server has a trust module"
  | Some tm ->
      Alcotest.(check string) "pristine boot matches golden"
        Server.golden_platform_measurement
        (Tpm.Pcr.composite (Tpm.Trust_module.pcrs tm) [ 0; 1 ]));
  let engine2 = Sim.Engine.create () in
  let corrupted =
    Server.create ~engine:engine2 ~name:"bad" ~platform:Server.corrupted_platform
      ~key_bits:512 ~seed:"t" ()
  in
  match Server.trust_module corrupted with
  | None -> Alcotest.fail "trust module expected"
  | Some tm ->
      Alcotest.(check bool) "corrupted boot differs" false
        (String.equal Server.golden_platform_measurement
           (Tpm.Pcr.composite (Tpm.Trust_module.pcrs tm) [ 0; 1 ]))

let test_server_insecure_has_no_tm () =
  let _, server = make_server ~secure:false () in
  Alcotest.(check bool) "no trust module" true (Server.trust_module server = None);
  Alcotest.(check bool) "not secure" false (Server.is_secure server);
  Alcotest.(check (list string)) "no capabilities" [] (Server.capabilities server)

let test_server_per_vcpu_pins () =
  let engine, server = make_server () in
  let seen = ref [] in
  let prog id =
    Program.make (fun ~now:_ ->
        if not (List.mem id !seen) then seen := id :: !seen;
        Program.Compute (Sim.Time.ms 10))
  in
  let vm =
    Vm.make ~vid:"v1" ~owner:"a" ~image:Image.cirros ~flavor:Flavor.medium
      ~programs:(fun () -> [ prog 0; prog 1 ])
      ()
  in
  ignore (Result.get_ok (Server.launch server ~pins:[ Some 0; Some 1 ] vm) : Server.instance);
  Sim.Engine.run_until engine (Sim.Time.sec 1);
  let inst = Option.get (Server.find server "v1") in
  (* Both vCPUs on different pCPUs run in parallel: domain runtime is ~2x
     wall time. *)
  Alcotest.(check bool) "parallel execution" true
    (Credit_scheduler.domain_runtime (Server.scheduler server) inst.Server.domain
    > Sim.Time.ms 1900)

let () =
  Alcotest.run "hypervisor"
    [
      ( "program",
        [
          Alcotest.test_case "of_actions" `Quick test_program_of_actions;
          Alcotest.test_case "repeat" `Quick test_program_repeat;
          Alcotest.test_case "empty halts" `Quick test_program_empty_halts;
          Alcotest.test_case "compute_total" `Quick test_program_compute_total;
        ] );
      ( "scheduler-fairness",
        [
          Alcotest.test_case "solo gets full CPU" `Quick test_sched_single_domain_full_cpu;
          Alcotest.test_case "equal weights fair" `Quick test_sched_equal_weights_fair;
          Alcotest.test_case "weights proportional" `Quick test_sched_weights_proportional;
          Alcotest.test_case "conservation" `Quick test_sched_conservation;
          Alcotest.test_case "idle cpu unused" `Quick test_sched_idle_cpu_unused;
          Alcotest.test_case "duty cycle share" `Quick test_sched_duty_cycle_share;
        ] );
      ( "scheduler-measurement",
        [
          Alcotest.test_case "burst histogram slices" `Quick test_sched_burst_histogram_slices;
          Alcotest.test_case "burst trace" `Quick test_sched_burst_trace;
          Alcotest.test_case "clear burst counts" `Quick test_sched_clear_burst_counts;
          Alcotest.test_case "boost preempts" `Quick test_sched_boost_preempts;
          Alcotest.test_case "waittime accounting" `Quick test_sched_waittime_accounting;
          Alcotest.test_case "idle domain no wait" `Quick test_sched_idle_domain_no_wait;
        ] );
      ( "scheduler-lifecycle",
        [
          Alcotest.test_case "IPI wakes sibling" `Quick test_sched_ipi_wakes_sibling;
          Alcotest.test_case "pause stops execution" `Quick test_sched_pause_stops_execution;
          Alcotest.test_case "pause preserves sleep" `Quick test_sched_pause_preserves_sleep;
          Alcotest.test_case "remove domain" `Quick test_sched_remove_domain;
          Alcotest.test_case "bad pin rejected" `Quick test_sched_bad_pin_rejected;
          Alcotest.test_case "halted vcpu frees cpu" `Quick test_sched_halted_vcpu_frees_cpu;
        ] );
      ( "scheduler-properties",
        [ qtest sched_random_invariants; qtest sched_pause_random ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "cross-owner eviction" `Quick test_cache_cross_owner_eviction;
          Alcotest.test_case "miss windows" `Quick test_cache_miss_windows;
          Alcotest.test_case "forget owner" `Quick test_cache_forget_owner;
          Alcotest.test_case "bounds" `Quick test_cache_bounds;
        ] );
      ( "guest-os",
        [
          Alcotest.test_case "visibility" `Quick test_guest_visibility;
          Alcotest.test_case "hide existing" `Quick test_guest_hide_existing;
          Alcotest.test_case "kill" `Quick test_guest_kill;
          Alcotest.test_case "ima log" `Quick test_guest_ima_log;
          Alcotest.test_case "trojan binary hash" `Quick test_guest_trojan_binary_hash;
          Alcotest.test_case "snapshot" `Quick test_guest_snapshot_independent;
        ] );
      ( "image-flavor",
        [
          Alcotest.test_case "tamper changes hash" `Quick test_image_tamper_changes_hash;
          Alcotest.test_case "golden hashes" `Quick test_image_golden_hashes;
          Alcotest.test_case "flavor lookup" `Quick test_flavor_lookup;
        ] );
      ( "server",
        [
          Alcotest.test_case "launch and memory" `Quick test_server_launch_and_memory;
          Alcotest.test_case "memory exhaustion" `Quick test_server_memory_exhaustion;
          Alcotest.test_case "suspend/resume" `Quick test_server_suspend_resume;
          Alcotest.test_case "detach" `Quick test_server_detach;
          Alcotest.test_case "measured boot" `Quick test_server_measured_boot;
          Alcotest.test_case "insecure server" `Quick test_server_insecure_has_no_tm;
          Alcotest.test_case "per-vcpu pins" `Quick test_server_per_vcpu_pins;
        ] );
    ]
