lib/tpm/pcr.mli:
