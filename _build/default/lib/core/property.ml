type t = Startup_integrity | Runtime_integrity | Covert_channel_free | Cpu_availability

let all = [ Startup_integrity; Runtime_integrity; Covert_channel_free; Cpu_availability ]

let to_string = function
  | Startup_integrity -> "startup-integrity"
  | Runtime_integrity -> "runtime-integrity"
  | Covert_channel_free -> "covert-channel-free"
  | Cpu_availability -> "cpu-availability"

let of_string s = List.find_opt (fun p -> String.equal (to_string p) s) all

let pp ppf p = Format.pp_print_string ppf (to_string p)
let equal = Stdlib.( = )

let tag = function
  | Startup_integrity -> 1
  | Runtime_integrity -> 2
  | Covert_channel_free -> 3
  | Cpu_availability -> 4

let encode e p = Wire.Codec.Enc.u8 e (tag p)

let decode d =
  match Wire.Codec.Dec.u8 d with
  | 1 -> Startup_integrity
  | 2 -> Runtime_integrity
  | 3 -> Covert_channel_free
  | 4 -> Cpu_availability
  | _ -> raise (Wire.Codec.Error "bad property tag")

let encode_list e ps = Wire.Codec.Enc.list e (encode e) ps
let decode_list d = Wire.Codec.Dec.list d decode
