(* A small string-keyed LRU: hash table for lookup, intrusive doubly-linked
   list for recency order.  [find] promotes to most-recent; inserting past
   capacity evicts the least-recently-used entry.  Hit/miss counters feed
   the crypto bench and the memo's observability. *)

type 'a entry = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a entry option;  (** towards most recent *)
  mutable next : 'a entry option;  (** towards least recent *)
}

type 'a t = {
  capacity : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable head : 'a entry option;  (** most recently used *)
  mutable tail : 'a entry option;  (** least recently used *)
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be positive";
  { capacity; tbl = Hashtbl.create 64; head = None; tail = None; hits = 0; misses = 0 }

let length t = Hashtbl.length t.tbl
let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  e.prev <- None;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some e ->
      t.hits <- t.hits + 1;
      (match t.head with
      | Some h when h == e -> ()
      | _ ->
          unlink t e;
          push_front t e);
      Some e.value

let add t key value =
  match Hashtbl.find_opt t.tbl key with
  | Some e -> (
      e.value <- value;
      match t.head with
      | Some h when h == e -> ()
      | _ ->
          unlink t e;
          push_front t e)
  | None ->
      if Hashtbl.length t.tbl >= t.capacity then begin
        match t.tail with
        | None -> ()
        | Some lru ->
            unlink t lru;
            Hashtbl.remove t.tbl lru.key
      end;
      let e = { key; value; prev = None; next = None } in
      Hashtbl.replace t.tbl key e;
      push_front t e

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None;
  t.hits <- 0;
  t.misses <- 0
