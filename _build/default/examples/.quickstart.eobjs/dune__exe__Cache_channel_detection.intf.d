examples/cache_channel_detection.mli:
