(* Executable semantics: a well-typed phrase runs over the real Controller /
   Attestation Server / Attestation Client machinery.  The default phrase
   "a0.0" performs exactly one [Controller.attest] call with a fresh nonce —
   byte-identical wire traffic to the hardcoded flow (pinned by digest test).

   Weakened forms stay executable: a no-nonce appraisal reuses a fixed
   public constant as its nonce (the protocol still runs; only replay
   protection is gone, which the symbolic engine — not the simulator —
   catches), and an unauthenticated delegation executes like an
   authenticated one because the simulated infrastructure always
   authenticates: that weakening exists purely for {!Dy} to attack. *)

type leaf_result = {
  slot : int;
  vid : string;
  property : Core.Property.t;
  nonce : string;
  report : (Core.Protocol.controller_report, string) result;
}

type outcome = {
  status : Core.Report.status;
  leaves : leaf_result list;  (** execution order *)
  ledger : Core.Ledger.t;  (** merged compute + network costs *)
}

(* The fixed nonce a weakened (nonce = false) appraisal reuses every round. *)
let reused_nonce = Crypto.Sha256.digest "copland-reused-nonce"

let severity = function
  | Core.Report.Healthy -> 0
  | Core.Report.Unknown _ -> 1
  | Core.Report.Compromised _ -> 2

let worst a b = if severity a >= severity b then a else b
let best a b = if severity a <= severity b then a else b

let leaf_healthy l =
  match l.report with
  | Ok r -> Core.Report.is_healthy r.Core.Protocol.report
  | Error _ -> false

let run ?drbg cloud ~vids phrase =
  let env = Env.of_cloud cloud ~vids in
  match Typing.check env.Env.typing phrase with
  | Error e -> Error (Typing.error_to_string e)
  | Ok () ->
      let drbg =
        match drbg with Some d -> d | None -> Crypto.Drbg.create ~seed:"copland|interp"
      in
      let controller = Core.Cloud.controller cloud in
      let ledger = Core.Ledger.create () in
      let properties = Array.of_list Core.Property.all in
      let rec go ~route = function
        | Phrase.Appraise { slot; prop; nonce } ->
            let vid = vids.(slot) in
            let property = properties.(prop) in
            let nonce = if nonce then Crypto.Drbg.nonce drbg else reused_nonce in
            let req = { Core.Protocol.vid; property; nonce } in
            let result, sub =
              match route with
              | Some cluster -> Core.Controller.attest_routed controller ~cluster req
              | None -> Core.Controller.attest controller req
            in
            Core.Ledger.merge_into ledger sub;
            let leaf = { slot; vid; property; nonce; report = result } in
            let status =
              match result with
              | Ok r -> r.Core.Protocol.report.Core.Report.status
              | Error e -> Core.Report.Compromised ("protocol error: " ^ e)
            in
            (status, [ leaf ])
        | Phrase.Seq (a, b) ->
            let sa, la = go ~route a in
            let sb, lb = go ~route b in
            (worst sa sb, la @ lb)
        | Phrase.Par (m, a, b) ->
            (* The simulator runs branches in order; parallelism shows up in
               the latency estimate, while the merge policy decides the
               verdict. *)
            let sa, la = go ~route a in
            let sb, lb = go ~route b in
            let all = la @ lb in
            let status =
              match m with
              | Phrase.All -> worst sa sb
              | Phrase.Any -> best sa sb
              | Phrase.Quorum ->
                  let healthy = List.length (List.filter leaf_healthy all) in
                  if 2 * healthy > List.length all then Core.Report.Healthy
                  else worst sa sb
            in
            (status, all)
        | Phrase.Deleg { cluster; auth = _; body } -> go ~route:(Some cluster) body
        | Phrase.Layer { slot; checked; body } ->
            if not checked then go ~route body
            else begin
              Core.Ledger.add ledger "layer-appraise" Core.Costs.layer_appraise;
              let host = Option.value ~default:"" (env.Env.host_name slot) in
              match Option.bind (Core.Cloud.find_server cloud host) Hypervisor.Server.trust_backend with
              | None ->
                  (* Nothing dynamic to check on this host (classic module
                     soldered to the board): the layer is vacuously fresh. *)
                  go ~route body
              | Some backend ->
                  if Tpm.Backend.stale backend then
                    (* Restored-but-not-rebound state: refuse to run the
                       body at all — quotes routed through this host would
                       carry a stale binding. *)
                    ( Core.Report.Compromised
                        (Printf.sprintf
                           "layered appraisal: stale trust backend on %s (restored state \
                            not re-registered)"
                           host),
                      [] )
                  else go ~route body
            end
      in
      let status, leaves = go ~route:None phrase in
      Ok { status; leaves; ledger }
