type handle = int

type event = { time : Time.t; seq : int; id : handle; run : unit -> unit }

type t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  mutable next_id : int;
  queue : event Heap.t;
  cancelled : (handle, unit) Hashtbl.t;
  mutable live : int;
}

let cmp_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  {
    clock = Time.zero;
    next_seq = 0;
    next_id = 0;
    queue = Heap.create ~cmp:cmp_event;
    cancelled = Hashtbl.create 64;
    live = 0;
  }

let now t = t.clock

let schedule t ~at run =
  if at < t.clock then invalid_arg "Engine.schedule: time is in the past";
  let id = t.next_id in
  t.next_id <- id + 1;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.queue { time = at; seq; id; run };
  t.live <- t.live + 1;
  id

let schedule_after t ~delay run = schedule t ~at:(t.clock + delay) run

let cancel t h =
  if not (Hashtbl.mem t.cancelled h) then begin
    Hashtbl.replace t.cancelled h ();
    t.live <- t.live - 1
  end

let every t ~period ?until f =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  (* All ticks share one externally visible handle; cancelling it stops the
     recurrence because each tick re-checks the cancel table. *)
  let id = t.next_id in
  t.next_id <- id + 1;
  let rec tick at () =
    if not (Hashtbl.mem t.cancelled id) then begin
      f ();
      let next = at + period in
      let expired = match until with Some u -> next > u | None -> false in
      if not expired then
        ignore (schedule t ~at:next (tick next) : handle)
    end
  in
  ignore (schedule t ~at:(t.clock + period) (tick (t.clock + period)) : handle);
  id

let fire t ev =
  if Hashtbl.mem t.cancelled ev.id then Hashtbl.remove t.cancelled ev.id
  else begin
    t.live <- t.live - 1;
    t.clock <- ev.time;
    ev.run ()
  end

let run_until t horizon =
  let rec go () =
    match Heap.peek t.queue with
    | Some ev when ev.time <= horizon ->
        (match Heap.pop t.queue with Some e -> fire t e | None -> ());
        go ()
    | Some _ | None -> ()
  in
  go ();
  if horizon > t.clock then t.clock <- horizon

let run_all t ~limit =
  let rec go n =
    if n < limit then
      match Heap.pop t.queue with
      | Some ev ->
          fire t ev;
          go (n + 1)
      | None -> ()
  in
  go 0

let pending t = t.live
