lib/verifier/deduction.mli: Term
