lib/experiments/fig7.ml: Attacks Common Core Fig6 Format Hypervisor List Monitors Printf Sim Workloads
