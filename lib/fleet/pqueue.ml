type priority = Customer | Periodic | Recheck

let rank = function Customer -> 0 | Periodic -> 1 | Recheck -> 2

let priority_label = function
  | Customer -> "customer"
  | Periodic -> "periodic"
  | Recheck -> "recheck"

let all_priorities = [ Customer; Periodic; Recheck ]

let of_rank = function 0 -> Customer | 1 -> Periodic | _ -> Recheck

type 'a t = { depth : int; classes : 'a Stdlib.Queue.t array; mutable length : int }

type 'a admission = Enqueued | Evicted of priority * 'a | Rejected

let create ~depth =
  if depth <= 0 then invalid_arg "Pqueue.create: depth must be positive";
  { depth; classes = Array.init 3 (fun _ -> Stdlib.Queue.create ()); length = 0 }

let length t = t.length
let depth t = t.depth
let is_empty t = t.length = 0
let length_of t p = Stdlib.Queue.length t.classes.(rank p)

let push t p v =
  if t.length < t.depth then begin
    Stdlib.Queue.push v t.classes.(rank p);
    t.length <- t.length + 1;
    Enqueued
  end
  else begin
    (* Full: shed from the lowest-priority non-empty class below [p]. *)
    let victim = ref None in
    let r = rank p in
    (try
       for i = 2 downto r + 1 do
         if not (Stdlib.Queue.is_empty t.classes.(i)) then begin
           victim := Some i;
           raise Exit
         end
       done
     with Exit -> ());
    match !victim with
    | None -> Rejected
    | Some i ->
        let shed = Stdlib.Queue.pop t.classes.(i) in
        Stdlib.Queue.push v t.classes.(rank p);
        Evicted (of_rank i, shed)
  end

let pop t =
  let result = ref None in
  (try
     for i = 0 to 2 do
       if not (Stdlib.Queue.is_empty t.classes.(i)) then begin
         result := Some (of_rank i, Stdlib.Queue.pop t.classes.(i));
         raise Exit
       end
     done
   with Exit -> ());
  (match !result with Some _ -> t.length <- t.length - 1 | None -> ());
  !result
