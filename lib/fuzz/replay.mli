(** Deterministic scenario replay: executes an {!Op.scenario} against a
    fresh {!Core.Cloud} under the discrete-event engine, feeds every
    observation to the {!Oracle} library, and folds a determinism digest
    over the trace (same seed, same ops => same digest, bit for bit).

    The engine advances 1 ms before every op, so a verdict produced by an
    earlier op is strictly older than the current op's start time — that
    timestamp gap is how the oracles tell a cache-served verdict from a
    fresh measurement without trusting the cache's own counters. *)

(** Planted bugs for oracle validation (mutation testing of the fuzzer
    itself): the two [Skip_invalidate_*] mutants re-introduce a stale-cache
    hazard by re-storing pre-transition cache entries right after the
    transition the controller just invalidated; [Rebind_on_restore] makes
    the management plane silently re-register restored vTPM state with the
    Privacy CA, so stale-state quotes come back Healthy — the
    [vtpm-stale-binding] oracle must convict it; [Lazy_monitor] makes the
    continuous monitor wake only at op boundaries instead of chunking its
    catch-up through [Advance], so one long quiet stretch leaves every
    verdict stale — the [monitor-freshness] oracle must convict it. *)
type bug =
  | No_bug
  | Skip_invalidate_on_migrate
  | Skip_invalidate_on_resume
  | Rebind_on_restore
  | Lazy_monitor

type outcome = {
  scenario : Op.scenario;
  observations : Oracle.op_obs list;  (** in op order *)
  violations : Oracle.violation list;  (** oldest first *)
  digest : string;  (** SHA-256 over the per-op trace summaries *)
  vms_launched : int;
  attests_run : int;
      (** individual attestation results delivered, monitor probes included *)
}

val run : ?bug:bug -> Op.scenario -> outcome
