(* Ephemeral vTPM: a software trust module living inside the measured
   domain of a confidential VM (the e-vTPM model).  Unlike the classic
   hardware module its whole state — identity key, evidence registers,
   PCR bank — is serializable, because it IS part of the attested image.
   The price of that mobility is an explicit binding discipline: every
   endorsement carries the module's binding epoch, and restoring saved
   state (migration, suspend/resume, or a clone) marks the module STALE.
   A stale module keeps quoting, but its endorsements say so on the wire,
   and the Privacy CA refuses to certify them until the operator
   re-registers the module ([rebind]), which bumps the epoch. *)

type t = {
  mutable identity : Crypto.Rsa.keypair;
  drbg : Crypto.Drbg.t; (* device-local entropy; never part of saved state *)
  mutable registers : int array;
  pcrs : Pcr.t;
  key_bits : int;
  sessions : (string, Crypto.Rsa.keypair) Hashtbl.t;
  mutable epoch : int;
  mutable stale : bool;
}

let create ?(key_bits = 1024) ?(num_registers = 64) ?(num_pcrs = 16) ~seed () =
  let drbg = Crypto.Drbg.create ~seed:("evtpm|" ^ seed) in
  {
    identity = Crypto.Rsa.generate drbg ~bits:key_bits;
    drbg;
    registers = Array.make num_registers 0;
    pcrs = Pcr.create ~count:num_pcrs;
    key_bits;
    sessions = Hashtbl.create 4;
    epoch = 0;
    stale = false;
  }

let identity_public t = t.identity.Crypto.Rsa.public
let pcrs t = t.pcrs
let random_nonce t = Crypto.Drbg.nonce t.drbg
let drbg t = t.drbg
let binding_epoch t = t.epoch
let stale t = t.stale

let num_registers t = Array.length t.registers
let read_registers t = Array.copy t.registers

let check t i =
  if i < 0 || i >= Array.length t.registers then
    invalid_arg "Evtpm: register index out of range"

let write_register t i v =
  check t i;
  t.registers.(i) <- v

let add_register t i v =
  check t i;
  t.registers.(i) <- t.registers.(i) + v

let clear_registers t = Array.fill t.registers 0 (Array.length t.registers) 0

(* The epoch (and, after a restore, the stale marker) is baked into the
   bytes SKs signs, so a verifier cannot be talked into accepting a
   session key minted from un-rebound state: the endorsement itself
   confesses. *)
let endorsement_payload ~epoch ~stale pub =
  Printf.sprintf "evtpm-endorsement|epoch=%d|%s%s" epoch
    (if stale then "stale|" else "")
    (Crypto.Rsa.public_to_string pub)

let begin_session t =
  let kp = Crypto.Rsa.generate t.drbg ~bits:t.key_bits in
  Hashtbl.replace t.sessions (Crypto.Rsa.fingerprint kp.Crypto.Rsa.public) kp;
  {
    Trust_module.public = kp.Crypto.Rsa.public;
    endorsement =
      Crypto.Rsa.sign t.identity.Crypto.Rsa.secret
        (endorsement_payload ~epoch:t.epoch ~stale:t.stale kp.Crypto.Rsa.public);
  }

let sign_with_session t (session : Trust_module.session) payload =
  match Hashtbl.find_opt t.sessions (Crypto.Rsa.fingerprint session.public) with
  | None -> None
  | Some kp -> Some (Crypto.Rsa.sign kp.Crypto.Rsa.secret payload)

let end_session t (session : Trust_module.session) =
  Hashtbl.remove t.sessions (Crypto.Rsa.fingerprint session.public)

let quote_batch t session ~root ~nonce =
  sign_with_session t session (Trust_module.batch_quote_payload ~root ~nonce)

let sign_identity t msg = Crypto.Rsa.sign t.identity.Crypto.Rsa.secret msg
let decrypt_identity t cipher = Crypto.Rsa.decrypt t.identity.Crypto.Rsa.secret cipher

(* --- Serializable state --------------------------------------------------- *)

let state_magic = "cm-evtpm-state/1"

(* The saved image carries the identity secret as a plain (n, e, d) triple;
   a reconstituted secret loses its CRT acceleration but produces the same
   bytes (see Crypto.Rsa).  The stale flag is NOT part of the state: it is
   the act of restoring, not the bytes restored, that demands a rebind. *)
let save_state t =
  let pub = t.identity.Crypto.Rsa.public in
  Ok
    (Wire.Codec.encode (fun e ->
         Wire.Codec.Enc.str e state_magic;
         Wire.Codec.Enc.int e t.epoch;
         Wire.Codec.Enc.int e t.key_bits;
         Wire.Codec.Enc.str e (Crypto.Rsa.public_to_string pub);
         Wire.Codec.Enc.str e (Crypto.Bignum.to_hex t.identity.Crypto.Rsa.secret.Crypto.Rsa.d);
         Wire.Codec.Enc.list e (Wire.Codec.Enc.int e) (Array.to_list t.registers);
         Wire.Codec.Enc.list e (Wire.Codec.Enc.str e) (Array.to_list (Pcr.snapshot t.pcrs))))

let restore_state t blob =
  let parsed =
    Wire.Codec.decode_opt blob (fun d ->
        let magic = Wire.Codec.Dec.str d in
        if not (String.equal magic state_magic) then
          raise (Wire.Codec.Error "not an evtpm state image");
        let epoch = Wire.Codec.Dec.int d in
        let key_bits = Wire.Codec.Dec.int d in
        let pub_s = Wire.Codec.Dec.str d in
        let d_hex = Wire.Codec.Dec.str d in
        let registers = Wire.Codec.Dec.list d Wire.Codec.Dec.int in
        let pcr_values = Wire.Codec.Dec.list d Wire.Codec.Dec.str in
        (epoch, key_bits, pub_s, d_hex, registers, pcr_values))
  in
  match parsed with
  | None -> Error "malformed evtpm state image"
  | Some (epoch, key_bits, pub_s, d_hex, registers, pcr_values) -> (
      match Crypto.Rsa.public_of_string pub_s with
      | None -> Error "evtpm state image: bad identity key"
      | Some pub ->
          if key_bits <> t.key_bits then
            Error
              (Printf.sprintf "evtpm state image: key size %d does not fit device (%d)"
                 key_bits t.key_bits)
          else if List.length registers <> Array.length t.registers then
            Error "evtpm state image: register bank size mismatch"
          else begin
            match Pcr.load t.pcrs (Array.of_list pcr_values) with
            | Error why -> Error why
            | Ok () ->
                let d =
                  try Crypto.Bignum.of_hex d_hex
                  with Invalid_argument _ -> Crypto.Bignum.of_int 0
                in
                let secret = { Crypto.Rsa.pub; d; crt = None } in
                t.identity <- { Crypto.Rsa.public = pub; secret };
                t.registers <- Array.of_list registers;
                t.epoch <- epoch;
                (* Session secrets never survive a migration. *)
                Hashtbl.reset t.sessions;
                t.stale <- true;
                Ok ()
          end)

let rebind t =
  t.epoch <- t.epoch + 1;
  t.stale <- false;
  t.epoch
