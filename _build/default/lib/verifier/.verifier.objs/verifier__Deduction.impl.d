lib/verifier/deduction.ml: Term
