type t = { name : string; vcpus : int; mem_mb : int; disk_gb : int }

let small = { name = "small"; vcpus = 1; mem_mb = 2048; disk_gb = 20 }
let medium = { name = "medium"; vcpus = 2; mem_mb = 4096; disk_gb = 40 }
let large = { name = "large"; vcpus = 4; mem_mb = 8192; disk_gb = 80 }

let all = [ small; medium; large ]

let of_name n = List.find_opt (fun f -> String.equal f.name n) all

let pp ppf f =
  Format.fprintf ppf "%s(%d vcpu, %d MB, %d GB)" f.name f.vcpus f.mem_mb f.disk_gb
