(** Protocol-space experiment over Copland-style attestation phrases.

    Two sections.  The {e symbolic} section runs the generated Dolev-Yao
    model ({!Copland.Dy}) over a catalogue of named terms — the default
    phrase, the composition shapes, and deliberately weakened variants
    with their planted expected violations — and records whether each
    verdict came back as expected (default and shapes: all checks hold,
    zero attacks; weakened terms: every planted check id violated with at
    least one concrete attack).  The {e executable} section interprets the
    well-typed shapes over live clouds at two scales and compares the
    observed wire messages and non-network ledger compute against the
    static {!Copland.Estimate} envelope.

    Exit-status material: {!clean} is false when any symbolic verdict
    deviates from its planted expectation or any executed run leaves its
    estimate envelope — CI fails the bench step on it.  Everything is
    simulated and seeded, so the JSON artifact is byte-stable and
    committable. *)

type symbolic_row = {
  name : string;
  term : Copland.Phrase.t;
  weakened : bool;
  expected : string list;
      (** planted expectation: check ids that must be violated ([] = the
          term must verify cleanly) *)
  violated : string list;  (** what {!Copland.Dy} actually reported *)
  attacks : int;  (** concrete attacks attached to the report *)
  as_expected : bool;
}

type exec_row = {
  e_name : string;
  e_term : Copland.Phrase.t;
  servers : int;
  as_clusters : int;
  status : Core.Report.status;
  leaves : int;
  messages : int;  (** wire messages this run *)
  drops : int;  (** dropped messages (0 on these fault-free clouds) *)
  compute : Sim.Time.t;  (** ledger total minus the network labels *)
  estimate : Copland.Estimate.t;
  within_estimate : bool;
}

type result = { seed : int; symbolic : symbolic_row list; executable : exec_row list }

val run : ?seed:int -> unit -> result
val clean : result -> bool
val print : result -> unit
val to_json : result -> Json.t
