lib/net/ca.ml: Crypto Printf Wire
