module Codec = Wire.Codec

type attest_request = { vid : string; property : Property.t; nonce : string }

type as_request = { vid : string; server : string; property : Property.t; nonce : string }

type measure_request = { vid : string; requests_raw : string; nonce : string }

type measure_response = {
  vid : string;
  requests_raw : string;
  values_raw : string;
  nonce : string;
  quote : string;
  signature : string;
  avk : string;
  endorsement : string;
}

type as_report = {
  vid : string;
  server : string;
  property : Property.t;
  report : Report.t;
  nonce : string;
  quote : string;
  signature : string;
}

type controller_report = {
  vid : string;
  property : Property.t;
  report : Report.t;
  nonce : string;
  quote : string;
  signature : string;
}

(* --- Quotes ------------------------------------------------------------- *)

let q3 ~vid ~requests_raw ~values_raw ~nonce =
  Crypto.Sha256.digest_list [ "Q3|"; vid; "|"; requests_raw; "|"; values_raw; "|"; nonce ]

let q2 ~vid ~server ~property ~report ~nonce =
  Crypto.Sha256.digest_list
    [
      "Q2|";
      vid;
      "|";
      server;
      "|";
      Property.to_string property;
      "|";
      Codec.encode (fun e -> Report.encode e report);
      "|";
      nonce;
    ]

let q1 ~vid ~property ~report ~nonce =
  Crypto.Sha256.digest_list
    [
      "Q1|";
      vid;
      "|";
      Property.to_string property;
      "|";
      Codec.encode (fun e -> Report.encode e report);
      "|";
      nonce;
    ]

(* --- Signature payloads -------------------------------------------------- *)

let measure_response_payload (r : measure_response) =
  Codec.encode (fun e ->
      Codec.Enc.str e "measure-response";
      Codec.Enc.str e r.vid;
      Codec.Enc.str e r.requests_raw;
      Codec.Enc.str e r.values_raw;
      Codec.Enc.str e r.nonce;
      Codec.Enc.str e r.quote)

let as_report_payload (r : as_report) =
  Codec.encode (fun e ->
      Codec.Enc.str e "as-report";
      Codec.Enc.str e r.vid;
      Codec.Enc.str e r.server;
      Property.encode e r.property;
      Report.encode e r.report;
      Codec.Enc.str e r.nonce;
      Codec.Enc.str e r.quote)

let controller_report_payload (r : controller_report) =
  Codec.encode (fun e ->
      Codec.Enc.str e "controller-report";
      Codec.Enc.str e r.vid;
      Property.encode e r.property;
      Report.encode e r.report;
      Codec.Enc.str e r.nonce;
      Codec.Enc.str e r.quote)

(* --- Wire codecs ---------------------------------------------------------- *)

let encode_attest_request (r : attest_request) =
  Codec.encode (fun e ->
      Codec.Enc.str e r.vid;
      Property.encode e r.property;
      Codec.Enc.str e r.nonce)

let decode_attest_request s =
  Codec.decode_opt s (fun d ->
      let vid = Codec.Dec.str d in
      let property = Property.decode d in
      let nonce = Codec.Dec.str d in
      { vid; property; nonce })

let encode_as_request (r : as_request) =
  Codec.encode (fun e ->
      Codec.Enc.str e r.vid;
      Codec.Enc.str e r.server;
      Property.encode e r.property;
      Codec.Enc.str e r.nonce)

let decode_as_request s =
  Codec.decode_opt s (fun d ->
      let vid = Codec.Dec.str d in
      let server = Codec.Dec.str d in
      let property = Property.decode d in
      let nonce = Codec.Dec.str d in
      { vid; server; property; nonce })

let encode_measure_request (r : measure_request) =
  Codec.encode (fun e ->
      Codec.Enc.str e r.vid;
      Codec.Enc.str e r.requests_raw;
      Codec.Enc.str e r.nonce)

let decode_measure_request s =
  Codec.decode_opt s (fun d ->
      let vid = Codec.Dec.str d in
      let requests_raw = Codec.Dec.str d in
      let nonce = Codec.Dec.str d in
      { vid; requests_raw; nonce })

let encode_measure_response (r : measure_response) =
  Codec.encode (fun e ->
      Codec.Enc.str e r.vid;
      Codec.Enc.str e r.requests_raw;
      Codec.Enc.str e r.values_raw;
      Codec.Enc.str e r.nonce;
      Codec.Enc.str e r.quote;
      Codec.Enc.str e r.signature;
      Codec.Enc.str e r.avk;
      Codec.Enc.str e r.endorsement)

let decode_measure_response s =
  Codec.decode_opt s (fun d ->
      let vid = Codec.Dec.str d in
      let requests_raw = Codec.Dec.str d in
      let values_raw = Codec.Dec.str d in
      let nonce = Codec.Dec.str d in
      let quote = Codec.Dec.str d in
      let signature = Codec.Dec.str d in
      let avk = Codec.Dec.str d in
      let endorsement = Codec.Dec.str d in
      { vid; requests_raw; values_raw; nonce; quote; signature; avk; endorsement })

let encode_as_report (r : as_report) =
  Codec.encode (fun e ->
      Codec.Enc.str e r.vid;
      Codec.Enc.str e r.server;
      Property.encode e r.property;
      Report.encode e r.report;
      Codec.Enc.str e r.nonce;
      Codec.Enc.str e r.quote;
      Codec.Enc.str e r.signature)

let decode_as_report s =
  Codec.decode_opt s (fun d ->
      let vid = Codec.Dec.str d in
      let server = Codec.Dec.str d in
      let property = Property.decode d in
      let report = Report.decode d in
      let nonce = Codec.Dec.str d in
      let quote = Codec.Dec.str d in
      let signature = Codec.Dec.str d in
      { vid; server; property; report; nonce; quote; signature })

let encode_controller_report (r : controller_report) =
  Codec.encode (fun e ->
      Codec.Enc.str e r.vid;
      Property.encode e r.property;
      Report.encode e r.report;
      Codec.Enc.str e r.nonce;
      Codec.Enc.str e r.quote;
      Codec.Enc.str e r.signature)

let decode_controller_report s =
  Codec.decode_opt s (fun d ->
      let vid = Codec.Dec.str d in
      let property = Property.decode d in
      let report = Report.decode d in
      let nonce = Codec.Dec.str d in
      let quote = Codec.Dec.str d in
      let signature = Codec.Dec.str d in
      { vid; property; report; nonce; quote; signature })

(* --- Verification --------------------------------------------------------- *)

type verify_error =
  [ `Bad_signature | `Bad_quote | `Nonce_mismatch | `Vid_mismatch | `Bad_certificate ]

let pp_verify_error ppf = function
  | `Bad_signature -> Format.pp_print_string ppf "bad signature"
  | `Bad_quote -> Format.pp_print_string ppf "quote mismatch"
  | `Nonce_mismatch -> Format.pp_print_string ppf "nonce mismatch (replay?)"
  | `Vid_mismatch -> Format.pp_print_string ppf "VM id mismatch"
  | `Bad_certificate -> Format.pp_print_string ppf "bad attestation-key certificate"

let check cond err = if cond then Ok () else Error err

let ( let* ) = Result.bind

let verify_measure_response ~pca ~cert ~expected_vid ~expected_requests ~expected_nonce
    (r : measure_response) =
  match Crypto.Rsa.public_of_string r.avk with
  | None -> Error `Bad_certificate
  | Some avk ->
      let* () = check (Privacy_ca.check_certificate ~pca cert ~key:avk) `Bad_certificate in
      let* () =
        check (Crypto.Rsa.verify avk ~signature:r.signature (measure_response_payload r))
          `Bad_signature
      in
      let* () = check (String.equal r.vid expected_vid) `Vid_mismatch in
      let* () = check (String.equal r.requests_raw expected_requests) `Vid_mismatch in
      let* () = check (String.equal r.nonce expected_nonce) `Nonce_mismatch in
      check
        (String.equal r.quote
           (q3 ~vid:r.vid ~requests_raw:r.requests_raw ~values_raw:r.values_raw ~nonce:r.nonce))
        `Bad_quote

let verify_as_report ~key ~expected_vid ~expected_server ~expected_property ~expected_nonce
    (r : as_report) =
  let* () =
    check (Crypto.Rsa.verify key ~signature:r.signature (as_report_payload r)) `Bad_signature
  in
  let* () = check (String.equal r.vid expected_vid) `Vid_mismatch in
  let* () = check (String.equal r.server expected_server) `Vid_mismatch in
  let* () = check (Property.equal r.property expected_property) `Vid_mismatch in
  let* () = check (String.equal r.nonce expected_nonce) `Nonce_mismatch in
  check
    (String.equal r.quote
       (q2 ~vid:r.vid ~server:r.server ~property:r.property ~report:r.report ~nonce:r.nonce))
    `Bad_quote

let verify_controller_report ~key ~expected_vid ~expected_property ~expected_nonce
    (r : controller_report) =
  let* () =
    check
      (Crypto.Rsa.verify key ~signature:r.signature (controller_report_payload r))
      `Bad_signature
  in
  let* () = check (String.equal r.vid expected_vid) `Vid_mismatch in
  let* () = check (Property.equal r.property expected_property) `Vid_mismatch in
  let* () = check (String.equal r.nonce expected_nonce) `Nonce_mismatch in
  check
    (String.equal r.quote (q1 ~vid:r.vid ~property:r.property ~report:r.report ~nonce:r.nonce))
    `Bad_quote
