lib/core/attestation_server.mli: Crypto Format Interpret Ledger Net Privacy_ca Property Protocol Report Sim
