(** Append-only Merkle transparency log over signed attestation verdicts.

    The log stores raw entries (serialized signed AS reports), maintains
    the RFC 6962 tree over them with memoized interior nodes (an append
    costs O(log n) new hashes, a proof costs O(log n) lookups), and signs
    tree heads with the operator's key.  [append_with_receipt] is the
    verdict hot path: append, sign the new head, and return an inclusion
    receipt the customer can verify before accepting the verdict. *)

type t

val create :
  log_id:string -> key:Crypto.Rsa.secret -> ?clock:(unit -> Sim.Time.t) -> unit -> t
(** [clock] timestamps STHs; defaults to a clock stuck at zero. *)

val log_id : t -> string
val public_key : t -> Crypto.Rsa.public
val size : t -> int

val append : t -> string -> int
(** Appends an entry and returns its index. *)

val append_with_receipt : t -> string -> Receipt.t
(** Append plus a fresh signed head over the new size and the entry's
    inclusion proof.  Does not count as a periodic checkpoint. *)

val entry : t -> int -> string option

val root : t -> string
val root_at : t -> int -> string
(** [root_at t n] is the historical root over the first [n] entries
    ({!Crypto.Merkle.empty_root} for [n = 0]).  Raises [Invalid_argument]
    beyond the current size. *)

val checkpoint : t -> Sth.t
(** Sign and record a tree head over the current contents; the periodic
    (per [Sim.Engine.every] interval) commitment auditors gossip. *)

val latest_sth : t -> Sth.t option
(** Most recent head signed by {!checkpoint} or {!append_with_receipt}. *)

val inclusion : t -> size:int -> int -> Crypto.Merkle.proof
(** [inclusion t ~size i] proves entry [i] is in the tree over the first
    [size] entries; verifies with {!Crypto.Merkle.verify} against
    [root_at t size]. *)

val consistency : t -> old_size:int -> size:int -> string list
(** Proof that the tree at [old_size] is a prefix of the tree at [size];
    verifies with {!Crypto.Merkle.verify_consistency}. *)

val sub : t -> int -> int -> string
(** [sub t lo hi] is the memoized subtree root over entries [lo, hi). *)

(** {1 Counters} *)

val appends : t -> int
val checkpoints : t -> int
val proofs_served : t -> int
