(* Covert-channel detection (paper section 4.4):

     dune exec examples/covert_channel_detection.exe

   Mallory's VM leaks a secret bit string to a co-resident receiver by
   modulating how long it occupies their shared pCPU.  The customer-facing
   story: Bob (who owns the attested VM, here the suspect sender, e.g. a
   compliance-monitored workload) requests periodic attestation of the
   Covert_channel_free property.  The Monitor Module's Trust Evidence
   Registers accumulate the CPU-burst interval histogram; the Property
   Interpretation Module clusters it, finds two peaks at the signalling
   durations, and the Response Module migrates the VM away from its
   co-resident conspirator, cutting the channel. *)

open Core

let () =
  let config = { Cloud.default_config with key_bits = 512; pcpus = 2 } in
  let cloud = Cloud.build ~config () in
  let controller = Cloud.controller cloud in

  (* The covert payload: 200 random bits. *)
  let prng = Sim.Prng.create 7 in
  let bits = Attacks.Covert_channel.random_bits prng 200 in
  Controller.register_workload controller "exfiltrator" (fun _flavor () ->
      [ Attacks.Covert_channel.sender_program ~bits () ]);

  (* Bob launches his (secretly trojaned) VM with covert-channel
     monitoring; CloudMonatt places it on a secure server. *)
  let bob = Cloud.Customer.create cloud ~name:"bob" in
  let info =
    match
      Cloud.Customer.launch bob ~image:"ubuntu" ~flavor:"small"
        ~properties:[ Property.Covert_channel_free ]
        ~workload:"exfiltrator" ()
    with
    | Ok info -> info
    | Error e -> Format.kasprintf failwith "launch failed: %a" Cloud.Customer.pp_error e
  in
  let vid = info.Commands.vid in
  let host = Option.get (Controller.vm_host controller ~vid) in
  Printf.printf "Sender VM %s launched.\n" vid;

  (* Mallory's receiver lands on the same server and pCPU (in reality via
     co-residency probing; here we place it directly). *)
  let server = Option.get (Cloud.find_server cloud host) in
  let receiver_prog, stamps = Attacks.Covert_channel.receiver_program () in
  let first = ref (Some receiver_prog) in
  let receiver_vm =
    Hypervisor.Vm.make ~vid:"mallory-receiver" ~owner:"mallory"
      ~image:Hypervisor.Image.ubuntu ~flavor:Hypervisor.Flavor.small
      ~programs:(fun () ->
        match !first with
        | Some p ->
            first := None;
            [ p ]
        | None -> [ fst (Attacks.Covert_channel.receiver_program ()) ])
      ()
  in
  (match Hypervisor.Server.launch server ~pin:0 receiver_vm with
  | Ok _ -> ()
  | Error `Insufficient_memory -> failwith "receiver launch failed");
  print_endline "Co-resident receiver placed on the same pCPU. Channel is live.";

  (* Periodic attestation of the covert-channel property every 5 s. *)
  (match
     Cloud.Customer.attest_periodic bob ~vid ~property:Property.Covert_channel_free
       ~freq:(Sim.Time.sec 5)
       ~on_report:(fun r ->
         Format.printf "  periodic report: %a (%s)@." Report.pp_status r.Report.status
           r.Report.evidence)
       ()
   with
  | Ok () -> ()
  | Error e -> Format.printf "periodic error: %a@." Cloud.Customer.pp_error e);

  Cloud.run_for cloud (Sim.Time.sec 12);

  (* How much leaked before detection? *)
  let received = Attacks.Covert_channel.decode (stamps ()) in
  Printf.printf "\nBits the receiver decoded before the response: %d of %d (BER %.3f)\n"
    (List.length received) (List.length bits)
    (Attacks.Covert_channel.bit_error_rate
       ~sent:(List.filteri (fun i _ -> i < List.length received) bits)
       ~received);

  (match Controller.vm_host controller ~vid with
  | Some new_host ->
      Printf.printf "Sender VM now on %s (was %s) -- channel severed by migration.\n" new_host
        host
  | None -> print_endline "Sender VM terminated.");

  (* The channel is dead: the receiver decodes nothing new. *)
  let before = List.length (Attacks.Covert_channel.decode (stamps ())) in
  Cloud.run_for cloud (Sim.Time.sec 5);
  let after = List.length (Attacks.Covert_channel.decode (stamps ())) in
  Printf.printf "Bits decoded in the 5 s after the response: %d\n" (after - before);

  print_endline "\nController event log:";
  List.iter (fun e -> Printf.printf "  %s\n" e) (Controller.events controller)
