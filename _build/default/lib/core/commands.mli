(** Customer-facing command wire format — the API of paper Table 1 plus VM
    management, carried over the customer's secure channel to the Cloud
    Controller. *)

type command =
  | Launch of {
      image : string;
      flavor : string;
      properties : Property.t list;
      workload : string;  (** name in the controller's workload registry *)
    }
  | Attest_current of Protocol.attest_request
      (** Table 1 [startup_attest_current] / [runtime_attest_current] *)
  | Attest_periodic of { vid : string; property : Property.t; schedule : Schedule.t; nonce : string }
      (** Table 1 [runtime_attest_periodic]: fixed frequency or random intervals *)
  | Stop_periodic of { vid : string; property : Property.t; nonce : string }
      (** Table 1 [stop_attest_periodic] *)
  | Terminate of { vid : string }
  | Describe of { vid : string }

type launch_info = {
  vid : string;
  stages : (string * Sim.Time.t) list;
      (** per-stage launch times; the host name is deliberately not
          revealed to the customer *)
}

type reply =
  | Ok_launch of launch_info
  | Ok_report of Protocol.controller_report
  | Ok_ack
  | Ok_describe of { state : string; properties : Property.t list }
  | Err of string

val encode_command : command -> string
val decode_command : string -> command option
val encode_reply : reply -> string
val decode_reply : string -> reply option
