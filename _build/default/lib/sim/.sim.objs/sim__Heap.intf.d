lib/sim/heap.mli:
