test/test_workloads.ml: Alcotest Cloud_bench Hypervisor List Printf Sim Spec Workloads
