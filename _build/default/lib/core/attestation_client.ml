type t = {
  server : Hypervisor.Server.t;
  trust : Tpm.Trust_module.t;
  kernel : Monitors.Monitor_kernel.t;
  identity : Net.Secure_channel.Identity.t;
  mutable served : int;
}

let address_of name = "att:" ^ name

let address t = address_of (Hypervisor.Server.name t.server)
let server t = t.server
let kernel t = t.kernel
let identity t = t.identity
let requests_served t = t.served

let error_reply reason =
  Wire.Codec.encode (fun e ->
      Wire.Codec.Enc.u8 e 0;
      Wire.Codec.Enc.str e reason)

let ok_reply payload =
  Wire.Codec.encode (fun e ->
      Wire.Codec.Enc.u8 e 1;
      Wire.Codec.Enc.str e payload)

let handle t plaintext =
  match Protocol.decode_measure_request plaintext with
  | None -> error_reply "malformed measurement request"
  | Some req -> (
      match Monitors.Measurement.decode_requests req.requests_raw with
      | None -> error_reply "malformed measurement list"
      | Some requests -> (
          match Monitors.Monitor_kernel.collect t.kernel ~vid:req.vid requests with
          | Error (`Unknown_vm vid) -> error_reply ("unknown vm " ^ vid)
          | Error (`Unsupported r) ->
              error_reply ("unsupported measurement " ^ Monitors.Measurement.request_to_string r)
          | Ok values ->
              let values_raw = Monitors.Measurement.encode_values values in
              let session = Tpm.Trust_module.begin_session t.trust in
              let quote =
                Protocol.q3 ~vid:req.vid ~requests_raw:req.requests_raw ~values_raw
                  ~nonce:req.nonce
              in
              let unsigned =
                {
                  Protocol.vid = req.vid;
                  requests_raw = req.requests_raw;
                  values_raw;
                  nonce = req.nonce;
                  quote;
                  signature = "";
                  avk = Crypto.Rsa.public_to_string session.public;
                  endorsement = session.endorsement;
                }
              in
              let signature =
                match
                  Tpm.Trust_module.sign_with_session t.trust session
                    (Protocol.measure_response_payload unsigned)
                with
                | Some s -> s
                | None -> ""
              in
              Tpm.Trust_module.end_session t.trust session;
              t.served <- t.served + 1;
              ok_reply (Protocol.encode_measure_response { unsigned with signature })))

let create ~net ~ca ~seed server =
  match Hypervisor.Server.trust_module server with
  | None -> Error `Not_secure
  | Some trust ->
      (* The channel identity key is the Trust Module's identity keypair
         would be ideal; we give the attestation client its own CA-certified
         channel identity (as real deployments separate TLS keys from
         attestation keys) while the measurement signatures come from the
         Trust Module. *)
      let name = Hypervisor.Server.name server in
      let identity = Net.Secure_channel.Identity.make ca ~seed:(seed ^ "|attclient") ~name () in
      let t =
        {
          server;
          trust;
          kernel = Monitors.Monitor_kernel.create server;
          identity;
          served = 0;
        }
      in
      let channel_server =
        Net.Secure_channel.Server.create ~identity ~ca:(Net.Ca.public ca) ~seed
          ~on_request:(fun ~peer:_ plaintext -> handle t plaintext)
      in
      Net.Network.register net (address_of name) (Net.Secure_channel.Server.handle channel_server);
      Ok t

let measurement_cost (req : Protocol.measure_request) =
  let n =
    match Monitors.Measurement.decode_requests req.requests_raw with
    | Some rs -> List.length rs
    | None -> 1
  in
  Costs.session_keygen + Costs.quote_sign + (n * Costs.measurement_collect)
