type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr x =
  if Float.is_nan x || not (Float.is_finite x) then "null"
  else begin
    let s = Printf.sprintf "%.12g" x in
    (* "3" is a valid JSON number but loses the floatness; keep a ".0". *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"
  end

let to_string ?(indent = 2) t =
  let b = Buffer.create 1024 in
  let pad depth = if indent > 0 then Buffer.add_string b (String.make (depth * indent) ' ') in
  let nl () = if indent > 0 then Buffer.add_char b '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int v -> Buffer.add_string b (string_of_int v)
    | Float v -> Buffer.add_string b (float_repr v)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_char b '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_char b '{';
        nl ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad (depth + 1);
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b (if indent > 0 then "\": " else "\":");
            go (depth + 1) v)
          fields;
        nl ();
        pad depth;
        Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let write_file_result path t =
  match write_file path t with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg
