examples/covert_channel_detection.ml: Attacks Cloud Commands Controller Core Format Hypervisor List Option Printf Property Report Sim
