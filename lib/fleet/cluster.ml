type verdict = Done of Core.Report.status | Shed

type job = {
  vid : string;
  property : Core.Property.t;
  key : string * string;
  mutable waiters : (verdict -> unit) list;  (* newest first *)
}

type t = {
  engine : Sim.Engine.t;
  name : string;
  capacity : int;
  queue : job Pqueue.t;
  inflight : (string * string, job) Hashtbl.t;  (* queued or in service *)
  service_time : unit -> Sim.Time.t;
  measure : vid:string -> property:Core.Property.t -> Core.Report.status;
  metrics : Metrics.t;
  gauge : Sim.Stats.Gauge.t;
  mutable busy : int;
  (* Batch window (tentpole): with [batch_max > 1] a free slot serves up to
     [batch_max] queued jobs as ONE Merkle-batched measurement round.  When
     the queue is shorter than a full batch the slot waits up to
     [batch_window] for more arrivals — unless a Customer-priority request
     is waiting, which flushes immediately (interactive requests never
     trade latency for amortization). *)
  batch_max : int;
  batch_window : Sim.Time.t;
  batch_service_time : int -> Sim.Time.t;
  mutable gate : Sim.Engine.handle option;  (* armed window timer *)
  mutable ripe : bool;  (* window expired with jobs still queued *)
  (* Verdict transparency log (audit subsystem): every completed
     measurement is appended before its verdict is delivered.  [None]
     (the default) runs the pre-audit scheduler unchanged — no extra
     state, events or PRNG draws. *)
  mutable audit : Audit.Log.t option;
}

let create ~engine ~name ?(capacity = 1) ~queue_depth ~service_time ~measure ~metrics
    ?(batch_max = 1) ?(batch_window = 0) ?batch_service_time () =
  if capacity <= 0 then invalid_arg "Cluster.create: capacity must be positive";
  if batch_max <= 0 then invalid_arg "Cluster.create: batch_max must be positive";
  {
    engine;
    name;
    capacity;
    queue = Pqueue.create ~depth:queue_depth;
    inflight = Hashtbl.create 64;
    service_time;
    measure;
    metrics;
    gauge = Sim.Stats.Gauge.create ();
    busy = 0;
    batch_max;
    batch_window;
    batch_service_time =
      (match batch_service_time with
      | Some f -> f
      | None -> fun n -> n * service_time ());
    gate = None;
    ripe = false;
    audit = None;
  }

let set_audit t log = t.audit <- log
let audit t = t.audit

(* Canonical log-entry encoding for a completed measurement; what the
   auditors replay and what inclusion proofs commit to. *)
let audit_entry ~vid ~property status =
  let tag =
    match status with
    | Core.Report.Healthy -> "healthy"
    | Core.Report.Compromised r -> "compromised:" ^ r
    | Core.Report.Unknown r -> "unknown:" ^ r
  in
  vid ^ "|" ^ Core.Property.to_string property ^ "|" ^ tag

let record_verdict t job status =
  match t.audit with
  | None -> ()
  | Some log ->
      ignore
        (Audit.Log.append log (audit_entry ~vid:job.vid ~property:job.property status)
          : int);
      Metrics.record_audit_append t.metrics

let name t = t.name
let queue_length t = Pqueue.length t.queue
let inflight t = Hashtbl.length t.inflight
let queue_gauge t = t.gauge
let batches t = Metrics.batches t.metrics

let track_depth t =
  Sim.Stats.Gauge.set t.gauge
    ~now:(Sim.Time.to_sec (Sim.Engine.now t.engine))
    (Pqueue.length t.queue)

let finish job verdict = List.iter (fun w -> w verdict) (List.rev job.waiters)

(* The unbatched path, kept byte-for-byte: with [batch_max = 1] every
   scheduling decision and every [service_time] draw happens exactly as it
   did before batching existed, so batch-1 runs replay deterministically. *)
let rec maybe_start t =
  if t.busy < t.capacity then begin
    match Pqueue.pop t.queue with
    | None -> ()
    | Some (_, job) ->
        track_depth t;
        t.busy <- t.busy + 1;
        Metrics.record_measurement t.metrics;
        ignore
          (Sim.Engine.schedule_after t.engine ~delay:(t.service_time ()) (fun () ->
               t.busy <- t.busy - 1;
               (* Remove before delivering: a requester reacting to the
                  verdict (e.g. an immediate re-check) starts a fresh
                  measurement rather than joining this finished one. *)
               Hashtbl.remove t.inflight job.key;
               let status = t.measure ~vid:job.vid ~property:job.property in
               record_verdict t job status;
               finish job (Done status);
               maybe_start t)
            : Sim.Engine.handle);
        maybe_start t
  end

let disarm t =
  match t.gate with
  | Some h ->
      Sim.Engine.cancel t.engine h;
      t.gate <- None
  | None -> ()

(* Pop up to [batch_max] jobs and serve them as one batched round. *)
let rec flush t =
  disarm t;
  t.ripe <- false;
  let rec take acc n =
    if n = 0 then List.rev acc
    else
      match Pqueue.pop t.queue with
      | None -> List.rev acc
      | Some (_, job) -> take (job :: acc) (n - 1)
  in
  match take [] t.batch_max with
  | [] -> ()
  | jobs ->
      let n = List.length jobs in
      track_depth t;
      t.busy <- t.busy + 1;
      Metrics.record_batch t.metrics ~size:n;
      List.iter (fun _ -> Metrics.record_measurement t.metrics) jobs;
      ignore
        (Sim.Engine.schedule_after t.engine ~delay:(t.batch_service_time n) (fun () ->
             t.busy <- t.busy - 1;
             List.iter
               (fun job ->
                 Hashtbl.remove t.inflight job.key;
                 let status = t.measure ~vid:job.vid ~property:job.property in
                 record_verdict t job status;
                 finish job (Done status))
               jobs;
             maybe_start_batched t)
          : Sim.Engine.handle)

and maybe_start_batched t =
  if t.busy < t.capacity && not (Pqueue.is_empty t.queue) then begin
    let should_flush =
      t.ripe
      || Pqueue.length t.queue >= t.batch_max
      || Pqueue.length_of t.queue Pqueue.Customer > 0
      || t.batch_window = 0
    in
    if should_flush then begin
      flush t;
      maybe_start_batched t
    end
    else if t.gate = None then
      t.gate <-
        Some
          (Sim.Engine.schedule_after t.engine ~delay:t.batch_window (fun () ->
               t.gate <- None;
               t.ripe <- true;
               maybe_start_batched t))
  end

let kick t = if t.batch_max > 1 then maybe_start_batched t else maybe_start t

let submit t ~vid ~property ~priority ~on_done =
  let key = (vid, Core.Property.to_string property) in
  match Hashtbl.find_opt t.inflight key with
  | Some job ->
      (* Coalesce: share the pending measurement's verdict. *)
      job.waiters <- on_done :: job.waiters;
      Metrics.record_coalesced t.metrics
  | None -> (
      let job = { vid; property; key; waiters = [ on_done ] } in
      match Pqueue.push t.queue priority job with
      | Pqueue.Rejected ->
          Metrics.record_shed t.metrics priority;
          on_done Shed
      | Pqueue.Enqueued ->
          Hashtbl.replace t.inflight key job;
          track_depth t;
          kick t
      | Pqueue.Evicted (victim_priority, victim) ->
          Hashtbl.remove t.inflight victim.key;
          List.iter
            (fun w ->
              Metrics.record_shed t.metrics victim_priority;
              w Shed)
            (List.rev victim.waiters);
          Hashtbl.replace t.inflight key job;
          track_depth t;
          kick t)
