type t = int

let zero = 0
let us n = n
let ms n = n * 1_000
let sec n = n * 1_000_000
let minutes n = n * 60_000_000
let of_ms_float x = int_of_float (Float.round (x *. 1_000.))
let to_ms t = float_of_int t /. 1_000.
let to_sec t = float_of_int t /. 1_000_000.

let pp ppf t =
  if t < 1_000 then Format.fprintf ppf "%dus" t
  else if t < 1_000_000 then Format.fprintf ppf "%.3fms" (to_ms t)
  else Format.fprintf ppf "%.3fs" (to_sec t)
