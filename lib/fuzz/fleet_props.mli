(** Fleet-level property fuzzing: random small {!Fleet.Driver} configs,
    checked against invariants the driver promises for {e every}
    configuration.

    - [fleet-conservation] — every offered request is accounted for:
      offered = served + shed (per class), and the shed breakdown has no
      negative class.
    - [fleet-determinism] — running the same config twice gives identical
      results (the driver's documented contract).
    - [fleet-audit-off] — with [audit_checkpoint = 0] every audit counter
      stays zero (the audit layer is pay-only-if-enabled).
    - [fleet-batch1-inert] — [batch_max = 1] executes no batched rounds
      regardless of the batch window. *)

type violation = { oracle : string; seed : int; detail : string }

val pp_violation : Format.formatter -> violation -> unit

val check : seed:int -> violation list
(** Build one pseudo-random config from [seed] and check every oracle
    (costs a handful of driver runs). *)

val campaign : seed0:int -> runs:int -> violation list
(** [check] over seeds [seed0 .. seed0+runs-1]. *)
