lib/core/report.ml: Format Property Sim Wire
