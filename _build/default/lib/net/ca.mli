(** Certificate authority.

    Binds names to RSA public keys with a signature, playing two roles from
    the paper: the ordinary PKI that SSL-style channel authentication needs,
    and (in [lib/core]) the privacy CA that certifies per-attestation session
    keys ([AVKs]) without revealing which server they belong to. *)

type cert = {
  subject : string;
  pubkey : Crypto.Rsa.public;
  signature : string;  (** CA signature over [payload subject pubkey] *)
}

type t

val create : seed:string -> ?bits:int -> name:string -> unit -> t
val name : t -> string
val public : t -> Crypto.Rsa.public

val issue : t -> subject:string -> Crypto.Rsa.public -> cert

val verify : ca:Crypto.Rsa.public -> cert -> bool
(** Check the CA signature; callers must still check [subject] is who they
    expect to be talking to. *)

val payload : subject:string -> Crypto.Rsa.public -> string
(** The exact bytes the CA signs. *)

val encode : Wire.Codec.Enc.t -> cert -> unit
val decode : Wire.Codec.Dec.t -> cert
(** @raise Wire.Codec.Error on malformed input. *)
