lib/monitors/vmm_profile.ml: Hashtbl Hypervisor List Option Sim
