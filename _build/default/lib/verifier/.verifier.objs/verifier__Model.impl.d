lib/verifier/model.ml: Deduction List Printf Term
