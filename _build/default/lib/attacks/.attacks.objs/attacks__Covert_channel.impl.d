lib/attacks/covert_channel.ml: Bool Hypervisor List Sim
