let n_images = Array.length Op.images
let n_workloads = Array.length Op.workloads
let n_properties = Array.length Op.properties

(* Slots beyond the number of launches so far are resolved modulo the live
   count at replay time; generating a slightly-too-large slot occasionally is
   deliberate (it exercises the modulo path), but most references should hit
   real VMs, so slots are drawn from the launches emitted so far. *)
let slot prng launched = Sim.Prng.int prng (max 1 (launched + 1))

let launch prng =
  Op.Launch
    {
      image = Sim.Prng.int prng n_images;
      monitored = Sim.Prng.int prng 4 > 0 (* 75% monitored *);
      workload = Sim.Prng.int prng n_workloads;
    }

let attest_pair prng launched = (slot prng launched, Sim.Prng.int prng n_properties)

let fault prng =
  match Sim.Prng.int prng 4 with
  | 0 -> Op.Drop_nth (Sim.Prng.int_in prng 2 5)
  | 1 -> Op.Garble_nth (Sim.Prng.int_in prng 2 5)
  | 2 -> Op.Lossy (Sim.Prng.int_in prng 5 40, Sim.Prng.int_in prng 0 20)
  | _ -> Op.Blackout

(* TTLs straddle the advance sizes below so expiry boundaries get hit. *)
let ttl_ms prng = [| 0; 50; 200; 1000; 5000 |].(Sim.Prng.int prng 5)
let advance_ms prng = [| 1; 10; 60; 250; 1200 |].(Sim.Prng.int prng 5)

(* Monitor periods straddle the advance sizes too, so chunked catch-up and
   the freshness bound both get exercised; the pool stays at or under the
   largest advance so a period change can never instantly strand a VM
   beyond the oracle's bound. *)
let mon_period_ms prng = [| 200; 500; 1000 |].(Sim.Prng.int prng 3)

let body_op prng ~launched =
  Sim.Prng.weighted prng
    [
      (6, `Launch);
      (3, `Terminate);
      (4, `Suspend);
      (4, `Resume);
      (6, `Migrate);
      (22, `Attest);
      (10, `Attest_many);
      (6, `Set_cache_ttl);
      (4, `Set_batching);
      (2, `Enable_audit);
      (5, `Set_fault);
      (4, `Clear_fault);
      (12, `Advance);
      (5, `Infect);
      (2, `Corrupt_image);
      (* appended so earlier entries keep their historical weights *)
      (3, `Vtpm_cycle);
      (2, `Vtpm_clone);
      (3, `Vtpm_rebind);
      (4, `Protocol);
      (3, `Monitor_enable);
      (2, `Monitor_period);
      (2, `Monitor_storm);
    ]
  |> function
  | `Launch -> launch prng
  | `Terminate -> Op.Terminate (slot prng launched)
  | `Suspend -> Op.Suspend (slot prng launched)
  | `Resume -> Op.Resume (slot prng launched)
  | `Migrate -> Op.Migrate (slot prng launched)
  | `Attest ->
      let s, p = attest_pair prng launched in
      Op.Attest (s, p)
  | `Attest_many ->
      let n = Sim.Prng.int_in prng 2 6 in
      Op.Attest_many (List.init n (fun _ -> attest_pair prng launched))
  | `Set_cache_ttl -> Op.Set_cache_ttl (ttl_ms prng)
  | `Set_batching -> Op.Set_batching (Sim.Prng.bool prng)
  | `Enable_audit -> Op.Enable_audit
  | `Set_fault -> Op.Set_fault (fault prng)
  | `Clear_fault -> Op.Clear_fault
  | `Advance -> Op.Advance (advance_ms prng)
  | `Infect -> Op.Infect (slot prng launched)
  | `Corrupt_image -> Op.Corrupt_image (Sim.Prng.int prng n_images)
  | `Vtpm_cycle -> Op.Vtpm_cycle (slot prng launched)
  | `Vtpm_clone ->
      let src = slot prng launched in
      Op.Vtpm_clone (src, slot prng launched)
  | `Vtpm_rebind -> Op.Vtpm_rebind (slot prng launched)
  | `Protocol ->
      let phrase = Phrase_gen.generate prng ~slots:(max 1 launched) in
      (* one in four phrases is weakened — the Dolev-Yao engine must
         produce a concrete attack on every one of them *)
      let phrase =
        if Sim.Prng.int prng 4 = 0 then Phrase_gen.weaken prng phrase else phrase
      in
      Op.Protocol_term phrase
  | `Monitor_enable ->
      (* one in five disarms; the rest (re)arm with a pool period *)
      Op.Monitor_enable (if Sim.Prng.int prng 5 = 0 then 0 else mon_period_ms prng)
  | `Monitor_period -> Op.Monitor_period (mon_period_ms prng)
  | `Monitor_storm -> Op.Monitor_storm (slot prng launched)

let generate ~seed ~ops =
  let prng = Sim.Prng.create (seed lxor 0x66757a7a (* "fuzz" *)) in
  let opening = min ops (Sim.Prng.int_in prng 1 3) in
  let acc = ref [] in
  let launched = ref 0 in
  for _ = 1 to opening do
    acc := launch prng :: !acc;
    incr launched
  done;
  for _ = opening + 1 to ops do
    let op = body_op prng ~launched:!launched in
    (match op with Op.Launch _ -> incr launched | _ -> ());
    acc := op :: !acc
  done;
  { Op.seed; ops = List.rev !acc }
