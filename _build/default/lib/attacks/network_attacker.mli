(** Dolev-Yao network attacker behaviours (paper threat model, section 3.3:
    an active adversary with full control of the network who tries to make
    the customer accept a forged attestation report). *)

val passive : on_message:(Net.Network.message -> unit) -> Net.Network.adversary
(** Eavesdrop everything, modify nothing. *)

val flip_byte : ?offset:int -> ?min_len:int -> unit -> Net.Network.adversary
(** Corrupt one byte of every sufficiently long message (both directions).
    Detected by record MACs / signatures. *)

val tamper_replies : ?offset:int -> ?min_len:int -> unit -> Net.Network.adversary
(** Corrupt only replies — e.g. trying to flip an attestation report from
    Compromised to Healthy on its way back. *)

val replay_requests : unit -> Net.Network.adversary
(** Record the first request on each (src, dst) link and substitute it for
    every later request — a replay attack, defeated by per-record sequence
    numbers and per-request nonces. *)

val drop_everything : unit -> Net.Network.adversary
(** Denial of service on the monitoring plane (detected as availability
    loss of the attestation service, not forgeable results). *)
