(* Transparency-log frontier: what verdict auditing costs and how fast it
   catches a cheating log operator.

   Part 1 sweeps checkpoint interval x offered rate x AS shard count and
   reports the audited run next to its audit-off baseline (same seed, same
   load, one baseline per (rate, shards) pair) — the overhead numbers the
   acceptance criterion watches.

   Part 2 is the adversarial side: a split-view fork ({!Audit.View.fork})
   is planted mid-interval and two gossiping auditors race to convict it;
   detection latency must stay within one checkpoint interval. *)

type row = {
  interval : Sim.Time.t;
  rate : float;
  as_count : int;
  base : Fleet.Driver.result;  (* audit off, otherwise identical config *)
  audited : Fleet.Driver.result;
}

type detection = {
  det_interval : Sim.Time.t;
  forked_at : Sim.Time.t;
  detected_at : Sim.Time.t option;
  evidence_kind : string;
}

type result = { seed : int; scale : string; rows : row list; detections : detection list }

type sweep = {
  intervals : Sim.Time.t list;
  rates : float list;
  as_counts : int list;
  base : Fleet.Driver.config;
}

let default_sweep ~seed =
  {
    intervals = [ Sim.Time.ms 250; Sim.Time.sec 1; Sim.Time.sec 5 ];
    rates = [ 8.0; 16.0 ];
    as_counts = [ 1; 2 ];
    base = { Fleet.Driver.default_config with seed };
  }

let smoke_sweep ~seed =
  {
    intervals = [ Sim.Time.ms 500; Sim.Time.sec 1 ];
    rates = [ 12.0 ];
    as_counts = [ 1 ];
    base =
      {
        Fleet.Driver.default_config with
        seed;
        servers = 40;
        vms = 200;
        duration = Sim.Time.sec 10;
        drain = Sim.Time.sec 10;
        hot_vms = 32;
      };
  }

let scale_of_env () =
  match Sys.getenv_opt "CLOUDMONATT_FLEET_SCALE" with
  | Some "smoke" -> `Smoke
  | _ -> `Default

(* --- Part 2: split-view detection latency ------------------------------- *)

(* One log identity forks into two faces at [fork_at] (deliberately off the
   checkpoint grid); each face is watched by its own auditor and the two
   exchange heads right after every checkpoint.  Returns when (simulated)
   the first evidence lands. *)
let detection_run ~seed ~interval =
  let engine = Sim.Engine.create () in
  let clock () = Sim.Engine.now engine in
  let key =
    (Crypto.Rsa.generate
       (Crypto.Drbg.create ~seed:("audit-exp|" ^ string_of_int seed))
       ~bits:512)
      .Crypto.Rsa.secret
  in
  let fork = Audit.View.fork ~log_id:"as-1" ~key ~clock () in
  let pub = Audit.Log.public_key fork.Audit.View.log_a in
  let mk name = Audit.Auditor.create ~name ~key_of:(fun _ -> Some pub) ~clock () in
  let a = mk "det-auditor-a" and b = mk "det-auditor-b" in
  let forked_at = (3 * interval) + (interval / 2) in
  let horizon = forked_at + (4 * interval) in
  let seq = ref 0 in
  let feed () =
    incr seq;
    let entry tag = Printf.sprintf "vm-%04d|vm_integrity|%s" !seq tag in
    if Sim.Engine.now engine < forked_at then fork.Audit.View.append_both (entry "healthy")
    else begin
      (* Equivocate: same index, different verdicts on the two faces. *)
      fork.Audit.View.append_a (entry "healthy");
      fork.Audit.View.append_b (entry "compromised:hidden")
    end
  in
  ignore
    (Sim.Engine.every engine ~period:(max 1 (interval / 4)) ~until:horizon feed
      : Sim.Engine.handle);
  let detected = ref None in
  let tick () =
    ignore (Audit.Log.checkpoint fork.Audit.View.log_a : Audit.Sth.t);
    ignore (Audit.Log.checkpoint fork.Audit.View.log_b : Audit.Sth.t);
    Audit.Auditor.observe a fork.Audit.View.face_a;
    Audit.Auditor.observe b fork.Audit.View.face_b;
    Audit.Auditor.exchange a b;
    if !detected = None then
      match (Audit.Auditor.evidence a, Audit.Auditor.evidence b) with
      | [], [] -> ()
      | ev :: _, _ | [], ev :: _ ->
          detected :=
            Some
              ( Sim.Engine.now engine,
                Format.asprintf "%a" Audit.Auditor.pp_kind ev.Audit.Auditor.kind )
  in
  ignore (Sim.Engine.every engine ~period:interval ~until:horizon tick : Sim.Engine.handle);
  Sim.Engine.run_until engine horizon;
  {
    det_interval = interval;
    forked_at;
    detected_at = Option.map fst !detected;
    evidence_kind = (match !detected with Some (_, k) -> k | None -> "none");
  }

let run ?(seed = 2015) ?scale () =
  let scale = match scale with Some s -> s | None -> scale_of_env () in
  let sweep, scale_name =
    match scale with
    | `Default -> (default_sweep ~seed, "default")
    | `Smoke -> (smoke_sweep ~seed, "smoke")
  in
  let baselines =
    List.concat_map
      (fun rate ->
        List.map
          (fun as_count ->
            let config = { sweep.base with Fleet.Driver.rate_per_s = rate; as_count } in
            ((rate, as_count), Fleet.Driver.run config))
          sweep.as_counts)
      sweep.rates
  in
  let rows =
    List.concat_map
      (fun interval ->
        List.concat_map
          (fun rate ->
            List.map
              (fun as_count ->
                let config =
                  {
                    sweep.base with
                    Fleet.Driver.rate_per_s = rate;
                    as_count;
                    audit_checkpoint = interval;
                  }
                in
                {
                  interval;
                  rate;
                  as_count;
                  base = List.assoc (rate, as_count) baselines;
                  audited = Fleet.Driver.run config;
                })
              sweep.as_counts)
          sweep.rates)
      sweep.intervals
  in
  let detections =
    List.map (fun interval -> detection_run ~seed ~interval) sweep.intervals
  in
  { seed; scale = scale_name; rows; detections }

let print { seed; scale; rows; detections } =
  Common.section
    (Printf.sprintf "Audit: verdict transparency log (seed %d, %s sweep)" seed scale);
  Printf.printf
    "cost model: +%.1f ms/verdict at log size 1k, +%.1f ms at 64k (receipt path)\n\n"
    (Fleet.Driver.audit_verdict_ms ~size:1024)
    (Fleet.Driver.audit_verdict_ms ~size:65536);
  Printf.printf "%7s %5s %3s | %9s %9s | %8s %8s | %7s %6s %5s %5s\n" "ckpt" "rate" "AS"
    "srv/s" "base" "p95ms" "base" "appends" "ckpts" "prf" "equiv";
  List.iter
    (fun { interval; rate; as_count; base; audited } ->
      Printf.printf
        "%6.2fs %5.1f %3d | %9.2f %9.2f | %8.0f %8.0f | %7d %6d %5d %5d\n"
        (Sim.Time.to_sec interval) rate as_count audited.Fleet.Driver.served_rps
        base.Fleet.Driver.served_rps audited.Fleet.Driver.p95_ms base.Fleet.Driver.p95_ms
        audited.Fleet.Driver.audit_appends audited.Fleet.Driver.audit_checkpoints
        audited.Fleet.Driver.audit_proofs audited.Fleet.Driver.audit_equivocations)
    rows;
  Printf.printf "\nSplit-view detection (fork planted mid-interval):\n";
  List.iter
    (fun { det_interval; forked_at; detected_at; evidence_kind } ->
      match detected_at with
      | Some at ->
          let latency = at - forked_at in
          Printf.printf "  ckpt %5.2fs: forked %7.2fs, convicted %7.2fs (+%.2fs, %s) %s\n"
            (Sim.Time.to_sec det_interval)
            (Sim.Time.to_sec forked_at) (Sim.Time.to_sec at) (Sim.Time.to_sec latency)
            evidence_kind
            (if latency <= det_interval then "within one interval" else "LATE")
      | None ->
          Printf.printf "  ckpt %5.2fs: forked %7.2fs, NOT DETECTED\n"
            (Sim.Time.to_sec det_interval)
            (Sim.Time.to_sec forked_at))
    detections

let row_to_json { interval; rate; as_count; base; audited } =
  let side (r : Fleet.Driver.result) =
    Json.Obj
      [
        ("served", Json.Int r.Fleet.Driver.served);
        ("served_rps", Json.Float r.Fleet.Driver.served_rps);
        ("mean_ms", Json.Float r.Fleet.Driver.mean_ms);
        ("p50_ms", Json.Float r.Fleet.Driver.p50_ms);
        ("p95_ms", Json.Float r.Fleet.Driver.p95_ms);
        ("p99_ms", Json.Float r.Fleet.Driver.p99_ms);
      ]
  in
  Json.Obj
    [
      ("checkpoint_ms", Json.Float (Sim.Time.to_ms interval));
      ("rate_per_s", Json.Float rate);
      ("as_count", Json.Int as_count);
      ("baseline", side base);
      ("audited", side audited);
      ( "overhead",
        Json.Obj
          [
            ( "p50_ms",
              Json.Float (audited.Fleet.Driver.p50_ms -. base.Fleet.Driver.p50_ms) );
            ( "p95_ms",
              Json.Float (audited.Fleet.Driver.p95_ms -. base.Fleet.Driver.p95_ms) );
            ( "served_rps_ratio",
              Json.Float
                (if base.Fleet.Driver.served_rps > 0.0 then
                   audited.Fleet.Driver.served_rps /. base.Fleet.Driver.served_rps
                 else 0.0) );
          ] );
      ( "audit",
        Json.Obj
          [
            ("appends", Json.Int audited.Fleet.Driver.audit_appends);
            ("checkpoints", Json.Int audited.Fleet.Driver.audit_checkpoints);
            ("proofs", Json.Int audited.Fleet.Driver.audit_proofs);
            ("equivocations", Json.Int audited.Fleet.Driver.audit_equivocations);
            (* the audit path is the only real RSA in the fleet model, so
               the verify-memo counters characterise receipt re-checking *)
            ( "verify_memo",
              Json.List
                (Array.to_list
                   (Array.map
                      (fun (h, m) ->
                        Json.Obj [ ("hits", Json.Int h); ("misses", Json.Int m) ])
                      audited.Fleet.Driver.verify_memo)) );
          ] );
    ]

let detection_to_json { det_interval; forked_at; detected_at; evidence_kind } =
  Json.Obj
    [
      ("checkpoint_ms", Json.Float (Sim.Time.to_ms det_interval));
      ("forked_at_ms", Json.Float (Sim.Time.to_ms forked_at));
      ( "detected_at_ms",
        match detected_at with Some t -> Json.Float (Sim.Time.to_ms t) | None -> Json.Null
      );
      ( "latency_ms",
        match detected_at with
        | Some t -> Json.Float (Sim.Time.to_ms (t - forked_at))
        | None -> Json.Null );
      ( "within_interval",
        Json.Bool
          (match detected_at with Some t -> t - forked_at <= det_interval | None -> false)
      );
      ("evidence", Json.Str evidence_kind);
    ]

let to_json { seed; scale; rows; detections } =
  Json.Obj
    [
      ("experiment", Json.Str "audit");
      ("seed", Json.Int seed);
      ("scale", Json.Str scale);
      ( "model",
        Json.Obj
          [
            ("cold_attest_ms", Json.Float Fleet.Driver.cold_attest_ms);
            ( "audit_verdict_ms",
              Json.Obj
                (List.map
                   (fun n ->
                     (string_of_int n, Json.Float (Fleet.Driver.audit_verdict_ms ~size:n)))
                   [ 1; 1024; 65536 ]) );
          ] );
      ("rows", Json.List (List.map row_to_json rows));
      ("detection", Json.List (List.map detection_to_json detections));
    ]
