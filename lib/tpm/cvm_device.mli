(** CVM hardware-report device (SEV-SNP / TDX class).

    Carries a fused platform key endorsed by a {!Platform_root} at
    "manufacture" time.  {!begin_session} mints a firmware report key whose
    wire endorsement is the full two-link chain
    (vendor root → platform key → report key), so a verifier needs only the
    vendor root public key — the cloud operator and its Privacy CA stay
    outside the TCB.

    The state is fused: not serializable, binding epoch pinned at 0. *)

type t

val create :
  ?key_bits:int ->
  ?num_registers:int ->
  ?num_pcrs:int ->
  root:Platform_root.t ->
  seed:string ->
  unit ->
  t
(** The vendor [root] endorses the freshly fused platform key once, here.
    DRBG seeded from ["cvm-device|" ^ seed]. *)

val identity_public : t -> Crypto.Rsa.public
(** The platform key — the machine's hardware identity. *)

val platform_cert : t -> string
(** The vendor-root endorsement over {!identity_public}. *)

val pcrs : t -> Pcr.t
val random_nonce : t -> string
val drbg : t -> Crypto.Drbg.t

val num_registers : t -> int
val read_registers : t -> int array
val write_register : t -> int -> int -> unit
val add_register : t -> int -> int -> unit
val clear_registers : t -> unit

val begin_session : t -> Trust_module.session
(** The session endorsement is a {!Platform_root.encode_chain} string. *)

val sign_with_session : t -> Trust_module.session -> string -> string option
val end_session : t -> Trust_module.session -> unit
val quote_batch : t -> Trust_module.session -> root:string -> nonce:string -> string option

val sign_identity : t -> string -> string
val decrypt_identity : t -> string -> string option
