(** Binary Merkle tree over {!Sha256}, for batched attestation quotes.

    One Trust-Module signature over the root covers many measurement
    reports; each report stays individually checkable through its O(log n)
    inclusion proof, so a verifier never has to trust the aggregator.

    Leaf and interior hashes are domain-separated (a leaf digest can never
    be replayed as an interior node or vice versa), which blocks the
    classic second-preimage tricks on unbalanced trees.  Odd nodes at any
    level are promoted unchanged, so the tree shape is a deterministic
    function of the leaf count alone. *)

type proof
(** An inclusion proof: the sibling hashes from a leaf up to the root,
    each tagged with the side it hashes on. *)

val leaf_hash : string -> string
(** [leaf_hash data] is the domain-separated digest a leaf contributes. *)

val root : string list -> string
(** [root leaves] is the Merkle root of the leaf {e data} (hashed with
    {!leaf_hash} internally).  Raises [Invalid_argument] on []. *)

val proof : string list -> int -> proof
(** [proof leaves i] is the inclusion proof for leaf [i] (0-based).
    Raises [Invalid_argument] if [i] is out of range or [leaves] is []. *)

val verify : root:string -> leaf:string -> proof -> bool
(** [verify ~root ~leaf p] checks that [leaf] (raw data, not a digest) is
    included under [root] via [p]. *)

val proof_length : proof -> int
(** Number of sibling hashes in the proof (= the leaf's depth). *)

val verify_at : root:string -> leaf:string -> index:int -> size:int -> proof -> bool
(** [verify_at ~root ~leaf ~index ~size p] is {!verify} plus position
    binding: the proof's side sequence must match the unique path of leaf
    [index] in a tree over [size] leaves.  {!verify} alone accepts a valid
    proof under any claimed index; receipts (lib/audit) need the index to
    be part of what is verified. *)

val node_count : int -> int
(** [node_count n] is the total number of hash evaluations needed to build
    a tree over [n] leaves (leaf hashes + interior nodes) — the term the
    cost model charges per batch. *)

val max_proof_length : int -> int
(** [max_proof_length n] is the longest inclusion proof in a tree over [n]
    leaves (= ceil(log2 n)); the per-report verification cost bound. *)

val encode : Wire.Codec.Enc.t -> proof -> unit
val decode : Wire.Codec.Dec.t -> proof
(** Wire codecs, so proofs travel inside batch measurement responses. *)

(** {1 RFC 6962-style log views}

    The promote-odd construction above builds exactly the RFC 6962 tree
    (recursive split at the largest power of two below the leaf count), so
    an append-only log can serve inclusion proofs against any historical
    tree size, and consistency proofs showing one tree head is a prefix of
    a later one.  Proof {e generation} is parameterised by a subtree-root
    oracle [sub lo hi] (the root over leaves [lo, hi)), letting
    incremental logs memoize interior hashes instead of rehashing. *)

val node_hash : string -> string -> string
(** Domain-separated interior-node hash; exposed for log implementations
    that memoize subtree roots. *)

val empty_root : string
(** Conventional root of the empty tree (digest of a domain tag; RFC 6962
    uses SHA-256 of the empty string — any fixed constant works as long as
    both sides agree). *)

val inclusion_with : sub:(int -> int -> string) -> size:int -> int -> proof
(** [inclusion_with ~sub ~size i] is the inclusion proof for leaf [i]
    against the tree over the first [size] leaves.  For [size] equal to
    the full leaf count it produces exactly {!proof}'s output, and it
    verifies with {!verify}.  Raises [Invalid_argument] if [i] or [size]
    is out of range. *)

val consistency_with : sub:(int -> int -> string) -> old_size:int -> size:int -> string list
(** [consistency_with ~sub ~old_size ~size] proves the tree over the first
    [old_size] leaves is a prefix of the tree over the first [size]
    leaves (RFC 6962 section 2.1.2).  Empty when [old_size] is [0] or
    equals [size].  Raises [Invalid_argument] if [old_size > size]. *)

val verify_consistency :
  old_size:int -> old_root:string -> size:int -> root:string -> string list -> bool
(** Checks a {!consistency_with} proof: accepts iff the [old_size]-leaf
    tree with root [old_root] is a prefix of the [size]-leaf tree with
    root [root]. *)

val root_prefix : string list -> size:int -> string
(** [root_prefix leaves ~size] is the root over the first [size] leaves;
    [root_prefix leaves ~size:(List.length leaves)] equals
    [root leaves], and [~size:0] is {!empty_root}. *)

val inclusion_prefix : string list -> size:int -> int -> proof
(** List-of-leaves convenience over {!inclusion_with}. *)

val consistency : string list -> old_size:int -> string list
(** [consistency leaves ~old_size] is
    [consistency_with ~old_size ~size:(List.length leaves)] over the given
    leaves. *)
