(* Tests for the binary codec. *)

module Codec = Wire.Codec

let qtest = QCheck_alcotest.to_alcotest

let roundtrip enc dec v = Codec.decode (Codec.encode (fun e -> enc e v)) dec

let u8_roundtrip =
  QCheck.Test.make ~name:"u8 roundtrip" ~count:256 (QCheck.int_range 0 255) (fun v ->
      roundtrip Codec.Enc.u8 Codec.Dec.u8 v = v)

let u16_roundtrip =
  QCheck.Test.make ~name:"u16 roundtrip" ~count:200 (QCheck.int_range 0 0xffff) (fun v ->
      roundtrip Codec.Enc.u16 Codec.Dec.u16 v = v)

let u32_roundtrip =
  QCheck.Test.make ~name:"u32 roundtrip" ~count:200 (QCheck.int_range 0 0xffffffff) (fun v ->
      roundtrip Codec.Enc.u32 Codec.Dec.u32 v = v)

let int_roundtrip =
  QCheck.Test.make ~name:"int roundtrip" ~count:200 (QCheck.map abs QCheck.int) (fun v ->
      roundtrip Codec.Enc.int Codec.Dec.int v = v)

let str_roundtrip =
  QCheck.Test.make ~name:"str roundtrip" ~count:200 QCheck.string (fun v ->
      String.equal (roundtrip Codec.Enc.str Codec.Dec.str v) v)

let list_roundtrip =
  QCheck.Test.make ~name:"list of strings roundtrip" ~count:100 QCheck.(list string)
    (fun v ->
      roundtrip
        (fun e xs -> Codec.Enc.list e (Codec.Enc.str e) xs)
        (fun d -> Codec.Dec.list d Codec.Dec.str)
        v
      = v)

let option_roundtrip =
  QCheck.Test.make ~name:"option roundtrip" ~count:100 QCheck.(option small_int) (fun v ->
      roundtrip
        (fun e o -> Codec.Enc.option e (Codec.Enc.int e) o)
        (fun d -> Codec.Dec.option d Codec.Dec.int)
        v
      = v)

let int_array_roundtrip =
  QCheck.Test.make ~name:"int_array roundtrip" ~count:100
    QCheck.(array (map abs int))
    (fun v -> roundtrip Codec.Enc.int_array Codec.Dec.int_array v = v)

let bool_roundtrip =
  QCheck.Test.make ~name:"bool roundtrip" ~count:10 QCheck.bool (fun v ->
      roundtrip Codec.Enc.bool Codec.Dec.bool v = v)

let composite_roundtrip =
  QCheck.Test.make ~name:"composite message roundtrip" ~count:100
    QCheck.(triple string (list small_int) bool)
    (fun (s, xs, b) ->
      let encoded =
        Codec.encode (fun e ->
            Codec.Enc.str e s;
            Codec.Enc.list e (Codec.Enc.int e) xs;
            Codec.Enc.bool e b)
      in
      Codec.decode encoded (fun d ->
          let s' = Codec.Dec.str d in
          let xs' = Codec.Dec.list d Codec.Dec.int in
          let b' = Codec.Dec.bool d in
          (s', xs', b'))
      = (s, xs, b))

(* --- Error handling ----------------------------------------------------- *)

let test_trailing_bytes () =
  let encoded = Codec.encode (fun e -> Codec.Enc.u16 e 7) in
  Alcotest.(check bool) "trailing bytes rejected" true
    (Codec.decode_opt encoded Codec.Dec.u8 = None)

let test_truncated () =
  Alcotest.(check bool) "truncated u32" true (Codec.decode_opt "\x01\x02" Codec.Dec.u32 = None);
  Alcotest.(check bool) "truncated str" true
    (Codec.decode_opt "\x00\x00\x00\x10abc" Codec.Dec.str = None)

let test_bad_bool () =
  let encoded = Codec.encode (fun e -> Codec.Enc.u8 e 7) in
  Alcotest.(check bool) "bad bool tag" true (Codec.decode_opt encoded Codec.Dec.bool = None)

let test_bad_option_tag () =
  let encoded = Codec.encode (fun e -> Codec.Enc.u8 e 9) in
  Alcotest.(check bool) "bad option tag" true
    (Codec.decode_opt encoded (fun d -> Codec.Dec.option d Codec.Dec.u8) = None)

let test_negative_int_rejected () =
  Alcotest.check_raises "negative int" (Codec.Error "int must be non-negative") (fun () ->
      ignore (Codec.encode (fun e -> Codec.Enc.int e (-1))))

let test_out_of_range () =
  Alcotest.check_raises "u8 range" (Codec.Error "u8 out of range") (fun () ->
      ignore (Codec.encode (fun e -> Codec.Enc.u8 e 256)));
  Alcotest.check_raises "u16 range" (Codec.Error "u16 out of range") (fun () ->
      ignore (Codec.encode (fun e -> Codec.Enc.u16 e (-1))))

let test_huge_list_rejected () =
  (* A length prefix claiming 2^31 entries must not allocate. *)
  let bogus = Codec.encode (fun e -> Codec.Enc.u32 e 0x7fffffff) in
  Alcotest.(check bool) "huge list rejected" true
    (Codec.decode_opt bogus (fun d -> Codec.Dec.list d Codec.Dec.u8) = None)

let test_remaining () =
  let d = Codec.Dec.of_string "abcd" in
  Alcotest.(check int) "remaining" 4 (Codec.Dec.remaining d);
  ignore (Codec.Dec.u16 d);
  Alcotest.(check int) "after u16" 2 (Codec.Dec.remaining d)

let () =
  Alcotest.run "wire"
    [
      ( "roundtrips",
        [
          qtest u8_roundtrip;
          qtest u16_roundtrip;
          qtest u32_roundtrip;
          qtest int_roundtrip;
          qtest str_roundtrip;
          qtest list_roundtrip;
          qtest option_roundtrip;
          qtest int_array_roundtrip;
          qtest bool_roundtrip;
          qtest composite_roundtrip;
        ] );
      ( "errors",
        [
          Alcotest.test_case "trailing bytes" `Quick test_trailing_bytes;
          Alcotest.test_case "truncation" `Quick test_truncated;
          Alcotest.test_case "bad bool" `Quick test_bad_bool;
          Alcotest.test_case "bad option tag" `Quick test_bad_option_tag;
          Alcotest.test_case "negative int" `Quick test_negative_int_rejected;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "huge list" `Quick test_huge_list_rejected;
          Alcotest.test_case "remaining" `Quick test_remaining;
        ] );
    ]
