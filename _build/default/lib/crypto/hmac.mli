(** HMAC-SHA256 (RFC 2104), the MAC for secure-channel records, and a small
    HKDF-style key-derivation helper. *)

val mac : key:string -> string -> string
(** 32-byte authentication tag. *)

val verify : key:string -> tag:string -> string -> bool
(** Constant-time comparison of [tag] against the recomputed MAC. *)

val derive : secret:string -> label:string -> int -> string
(** [derive ~secret ~label n] expands [secret] into [n] bytes bound to
    [label] (HKDF-expand style, counter-mode HMAC). *)
