type cert = { subject : string; pubkey : Crypto.Rsa.public; signature : string }

type t = { name : string; keypair : Crypto.Rsa.keypair }

let create ~seed ?(bits = 1024) ~name () =
  let drbg = Crypto.Drbg.create ~seed:("ca|" ^ name ^ "|" ^ seed) in
  { name; keypair = Crypto.Rsa.generate drbg ~bits }

let name t = t.name
let public t = t.keypair.public

let payload ~subject pubkey =
  Printf.sprintf "certificate|%s|%s" subject (Crypto.Rsa.public_to_string pubkey)

let issue t ~subject pubkey =
  { subject; pubkey; signature = Crypto.Rsa.sign t.keypair.secret (payload ~subject pubkey) }

(* Certificates are long-lived and re-checked on every handshake and every
   report appraisal, so this goes through the verification memo: the first
   check pays the exponentiation, every later check of the same cert is a
   hash lookup. *)
let verify ~ca cert =
  Crypto.Rsa.verify_memo ca ~signature:cert.signature (payload ~subject:cert.subject cert.pubkey)

let encode e cert =
  Wire.Codec.Enc.str e cert.subject;
  Wire.Codec.Enc.str e (Crypto.Rsa.public_to_string cert.pubkey);
  Wire.Codec.Enc.str e cert.signature

let decode d =
  let subject = Wire.Codec.Dec.str d in
  let pub_s = Wire.Codec.Dec.str d in
  let signature = Wire.Codec.Dec.str d in
  match Crypto.Rsa.public_of_string pub_s with
  | None -> raise (Wire.Codec.Error "bad public key in certificate")
  | Some pubkey -> { subject; pubkey; signature }
