lib/wire/codec.ml: Array Buffer Char List String
