(** Imperative binary min-heap, used by the event queue and schedulers. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val peek : 'a t -> 'a option

val to_list : 'a t -> 'a list
(** Elements in unspecified order; the heap is unchanged. *)
