(* Pinned fuzzer repros and oracle mutation tests.

   Each history below is a one-line scenario in the fuzzer's textual
   grammar, promoted from the campaign (shrunk counterexamples of the
   planted bugs) or crafted to cover a generator corner (audit + lossy
   faults, batching, TTL expiry).  Pinning the literal strings guards the
   codec as well as the replayer: a grammar change that breaks old repro
   lines fails here, not in a future debugging session. *)

let replay ?bug line =
  match Fuzz.Op.of_string line with
  | None -> Alcotest.fail ("repro line failed to parse: " ^ line)
  | Some scenario -> (scenario, Fuzz.Replay.run ?bug scenario)

let oracle_names (out : Fuzz.Replay.outcome) =
  List.map (fun (v : Fuzz.Oracle.violation) -> v.oracle) out.violations

(* --- Pinned clean histories ---------------------------------------------- *)

let pinned_clean =
  [
    (* shrunk counterexample of the planted migrate bug (clean unmutated) *)
    "seed=2035 ops=L1.0.0;c50;a0.3;M1;a1.3";
    (* suspend -> attest -> resume -> attest inside one TTL window *)
    "seed=7 ops=L0.1.0;c5000;S0;a0.1;R0;a0.1";
    (* audit on under a lossy adversary, cleared mid-history *)
    "seed=11 ops=L0.1.0;u;fl10.10;a0.0;a0.1;f0;A0.2+0.3;t250;a0.0";
    (* batched multi-VM attestation toggled on and back off *)
    "seed=23 ops=L1.1.0;L2.0.1;b1;A0.0+1.1+0.2;c1000;A0.0+1.1;b0;a1.3";
    (* cached Healthy expires over an advance, then the VM is infected *)
    "seed=42 ops=L0.1.1;c200;a0.1;t250;x0;a0.1;K0";
    (* migrate-without-rebind: restored vTPM state attests Compromised
       until the explicit Privacy-CA rebind, then Healthy again *)
    "seed=5 ops=L0.1.0;L0.1.0;vs1;a1.0;vr1;a1.0";
    (* backend-mismatched clones fail cleanly, and suspend/resume with
       stale vTPM state stays convictable until the rebind *)
    "seed=9 ops=L0.1.0;L0.1.0;L0.1.0;vm1.0;a0.0;vm0.1;a1.2;vs1;S1;R1;a1.0;vr1;a1.0";
    (* migrating off a stale host lands on a fresh one: Healthy is fine *)
    "seed=13 ops=L0.1.0;L0.1.0;L0.1.0;c1000;a2.0;vs1;M1;a1.0;vr1;a1.0";
    (* protocol terms through the interpreter: a cache-warm sequence, a
       quorum merge, and a weakened (no-nonce) appraisal the Dolev-Yao
       engine must attack *)
    "seed=77 ops=L0.1.0;L0.1.0;Pa0.0;c1000;P(a0.0>a1.1);P(a0.0&Qa1.0);Pa-0.0";
    (* layered appraisal plus both delegation outcomes: one cluster claim
       matches the live placement, the other is rejected as ill-typed *)
    "seed=78 ops=L0.1.0;Pl0:a0.2;Pd0:a0.0;Pd1:a0.0";
    (* checked layer over a restored-but-unrebound vTPM refuses to run the
       body (Compromised, zero leaves); after the rebind it appraises again *)
    "seed=79 ops=L0.1.0;L0.1.0;L0.1.0;vs1;Pl1:a1.0;vr1;Pl1:a1.0";
    (* protocol run under a lossy adversary (estimate oracle stands down),
       then a clean all-merge over cold channels *)
    "seed=80 ops=L0.1.0;L0.1.0;fl10.10;P(a0.0>a1.0);f0;P(a0.0&Aa1.3)";
    (* continuous monitor armed over long advances: chunked catch-up keeps
       every verdict inside the freshness bound, then the monitor disarms *)
    "seed=31 ops=L0.1.0;me500;t1200;a0.1;t1200;me0;t1200";
    (* rack storm under an armed monitor: the planted compromise must be
       probed out within one period, surviving the victim's termination *)
    "seed=33 ops=L0.1.0;L0.1.0;me500;mt0;t1200;K0;t600";
    (* period change plus suspend/resume: the resumed VM's freshness clock
       restarts, so a post-resume gap is not a violation *)
    "seed=37 ops=L0.1.0;me500;mp1000;S0;t1200;R0;t1200";
  ]

let test_pinned_histories_clean () =
  List.iter
    (fun line ->
      let scenario, out = replay line in
      Alcotest.(check (list string)) ("violations: " ^ line) [] (oracle_names out);
      (* the pinned string is the canonical form, so codec drift shows up *)
      Alcotest.(check string) ("canonical: " ^ line) line (Fuzz.Op.to_string scenario))
    pinned_clean

let test_pinned_histories_deterministic () =
  List.iter
    (fun line ->
      let _, out1 = replay line in
      let _, out2 = replay line in
      Alcotest.(check string) ("digest: " ^ line) out1.Fuzz.Replay.digest
        out2.Fuzz.Replay.digest;
      Alcotest.(check int) ("digest length: " ^ line) 64
        (String.length out1.Fuzz.Replay.digest))
    pinned_clean

(* --- Codec ---------------------------------------------------------------- *)

let test_codec_roundtrip_generated () =
  for seed = 1 to 25 do
    let scenario = Fuzz.Gen.generate ~seed ~ops:30 in
    let line = Fuzz.Op.to_string scenario in
    match Fuzz.Op.of_string line with
    | None -> Alcotest.fail ("generated line failed to parse: " ^ line)
    | Some back ->
        Alcotest.(check int) "seed" scenario.Fuzz.Op.seed back.Fuzz.Op.seed;
        Alcotest.(check bool)
          ("ops round-trip: " ^ line)
          true
          (List.for_all2 Fuzz.Op.equal_op scenario.Fuzz.Op.ops back.Fuzz.Op.ops)
  done

let test_codec_rejects_garbage () =
  List.iter
    (fun line ->
      Alcotest.(check bool) ("rejected: " ^ line) true (Fuzz.Op.of_string line = None))
    [
      "";
      "seed=1";
      "ops=L0.1.0";
      "seed=x ops=L0.1.0";
      "seed=1 ops=Z9";
      "seed=1 ops=L0.1.0;;a0.0";
      "seed=1 ops=L0.2.0";
      "seed=1 ops=fq3";
      "seed=1 ops=vq3";
      "seed=1 ops=vs";
      "seed=1 ops=P";
      "seed=1 ops=Pa0";
      "seed=1 ops=P(a0.0>a1.0";
      "seed=1 ops=Pa0.0x";
      "seed=1 ops=mq3";
      "seed=1 ops=me";
      "seed=1 ops=mt1.2";
    ]

(* --- Mutation testing: the oracles must catch the planted bugs ------------ *)

let triggers ?(oracle = "cache-consistency") ~bug line =
  let _, out = replay ~bug line in
  List.mem oracle (oracle_names out)

let test_planted_migrate_bug () =
  let line = "seed=2035 ops=L1.0.0;c50;a0.3;M1;a1.3" in
  Alcotest.(check bool) "caught under mutant" true
    (triggers ~bug:Fuzz.Replay.Skip_invalidate_on_migrate line);
  Alcotest.(check bool) "clean without mutant" false
    (triggers ~bug:Fuzz.Replay.No_bug line)

let test_planted_resume_bug () =
  let line = "seed=7 ops=L0.1.0;c5000;S0;a0.1;R0;a0.1" in
  Alcotest.(check bool) "caught under mutant" true
    (triggers ~bug:Fuzz.Replay.Skip_invalidate_on_resume line);
  Alcotest.(check bool) "clean without mutant" false
    (triggers ~bug:Fuzz.Replay.No_bug line)

let test_planted_lazy_monitor_bug () =
  (* A monitor that only wakes at op boundaries leaves the whole advance
     unprobed; its first post-gap probe arrives far beyond the freshness
     bound and the monitor-freshness oracle must convict exactly that. *)
  let oracle = "monitor-freshness" in
  let line = "seed=3 ops=L0.1.0;me200;t5000" in
  Alcotest.(check bool) "caught under mutant" true
    (triggers ~oracle ~bug:Fuzz.Replay.Lazy_monitor line);
  Alcotest.(check bool) "clean without mutant" false
    (triggers ~oracle ~bug:Fuzz.Replay.No_bug line)

let test_planted_rebind_bug () =
  (* A management plane that silently re-registers restored vTPM state
     turns the migrate-without-rebind attack into fresh Healthy verdicts;
     the stale-binding oracle must convict exactly that. *)
  let oracle = "vtpm-stale-binding" in
  let line = "seed=5 ops=L0.1.0;L0.1.0;vs1;a1.0" in
  Alcotest.(check bool) "caught under mutant" true
    (triggers ~oracle ~bug:Fuzz.Replay.Rebind_on_restore line);
  Alcotest.(check bool) "clean without mutant" false
    (triggers ~oracle ~bug:Fuzz.Replay.No_bug line)

(* --- Shrinking ------------------------------------------------------------ *)

let one_minimal ?(oracle = "cache-consistency") ~bug scenario =
  let ops = scenario.Fuzz.Op.ops in
  List.for_all
    (fun i ->
      let shorter = List.filteri (fun j _ -> j <> i) ops in
      not (Fuzz.Shrink.triggers ~bug ~oracle { scenario with Fuzz.Op.ops = shorter }))
    (List.init (List.length ops) Fun.id)

let test_shrunk_repros_one_minimal () =
  List.iter
    (fun (bug, line) ->
      match Fuzz.Op.of_string line with
      | None -> Alcotest.fail ("parse: " ^ line)
      | Some scenario ->
          Alcotest.(check bool) ("<= 10 ops: " ^ line) true
            (List.length scenario.Fuzz.Op.ops <= 10);
          Alcotest.(check bool) ("1-minimal: " ^ line) true (one_minimal ~bug scenario))
    [
      (Fuzz.Replay.Skip_invalidate_on_migrate, "seed=2035 ops=L1.0.0;c50;a0.3;M1;a1.3");
      (Fuzz.Replay.Skip_invalidate_on_resume, "seed=7 ops=L0.1.0;c5000;S0;a0.1;R0;a0.1");
    ];
  (* the rebind mutant's repro is 1-minimal under its own oracle *)
  (match Fuzz.Op.of_string "seed=5 ops=L0.1.0;L0.1.0;vs1;a1.0" with
  | None -> Alcotest.fail "parse: rebind repro"
  | Some scenario ->
      Alcotest.(check bool) "rebind repro 1-minimal" true
        (one_minimal ~oracle:"vtpm-stale-binding" ~bug:Fuzz.Replay.Rebind_on_restore
           scenario));
  (* and so is the lazy-monitor mutant's *)
  match Fuzz.Op.of_string "seed=3 ops=L0.1.0;me200;t5000" with
  | None -> Alcotest.fail "parse: lazy-monitor repro"
  | Some scenario ->
      Alcotest.(check bool) "lazy-monitor repro 1-minimal" true
        (one_minimal ~oracle:"monitor-freshness" ~bug:Fuzz.Replay.Lazy_monitor scenario)

let test_shrinker_strips_padding () =
  (* Pad the minimal migrate repro with inert ops; ddmin must strip every
     one of them and land back on a 1-minimal counterexample. *)
  let bug = Fuzz.Replay.Skip_invalidate_on_migrate in
  let padded =
    "seed=2035 ops=t10;L1.0.0;b1;c50;t5;a0.3;u;M1;t20;a1.3;b0;t10"
  in
  match Fuzz.Op.of_string padded with
  | None -> Alcotest.fail "padded line failed to parse"
  | Some scenario ->
      Alcotest.(check bool) "padded still triggers" true
        (Fuzz.Shrink.triggers ~bug ~oracle:"cache-consistency" scenario);
      let shrunk, replays =
        Fuzz.Shrink.minimize ~bug ~oracle:"cache-consistency" scenario
      in
      Alcotest.(check bool) "shrunk triggers" true
        (Fuzz.Shrink.triggers ~bug ~oracle:"cache-consistency" shrunk);
      Alcotest.(check bool) "strictly smaller" true
        (List.length shrunk.Fuzz.Op.ops < List.length scenario.Fuzz.Op.ops);
      Alcotest.(check bool) "within budget" true (replays <= 500);
      Alcotest.(check bool) "1-minimal" true (one_minimal ~bug shrunk)

let () =
  Alcotest.run "fuzz_repros"
    [
      ( "pinned",
        [
          Alcotest.test_case "histories replay clean" `Quick test_pinned_histories_clean;
          Alcotest.test_case "replay is deterministic" `Quick
            test_pinned_histories_deterministic;
        ] );
      ( "codec",
        [
          Alcotest.test_case "generated scenarios round-trip" `Quick
            test_codec_roundtrip_generated;
          Alcotest.test_case "garbage rejected" `Quick test_codec_rejects_garbage;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "planted migrate bug caught" `Quick test_planted_migrate_bug;
          Alcotest.test_case "planted resume bug caught" `Quick test_planted_resume_bug;
          Alcotest.test_case "planted rebind bug caught" `Quick test_planted_rebind_bug;
          Alcotest.test_case "planted lazy-monitor bug caught" `Quick
            test_planted_lazy_monitor_bug;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "shrunk repros are 1-minimal" `Quick
            test_shrunk_repros_one_minimal;
          Alcotest.test_case "shrinker strips padding" `Quick test_shrinker_strips_padding;
        ] );
    ]
