(* Tests for the from-scratch cryptography: standard vectors plus algebraic
   property tests. *)

let qtest = QCheck_alcotest.to_alcotest

let hex = Crypto.Hexs.encode

(* --- SHA-256 (FIPS 180-4 / NIST CAVP vectors) ----------------------------- *)

let sha_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
  ]

let test_sha256_vectors () =
  List.iter
    (fun (msg, want) -> Alcotest.(check string) ("sha256 " ^ msg) want (Crypto.Sha256.hex msg))
    sha_vectors

let test_sha256_million_a () =
  Alcotest.(check string) "million a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Crypto.Sha256.hex (String.make 1_000_000 'a'))

let sha256_incremental_matches =
  QCheck.Test.make ~name:"incremental = one-shot for any chunking" ~count:200
    QCheck.(pair string (list small_nat))
    (fun (s, cuts) ->
      let ctx = Crypto.Sha256.init () in
      let n = String.length s in
      let pos = ref 0 in
      List.iter
        (fun cut ->
          let take = min cut (n - !pos) in
          if take > 0 then begin
            Crypto.Sha256.update ctx (String.sub s !pos take);
            pos := !pos + take
          end)
        cuts;
      if !pos < n then Crypto.Sha256.update ctx (String.sub s !pos (n - !pos));
      String.equal (Crypto.Sha256.finalize ctx) (Crypto.Sha256.digest s))

let test_sha256_digest_list () =
  Alcotest.(check string) "digest_list = digest of concat"
    (hex (Crypto.Sha256.digest "foobarbaz"))
    (hex (Crypto.Sha256.digest_list [ "foo"; "bar"; "baz" ]))

(* Known-answer tests for the streaming context across odd block boundaries:
   every FIPS vector, fed in two chunks split just before, at, and just
   after the 64-byte block edge (and at byte 1), must reproduce the
   one-shot digest.  Guards block-buffer bookkeeping during future kernel
   optimization work. *)
let test_sha256_streaming_boundaries () =
  List.iter
    (fun (msg, want) ->
      List.iter
        (fun cut ->
          if cut > 0 && cut < String.length msg then begin
            let ctx = Crypto.Sha256.init () in
            Crypto.Sha256.update ctx (String.sub msg 0 cut);
            Crypto.Sha256.update ctx (String.sub msg cut (String.length msg - cut));
            Alcotest.(check string)
              (Printf.sprintf "len %d split at %d" (String.length msg) cut)
              want
              (hex (Crypto.Sha256.finalize ctx))
          end)
        [ 1; 55; 56; 63; 64; 65 ])
    sha_vectors

let test_sha256_streaming_million_a () =
  (* The million-a vector streamed in 997-byte chunks: 997 is odd and no
     divisor of 64, so every update straddles a block boundary. *)
  let ctx = Crypto.Sha256.init () in
  let chunk = String.make 997 'a' in
  let rec feed left =
    if left > 0 then begin
      let take = min left 997 in
      Crypto.Sha256.update ctx (if take = 997 then chunk else String.make take 'a');
      feed (left - take)
    end
  in
  feed 1_000_000;
  Alcotest.(check string) "streamed million a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (hex (Crypto.Sha256.finalize ctx))

(* --- HMAC (RFC 4231) ------------------------------------------------------ *)

let test_hmac_rfc4231 () =
  let check name key data want =
    Alcotest.(check string) name want (hex (Crypto.Hmac.mac ~key data))
  in
  check "case 1"
    (String.make 20 '\x0b')
    "Hi There" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7";
  check "case 2" "Jefe" "what do ya want for nothing?"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843";
  check "case 3"
    (String.make 20 '\xaa')
    (String.make 50 '\xdd')
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe";
  (* case 4: 25-byte incrementing key *)
  check "case 4"
    (String.init 25 (fun i -> Char.chr (i + 1)))
    (String.make 50 '\xcd')
    "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b";
  (* case 6: key longer than the block size *)
  check "case 6"
    (String.make 131 '\xaa')
    "Test Using Larger Than Block-Size Key - Hash Key First"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54";
  (* case 7: key and data both longer than the block size *)
  check "case 7"
    (String.make 131 '\xaa')
    "This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm."
    "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"

let test_hmac_verify () =
  let tag = Crypto.Hmac.mac ~key:"k" "message" in
  Alcotest.(check bool) "accepts" true (Crypto.Hmac.verify ~key:"k" ~tag "message");
  Alcotest.(check bool) "rejects other message" false
    (Crypto.Hmac.verify ~key:"k" ~tag "messagX");
  Alcotest.(check bool) "rejects other key" false (Crypto.Hmac.verify ~key:"K" ~tag "message")

let test_hmac_derive () =
  let a = Crypto.Hmac.derive ~secret:"s" ~label:"a" 48 in
  let b = Crypto.Hmac.derive ~secret:"s" ~label:"b" 48 in
  Alcotest.(check int) "length" 48 (String.length a);
  Alcotest.(check bool) "label separation" false (String.equal a b);
  Alcotest.(check string) "deterministic" a (Crypto.Hmac.derive ~secret:"s" ~label:"a" 48);
  (* prefix property: derive is a stream *)
  Alcotest.(check string) "prefix consistent"
    (String.sub a 0 16)
    (Crypto.Hmac.derive ~secret:"s" ~label:"a" 16)

(* --- ChaCha20 (RFC 8439) --------------------------------------------------- *)

let test_chacha20_rfc_block () =
  let key =
    Crypto.Hexs.decode "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
  in
  let nonce = Crypto.Hexs.decode "000000090000004a00000000" in
  let block = Crypto.Chacha20.block ~key ~nonce ~counter:1 in
  Alcotest.(check string) "RFC 8439 2.3.2 keystream"
    "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4ed2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
    (hex block)

let test_chacha20_rfc_encrypt () =
  let key =
    Crypto.Hexs.decode "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
  in
  let nonce = Crypto.Hexs.decode "000000000000004a00000000" in
  let plaintext =
    "Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it."
  in
  let cipher = Crypto.Chacha20.xor ~key ~nonce ~counter:1 plaintext in
  Alcotest.(check string) "RFC 8439 2.4.2 ciphertext prefix"
    "6e2e359a2568f98041ba0728dd0d6981" (String.sub (hex cipher) 0 32)

let chacha20_involution =
  QCheck.Test.make ~name:"xor is its own inverse" ~count:200 QCheck.string (fun s ->
      let key = Crypto.Sha256.digest "key" in
      let nonce = String.sub (Crypto.Sha256.digest "nonce") 0 12 in
      String.equal s (Crypto.Chacha20.xor ~key ~nonce (Crypto.Chacha20.xor ~key ~nonce s)))

let test_chacha20_bad_sizes () =
  Alcotest.check_raises "short key" (Invalid_argument "Chacha20: key must be 32 bytes")
    (fun () -> ignore (Crypto.Chacha20.block ~key:"short" ~nonce:(String.make 12 '0') ~counter:0));
  Alcotest.check_raises "short nonce" (Invalid_argument "Chacha20: nonce must be 12 bytes")
    (fun () ->
      ignore (Crypto.Chacha20.block ~key:(String.make 32 'k') ~nonce:"short" ~counter:0))

(* --- DRBG ------------------------------------------------------------------ *)

let test_drbg_deterministic () =
  let a = Crypto.Drbg.create ~seed:"s" and b = Crypto.Drbg.create ~seed:"s" in
  Alcotest.(check string) "same stream"
    (hex (Crypto.Drbg.random_bytes a 64))
    (hex (Crypto.Drbg.random_bytes b 64))

let test_drbg_streams_differ () =
  let a = Crypto.Drbg.create ~seed:"s1" and b = Crypto.Drbg.create ~seed:"s2" in
  Alcotest.(check bool) "different seeds differ" false
    (String.equal (Crypto.Drbg.random_bytes a 32) (Crypto.Drbg.random_bytes b 32))

let test_drbg_reseed_changes_stream () =
  let a = Crypto.Drbg.create ~seed:"s" and b = Crypto.Drbg.create ~seed:"s" in
  Crypto.Drbg.reseed b "extra entropy";
  Alcotest.(check bool) "reseed diverges" false
    (String.equal (Crypto.Drbg.random_bytes a 32) (Crypto.Drbg.random_bytes b 32))

let drbg_int_bounds =
  QCheck.Test.make ~name:"Drbg.random_int in bounds" ~count:300 QCheck.small_int (fun bound ->
      QCheck.assume (bound > 0);
      let d = Crypto.Drbg.create ~seed:"b" in
      let v = Crypto.Drbg.random_int d bound in
      v >= 0 && v < bound)

(* --- Bignum ----------------------------------------------------------------- *)

module B = Crypto.Bignum

let nat = QCheck.map abs QCheck.int

let test_bignum_roundtrip_int () =
  List.iter
    (fun n -> Alcotest.(check (option int)) "roundtrip" (Some n) (B.to_int (B.of_int n)))
    [ 0; 1; 255; 1 lsl 26; (1 lsl 26) - 1; max_int ]

let bignum_addsub =
  QCheck.Test.make ~name:"(a+b)-b = a" ~count:300 (QCheck.pair nat nat) (fun (a, b) ->
      B.equal (B.of_int a) (B.sub (B.add (B.of_int a) (B.of_int b)) (B.of_int b)))

let bignum_mul_matches_int =
  QCheck.Test.make ~name:"mul matches native for small ints" ~count:300
    QCheck.(pair (int_range 0 (1 lsl 30)) (int_range 0 (1 lsl 30)))
    (fun (a, b) -> B.to_int (B.mul (B.of_int a) (B.of_int b)) = Some (a * b))

let big_of_seed seed bits =
  let d = Crypto.Drbg.create ~seed in
  B.random_bits d bits

let bignum_divmod_invariant =
  QCheck.Test.make ~name:"divmod: a = q*b + r, r < b (512-bit)" ~count:60
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let a = big_of_seed (string_of_int s1) 512 in
      let b = big_of_seed (string_of_int s2 ^ "x") 256 in
      QCheck.assume (not (B.is_zero b));
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r) && B.compare r b < 0)

let bignum_divmod_small_consistent =
  QCheck.Test.make ~name:"divmod_small agrees with divmod" ~count:100
    QCheck.(pair small_int (int_range 1 1000000))
    (fun (s, d) ->
      let a = big_of_seed (string_of_int s) 300 in
      let q1, r1 = B.divmod_small a d in
      let q2, r2 = B.divmod a (B.of_int d) in
      B.equal q1 q2 && B.to_int r2 = Some r1)

let test_bignum_div_by_zero () =
  Alcotest.check_raises "division by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let bignum_shift_roundtrip =
  QCheck.Test.make ~name:"shift left then right" ~count:100
    QCheck.(pair small_int (int_range 0 100))
    (fun (s, k) ->
      let a = big_of_seed (string_of_int s) 200 in
      B.equal a (B.shift_right (B.shift_left a k) k))

let bignum_modpow_matches_naive =
  QCheck.Test.make ~name:"mod_pow matches naive small case" ~count:100
    QCheck.(triple (int_range 0 1000) (int_range 0 40) (int_range 2 10000))
    (fun (base, e, m) ->
      let naive = ref 1 in
      for _ = 1 to e do
        naive := !naive * base mod m
      done;
      B.to_int (B.mod_pow ~base:(B.of_int base) ~exp:(B.of_int e) ~modulus:(B.of_int m))
      = Some !naive)

let test_bignum_modpow_fermat () =
  (* Fermat's little theorem on a large prime. *)
  let d = Crypto.Drbg.create ~seed:"fermat" in
  let p = B.generate_prime d ~bits:192 in
  let a = B.random_below d p in
  let a = if B.is_zero a then B.one else a in
  let r = B.mod_pow ~base:a ~exp:(B.sub p B.one) ~modulus:p in
  Alcotest.(check bool) "a^(p-1) = 1 mod p" true (B.equal r B.one)

let bignum_mod_inverse =
  QCheck.Test.make ~name:"mod_inverse: a * a^-1 = 1 (mod m)" ~count:60
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let d = Crypto.Drbg.create ~seed:(Printf.sprintf "inv%d-%d" s1 s2) in
      let m = B.generate_prime d ~bits:96 in
      let a = B.random_below d m in
      QCheck.assume (not (B.is_zero a));
      match B.mod_inverse a m with
      | None -> false
      | Some inv -> B.equal (B.rem (B.mul a inv) m) B.one)

let test_bignum_mod_inverse_none () =
  Alcotest.(check bool) "no inverse when gcd > 1" true
    (B.mod_inverse (B.of_int 6) (B.of_int 9) = None)

let bignum_bytes_roundtrip =
  QCheck.Test.make ~name:"of_bytes_be/to_bytes_be roundtrip" ~count:100 QCheck.small_int
    (fun s ->
      let a = big_of_seed (string_of_int s) 300 in
      B.equal a (B.of_bytes_be (B.to_bytes_be a)))

let test_bignum_to_bytes_width () =
  let a = B.of_int 0xABCD in
  Alcotest.(check string) "padded" "00000000abcd" (Crypto.Hexs.encode (B.to_bytes_be ~width:6 a));
  Alcotest.check_raises "width too small"
    (Invalid_argument "Bignum.to_bytes_be: width too small") (fun () ->
      ignore (B.to_bytes_be ~width:1 a))

let test_bignum_primality_known () =
  let d = Crypto.Drbg.create ~seed:"primes" in
  List.iter
    (fun (n, expect) ->
      Alcotest.(check bool)
        (string_of_int n) expect
        (B.is_probable_prime d (B.of_int n)))
    [
      (2, true); (3, true); (4, false); (17, true); (561, false) (* Carmichael *);
      (7919, true); (7917, false); (104729, true); (1000003, true); (1000001, false);
    ]

let test_bignum_generate_prime_bits () =
  let d = Crypto.Drbg.create ~seed:"gen" in
  let p = B.generate_prime d ~bits:128 in
  Alcotest.(check int) "bit length" 128 (B.bit_length p);
  Alcotest.(check bool) "odd" true (B.is_odd p);
  Alcotest.(check bool) "probably prime" true (B.is_probable_prime d p)

let test_bignum_gcd () =
  Alcotest.(check (option int)) "gcd" (Some 6)
    (B.to_int (B.gcd (B.of_int 54) (B.of_int 24)));
  Alcotest.(check (option int)) "gcd with zero" (Some 7)
    (B.to_int (B.gcd (B.of_int 7) B.zero))

let test_bignum_hex_roundtrip () =
  let a = big_of_seed "hexrt" 260 in
  Alcotest.(check bool) "hex roundtrip" true (B.equal a (B.of_hex (B.to_hex a)))

(* --- RSA --------------------------------------------------------------------- *)

let shared_rsa =
  lazy
    (let d = Crypto.Drbg.create ~seed:"rsa-test" in
     Crypto.Rsa.generate d ~bits:512)

let test_rsa_sign_verify () =
  let kp = Lazy.force shared_rsa in
  let s = Crypto.Rsa.sign kp.secret "hello world" in
  Alcotest.(check bool) "verifies" true (Crypto.Rsa.verify kp.public ~signature:s "hello world");
  Alcotest.(check bool) "rejects other message" false
    (Crypto.Rsa.verify kp.public ~signature:s "hello worlx")

let test_rsa_signature_tamper () =
  let kp = Lazy.force shared_rsa in
  let s = Bytes.of_string (Crypto.Rsa.sign kp.secret "msg") in
  Bytes.set s 10 (Char.chr (Char.code (Bytes.get s 10) lxor 1));
  Alcotest.(check bool) "tampered signature rejected" false
    (Crypto.Rsa.verify kp.public ~signature:(Bytes.to_string s) "msg")

let test_rsa_wrong_key () =
  let kp = Lazy.force shared_rsa in
  let d = Crypto.Drbg.create ~seed:"rsa-other" in
  let other = Crypto.Rsa.generate d ~bits:512 in
  let s = Crypto.Rsa.sign kp.secret "msg" in
  Alcotest.(check bool) "other key rejects" false
    (Crypto.Rsa.verify other.public ~signature:s "msg")

let rsa_encrypt_roundtrip =
  QCheck.Test.make ~name:"encrypt/decrypt roundtrip" ~count:50
    (QCheck.string_of_size (QCheck.Gen.int_range 0 50))
    (fun msg ->
      let kp = Lazy.force shared_rsa in
      let d = Crypto.Drbg.create ~seed:("enc" ^ msg) in
      Crypto.Rsa.decrypt kp.secret (Crypto.Rsa.encrypt d kp.public msg) = Some msg)

let test_rsa_decrypt_tampered () =
  let kp = Lazy.force shared_rsa in
  let d = Crypto.Drbg.create ~seed:"enc-t" in
  let c = Bytes.of_string (Crypto.Rsa.encrypt d kp.public "secret") in
  Bytes.set c 5 (Char.chr (Char.code (Bytes.get c 5) lxor 1));
  (* Tampered ciphertext decrypts to garbage: either padding fails or the
     plaintext differs. *)
  match Crypto.Rsa.decrypt kp.secret (Bytes.to_string c) with
  | None -> ()
  | Some m -> Alcotest.(check bool) "differs" false (String.equal m "secret")

let test_rsa_encrypt_too_long () =
  let kp = Lazy.force shared_rsa in
  let d = Crypto.Drbg.create ~seed:"long" in
  let too_long = String.make (Crypto.Rsa.max_plaintext kp.public + 1) 'x' in
  Alcotest.check_raises "too long" (Invalid_argument "Rsa.encrypt: message too long for modulus")
    (fun () -> ignore (Crypto.Rsa.encrypt d kp.public too_long))

let test_rsa_public_roundtrip () =
  let kp = Lazy.force shared_rsa in
  match Crypto.Rsa.public_of_string (Crypto.Rsa.public_to_string kp.public) with
  | None -> Alcotest.fail "roundtrip failed"
  | Some p ->
      Alcotest.(check string) "fingerprints match"
        (hex (Crypto.Rsa.fingerprint kp.public))
        (hex (Crypto.Rsa.fingerprint p))

let test_rsa_public_of_string_garbage () =
  Alcotest.(check bool) "garbage rejected" true (Crypto.Rsa.public_of_string "nonsense" = None);
  Alcotest.(check bool) "wrong tag rejected" true
    (Crypto.Rsa.public_of_string "rsa-priv:512:aa:bb" = None)

(* --- Merkle ------------------------------------------------------------------- *)

module M = Crypto.Merkle

(* Deterministic leaf data: sizes include odd counts, so odd-node promotion
   at every level gets exercised. *)
let mk_leaves n = List.init n (fun i -> Printf.sprintf "leaf-%d-%d" n i)

let merkle_all_indices_verify =
  QCheck.Test.make ~name:"every leaf's proof verifies" ~count:60
    QCheck.(int_range 1 40)
    (fun n ->
      let leaves = mk_leaves n in
      let root = M.root leaves in
      List.for_all
        (fun i ->
          let p = M.proof leaves i in
          M.verify ~root ~leaf:(List.nth leaves i) p)
        (List.init n Fun.id))

let merkle_tampered_leaf_rejected =
  QCheck.Test.make ~name:"tampered leaf rejected" ~count:60
    QCheck.(pair (int_range 1 40) small_nat)
    (fun (n, k) ->
      let leaves = mk_leaves n in
      let i = k mod n in
      let p = M.proof leaves i in
      not (M.verify ~root:(M.root leaves) ~leaf:(List.nth leaves i ^ "!") p))

let merkle_wrong_index_proof_rejected =
  QCheck.Test.make ~name:"proof for another index rejected" ~count:60
    QCheck.(pair (int_range 2 40) small_nat)
    (fun (n, k) ->
      let leaves = mk_leaves n in
      let i = k mod n in
      let j = (i + 1) mod n in
      (* A proof belongs to exactly one position: using leaf j with leaf i's
         proof must fail (this is what the batch-appraisal tamper test
         relies on at the protocol layer). *)
      not (M.verify ~root:(M.root leaves) ~leaf:(List.nth leaves j) (M.proof leaves i)))

let merkle_proof_length_bounded =
  QCheck.Test.make ~name:"proof_length <= max_proof_length" ~count:60
    QCheck.(int_range 1 64)
    (fun n ->
      let leaves = mk_leaves n in
      List.for_all
        (fun i -> M.proof_length (M.proof leaves i) <= M.max_proof_length n)
        (List.init n Fun.id))

let merkle_codec_roundtrip =
  QCheck.Test.make ~name:"proof wire roundtrip" ~count:60
    QCheck.(pair (int_range 1 32) small_nat)
    (fun (n, k) ->
      let leaves = mk_leaves n in
      let i = k mod n in
      let p = M.proof leaves i in
      let raw = Wire.Codec.encode (fun e -> M.encode e p) in
      match Wire.Codec.decode_opt raw M.decode with
      | None -> false
      | Some p' -> M.verify ~root:(M.root leaves) ~leaf:(List.nth leaves i) p')

let test_merkle_single_leaf () =
  (* A one-leaf tree: root = leaf hash, empty proof. *)
  let root = M.root [ "only" ] in
  Alcotest.(check string) "root is the leaf hash" (hex (M.leaf_hash "only")) (hex root);
  let p = M.proof [ "only" ] 0 in
  Alcotest.(check int) "empty proof" 0 (M.proof_length p);
  Alcotest.(check bool) "verifies" true (M.verify ~root ~leaf:"only" p)

let test_merkle_domain_separation () =
  Alcotest.(check bool) "leaf hash differs from plain digest" false
    (String.equal (M.leaf_hash "x") (Crypto.Sha256.digest "x"))

let test_merkle_bounds () =
  Alcotest.check_raises "empty root" (Invalid_argument "Merkle: no leaves") (fun () ->
      ignore (M.root []));
  Alcotest.check_raises "index out of range"
    (Invalid_argument "Merkle.proof: leaf index out of range") (fun () ->
      ignore (M.proof [ "a"; "b" ] 2))

let test_merkle_node_count () =
  (* n leaf hashes plus interior nodes; for a perfect tree of 4: 4 + 2 + 1. *)
  Alcotest.(check int) "1 leaf" 1 (M.node_count 1);
  Alcotest.(check int) "4 leaves" 7 (M.node_count 4);
  Alcotest.(check int) "2 leaves" 3 (M.node_count 2);
  Alcotest.(check int) "max_proof_length 1" 0 (M.max_proof_length 1);
  Alcotest.(check int) "max_proof_length 4" 2 (M.max_proof_length 4);
  Alcotest.(check int) "max_proof_length 5" 3 (M.max_proof_length 5)

(* --- Merkle log views (RFC 6962 prefix/consistency machinery) ----------------

   PRNG-seeded sweeps over every tree size from 1 to 65 leaves, so each
   ragged shape (odd counts at every level) is hit deterministically rather
   than sampled.  These harden the PR 3 tree before the transparency log
   (lib/audit) builds on it. *)

let random_leaves prng n =
  List.init n (fun _ -> Bytes.to_string (Sim.Prng.bytes prng (1 + Sim.Prng.int prng 24)))

let test_merkle_prefix_root_matches () =
  let prng = Sim.Prng.create 0xA0D171 in
  for n = 1 to 65 do
    let leaves = random_leaves prng n in
    (* The prefix view at the full size is the classic tree... *)
    Alcotest.(check string)
      (Printf.sprintf "root_prefix = root at n=%d" n)
      (hex (M.root leaves))
      (hex (M.root_prefix leaves ~size:n));
    (* ...and at every proper prefix it matches the tree over that prefix. *)
    let m = 1 + Sim.Prng.int prng n in
    Alcotest.(check string)
      (Printf.sprintf "prefix %d of %d" m n)
      (hex (M.root (List.filteri (fun i _ -> i < m) leaves)))
      (hex (M.root_prefix leaves ~size:m))
  done

let test_merkle_inclusion_ragged () =
  let prng = Sim.Prng.create 0xA0D172 in
  for n = 1 to 65 do
    let leaves = random_leaves prng n in
    let arr = Array.of_list leaves in
    let root = M.root leaves in
    for i = 0 to n - 1 do
      let p = M.inclusion_prefix leaves ~size:n i in
      if not (M.verify ~root ~leaf:arr.(i) p) then
        Alcotest.failf "inclusion proof failed at n=%d i=%d" n i;
      (* The log-view proof must be byte-identical to the PR 3 proof. *)
      let enc p = Wire.Codec.encode (fun e -> M.encode e p) in
      if not (String.equal (enc p) (enc (M.proof leaves i))) then
        Alcotest.failf "inclusion_prefix <> proof at n=%d i=%d" n i
    done;
    (* Tampering with one leaf must break that leaf's proof. *)
    let i = Sim.Prng.int prng n in
    let p = M.inclusion_prefix leaves ~size:n i in
    if M.verify ~root ~leaf:(arr.(i) ^ "!") p then
      Alcotest.failf "tampered leaf accepted at n=%d i=%d" n i
  done

let test_merkle_consistency_all_pairs () =
  let prng = Sim.Prng.create 0xA0D173 in
  for n = 1 to 65 do
    let leaves = random_leaves prng n in
    for m = 0 to n do
      let proof = M.consistency leaves ~old_size:m in
      let old_root = M.root_prefix leaves ~size:m in
      if
        not
          (M.verify_consistency ~old_size:m ~old_root ~size:n ~root:(M.root leaves) proof)
      then Alcotest.failf "consistency proof failed for %d -> %d" m n
    done
  done

let test_merkle_consistency_tamper () =
  let prng = Sim.Prng.create 0xA0D174 in
  for n = 2 to 65 do
    let leaves = random_leaves prng n in
    let m = 1 + Sim.Prng.int prng (n - 1) in
    let proof = M.consistency leaves ~old_size:m in
    let old_root = M.root_prefix leaves ~size:m in
    let root = M.root leaves in
    (* A rewritten history: change one committed (prefix) leaf and rebuild.
       The old head can never be consistent with the rewritten tree. *)
    let k = Sim.Prng.int prng m in
    let rewritten = List.mapi (fun i l -> if i = k then l ^ "!" else l) leaves in
    let root' = M.root rewritten in
    if
      M.verify_consistency ~old_size:m ~old_root ~size:n ~root:root'
        (M.consistency rewritten ~old_size:m)
    then Alcotest.failf "rewritten history accepted at n=%d m=%d k=%d" n m k;
    (* A garbled proof element must be rejected (empty proofs are only
       legal for m = n, excluded here unless the proof is present). *)
    (match proof with
    | [] ->
        (* m < n with an empty proof only happens when... it cannot: the
           proof is empty iff m = 0 or m = n.  m >= 1 and m < n here. *)
        if m <> 0 && m <> n then Alcotest.failf "unexpected empty proof %d -> %d" m n
    | first :: rest ->
        let bad = Crypto.Sha256.digest (first ^ "?") :: rest in
        if M.verify_consistency ~old_size:m ~old_root ~size:n ~root bad then
          Alcotest.failf "garbled consistency proof accepted %d -> %d" m n);
    (* Wrong old root: claims a different history was committed. *)
    if
      M.verify_consistency ~old_size:m
        ~old_root:(Crypto.Sha256.digest "not the root")
        ~size:n ~root proof
    then Alcotest.failf "wrong old root accepted %d -> %d" m n
  done

let test_merkle_consistency_edges () =
  let leaves = mk_leaves 7 in
  let root = M.root leaves in
  (* Equal sizes: empty proof, equal roots required. *)
  Alcotest.(check bool) "m = n" true
    (M.verify_consistency ~old_size:7 ~old_root:root ~size:7 ~root []);
  Alcotest.(check bool) "m = n, wrong root" false
    (M.verify_consistency ~old_size:7 ~old_root:(M.root (mk_leaves 6)) ~size:7 ~root []);
  (* Empty old tree is trivially a prefix. *)
  Alcotest.(check bool) "m = 0" true
    (M.verify_consistency ~old_size:0 ~old_root:M.empty_root ~size:7 ~root []);
  (* Sizes out of order can never verify. *)
  Alcotest.(check bool) "m > n" false
    (M.verify_consistency ~old_size:8 ~old_root:root ~size:7 ~root []);
  Alcotest.check_raises "generation rejects m > n"
    (Invalid_argument "Merkle.consistency_with: sizes out of order") (fun () ->
      ignore (M.consistency leaves ~old_size:8))

(* --- Hex ---------------------------------------------------------------------- *)

let hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200 QCheck.string (fun s ->
      String.equal s (Crypto.Hexs.decode (Crypto.Hexs.encode s)))

let test_hex_errors () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hexs.decode: odd length") (fun () ->
      ignore (Crypto.Hexs.decode "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Hexs.decode: not a hex digit")
    (fun () -> ignore (Crypto.Hexs.decode "zz"))

let () =
  Alcotest.run "crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "NIST vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "million a's" `Slow test_sha256_million_a;
          qtest sha256_incremental_matches;
          Alcotest.test_case "digest_list" `Quick test_sha256_digest_list;
          Alcotest.test_case "streaming block boundaries" `Quick
            test_sha256_streaming_boundaries;
          Alcotest.test_case "streaming million a's" `Slow test_sha256_streaming_million_a;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_rfc4231;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
          Alcotest.test_case "derive" `Quick test_hmac_derive;
        ] );
      ( "chacha20",
        [
          Alcotest.test_case "RFC 8439 block" `Quick test_chacha20_rfc_block;
          Alcotest.test_case "RFC 8439 encryption" `Quick test_chacha20_rfc_encrypt;
          qtest chacha20_involution;
          Alcotest.test_case "bad sizes" `Quick test_chacha20_bad_sizes;
        ] );
      ( "drbg",
        [
          Alcotest.test_case "deterministic" `Quick test_drbg_deterministic;
          Alcotest.test_case "streams differ" `Quick test_drbg_streams_differ;
          Alcotest.test_case "reseed diverges" `Quick test_drbg_reseed_changes_stream;
          qtest drbg_int_bounds;
        ] );
      ( "bignum",
        [
          Alcotest.test_case "int roundtrip" `Quick test_bignum_roundtrip_int;
          qtest bignum_addsub;
          qtest bignum_mul_matches_int;
          qtest bignum_divmod_invariant;
          qtest bignum_divmod_small_consistent;
          Alcotest.test_case "division by zero" `Quick test_bignum_div_by_zero;
          qtest bignum_shift_roundtrip;
          qtest bignum_modpow_matches_naive;
          Alcotest.test_case "Fermat" `Quick test_bignum_modpow_fermat;
          qtest bignum_mod_inverse;
          Alcotest.test_case "no inverse" `Quick test_bignum_mod_inverse_none;
          qtest bignum_bytes_roundtrip;
          Alcotest.test_case "to_bytes width" `Quick test_bignum_to_bytes_width;
          Alcotest.test_case "known primes" `Quick test_bignum_primality_known;
          Alcotest.test_case "generate_prime" `Quick test_bignum_generate_prime_bits;
          Alcotest.test_case "gcd" `Quick test_bignum_gcd;
          Alcotest.test_case "hex roundtrip" `Quick test_bignum_hex_roundtrip;
        ] );
      ( "rsa",
        [
          Alcotest.test_case "sign/verify" `Quick test_rsa_sign_verify;
          Alcotest.test_case "tampered signature" `Quick test_rsa_signature_tamper;
          Alcotest.test_case "wrong key" `Quick test_rsa_wrong_key;
          qtest rsa_encrypt_roundtrip;
          Alcotest.test_case "tampered ciphertext" `Quick test_rsa_decrypt_tampered;
          Alcotest.test_case "plaintext too long" `Quick test_rsa_encrypt_too_long;
          Alcotest.test_case "public key roundtrip" `Quick test_rsa_public_roundtrip;
          Alcotest.test_case "public_of_string garbage" `Quick test_rsa_public_of_string_garbage;
        ] );
      ( "merkle",
        [
          qtest merkle_all_indices_verify;
          qtest merkle_tampered_leaf_rejected;
          qtest merkle_wrong_index_proof_rejected;
          qtest merkle_proof_length_bounded;
          qtest merkle_codec_roundtrip;
          Alcotest.test_case "single leaf" `Quick test_merkle_single_leaf;
          Alcotest.test_case "domain separation" `Quick test_merkle_domain_separation;
          Alcotest.test_case "bounds" `Quick test_merkle_bounds;
          Alcotest.test_case "node_count" `Quick test_merkle_node_count;
          Alcotest.test_case "prefix roots (1..65)" `Quick test_merkle_prefix_root_matches;
          Alcotest.test_case "ragged inclusion (1..65)" `Quick test_merkle_inclusion_ragged;
          Alcotest.test_case "consistency all pairs (1..65)" `Quick
            test_merkle_consistency_all_pairs;
          Alcotest.test_case "consistency tamper" `Quick test_merkle_consistency_tamper;
          Alcotest.test_case "consistency edges" `Quick test_merkle_consistency_edges;
        ] );
      ("hex", [ qtest hex_roundtrip; Alcotest.test_case "errors" `Quick test_hex_errors ]);
    ]
