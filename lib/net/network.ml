type address = string

type direction = Request | Reply

type message = { seq : int; src : address; dst : address; dir : direction; payload : string }

type action = Pass | Replace of string | Drop

type adversary = message -> action

type error = [ `Dropped | `No_such_host of address ]

type retry_policy = {
  max_attempts : int;
  base_delay : Sim.Time.t;
  backoff : float;
  max_delay : Sim.Time.t;
  deadline : Sim.Time.t option;
}

let default_retry_policy =
  {
    max_attempts = 4;
    base_delay = Sim.Time.ms 2;
    backoff = 2.0;
    max_delay = Sim.Time.ms 50;
    deadline = Some (Sim.Time.sec 2);
  }

type t = {
  prng : Sim.Prng.t;
  base_latency_us : int;
  jitter_us : int;
  bandwidth_bytes_per_us : float;
  handlers : (address, string -> string) Hashtbl.t;
  mutable adversary : adversary option;
  mutable retry : retry_policy;
  mutable log : message list; (* newest first *)
  mutable seq : int;
  mutable messages : int;
  mutable bytes : int;
  mutable drops : int;
  mutable retries : int;
}

let create ?(base_latency_us = 200) ?(jitter_us = 50) ?(bandwidth_mbps = 1000.0) ~seed () =
  {
    prng = Sim.Prng.create seed;
    base_latency_us;
    jitter_us;
    bandwidth_bytes_per_us = bandwidth_mbps *. 1.0e6 /. 8.0 /. 1.0e6;
    handlers = Hashtbl.create 16;
    adversary = None;
    retry = default_retry_policy;
    log = [];
    seq = 0;
    messages = 0;
    bytes = 0;
    drops = 0;
    retries = 0;
  }

let register t addr handler = Hashtbl.replace t.handlers addr handler
let unregister t addr = Hashtbl.remove t.handlers addr

let leg_latency t nbytes =
  let jitter =
    if t.jitter_us = 0 then 0
    else int_of_float (abs_float (Sim.Prng.gaussian t.prng ~mu:0.0 ~sigma:(float_of_int t.jitter_us)))
  in
  let wire = int_of_float (float_of_int nbytes /. t.bandwidth_bytes_per_us) in
  t.base_latency_us + jitter + wire

let observe t ~src ~dst ~dir payload =
  t.seq <- t.seq + 1;
  t.messages <- t.messages + 1;
  let msg = { seq = t.seq; src; dst; dir; payload } in
  t.log <- msg :: t.log;
  (* Byte accounting follows what actually crosses the far end of the wire:
     a rewritten payload is counted at its delivered length, a dropped one
     still occupied the sender's leg. *)
  match t.adversary with
  | None ->
      t.bytes <- t.bytes + String.length payload;
      Some payload
  | Some adv -> (
      match adv msg with
      | Pass ->
          t.bytes <- t.bytes + String.length payload;
          Some payload
      | Replace p ->
          t.bytes <- t.bytes + String.length p;
          Some p
      | Drop ->
          t.bytes <- t.bytes + String.length payload;
          t.drops <- t.drops + 1;
          None)

let call t ~src ~dst payload =
  match Hashtbl.find_opt t.handlers dst with
  | None -> (Error (`No_such_host dst), Sim.Time.zero)
  | Some handler -> (
      let t1 = leg_latency t (String.length payload) in
      match observe t ~src ~dst ~dir:Request payload with
      | None -> (Error `Dropped, Sim.Time.us t1)
      | Some delivered -> (
          let reply = handler delivered in
          let t2 = leg_latency t (String.length reply) in
          match observe t ~src:dst ~dst:src ~dir:Reply reply with
          | None -> (Error `Dropped, Sim.Time.us (t1 + t2))
          | Some reply -> (Ok reply, Sim.Time.us (t1 + t2))))

let set_retry_policy t p = t.retry <- p
let retry_policy t = t.retry

let call_with_retry ?policy t ~src ~dst payload =
  let p = match policy with Some p -> p | None -> t.retry in
  let max_attempts = max 1 p.max_attempts in
  let delay_for attempt =
    (* attempt is 1-based; the wait before attempt k+1 is
       base * backoff^(k-1), capped at max_delay. *)
    let d =
      int_of_float (float_of_int p.base_delay *. (p.backoff ** float_of_int (attempt - 1)))
    in
    min d p.max_delay
  in
  let rec go attempt elapsed =
    let result, leg = call t ~src ~dst payload in
    let elapsed = elapsed + leg in
    match result with
    | Ok reply -> (Ok reply, elapsed)
    | Error (`No_such_host _ as e) -> (Error e, elapsed)
    | Error `Dropped ->
        let wait = delay_for attempt in
        let over_deadline =
          match p.deadline with Some d -> elapsed + wait > d | None -> false
        in
        if attempt >= max_attempts || over_deadline then (Error `Dropped, elapsed)
        else begin
          t.retries <- t.retries + 1;
          go (attempt + 1) (elapsed + wait)
        end
  in
  go 1 Sim.Time.zero

let transfer_time t ~bytes =
  Sim.Time.us (t.base_latency_us + int_of_float (float_of_int bytes /. t.bandwidth_bytes_per_us))

let set_adversary t adv = t.adversary <- Some adv
let clear_adversary t = t.adversary <- None

let recorded t = List.rev t.log
let message_count t = t.messages
let bytes_sent t = t.bytes
let drop_count t = t.drops
let retry_count t = t.retries
