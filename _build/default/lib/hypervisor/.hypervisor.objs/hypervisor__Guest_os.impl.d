lib/hypervisor/guest_os.ml: Crypto List
