(** Deterministic fault injection for the simulated network.

    These adversaries model the availability half of the paper's 3.3 threat
    model — a network leg that loses or corrupts messages — as opposed to
    the protocol-subverting attackers in [lib/attacks].  Every recovery path
    in the retry/resync layer ([Network.call_with_retry], secure-channel
    record caching and resets, the [Unknown] degradation in [lib/core]) is
    exercised against them in tests and in [bench/main.exe faults].

    All are deterministic: the counting variants keep their own message
    counter, the probabilistic one draws from a seeded {!Sim.Prng}. *)

val drop_nth : ?phase:int -> int -> Network.adversary
(** [drop_nth n] drops every [n]-th observed message (the [n]-th,
    [2n]-th, ...).  [phase] pre-advances the counter, e.g.
    [drop_nth ~phase:(n - 1) n] drops the very first message. *)

val garble_nth : ?phase:int -> ?offset:int -> int -> Network.adversary
(** [garble_nth n] flips one byte (at [offset], default 0, modulo the
    length) of every [n]-th message instead of dropping it. *)

val drop_first : int -> Network.adversary
(** [drop_first n] drops the first [n] messages, then passes everything —
    a transient outage. *)

val lossy : ?garble_p:float -> drop_p:float -> seed:int -> unit -> Network.adversary
(** [lossy ~drop_p ~seed ()] drops each message independently with
    probability [drop_p] and garbles it with probability [garble_p]
    (default 0), using a dedicated PRNG seeded with [seed]. *)

val blackout : unit -> Network.adversary
(** Drop everything: a total partition of the monitoring plane. *)

val garble : ?offset:int -> string -> string
(** Flip one byte of a payload (identity on the empty string). *)
