module Codec = Wire.Codec

type error =
  [ `Auth_failure | `Replay | `Malformed | `Transport of string | `Rejected of string ]

let pp_error ppf = function
  | `Auth_failure -> Format.pp_print_string ppf "authentication failure"
  | `Replay -> Format.pp_print_string ppf "replay detected"
  | `Malformed -> Format.pp_print_string ppf "malformed message"
  | `Transport e -> Format.fprintf ppf "transport error: %s" e
  | `Rejected r -> Format.fprintf ppf "handshake rejected: %s" r

(* Server-side refusal reasons that a reset (fresh handshake) may cure, as
   opposed to policy refusals that will repeat identically. *)
let reason_seq_violation = "sequence violation"
let reason_unknown_session = "unknown session"

let desync = function
  | `Replay -> true
  | `Rejected r ->
      String.equal r reason_seq_violation || String.equal r reason_unknown_session
  | `Auth_failure | `Malformed | `Transport _ -> false

let transient = function
  | `Transport _ | `Replay | `Auth_failure | `Malformed -> true
  | `Rejected r ->
      String.equal r reason_seq_violation
      || String.equal r reason_unknown_session
      || String.equal r "record authentication failed"
      || (String.length r >= 9 && String.equal (String.sub r 0 9) "malformed")

module Identity = struct
  type t = { name : string; keypair : Crypto.Rsa.keypair; cert : Ca.cert }

  let make ca ~seed ?(bits = 1024) ~name () =
    let drbg = Crypto.Drbg.create ~seed:(Printf.sprintf "identity|%s|%s" name seed) in
    let keypair = Crypto.Rsa.generate drbg ~bits in
    { name; keypair; cert = Ca.issue ca ~subject:name keypair.public }
end

(* Message tags on the wire. *)
let tag_hello = 1
let tag_hello_reply = 2
let tag_key_exchange = 3
let tag_key_confirm = 4
let tag_record = 5
let tag_record_reply = 6
let tag_error = 255

let random_size = 32
let premaster_size = 32

(* Transcript-bound payloads that the identity keys sign. *)
let server_auth_payload ~client_random ~server_random ~client_name ~server_name =
  Printf.sprintf "hs-server|%s|%s|%s|%s" client_random server_random client_name server_name

let client_auth_payload ~client_random ~server_random ~enc_premaster =
  Printf.sprintf "hs-client|%s|%s|%s" client_random server_random enc_premaster

(* Key schedule: master secret -> four directional keys. *)
type keys = { c2s_enc : string; c2s_mac : string; s2c_enc : string; s2c_mac : string }

let derive_keys ~premaster ~client_random ~server_random =
  let master = Crypto.Hmac.mac ~key:premaster (client_random ^ server_random) in
  {
    c2s_enc = Crypto.Hmac.derive ~secret:master ~label:"c2s-enc" 32;
    c2s_mac = Crypto.Hmac.derive ~secret:master ~label:"c2s-mac" 32;
    s2c_enc = Crypto.Hmac.derive ~secret:master ~label:"s2c-enc" 32;
    s2c_mac = Crypto.Hmac.derive ~secret:master ~label:"s2c-mac" 32;
  }

let confirm_payload ~keys:k ~server_random =
  Crypto.Hmac.mac ~key:k.c2s_mac ("server-finished|" ^ server_random)

(* Records: seq-numbered ChaCha20 + HMAC, encrypt-then-MAC. *)
let seq_nonce seq =
  Codec.encode (fun e ->
      Codec.Enc.u32 e 0;
      Codec.Enc.int e seq)

let seal ~enc_key ~mac_key ~seq plaintext =
  let cipher = Crypto.Chacha20.xor ~key:enc_key ~nonce:(seq_nonce seq) plaintext in
  let tag =
    Crypto.Hmac.mac ~key:mac_key
      (Codec.encode (fun e ->
           Codec.Enc.int e seq;
           Codec.Enc.str e cipher))
  in
  (cipher, tag)

let unseal ~enc_key ~mac_key ~seq ~cipher ~tag =
  let authed =
    Codec.encode (fun e ->
        Codec.Enc.int e seq;
        Codec.Enc.str e cipher)
  in
  if not (Crypto.Hmac.verify ~key:mac_key ~tag authed) then Error `Auth_failure
  else Ok (Crypto.Chacha20.xor ~key:enc_key ~nonce:(seq_nonce seq) cipher)

let error_reply reason =
  Codec.encode (fun e ->
      Codec.Enc.u8 e tag_error;
      Codec.Enc.str e reason)

module Server = struct
  type session = {
    peer : string;
    keys : keys;
    confirm_reply : string;
        (** the key-confirm message, re-sent verbatim when a retried key
            exchange arrives for an already-established session *)
    mutable next_c2s : int;  (** next sequence number expected from client *)
    mutable next_s2c : int;
    mutable last_record : (int * string * string) option;
        (** (seq, digest of the raw record, encoded reply) of the most
            recent data record — a retransmission of exactly that record is
            answered from this cache instead of being re-executed *)
  }

  type pending = { p_client_random : string; p_server_random : string; p_client_cert : Ca.cert }

  type t = {
    identity : Identity.t;
    ca : Crypto.Rsa.public;
    drbg : Crypto.Drbg.t;
    pending : (string, pending) Hashtbl.t;  (** keyed by session id *)
    established : (string, session) Hashtbl.t;
    on_request : peer:string -> string -> string;
    mutable accept : string -> bool;
  }

  let create ~identity ~ca ~seed ~on_request =
    {
      identity;
      ca;
      drbg = Crypto.Drbg.create ~seed:(Printf.sprintf "server|%s|%s" identity.Identity.name seed);
      pending = Hashtbl.create 8;
      established = Hashtbl.create 8;
      on_request;
      accept = (fun _ -> true);
    }

  let accept_only t p = t.accept <- p

  let sessions t = Hashtbl.length t.established

  let evict t ~peer =
    let stale =
      Hashtbl.fold
        (fun id s acc -> if String.equal s.peer peer then id :: acc else acc)
        t.established []
    in
    List.iter (Hashtbl.remove t.established) stale;
    List.length stale

  let handle_hello t d =
    let client_name = Codec.Dec.str d in
    let client_random = Codec.Dec.raw d random_size in
    let client_cert = Ca.decode d in
    Codec.Dec.expect_end d;
    if not (Ca.verify ~ca:t.ca client_cert) then error_reply "bad client certificate"
    else if not (String.equal client_cert.subject client_name) then
      error_reply "certificate subject mismatch"
    else if not (t.accept client_name) then error_reply "peer not allowed"
    else begin
      let server_random = Crypto.Drbg.random_bytes t.drbg random_size in
      let session_id = Crypto.Hexs.encode server_random in
      Hashtbl.replace t.pending session_id
        { p_client_random = client_random; p_server_random = server_random; p_client_cert = client_cert };
      let auth =
        Crypto.Rsa.sign t.identity.keypair.secret
          (server_auth_payload ~client_random ~server_random ~client_name
             ~server_name:t.identity.name)
      in
      Codec.encode (fun e ->
          Codec.Enc.u8 e tag_hello_reply;
          Codec.Enc.str e session_id;
          Codec.Enc.raw e server_random;
          Ca.encode e t.identity.cert;
          Codec.Enc.str e auth)
    end

  let handle_key_exchange t d =
    let session_id = Codec.Dec.str d in
    let enc_premaster = Codec.Dec.str d in
    let client_sig = Codec.Dec.str d in
    Codec.Dec.expect_end d;
    match Hashtbl.find_opt t.pending session_id with
    | None -> (
        (* A retried key exchange whose confirm was lost on the wire: the
           session is already up, so resend the (public) confirm verbatim
           rather than failing the client's handshake. *)
        match Hashtbl.find_opt t.established session_id with
        | Some s -> s.confirm_reply
        | None -> error_reply reason_unknown_session)
    | Some p ->
        let payload =
          client_auth_payload ~client_random:p.p_client_random
            ~server_random:p.p_server_random ~enc_premaster
        in
        (* Memoized: a retried key exchange re-sends the identical signed
           transcript, so the retry skips the exponentiation. *)
        if not (Crypto.Rsa.verify_memo p.p_client_cert.pubkey ~signature:client_sig payload)
        then error_reply "bad client signature"
        else begin
          match Crypto.Rsa.decrypt t.identity.keypair.secret enc_premaster with
          | None -> error_reply "premaster decryption failed"
          | Some premaster ->
              let keys =
                derive_keys ~premaster ~client_random:p.p_client_random
                  ~server_random:p.p_server_random
              in
              Hashtbl.remove t.pending session_id;
              let confirm_reply =
                Codec.encode (fun e ->
                    Codec.Enc.u8 e tag_key_confirm;
                    Codec.Enc.str e (confirm_payload ~keys ~server_random:p.p_server_random))
              in
              Hashtbl.replace t.established session_id
                {
                  peer = p.p_client_cert.subject;
                  keys;
                  confirm_reply;
                  next_c2s = 0;
                  next_s2c = 0;
                  last_record = None;
                };
              confirm_reply
        end

  let record_digest raw = Crypto.Sha256.digest raw

  let handle_record t raw d =
    let session_id = Codec.Dec.str d in
    let seq = Codec.Dec.int d in
    let cipher = Codec.Dec.str d in
    let tag = Codec.Dec.raw d 32 in
    Codec.Dec.expect_end d;
    match Hashtbl.find_opt t.established session_id with
    | None -> error_reply reason_unknown_session
    | Some s -> (
        match s.last_record with
        | Some (last_seq, last_digest, cached_reply)
          when seq = last_seq && String.equal (record_digest raw) last_digest ->
            (* Bit-for-bit retransmission of the record we just answered:
               the reply was lost, not the request.  Serve the cached reply
               without re-executing the request (idempotent delivery). *)
            cached_reply
        | _ ->
            if seq <> s.next_c2s then error_reply reason_seq_violation
            else begin
              match unseal ~enc_key:s.keys.c2s_enc ~mac_key:s.keys.c2s_mac ~seq ~cipher ~tag with
              | Error _ -> error_reply "record authentication failed"
              | Ok plaintext ->
                  s.next_c2s <- s.next_c2s + 1;
                  let reply = t.on_request ~peer:s.peer plaintext in
                  let rseq = s.next_s2c in
                  s.next_s2c <- rseq + 1;
                  let rcipher, rtag =
                    seal ~enc_key:s.keys.s2c_enc ~mac_key:s.keys.s2c_mac ~seq:rseq reply
                  in
                  let encoded =
                    Codec.encode (fun e ->
                        Codec.Enc.u8 e tag_record_reply;
                        Codec.Enc.int e rseq;
                        Codec.Enc.str e rcipher;
                        Codec.Enc.raw e rtag)
                  in
                  s.last_record <- Some (seq, record_digest raw, encoded);
                  encoded
            end)

  let handle t raw =
    match
      (try
         let d = Codec.Dec.of_string raw in
         let tag = Codec.Dec.u8 d in
         Ok (tag, d)
       with Codec.Error e -> Error e)
    with
    | Error e -> error_reply ("malformed: " ^ e)
    | Ok (tag, d) -> (
        try
          if tag = tag_hello then handle_hello t d
          else if tag = tag_key_exchange then handle_key_exchange t d
          else if tag = tag_record then handle_record t raw d
          else error_reply "unexpected message tag"
        with Codec.Error e -> error_reply ("malformed: " ^ e))
end

module Client = struct
  type session = {
    session_id : string;
    keys : keys;
    mutable next_c2s : int;
    mutable next_s2c : int;
  }

  type t = {
    identity : Identity.t;
    ca : Crypto.Rsa.public;
    drbg : Crypto.Drbg.t;
    peer_name : string;
    transport : string -> (string, string) result;
    mutable peer_key : Crypto.Rsa.public option;  (** [Some] once a handshake completed *)
    mutable session : session option;
    mutable handshakes : int;  (** completed handshakes (resyncs = handshakes - 1) *)
  }

  let peer t = t.peer_name

  let peer_key t =
    match t.peer_key with
    | Some k -> k
    | None -> invalid_arg "Secure_channel.Client.peer_key: no completed handshake"

  let handshakes t = t.handshakes

  let parse_reply raw expected_tag =
    try
      let d = Codec.Dec.of_string raw in
      let tag = Codec.Dec.u8 d in
      if tag = tag_error then Error (`Rejected (Codec.Dec.str d))
      else if tag <> expected_tag then Error `Malformed
      else Ok d
    with Codec.Error _ -> Error `Malformed

  (* One full handshake.  Fresh randoms come from the client's DRBG, which
     advances across resets, so a re-handshake never reuses a premaster. *)
  let handshake t =
    let client_random = Crypto.Drbg.random_bytes t.drbg random_size in
    let hello =
      Codec.encode (fun e ->
          Codec.Enc.u8 e tag_hello;
          Codec.Enc.str e t.identity.Identity.name;
          Codec.Enc.raw e client_random;
          Ca.encode e t.identity.Identity.cert)
    in
    match t.transport hello with
    | Error e -> Error (`Transport e)
    | Ok raw -> (
        match parse_reply raw tag_hello_reply with
        | Error e -> Error e
        | Ok d -> (
            try
              let session_id = Codec.Dec.str d in
              let server_random = Codec.Dec.raw d random_size in
              let server_cert = Ca.decode d in
              let auth = Codec.Dec.str d in
              Codec.Dec.expect_end d;
              if not (Ca.verify ~ca:t.ca server_cert) then Error `Auth_failure
              else if not (String.equal server_cert.subject t.peer_name) then Error `Auth_failure
              else if
                not
                  (Crypto.Rsa.verify_memo server_cert.pubkey ~signature:auth
                     (server_auth_payload ~client_random ~server_random
                        ~client_name:t.identity.Identity.name ~server_name:t.peer_name))
              then Error `Auth_failure
              else begin
                let premaster = Crypto.Drbg.random_bytes t.drbg premaster_size in
                let enc_premaster = Crypto.Rsa.encrypt t.drbg server_cert.pubkey premaster in
                let client_sig =
                  Crypto.Rsa.sign t.identity.Identity.keypair.secret
                    (client_auth_payload ~client_random ~server_random ~enc_premaster)
                in
                let kx =
                  Codec.encode (fun e ->
                      Codec.Enc.u8 e tag_key_exchange;
                      Codec.Enc.str e session_id;
                      Codec.Enc.str e enc_premaster;
                      Codec.Enc.str e client_sig)
                in
                match t.transport kx with
                | Error e -> Error (`Transport e)
                | Ok raw -> (
                    match parse_reply raw tag_key_confirm with
                    | Error e -> Error e
                    | Ok d ->
                        let confirm = Codec.Dec.str d in
                        Codec.Dec.expect_end d;
                        let keys = derive_keys ~premaster ~client_random ~server_random in
                        if not (String.equal confirm (confirm_payload ~keys ~server_random))
                        then Error `Auth_failure
                        else begin
                          t.peer_key <- Some server_cert.pubkey;
                          t.session <- Some { session_id; keys; next_c2s = 0; next_s2c = 0 };
                          t.handshakes <- t.handshakes + 1;
                          Ok ()
                        end)
              end
            with Codec.Error _ -> Error `Malformed))

  let connect ~identity ~ca ~seed ~peer ~transport =
    let t =
      {
        identity;
        ca;
        drbg =
          Crypto.Drbg.create ~seed:(Printf.sprintf "client|%s|%s" identity.Identity.name seed);
        peer_name = peer;
        transport;
        peer_key = None;
        session = None;
        handshakes = 0;
      }
    in
    match handshake t with Ok () -> Ok t | Error e -> Error e

  let reset t =
    t.session <- None;
    handshake t

  let call t plaintext =
    match t.session with
    | None -> Error (`Transport "no session (reset failed?)")
    | Some s -> (
        let seq = s.next_c2s in
        let cipher, tag = seal ~enc_key:s.keys.c2s_enc ~mac_key:s.keys.c2s_mac ~seq plaintext in
        let record =
          Codec.encode (fun e ->
              Codec.Enc.u8 e tag_record;
              Codec.Enc.str e s.session_id;
              Codec.Enc.int e seq;
              Codec.Enc.str e cipher;
              Codec.Enc.raw e tag)
        in
        match t.transport record with
        | Error e -> Error (`Transport e)
        | Ok raw -> (
            match parse_reply raw tag_record_reply with
            | Error e -> Error e
            | Ok d -> (
                try
                  let rseq = Codec.Dec.int d in
                  let rcipher = Codec.Dec.str d in
                  let rtag = Codec.Dec.raw d 32 in
                  Codec.Dec.expect_end d;
                  if rseq <> s.next_s2c then Error `Replay
                  else begin
                    match
                      unseal ~enc_key:s.keys.s2c_enc ~mac_key:s.keys.s2c_mac ~seq:rseq
                        ~cipher:rcipher ~tag:rtag
                    with
                    | Error e -> Error e
                    | Ok reply ->
                        s.next_c2s <- seq + 1;
                        s.next_s2c <- rseq + 1;
                        Ok reply
                  end
                with Codec.Error _ -> Error `Malformed)))

  let call_robust ?(attempts = 3) t plaintext =
    let attempts = max 1 attempts in
    let rec go n =
      match call t plaintext with
      | Ok reply -> Ok reply
      | Error e when n <= 1 -> Error e
      | Error e when desync e -> (
          (* The two ends disagree on sequence state (a reply was lost, a
             request replayed, or the server forgot the session): the only
             cure is a fresh handshake, then re-sending the request. *)
          match reset t with
          | Ok () -> go (n - 1)
          | Error re -> if transient re then go (n - 1) else Error re)
      | Error e when transient e ->
          (* Same record again: identical bytes, so a server that already
             consumed this seq answers from its reply cache. *)
          go (n - 1)
      | Error e -> Error e
    in
    go attempts
end
