(** Attacker deduction.

    Saturates a knowledge set under the Dolev-Yao decomposition rules
    (projection, decryption with known keys, signature payload extraction)
    and decides derivability of arbitrary terms under composition
    (pairing, encryption, signing and hashing with derivable parts). *)

type t

val of_list : Term.t list -> t
(** Build and saturate attacker knowledge. *)

val add : t -> Term.t -> t
(** Extend the knowledge (re-saturates incrementally). *)

val knows : t -> Term.t -> bool
(** Is the exact term in the saturated knowledge set? *)

val derives : t -> Term.t -> bool
(** Can the attacker construct the term? *)

val atoms : t -> Term.t list
(** The saturated knowledge set (for debugging/reporting). *)

type proof =
  | Known of Term.t  (** in the saturated knowledge (intercepted/decomposed) *)
  | Build of Term.t * proof list  (** attacker composition from derivable parts *)

val prove : t -> Term.t -> proof option
(** Constructive {!derives}: [Some witness] explaining exactly how the
    attacker assembles the term, [None] when it is underivable.  Used to
    turn property violations into concrete attack traces. *)

val pp_proof : Format.formatter -> proof -> unit
