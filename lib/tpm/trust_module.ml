type t = {
  identity : Crypto.Rsa.keypair;
  drbg : Crypto.Drbg.t;
  registers : int array;
  pcrs : Pcr.t;
  key_bits : int;
  sessions : (string, Crypto.Rsa.keypair) Hashtbl.t; (* fingerprint -> keypair *)
}

let create ?(key_bits = 1024) ?(num_registers = 64) ?(num_pcrs = 16) ~seed () =
  let drbg = Crypto.Drbg.create ~seed:("trust-module|" ^ seed) in
  {
    identity = Crypto.Rsa.generate drbg ~bits:key_bits;
    drbg;
    registers = Array.make num_registers 0;
    pcrs = Pcr.create ~count:num_pcrs;
    key_bits;
    sessions = Hashtbl.create 4;
  }

let identity_public t = t.identity.public
let pcrs t = t.pcrs
let random_nonce t = Crypto.Drbg.nonce t.drbg
let drbg t = t.drbg

let num_registers t = Array.length t.registers
let read_registers t = Array.copy t.registers

let check t i =
  if i < 0 || i >= Array.length t.registers then
    invalid_arg "Trust_module: register index out of range"

let write_register t i v =
  check t i;
  t.registers.(i) <- v

let add_register t i v =
  check t i;
  t.registers.(i) <- t.registers.(i) + v

let clear_registers t = Array.fill t.registers 0 (Array.length t.registers) 0

type session = { public : Crypto.Rsa.public; endorsement : string }

let endorsement_payload pub = "attestation-key-endorsement|" ^ Crypto.Rsa.public_to_string pub

let begin_session t =
  let kp = Crypto.Rsa.generate t.drbg ~bits:t.key_bits in
  Hashtbl.replace t.sessions (Crypto.Rsa.fingerprint kp.public) kp;
  { public = kp.public; endorsement = Crypto.Rsa.sign t.identity.secret (endorsement_payload kp.public) }

let sign_with_session t session payload =
  match Hashtbl.find_opt t.sessions (Crypto.Rsa.fingerprint session.public) with
  | None -> None
  | Some kp -> Some (Crypto.Rsa.sign kp.secret payload)

let end_session t session = Hashtbl.remove t.sessions (Crypto.Rsa.fingerprint session.public)

let batch_quote_payload ~root ~nonce = "batch-quote|" ^ root ^ "|" ^ nonce

let quote_batch t session ~root ~nonce =
  sign_with_session t session (batch_quote_payload ~root ~nonce)

let sign_identity t msg = Crypto.Rsa.sign t.identity.secret msg
let decrypt_identity t cipher = Crypto.Rsa.decrypt t.identity.secret cipher
