let fast_config ~seed = { Core.Cloud.default_config with seed; key_bits = 512 }

let two_pcpu_config ~seed = { (fast_config ~seed) with pcpus = 2 }

let solo_victim_time (spec : Workloads.Spec.t) =
  let engine = Sim.Engine.create () in
  let sched = Hypervisor.Credit_scheduler.create ~engine ~pcpus:1 () in
  let dom = Hypervisor.Credit_scheduler.add_domain sched ~name:"solo" ~weight:256 in
  let finish = ref 0 in
  let prog = Workloads.Spec.program spec ~on_done:(fun t -> finish := t) () in
  ignore (Hypervisor.Credit_scheduler.add_vcpu sched dom ~pin:0 prog : Hypervisor.Credit_scheduler.vcpu);
  Sim.Engine.run_until engine (Sim.Time.sec 60);
  if !finish = 0 then Sim.Time.sec 60 else !finish

let bar fraction =
  let n = int_of_float (Float.round (fraction *. 10.0)) in
  let n = if n < 0 then 0 else if n > 60 then 60 else n in
  String.make n '#'

let section title =
  Printf.printf "\n== %s ==\n%!" title
