open Core

type row = { strategy : string; flavor : string; attestation_ms : float; response_ms : float }

type result = row list

let strategies =
  [ Controller.Terminate_vm; Controller.Suspend_vm; Controller.Migrate_vm ]

let flavors = [ "small"; "medium"; "large" ]

let one ~seed strategy flavor =
  let cloud = Cloud.build ~config:(Common.fast_config ~seed) () in
  let controller = Cloud.controller cloud in
  let customer = Cloud.Customer.create cloud ~name:"alice" in
  match
    Cloud.Customer.launch customer ~image:"ubuntu" ~flavor
      ~properties:[ Property.Runtime_integrity ] ()
  with
  | Error e -> failwith (Format.asprintf "fig11: launch failed: %a" Cloud.Customer.pp_error e)
  | Ok info -> (
      let vid = info.Commands.vid in
      (* Attestation time: a runtime attestation round, from its ledger. *)
      let nonce = String.make 16 'n' in
      let result, ledger =
        Controller.attest controller { Protocol.vid; property = Property.Runtime_integrity; nonce }
      in
      (match result with
      | Ok _ -> ()
      | Error e -> failwith ("fig11: attestation failed: " ^ e));
      let attestation_ms = Sim.Time.to_ms (Ledger.total ledger) in
      match Controller.respond controller strategy ~vid with
      | Ok reaction ->
          {
            strategy = Controller.strategy_label strategy;
            flavor;
            attestation_ms;
            response_ms = Sim.Time.to_ms reaction;
          }
      | Error e -> failwith ("fig11: response failed: " ^ e))

let run ?(seed = 42) () =
  List.concat_map
    (fun strategy -> List.map (fun flavor -> one ~seed strategy flavor) flavors)
    strategies

let print rows =
  Common.section "Figure 11: attestation + response reaction times (ms)";
  Printf.printf "%-12s %-8s %12s %10s %9s\n" "response" "flavor" "attestation" "response" "total";
  List.iter
    (fun r ->
      Printf.printf "%-12s %-8s %12.0f %10.0f %9.0f\n" r.strategy r.flavor r.attestation_ms
        r.response_ms (r.attestation_ms +. r.response_ms))
    rows
