type platform = { hypervisor_build : string; host_os_build : string }

let pristine_platform =
  { hypervisor_build = "xen-4.4.1|sha-ok"; host_os_build = "host-linux-3.13|sha-ok" }

let corrupted_platform =
  { hypervisor_build = "xen-4.4.1|sha-ok|trojan-payload"; host_os_build = "host-linux-3.13|sha-ok" }

(* Replays the measured-boot hash chain for a pristine platform. *)
let platform_composite p =
  let pcrs = Tpm.Pcr.create ~count:2 in
  ignore (Tpm.Pcr.extend pcrs 0 p.hypervisor_build : string);
  ignore (Tpm.Pcr.extend pcrs 1 p.host_os_build : string);
  Tpm.Pcr.composite pcrs [ 0; 1 ]

let golden_platform_measurement = platform_composite pristine_platform

type instance = {
  vm : Vm.t;
  domain : Credit_scheduler.domain;
  image_hash_at_launch : string;
  mutable suspended : bool;
}

type t = {
  name : string;
  engine : Sim.Engine.t;
  sched : Credit_scheduler.t;
  cache : Cache.t;
  trust : Tpm.Backend.t option;
  platform : platform;
  capabilities : string list;
  mem_mb : int;
  mutable mem_used : int;
  table : (string, instance) Hashtbl.t;
}

let create ~engine ~name ?(pcpus = 4) ?(mem_mb = 32768) ?(platform = pristine_platform)
    ?(secure = true) ?(capabilities = []) ?(key_bits = 1024)
    ?(backend = Tpm.Backend.Classic) ?platform_root ~seed () =
  let sched = Credit_scheduler.create ~engine ~pcpus () in
  let trust =
    if secure then begin
      let device_seed = name ^ "|" ^ seed in
      let b =
        match backend with
        | Tpm.Backend.Classic ->
            Tpm.Backend.classic (Tpm.Trust_module.create ~key_bits ~seed:device_seed ())
        | Tpm.Backend.Evtpm ->
            Tpm.Backend.evtpm (Tpm.Evtpm.create ~key_bits ~seed:device_seed ())
        | Tpm.Backend.Cvm_report -> (
            match platform_root with
            | None -> invalid_arg "Server.create: a Cvm_report backend needs ~platform_root"
            | Some root ->
                Tpm.Backend.cvm (Tpm.Cvm_device.create ~key_bits ~root ~seed:device_seed ()))
      in
      (* Measured boot: hash the platform software into PCRs in load order. *)
      ignore (Tpm.Pcr.extend (Tpm.Backend.pcrs b) 0 platform.hypervisor_build : string);
      ignore (Tpm.Pcr.extend (Tpm.Backend.pcrs b) 1 platform.host_os_build : string);
      Some b
    end
    else None
  in
  {
    name;
    engine;
    sched;
    cache = Cache.create ~engine ();
    trust;
    platform;
    capabilities = (if secure then capabilities else []);
    mem_mb;
    mem_used = 0;
    table = Hashtbl.create 8;
  }

let name t = t.name
let engine t = t.engine
let scheduler t = t.sched
let cache t = t.cache
let trust_backend t = t.trust
let backend_kind t = Option.map Tpm.Backend.kind t.trust
let trust_module t = Option.bind t.trust Tpm.Backend.as_classic
let is_secure t = t.trust <> None
let capabilities t = t.capabilities
let platform t = t.platform
let pcpus t = Credit_scheduler.pcpus t.sched
let mem_total_mb t = t.mem_mb
let mem_free_mb t = t.mem_mb - t.mem_used

let launch t ?pin ?(pins = []) vm =
  let need = vm.Vm.flavor.Flavor.mem_mb in
  if need > mem_free_mb t then Error `Insufficient_memory
  else begin
    let domain =
      Credit_scheduler.add_domain t.sched ~name:vm.Vm.vid
        ~weight:(256 * vm.Vm.flavor.Flavor.vcpus)
    in
    List.iteri
      (fun i prog ->
        let pin = match List.nth_opt pins i with Some (Some p) -> Some p | _ -> pin in
        ignore (Credit_scheduler.add_vcpu t.sched domain ?pin prog : Credit_scheduler.vcpu))
      (vm.Vm.programs ());
    let inst =
      { vm; domain; image_hash_at_launch = Image.hash vm.Vm.image; suspended = false }
    in
    Hashtbl.replace t.table vm.Vm.vid inst;
    t.mem_used <- t.mem_used + need;
    Ok inst
  end

let find t vid = Hashtbl.find_opt t.table vid

let instances t = Hashtbl.fold (fun _ i acc -> i :: acc) t.table []

let suspend t vid =
  match find t vid with
  | Some inst when not inst.suspended ->
      Credit_scheduler.pause_domain t.sched inst.domain;
      inst.suspended <- true;
      true
  | Some _ | None -> false

let resume t vid =
  match find t vid with
  | Some inst when inst.suspended ->
      Credit_scheduler.resume_domain t.sched inst.domain;
      inst.suspended <- false;
      true
  | Some _ | None -> false

let destroy t vid =
  match find t vid with
  | Some inst ->
      Credit_scheduler.remove_domain t.sched inst.domain;
      Cache.forget_owner t.cache vid;
      Hashtbl.remove t.table vid;
      t.mem_used <- t.mem_used - inst.vm.Vm.flavor.Flavor.mem_mb;
      true
  | None -> false

let detach t vid =
  match find t vid with
  | Some inst ->
      Credit_scheduler.remove_domain t.sched inst.domain;
      Cache.forget_owner t.cache vid;
      Hashtbl.remove t.table vid;
      t.mem_used <- t.mem_used - inst.vm.Vm.flavor.Flavor.mem_mb;
      Some inst
  | None -> None
