lib/crypto/drbg.ml: Buffer Bytes Chacha20 Char Int64 Sha256 Sim String
