examples/quickstart.ml: Cloud Commands Controller Core Format List Printf Property Report Sim
