(** Persistent pool of OCaml 5 domains with a fork-join [run] primitive.

    Built for the sharded fleet driver's epoch loop: the pool is created
    once per simulation, [run] is called once per epoch (every call is a
    full barrier — it returns only after every slot's work finished), and
    [shutdown] joins the workers at the end.  Keeping the domains alive
    across epochs avoids a [Domain.spawn] per barrier, which would dominate
    at sub-second epochs.

    Slot 0 always executes on the calling domain; a 1-slot pool spawns no
    domains at all, so sequential and parallel runs share the same code
    path.  The mutex/condition hand-off establishes the happens-before
    edges that make each slot's writes from epoch [k] visible to the merge
    phase and to epoch [k+1]. *)

type t

val create : slots:int -> t
(** Spawns [slots - 1] worker domains.  [slots] must be positive. *)

val slots : t -> int

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f slot] for every slot in [0, slots) concurrently
    ([f 0] on the caller's domain) and returns when all have finished.  If
    any call raises, one of the exceptions is re-raised after the barrier
    (the pool remains usable).  Not reentrant: one [run] at a time. *)

val shutdown : t -> unit
(** Terminates and joins the workers.  [run] must not be called after. *)
