test/test_wire.ml: Alcotest QCheck QCheck_alcotest String Wire
