(** Figure 10: performance effect of runtime attestation.

    Each cloud benchmark runs in a VM while the customer requests periodic
    [Cpu_availability] attestation at different frequencies (none, 1 min,
    10 s, 5 s).  Performance is the work the VM completes (virtual CPU
    time) relative to the no-attestation baseline.  Paper shape: no
    degradation, because the VMM Profile Tool measures at VM-switch time
    without intercepting the VM. *)

type row = { benchmark : string; relative : (string * float) list (** per frequency *) }

type result = { frequencies : string list; rows : row list }

val run : ?seed:int -> unit -> result
val print : result -> unit
