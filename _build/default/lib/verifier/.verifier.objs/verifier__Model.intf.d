lib/verifier/model.mli: Deduction Term
