lib/monitors/vmi_tool.mli: Hypervisor Sim
