type decision = { host : string; candidates : int; considered : int }

let property_filter (r : Database.server_record) properties =
  match properties with
  | [] -> true
  | _ -> r.secure && List.for_all (fun p -> List.exists (Property.equal p) r.monitoring) properties

let select ~db ~free_mem ~properties ~flavor ?(exclude = []) () =
  let records = Database.servers db in
  let qualified =
    List.filter_map
      (fun (r : Database.server_record) ->
        if List.exists (String.equal r.name) exclude then None
        else if not (property_filter r properties) then None
        else begin
          match free_mem r.name with
          | Some free when free >= flavor.Hypervisor.Flavor.mem_mb -> Some (r.name, free)
          | Some _ | None -> None
        end)
      records
  in
  match qualified with
  | [] -> Error `No_qualified_server
  | _ ->
      let best =
        List.fold_left
          (fun (bn, bf) (n, f) -> if f > bf then (n, f) else (bn, bf))
          (List.hd qualified) (List.tl qualified)
      in
      Ok { host = fst best; candidates = List.length qualified; considered = List.length records }
