lib/core/database.ml: Hashtbl Hypervisor List Property String
