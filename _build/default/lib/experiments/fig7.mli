(** Figure 7: measurements of CPU-availability vulnerability.

    Same co-residency scenarios as Figure 6, but now the VMM Profile Tool
    measures both VMs' relative CPU usage over a profiling window — the
    measurement the Attestation Server interprets for the
    [Cpu_availability] property.  Under benign CPU-bound contention both
    VMs sit near 50%; under the attack the victim collapses below the SLA
    floor and the interpreter flags it. *)

type row = {
  attacker : string;
  attacker_pct : float;  (** attacker relative CPU usage, percent *)
  victim_pct : float;
  victim_status : Core.Report.status;  (** availability verdict for the victim *)
}

type result = row list

val run : ?seed:int -> unit -> result
val print : result -> unit
