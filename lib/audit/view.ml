type t = {
  log_id : string;
  latest_sth : unit -> Sth.t;
  consistency : old_size:int -> size:int -> string list;
  inclusion : size:int -> int -> Crypto.Merkle.proof;
  entry : int -> string option;
}

let of_log log =
  {
    log_id = Log.log_id log;
    latest_sth =
      (fun () ->
        match Log.latest_sth log with Some sth -> sth | None -> Log.checkpoint log);
    consistency = (fun ~old_size ~size -> Log.consistency log ~old_size ~size);
    inclusion = (fun ~size i -> Log.inclusion log ~size i);
    entry = (fun i -> Log.entry log i);
  }

(* --- Adversarial faces ---------------------------------------------------

   Each adversary below is a *log operator* misbehaviour: the operator
   holds the real signing key, so every STH it serves carries a valid
   signature.  What it cannot do is make two divergent histories both
   consistency-check against the heads it already handed out — that is the
   invariant the auditors enforce. *)

type fork = {
  face_a : t;
  face_b : t;
  log_a : Log.t;
  log_b : Log.t;
  append_both : string -> unit;
  append_a : string -> unit;
  append_b : string -> unit;
}

let fork ~log_id ~key ?clock () =
  let log_a = Log.create ~log_id ~key ?clock () in
  let log_b = Log.create ~log_id ~key ?clock () in
  {
    face_a = of_log log_a;
    face_b = of_log log_b;
    log_a;
    log_b;
    append_both =
      (fun entry ->
        ignore (Log.append log_a entry);
        ignore (Log.append log_b entry));
    append_a = (fun entry -> ignore (Log.append log_a entry));
    append_b = (fun entry -> ignore (Log.append log_b entry));
  }

let stale view ~sth = { view with latest_sth = (fun () -> sth) }
