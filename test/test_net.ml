(* Tests for the network substrate: CA, simulated network with adversary,
   and the secure channel (including active attacks). *)

let qtest = QCheck_alcotest.to_alcotest

let ca = lazy (Net.Ca.create ~seed:"test" ~bits:512 ~name:"testca" ())

let identity name = Net.Secure_channel.Identity.make (Lazy.force ca) ~seed:name ~bits:512 ~name ()

(* --- CA ------------------------------------------------------------------- *)

let test_ca_issue_verify () =
  let ca = Lazy.force ca in
  let id = identity "alice-ca-test" in
  Alcotest.(check bool) "issued cert verifies" true (Net.Ca.verify ~ca:(Net.Ca.public ca) id.cert);
  Alcotest.(check string) "subject" "alice-ca-test" id.cert.subject

let test_ca_wrong_ca_rejects () =
  let other = Net.Ca.create ~seed:"other" ~bits:512 ~name:"otherca" () in
  let id = identity "bob-ca-test" in
  Alcotest.(check bool) "foreign CA rejects" false
    (Net.Ca.verify ~ca:(Net.Ca.public other) id.cert)

let test_ca_tampered_subject_rejects () =
  let ca = Lazy.force ca in
  let id = identity "carol-ca-test" in
  let forged = { id.cert with Net.Ca.subject = "mallory" } in
  Alcotest.(check bool) "renamed cert rejects" false (Net.Ca.verify ~ca:(Net.Ca.public ca) forged)

let test_ca_cert_codec_roundtrip () =
  let id = identity "dave-ca-test" in
  let encoded = Wire.Codec.encode (fun e -> Net.Ca.encode e id.cert) in
  let decoded = Wire.Codec.decode encoded Net.Ca.decode in
  Alcotest.(check string) "subject" id.cert.subject decoded.Net.Ca.subject;
  Alcotest.(check bool) "still verifies" true
    (Net.Ca.verify ~ca:(Net.Ca.public (Lazy.force ca)) decoded)

(* --- Network ---------------------------------------------------------------- *)

let make_net () = Net.Network.create ~seed:1 ()

let test_network_echo () =
  let net = make_net () in
  Net.Network.register net "echo" (fun s -> "echo:" ^ s);
  let reply, elapsed = Net.Network.call net ~src:"c" ~dst:"echo" "hi" in
  Alcotest.(check bool) "reply" true (reply = Ok "echo:hi");
  Alcotest.(check bool) "positive latency" true (elapsed > 0)

let test_network_no_host () =
  let net = make_net () in
  let reply, _ = Net.Network.call net ~src:"c" ~dst:"ghost" "hi" in
  Alcotest.(check bool) "no such host" true (reply = Error (`No_such_host "ghost"))

let test_network_unregister () =
  let net = make_net () in
  Net.Network.register net "x" (fun s -> s);
  Net.Network.unregister net "x";
  let reply, _ = Net.Network.call net ~src:"c" ~dst:"x" "hi" in
  Alcotest.(check bool) "gone" true (reply = Error (`No_such_host "x"))

let test_network_adversary_drop () =
  let net = make_net () in
  Net.Network.register net "s" (fun s -> s);
  Net.Network.set_adversary net (fun _ -> Net.Network.Drop);
  let reply, _ = Net.Network.call net ~src:"c" ~dst:"s" "hi" in
  Alcotest.(check bool) "dropped" true (reply = Error `Dropped);
  Net.Network.clear_adversary net;
  let reply, _ = Net.Network.call net ~src:"c" ~dst:"s" "hi" in
  Alcotest.(check bool) "restored" true (reply = Ok "hi")

let test_network_adversary_replace () =
  let net = make_net () in
  Net.Network.register net "s" (fun s -> s);
  Net.Network.set_adversary net (fun m ->
      match m.Net.Network.dir with
      | Net.Network.Request -> Net.Network.Replace "evil"
      | Net.Network.Reply -> Net.Network.Pass);
  let reply, _ = Net.Network.call net ~src:"c" ~dst:"s" "hi" in
  Alcotest.(check bool) "replaced" true (reply = Ok "evil")

let test_network_eavesdrop_log () =
  let net = make_net () in
  Net.Network.register net "s" (fun s -> s);
  ignore (Net.Network.call net ~src:"c" ~dst:"s" "one");
  ignore (Net.Network.call net ~src:"c" ~dst:"s" "two");
  let log = Net.Network.recorded net in
  Alcotest.(check int) "4 messages (2 req + 2 rep)" 4 (List.length log);
  Alcotest.(check int) "message_count" 4 (Net.Network.message_count net);
  let first = List.hd log in
  Alcotest.(check string) "oldest first" "one" first.Net.Network.payload

let test_network_transfer_time_scales () =
  let net = make_net () in
  let t1 = Net.Network.transfer_time net ~bytes:1_000_000 in
  let t2 = Net.Network.transfer_time net ~bytes:10_000_000 in
  Alcotest.(check bool) "larger is slower" true (t2 > t1)

(* --- Secure channel ----------------------------------------------------------- *)

let setup_channel ?(server_name = "server") ?(client_name = "client") () =
  let ca_t = Lazy.force ca in
  let net = make_net () in
  let server_id = identity server_name in
  let client_id = identity client_name in
  let received = ref [] in
  let server =
    Net.Secure_channel.Server.create ~identity:server_id ~ca:(Net.Ca.public ca_t) ~seed:"srv"
      ~on_request:(fun ~peer msg ->
        received := (peer, msg) :: !received;
        "ok:" ^ msg)
  in
  Net.Network.register net server_name (Net.Secure_channel.Server.handle server);
  let transport msg =
    match Net.Network.call net ~src:client_name ~dst:server_name msg with
    | Ok r, _ -> Ok r
    | Error `Dropped, _ -> Error "dropped"
    | Error (`No_such_host h), _ -> Error ("no host " ^ h)
  in
  (net, server, client_id, transport, received)

let connect_ok ?(peer = "server") client_id transport =
  match
    Net.Secure_channel.Client.connect ~identity:client_id ~ca:(Net.Ca.public (Lazy.force ca))
      ~seed:"cl" ~peer ~transport
  with
  | Ok ch -> ch
  | Error e -> Alcotest.failf "connect failed: %a" Net.Secure_channel.pp_error e

let test_channel_roundtrip () =
  let _net, _server, client_id, transport, received = setup_channel () in
  let ch = connect_ok client_id transport in
  (match Net.Secure_channel.Client.call ch "hello" with
  | Ok r -> Alcotest.(check string) "reply" "ok:hello" r
  | Error e -> Alcotest.failf "call failed: %a" Net.Secure_channel.pp_error e);
  Alcotest.(check (list (pair string string))) "server saw authenticated peer"
    [ ("client", "hello") ] !received;
  Alcotest.(check string) "peer name" "server" (Net.Secure_channel.Client.peer ch)

let test_channel_many_calls () =
  let _net, _server, client_id, transport, _ = setup_channel () in
  let ch = connect_ok client_id transport in
  for i = 1 to 20 do
    match Net.Secure_channel.Client.call ch (string_of_int i) with
    | Ok r -> Alcotest.(check string) "sequenced" ("ok:" ^ string_of_int i) r
    | Error e -> Alcotest.failf "call %d failed: %a" i Net.Secure_channel.pp_error e
  done

let test_channel_wrong_peer_name () =
  let _net, _server, client_id, transport, _ = setup_channel () in
  match
    Net.Secure_channel.Client.connect ~identity:client_id ~ca:(Net.Ca.public (Lazy.force ca))
      ~seed:"cl" ~peer:"somebody-else" ~transport
  with
  | Ok _ -> Alcotest.fail "should refuse a mis-named peer"
  | Error `Auth_failure -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Net.Secure_channel.pp_error e

let test_channel_foreign_ca_client_rejected () =
  let _net, _server, _client_id, transport, _ = setup_channel () in
  let evil_ca = Net.Ca.create ~seed:"evil" ~bits:512 ~name:"evilca" () in
  let evil_id = Net.Secure_channel.Identity.make evil_ca ~seed:"evil" ~bits:512 ~name:"client" () in
  match
    Net.Secure_channel.Client.connect ~identity:evil_id ~ca:(Net.Ca.public (Lazy.force ca))
      ~seed:"cl" ~peer:"server" ~transport
  with
  | Ok _ -> Alcotest.fail "foreign-CA client must be rejected"
  | Error (`Rejected _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Net.Secure_channel.pp_error e

let test_channel_accept_only () =
  let _net, server, client_id, transport, _ = setup_channel () in
  Net.Secure_channel.Server.accept_only server (String.equal "vip");
  (match
     Net.Secure_channel.Client.connect ~identity:client_id ~ca:(Net.Ca.public (Lazy.force ca))
       ~seed:"cl" ~peer:"server" ~transport
   with
  | Ok _ -> Alcotest.fail "non-vip must be rejected"
  | Error (`Rejected _) -> ()
  | Error e -> Alcotest.failf "unexpected: %a" Net.Secure_channel.pp_error e)

let test_channel_tamper_detected () =
  let net, _server, client_id, transport, _ = setup_channel () in
  let ch = connect_ok client_id transport in
  (* Flip one ciphertext byte of each sufficiently long request. *)
  Net.Network.set_adversary net (Attacks.Network_attacker.flip_byte ~offset:50 ~min_len:60 ());
  (match Net.Secure_channel.Client.call ch "payload" with
  | Ok _ -> Alcotest.fail "tampering must be detected"
  | Error (`Rejected _) | Error `Auth_failure -> ()
  | Error e -> Alcotest.failf "unexpected: %a" Net.Secure_channel.pp_error e);
  (* Channel recovers once the adversary leaves (no state was consumed). *)
  Net.Network.clear_adversary net;
  match Net.Secure_channel.Client.call ch "again" with
  | Ok r -> Alcotest.(check string) "recovered" "ok:again" r
  | Error e -> Alcotest.failf "recovery failed: %a" Net.Secure_channel.pp_error e

let test_channel_replay_rejected () =
  let net, _server, client_id, transport, received = setup_channel () in
  let ch = connect_ok client_id transport in
  (match Net.Secure_channel.Client.call ch "first" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first call failed: %a" Net.Secure_channel.pp_error e);
  (* Replay each later request as a copy of the first data record. *)
  Net.Network.set_adversary net (Attacks.Network_attacker.replay_requests ());
  ignore (Net.Secure_channel.Client.call ch "probe");
  (match Net.Secure_channel.Client.call ch "second" with
  | Ok _ -> Alcotest.fail "replayed record must be rejected"
  | Error (`Rejected _) | Error `Auth_failure | Error `Replay -> ()
  | Error e -> Alcotest.failf "unexpected: %a" Net.Secure_channel.pp_error e);
  (* The server must have processed "first" exactly once. *)
  let firsts = List.filter (fun (_, m) -> String.equal m "first") !received in
  Alcotest.(check int) "no duplicate delivery" 1 (List.length firsts)

let test_channel_sessions_counted () =
  let _net, server, client_id, transport, _ = setup_channel () in
  ignore (connect_ok client_id transport);
  Alcotest.(check int) "one session" 1 (Net.Secure_channel.Server.sessions server)

(* --- Fault tolerance: retry, resync, degradation ----------------------------- *)

(* Drop exactly the next reply-direction message, then pass everything. *)
let drop_next_reply () =
  let armed = ref true in
  fun (m : Net.Network.message) ->
    if !armed && m.Net.Network.dir = Net.Network.Reply then begin
      armed := false;
      Net.Network.Drop
    end
    else Net.Network.Pass

let test_network_retry_survives_outage () =
  let net = make_net () in
  Net.Network.register net "s" (fun s -> "ok:" ^ s);
  Net.Network.set_adversary net (Net.Fault.drop_first 3);
  let plain, _ = Net.Network.call net ~src:"c" ~dst:"s" "hi" in
  Alcotest.(check bool) "plain call lost" true (plain = Error `Dropped);
  (* Two more drops remain; attempt 3 of the retrying call gets through. *)
  let retried, elapsed = Net.Network.call_with_retry net ~src:"c" ~dst:"s" "hi" in
  Alcotest.(check bool) "retry succeeds" true (retried = Ok "ok:hi");
  Alcotest.(check bool) "backoff waits charged" true
    (elapsed >= Net.Network.default_retry_policy.Net.Network.base_delay);
  Alcotest.(check int) "drops counted" 3 (Net.Network.drop_count net);
  Alcotest.(check int) "re-sends counted" 2 (Net.Network.retry_count net)

let test_network_retry_blackout_terminates () =
  let net = make_net () in
  Net.Network.register net "s" (fun s -> s);
  Net.Network.set_adversary net (Net.Fault.blackout ());
  let r, elapsed = Net.Network.call_with_retry net ~src:"c" ~dst:"s" "hi" in
  Alcotest.(check bool) "gives up with Dropped" true (r = Error `Dropped);
  (match (Net.Network.retry_policy net).Net.Network.deadline with
  | Some d -> Alcotest.(check bool) "bounded by deadline" true (elapsed <= d)
  | None -> ());
  Alcotest.(check int) "bounded attempts" 4 (Net.Network.drop_count net)

let test_network_retry_deadline_mid_backoff () =
  (* Attempts remain, but the pending backoff wait would overrun the
     deadline: the retry must not even be attempted, and the wait that was
     never taken must not be charged. *)
  let blackout_net () =
    let net = make_net () in
    Net.Network.register net "s" (fun s -> s);
    Net.Network.set_adversary net (Net.Fault.blackout ());
    net
  in
  let policy =
    {
      Net.Network.max_attempts = 5;
      base_delay = Sim.Time.ms 10;
      backoff = 2.0;
      max_delay = Sim.Time.ms 50;
      deadline = Some (Sim.Time.ms 5);
    }
  in
  let net = blackout_net () in
  let r, elapsed = Net.Network.call_with_retry ~policy net ~src:"c" ~dst:"s" "hi" in
  Alcotest.(check bool) "dropped" true (r = Error `Dropped);
  Alcotest.(check int) "single attempt" 1 (Net.Network.drop_count net);
  Alcotest.(check int) "no re-sends" 0 (Net.Network.retry_count net);
  Alcotest.(check bool) "deadline honoured" true (elapsed <= Sim.Time.ms 5);
  (* A deadline that survives the 2 ms wait and the 4 ms wait but not the
     8 ms one is deadline-bound, not attempts-bound: exactly three of the
     five permitted attempts run. *)
  let net2 = blackout_net () in
  let policy2 =
    { policy with Net.Network.base_delay = Sim.Time.ms 2; deadline = Some (Sim.Time.ms 7) }
  in
  let r2, elapsed2 = Net.Network.call_with_retry ~policy:policy2 net2 ~src:"c" ~dst:"s" "hi" in
  Alcotest.(check bool) "dropped (mid-backoff)" true (r2 = Error `Dropped);
  Alcotest.(check int) "three attempts" 3 (Net.Network.drop_count net2);
  Alcotest.(check int) "two re-sends" 2 (Net.Network.retry_count net2);
  Alcotest.(check bool) "both waits charged" true (elapsed2 >= Sim.Time.ms 6);
  Alcotest.(check bool) "deadline honoured (mid-backoff)" true (elapsed2 <= Sim.Time.ms 7)

let test_network_retry_blackout_spans_all_attempts () =
  (* With no deadline, a total partition burns every attempt, and the
     elapsed time is exactly legs + the capped backoff schedule. *)
  let net = make_net () in
  Net.Network.register net "s" (fun s -> s);
  Net.Network.set_adversary net (Net.Fault.blackout ());
  let policy =
    {
      Net.Network.max_attempts = 4;
      base_delay = Sim.Time.ms 2;
      backoff = 10.0;
      max_delay = Sim.Time.ms 5;
      deadline = None;
    }
  in
  let r, elapsed = Net.Network.call_with_retry ~policy net ~src:"c" ~dst:"s" "hi" in
  Alcotest.(check bool) "dropped after all attempts" true (r = Error `Dropped);
  Alcotest.(check int) "all attempts made" 4 (Net.Network.drop_count net);
  Alcotest.(check int) "re-sends counted" 3 (Net.Network.retry_count net);
  (* waits: 2 ms, then 20 ms capped to 5, then 200 ms capped to 5 = 12 ms,
     plus four sub-millisecond request legs *)
  Alcotest.(check bool) "backoff schedule charged" true (elapsed >= Sim.Time.ms 12);
  Alcotest.(check bool) "cap applied" true (elapsed <= Sim.Time.ms 14)

let test_network_replace_bytes_accounting () =
  let net = make_net () in
  Net.Network.register net "s" (fun _ -> "r");
  Net.Network.set_adversary net (fun m ->
      match m.Net.Network.dir with
      | Net.Network.Request -> Net.Network.Replace "XXXXXXXXXX"
      | Net.Network.Reply -> Net.Network.Pass);
  ignore (Net.Network.call net ~src:"c" ~dst:"s" "hi");
  (* 2-byte request rewritten to 10 delivered bytes, 1-byte reply passed:
     the wire carried 11 bytes, not 3. *)
  Alcotest.(check int) "delivered lengths counted" 11 (Net.Network.bytes_sent net)

let test_channel_reset_recovers_desync () =
  let net, _server, client_id, transport, received = setup_channel () in
  let ch = connect_ok client_id transport in
  (* Lose a data-record reply: the server consumed the sequence number, the
     client did not advance — the two ends are now desynced. *)
  Net.Network.set_adversary net (drop_next_reply ());
  (match Net.Secure_channel.Client.call ch "lost" with
  | Ok _ -> Alcotest.fail "reply was dropped, call must fail"
  | Error e -> Alcotest.(check bool) "loss is transient" true (Net.Secure_channel.transient e));
  Net.Network.clear_adversary net;
  (* A *different* request hits the already-consumed sequence number. *)
  (match Net.Secure_channel.Client.call ch "fresh" with
  | Ok _ -> Alcotest.fail "desynced channel must refuse"
  | Error e -> Alcotest.(check bool) "desync detected" true (Net.Secure_channel.desync e));
  (match Net.Secure_channel.Client.reset ch with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reset failed: %a" Net.Secure_channel.pp_error e);
  Alcotest.(check int) "re-handshaked" 2 (Net.Secure_channel.Client.handshakes ch);
  (match Net.Secure_channel.Client.call ch "after-reset" with
  | Ok r -> Alcotest.(check string) "channel works again" "ok:after-reset" r
  | Error e -> Alcotest.failf "call after reset failed: %a" Net.Secure_channel.pp_error e);
  let losts = List.filter (fun (_, m) -> String.equal m "lost") !received in
  Alcotest.(check int) "lost request executed exactly once" 1 (List.length losts)

let test_channel_call_robust_auto_recovers () =
  let net, _server, client_id, transport, _ = setup_channel () in
  let ch = connect_ok client_id transport in
  Net.Network.set_adversary net (drop_next_reply ());
  ignore (Net.Secure_channel.Client.call ch "lost");
  Net.Network.clear_adversary net;
  match Net.Secure_channel.Client.call_robust ch "fresh" with
  | Ok r ->
      Alcotest.(check string) "recovered transparently" "ok:fresh" r;
      Alcotest.(check bool) "recovery used a reset" true
        (Net.Secure_channel.Client.handshakes ch >= 2)
  | Error e -> Alcotest.failf "call_robust failed: %a" Net.Secure_channel.pp_error e

let test_channel_retried_record_idempotent () =
  let ca_t = Lazy.force ca in
  let net = make_net () in
  let server_id = identity "idem-server" in
  let client_id = identity "idem-client" in
  let hits = ref 0 in
  let server =
    Net.Secure_channel.Server.create ~identity:server_id ~ca:(Net.Ca.public ca_t) ~seed:"srv"
      ~on_request:(fun ~peer:_ msg ->
        incr hits;
        "ok:" ^ msg)
  in
  Net.Network.register net "idem-server" (Net.Secure_channel.Server.handle server);
  (* The transport itself retries, re-sending the identical record bytes. *)
  let transport msg =
    match Net.Network.call_with_retry net ~src:"idem-client" ~dst:"idem-server" msg with
    | Ok r, _ -> Ok r
    | Error `Dropped, _ -> Error "dropped"
    | Error (`No_such_host h), _ -> Error ("no host " ^ h)
  in
  let ch = connect_ok ~peer:"idem-server" client_id transport in
  (* The server executes the request but its reply is lost; the retried
     record must be answered from the reply cache, not re-executed. *)
  Net.Network.set_adversary net (drop_next_reply ());
  (match Net.Secure_channel.Client.call ch "once" with
  | Ok r -> Alcotest.(check string) "reply recovered from cache" "ok:once" r
  | Error e -> Alcotest.failf "retried call failed: %a" Net.Secure_channel.pp_error e);
  Alcotest.(check int) "handler executed exactly once" 1 !hits

let test_channel_retry_after_reply_cache_hit () =
  (* A reply-cache hit must leave the channel's sequence state consistent:
     after a call is recovered from the server's cache, later calls (and
     later cache recoveries) still work on the same session, and every
     request executes exactly once. *)
  let ca_t = Lazy.force ca in
  let net = make_net () in
  let server_id = identity "cache-server" in
  let client_id = identity "cache-client" in
  let received = ref [] in
  let server =
    Net.Secure_channel.Server.create ~identity:server_id ~ca:(Net.Ca.public ca_t) ~seed:"srv"
      ~on_request:(fun ~peer:_ msg ->
        received := msg :: !received;
        "ok:" ^ msg)
  in
  Net.Network.register net "cache-server" (Net.Secure_channel.Server.handle server);
  let transport msg =
    match Net.Network.call_with_retry net ~src:"cache-client" ~dst:"cache-server" msg with
    | Ok r, _ -> Ok r
    | Error `Dropped, _ -> Error "dropped"
    | Error (`No_such_host h), _ -> Error ("no host " ^ h)
  in
  let ch = connect_ok ~peer:"cache-server" client_id transport in
  List.iter
    (fun msg ->
      (* every reply is lost once, so every call is a cache recovery *)
      Net.Network.set_adversary net (drop_next_reply ());
      match Net.Secure_channel.Client.call ch msg with
      | Ok r -> Alcotest.(check string) ("recovered: " ^ msg) ("ok:" ^ msg) r
      | Error e -> Alcotest.failf "call %s failed: %a" msg Net.Secure_channel.pp_error e)
    [ "first"; "second"; "third" ];
  Net.Network.clear_adversary net;
  (match Net.Secure_channel.Client.call ch "fresh" with
  | Ok r -> Alcotest.(check string) "clean call after recoveries" "ok:fresh" r
  | Error e -> Alcotest.failf "clean call failed: %a" Net.Secure_channel.pp_error e);
  Alcotest.(check int) "no reset was needed" 1 (Net.Secure_channel.Client.handshakes ch);
  Alcotest.(check (list string))
    "each request executed exactly once" [ "first"; "second"; "third"; "fresh" ]
    (List.rev !received)

let fault_cloud () =
  let cloud =
    Core.Cloud.build ~config:{ Core.Cloud.default_config with key_bits = 512 } ()
  in
  let customer = Core.Cloud.Customer.create cloud ~name:"alice" in
  match
    Core.Cloud.Customer.launch customer ~image:"cirros" ~flavor:"small"
      ~properties:[ Core.Property.Startup_integrity ] ()
  with
  | Error e -> Alcotest.failf "launch failed: %a" Core.Cloud.Customer.pp_error e
  | Ok info -> (cloud, customer, info.Core.Commands.vid)

let test_attestation_survives_drop_every_3rd () =
  let cloud, customer, vid = fault_cloud () in
  let net = Core.Cloud.net cloud in
  Net.Network.set_adversary net (Net.Fault.drop_nth 3);
  (match Core.Cloud.Customer.attest customer ~vid ~property:Core.Property.Startup_integrity with
  | Ok report ->
      Alcotest.(check bool) "healthy verdict through lossy net" true
        (Core.Report.is_healthy report)
  | Error e -> Alcotest.failf "attest under loss failed: %a" Core.Cloud.Customer.pp_error e);
  Alcotest.(check bool) "retries actually happened" true (Net.Network.retry_count net > 0)

let test_attestation_blackout_degrades_to_unknown () =
  let cloud, _customer, vid = fault_cloud () in
  let net = Core.Cloud.net cloud in
  Net.Network.set_adversary net (Net.Fault.blackout ());
  let controller = Core.Cloud.controller cloud in
  let result, _ledger =
    Core.Controller.attest controller
      { Core.Protocol.vid; property = Core.Property.Startup_integrity; nonce = "n1" }
  in
  match result with
  | Ok creport -> (
      match creport.Core.Protocol.report.Core.Report.status with
      | Core.Report.Unknown _ -> ()
      | s -> Alcotest.failf "expected Unknown, got %a" Core.Report.pp_status s)
  | Error e -> Alcotest.failf "expected a degraded report, got hard error: %s" e

let channel_payload_roundtrip =
  QCheck.Test.make ~name:"arbitrary payloads roundtrip" ~count:30 QCheck.string (fun s ->
      let _net, _server, client_id, transport, _ = setup_channel () in
      let ch = connect_ok client_id transport in
      Net.Secure_channel.Client.call ch s = Ok ("ok:" ^ s))

let () =
  Alcotest.run "net"
    [
      ( "ca",
        [
          Alcotest.test_case "issue/verify" `Quick test_ca_issue_verify;
          Alcotest.test_case "wrong CA rejects" `Quick test_ca_wrong_ca_rejects;
          Alcotest.test_case "tampered subject rejects" `Quick test_ca_tampered_subject_rejects;
          Alcotest.test_case "codec roundtrip" `Quick test_ca_cert_codec_roundtrip;
        ] );
      ( "network",
        [
          Alcotest.test_case "echo" `Quick test_network_echo;
          Alcotest.test_case "no host" `Quick test_network_no_host;
          Alcotest.test_case "unregister" `Quick test_network_unregister;
          Alcotest.test_case "adversary drop" `Quick test_network_adversary_drop;
          Alcotest.test_case "adversary replace" `Quick test_network_adversary_replace;
          Alcotest.test_case "eavesdrop log" `Quick test_network_eavesdrop_log;
          Alcotest.test_case "transfer time scales" `Quick test_network_transfer_time_scales;
        ] );
      ( "secure-channel",
        [
          Alcotest.test_case "roundtrip" `Quick test_channel_roundtrip;
          Alcotest.test_case "many calls" `Quick test_channel_many_calls;
          Alcotest.test_case "wrong peer name" `Quick test_channel_wrong_peer_name;
          Alcotest.test_case "foreign CA client" `Quick test_channel_foreign_ca_client_rejected;
          Alcotest.test_case "accept_only" `Quick test_channel_accept_only;
          Alcotest.test_case "tamper detected" `Quick test_channel_tamper_detected;
          Alcotest.test_case "replay rejected" `Quick test_channel_replay_rejected;
          Alcotest.test_case "sessions counted" `Quick test_channel_sessions_counted;
          qtest channel_payload_roundtrip;
        ] );
      ( "fault-tolerance",
        [
          Alcotest.test_case "retry survives outage" `Quick test_network_retry_survives_outage;
          Alcotest.test_case "retry blackout terminates" `Quick
            test_network_retry_blackout_terminates;
          Alcotest.test_case "retry deadline expires mid-backoff" `Quick
            test_network_retry_deadline_mid_backoff;
          Alcotest.test_case "blackout spans all attempts" `Quick
            test_network_retry_blackout_spans_all_attempts;
          Alcotest.test_case "replace bytes accounting" `Quick
            test_network_replace_bytes_accounting;
          Alcotest.test_case "reset recovers desync" `Quick test_channel_reset_recovers_desync;
          Alcotest.test_case "call_robust auto-recovers" `Quick
            test_channel_call_robust_auto_recovers;
          Alcotest.test_case "retried record idempotent" `Quick
            test_channel_retried_record_idempotent;
          Alcotest.test_case "retry after reply-cache hit" `Quick
            test_channel_retry_after_reply_cache_hit;
          Alcotest.test_case "attestation under drop-every-3rd" `Quick
            test_attestation_survives_drop_every_3rd;
          Alcotest.test_case "blackout degrades to unknown" `Quick
            test_attestation_blackout_degrades_to_unknown;
        ] );
    ]
