lib/core/report.mli: Format Property Sim Wire
