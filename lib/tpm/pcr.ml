type t = string array

let digest_size = 32
let zero = String.make digest_size '\x00'

let create ~count =
  if count <= 0 then invalid_arg "Pcr.create: count must be positive";
  Array.make count zero

let count = Array.length

let check t i = if i < 0 || i >= Array.length t then invalid_arg "Pcr: index out of range"

let read t i =
  check t i;
  t.(i)

let extend t i m =
  check t i;
  let v = Crypto.Sha256.digest_list [ t.(i); Crypto.Sha256.digest m ] in
  t.(i) <- v;
  v

let reset t i =
  check t i;
  t.(i) <- zero

let composite t idxs =
  let sorted = List.sort_uniq Stdlib.compare idxs in
  List.iter (check t) sorted;
  Crypto.Sha256.digest_list
    (List.concat_map (fun i -> [ Printf.sprintf "pcr%02d:" i; t.(i) ]) sorted)

let snapshot t = Array.copy t

let load t values =
  if Array.length values <> Array.length t then
    Error
      (Printf.sprintf "Pcr.load: snapshot has %d registers, bank has %d"
         (Array.length values) (Array.length t))
  else if Array.exists (fun v -> String.length v <> digest_size) values then
    Error "Pcr.load: snapshot value has wrong digest size"
  else begin
    Array.blit values 0 t 0 (Array.length t);
    Ok ()
  end
