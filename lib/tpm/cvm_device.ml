(* CVM hardware-report device (SEV-SNP / TDX class).  The machine carries a
   fused platform key endorsed once by the hardware vendor's root
   (Platform_root); per-attestation report keys are minted in firmware and
   endorsed by the platform key.  Nothing here touches the operator's
   Privacy CA — a verifier checks the chain against the vendor root alone,
   which is exactly what puts the operator outside the TCB.

   The device state is fused into the hardware: there is nothing to save or
   restore, and the binding epoch is pinned at 0 forever. *)

type t = {
  platform : Crypto.Rsa.keypair;
  platform_cert : string; (* vendor-root endorsement of the platform key *)
  drbg : Crypto.Drbg.t;
  registers : int array;
  pcrs : Pcr.t;
  key_bits : int;
  sessions : (string, Crypto.Rsa.keypair) Hashtbl.t;
}

let create ?(key_bits = 1024) ?(num_registers = 64) ?(num_pcrs = 16) ~root ~seed () =
  let drbg = Crypto.Drbg.create ~seed:("cvm-device|" ^ seed) in
  let platform = Crypto.Rsa.generate drbg ~bits:key_bits in
  {
    platform;
    platform_cert = Platform_root.endorse_platform root platform.Crypto.Rsa.public;
    drbg;
    registers = Array.make num_registers 0;
    pcrs = Pcr.create ~count:num_pcrs;
    key_bits;
    sessions = Hashtbl.create 4;
  }

let identity_public t = t.platform.Crypto.Rsa.public
let platform_cert t = t.platform_cert
let pcrs t = t.pcrs
let random_nonce t = Crypto.Drbg.nonce t.drbg
let drbg t = t.drbg

let num_registers t = Array.length t.registers
let read_registers t = Array.copy t.registers

let check t i =
  if i < 0 || i >= Array.length t.registers then
    invalid_arg "Cvm_device: register index out of range"

let write_register t i v =
  check t i;
  t.registers.(i) <- v

let add_register t i v =
  check t i;
  t.registers.(i) <- t.registers.(i) + v

let clear_registers t = Array.fill t.registers 0 (Array.length t.registers) 0

(* The session "endorsement" is the full hardware chain, so a verifier
   needs nothing but the vendor root public key. *)
let begin_session t =
  let kp = Crypto.Rsa.generate t.drbg ~bits:t.key_bits in
  Hashtbl.replace t.sessions (Crypto.Rsa.fingerprint kp.Crypto.Rsa.public) kp;
  let report_sig =
    Crypto.Rsa.sign t.platform.Crypto.Rsa.secret
      (Platform_root.report_key_payload kp.Crypto.Rsa.public)
  in
  {
    Trust_module.public = kp.Crypto.Rsa.public;
    endorsement =
      Platform_root.encode_chain ~platform:t.platform.Crypto.Rsa.public
        ~cert:t.platform_cert ~report_sig;
  }

let sign_with_session t (session : Trust_module.session) payload =
  match Hashtbl.find_opt t.sessions (Crypto.Rsa.fingerprint session.public) with
  | None -> None
  | Some kp -> Some (Crypto.Rsa.sign kp.Crypto.Rsa.secret payload)

let end_session t (session : Trust_module.session) =
  Hashtbl.remove t.sessions (Crypto.Rsa.fingerprint session.public)

let quote_batch t session ~root ~nonce =
  sign_with_session t session (Trust_module.batch_quote_payload ~root ~nonce)

let sign_identity t msg = Crypto.Rsa.sign t.platform.Crypto.Rsa.secret msg
let decrypt_identity t cipher = Crypto.Rsa.decrypt t.platform.Crypto.Rsa.secret cipher
