module Codec = Wire.Codec

type command =
  | Launch of { image : string; flavor : string; properties : Property.t list; workload : string }
  | Attest_current of Protocol.attest_request
  | Attest_periodic of { vid : string; property : Property.t; schedule : Schedule.t; nonce : string }
  | Stop_periodic of { vid : string; property : Property.t; nonce : string }
  | Terminate of { vid : string }
  | Describe of { vid : string }

type launch_info = { vid : string; stages : (string * Sim.Time.t) list }

type reply =
  | Ok_launch of launch_info
  | Ok_report of Protocol.controller_report
  | Ok_ack
  | Ok_describe of { state : string; properties : Property.t list }
  | Err of string

let encode_command c =
  Codec.encode (fun e ->
      match c with
      | Launch { image; flavor; properties; workload } ->
          Codec.Enc.u8 e 1;
          Codec.Enc.str e image;
          Codec.Enc.str e flavor;
          Property.encode_list e properties;
          Codec.Enc.str e workload
      | Attest_current r ->
          Codec.Enc.u8 e 2;
          Codec.Enc.str e (Protocol.encode_attest_request r)
      | Attest_periodic { vid; property; schedule; nonce } ->
          Codec.Enc.u8 e 3;
          Codec.Enc.str e vid;
          Property.encode e property;
          Schedule.encode e schedule;
          Codec.Enc.str e nonce
      | Stop_periodic { vid; property; nonce } ->
          Codec.Enc.u8 e 4;
          Codec.Enc.str e vid;
          Property.encode e property;
          Codec.Enc.str e nonce
      | Terminate { vid } ->
          Codec.Enc.u8 e 5;
          Codec.Enc.str e vid
      | Describe { vid } ->
          Codec.Enc.u8 e 6;
          Codec.Enc.str e vid)

let decode_command s =
  Codec.decode_opt s (fun d ->
      match Codec.Dec.u8 d with
      | 1 ->
          let image = Codec.Dec.str d in
          let flavor = Codec.Dec.str d in
          let properties = Property.decode_list d in
          let workload = Codec.Dec.str d in
          Launch { image; flavor; properties; workload }
      | 2 -> (
          match Protocol.decode_attest_request (Codec.Dec.str d) with
          | Some r -> Attest_current r
          | None -> raise (Codec.Error "bad attest request"))
      | 3 ->
          let vid = Codec.Dec.str d in
          let property = Property.decode d in
          let schedule = Schedule.decode d in
          let nonce = Codec.Dec.str d in
          Attest_periodic { vid; property; schedule; nonce }
      | 4 ->
          let vid = Codec.Dec.str d in
          let property = Property.decode d in
          let nonce = Codec.Dec.str d in
          Stop_periodic { vid; property; nonce }
      | 5 -> Terminate { vid = Codec.Dec.str d }
      | 6 -> Describe { vid = Codec.Dec.str d }
      | _ -> raise (Codec.Error "bad command tag"))

let encode_reply r =
  Codec.encode (fun e ->
      match r with
      | Ok_launch { vid; stages } ->
          Codec.Enc.u8 e 1;
          Codec.Enc.str e vid;
          Codec.Enc.list e
            (fun (label, cost) ->
              Codec.Enc.str e label;
              Codec.Enc.int e cost)
            stages
      | Ok_report report ->
          Codec.Enc.u8 e 2;
          Codec.Enc.str e (Protocol.encode_controller_report report)
      | Ok_ack -> Codec.Enc.u8 e 3
      | Ok_describe { state; properties } ->
          Codec.Enc.u8 e 4;
          Codec.Enc.str e state;
          Property.encode_list e properties
      | Err why ->
          Codec.Enc.u8 e 0;
          Codec.Enc.str e why)

let decode_reply s =
  Codec.decode_opt s (fun d ->
      match Codec.Dec.u8 d with
      | 1 ->
          let vid = Codec.Dec.str d in
          let stages =
            Codec.Dec.list d (fun d ->
                let label = Codec.Dec.str d in
                let cost = Codec.Dec.int d in
                (label, cost))
          in
          Ok_launch { vid; stages }
      | 2 -> (
          match Protocol.decode_controller_report (Codec.Dec.str d) with
          | Some r -> Ok_report r
          | None -> raise (Codec.Error "bad report"))
      | 3 -> Ok_ack
      | 4 ->
          let state = Codec.Dec.str d in
          let properties = Property.decode_list d in
          Ok_describe { state; properties }
      | 0 -> Err (Codec.Dec.str d)
      | _ -> raise (Codec.Error "bad reply tag"))
