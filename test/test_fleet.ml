(* Tests for the fleet-scale attestation subsystem: the bounded priority
   queue, verdict cache (unit + controller integration), coalescing,
   deterministic replay, and shard scaling. *)

open Core

(* --- Pqueue: priority classes, backpressure ------------------------------- *)

let test_pqueue_priority_order () =
  let q = Fleet.Pqueue.create ~depth:8 in
  let push p v = ignore (Fleet.Pqueue.push q p v : string Fleet.Pqueue.admission) in
  push Fleet.Pqueue.Recheck "r1";
  push Fleet.Pqueue.Periodic "p1";
  push Fleet.Pqueue.Customer "c1";
  push Fleet.Pqueue.Periodic "p2";
  let order = List.init 4 (fun _ -> snd (Option.get (Fleet.Pqueue.pop q))) in
  Alcotest.(check (list string)) "customer first, FIFO within class"
    [ "c1"; "p1"; "p2"; "r1" ] order

let test_pqueue_sheds_lowest_first () =
  let q = Fleet.Pqueue.create ~depth:3 in
  ignore (Fleet.Pqueue.push q Fleet.Pqueue.Periodic "p1" : string Fleet.Pqueue.admission);
  ignore (Fleet.Pqueue.push q Fleet.Pqueue.Recheck "r1" : string Fleet.Pqueue.admission);
  ignore (Fleet.Pqueue.push q Fleet.Pqueue.Recheck "r2" : string Fleet.Pqueue.admission);
  (* Full.  A customer arrival evicts the oldest of the lowest class. *)
  (match Fleet.Pqueue.push q Fleet.Pqueue.Customer "c1" with
  | Fleet.Pqueue.Evicted (Fleet.Pqueue.Recheck, "r1") -> ()
  | _ -> Alcotest.fail "expected eviction of recheck r1");
  (* Another customer arrival evicts the remaining recheck... *)
  (match Fleet.Pqueue.push q Fleet.Pqueue.Customer "c2" with
  | Fleet.Pqueue.Evicted (Fleet.Pqueue.Recheck, "r2") -> ()
  | _ -> Alcotest.fail "expected eviction of recheck r2");
  (* ...then the periodic class starts paying. *)
  (match Fleet.Pqueue.push q Fleet.Pqueue.Customer "c3" with
  | Fleet.Pqueue.Evicted (Fleet.Pqueue.Periodic, "p1") -> ()
  | _ -> Alcotest.fail "expected eviction of periodic p1");
  (* Full of customers: an equal-priority arrival is rejected, never an
     eviction among equals. *)
  (match Fleet.Pqueue.push q Fleet.Pqueue.Customer "c4" with
  | Fleet.Pqueue.Rejected -> ()
  | _ -> Alcotest.fail "expected rejection");
  (* And a lower-priority arrival is rejected outright. *)
  match Fleet.Pqueue.push q Fleet.Pqueue.Recheck "r3" with
  | Fleet.Pqueue.Rejected -> ()
  | _ -> Alcotest.fail "expected rejection of recheck into full customer queue"

(* --- Verdict cache (unit) -------------------------------------------------- *)

let report ?(status = Report.Healthy) ~vid ~property () =
  { Report.vid; property; status; evidence = "test"; produced_at = 0 }

let test_cache_ttl_and_expiry () =
  let now = ref 0 in
  let cache = Verdict_cache.create ~ttl:(Sim.Time.sec 10) ~clock:(fun () -> !now) () in
  let r = report ~vid:"vm-1" ~property:Property.Startup_integrity () in
  Alcotest.(check bool) "healthy stored" true (Verdict_cache.store cache r);
  Alcotest.(check bool) "fresh hit" true
    (Verdict_cache.find cache ~vid:"vm-1" ~property:Property.Startup_integrity <> None);
  now := Sim.Time.sec 11;
  Alcotest.(check bool) "expired" true
    (Verdict_cache.find cache ~vid:"vm-1" ~property:Property.Startup_integrity = None);
  Alcotest.(check int) "expired entry dropped" 0 (Verdict_cache.size cache)

let test_cache_never_stores_unhealthy () =
  let cache = Verdict_cache.create ~ttl:(Sim.Time.sec 10) ~clock:(fun () -> 0) () in
  Alcotest.(check bool) "compromised not stored" false
    (Verdict_cache.store cache
       (report ~status:(Report.Compromised "rootkit") ~vid:"vm-1"
          ~property:Property.Runtime_integrity ()));
  Alcotest.(check bool) "unknown not stored" false
    (Verdict_cache.store cache
       (report ~status:(Report.Unknown "unreachable") ~vid:"vm-1"
          ~property:Property.Runtime_integrity ()));
  Alcotest.(check int) "empty" 0 (Verdict_cache.size cache)

let test_cache_disabled_by_default () =
  let cache = Verdict_cache.create ~clock:(fun () -> 0) () in
  Alcotest.(check bool) "disabled" false (Verdict_cache.enabled cache);
  Alcotest.(check bool) "store no-op" false
    (Verdict_cache.store cache (report ~vid:"vm-1" ~property:Property.Startup_integrity ()));
  Alcotest.(check bool) "find misses" true
    (Verdict_cache.find cache ~vid:"vm-1" ~property:Property.Startup_integrity = None)

let test_cache_invalidate_vm () =
  let cache = Verdict_cache.create ~ttl:(Sim.Time.sec 60) ~clock:(fun () -> 0) () in
  ignore (Verdict_cache.store cache (report ~vid:"vm-1" ~property:Property.Startup_integrity ()) : bool);
  ignore (Verdict_cache.store cache (report ~vid:"vm-1" ~property:Property.Runtime_integrity ()) : bool);
  ignore (Verdict_cache.store cache (report ~vid:"vm-2" ~property:Property.Startup_integrity ()) : bool);
  Alcotest.(check int) "both vm-1 entries dropped" 2 (Verdict_cache.invalidate_vm cache ~vid:"vm-1");
  Alcotest.(check int) "vm-2 untouched" 1 (Verdict_cache.size cache)

(* --- Controller integration ------------------------------------------------ *)

let fast_config = { Cloud.default_config with key_bits = 512 }

let launch_ok customer ~properties =
  match Cloud.Customer.launch customer ~image:"cirros" ~flavor:"small" ~properties () with
  | Ok info -> info.Commands.vid
  | Error e -> Alcotest.failf "launch failed: %a" Cloud.Customer.pp_error e

let attest_cost controller ~vid ~property =
  let drbg = Crypto.Drbg.create ~seed:"fleet-test" in
  let nonce = Crypto.Drbg.nonce drbg in
  let result, ledger = Controller.attest controller { Protocol.vid; property; nonce } in
  match result with
  | Ok creport -> (creport.Protocol.report, Ledger.total ledger)
  | Error e -> Alcotest.failf "attest failed: %s" e

let test_controller_cached_reattestation_cheaper () =
  let cloud = Cloud.build ~config:fast_config () in
  let customer = Cloud.Customer.create cloud ~name:"alice" in
  let vid = launch_ok customer ~properties:[ Property.Startup_integrity ] in
  let controller = Cloud.controller cloud in
  Controller.set_verdict_cache_ttl controller (Sim.Time.minutes 5);
  let r1, cold = attest_cost controller ~vid ~property:Property.Startup_integrity in
  let r2, cached = attest_cost controller ~vid ~property:Property.Startup_integrity in
  Alcotest.(check bool) "cold healthy" true (Report.is_healthy r1);
  Alcotest.(check bool) "cached healthy" true (Report.is_healthy r2);
  Alcotest.(check bool)
    (Printf.sprintf "cached (%d us) < cold (%d us)" cached cold)
    true (cached < cold);
  let stats = Verdict_cache.stats (Controller.verdict_cache controller) in
  Alcotest.(check int) "one hit" 1 stats.Verdict_cache.hits

let test_controller_lifecycle_invalidates () =
  let cloud = Cloud.build ~config:fast_config () in
  let customer = Cloud.Customer.create cloud ~name:"alice" in
  let vid = launch_ok customer ~properties:[ Property.Startup_integrity ] in
  let controller = Cloud.controller cloud in
  Controller.set_verdict_cache_ttl controller (Sim.Time.minutes 5);
  let cache = Controller.verdict_cache controller in
  ignore (attest_cost controller ~vid ~property:Property.Startup_integrity);
  Alcotest.(check int) "verdict cached" 1 (Verdict_cache.size cache);
  (* Suspension invalidates... *)
  (match Controller.respond controller Controller.Suspend_vm ~vid with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "suspend failed: %s" e);
  Alcotest.(check int) "suspend invalidated" 0 (Verdict_cache.size cache);
  (* ...and so does resuming. *)
  (match Controller.resume controller ~vid with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "resume failed: %s" e);
  ignore (attest_cost controller ~vid ~property:Property.Startup_integrity);
  Alcotest.(check int) "re-cached after resume" 1 (Verdict_cache.size cache);
  (* Migration lands on a new host: the old verdict must not survive it.
     Post-migration attestation may legitimately repopulate the cache, but
     the controller must have invalidated in between; observe via stats. *)
  let before = (Verdict_cache.stats cache).Verdict_cache.invalidations in
  (match Controller.respond controller Controller.Migrate_vm ~vid with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "migrate failed: %s" e);
  let after = (Verdict_cache.stats cache).Verdict_cache.invalidations in
  Alcotest.(check bool) "migration invalidated" true (after > before);
  (* Termination clears whatever the post-migration attestation cached. *)
  Alcotest.(check bool) "terminate ok" true (Controller.terminate controller ~vid);
  Alcotest.(check int) "terminate invalidated" 0 (Verdict_cache.size cache)

(* Freshness across lifecycle transitions, observed from the caller's side:
   the verdict handed back after a transition must be a fresh measurement,
   never the pre-transition cache entry.  These are the example-based twins
   of the fuzzer's cache-consistency oracle (and of its planted bugs). *)

let test_controller_migrate_then_attest_is_fresh () =
  let cloud = Cloud.build ~config:fast_config () in
  let customer = Cloud.Customer.create cloud ~name:"alice" in
  let vid =
    launch_ok customer ~properties:[ Property.Startup_integrity; Property.Runtime_integrity ]
  in
  let controller = Cloud.controller cloud in
  Controller.set_verdict_cache_ttl controller (Sim.Time.minutes 5);
  let cache = Controller.verdict_cache controller in
  ignore (attest_cost controller ~vid ~property:Property.Runtime_integrity);
  ignore (attest_cost controller ~vid ~property:Property.Runtime_integrity);
  Alcotest.(check int) "warm before migrate" 1 (Verdict_cache.stats cache).Verdict_cache.hits;
  (match Controller.respond controller Controller.Migrate_vm ~vid with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "migrate failed: %s" e);
  (* Post-migration attestation only re-establishes Startup_integrity; the
     pre-migration Runtime_integrity verdict measured the old host and must
     not be served for the new one. *)
  let r, _ = attest_cost controller ~vid ~property:Property.Runtime_integrity in
  Alcotest.(check bool) "fresh verdict healthy" true (Report.is_healthy r);
  Alcotest.(check int) "no stale hit after migrate" 1
    (Verdict_cache.stats cache).Verdict_cache.hits

let test_controller_suspend_resume_race_not_stale () =
  let cloud = Cloud.build ~config:fast_config () in
  let customer = Cloud.Customer.create cloud ~name:"alice" in
  let vid =
    launch_ok customer ~properties:[ Property.Startup_integrity; Property.Runtime_integrity ]
  in
  let controller = Cloud.controller cloud in
  Controller.set_verdict_cache_ttl controller (Sim.Time.minutes 5);
  let cache = Controller.verdict_cache controller in
  (match Controller.respond controller Controller.Suspend_vm ~vid with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "suspend failed: %s" e);
  (* The race: a customer attestation lands while the VM is suspended and
     its (healthy) verdict enters the cache... *)
  ignore (attest_cost controller ~vid ~property:Property.Runtime_integrity);
  Alcotest.(check int) "verdict cached while suspended" 1 (Verdict_cache.size cache);
  (match Controller.resume controller ~vid with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "resume failed: %s" e);
  (* ...so the attestation right after resume must re-measure: the cached
     verdict describes the pre-resume world. *)
  ignore (attest_cost controller ~vid ~property:Property.Runtime_integrity);
  Alcotest.(check int) "no stale hit after resume" 0
    (Verdict_cache.stats cache).Verdict_cache.hits;
  (* The miss was the invalidation's doing, not the cache being cold-only:
     with no transition in between, the next attestation does hit. *)
  ignore (attest_cost controller ~vid ~property:Property.Runtime_integrity);
  Alcotest.(check int) "cache active again" 1 (Verdict_cache.stats cache).Verdict_cache.hits

let test_controller_batched_duplicates_consistent () =
  (* Regression for a fuzz-campaign find (batch-equivalence, seed 2253): a
     duplicated (vid, property) pair inside one [attest_many] was measured
     twice by the batched round, and the second measurement of the stateful
     covert-channel monitor came back Unknown ("only 0 bursts") — while the
     unbatched loop served the duplicate from the verdict cache the first
     result had just populated.  Duplicates must ride the unbatched path
     after the group round, so both twins answer Healthy. *)
  let cloud = Cloud.build ~config:fast_config () in
  let customer = Cloud.Customer.create cloud ~name:"alice" in
  let vid =
    match
      Cloud.Customer.launch customer ~image:"cirros" ~flavor:"small"
        ~properties:Property.all ~workload:"busy" ()
    with
    | Ok info -> info.Commands.vid
    | Error e -> Alcotest.failf "launch failed: %a" Cloud.Customer.pp_error e
  in
  Cloud.run_for cloud (Sim.Time.sec 2);
  let controller = Cloud.controller cloud in
  Controller.set_verdict_cache_ttl controller (Sim.Time.minutes 5);
  Controller.set_batching controller true;
  let drbg = Crypto.Drbg.create ~seed:"dup-batch" in
  let mk property = { Protocol.vid; property; nonce = Crypto.Drbg.nonce drbg } in
  let reqs =
    [
      mk Property.Covert_channel_free;
      mk Property.Runtime_integrity;
      mk Property.Covert_channel_free;
    ]
  in
  let results, _ = Controller.attest_many controller reqs in
  let statuses =
    List.map
      (fun ((r : Protocol.attest_request), result) ->
        match result with
        | Ok cr -> cr.Protocol.report.Report.status
        | Error e -> Alcotest.failf "attest of %a failed: %s" Property.pp r.Protocol.property e)
      results
  in
  match statuses with
  | [ first; middle; dup ] ->
      Alcotest.(check bool) "first measurement healthy" true (first = Report.Healthy);
      Alcotest.(check bool) "sibling healthy" true (middle = Report.Healthy);
      Alcotest.(check bool) "duplicate not re-measured to a different verdict" true
        (dup = Report.Healthy)
  | _ -> Alcotest.fail "three results expected"

(* --- Cluster: coalescing --------------------------------------------------- *)

let test_cluster_coalesces_concurrent_requests () =
  let engine = Sim.Engine.create () in
  let metrics = Fleet.Metrics.create () in
  let measured = ref 0 in
  let cluster =
    Fleet.Cluster.create ~engine ~name:"as-test" ~queue_depth:8
      ~service_time:(fun () -> Sim.Time.ms 100)
      ~measure:(fun ~vid:_ ~property:_ ->
        incr measured;
        Report.Healthy)
      ~metrics ()
  in
  let verdicts = ref [] in
  let submit () =
    Fleet.Cluster.submit cluster ~vid:"vm-1" ~property:Property.Startup_integrity
      ~priority:Fleet.Pqueue.Periodic
      ~on_done:(fun v -> verdicts := v :: !verdicts)
  in
  submit ();
  (* Joins while queued/in service. *)
  ignore (Sim.Engine.schedule_after engine ~delay:(Sim.Time.ms 10) submit : Sim.Engine.handle);
  ignore (Sim.Engine.schedule_after engine ~delay:(Sim.Time.ms 50) submit : Sim.Engine.handle);
  Sim.Engine.run_until engine (Sim.Time.sec 1);
  Alcotest.(check int) "one measurement round" 1 !measured;
  Alcotest.(check int) "all three answered" 3 (List.length !verdicts);
  Alcotest.(check bool) "all healthy" true
    (List.for_all (function Fleet.Cluster.Done Report.Healthy -> true | _ -> false) !verdicts);
  Alcotest.(check int) "two coalesced" 2 (Fleet.Metrics.coalesced metrics);
  (* A request after completion starts a fresh measurement. *)
  submit ();
  Sim.Engine.run_until engine (Sim.Time.sec 2);
  Alcotest.(check int) "fresh round after completion" 2 !measured

let test_cluster_shed_verdict () =
  let engine = Sim.Engine.create () in
  let metrics = Fleet.Metrics.create () in
  let cluster =
    Fleet.Cluster.create ~engine ~name:"as-test" ~queue_depth:1
      ~service_time:(fun () -> Sim.Time.ms 100)
      ~measure:(fun ~vid:_ ~property:_ -> Report.Healthy)
      ~metrics ()
  in
  let shed = ref 0 in
  let submit vid priority =
    Fleet.Cluster.submit cluster ~vid ~property:Property.Startup_integrity ~priority
      ~on_done:(function Fleet.Cluster.Shed -> incr shed | Fleet.Cluster.Done _ -> ())
  in
  (* First occupies the single service slot, second fills the queue, third
     (recheck) is rejected, and a customer arrival evicts the queued
     recheck. *)
  submit "vm-1" Fleet.Pqueue.Periodic;
  submit "vm-2" Fleet.Pqueue.Recheck;
  submit "vm-3" Fleet.Pqueue.Recheck;
  Alcotest.(check int) "recheck rejected" 1 !shed;
  submit "vm-4" Fleet.Pqueue.Customer;
  Alcotest.(check int) "queued recheck evicted" 2 !shed;
  Alcotest.(check int) "sheds recorded by class" 2
    (Fleet.Metrics.shed metrics Fleet.Pqueue.Recheck);
  Sim.Engine.run_until engine (Sim.Time.sec 1);
  Alcotest.(check int) "survivors measured" 2 (Fleet.Metrics.measurements metrics)

(* --- Cluster: batching ------------------------------------------------------ *)

let batch_cluster ~engine ~metrics ~batch_max ~batch_window =
  Fleet.Cluster.create ~engine ~name:"as-batch" ~queue_depth:16
    ~service_time:(fun () -> Sim.Time.ms 100)
    ~batch_service_time:(fun n -> Sim.Time.ms (20 + (10 * n)))
    ~measure:(fun ~vid:_ ~property:_ -> Report.Healthy)
    ~metrics ~batch_max ~batch_window ()

let test_cluster_batch_window_flush () =
  let engine = Sim.Engine.create () in
  let metrics = Fleet.Metrics.create () in
  let cluster = batch_cluster ~engine ~metrics ~batch_max:4 ~batch_window:(Sim.Time.ms 200) in
  let done_at = ref [] in
  let submit vid =
    Fleet.Cluster.submit cluster ~vid ~property:Property.Startup_integrity
      ~priority:Fleet.Pqueue.Periodic
      ~on_done:(fun _ -> done_at := Sim.Engine.now engine :: !done_at)
  in
  submit "vm-1";
  submit "vm-2";
  (* Two jobs, bound 4: the partial batch waits for the window, then both
     are served in one round. *)
  Sim.Engine.run_until engine (Sim.Time.sec 2);
  Alcotest.(check int) "both served" 2 (List.length !done_at);
  Alcotest.(check int) "as one batched round" 1 (Fleet.Cluster.batches cluster);
  Alcotest.(check int) "both measured" 2 (Fleet.Metrics.measurements metrics);
  Alcotest.(check (float 0.001)) "mean batch size" 2.0 (Fleet.Metrics.mean_batch_size metrics);
  (* Completion = window (200 ms) + 2-job round (40 ms); well past the
     window but far from a pair of back-to-back 100 ms singles. *)
  List.iter
    (fun at ->
      Alcotest.(check int) "flushed when the window expired" (Sim.Time.ms 240) at)
    !done_at

let test_cluster_full_batch_skips_window () =
  let engine = Sim.Engine.create () in
  let metrics = Fleet.Metrics.create () in
  let cluster = batch_cluster ~engine ~metrics ~batch_max:2 ~batch_window:(Sim.Time.sec 10) in
  let finished = ref [] in
  let submit vid =
    Fleet.Cluster.submit cluster ~vid ~property:Property.Startup_integrity
      ~priority:Fleet.Pqueue.Periodic
      ~on_done:(fun _ -> finished := Sim.Engine.now engine :: !finished)
  in
  submit "vm-1";
  submit "vm-2";
  Sim.Engine.run_until engine (Sim.Time.sec 1);
  (* The batch filled to batch_max, so it must not have waited the 10 s
     window: a full batch flushes immediately. *)
  Alcotest.(check int) "both served" 2 (List.length !finished);
  Alcotest.(check int) "one round" 1 (Fleet.Cluster.batches cluster);
  List.iter
    (fun at -> Alcotest.(check int) "no window wait" (Sim.Time.ms 40) at)
    !finished

let test_cluster_customer_flushes_window () =
  let engine = Sim.Engine.create () in
  let metrics = Fleet.Metrics.create () in
  let cluster = batch_cluster ~engine ~metrics ~batch_max:8 ~batch_window:(Sim.Time.sec 10) in
  let customer_done = ref (-1) in
  Fleet.Cluster.submit cluster ~vid:"vm-1" ~property:Property.Startup_integrity
    ~priority:Fleet.Pqueue.Recheck
    ~on_done:(fun _ -> ());
  Fleet.Cluster.submit cluster ~vid:"vm-2" ~property:Property.Startup_integrity
    ~priority:Fleet.Pqueue.Periodic
    ~on_done:(fun _ -> ());
  (* A customer arrival must not sit behind a 10 s batch window. *)
  ignore
    (Sim.Engine.schedule_after engine ~delay:(Sim.Time.ms 50) (fun () ->
         Fleet.Cluster.submit cluster ~vid:"vm-3" ~property:Property.Startup_integrity
           ~priority:Fleet.Pqueue.Customer
           ~on_done:(fun _ -> customer_done := Sim.Engine.now engine))
      : Sim.Engine.handle);
  Sim.Engine.run_until engine (Sim.Time.sec 1);
  (* Arrival at 50 ms + 3-job round (50 ms): served at 100 ms, not 10 s. *)
  Alcotest.(check int) "customer flushed the partial batch" (Sim.Time.ms 100) !customer_done;
  Alcotest.(check int) "one batched round of three" 1 (Fleet.Cluster.batches cluster);
  Alcotest.(check (float 0.001)) "batch size 3" 3.0 (Fleet.Metrics.mean_batch_size metrics)

(* --- Driver: determinism, sharding, caching -------------------------------- *)

let smoke_config =
  {
    Fleet.Driver.default_config with
    servers = 40;
    vms = 200;
    duration = Sim.Time.sec 10;
    drain = Sim.Time.sec 10;
    hot_vms = 32;
    rate_per_s = 10.0;
  }

let test_driver_deterministic_replay () =
  (* ~host:false drops the host_wall_s columns — wall-clock is the one
     intentionally nondeterministic part of the artifact. *)
  let a = Experiments.Fleet_exp.run ~seed:7 ~scale:`Smoke () in
  let b = Experiments.Fleet_exp.run ~seed:7 ~scale:`Smoke () in
  Alcotest.(check string) "same seed, identical JSON"
    (Experiments.Json.to_string (Experiments.Fleet_exp.to_json ~host:false a))
    (Experiments.Json.to_string (Experiments.Fleet_exp.to_json ~host:false b));
  let c = Experiments.Fleet_exp.run ~seed:8 ~scale:`Smoke () in
  Alcotest.(check bool) "different seed differs" false
    (String.equal
       (Experiments.Json.to_string (Experiments.Fleet_exp.to_json ~host:false a))
       (Experiments.Json.to_string (Experiments.Fleet_exp.to_json ~host:false c)))

let sharded_config =
  (* Four home shards, churn and a live cache so arrivals, migrations and
     invalidations all cross shard boundaries during the run. *)
  {
    smoke_config with
    Fleet.Driver.as_count = 4;
    as_capacity = 2;
    rate_per_s = 24.0;
    ttl = Sim.Time.sec 10;
    churn_period = Sim.Time.ms 500;
    duration = Sim.Time.sec 5;
    drain = Sim.Time.sec 5;
    epoch = Sim.Time.ms 50;
  }

let test_driver_domains_byte_identical () =
  let run domains = Fleet.Driver.run { sharded_config with Fleet.Driver.domains } in
  let r1 = run 1 and r2 = run 2 and r4 = run 4 in
  (* The scenario must actually exercise the cross-shard machinery, or the
     identity below is vacuous. *)
  Alcotest.(check bool) "migrations happened" true (r1.Fleet.Driver.migrations > 0);
  Alcotest.(check bool) "churn invalidated caches" true (r1.Fleet.Driver.invalidations > 0);
  Alcotest.(check bool) "cache hits happened" true (r1.Fleet.Driver.cache_hits > 0);
  Alcotest.(check string) "trace digest 1 = 2" r1.Fleet.Driver.trace_digest
    r2.Fleet.Driver.trace_digest;
  Alcotest.(check string) "trace digest 1 = 4" r1.Fleet.Driver.trace_digest
    r4.Fleet.Driver.trace_digest;
  Alcotest.(check string) "fingerprint 1 = 2" (Fleet.Driver.fingerprint r1)
    (Fleet.Driver.fingerprint r2);
  Alcotest.(check string) "fingerprint 1 = 4" (Fleet.Driver.fingerprint r1)
    (Fleet.Driver.fingerprint r4);
  (* Structural check on the records too (sans config, which differs in
     [domains] by construction, and sans the per-domain memo counters,
     whose split across slots depends on the domain count). *)
  Alcotest.(check bool) "results structurally equal" true
    ({ r1 with Fleet.Driver.config = sharded_config; verify_memo = [||] }
    = { r2 with Fleet.Driver.config = sharded_config; verify_memo = [||] });
  (* And a different seed gives a different trace. *)
  let r1' =
    Fleet.Driver.run { sharded_config with Fleet.Driver.seed = sharded_config.Fleet.Driver.seed + 1 }
  in
  Alcotest.(check bool) "different seed, different digest" false
    (String.equal r1.Fleet.Driver.trace_digest r1'.Fleet.Driver.trace_digest)

let test_epoch_barrier_migration_invalidates () =
  (* Protocol-level: a migration on the source shard emits an [Invalidate]
     for the destination shard; delivering it at the barrier must drop the
     destination's cached verdict so the next attestation re-measures. *)
  let engine = Sim.Engine.create () in
  let cache =
    Verdict_cache.create ~ttl:(Sim.Time.sec 60) ~clock:(fun () -> Sim.Engine.now engine) ()
  in
  ignore
    (Verdict_cache.store cache (report ~vid:"vm-7" ~property:Property.Startup_integrity ())
      : bool);
  Alcotest.(check bool) "cached before the barrier" true
    (Verdict_cache.find cache ~vid:"vm-7" ~property:Property.Startup_integrity <> None);
  let msg =
    { Fleet.Msg.at = Sim.Time.ms 40; src = 0; seq = 0; dst = 1;
      payload = Fleet.Msg.Invalidate { vid = "vm-7" } }
  in
  let barrier = Sim.Time.ms 50 in
  ignore
    (Sim.Engine.schedule engine ~at:barrier (fun () ->
         match msg.Fleet.Msg.payload with
         | Fleet.Msg.Invalidate { vid } -> ignore (Verdict_cache.invalidate_vm cache ~vid : int)
         | _ -> Alcotest.fail "unexpected payload")
      : Sim.Engine.handle);
  Sim.Engine.run_until engine barrier;
  Alcotest.(check bool) "gone after delivery" true
    (Verdict_cache.find cache ~vid:"vm-7" ~property:Property.Startup_integrity = None);
  Alcotest.(check int) "counted as invalidation" 1 (Verdict_cache.stats cache).invalidations;
  (* The (at, src, seq) order is total and collection-order independent. *)
  let m ~at ~src ~seq =
    { Fleet.Msg.at; src; seq; dst = 0; payload = Fleet.Msg.Invalidate { vid = "x" } }
  in
  let ms = [ m ~at:2 ~src:0 ~seq:0; m ~at:1 ~src:1 ~seq:1; m ~at:1 ~src:1 ~seq:0; m ~at:1 ~src:0 ~seq:5 ] in
  let sorted = List.sort Fleet.Msg.compare ms in
  Alcotest.(check (list string)) "sorted by (at, src, seq)"
    [ "1/0/5"; "1/1/0"; "1/1/1"; "2/0/0" ]
    (List.map
       (fun (x : Fleet.Msg.t) -> Printf.sprintf "%d/%d/%d" x.at x.src x.seq)
       sorted)

let test_driver_sharding_raises_throughput () =
  (* Offered load well beyond even four shards' service capacity (~9.4
     req/s cold each since the CRT recalibration of quote_sign). *)
  let run as_count =
    Fleet.Driver.run { smoke_config with Fleet.Driver.as_count; rate_per_s = 48.0 }
  in
  let r1 = run 1 and r2 = run 2 and r4 = run 4 in
  Alcotest.(check bool)
    (Printf.sprintf "2 shards (%.1f/s) > 1 shard (%.1f/s)" r2.Fleet.Driver.served_rps
       r1.Fleet.Driver.served_rps)
    true
    (r2.Fleet.Driver.served_rps > r1.Fleet.Driver.served_rps);
  Alcotest.(check bool)
    (Printf.sprintf "4 shards (%.1f/s) > 2 shards (%.1f/s)" r4.Fleet.Driver.served_rps
       r2.Fleet.Driver.served_rps)
    true
    (r4.Fleet.Driver.served_rps > r2.Fleet.Driver.served_rps);
  Alcotest.(check bool) "1 shard sheds under overload" true
    (r1.Fleet.Driver.shed_customer + r1.Fleet.Driver.shed_periodic
     + r1.Fleet.Driver.shed_recheck
    > 0)

let test_driver_cache_ttl_improves_latency () =
  (* Below one shard's service capacity, with a small hot set so repeats are
     frequent; overload would distort both latency distributions. *)
  let config =
    {
      smoke_config with
      Fleet.Driver.rate_per_s = 3.0;
      duration = Sim.Time.sec 20;
      hot_vms = 8;
      hot_p = 0.9;
    }
  in
  let cold = Fleet.Driver.run { config with Fleet.Driver.ttl = 0 } in
  let warm = Fleet.Driver.run { config with Fleet.Driver.ttl = Sim.Time.sec 30 } in
  Alcotest.(check int) "no hits with cache off" 0 cold.Fleet.Driver.cache_hits;
  Alcotest.(check bool) "hits with cache on" true (warm.Fleet.Driver.cache_hits > 0);
  Alcotest.(check bool)
    (Printf.sprintf "warm p50 (%.0f ms) < cold p50 (%.0f ms)" warm.Fleet.Driver.p50_ms
       cold.Fleet.Driver.p50_ms)
    true
    (warm.Fleet.Driver.p50_ms < cold.Fleet.Driver.p50_ms);
  Alcotest.(check bool) "churn invalidates" true (warm.Fleet.Driver.invalidations > 0)

(* --- Driver: batching -------------------------------------------------------- *)

let test_driver_batching_raises_saturated_throughput () =
  (* 32 req/s against one capacity-1 shard (~9.4 req/s cold): batching must
     lift served throughput by amortizing the per-round RSA costs. *)
  let base = { smoke_config with Fleet.Driver.rate_per_s = 32.0 } in
  let unbatched = Fleet.Driver.run base in
  let batched =
    Fleet.Driver.run
      { base with
        Fleet.Driver.batch_max = 16;
        batch_window = Sim.Time.ms 100;
        queue_depth = 32;
      }
  in
  Alcotest.(check int) "no batch rounds when off" 0 unbatched.Fleet.Driver.batches;
  Alcotest.(check bool) "batch rounds when on" true (batched.Fleet.Driver.batches > 0);
  Alcotest.(check bool)
    (Printf.sprintf "mean batch size > 1 (got %.2f)" batched.Fleet.Driver.mean_batch_size)
    true
    (batched.Fleet.Driver.mean_batch_size > 1.0);
  Alcotest.(check bool)
    (Printf.sprintf "batched (%.1f/s) > unbatched (%.1f/s)" batched.Fleet.Driver.served_rps
       unbatched.Fleet.Driver.served_rps)
    true
    (batched.Fleet.Driver.served_rps > unbatched.Fleet.Driver.served_rps)

let test_driver_batch_one_is_inert () =
  (* batch_max = 1 must be byte-for-byte the unbatched scheduler: even a
     non-zero window changes nothing, and no batch rounds are counted. *)
  let base = { smoke_config with Fleet.Driver.rate_per_s = 12.0 } in
  let plain = Fleet.Driver.run base in
  let windowed =
    Fleet.Driver.run { base with Fleet.Driver.batch_max = 1; batch_window = Sim.Time.ms 100 }
  in
  Alcotest.(check int) "served identical" plain.Fleet.Driver.served windowed.Fleet.Driver.served;
  Alcotest.(check (float 0.0)) "p50 identical" plain.Fleet.Driver.p50_ms
    windowed.Fleet.Driver.p50_ms;
  Alcotest.(check (float 0.0)) "p99 identical" plain.Fleet.Driver.p99_ms
    windowed.Fleet.Driver.p99_ms;
  Alcotest.(check int) "same measurements" plain.Fleet.Driver.measurements
    windowed.Fleet.Driver.measurements;
  Alcotest.(check int) "zero batch rounds" 0 windowed.Fleet.Driver.batches;
  Alcotest.(check (float 0.0)) "no batch size" 0.0 windowed.Fleet.Driver.mean_batch_size

let test_driver_shed_breakdown_sums () =
  (* The per-class shed counters must decompose the total drop count:
     offered = served + coalesced + cache hits + sheds. *)
  let r = Fleet.Driver.run { smoke_config with Fleet.Driver.rate_per_s = 48.0 } in
  let sheds =
    r.Fleet.Driver.shed_customer + r.Fleet.Driver.shed_periodic + r.Fleet.Driver.shed_recheck
  in
  Alcotest.(check bool) "overload sheds" true (sheds > 0);
  Alcotest.(check int) "offered fully accounted" r.Fleet.Driver.offered
    (r.Fleet.Driver.served + sheds);
  (* Customers are the last class to pay. *)
  Alcotest.(check bool) "customer sheds least" true
    (r.Fleet.Driver.shed_customer <= r.Fleet.Driver.shed_periodic)

let test_batch_exp_batch1_reproduces_fleet () =
  (* The batch-1 column of the batch experiment and the unbatched fleet
     experiment share a configuration (rate 24, 1 shard, cache off at smoke
     scale) — their numbers must agree exactly. *)
  let fleet = Experiments.Fleet_exp.run ~seed:7 ~scale:`Smoke () in
  let batch = Experiments.Batch_exp.run ~seed:7 ~scale:`Smoke () in
  let fleet_row =
    List.find
      (fun (row : Experiments.Fleet_exp.row) ->
        row.rate = 24.0 && row.as_count = 1 && row.ttl = 0)
      fleet.Experiments.Fleet_exp.rows
  in
  let batch_row =
    List.find
      (fun (row : Experiments.Batch_exp.row) -> row.batch = 1 && row.rate = 24.0)
      batch.Experiments.Batch_exp.rows
  in
  Alcotest.(check bool) "identical driver results" true
    (fleet_row.Experiments.Fleet_exp.r = batch_row.Experiments.Batch_exp.r);
  (* And the batched column of the same sweep actually batches. *)
  let batched_row =
    List.find
      (fun (row : Experiments.Batch_exp.row) -> row.batch = 8 && row.rate = 24.0)
      batch.Experiments.Batch_exp.rows
  in
  Alcotest.(check bool) "batch-8 rounds recorded" true
    (batched_row.Experiments.Batch_exp.r.Fleet.Driver.batches > 0);
  Alcotest.(check bool) "batch-8 serves more" true
    (batched_row.Experiments.Batch_exp.r.Fleet.Driver.served_rps
    > batch_row.Experiments.Batch_exp.r.Fleet.Driver.served_rps)

(* --- Sim.Stats additions ---------------------------------------------------- *)

let test_series_percentiles () =
  let s = Sim.Stats.Series.create () in
  List.iter (Sim.Stats.Series.add s) (List.init 100 (fun i -> float_of_int (i + 1)));
  Alcotest.(check (float 0.001)) "p50" 50.0 (Sim.Stats.Series.percentile s 50.0);
  Alcotest.(check (float 0.001)) "p95" 95.0 (Sim.Stats.Series.percentile s 95.0);
  Alcotest.(check (float 0.001)) "p99" 99.0 (Sim.Stats.Series.percentile s 99.0);
  Alcotest.(check (float 0.001)) "max" 100.0 (Sim.Stats.Series.max s);
  (* Interleaved adds keep the lazy sort honest. *)
  Sim.Stats.Series.add s 1000.0;
  Alcotest.(check (float 0.001)) "new max" 1000.0 (Sim.Stats.Series.max s);
  Alcotest.(check bool) "matches list percentile" true
    (Sim.Stats.Series.percentile s 75.0
    = Sim.Stats.percentile (List.init 100 (fun i -> float_of_int (i + 1)) @ [ 1000.0 ]) 75.0)

let test_reservoir_exact_mode () =
  let r = Sim.Stats.Reservoir.create ~cap:200 ~seed:1 () in
  List.iter (Sim.Stats.Reservoir.add r) (List.init 100 (fun i -> float_of_int (i + 1)));
  Alcotest.(check bool) "still exact" true (Sim.Stats.Reservoir.exact r);
  Alcotest.(check int) "n" 100 (Sim.Stats.Reservoir.n r);
  Alcotest.(check (float 0.001)) "p50" 50.0 (Sim.Stats.Reservoir.percentile r 50.0);
  Alcotest.(check (float 0.001)) "p99" 99.0 (Sim.Stats.Reservoir.percentile r 99.0);
  Alcotest.(check (float 0.001)) "mean" 50.5 (Sim.Stats.Reservoir.mean r);
  Alcotest.(check (float 0.001)) "min" 1.0 (Sim.Stats.Reservoir.min r);
  Alcotest.(check (float 0.001)) "max" 100.0 (Sim.Stats.Reservoir.max r)

let test_reservoir_merge () =
  (* Exact merge when everything fits in the accumulator's cap. *)
  let a = Sim.Stats.Reservoir.create ~cap:400 ~seed:1 () in
  let b = Sim.Stats.Reservoir.create ~cap:400 ~seed:2 () in
  List.iter (Sim.Stats.Reservoir.add a) (List.init 100 (fun i -> float_of_int (i + 1)));
  List.iter (Sim.Stats.Reservoir.add b) (List.init 100 (fun i -> float_of_int (i + 101)));
  Sim.Stats.Reservoir.merge_into a b;
  Alcotest.(check int) "merged count" 200 (Sim.Stats.Reservoir.n a);
  Alcotest.(check bool) "merge of exact fits stays exact" true (Sim.Stats.Reservoir.exact a);
  Alcotest.(check (float 0.001)) "merged p50" 100.0 (Sim.Stats.Reservoir.percentile a 50.0);
  Alcotest.(check (float 0.001)) "merged max" 200.0 (Sim.Stats.Reservoir.max a);
  Alcotest.(check int) "source unchanged" 100 (Sim.Stats.Reservoir.n b);
  (* Subsampled merge: count/sum/extrema stay exact, retention is bounded,
     and the whole procedure is deterministic in the accumulator's seed. *)
  let merged seed =
    let acc = Sim.Stats.Reservoir.create ~cap:64 ~seed () in
    for shard = 0 to 3 do
      let r = Sim.Stats.Reservoir.create ~cap:64 ~seed:(10 + shard) () in
      for i = 1 to 1000 do
        Sim.Stats.Reservoir.add r (float_of_int ((shard * 1000) + i))
      done;
      Sim.Stats.Reservoir.merge_into acc r
    done;
    acc
  in
  let acc = merged 5 in
  Alcotest.(check int) "subsampled count exact" 4000 (Sim.Stats.Reservoir.n acc);
  Alcotest.(check bool) "retention bounded" true (Sim.Stats.Reservoir.retained acc <= 64);
  Alcotest.(check bool) "no longer exact" false (Sim.Stats.Reservoir.exact acc);
  Alcotest.(check (float 0.001)) "mean exact" 2000.5 (Sim.Stats.Reservoir.mean acc);
  Alcotest.(check (float 0.001)) "min exact" 1.0 (Sim.Stats.Reservoir.min acc);
  Alcotest.(check (float 0.001)) "max exact" 4000.0 (Sim.Stats.Reservoir.max acc);
  let p50 = Sim.Stats.Reservoir.percentile acc 50.0 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 estimate in range (got %.0f)" p50)
    true
    (p50 > 1000.0 && p50 < 3000.0);
  let acc' = merged 5 in
  Alcotest.(check (float 0.0)) "merge deterministic" p50
    (Sim.Stats.Reservoir.percentile acc' 50.0)

let test_gauge_time_weighted () =
  let g = Sim.Stats.Gauge.create () in
  Sim.Stats.Gauge.set g ~now:0.0 2;
  Sim.Stats.Gauge.set g ~now:10.0 6;
  (* 2 for 10 s, then 6 for 10 s -> mean 4. *)
  Alcotest.(check (float 0.001)) "time-weighted mean" 4.0
    (Sim.Stats.Gauge.time_weighted_mean g ~now:20.0);
  Alcotest.(check int) "peak" 6 (Sim.Stats.Gauge.peak g)

(* --- Json emitter ----------------------------------------------------------- *)

let test_json_emitter () =
  let j =
    Experiments.Json.(
      Obj
        [
          ("s", Str "a\"b\n");
          ("i", Int 42);
          ("f", Float 1.5);
          ("nan", Float nan);
          ("l", List [ Bool true; Null ]);
        ])
  in
  Alcotest.(check string) "compact form"
    "{\"s\":\"a\\\"b\\n\",\"i\":42,\"f\":1.5,\"nan\":null,\"l\":[true,null]}"
    (Experiments.Json.to_string ~indent:0 j)

let test_json_write_missing_dir () =
  match
    Experiments.Json.write_file_result "/nonexistent-dir-cloudmonatt/out.json"
      Experiments.Json.Null
  with
  | Error msg -> Alcotest.(check bool) "message is non-empty" true (String.length msg > 0)
  | Ok () -> Alcotest.fail "writing into a missing directory must fail"

let () =
  Alcotest.run "fleet"
    [
      ( "pqueue",
        [
          Alcotest.test_case "priority order" `Quick test_pqueue_priority_order;
          Alcotest.test_case "sheds lowest first" `Quick test_pqueue_sheds_lowest_first;
        ] );
      ( "verdict-cache",
        [
          Alcotest.test_case "ttl and expiry" `Quick test_cache_ttl_and_expiry;
          Alcotest.test_case "never stores unhealthy" `Quick test_cache_never_stores_unhealthy;
          Alcotest.test_case "disabled by default" `Quick test_cache_disabled_by_default;
          Alcotest.test_case "invalidate vm" `Quick test_cache_invalidate_vm;
        ] );
      ( "controller-cache",
        [
          Alcotest.test_case "cached reattestation cheaper" `Quick
            test_controller_cached_reattestation_cheaper;
          Alcotest.test_case "lifecycle invalidates" `Quick test_controller_lifecycle_invalidates;
          Alcotest.test_case "migrate then attest is fresh" `Quick
            test_controller_migrate_then_attest_is_fresh;
          Alcotest.test_case "suspend/resume race not stale" `Quick
            test_controller_suspend_resume_race_not_stale;
          Alcotest.test_case "batched duplicates consistent" `Quick
            test_controller_batched_duplicates_consistent;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "coalesces concurrent requests" `Quick
            test_cluster_coalesces_concurrent_requests;
          Alcotest.test_case "shed verdicts" `Quick test_cluster_shed_verdict;
          Alcotest.test_case "batch window flush" `Quick test_cluster_batch_window_flush;
          Alcotest.test_case "full batch skips window" `Quick
            test_cluster_full_batch_skips_window;
          Alcotest.test_case "customer flushes window" `Quick
            test_cluster_customer_flushes_window;
        ] );
      ( "driver",
        [
          Alcotest.test_case "deterministic replay" `Quick test_driver_deterministic_replay;
          Alcotest.test_case "domains byte-identical" `Quick test_driver_domains_byte_identical;
          Alcotest.test_case "epoch-barrier migration invalidates" `Quick
            test_epoch_barrier_migration_invalidates;
          Alcotest.test_case "sharding raises throughput" `Quick
            test_driver_sharding_raises_throughput;
          Alcotest.test_case "cache ttl improves latency" `Quick
            test_driver_cache_ttl_improves_latency;
          Alcotest.test_case "batching raises saturated throughput" `Quick
            test_driver_batching_raises_saturated_throughput;
          Alcotest.test_case "batch one is inert" `Quick test_driver_batch_one_is_inert;
          Alcotest.test_case "shed breakdown sums" `Quick test_driver_shed_breakdown_sums;
          Alcotest.test_case "batch-1 reproduces fleet" `Quick
            test_batch_exp_batch1_reproduces_fleet;
        ] );
      ( "stats",
        [
          Alcotest.test_case "series percentiles" `Quick test_series_percentiles;
          Alcotest.test_case "reservoir exact mode" `Quick test_reservoir_exact_mode;
          Alcotest.test_case "reservoir merge" `Quick test_reservoir_merge;
          Alcotest.test_case "gauge time-weighted" `Quick test_gauge_time_weighted;
        ] );
      ( "json",
        [
          Alcotest.test_case "emitter" `Quick test_json_emitter;
          Alcotest.test_case "write into missing dir fails" `Quick test_json_write_missing_dir;
        ] );
    ]
