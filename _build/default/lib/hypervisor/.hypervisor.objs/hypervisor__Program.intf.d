lib/hypervisor/program.mli: Sim
