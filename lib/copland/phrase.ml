(* Protocol phrases: attestation protocols as first-class terms.

   Grammar (one line, no spaces, no ';' — the whole phrase embeds verbatim
   inside a fuzz-op token):

     phrase   := appraise | seq | par | deleg | layer
     appraise := "a" weak? slot "." prop          atomic appraisal
     seq      := "(" phrase ">" phrase ")"        sequential composition
     par      := "(" phrase "&" merge phrase ")"  parallel fan-out
     deleg    := "d" weak? cluster ":" phrase     delegate to AS cluster
     layer    := "l" weak? slot ":" phrase        attest the attester first
     merge    := "A" | "O" | "Q"                  All / Any / Quorum
     weak     := "-"                              weakened (attackable) form

   The weakened forms are deliberate protocol mistakes the Dolev-Yao engine
   must catch: "a-" drops the per-round nonce (replay), "d-" delegates
   without authenticating the sub-appraiser, "l-" skips the nested backend
   freshness check.  [default] is the single appraisal "a0.0", which the
   interpreter compiles to exactly today's hardcoded Controller flow. *)

type merge = All | Any | Quorum

type t =
  | Appraise of { slot : int; prop : int; nonce : bool }
  | Seq of t * t
  | Par of merge * t * t
  | Deleg of { cluster : int; auth : bool; body : t }
  | Layer of { slot : int; checked : bool; body : t }

let default = Appraise { slot = 0; prop = 0; nonce = true }

let merge_char = function All -> 'A' | Any -> 'O' | Quorum -> 'Q'

let rec to_string = function
  | Appraise { slot; prop; nonce } ->
      Printf.sprintf "a%s%d.%d" (if nonce then "" else "-") slot prop
  | Seq (a, b) -> Printf.sprintf "(%s>%s)" (to_string a) (to_string b)
  | Par (m, a, b) ->
      Printf.sprintf "(%s&%c%s)" (to_string a) (merge_char m) (to_string b)
  | Deleg { cluster; auth; body } ->
      Printf.sprintf "d%s%d:%s" (if auth then "" else "-") cluster (to_string body)
  | Layer { slot; checked; body } ->
      Printf.sprintf "l%s%d:%s" (if checked then "" else "-") slot (to_string body)

exception Parse of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> raise (Parse (Printf.sprintf "expected '%c' at offset %d" c !pos))
  in
  let weak () =
    match peek () with
    | Some '-' ->
        advance ();
        true
    | _ -> false
  in
  let number () =
    let start = !pos in
    while (match peek () with Some c when c >= '0' && c <= '9' -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then raise (Parse (Printf.sprintf "expected a number at offset %d" start));
    int_of_string (String.sub s start (!pos - start))
  in
  let rec phrase () =
    match peek () with
    | Some 'a' ->
        advance ();
        let nonce = not (weak ()) in
        let slot = number () in
        expect '.';
        let prop = number () in
        Appraise { slot; prop; nonce }
    | Some 'd' ->
        advance ();
        let auth = not (weak ()) in
        let cluster = number () in
        expect ':';
        Deleg { cluster; auth; body = phrase () }
    | Some 'l' ->
        advance ();
        let checked = not (weak ()) in
        let slot = number () in
        expect ':';
        Layer { slot; checked; body = phrase () }
    | Some '(' -> (
        advance ();
        let a = phrase () in
        match peek () with
        | Some '>' ->
            advance ();
            let b = phrase () in
            expect ')';
            Seq (a, b)
        | Some '&' -> (
            advance ();
            let m =
              match peek () with
              | Some 'A' -> All
              | Some 'O' -> Any
              | Some 'Q' -> Quorum
              | _ -> raise (Parse (Printf.sprintf "expected merge A/O/Q at offset %d" !pos))
            in
            advance ();
            let b = phrase () in
            expect ')';
            Par (m, a, b))
        | _ -> raise (Parse (Printf.sprintf "expected '>' or '&' at offset %d" !pos)))
    | Some c -> raise (Parse (Printf.sprintf "unexpected '%c' at offset %d" c !pos))
    | None -> raise (Parse "unexpected end of phrase")
  in
  match phrase () with
  | p ->
      if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
      else Ok p
  | exception Parse msg -> Error msg

let equal (a : t) (b : t) = a = b

let rec size = function
  | Appraise _ -> 1
  | Seq (a, b) | Par (_, a, b) -> 1 + size a + size b
  | Deleg { body; _ } | Layer { body; _ } -> 1 + size body

let rec appraisals = function
  | Appraise _ -> 1
  | Seq (a, b) | Par (_, a, b) -> appraisals a + appraisals b
  | Deleg { body; _ } | Layer { body; _ } -> appraisals body

(* Leaf appraisals in execution order, each with its enclosing delegation
   and layering context — the shape both the interpreter and the symbolic
   model generator consume. *)
type leaf = {
  index : int;
  slot : int;
  prop : int;
  nonce : bool;
  deleg : (int * bool) option;  (** (cluster, authenticated) *)
  layer : (int * bool) option;  (** (host slot, freshness-checked) *)
}

let leaves phrase =
  let next = ref 0 in
  let rec go deleg layer acc = function
    | Appraise { slot; prop; nonce } ->
        let index = !next in
        incr next;
        { index; slot; prop; nonce; deleg; layer } :: acc
    | Seq (a, b) | Par (_, a, b) -> go deleg layer (go deleg layer acc a) b
    | Deleg { cluster; auth; body } -> go (Some (cluster, auth)) layer acc body
    | Layer { slot; checked; body } -> go deleg (Some (slot, checked)) acc body
  in
  List.rev (go None None [] phrase)

let rec weakened = function
  | Appraise { nonce; _ } -> not nonce
  | Seq (a, b) | Par (_, a, b) -> weakened a || weakened b
  | Deleg { auth; body; _ } -> (not auth) || weakened body
  | Layer { checked; body; _ } -> (not checked) || weakened body

let pp ppf t = Format.pp_print_string ppf (to_string t)
