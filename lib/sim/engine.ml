type handle = int

type event = { time : Time.t; seq : int; id : handle; run : unit -> unit }

type t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  mutable next_id : int;
  queue : event Heap.t;
  cancelled : (handle, unit) Hashtbl.t;
  queued : (handle, unit) Hashtbl.t;
      (** handles with an event currently in the heap and not cancelled *)
  mutable live : int;
}

let cmp_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  {
    clock = Time.zero;
    next_seq = 0;
    next_id = 0;
    queue = Heap.create ~cmp:cmp_event;
    cancelled = Hashtbl.create 64;
    queued = Hashtbl.create 64;
    live = 0;
  }

let now t = t.clock

(* Every queued occurrence goes through here, so [live] and [queued] stay in
   lock-step: an id is counted exactly once while its event sits in the heap
   uncancelled.  Recurrences re-enter with their shared id. *)
let push t ~at ~id run =
  if at < t.clock then invalid_arg "Engine.schedule: time is in the past";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.queue { time = at; seq; id; run };
  Hashtbl.replace t.queued id ();
  t.live <- t.live + 1

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let schedule t ~at run =
  let id = fresh_id t in
  push t ~at ~id run;
  id

let schedule_after t ~delay run = schedule t ~at:(t.clock + delay) run

let cancel t h =
  (* Only a handle with an event still in the heap has anything to cancel;
     cancelling a fired, expired or already-cancelled handle is a no-op, so
     [pending] can never go negative. *)
  if Hashtbl.mem t.queued h then begin
    Hashtbl.remove t.queued h;
    Hashtbl.replace t.cancelled h ();
    t.live <- t.live - 1
  end

let every t ~period ?until f =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  (* All ticks share one externally visible handle, so the recurrence is
     cancelled exactly like a one-shot event.  Each tick (including the
     first) is guarded by the [until] expiry check. *)
  let id = fresh_id t in
  let expired at = match until with Some u -> at > u | None -> false in
  let rec tick at () =
    f ();
    let next = at + period in
    if not (expired next) then push t ~at:next ~id (tick next)
  in
  let first = t.clock + period in
  if not (expired first) then push t ~at:first ~id (tick first);
  id

let fire t ev =
  if Hashtbl.mem t.cancelled ev.id then
    (* The tombstone has served its purpose: this was the handle's only
       queued event, so drop it rather than leak one entry per cancel. *)
    Hashtbl.remove t.cancelled ev.id
  else begin
    Hashtbl.remove t.queued ev.id;
    t.live <- t.live - 1;
    t.clock <- ev.time;
    ev.run ()
  end

let run_until t horizon =
  let rec go () =
    match Heap.peek t.queue with
    | Some ev when ev.time <= horizon ->
        (match Heap.pop t.queue with Some e -> fire t e | None -> ());
        go ()
    | Some _ | None -> ()
  in
  go ();
  if horizon > t.clock then t.clock <- horizon

let run_all t ~limit =
  let rec go n =
    if n < limit then
      match Heap.pop t.queue with
      | Some ev ->
          fire t ev;
          go (n + 1)
      | None -> ()
  in
  go 0

let pending t = t.live
