(* Benchmark harness: one experiment per paper table/figure, the fleet-scale
   load experiment, plus bechamel micro-benchmarks of the building blocks.

   Usage: main.exe [--json FILE]
            [fig4|fig5|fig6|fig7|fig9|fig10|fig11|verify|cache|faults|fleet|ablations|micro|all]
   With no experiment, everything runs.  Unknown names abort with a listing.

   JSON-capable experiments (fleet, fig9) collect machine-readable results;
   they are written to FILE (or $CLOUDMONATT_BENCH_JSON) as one object keyed
   by experiment name.  `fleet` alone defaults to writing BENCH_fleet.json,
   the perf-trajectory artifact. *)

let seed = 2015

(* JSON results collected by the experiments that emit them. *)
let json_results : (string * Experiments.Json.t) list ref = ref []
let collect name json = json_results := (name, json) :: !json_results

let run_fig4 () = Experiments.Fig4.print (Experiments.Fig4.run ~seed ())
let run_fig5 () = Experiments.Fig5.print (Experiments.Fig5.run ~seed ())
let run_fig6 () = Experiments.Fig6.print (Experiments.Fig6.run ~seed ())
let run_fig7 () = Experiments.Fig7.print (Experiments.Fig7.run ~seed ())

let run_fig9 () =
  let rows = Experiments.Fig9.run ~seed () in
  Experiments.Fig9.print rows;
  collect "fig9" (Experiments.Fig9.to_json ~seed rows)

let run_fig10 () = Experiments.Fig10.print (Experiments.Fig10.run ~seed ())
let run_fig11 () = Experiments.Fig11.print (Experiments.Fig11.run ~seed ())
let run_verify () = Experiments.Protocol_check.print (Experiments.Protocol_check.run ())
let run_cache () = Experiments.Cache_exp.print (Experiments.Cache_exp.run ~seed ())
let run_faults () = Experiments.Faults.print (Experiments.Faults.run ~seed ())

let run_fleet () =
  let result = Experiments.Fleet_exp.run ~seed () in
  Experiments.Fleet_exp.print result;
  collect "fleet" (Experiments.Fleet_exp.to_json result)

let run_ablations () =
  Experiments.Ablations.print_detector (Experiments.Ablations.detector_sweep ~seed ());
  Experiments.Ablations.print_benign (Experiments.Ablations.benign_false_positives ());
  Experiments.Ablations.print_ticks (Experiments.Ablations.tick_sweep ());
  Experiments.Ablations.print_latency (Experiments.Ablations.detection_latency ~seed ~trials:4 ())

(* --- Micro-benchmarks (bechamel): the primitives under the protocol. --- *)

let micro_tests () =
  let open Bechamel in
  let drbg = Crypto.Drbg.create ~seed:"bench" in
  let kb = Crypto.Drbg.random_bytes drbg 1024 in
  let four_kb = Crypto.Drbg.random_bytes drbg 4096 in
  let key32 = Crypto.Drbg.random_bytes drbg 32 in
  let nonce12 = Crypto.Drbg.random_bytes drbg 12 in
  let rsa = Crypto.Rsa.generate drbg ~bits:1024 in
  let signature = Crypto.Rsa.sign rsa.secret "payload" in
  let tm = Tpm.Trust_module.create ~key_bits:512 ~seed:"bench-tm" () in
  let session = Tpm.Trust_module.begin_session tm in
  [
    Test.make ~name:"sha256-1KB" (Staged.stage (fun () -> Crypto.Sha256.digest kb));
    Test.make ~name:"hmac-1KB" (Staged.stage (fun () -> Crypto.Hmac.mac ~key:key32 kb));
    Test.make ~name:"chacha20-4KB"
      (Staged.stage (fun () -> Crypto.Chacha20.xor ~key:key32 ~nonce:nonce12 four_kb));
    Test.make ~name:"rsa1024-sign" (Staged.stage (fun () -> Crypto.Rsa.sign rsa.secret "payload"));
    Test.make ~name:"rsa1024-verify"
      (Staged.stage (fun () -> Crypto.Rsa.verify rsa.public ~signature "payload"));
    Test.make ~name:"tpm-quote-sign"
      (Staged.stage (fun () -> Tpm.Trust_module.sign_with_session tm session "measurements"));
    Test.make ~name:"pcr-extend"
      (Staged.stage
         (let pcrs = Tpm.Pcr.create ~count:16 in
          fun () -> Tpm.Pcr.extend pcrs 0 "measurement"));
  ]

let run_micro () =
  Experiments.Common.section "Micro-benchmarks (bechamel, host CPU time)";
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let tests = micro_tests () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
          Toolkit.Instance.monotonic_clock raw
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-24s %12.1f ns/op\n" name est
          | Some _ | None -> Printf.printf "  %-24s (no estimate)\n" name)
        results)
    tests

let experiments =
  [
    ("fig4", run_fig4);
    ("fig5", run_fig5);
    ("fig6", run_fig6);
    ("fig7", run_fig7);
    ("fig9", run_fig9);
    ("fig10", run_fig10);
    ("fig11", run_fig11);
    ("verify", run_verify);
    ("cache", run_cache);
    ("faults", run_faults);
    ("fleet", run_fleet);
    ("ablations", run_ablations);
    ("micro", run_micro);
  ]

let valid_names = "all" :: List.map fst experiments

let usage () =
  Printf.eprintf "usage: main.exe [--json FILE] [EXPERIMENT...]\nvalid experiments: %s\n"
    (String.concat ", " valid_names)

let parse_args argv =
  let rec go names json = function
    | [] -> (List.rev names, json)
    | "--json" :: path :: rest -> go names (Some path) rest
    | [ "--json" ] ->
        Printf.eprintf "error: --json needs a FILE argument\n";
        usage ();
        exit 2
    | name :: rest -> go (name :: names) json rest
  in
  let names, json = go [] None argv in
  let names = if names = [] then [ "all" ] else names in
  (* An unknown or misspelled experiment must fail loudly, not silently
     run nothing and exit 0. *)
  let unknown = List.filter (fun n -> not (List.mem n valid_names)) names in
  if unknown <> [] then begin
    Printf.eprintf "error: unknown experiment%s: %s\n"
      (if List.length unknown > 1 then "s" else "")
      (String.concat ", " unknown);
    usage ();
    exit 2
  end;
  (names, json)

let () =
  let which, json_arg =
    parse_args (Array.to_list (Array.sub Sys.argv 1 (Array.length Sys.argv - 1)))
  in
  let run_all = List.mem "all" which in
  print_endline "CloudMonatt evaluation harness (ISCA'15 figures)";
  List.iter
    (fun (name, f) ->
      if run_all || List.mem name which then begin
        let t0 = Sys.time () in
        f ();
        Printf.printf "[%s done in %.1fs host time]\n%!" name (Sys.time () -. t0)
      end)
    experiments;
  let json_path =
    match (json_arg, Sys.getenv_opt "CLOUDMONATT_BENCH_JSON") with
    | Some p, _ -> Some p
    | None, Some p -> Some p
    | None, None ->
        (* `fleet` writes its trajectory artifact even without --json. *)
        if List.mem_assoc "fleet" !json_results then Some "BENCH_fleet.json" else None
  in
  match json_path with
  | None -> ()
  | Some path ->
      if !json_results = [] then
        Printf.eprintf "warning: --json given but no selected experiment emits JSON\n"
      else begin
        Experiments.Json.write_file path (Experiments.Json.Obj (List.rev !json_results));
        Printf.printf "wrote %s\n%!" path
      end
