type failure = {
  scenario : Op.scenario;
  first : Oracle.violation;
  shrunk : Op.scenario;
  repro : string;
  shrink_replays : int;
}

type report = {
  seed0 : int;
  runs : int;
  ops_per_run : int;
  total_ops : int;
  total_vms : int;
  total_attests : int;
  failures : failure list;
  determinism_mismatches : int;
  batch_checked : int;
  batch_mismatches : (int * string) list;
}

(* A replay that raises is as much a bug as an oracle violation; fold it
   into the same failure shape so it shrinks like any other. *)
let run_safe ?bug scenario =
  match Replay.run ?bug scenario with
  | out -> Ok out
  | exception e -> Error (Printexc.to_string e)

let status_trace (out : Replay.outcome) =
  List.map
    (fun (obs : Oracle.op_obs) ->
      List.map
        (fun (a : Oracle.attest_obs) ->
          match a.a_result with
          | Error _ -> "E"
          | Ok cr -> (
              match cr.Core.Protocol.report.Core.Report.status with
              | Core.Report.Healthy -> "H"
              | Core.Report.Compromised _ -> "C"
              | Core.Report.Unknown _ -> "U"))
        obs.Oracle.attests)
    out.Replay.observations

(* Batching must never change a verdict, only its cost.  Faults are
   replaced (not removed — op indices and slot references must stay put)
   with [Clear_fault] in BOTH twins, because an adversary counting
   messages legitimately hits different messages on the two paths. *)
let batch_equiv ?bug scenario =
  let strip =
    List.map (function Op.Set_fault _ -> Op.Clear_fault | o -> o) scenario.Op.ops
  in
  let unbatch =
    List.map (function Op.Set_batching _ -> Op.Set_batching false | o -> o) strip
  in
  match
    ( run_safe ?bug { scenario with Op.ops = strip },
      run_safe ?bug { scenario with Op.ops = unbatch } )
  with
  | Ok a, Ok b ->
      if status_trace a <> status_trace b then
        Some "batched and unbatched twins delivered different verdict statuses"
      else None
  | Error e, _ | _, Error e -> Some ("twin replay raised: " ^ e)

let campaign ?(bug = Replay.No_bug) ?(check_determinism = true)
    ?(check_batch_equiv = true) ?(shrink_budget = 500) ~seed0 ~runs ~ops_per_run () =
  let failures = ref [] in
  let det_mismatches = ref 0 in
  let batch_checked = ref 0 in
  let batch_mismatches = ref [] in
  let total_ops = ref 0 in
  let total_vms = ref 0 in
  let total_attests = ref 0 in
  for i = 0 to runs - 1 do
    let seed = seed0 + i in
    let scenario = Gen.generate ~seed ~ops:ops_per_run in
    total_ops := !total_ops + List.length scenario.Op.ops;
    let first_violation =
      match run_safe ~bug scenario with
      | Ok out ->
          total_vms := !total_vms + out.Replay.vms_launched;
          total_attests := !total_attests + out.Replay.attests_run;
          (if check_determinism then
             match run_safe ~bug scenario with
             | Ok out2 when out2.Replay.digest = out.Replay.digest -> ()
             | _ -> incr det_mismatches);
          (match out.Replay.violations with v :: _ -> Some v | [] -> None)
      | Error e -> Some { Oracle.oracle = "exception"; op_index = -1; detail = e }
    in
    (match first_violation with
    | None -> ()
    | Some first ->
        let shrunk, shrink_replays =
          Shrink.minimize ~bug ~oracle:first.Oracle.oracle
            ~max_replays:shrink_budget scenario
        in
        failures :=
          { scenario; first; shrunk; repro = Op.to_string shrunk; shrink_replays }
          :: !failures);
    if
      check_batch_equiv && first_violation = None
      && List.exists (function Op.Set_batching true -> true | _ -> false) scenario.Op.ops
    then begin
      incr batch_checked;
      match batch_equiv ~bug scenario with
      | None -> ()
      | Some detail -> batch_mismatches := (seed, detail) :: !batch_mismatches
    end
  done;
  {
    seed0;
    runs;
    ops_per_run;
    total_ops = !total_ops;
    total_vms = !total_vms;
    total_attests = !total_attests;
    failures = List.rev !failures;
    determinism_mismatches = !det_mismatches;
    batch_checked = !batch_checked;
    batch_mismatches = List.rev !batch_mismatches;
  }

let clean r =
  r.failures = [] && r.determinism_mismatches = 0 && r.batch_mismatches = []

let pp_failure ppf f =
  Format.fprintf ppf "@[<v>seed %d: %a@,  shrunk to %d op(s) in %d replay(s)@,  repro: %s@]"
    f.scenario.Op.seed Oracle.pp_violation f.first
    (List.length f.shrunk.Op.ops)
    f.shrink_replays f.repro

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>fuzz campaign: %d runs x %d ops (seeds %d..%d)@,\
     %d ops executed, %d VMs launched, %d attestations@,\
     failures: %d, determinism mismatches: %d, batch twins checked: %d, mismatched: %d@]"
    r.runs r.ops_per_run r.seed0
    (r.seed0 + r.runs - 1)
    r.total_ops r.total_vms r.total_attests (List.length r.failures)
    r.determinism_mismatches r.batch_checked
    (List.length r.batch_mismatches);
  List.iter (fun f -> Format.fprintf ppf "@,%a" pp_failure f) r.failures;
  List.iter
    (fun (seed, detail) -> Format.fprintf ppf "@,[batch-equivalence] seed %d: %s" seed detail)
    r.batch_mismatches
