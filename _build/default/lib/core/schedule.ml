type t = Fixed of Sim.Time.t | Random_interval of { min : Sim.Time.t; max : Sim.Time.t }

let fixed period = Fixed period

let random ~min ~max =
  if min <= 0 || max < min then invalid_arg "Schedule.random: need 0 < min <= max";
  Random_interval { min; max }

let next_delay t drbg =
  match t with
  | Fixed period -> period
  | Random_interval { min; max } ->
      if max = min then min else min + Crypto.Drbg.random_int drbg (max - min + 1)

let min_period = function Fixed period -> period | Random_interval { min; _ } -> min

let pp ppf = function
  | Fixed period -> Format.fprintf ppf "every %a" Sim.Time.pp period
  | Random_interval { min; max } ->
      Format.fprintf ppf "randomly every %a-%a" Sim.Time.pp min Sim.Time.pp max

let encode e = function
  | Fixed period ->
      Wire.Codec.Enc.u8 e 1;
      Wire.Codec.Enc.int e period
  | Random_interval { min; max } ->
      Wire.Codec.Enc.u8 e 2;
      Wire.Codec.Enc.int e min;
      Wire.Codec.Enc.int e max

let decode d =
  match Wire.Codec.Dec.u8 d with
  | 1 -> Fixed (Wire.Codec.Dec.int d)
  | 2 ->
      let min = Wire.Codec.Dec.int d in
      let max = Wire.Codec.Dec.int d in
      Random_interval { min; max }
  | _ -> raise (Wire.Codec.Error "bad schedule tag")
