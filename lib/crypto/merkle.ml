(* Binary Merkle tree with domain-separated leaf/node hashes.  Odd nodes at
   a level are promoted unchanged, so the shape depends only on the leaf
   count and promoted leaves simply get shorter proofs. *)

let leaf_hash data = Sha256.digest_list [ "merkle-leaf|"; data ]
let node_hash l r = Sha256.digest_list [ "merkle-node|"; l; r ]

(* Which side of the pair the recorded sibling hash sits on. *)
type side = Sibling_left | Sibling_right

type proof = (side * string) list (* leaf -> root order *)

(* All levels bottom-up; the last has exactly one element, the root. *)
let levels leaves =
  if leaves = [] then invalid_arg "Merkle: no leaves";
  let rec up acc level =
    if Array.length level = 1 then List.rev (level :: acc)
    else begin
      let n = Array.length level in
      let next =
        Array.init
          ((n + 1) / 2)
          (fun i ->
            if (2 * i) + 1 < n then node_hash level.(2 * i) level.((2 * i) + 1)
            else level.(2 * i))
      in
      up (level :: acc) next
    end
  in
  up [] (Array.of_list (List.map leaf_hash leaves))

let root leaves =
  match List.rev (levels leaves) with
  | [| r |] :: _ -> r
  | _ -> assert false

let proof leaves i =
  let ls = levels leaves in
  if i < 0 || i >= List.length leaves then
    invalid_arg "Merkle.proof: leaf index out of range";
  let rec walk i acc = function
    | [] | [ _ ] -> List.rev acc
    | level :: rest ->
        let sib = i lxor 1 in
        let acc =
          if sib < Array.length level then
            let side = if sib < i then Sibling_left else Sibling_right in
            (side, level.(sib)) :: acc
          else acc (* promoted unchanged: nothing to hash at this level *)
        in
        walk (i / 2) acc rest
  in
  walk i [] ls

let verify ~root:expected ~leaf p =
  let h =
    List.fold_left
      (fun h (side, sib) ->
        match side with
        | Sibling_left -> node_hash sib h
        | Sibling_right -> node_hash h sib)
      (leaf_hash leaf) p
  in
  String.equal h expected

let proof_length = List.length

let node_count n =
  if n <= 0 then 0
  else begin
    (* n leaf hashes, plus one node hash per combined pair at each level. *)
    let rec interior n acc = if n <= 1 then acc else interior ((n + 1) / 2) (acc + (n / 2)) in
    n + interior n 0
  end

let max_proof_length n =
  if n <= 1 then 0
  else begin
    let rec depth n acc = if n <= 1 then acc else depth ((n + 1) / 2) (acc + 1) in
    depth n 0
  end

let encode e p =
  Wire.Codec.Enc.list e
    (fun (side, hash) ->
      Wire.Codec.Enc.u8 e (match side with Sibling_left -> 0 | Sibling_right -> 1);
      Wire.Codec.Enc.str e hash)
    p

let decode d =
  Wire.Codec.Dec.list d (fun d ->
      let side =
        match Wire.Codec.Dec.u8 d with
        | 0 -> Sibling_left
        | 1 -> Sibling_right
        | _ -> raise (Wire.Codec.Error "bad Merkle proof side")
      in
      let hash = Wire.Codec.Dec.str d in
      (side, hash))
