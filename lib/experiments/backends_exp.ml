(* Trust-backend comparison: a heterogeneous fleet smoke run plus two
   end-to-end lifecycle campaigns that the CI gate watches.

   - Fleet: three AS shards, one per backend kind, served split reported
     per backend (the cheaper vTPM/CVM crypto shifts capacity).
   - e-vTPM: migrate-without-rebind.  Save the vTPM state, restore it
     (what a migration or rollback carries) and attest: every quote from
     the restored state must come back as a signed Compromised verdict
     ([healthy_after_stale] must be 0 — that is the security claim) until
     the Privacy-CA rebind, after which attestation is Healthy again.
   - CVM: hardware reports verify against the vendor platform root alone,
     with the cloud operator outside the TCB. *)

open Core

type campaign = {
  cycles : int;
  healthy_fresh : int;  (** fresh attestations before any save/restore *)
  stale_attests : int;  (** attestations issued against restored state *)
  healthy_after_stale : int;  (** MUST be 0 *)
  compromised_after_stale : int;
  rebinds : int;
  healthy_after_rebind : int;
}

type cvm_check = { attests : int; healthy : int; root_present : bool }

type result = {
  seed : int;
  fleet : Fleet.Driver.result;
  campaign : campaign;
  cvm : cvm_check;
}

let property = Core.Property.Startup_integrity

let launch_vm customer =
  match
    Cloud.Customer.launch customer ~image:"cirros" ~flavor:"small"
      ~properties:[ property ] ()
  with
  | Ok info -> info.Core.Commands.vid
  | Error e ->
      failwith (Format.asprintf "backends: launch failed: %a" Cloud.Customer.pp_error e)

let attest_status customer ~vid =
  match Cloud.Customer.attest customer ~vid ~property with
  | Ok r -> r.Core.Report.status
  | Error e ->
      failwith (Format.asprintf "backends: attest failed: %a" Cloud.Customer.pp_error e)

let or_fail what = function
  | Ok v -> v
  | Error msg -> failwith (Printf.sprintf "backends: %s: %s" what msg)

(* Save/restore/rebind cycles against one VM's e-vTPM host. *)
let run_campaign ~seed ~cycles =
  let cloud =
    Cloud.build
      ~config:
        {
          Cloud.default_config with
          seed;
          key_bits = 512;
          backend_of = (fun _ -> Tpm.Backend.Evtpm);
        }
      ()
  in
  let customer = Cloud.Customer.create cloud ~name:"backends-exp" in
  let vid = launch_vm customer in
  let host =
    match Core.Controller.vm_host (Cloud.controller cloud) ~vid with
    | Some h -> h
    | None -> failwith "backends: launched VM has no host"
  in
  let c =
    ref
      {
        cycles;
        healthy_fresh = 0;
        stale_attests = 0;
        healthy_after_stale = 0;
        compromised_after_stale = 0;
        rebinds = 0;
        healthy_after_rebind = 0;
      }
  in
  for _ = 1 to cycles do
    (match attest_status customer ~vid with
    | Core.Report.Healthy -> c := { !c with healthy_fresh = !c.healthy_fresh + 1 }
    | s ->
        failwith
          (Format.asprintf "backends: fresh attest not Healthy: %a" Core.Report.pp_status
             s));
    let state = or_fail "vtpm_save" (Cloud.vtpm_save cloud ~server:host) in
    or_fail "vtpm_restore" (Cloud.vtpm_restore cloud ~server:host state);
    (match attest_status customer ~vid with
    | Core.Report.Healthy ->
        c :=
          {
            !c with
            stale_attests = !c.stale_attests + 1;
            healthy_after_stale = !c.healthy_after_stale + 1;
          }
    | Core.Report.Compromised _ ->
        c :=
          {
            !c with
            stale_attests = !c.stale_attests + 1;
            compromised_after_stale = !c.compromised_after_stale + 1;
          }
    | _ -> c := { !c with stale_attests = !c.stale_attests + 1 });
    let _epoch = or_fail "vtpm_rebind" (Cloud.vtpm_rebind cloud ~server:host) in
    c := { !c with rebinds = !c.rebinds + 1 };
    match attest_status customer ~vid with
    | Core.Report.Healthy ->
        c := { !c with healthy_after_rebind = !c.healthy_after_rebind + 1 }
    | s ->
        failwith
          (Format.asprintf "backends: post-rebind attest not Healthy: %a"
             Core.Report.pp_status s)
  done;
  !c

let run_cvm ~seed ~attests =
  let cloud =
    Cloud.build
      ~config:
        {
          Cloud.default_config with
          seed;
          key_bits = 512;
          backend_of = (fun _ -> Tpm.Backend.Cvm_report);
        }
      ()
  in
  let customer = Cloud.Customer.create cloud ~name:"backends-cvm" in
  let vid = launch_vm customer in
  let healthy = ref 0 in
  for _ = 1 to attests do
    match attest_status customer ~vid with
    | Core.Report.Healthy -> incr healthy
    | _ -> ()
  done;
  { attests; healthy = !healthy; root_present = Cloud.platform_root cloud <> None }

let fleet_config ~seed =
  {
    Fleet.Driver.default_config with
    seed;
    servers = 30;
    vms = 150;
    as_count = 3;
    ttl = 0;
    rate_per_s = 24.0;
    duration = Sim.Time.sec 5;
    drain = Sim.Time.sec 5;
    hot_vms = 16;
    backends = [| Tpm.Backend.Classic; Tpm.Backend.Evtpm; Tpm.Backend.Cvm_report |];
  }

let run ?(seed = 2015) () =
  let fleet = Fleet.Driver.run (fleet_config ~seed) in
  let campaign = run_campaign ~seed ~cycles:3 in
  let cvm = run_cvm ~seed:(seed + 1) ~attests:2 in
  { seed; fleet; campaign; cvm }

(* The acceptance gate: restored-but-not-rebound vTPM state must never
   attest Healthy, rebinding must always recover, and CVM reports must
   verify against the vendor root. *)
let clean { campaign; cvm; _ } =
  campaign.healthy_after_stale = 0
  && campaign.compromised_after_stale = campaign.stale_attests
  && campaign.healthy_after_rebind = campaign.rebinds
  && cvm.healthy = cvm.attests && cvm.root_present

let print ({ seed; fleet; campaign; cvm } as r) =
  Common.section (Printf.sprintf "Trust backends: classic / e-vTPM / CVM (seed %d)" seed);
  Printf.printf "Heterogeneous fleet (3 AS shards, one backend each):\n";
  Printf.printf "  offered %d  served %d  (%.2f/s served)\n" fleet.Fleet.Driver.offered
    fleet.Fleet.Driver.served fleet.Fleet.Driver.served_rps;
  let duration_s = Sim.Time.to_sec fleet.Fleet.Driver.config.Fleet.Driver.duration in
  List.iter
    (fun (kind, n) ->
      Printf.printf "  %-8s %5d served  %6.2f/s  %s\n" kind n
        (float_of_int n /. duration_s)
        (Common.bar (float_of_int n /. duration_s)))
    fleet.Fleet.Driver.served_by_backend;
  Printf.printf "\ne-vTPM migrate-without-rebind campaign (%d cycles):\n" campaign.cycles;
  Printf.printf "  fresh Healthy            %d\n" campaign.healthy_fresh;
  Printf.printf "  stale attests            %d\n" campaign.stale_attests;
  Printf.printf "  Healthy after stale      %d  (must be 0)\n" campaign.healthy_after_stale;
  Printf.printf "  Compromised after stale  %d\n" campaign.compromised_after_stale;
  Printf.printf "  Healthy after rebind     %d / %d rebinds\n" campaign.healthy_after_rebind
    campaign.rebinds;
  Printf.printf "\nCVM hardware reports (vendor root, operator outside TCB):\n";
  Printf.printf "  platform root present    %b\n" cvm.root_present;
  Printf.printf "  Healthy                  %d / %d attests\n" cvm.healthy cvm.attests;
  Printf.printf "\n%s\n"
    (if clean r then "backend gates hold: stale state never attested Healthy"
     else "BACKEND GATE VIOLATION")

let to_json ({ seed; fleet; campaign; cvm } as r) =
  let duration_s = Sim.Time.to_sec fleet.Fleet.Driver.config.Fleet.Driver.duration in
  Json.Obj
    [
      ("experiment", Json.Str "backends");
      ("seed", Json.Int seed);
      ( "fleet",
        Json.Obj
          [
            ( "mix",
              Json.List
                (Array.to_list
                   (Array.map
                      (fun k -> Json.Str (Tpm.Backend.kind_to_string k))
                      fleet.Fleet.Driver.config.Fleet.Driver.backends)) );
            ("offered", Json.Int fleet.Fleet.Driver.offered);
            ("served", Json.Int fleet.Fleet.Driver.served);
            ("served_rps", Json.Float fleet.Fleet.Driver.served_rps);
            ( "served_by_backend",
              Json.Obj
                (List.map
                   (fun (k, n) -> (k, Json.Int n))
                   fleet.Fleet.Driver.served_by_backend) );
            ( "served_rps_by_backend",
              Json.Obj
                (List.map
                   (fun (k, n) -> (k, Json.Float (float_of_int n /. duration_s)))
                   fleet.Fleet.Driver.served_by_backend) );
          ] );
      ( "evtpm_campaign",
        Json.Obj
          [
            ("cycles", Json.Int campaign.cycles);
            ("healthy_fresh", Json.Int campaign.healthy_fresh);
            ("stale_attests", Json.Int campaign.stale_attests);
            ("healthy_after_stale", Json.Int campaign.healthy_after_stale);
            ("compromised_after_stale", Json.Int campaign.compromised_after_stale);
            ("rebinds", Json.Int campaign.rebinds);
            ("healthy_after_rebind", Json.Int campaign.healthy_after_rebind);
          ] );
      ( "cvm",
        Json.Obj
          [
            ("root_present", Json.Bool cvm.root_present);
            ("attests", Json.Int cvm.attests);
            ("healthy", Json.Int cvm.healthy);
          ] );
      ("clean", Json.Bool (clean r));
    ]
