(** RSA signatures and encryption over {!Bignum}.

    This is the public-key layer used for all identity keys ({i SKc}, {i SKa},
    {i SKs}, {i SKcust}), the per-attestation session keys ({i ASKs}/{i AVKs})
    and the privacy-CA certificates.  Signatures are SHA-256 with
    PKCS#1-v1.5-style padding; encryption uses randomized type-2 padding.
    Key sizes are configurable so tests can run with small, fast keys. *)

type public = { n : Bignum.t; e : Bignum.t; bits : int }
type secret = { pub : public; d : Bignum.t }

type keypair = { public : public; secret : secret }

val generate : Drbg.t -> bits:int -> keypair
(** [generate drbg ~bits] creates a keypair with a [bits]-bit modulus and
    public exponent 65537. *)

val sign : secret -> string -> string
(** Detached signature over the SHA-256 digest of the message. *)

val verify : public -> signature:string -> string -> bool

val encrypt : Drbg.t -> public -> string -> string
(** @raise Invalid_argument when the plaintext exceeds the modulus capacity
    (modulus bytes - 11). *)

val decrypt : secret -> string -> string option
(** [None] when the padding does not parse (tampered or wrong key). *)

val max_plaintext : public -> int

val fingerprint : public -> string
(** SHA-256 of the encoded public key: a stable identity for key tables. *)

val public_to_string : public -> string
val public_of_string : string -> public option
(** Round-trippable wire encoding of a public key. *)
