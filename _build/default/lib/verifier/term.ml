type t =
  | Const of string
  | Fresh of string
  | Pub of t
  | Pair of t * t
  | Senc of t * t
  | Aenc of t * t
  | Sign of t * t
  | Hash of t

let equal = Stdlib.( = )
let compare = Stdlib.compare

let rec pp ppf = function
  | Const s -> Format.fprintf ppf "%s" s
  | Fresh s -> Format.fprintf ppf "~%s" s
  | Pub k -> Format.fprintf ppf "pk(%a)" pp k
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b
  | Senc (k, m) -> Format.fprintf ppf "senc(%a; %a)" pp k pp m
  | Aenc (k, m) -> Format.fprintf ppf "aenc(%a; %a)" pp k pp m
  | Sign (k, m) -> Format.fprintf ppf "sign(%a; %a)" pp k pp m
  | Hash m -> Format.fprintf ppf "h(%a)" pp m

let to_string t = Format.asprintf "%a" pp t

let rec pair_list = function
  | [] -> Const "nil"
  | [ x ] -> x
  | x :: rest -> Pair (x, pair_list rest)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

let subterms t =
  let rec go acc t =
    if Set.mem t acc then acc
    else begin
      let acc = Set.add t acc in
      match t with
      | Const _ | Fresh _ -> acc
      | Pub a | Hash a -> go acc a
      | Pair (a, b) | Senc (a, b) | Aenc (a, b) | Sign (a, b) -> go (go acc a) b
    end
  in
  Set.elements (go Set.empty t)
