(** Discrete-event simulation engine.

    The engine owns the simulated clock.  Events are thunks scheduled at
    absolute times; [run_until] executes them in time order (FIFO among
    equal times).  Handlers may schedule further events, including at the
    current time. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> t

val now : t -> Time.t
(** Current simulated time. *)

val schedule : t -> at:Time.t -> (unit -> unit) -> handle
(** [schedule t ~at f] runs [f] when the clock reaches [at].  [at] must not
    be in the past. *)

val schedule_after : t -> delay:Time.t -> (unit -> unit) -> handle
(** [schedule_after t ~delay f] is [schedule t ~at:(now t + delay) f]. *)

val cancel : t -> handle -> unit
(** Cancel a pending event; cancelling a fired event is a no-op. *)

val every : t -> period:Time.t -> ?until:Time.t -> (unit -> unit) -> handle
(** [every t ~period f] runs [f] each [period] starting one period from now,
    optionally stopping after [until].  Cancel with the returned handle. *)

val run_until : t -> Time.t -> unit
(** Execute all events up to and including time [horizon], then set the
    clock to [horizon]. *)

val run_all : t -> limit:int -> unit
(** Execute events until the queue drains or [limit] events have run. *)

val pending : t -> int
(** Number of scheduled (uncancelled) events. *)
