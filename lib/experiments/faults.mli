(** Fault-injection sweep: attestation availability on a lossy network.

    For each adversary (independent drop probability p, a deterministic
    drop-every-3rd, and a full blackout) this runs a batch of one-time
    attestations through the whole Controller -> Attestation Server ->
    cloud server chain and reports how many rounds still ended in a
    [Healthy] verdict thanks to the retry/resync layer, how many degraded
    to [Unknown], and the simulated latency the recovery added over the
    clean-network baseline. *)

type row = {
  label : string;
  rounds : int;
  healthy : int;
  unknown : int;
  errors : int;
  mean_ms : float;
  added_ms : float;
  drops : int;
  retries : int;
}

type result = row list

val run : ?seed:int -> ?rounds:int -> unit -> result
val print : result -> unit
