open Core

type row = { benchmark : string; relative : (string * float) list }

type result = { frequencies : string list; rows : row list }

let frequencies = [ ("no attest", None); ("1min", Some (Sim.Time.minutes 1)); ("10s", Some (Sim.Time.sec 10)); ("5s", Some (Sim.Time.sec 5)) ]

(* Work completed by the benchmark VM over a fixed run, with and without
   periodic attestation. *)
let work_done ~seed bench freq =
  let cloud = Cloud.build ~config:(Common.two_pcpu_config ~seed) () in
  let controller = Cloud.controller cloud in
  let customer = Cloud.Customer.create cloud ~name:"alice" in
  match
    Cloud.Customer.launch customer ~image:"ubuntu" ~flavor:"small"
      ~properties:[ Property.Cpu_availability ]
      ~workload:bench.Workloads.Cloud_bench.name ()
  with
  | Error e -> failwith (Format.asprintf "fig10: launch failed: %a" Cloud.Customer.pp_error e)
  | Ok info ->
      (* A CPU-bound co-tenant on the same pCPU makes the measurement
         non-trivial (the VM must actually contend). *)
      let host = Option.get (Controller.vm_host controller ~vid:info.Commands.vid) in
      let server = Option.get (Cloud.find_server cloud host) in
      let co =
        Hypervisor.Vm.make ~vid:"co-tenant" ~owner:"bob" ~image:Hypervisor.Image.ubuntu
          ~flavor:Hypervisor.Flavor.small
          ~programs:(fun () -> [ Hypervisor.Program.busy_loop () ])
          ()
      in
      (match Hypervisor.Server.launch server ~pin:0 co with
      | Ok _ -> ()
      | Error `Insufficient_memory -> failwith "fig10: co-tenant launch failed");
      (match freq with
      | None -> ()
      | Some f -> (
          match
            Cloud.Customer.attest_periodic customer ~vid:info.Commands.vid
              ~property:Property.Cpu_availability ~freq:f ()
          with
          | Ok () -> ()
          | Error e ->
              failwith (Format.asprintf "fig10: periodic failed: %a" Cloud.Customer.pp_error e)));
      Cloud.run_for cloud (Sim.Time.sec 60);
      let inst = Option.get (Hypervisor.Server.find server info.Commands.vid) in
      Hypervisor.Credit_scheduler.domain_runtime
        (Hypervisor.Server.scheduler server)
        inst.Hypervisor.Server.domain

let run ?(seed = 42) () =
  let rows =
    List.map
      (fun bench ->
        let baseline = work_done ~seed bench None in
        let relative =
          List.map
            (fun (label, freq) ->
              let w = work_done ~seed bench freq in
              (label, float_of_int w /. float_of_int baseline))
            frequencies
        in
        { benchmark = bench.Workloads.Cloud_bench.name; relative })
      Workloads.Cloud_bench.all
  in
  { frequencies = List.map fst frequencies; rows }

let print r =
  Common.section "Figure 10: relative performance under periodic runtime attestation";
  Printf.printf "%-10s" "benchmark";
  List.iter (fun f -> Printf.printf " %10s" f) r.frequencies;
  print_newline ();
  List.iter
    (fun row ->
      Printf.printf "%-10s" row.benchmark;
      List.iter (fun (_, v) -> Printf.printf " %9.1f%%" (100.0 *. v)) row.relative;
      print_newline ())
    r.rows
