(** Monitor Kernel (paper Figure 8): dispatches measurement requests to the
    individual monitors, loads the results into the Trust Module's Trust
    Evidence Registers and returns the measurement values to be signed.

    Intrusive probes (VMI memory reads) pause the target VM briefly; the
    passive monitors (VMM profile, burst histogram) cost the VM nothing —
    the distinction behind the zero overhead of paper Figure 10. *)

type t

type error = [ `Unknown_vm of string | `Unsupported of Measurement.request ]

val create : Hypervisor.Server.t -> t
(** Builds the monitor suite (VMM profiler with its sampling cadence, VMI
    hooks, integrity unit) for this server. *)

val server : t -> Hypervisor.Server.t
val profiler : t -> Vmm_profile.t

val collect :
  t -> vid:string -> Measurement.request list -> (Measurement.value list, error) result
(** Collect measurements for one VM, in request order.  Burst histograms
    report the interval counts accumulated since they were last collected
    for this VM (the "detection period"). *)

val intrusion_pause : t -> Measurement.request list -> Sim.Time.t
(** Total simulated time the VM's execution is paused to serve these
    requests (zero for passive monitors). *)
