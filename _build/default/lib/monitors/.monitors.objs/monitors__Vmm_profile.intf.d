lib/monitors/vmm_profile.mli: Hypervisor Sim
