(** Simulated time.

    All simulated clocks in CloudMonatt count integer {e microseconds} from
    the start of the simulation.  Integer time keeps event ordering exact and
    the simulation deterministic across platforms. *)

type t = int
(** A point in time, or a duration, in microseconds. *)

val zero : t

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val sec : int -> t
(** [sec n] is [n] seconds. *)

val minutes : int -> t

val of_ms_float : float -> t
(** [of_ms_float x] rounds [x] milliseconds to the nearest microsecond. *)

val to_ms : t -> float
(** [to_ms t] is [t] expressed in milliseconds. *)

val to_sec : t -> float
(** [to_sec t] is [t] expressed in seconds. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print with an adaptive unit (us, ms or s). *)
