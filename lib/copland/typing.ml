type ctx = {
  vms : int;
  clusters : int;
  properties : int;
  cluster_of : int -> int;
  host_of : int -> int;
}

type error =
  | Bad_slot of int
  | Bad_property of int
  | Bad_cluster of int
  | Unplaced of int
  | Nested_delegation
  | Cluster_mismatch of { slot : int; expected : int; actual : int }
  | Host_mismatch of { slot : int; layer_slot : int }

let pp_error ppf = function
  | Bad_slot s -> Format.fprintf ppf "no VM in slot %d" s
  | Bad_property p -> Format.fprintf ppf "no property with index %d" p
  | Bad_cluster c -> Format.fprintf ppf "no AS cluster %d" c
  | Unplaced s -> Format.fprintf ppf "slot %d's VM is not placed on any host" s
  | Nested_delegation -> Format.fprintf ppf "delegation inside a delegation"
  | Cluster_mismatch { slot; expected; actual } ->
      Format.fprintf ppf "slot %d is appraised by AS cluster %d, not the delegated cluster %d"
        slot actual expected
  | Host_mismatch { slot; layer_slot } ->
      Format.fprintf ppf
        "slot %d does not share a host with layered slot %d: the layer's backend appraisal \
         says nothing about this VM's quotes"
        slot layer_slot

let error_to_string e = Format.asprintf "%a" pp_error e

let ( let* ) = Result.bind

(* A slot is well-formed when it indexes a placed VM; under a delegation it
   must be routed to the delegated cluster, and under a layer it must run on
   the very host whose backend the layer appraises — a freshness check on
   one host says nothing about quotes signed on another. *)
let check_slot ctx ~deleg ~layer slot =
  if slot < 0 || slot >= ctx.vms then Error (Bad_slot slot)
  else begin
    let host = ctx.host_of slot in
    if host < 0 then Error (Unplaced slot)
    else
      let* () =
        match deleg with
        | Some cluster when ctx.cluster_of slot <> cluster ->
            Error (Cluster_mismatch { slot; expected = cluster; actual = ctx.cluster_of slot })
        | _ -> Ok ()
      in
      match layer with
      | Some layer_slot when ctx.host_of layer_slot <> host ->
          Error (Host_mismatch { slot; layer_slot })
      | _ -> Ok ()
  end

let check ctx phrase =
  let rec go ~deleg ~layer = function
    | Phrase.Appraise { slot; prop; nonce = _ } ->
        let* () = check_slot ctx ~deleg ~layer slot in
        if prop < 0 || prop >= ctx.properties then Error (Bad_property prop) else Ok ()
    | Phrase.Seq (a, b) | Phrase.Par (_, a, b) ->
        let* () = go ~deleg ~layer a in
        go ~deleg ~layer b
    | Phrase.Deleg { cluster; auth = _; body } ->
        if deleg <> None then Error Nested_delegation
        else if cluster < 0 || cluster >= ctx.clusters then Error (Bad_cluster cluster)
        else go ~deleg:(Some cluster) ~layer body
    | Phrase.Layer { slot; checked = _; body } ->
        let* () = check_slot ctx ~deleg ~layer slot in
        go ~deleg ~layer:(Some slot) body
  in
  go ~deleg:None ~layer:None phrase

let well_typed ctx phrase = Result.is_ok (check ctx phrase)
