test/test_sim.ml: Alcotest Array Bytes Format Gen Int64 List QCheck QCheck_alcotest Sim
