(** Security properties a customer can request for a VM.

    These are the four concrete case studies of paper section 4; the
    registry is open in spirit — adding a property means adding its
    measurement mapping and interpreter in {!Interpret}. *)

type t =
  | Startup_integrity  (** platform + VM image integrity at launch (4.2) *)
  | Runtime_integrity  (** no hidden malware inside the VM (4.3) *)
  | Covert_channel_free  (** no CPU covert-channel exfiltration (4.4) *)
  | Cpu_availability  (** SLA CPU share actually delivered (4.5) *)

val all : t list
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val encode : Wire.Codec.Enc.t -> t -> unit
val decode : Wire.Codec.Dec.t -> t

val encode_list : Wire.Codec.Enc.t -> t list -> unit
val decode_list : Wire.Codec.Dec.t -> t list
