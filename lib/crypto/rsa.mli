(** RSA signatures and encryption over {!Bignum}.

    This is the public-key layer used for all identity keys ({i SKc}, {i SKa},
    {i SKs}, {i SKcust}), the per-attestation session keys ({i ASKs}/{i AVKs})
    and the privacy-CA certificates.  Signatures are SHA-256 with
    PKCS#1-v1.5-style padding; encryption uses randomized type-2 padding.
    Key sizes are configurable so tests can run with small, fast keys. *)

type public = { n : Bignum.t; e : Bignum.t; bits : int }

type crt = { p : Bignum.t; q : Bignum.t; dp : Bignum.t; dq : Bignum.t; qinv : Bignum.t }
(** The prime factorization and derived exponents that let the private
    operation run as two half-width exponentiations (d mod p-1, d mod q-1,
    q{^-1} mod p) recombined by Garner's formula. *)

type secret = { pub : public; d : Bignum.t; crt : crt option }
(** [crt = None] (e.g. a secret reconstituted from a stored (n, d) pair)
    falls back to one full-width exponentiation; the produced bytes are
    identical either way. *)

type keypair = { public : public; secret : secret }

val generate : Drbg.t -> bits:int -> keypair
(** [generate drbg ~bits] creates a keypair with a [bits]-bit modulus and
    public exponent 65537.  Secrets carry CRT parameters. *)

val sign : ?crt:bool -> ?window:bool -> secret -> string -> string
(** Detached signature over the SHA-256 digest of the message.  [crt]
    (default [true]) and [window] (default [true]) select the CRT split
    and sliding-window exponentiation; all four combinations produce
    byte-identical signatures — the flags exist for the crypto bench's
    ablation rows and the equivalence tests. *)

val verify : public -> signature:string -> string -> bool

module Memo : sig
  (** LRU of verification verdicts keyed by
      [(fingerprint pub, Sha256.digest msg, Sha256.digest signature)].
      Verification is a pure function of those bytes, so a hit returns
      the identical verdict without the exponentiation. *)

  type t

  val create : capacity:int -> t
  val shared : unit -> t
  (** The process-wide memo (capacity {!default_capacity}) that
      {!verify_memo} defaults to. *)

  val default_capacity : int
  val hits : t -> int
  val misses : t -> int
  val length : t -> int
  val clear : t -> unit
end

val verify_memo : ?memo:Memo.t -> public -> signature:string -> string -> bool
(** {!verify} through the memo (the shared one unless [memo] is given).
    Used at the verify sites that re-check recurring artifacts:
    certificates, quotes under batch re-appraisal, tree heads and audit
    receipts. *)

val encrypt : Drbg.t -> public -> string -> string
(** @raise Invalid_argument when the plaintext exceeds the modulus capacity
    (modulus bytes - 11). *)

val decrypt : secret -> string -> string option
(** [None] when the padding does not parse (tampered or wrong key). *)

val max_plaintext : public -> int

val fingerprint : public -> string
(** SHA-256 of the encoded public key: a stable identity for key tables. *)

val public_to_string : public -> string
val public_of_string : string -> public option
(** Round-trippable wire encoding of a public key. *)
