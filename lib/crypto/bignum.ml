(* Naturals as little-endian arrays of 26-bit limbs.  With 26-bit limbs a
   limb product fits in 52 bits, leaving 10 bits of headroom for carries in
   the schoolbook and Montgomery inner loops on a 63-bit native int. *)

let limb_bits = 26
let limb_mask = (1 lsl limb_bits) - 1

type t = int array (* normalized: no trailing zero limbs; zero = [||] *)

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignum.of_int: negative";
  let rec go n acc = if n = 0 then List.rev acc else go (n lsr limb_bits) ((n land limb_mask) :: acc) in
  Array.of_list (go n [])

let to_int (a : t) =
  (* Fits iff no bit at position >= 62 is set: a non-negative OCaml int
     holds up to 2^62 - 1.  A limb is only or-ed in once it is known not
     to reach bit 62, so the accumulator can never truncate or wrap. *)
  let ok = ref true in
  let acc = ref 0 in
  Array.iteri
    (fun i limb ->
      let shift = i * limb_bits in
      if shift >= 62 then begin if limb <> 0 then ok := false end
      else if shift + limb_bits > 62 && limb lsr (62 - shift) <> 0 then ok := false
      else acc := !acc lor (limb lsl shift))
    a;
  if !ok then Some !acc else None

let is_zero (a : t) = Array.length a = 0
let is_odd (a : t) = Array.length a > 0 && a.(0) land 1 = 1

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize r

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Bignum.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + limb_mask + 1;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- cur land limb_mask;
        carry := cur lsr limb_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let cur = r.(!k) + !carry in
        r.(!k) <- cur land limb_mask;
        carry := cur lsr limb_bits;
        incr k
      done
    done;
    normalize r
  end

let bit_length (a : t) =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + width top 0
  end

let test_bit (a : t) i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let shift_left (a : t) k : t =
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- r.(i + limbs + 1) lor (v lsr limb_bits)
    done;
    normalize r
  end

let shift_right (a : t) k : t =
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let n = la - limbs in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi = if i + limbs + 1 < la then (a.(i + limbs + 1) lsl (limb_bits - bits)) land limb_mask else 0 in
        r.(i) <- if bits = 0 then a.(i + limbs) else lo lor hi
      done;
      normalize r
    end
  end

let divmod_small (a : t) d =
  if d <= 0 then invalid_arg "Bignum.divmod_small: divisor must be positive";
  if d > limb_mask then invalid_arg "Bignum.divmod_small: divisor too large";
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (normalize q, !rem)

(* Shift-and-subtract long division.  O(bits(a)) iterations over limb
   arrays; plenty fast for the <=2048-bit operands RSA produces, and far
   less error-prone than Knuth's algorithm D. *)
let divmod (a : t) (b : t) =
  if is_zero b then raise Division_by_zero;
  if Array.length b = 1 then begin
    let q, r = divmod_small a b.(0) in
    (q, of_int r)
  end
  else begin
    let c = compare a b in
    if c < 0 then (zero, a)
    else if c = 0 then (one, zero)
    else begin
      let shift = bit_length a - bit_length b in
      let q_bits = Array.make ((shift / limb_bits) + 1) 0 in
      let rem = ref a in
      (* One shifted divisor, walked right a bit per step: shifting b from
         scratch at every position costs a fresh O(limbs) array each
         iteration and made the loop quadratic in allocation. *)
      let candidate = ref (shift_left b shift) in
      for i = shift downto 0 do
        if compare !candidate !rem <= 0 then begin
          rem := sub !rem !candidate;
          q_bits.(i / limb_bits) <- q_bits.(i / limb_bits) lor (1 lsl (i mod limb_bits))
        end;
        if i > 0 then candidate := shift_right !candidate 1
      done;
      (normalize q_bits, !rem)
    end
  end

let rem a b = snd (divmod a b)

let gcd a b =
  let rec go a b = if is_zero b then a else go b (rem a b) in
  if compare a b >= 0 then go a b else go b a

(* Extended Euclid over a small signed layer, for the modular inverse. *)
type signed = { neg : bool; mag : t }

let s_of t = { neg = false; mag = t }

let s_sub x y =
  match (x.neg, y.neg) with
  | false, false -> if compare x.mag y.mag >= 0 then { neg = false; mag = sub x.mag y.mag } else { neg = true; mag = sub y.mag x.mag }
  | true, true -> if compare y.mag x.mag >= 0 then { neg = false; mag = sub y.mag x.mag } else { neg = true; mag = sub x.mag y.mag }
  | false, true -> { neg = false; mag = add x.mag y.mag }
  | true, false -> { neg = not (is_zero (add x.mag y.mag)); mag = add x.mag y.mag }

let s_mul_nat x (n : t) = { neg = x.neg && not (is_zero (mul x.mag n)); mag = mul x.mag n }

let mod_inverse a m =
  if is_zero m then invalid_arg "Bignum.mod_inverse: zero modulus";
  let a = rem a m in
  if is_zero a then None
  else begin
    (* Invariants: old_r = old_s*a (mod m), r = s*a (mod m). *)
    let rec go old_r r old_s s =
      if is_zero r then (old_r, old_s)
      else begin
        let q, rr = divmod old_r r in
        go r rr s (s_sub old_s (s_mul_nat s q))
      end
    in
    let g, x = go a m (s_of one) (s_of zero) in
    if not (equal g one) then None
    else begin
      let v = rem x.mag m in
      if x.neg && not (is_zero v) then Some (sub m v) else Some v
    end
  end

(* --- Montgomery arithmetic (odd modulus) ------------------------------ *)

(* The modulus is carried as the normalized [t] it arrived as: the final
   conditional subtraction compares and subtracts it directly, instead of
   re-normalizing a fresh copy of the limb array on every multiplication
   (two array copies per mont_mul on the old hot path). *)
type mont = { m : t; k : int; n0 : int; r2 : t }

(* -m^-1 mod 2^26 by Newton iteration: x <- x * (2 - m0 * x). *)
let mont_n0 m0 =
  let x = ref 1 in
  for _ = 1 to 5 do
    x := !x * (2 - (m0 * !x)) land limb_mask
  done;
  (limb_mask + 1 - !x) land limb_mask

let mont_init (m : t) =
  let k = Array.length m in
  let r = shift_left one (2 * k * limb_bits) in
  let r2 = rem r m in
  { m; k; n0 = mont_n0 m.(0); r2 }

(* CIOS Montgomery multiplication over fixed k-limb arrays: dst <- a*b*R^-1
   mod m, with [a], [b] and [dst] all exactly k limbs ([dst] may alias
   either input) and [t] a caller-owned (k+2)-limb scratch.  Keeping every
   operand at width k inside an exponentiation loop removes the per-call
   bounds checks, normalizations and allocations of the general entry
   point below. *)
let mont_mul_into ctx dst (a : int array) (b : int array) (t : int array) =
  let k = ctx.k in
  let m = (ctx.m :> int array) in
  let n0 = ctx.n0 in
  Array.fill t 0 (k + 2) 0;
  (* Unsafe accesses: every index below is bounded by construction — [a],
     [b], [m] and [dst] are exactly k limbs, [t] is k+2, and the loop
     variables range over 0..k-1 (so j-1, k and k+1 stay in range). *)
  for i = 0 to k - 1 do
    let ai = Array.unsafe_get a i in
    (* t <- t + ai * b *)
    let carry = ref 0 in
    for j = 0 to k - 1 do
      let cur = Array.unsafe_get t j + (ai * Array.unsafe_get b j) + !carry in
      Array.unsafe_set t j (cur land limb_mask);
      carry := cur lsr limb_bits
    done;
    let cur = Array.unsafe_get t k + !carry in
    Array.unsafe_set t k (cur land limb_mask);
    Array.unsafe_set t (k + 1) (Array.unsafe_get t (k + 1) + (cur lsr limb_bits));
    (* reduce one limb *)
    let u = Array.unsafe_get t 0 * n0 land limb_mask in
    let cur = Array.unsafe_get t 0 + (u * Array.unsafe_get m 0) in
    let carry = ref (cur lsr limb_bits) in
    for j = 1 to k - 1 do
      let cur = Array.unsafe_get t j + (u * Array.unsafe_get m j) + !carry in
      Array.unsafe_set t (j - 1) (cur land limb_mask);
      carry := cur lsr limb_bits
    done;
    let cur = Array.unsafe_get t k + !carry in
    Array.unsafe_set t (k - 1) (cur land limb_mask);
    Array.unsafe_set t k (Array.unsafe_get t (k + 1) + (cur lsr limb_bits));
    Array.unsafe_set t (k + 1) 0
  done;
  (* t.(0..k) < 2m with t.(k) at most 1 (m's top limb is nonzero);
     conditionally subtract m once. *)
  let ge =
    t.(k) <> 0
    ||
    let rec cmp j = j < 0 || (if t.(j) <> m.(j) then t.(j) > m.(j) else cmp (j - 1)) in
    cmp (k - 1)
  in
  if ge then begin
    let borrow = ref 0 in
    for j = 0 to k - 1 do
      let d = Array.unsafe_get t j - Array.unsafe_get m j - !borrow in
      if d < 0 then begin
        Array.unsafe_set dst j (d + limb_mask + 1);
        borrow := 1
      end
      else begin
        Array.unsafe_set dst j d;
        borrow := 0
      end
    done
  end
  else Array.blit t 0 dst 0 k

(* Montgomery squaring: dst <- a*a*R^-1 mod m with [a] and [dst] exactly k
   limbs (dst may alias a) and [t] a caller-owned (2k+1)-limb scratch.
   Squaring computes each cross product a_i*a_j (i<j) once and doubles the
   accumulator, then adds the diagonal a_i^2 terms — about 1.5k^2 limb
   multiplies against CIOS's 2k^2.  Exponentiation is almost all squarings
   (~n of them versus ~n/5 window multiplies), so the hot path gets most of
   that 25%. *)
let mont_sqr_into ctx dst (a : int array) (t : int array) =
  let k = ctx.k in
  let m = (ctx.m :> int array) in
  let n0 = ctx.n0 in
  Array.fill t 0 ((2 * k) + 1) 0;
  (* cross products, each unordered pair once *)
  for i = 0 to k - 2 do
    let ai = Array.unsafe_get a i in
    let carry = ref 0 in
    for j = i + 1 to k - 1 do
      let cur = Array.unsafe_get t (i + j) + (ai * Array.unsafe_get a j) + !carry in
      Array.unsafe_set t (i + j) (cur land limb_mask);
      carry := cur lsr limb_bits
    done;
    (* i+k <= 2k-2 has not been written yet, so this cannot overflow the
       10-bit headroom *)
    Array.unsafe_set t (i + k) (Array.unsafe_get t (i + k) + !carry)
  done;
  (* double the cross products *)
  let carry = ref 0 in
  for idx = 0 to (2 * k) - 1 do
    let cur = (Array.unsafe_get t idx lsl 1) + !carry in
    Array.unsafe_set t idx (cur land limb_mask);
    carry := cur lsr limb_bits
  done;
  t.(2 * k) <- !carry;
  (* diagonal terms a_i^2 at even positions *)
  let carry = ref 0 in
  for i = 0 to k - 1 do
    let ai = Array.unsafe_get a i in
    let cur = Array.unsafe_get t (2 * i) + (ai * ai) + !carry in
    Array.unsafe_set t (2 * i) (cur land limb_mask);
    let cur2 = Array.unsafe_get t ((2 * i) + 1) + (cur lsr limb_bits) in
    Array.unsafe_set t ((2 * i) + 1) (cur2 land limb_mask);
    carry := cur2 lsr limb_bits
  done;
  t.(2 * k) <- t.(2 * k) + !carry;
  (* Montgomery reduction of the 2k-limb product (REDC) *)
  for i = 0 to k - 1 do
    let u = Array.unsafe_get t i * n0 land limb_mask in
    let carry = ref 0 in
    for j = 0 to k - 1 do
      let cur = Array.unsafe_get t (i + j) + (u * Array.unsafe_get m j) + !carry in
      Array.unsafe_set t (i + j) (cur land limb_mask);
      carry := cur lsr limb_bits
    done;
    let jj = ref (i + k) in
    while !carry <> 0 do
      let cur = t.(!jj) + !carry in
      t.(!jj) <- cur land limb_mask;
      carry := cur lsr limb_bits;
      incr jj
    done
  done;
  (* result is t.(k .. 2k), < 2m with the top limb at most 1 *)
  let ge =
    t.(2 * k) <> 0
    ||
    let rec cmp j = j < 0 || (if t.(k + j) <> m.(j) then t.(k + j) > m.(j) else cmp (j - 1)) in
    cmp (k - 1)
  in
  if ge then begin
    let borrow = ref 0 in
    for j = 0 to k - 1 do
      let d = Array.unsafe_get t (k + j) - Array.unsafe_get m j - !borrow in
      if d < 0 then begin
        Array.unsafe_set dst j (d + limb_mask + 1);
        borrow := 1
      end
      else begin
        Array.unsafe_set dst j d;
        borrow := 0
      end
    done
  end
  else Array.blit t k dst 0 k

let mont_pad ctx (v : t) =
  let r = Array.make ctx.k 0 in
  Array.blit (v :> int array) 0 r 0 (Array.length v);
  r

(* General-entry Montgomery multiplication on normalized values. *)
let mont_mul ctx (a : t) (b : t) : t =
  let dst = Array.make ctx.k 0 in
  mont_mul_into ctx dst (mont_pad ctx a) (mont_pad ctx b) (Array.make (ctx.k + 2) 0);
  normalize dst

(* Modular exponentiation with a width-4 sliding window over a table of
   the odd powers base^1, base^3, ..., base^15 (all in the Montgomery
   domain).  Versus bit-at-a-time square-and-multiply this trades ~n/2
   multiplies for ~n/5 plus eight table entries — ~20% fewer mont_muls on
   a random full-width exponent — and the fixed-width kernel above keeps
   every step allocation-free.  [~window:false] keeps the plain
   square-and-multiply ladder (the pre-window path, kept for the crypto
   bench's ablation rows); short exponents such as 65537 skip the table,
   which would cost more than it saves. *)
let mod_pow_mont ~window ~base ~exp ~modulus =
  let ctx = mont_init modulus in
  let k = ctx.k in
  let scratch = Array.make (k + 2) 0 in
  let scratch2 = Array.make ((2 * k) + 1) 0 in
  let mm dst a b = mont_mul_into ctx dst a b scratch in
  let ms dst a = mont_sqr_into ctx dst a scratch2 in
  let base_m = mont_pad ctx (mont_mul ctx (rem base modulus) ctx.r2) in
  let acc = mont_pad ctx (mont_mul ctx one ctx.r2) (* R mod m = Montgomery one *) in
  let eb = bit_length exp in
  if (not window) || eb <= 16 then
    for i = eb - 1 downto 0 do
      ms acc acc;
      if test_bit exp i then mm acc acc base_m
    done
  else begin
    let sq = Array.make k 0 in
    ms sq base_m;
    let tbl = Array.init 8 (fun _ -> Array.make k 0) in
    Array.blit base_m 0 tbl.(0) 0 k;
    for i = 1 to 7 do
      mm tbl.(i) tbl.(i - 1) sq
    done;
    let i = ref (eb - 1) in
    while !i >= 0 do
      if not (test_bit exp !i) then begin
        ms acc acc;
        decr i
      end
      else begin
        (* Greedy window [!i .. j]: at most 4 bits, shrunk so its lowest
           bit is set — the window value w is odd and tbl.((w-1)/2) holds
           base^w. *)
        let j = ref (max 0 (!i - 3)) in
        while not (test_bit exp !j) do
          incr j
        done;
        let w = ref 0 in
        for b = !i downto !j do
          w := (!w lsl 1) lor (if test_bit exp b then 1 else 0)
        done;
        for _ = !j to !i do
          ms acc acc
        done;
        mm acc acc tbl.(!w lsr 1);
        i := !j - 1
      end
    done
  end;
  (* Leave the Montgomery domain: one multiplication by plain 1. *)
  mm acc acc (mont_pad ctx one);
  normalize acc

let mod_pow_generic ~base ~exp ~modulus =
  let base = ref (rem base modulus) in
  let acc = ref (rem one modulus) in
  for i = 0 to bit_length exp - 1 do
    if test_bit exp i then acc := rem (mul !acc !base) modulus;
    if i < bit_length exp - 1 then base := rem (mul !base !base) modulus
  done;
  !acc

let mod_pow ~base ~exp ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if equal modulus one then zero
  else if is_zero exp then rem one modulus
  else if is_odd modulus then mod_pow_mont ~window:true ~base ~exp ~modulus
  else mod_pow_generic ~base ~exp ~modulus

(* --- Byte / hex conversions ------------------------------------------- *)

let of_bytes_be s =
  let acc = ref zero in
  String.iter (fun c -> acc := add (shift_left !acc 8) (of_int (Char.code c))) s;
  !acc

let to_bytes_be ?width (a : t) =
  let nbytes = (bit_length a + 7) / 8 in
  let nbytes = max nbytes 1 in
  let out_len =
    match width with
    | None -> nbytes
    | Some w ->
        if w < nbytes then invalid_arg "Bignum.to_bytes_be: width too small";
        w
  in
  let b = Bytes.make out_len '\x00' in
  (* Each output byte straddles at most two limbs; extract it directly
     instead of dividing the whole number by 256 once per byte. *)
  let arr = (a :> int array) in
  let la = Array.length arr in
  for j = 0 to nbytes - 1 do
    let bit = 8 * j in
    let limb = bit / limb_bits and off = bit mod limb_bits in
    let v = if limb < la then arr.(limb) lsr off else 0 in
    let v =
      if off + 8 > limb_bits && limb + 1 < la then
        v lor (arr.(limb + 1) lsl (limb_bits - off))
      else v
    in
    Bytes.set b (out_len - 1 - j) (Char.chr (v land 0xff))
  done;
  Bytes.unsafe_to_string b

let of_hex h = of_bytes_be (Hexs.decode (if String.length h mod 2 = 1 then "0" ^ h else h))
let to_hex a = Hexs.encode (to_bytes_be a)

let pp ppf a = Format.pp_print_string ppf (to_hex a)

(* --- Randomness and primality ----------------------------------------- *)

let random_bits drbg bits =
  if bits <= 0 then zero
  else begin
    let nbytes = (bits + 7) / 8 in
    let s = Bytes.of_string (Drbg.random_bytes drbg nbytes) in
    let extra = (nbytes * 8) - bits in
    if extra > 0 then
      Bytes.set s 0 (Char.chr (Char.code (Bytes.get s 0) land (0xff lsr extra)));
    of_bytes_be (Bytes.unsafe_to_string s)
  end

let random_below drbg bound =
  if is_zero bound then invalid_arg "Bignum.random_below: zero bound";
  let bits = bit_length bound in
  let rec go () =
    let v = random_bits drbg bits in
    if compare v bound < 0 then v else go ()
  in
  go ()

let small_primes =
  (* Primes below 1000, for fast trial division. *)
  let sieve = Array.make 1000 true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to 999 do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j < 1000 do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  let acc = ref [] in
  for i = 999 downto 2 do
    if sieve.(i) then acc := i :: !acc
  done;
  !acc

let miller_rabin_round drbg n n_minus_1 d s =
  let a = add two (random_below drbg (sub n_minus_1 two)) in
  let x = ref (mod_pow ~base:a ~exp:d ~modulus:n) in
  if equal !x one || equal !x n_minus_1 then true
  else begin
    let witness = ref true in
    let r = ref 1 in
    while !witness && !r < s do
      x := rem (mul !x !x) n;
      if equal !x n_minus_1 then witness := false;
      incr r
    done;
    not !witness
  end

let is_probable_prime ?(rounds = 24) drbg n =
  match to_int n with
  | Some v when v < 2 -> false
  | Some v when v < 1_000_000 ->
      let rec check d = d * d > v || (v mod d <> 0 && check (d + 1)) in
      check 2
  | _ ->
      if not (is_odd n) then false
      else if List.exists (fun p -> snd (divmod_small n p) = 0 && not (equal n (of_int p))) small_primes
      then false
      else begin
        let n_minus_1 = sub n one in
        let rec split d s = if is_odd d then (d, s) else split (shift_right d 1) (s + 1) in
        let d, s = split n_minus_1 0 in
        let rec rounds_ok i = i >= rounds || (miller_rabin_round drbg n n_minus_1 d s && rounds_ok (i + 1)) in
        rounds_ok 0
      end

let generate_prime drbg ~bits =
  if bits < 8 then invalid_arg "Bignum.generate_prime: need at least 8 bits";
  let top = add (shift_left one (bits - 1)) (shift_left one (bits - 2)) in
  let rec go () =
    let candidate = add (random_bits drbg (bits - 2)) top in
    let candidate = if is_odd candidate then candidate else add candidate one in
    if is_probable_prime drbg candidate then candidate else go ()
  in
  go ()
