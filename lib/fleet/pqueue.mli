(** Bounded attestation-request queue with priority classes.

    Three classes, strictly ordered: customer-triggered one-time requests
    outrank periodic monitoring rounds, which outrank post-response
    re-checks.  Within a class, FIFO.

    Admission control: a push into a full queue sheds load from the {e
    lowest}-priority non-empty class that is strictly lower-priority than
    the arrival (evicting that class's oldest entry); if nothing queued is
    lower-priority, the arrival itself is rejected.  The caller learns
    exactly what was shed, so it can fail those requests and count them. *)

type priority = Customer | Periodic | Recheck

val rank : priority -> int
(** 0 = highest (Customer). *)

val priority_label : priority -> string
val all_priorities : priority list

type 'a t

type 'a admission =
  | Enqueued
  | Evicted of priority * 'a  (** accepted; this lower-priority entry was shed *)
  | Rejected  (** queue full of same-or-higher-priority work *)

val create : depth:int -> 'a t
(** [depth] must be positive: total entries across all classes. *)

val push : 'a t -> priority -> 'a -> 'a admission
val pop : 'a t -> (priority * 'a) option
(** Highest-priority class first, FIFO within the class. *)

val length : 'a t -> int
val depth : 'a t -> int
val is_empty : 'a t -> bool
val length_of : 'a t -> priority -> int
