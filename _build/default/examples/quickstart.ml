(* Quickstart: bring up a CloudMonatt cloud, launch a monitored VM, and
   attest its security health.

     dune exec examples/quickstart.exe

   This walks the whole Figure 1 architecture: the customer asks the Cloud
   Controller for a VM with security properties; the Policy Validation
   Module picks a CloudMonatt-secure server; launch ends with a startup
   attestation; then the customer issues one-time attestations (Table 1
   [runtime_attest_current]) for each supported property and verifies the
   signed report chain end-to-end. *)

open Core

let () =
  (* A 3-server cloud, as in the paper's testbed.  512-bit identity keys
     keep the real RSA fast; all reported times come from the calibrated
     simulated cost model. *)
  let cloud = Cloud.build ~config:{ Cloud.default_config with key_bits = 512 } () in
  let alice = Cloud.Customer.create cloud ~name:"alice" in

  (* Launch: a large ubuntu VM running a database service, with security
     monitoring requested for startup integrity and CPU availability. *)
  print_endline "Launching a monitored VM...";
  let info =
    match
      Cloud.Customer.launch alice ~image:"ubuntu" ~flavor:"large"
        ~properties:[ Property.Startup_integrity; Property.Cpu_availability ]
        ~workload:"database" ()
    with
    | Ok info -> info
    | Error e -> Format.kasprintf failwith "launch failed: %a" Cloud.Customer.pp_error e
  in
  Printf.printf "VM %s is up. Launch stages:\n" info.Commands.vid;
  List.iter
    (fun (stage, cost) -> Printf.printf "  %-12s %6.0f ms\n" stage (Sim.Time.to_ms cost))
    info.Commands.stages;

  (* Let the VM run for a while of simulated time. *)
  Cloud.run_for cloud (Sim.Time.sec 5);

  (* One-time attestations.  Each goes customer -> controller ->
     attestation server -> cloud server and back, with nonces N1/N2/N3 and
     quotes Q3/Q2/Q1; the customer verifies the controller's signature. *)
  print_endline "\nOne-time attestations:";
  List.iter
    (fun property ->
      match Cloud.Customer.attest alice ~vid:info.Commands.vid ~property with
      | Ok report ->
          Format.printf "  %-22s %a@." (Property.to_string property) Report.pp_status
            report.Report.status
      | Error e ->
          Format.printf "  %-22s error: %a@." (Property.to_string property)
            Cloud.Customer.pp_error e)
    Property.all;

  Printf.printf "\nController event log:\n";
  List.iter (fun e -> Printf.printf "  %s\n" e) (Controller.events (Cloud.controller cloud))
