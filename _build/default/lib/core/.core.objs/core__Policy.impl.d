lib/core/policy.ml: Database Hypervisor List Property String
