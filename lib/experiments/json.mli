(** Minimal JSON emitter (no external dependencies) for machine-readable
    benchmark results. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Serialize; [indent] > 0 pretty-prints (default 2).  Non-finite floats
    serialize as [null], keeping the output strictly standard JSON. *)

val write_file : string -> t -> unit
(** Write [to_string] plus a trailing newline. *)
