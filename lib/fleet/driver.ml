type config = {
  seed : int;
  servers : int;
  vms : int;
  as_count : int;
  as_capacity : int;
  queue_depth : int;
  ttl : Sim.Time.t;
  rate_per_s : float;
  duration : Sim.Time.t;
  drain : Sim.Time.t;
  unhealthy_p : float;
  churn_period : Sim.Time.t;
  hot_vms : int;
  hot_p : float;
  customer_p : float;
  periodic_p : float;
  batch_max : int;
  batch_window : Sim.Time.t;
  audit_checkpoint : Sim.Time.t;
      (* transparency-log STH interval; 0 (the default) = audit off *)
  backends : Tpm.Backend.kind array;
      (* trust backend per AS cluster, cluster i running backends.(i mod len);
         the default all-classic array replays the pre-backend driver exactly *)
}

let default_config =
  {
    seed = 2015;
    servers = 200;
    vms = 2000;
    as_count = 1;
    as_capacity = 1;
    queue_depth = 16;
    ttl = 0;
    rate_per_s = 8.0;
    duration = Sim.Time.sec 30;
    drain = Sim.Time.sec 30;
    unhealthy_p = 0.05;
    churn_period = Sim.Time.sec 5;
    hot_vms = 64;
    hot_p = 0.8;
    customer_p = 0.2;
    periodic_p = 0.7;
    batch_max = 1;
    batch_window = 0;
    audit_checkpoint = 0;
    backends = [| Tpm.Backend.Classic |];
  }

type result = {
  config : config;
  offered : int;
  served : int;
  shed_customer : int;
  shed_periodic : int;
  shed_recheck : int;
  coalesced : int;
  measurements : int;
  unhealthy : int;
  cache_hits : int;
  cache_hit_rate : float;
  invalidations : int;
  migrations : int;
  offered_rps : float;
  served_rps : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_queue_depth : int;
  mean_queue_depth : float;
  batches : int;
  mean_batch_size : float;
  audit_appends : int;
  audit_checkpoints : int;
  audit_proofs : int;
  audit_equivocations : int;
  served_by_backend : (string * int) list;
      (** cluster-served requests per backend kind, for each kind the config
          places (cache hits never reach a cluster and are not attributed) *)
}

(* --- Cost model, anchored to lib/core's calibrated ledger constants ------ *)

(* Fleet clusters span racks, so a wire leg costs more than the single-rack
   LAN model in lib/net; the crypto and measurement terms are exactly the
   ones the real attestation path charges to its ledger. *)
let wire_leg = Sim.Time.ms 12

(* AS-side occupancy of one measurement round: collect from the cloud
   server (two legs), interpret, sign the quoted report. *)
let cold_service_base =
  (2 * wire_leg) + Core.Costs.measurement_collect + Core.Costs.interpret
  + Core.Costs.quote_sign + Core.Costs.signature_verify

(* Per-backend variant: swap the quote-signing term for the backend's own,
   and charge the CVM platform-chain walk on top of the signature check.
   [Classic] reduces to exactly [cold_service_base]. *)
let cold_service_base_for kind =
  (2 * wire_leg) + Core.Costs.measurement_collect + Core.Costs.interpret
  + Core.Costs.quote_sign_for kind + Core.Costs.signature_verify
  + (match kind with
    | Tpm.Backend.Cvm_report -> Core.Costs.cvm_chain_verify
    | Tpm.Backend.Classic | Tpm.Backend.Evtpm -> 0)

(* Controller-side work around a cold round: route lookup, two legs to the
   AS, verify the AS signature, re-sign for the customer.  Adds latency but
   does not occupy an AS slot. *)
let controller_overhead =
  (2 * wire_leg) + Core.Costs.db_lookup + Core.Costs.signature_verify
  + Core.Costs.report_sign

(* A verdict-cache hit never leaves the controller: database lookup plus
   re-signing the cached report under the fresh nonce — the same charges
   Controller.attest puts on its ledger for a hit. *)
let cache_hit_cost = Core.Costs.db_lookup + Core.Costs.report_sign

(* AS-side occupancy of one n-report batched round: the wire legs, quote
   signing and signature verification are paid once (the signature terms
   via the Merkle-batched costs from {!Core.Costs}), while collection and
   interpretation stay per report.  [n = 1] is exactly the unbatched
   round, so a batch of one costs what a lone request always did. *)
let batch_service_base_for kind n =
  if n <= 1 then cold_service_base_for kind
  else
    (2 * wire_leg)
    + (n * (Core.Costs.measurement_collect + Core.Costs.interpret))
    + (Core.Costs.batch_quote_cost_for ~batch:n kind - Core.Costs.session_keygen_for kind)
    + Core.Costs.batch_verify_cost ~batch:n
    + (match kind with
      | Tpm.Backend.Cvm_report -> Core.Costs.cvm_chain_verify
      | Tpm.Backend.Classic | Tpm.Backend.Evtpm -> 0)

let batch_service_base = batch_service_base_for Tpm.Backend.Classic

(* Per-verdict transparency-log work when auditing is on: the AS appends
   the signed report (O(log n) sibling hashes), signs a fresh tree head,
   serves the inclusion proof, and the controller verifies the receipt
   before accepting the verdict.  Pure latency — none of it occupies an
   AS measurement slot. *)
let audit_verdict_cost ~size =
  Core.Costs.audit_append ~size + Core.Costs.sth_sign + Core.Costs.audit_proof ~size
  + Core.Costs.audit_receipt_verify ~size

let audit_verdict_ms ~size = Sim.Time.to_ms (audit_verdict_cost ~size)

let cold_attest_ms = Sim.Time.to_ms (cold_service_base + controller_overhead)
let cache_hit_ms = Sim.Time.to_ms cache_hit_cost
let batch_attest_ms n = Sim.Time.to_ms (batch_service_base n + controller_overhead)

let properties = Array.of_list Core.Property.all

let run config =
  let engine = Sim.Engine.create () in
  let root = Sim.Prng.create (config.seed lxor 0x464c45) in
  let arrival_prng = Sim.Prng.split root in
  let pick_prng = Sim.Prng.split root in
  let service_prng = Sim.Prng.split root in
  let verdict_prng = Sim.Prng.split root in
  let churn_prng = Sim.Prng.split root in
  let topology =
    Topology.make ~seed:config.seed ~servers:config.servers ~vms:config.vms
      ~as_count:config.as_count
  in
  let metrics = Metrics.create () in
  let cache =
    Core.Verdict_cache.create ~ttl:config.ttl
      ~clock:(fun () -> Sim.Engine.now engine)
      ()
  in
  let measure ~vid:_ ~property:_ =
    if Sim.Prng.float verdict_prng 1.0 < config.unhealthy_p then
      Core.Report.Compromised "fleet-sim anomaly"
    else Core.Report.Healthy
  in
  let backend_of_cluster i =
    config.backends.(i mod max 1 (Array.length config.backends))
  in
  (* One jitter draw per round regardless of backend, so a heterogeneous
     fleet consumes the same PRNG stream as an all-classic one — and the
     all-classic default replays the pre-backend driver exactly, since
     [cold_service_base_for Classic = cold_service_base]. *)
  let service_time_for kind () =
    (* +/-10% jitter around the ledger-derived base. *)
    let base = float_of_int (cold_service_base_for kind) in
    let f = 0.9 +. Sim.Prng.float service_prng 0.2 in
    max 1 (int_of_float (base *. f))
  in
  (* One jitter draw per batched round, mirroring the unbatched one-draw-
     per-round discipline.  Never called when [batch_max = 1], so batch-1
     runs consume exactly the PRNG stream of the pre-batching driver. *)
  let batch_service_time_for kind n =
    let base = float_of_int (batch_service_base_for kind n) in
    let f = 0.9 +. Sim.Prng.float service_prng 0.2 in
    max 1 (int_of_float (base *. f))
  in
  let clusters =
    Array.init (Topology.as_count topology) (fun i ->
        let kind = backend_of_cluster i in
        Cluster.create ~engine
          ~name:(Printf.sprintf "as-%d" (i + 1))
          ~capacity:config.as_capacity ~queue_depth:config.queue_depth
          ~service_time:(service_time_for kind) ~measure ~metrics
          ~batch_max:config.batch_max ~batch_window:config.batch_window
          ~batch_service_time:(batch_service_time_for kind) ())
  in
  let kind_slot = function
    | Tpm.Backend.Classic -> 0
    | Tpm.Backend.Evtpm -> 1
    | Tpm.Backend.Cvm_report -> 2
  in
  let served_by = Array.make 3 0 in
  (* Transparency layer (opt-in): one log per cluster, signed by a single
     fleet operator key, checkpointed every [audit_checkpoint], watched by
     two gossiping auditors.  With [audit_checkpoint = 0] nothing below
     allocates, draws or schedules — the run replays the pre-audit driver
     exactly. *)
  let audit_logs =
    if config.audit_checkpoint <= 0 then [||]
    else begin
      let key =
        (Crypto.Rsa.generate
           (Crypto.Drbg.create ~seed:("fleet-audit|" ^ string_of_int config.seed))
           ~bits:512)
          .Crypto.Rsa.secret
      in
      Array.map
        (fun c ->
          let log =
            Audit.Log.create ~log_id:(Cluster.name c) ~key
              ~clock:(fun () -> Sim.Engine.now engine)
              ()
          in
          Cluster.set_audit c (Some log);
          log)
        clusters
    end
  in
  if Array.length audit_logs > 0 then begin
    let pub = Audit.Log.public_key audit_logs.(0) in
    let key_of _ = Some pub in
    let clock () = Sim.Engine.now engine in
    let mk name = Audit.Auditor.create ~name ~key_of ~clock () in
    let auditors = [| mk "fleet-auditor-a"; mk "fleet-auditor-b" |] in
    let views = Array.map Audit.View.of_log audit_logs in
    let last_proofs = ref 0 and last_evidence = ref 0 in
    ignore
      (Sim.Engine.every engine ~period:config.audit_checkpoint
         ~until:(config.duration + config.drain)
         (fun () ->
           Array.iter
             (fun log ->
               ignore (Audit.Log.checkpoint log : Audit.Sth.t);
               Metrics.record_audit_checkpoint metrics)
             audit_logs;
           Array.iter
             (fun a -> Array.iter (fun v -> Audit.Auditor.observe a v) views)
             auditors;
           Audit.Auditor.exchange auditors.(0) auditors.(1);
           let proofs =
             Array.fold_left (fun acc a -> acc + Audit.Auditor.proofs_checked a) 0 auditors
           in
           for _ = !last_proofs + 1 to proofs do
             Metrics.record_audit_proof metrics
           done;
           last_proofs := proofs;
           let evidence =
             Array.fold_left (fun acc a -> acc + Audit.Auditor.evidence_count a) 0 auditors
           in
           Metrics.record_audit_equivocations metrics (evidence - !last_evidence);
           last_evidence := evidence)
        : Sim.Engine.handle)
  end;
  let priority () =
    let x = Sim.Prng.float pick_prng 1.0 in
    if x < config.customer_p then Pqueue.Customer
    else if x < config.customer_p +. config.periodic_p then Pqueue.Periodic
    else Pqueue.Recheck
  in
  let arrival () =
    Metrics.record_offered metrics;
    let vm = Topology.pick_vm topology pick_prng ~hot:config.hot_vms ~hot_p:config.hot_p () in
    let property = properties.(Sim.Prng.int pick_prng (Array.length properties)) in
    match Core.Verdict_cache.find cache ~vid:vm.Topology.vid ~property with
    | Some _ ->
        Metrics.record_cache_hit metrics;
        Metrics.record_served metrics ~latency_ms:(Sim.Time.to_ms cache_hit_cost)
    | None ->
        let arrived = Sim.Engine.now engine in
        let cluster_index = Topology.cluster_of_vm topology vm in
        let cluster = clusters.(cluster_index) in
        Cluster.submit cluster ~vid:vm.Topology.vid ~property ~priority:(priority ())
          ~on_done:(function
          | Cluster.Shed -> ()  (* the cluster recorded the shed *)
          | Cluster.Done status ->
              let slot = kind_slot (backend_of_cluster cluster_index) in
              served_by.(slot) <- served_by.(slot) + 1;
              (* The cluster appended this verdict just before delivering
                 it, so the log size already covers the entry. *)
              let audit_latency =
                match Cluster.audit cluster with
                | None -> 0
                | Some log ->
                    Metrics.record_audit_proof metrics;
                    audit_verdict_cost ~size:(Audit.Log.size log)
              in
              let latency =
                Sim.Engine.now engine - arrived + controller_overhead + audit_latency
              in
              Metrics.record_served metrics ~latency_ms:(Sim.Time.to_ms latency);
              (match status with
              | Core.Report.Healthy ->
                  ignore
                    (Core.Verdict_cache.store cache
                       {
                         Core.Report.vid = vm.Topology.vid;
                         property;
                         status;
                         evidence = "fleet measurement";
                         produced_at = Sim.Engine.now engine;
                       }
                      : bool)
              | Core.Report.Compromised _ | Core.Report.Unknown _ ->
                  Metrics.record_unhealthy metrics;
                  ignore
                    (Core.Verdict_cache.invalidate cache ~vid:vm.Topology.vid ~property
                      : bool)))
  in
  let migrations = ref 0 in
  if config.churn_period > 0 then
    ignore
      (Sim.Engine.every engine ~period:config.churn_period ~until:config.duration (fun () ->
           (* Lifecycle churn concentrates where the load is: hot VMs. *)
           let vm =
             Topology.pick_vm topology churn_prng ~hot:config.hot_vms ~hot_p:0.9 ()
           in
           ignore (Topology.migrate topology churn_prng vm : string);
           ignore (Core.Verdict_cache.invalidate_vm cache ~vid:vm.Topology.vid : int);
           incr migrations)
        : Sim.Engine.handle);
  Load.poisson ~engine ~prng:arrival_prng ~rate_per_s:config.rate_per_s
    ~until:config.duration arrival;
  Sim.Engine.run_until engine (config.duration + config.drain);
  let duration_s = Sim.Time.to_sec config.duration in
  let latency = Metrics.latency metrics in
  let pct p =
    let v = Sim.Stats.Series.percentile latency p in
    if Float.is_nan v then 0.0 else v
  in
  let stats = Core.Verdict_cache.stats cache in
  let max_depth =
    Array.fold_left
      (fun acc c -> max acc (Sim.Stats.Gauge.peak (Cluster.queue_gauge c)))
      0 clusters
  in
  let mean_depth =
    let now_s = Sim.Time.to_sec (Sim.Engine.now engine) in
    let total =
      Array.fold_left
        (fun acc c ->
          acc +. Sim.Stats.Gauge.time_weighted_mean (Cluster.queue_gauge c) ~now:now_s)
        0.0 clusters
    in
    total /. float_of_int (Array.length clusters)
  in
  {
    config;
    offered = Metrics.offered metrics;
    served = Metrics.served metrics;
    shed_customer = Metrics.shed metrics Pqueue.Customer;
    shed_periodic = Metrics.shed metrics Pqueue.Periodic;
    shed_recheck = Metrics.shed metrics Pqueue.Recheck;
    coalesced = Metrics.coalesced metrics;
    measurements = Metrics.measurements metrics;
    unhealthy = Metrics.unhealthy metrics;
    cache_hits = Metrics.cache_hits metrics;
    cache_hit_rate = Metrics.cache_hit_rate metrics;
    invalidations = stats.Core.Verdict_cache.invalidations;
    migrations = !migrations;
    offered_rps = float_of_int (Metrics.offered metrics) /. duration_s;
    served_rps = float_of_int (Metrics.served metrics) /. duration_s;
    mean_ms = Sim.Stats.Series.mean latency;
    p50_ms = pct 50.0;
    p95_ms = pct 95.0;
    p99_ms = pct 99.0;
    max_queue_depth = max_depth;
    mean_queue_depth = mean_depth;
    batches = Metrics.batches metrics;
    mean_batch_size = Metrics.mean_batch_size metrics;
    audit_appends = Metrics.audit_appends metrics;
    audit_checkpoints = Metrics.audit_checkpoints metrics;
    audit_proofs = Metrics.audit_proofs metrics;
    audit_equivocations = Metrics.audit_equivocations metrics;
    served_by_backend =
      List.filter_map
        (fun kind ->
          if Array.exists (fun k -> k = kind) config.backends then
            Some (Tpm.Backend.kind_to_string kind, served_by.(kind_slot kind))
          else None)
        Tpm.Backend.all_kinds;
  }
