lib/hypervisor/image.ml: Crypto Printf String
