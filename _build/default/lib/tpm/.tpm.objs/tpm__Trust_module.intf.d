lib/tpm/trust_module.mli: Crypto Pcr
