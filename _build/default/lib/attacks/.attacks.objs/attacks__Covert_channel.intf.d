lib/attacks/covert_channel.mli: Hypervisor Sim
