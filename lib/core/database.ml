type vm_state = Building | Active | Suspended | Migrating | Terminated

let vm_state_to_string = function
  | Building -> "building"
  | Active -> "active"
  | Suspended -> "suspended"
  | Migrating -> "migrating"
  | Terminated -> "terminated"

type vm_record = {
  vid : string;
  owner : string;
  image_name : string;
  flavor : Hypervisor.Flavor.t;
  properties : Property.t list;
  mutable host : string option;
  mutable state : vm_state;
}

type server_record = {
  name : string;
  secure : bool;
  backend : Tpm.Backend.kind;
  monitoring : Property.t list;
}

type t = {
  vm_table : (string, vm_record) Hashtbl.t;
  server_table : (string, server_record) Hashtbl.t;
  mutable vm_order : string list; (* newest first *)
  mutable server_order : string list;
}

let create () =
  { vm_table = Hashtbl.create 16; server_table = Hashtbl.create 8; vm_order = []; server_order = [] }

let add_server t r =
  if not (Hashtbl.mem t.server_table r.name) then t.server_order <- r.name :: t.server_order;
  Hashtbl.replace t.server_table r.name r

let server t name = Hashtbl.find_opt t.server_table name

let servers t = List.rev_map (fun n -> Hashtbl.find t.server_table n) t.server_order

let add_vm t r =
  if not (Hashtbl.mem t.vm_table r.vid) then t.vm_order <- r.vid :: t.vm_order;
  Hashtbl.replace t.vm_table r.vid r

let vm t vid = Hashtbl.find_opt t.vm_table vid

let vms t = List.rev (List.filter_map (Hashtbl.find_opt t.vm_table) t.vm_order)

let vms_on t host = List.filter (fun r -> r.host = Some host) (vms t)

let set_host t ~vid host = match vm t vid with Some r -> r.host <- host | None -> ()

let set_state t ~vid state = match vm t vid with Some r -> r.state <- state | None -> ()

let remove_vm t ~vid =
  Hashtbl.remove t.vm_table vid;
  t.vm_order <- List.filter (fun v -> not (String.equal v vid)) t.vm_order
