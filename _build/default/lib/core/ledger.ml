type t = { mutable order : string list (* newest first *); table : (string, Sim.Time.t) Hashtbl.t }

let create () = { order = []; table = Hashtbl.create 8 }

let add t label cost =
  match Hashtbl.find_opt t.table label with
  | Some prev -> Hashtbl.replace t.table label (prev + cost)
  | None ->
      Hashtbl.replace t.table label cost;
      t.order <- label :: t.order

let total t = Hashtbl.fold (fun _ c acc -> acc + c) t.table 0

let of_label t label = Option.value ~default:0 (Hashtbl.find_opt t.table label)

let entries t = List.rev_map (fun l -> (l, of_label t l)) t.order

let merge_into dst src = List.iter (fun (l, c) -> add dst l c) (entries src)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (l, c) -> Format.fprintf ppf "%-24s %a@," l Sim.Time.pp c) (entries t);
  Format.fprintf ppf "%-24s %a@]" "total" Sim.Time.pp (total t)
