lib/sim/prng.ml: Array Bytes Char Float Int64
