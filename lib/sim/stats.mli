(** Statistics used by monitors and the property-interpretation module. *)

(** Fixed-width histograms, e.g. the 30 x 1 ms CPU-burst-interval bins held
    in Trust Evidence Registers (paper section 4.4.2). *)
module Histogram : sig
  type t

  val create : bins:int -> width:float -> t
  (** [create ~bins ~width] covers [(0, bins*width]]; bin [i] counts samples
      in [(i*width, (i+1)*width]].  Samples beyond the range clamp to the
      outermost bin, as the paper's registers do for long bursts. *)

  val add : t -> float -> unit
  val count : t -> int -> int
  val counts : t -> int array
  val total : t -> int
  val bins : t -> int
  val width : t -> float

  val distribution : t -> float array
  (** Normalised to sum to 1 (all zeros when empty). *)

  val of_counts : width:float -> int array -> t
  val merge : t -> t -> t
  val clear : t -> unit
end

(** Running summary statistics. *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val n : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end

(** Growable sample series with percentile queries, e.g. per-request
    attestation latencies in the fleet load generator.  Sorting is lazy and
    cached, so interleaved [add]/[percentile] calls stay cheap. *)
module Series : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val n : t -> int
  val mean : t -> float

  val percentile : t -> float -> float
  (** Nearest-rank percentile, [nan] when empty. *)

  val min : t -> float
  val max : t -> float
  val clear : t -> unit
end

(** Bounded-memory sample reservoir with deterministic merging.  Holds at
    most [cap] retained samples (Algorithm R) while tracking count, sum,
    min and max exactly, so mean and extrema are always exact and
    percentiles are exact until the cap is exceeded.  Two reservoirs merge
    into one of the same cap by weighted subsampling, which is what lets
    per-shard latency series combine across a 10^5-VM fleet without ever
    concatenating raw samples.  All sampling randomness comes from the
    reservoir's own seeded prng: a fixed add/merge order reproduces the
    reservoir bit-for-bit, independent of host parallelism. *)
module Reservoir : sig
  type t

  val create : ?cap:int -> seed:int -> unit -> t
  (** Default cap 8192. *)

  val add : t -> float -> unit

  val n : t -> int
  (** Total observations (not bounded by cap). *)

  val retained : t -> int
  (** Samples currently held, [<= cap]. *)

  val cap : t -> int

  val exact : t -> bool
  (** True while every observation is retained (percentiles exact). *)

  val mean : t -> float
  (** Exact (from the running sum); 0 when empty. *)

  val min : t -> float
  val max : t -> float
  (** Exact extrema; [nan] when empty. *)

  val percentile : t -> float -> float
  (** Nearest-rank over the retained sample; [nan] when empty. *)

  val merge_into : t -> t -> unit
  (** [merge_into a b] folds [b]'s population into [a] ([b] unchanged).
      Count/sum/extrema merge exactly; retained samples concatenate when
      they fit in [a]'s cap and are weighted-subsampled otherwise, drawing
      only from [a]'s prng. *)
end

(** Time-weighted level tracking (queue depths, in-service counts).  The
    caller reports every level change with its timestamp; the gauge keeps
    the peak and the time-weighted mean. *)
module Gauge : sig
  type t

  val create : unit -> t

  val set : t -> now:float -> int -> unit
  (** [set t ~now v] records that the level became [v] at time [now].
      Timestamps must be non-decreasing. *)

  val level : t -> int
  val peak : t -> int

  val time_weighted_mean : t -> now:float -> float
  (** Mean level over [\[0, now\]], treating the level as held constant
      between [set] calls (0 before the first). *)
end

(** Aligned per-tick fraction series (e.g. fraction of the fleet holding a
    fresh verdict at each monitor tick).  Each tick records an exact
    (numerator, denominator) pair; two series merge index-aligned, so
    per-shard series whose ticks fire at the same absolute simulated times
    combine into the fleet-wide fraction per tick — deterministically,
    whatever the shard-to-domain assignment was. *)
module Fraction_series : sig
  type t

  val create : unit -> t

  val record : t -> num:int -> den:int -> unit
  (** Append one tick.  Requires [0 <= num <= den]. *)

  val length : t -> int
  val numerator : t -> int -> int
  val denominator : t -> int -> int

  val fraction : t -> int -> float
  (** [num/den] at tick [i]; [nan] when the denominator is 0. *)

  val merge_into : t -> t -> unit
  (** [merge_into a b] adds [b]'s tick [k] into [a]'s tick [k] ([b]
      unchanged); [a] grows when [b] is longer. *)

  val min_fraction : t -> float
  val mean_fraction : t -> float
  val final_fraction : t -> float
  (** Over ticks with a nonzero denominator; [nan] when there are none. *)
end

val mean : float list -> float
val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0,100], nearest-rank on a sorted copy. *)

(** One-dimensional 2-means clustering, used to decide whether an interval
    distribution is bimodal (covert channel) or unimodal (benign). *)
module Two_means : sig
  type result = {
    centers : float * float;  (** low and high cluster centers *)
    weights : float * float;  (** probability mass of each cluster *)
    separation : float;  (** |c2 - c1| / bin range, in [0,1] *)
  }

  val cluster : values:float array -> mass:float array -> result option
  (** [cluster ~values ~mass] runs weighted 2-means on points [values] with
      weights [mass].  [None] when total mass is zero. *)

  val bimodal : ?min_separation:float -> ?min_weight:float -> result -> bool
  (** A distribution counts as bimodal when the clusters are far apart and
      both carry non-trivial mass. *)
end
