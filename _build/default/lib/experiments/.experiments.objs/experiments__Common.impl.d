lib/experiments/common.ml: Core Float Hypervisor Printf Sim String Workloads
