(** Timing ledger: accumulates labelled simulated costs, the way the paper
    uses Ceilometer to break wall-clock time into stages. *)

type t

val create : unit -> t
val add : t -> string -> Sim.Time.t -> unit
val total : t -> Sim.Time.t
val of_label : t -> string -> Sim.Time.t

val entries : t -> (string * Sim.Time.t) list
(** In insertion order; repeated labels are merged. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] adds all of [src]'s entries to [dst]. *)

val pp : Format.formatter -> t -> unit
