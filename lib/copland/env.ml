type t = {
  typing : Typing.ctx;
  vids : string array;
  host_name : int -> string option;
  backend_of : int -> Tpm.Backend.kind;
  requests_of : int -> int;
  cache_possible : bool;
  audit_possible : bool;
}

let of_cloud cloud ~vids =
  let controller = Core.Cloud.controller cloud in
  let server_names =
    Array.of_list (List.map Hypervisor.Server.name (Core.Cloud.servers cloud))
  in
  let index_of name =
    let found = ref (-1) in
    Array.iteri (fun i n -> if !found < 0 && String.equal n name then found := i) server_names;
    !found
  in
  let host_name slot =
    if slot < 0 || slot >= Array.length vids then None
    else Core.Controller.vm_host controller ~vid:vids.(slot)
  in
  let host_of slot = match host_name slot with None -> -1 | Some h -> index_of h in
  let cluster_of slot =
    match host_name slot with
    | None -> 0
    | Some host -> Core.Controller.cluster_of_host controller ~host
  in
  let db = Core.Controller.db controller in
  let backend_of slot =
    match Option.bind (host_name slot) (Core.Database.server db) with
    | Some r -> r.Core.Database.backend
    | None -> Tpm.Backend.Classic
  in
  let refs = Core.Attestation_server.refs (Core.Cloud.attestation_server cloud) in
  let properties = Array.of_list Core.Property.all in
  let requests_of prop =
    if prop < 0 || prop >= Array.length properties then 1
    else List.length (Core.Interpret.requests_for refs properties.(prop))
  in
  {
    typing =
      {
        Typing.vms = Array.length vids;
        clusters = Core.Controller.cluster_count controller;
        properties = Array.length properties;
        cluster_of;
        host_of;
      };
    vids;
    host_name;
    backend_of;
    requests_of;
    cache_possible =
      Core.Verdict_cache.enabled (Core.Controller.verdict_cache controller);
    audit_possible = Core.Controller.auditing controller;
  }
