(** Xen-like credit scheduler, event-driven on the simulation engine.

    Faithful to the mechanisms both paper attacks exploit:
    - vCPUs hold {e credits}, distributed every accounting period (30 ms)
      in proportion to their domain's weight, and are debited 100 credits
      at each 10 ms tick {e only if running at the tick instant} — so a
      vCPU that runs in short bursts and sleeps across ticks evades
      debiting (the scheduler vulnerability of Zhou et al. that the
      paper's CPU-availability attack builds on);
    - priorities are BOOST > UNDER (credits > 0) > OVER; a vCPU that wakes
      up with credits is boosted and preempts lower-priority vCPUs — the
      IPI ping-pong attack and the covert-channel sender both abuse this;
    - the scheduling timeslice is 30 ms, so a solo CPU-bound domain shows
      the 30 ms default burst interval of paper section 4.4.2.

    The scheduler also implements the measurement hooks the Monitor Module
    needs: per-domain cumulative virtual run time (VMM Profile Tool) and
    per-domain CPU-burst histograms with 1 ms bins (Trust Evidence
    Registers). *)

type t
type domain
type vcpu

type config = {
  slice : Sim.Time.t;  (** scheduling timeslice, default 30 ms *)
  tick : Sim.Time.t;  (** debit tick, default 10 ms *)
  accounting : Sim.Time.t;  (** credit distribution period, default 30 ms *)
  credits_per_tick : int;  (** debit per tick, default 100 *)
  credit_cap : int;  (** hoarding cap, default 600 *)
  burst_bins : int;  (** histogram bins of 1 ms, default 30 *)
}

val default_config : config

val create : ?config:config -> engine:Sim.Engine.t -> pcpus:int -> unit -> t
(** Also installs the recurring tick and accounting events. *)

val engine : t -> Sim.Engine.t
val pcpus : t -> int

(** {2 Domains and vCPUs} *)

val add_domain : t -> name:string -> weight:int -> domain
val domain_name : domain -> string
val domains : t -> domain list

val add_vcpu : t -> domain -> ?pin:int -> Program.t -> vcpu
(** Create a vCPU running [program], pinned to pCPU [pin] (default:
    round-robin).  It becomes runnable immediately. *)

val send_ipi : t -> domain -> int -> unit
(** Wake the domain's vCPU with the given index (programs use the
    {!Program.Ipi} action instead; this is for external interrupt
    injection). *)

val pause_domain : t -> domain -> unit
(** Deschedule all vCPUs and freeze timers (VM suspension). *)

val resume_domain : t -> domain -> unit

val remove_domain : t -> domain -> unit
(** Destroy the domain's vCPUs. *)

val is_paused : domain -> bool

(** {2 Measurement hooks} *)

val domain_runtime : t -> domain -> Sim.Time.t
(** Cumulative virtual run time, including the in-progress burst. *)

val domain_waittime : t -> domain -> Sim.Time.t
(** Cumulative "steal" time: how long the domain's vCPUs have been
    runnable but not running.  High steal with low runtime is the
    signature of an availability attack; low steal with low runtime is
    just an idle VM. *)

val burst_counts : domain -> int array
(** The burst-interval histogram: bin [i] counts completed bursts of
    duration in [(i, i+1]] ms (last bin clamps). *)

val clear_burst_counts : domain -> unit

val set_burst_trace : domain -> bool -> unit
(** When enabled, completed bursts are also kept as [(start, length)]
    pairs, oldest first — the raw series of paper Figure 4. *)

val burst_trace : domain -> (Sim.Time.t * Sim.Time.t) list

val credits : vcpu -> int
val domain_of : vcpu -> domain

(** {2 Invariant checks (used by tests)} *)

val total_runtime : t -> Sim.Time.t
(** Sum of all domains' runtimes; never exceeds [pcpus * elapsed]. *)

val busy_time : t -> Sim.Time.t
(** Total pCPU busy time (equals {!total_runtime}). *)
