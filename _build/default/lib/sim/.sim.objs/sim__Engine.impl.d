lib/sim/engine.ml: Hashtbl Heap Time
