(** Policy Validation + Deployment scheduling (paper section 6.1).

    Selects a qualified host for a VM: the OpenStack-style filter chain —
    alive, not excluded, enough free memory — extended with the paper's new
    [property_filter]: the server must be CloudMonatt-secure and support
    monitoring every requested property.  Qualified servers are then
    weighed by free memory (most-free wins, the stock nova weigher). *)

type decision = {
  host : string;
  candidates : int;  (** servers that survived every filter *)
  considered : int;  (** servers examined *)
}

val select :
  db:Database.t ->
  free_mem:(string -> int option) ->
  properties:Property.t list ->
  flavor:Hypervisor.Flavor.t ->
  ?exclude:string list ->
  unit ->
  (decision, [ `No_qualified_server ]) result

val property_filter : Database.server_record -> Property.t list -> bool
(** Does this server support monitoring all the requested properties?
    (Trivially true for an empty request on any server.) *)
