type 'a t = { cmp : 'a -> 'a -> int; mutable data : 'a array; mutable size : int }

let create ~cmp = { cmp; data = [||]; size = 0 }
let length h = h.size
let is_empty h = h.size = 0

let grow h x =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nd = Array.make ncap x in
    Array.blit h.data 0 nd 0 h.size;
    h.data <- nd
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let push h x =
  grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

(* Bottom-up extraction (Wegener): walk the hole left by the root down
   along the smaller-child path to a leaf — one comparison per level —
   then drop the displaced last element into the hole and sift it back up.
   The displaced element usually belongs near the bottom (it came from the
   bottom), so the sift-up terminates after O(1) comparisons on average,
   versus two comparisons per level for the classic top-down sift. *)
let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      let last = h.data.(h.size) in
      (* Pull the smaller child up into the hole until the hole is a leaf. *)
      let i = ref 0 in
      let l = ref 1 in
      while !l < h.size do
        let c =
          let r = !l + 1 in
          if r < h.size && h.cmp h.data.(r) h.data.(!l) < 0 then r else !l
        in
        h.data.(!i) <- h.data.(c);
        i := c;
        l := (2 * c) + 1
      done;
      (* Place the displaced element at the leaf hole and sift it up; every
         ancestor along this path was a smaller child, so the heap order is
         restored exactly. *)
      h.data.(!i) <- last;
      sift_up h !i
    end;
    Some top
  end

let peek h = if h.size = 0 then None else Some h.data.(0)

let to_list h =
  let rec go i acc = if i < 0 then acc else go (i - 1) (h.data.(i) :: acc) in
  go (h.size - 1) []
