type process = { pid : int; name : string; hidden : bool; binary_hash : string }

let pristine_hash name = Crypto.Sha256.digest ("binary|" ^ name)

type t = { mutable procs : process list; mutable next_pid : int }

let default_init = [ "init"; "systemd-journald"; "sshd"; "cron"; "rsyslogd" ]

let create ?(init = default_init) () =
  let t = { procs = []; next_pid = 1 } in
  List.iter
    (fun name ->
      t.procs <-
        { pid = t.next_pid; name; hidden = false; binary_hash = pristine_hash name } :: t.procs;
      t.next_pid <- t.next_pid + 1)
    init;
  t

let spawn t ?(hidden = false) ?binary name =
  let binary_hash =
    match binary with
    | None -> pristine_hash name
    | Some content -> Crypto.Sha256.digest ("binary|" ^ name ^ "|" ^ content)
  in
  let p = { pid = t.next_pid; name; hidden; binary_hash } in
  t.next_pid <- t.next_pid + 1;
  t.procs <- p :: t.procs;
  p

let kill t pid =
  let before = List.length t.procs in
  t.procs <- List.filter (fun p -> p.pid <> pid) t.procs;
  List.length t.procs < before

let hide t pid =
  let found = ref false in
  t.procs <-
    List.map
      (fun p ->
        if p.pid = pid then begin
          found := true;
          { p with hidden = true }
        end
        else p)
      t.procs;
  !found

let by_pid ps = List.sort (fun a b -> compare a.pid b.pid) ps

let visible_tasks t =
  List.filter_map (fun p -> if p.hidden then None else Some p.name) (by_pid t.procs)

let kernel_tasks t = List.map (fun p -> p.name) (by_pid t.procs)

let processes t = by_pid t.procs

let ima_log t = List.map (fun p -> (p.name, p.binary_hash)) (by_pid t.procs)

let snapshot t = { procs = t.procs; next_pid = t.next_pid }
