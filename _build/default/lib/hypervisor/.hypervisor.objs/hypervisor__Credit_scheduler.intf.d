lib/hypervisor/credit_scheduler.mli: Program Sim
