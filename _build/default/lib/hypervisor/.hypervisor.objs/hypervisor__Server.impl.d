lib/hypervisor/server.ml: Cache Credit_scheduler Flavor Hashtbl Image List Sim Tpm Vm
