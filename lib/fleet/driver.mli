(** Fleet-scale attestation scenario runner, sharded by AS cluster.

    Builds a deterministic {!Topology} and one {e shard} per AS cluster —
    each shard owning its own {!Sim.Engine} (clock and event queue),
    {!Cluster}, verdict-cache partition, metrics, prng streams and audit
    log.  A VM's requests are generated on its {e home} shard (the cluster
    of its initial placement) and served by the shard of its current host;
    when those differ the request crosses shards as a timestamped
    {!Msg.t}, exchanged at epoch barriers.  Shards run concurrently on up
    to [domains] OCaml domains.

    Determinism is the design invariant: shards share no mutable state
    within an epoch, every shard consumes only its own prng streams, and
    the barrier merge imposes the total order (send time, source shard,
    send seq) on cross-shard messages — so the result (every counter,
    percentile and the trace digest) is byte-identical whether the shards
    run on one domain or eight.

    The per-request cost model is derived from [lib/core]'s calibrated
    ledger constants ({!Core.Costs}), so fleet numbers stay commensurable
    with the single-VM attestation path's ledgers. *)

type config = {
  seed : int;
  servers : int;  (** cloud servers in the fleet *)
  vms : int;  (** VMs placed across them *)
  as_count : int;  (** AS shards (clusters) *)
  as_capacity : int;  (** concurrent measurement slots per AS *)
  queue_depth : int;  (** bounded request-queue depth per AS *)
  ttl : Sim.Time.t;  (** verdict-cache TTL; 0 disables caching *)
  rate_per_s : float;  (** offered attestation requests per simulated second *)
  duration : Sim.Time.t;  (** arrival window *)
  drain : Sim.Time.t;  (** extra engine time to let queues empty *)
  unhealthy_p : float;  (** fraction of measurements observing a compromise *)
  churn_period : Sim.Time.t;  (** VM migration interval (0 = no churn) *)
  hot_vms : int;  (** size of the frequently-attested VM subset *)
  hot_p : float;  (** probability an arrival targets the hot subset *)
  customer_p : float;  (** arrival mix: customer-triggered ... *)
  periodic_p : float;  (** ... periodic (remainder: re-checks) *)
  batch_max : int;  (** jobs per Merkle-batched round (1 = batching off) *)
  batch_window : Sim.Time.t;  (** how long a partial batch waits to fill *)
  audit_checkpoint : Sim.Time.t;
      (** transparency-log STH interval; 0 (the default) = audit off.  When
          on, every cluster appends each verdict to its own log, heads are
          signed every interval, and two gossiping auditors poll and
          cross-check every log; each served verdict additionally pays the
          receipt-verification latency. *)
  backends : Tpm.Backend.kind array;
      (** trust backend per AS cluster — cluster [i] runs
          [backends.(i mod Array.length backends)], so a heterogeneous
          fleet mixes backends by listing several kinds.  Each cluster's
          service time uses its backend's quote-signing (and, for CVM,
          chain-verification) cost terms. *)
  domains : int;
      (** OCaml domains executing the shards (clamped to the shard count).
          Purely an execution parameter: every field of the result is
          byte-identical at any value. *)
  epoch : Sim.Time.t;
      (** barrier interval: how much simulated time each shard advances
          between cross-shard message exchanges.  Affects when cross-shard
          requests are delivered (larger epochs delay them), so it is part
          of the simulated scenario — but not of the execution schedule. *)
  monitor : Monitor.config option;
      (** continuous re-attestation scheduler ({!Monitor}): every VM is
          re-attested before its verdict outlives the freshness budget,
          deduplicating against the verdict cache, with optional storm
          scenarios.  [None] (the default) is the unmonitored driver, byte
          for byte: same prng draws, same trace, same fingerprint. *)
}

val default_config : config
(** 200 servers, 2000 VMs, 1 AS, capacity 1, queue depth 16, cache off,
    8 req/s for 30 s, 5% unhealthy, 5 s churn, 64 hot VMs at p=0.8,
    mix 20/70/10, batching off, 1 domain, 50 ms epochs, monitor off. *)

type storm_outcome = {
  storm : string;  (** "rack-compromise" | "image-cve" | "migration-wave" *)
  at : Sim.Time.t;  (** configured storm time *)
  affected : int;  (** VMs marked compromised / forced / migrated *)
  detected_at : Sim.Time.t option;
      (** first measurement observing a planted compromise
          (rack-compromise storms; [None] for other kinds or undetected) *)
}

type result = {
  config : config;
  offered : int;
  served : int;
  shed_customer : int;
  shed_periodic : int;
  shed_recheck : int;
  coalesced : int;
  measurements : int;  (** actual AS measurement rounds *)
  unhealthy : int;
  cache_hits : int;
  cache_hit_rate : float;
  invalidations : int;
  migrations : int;
  offered_rps : float;
  served_rps : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_queue_depth : int;
  mean_queue_depth : float;  (** time-weighted, averaged over shards *)
  batches : int;  (** batched rounds executed (0 with batching off) *)
  mean_batch_size : float;  (** mean jobs per batched round (0 when none) *)
  audit_appends : int;  (** verdicts committed to transparency logs *)
  audit_checkpoints : int;  (** periodic signed tree heads emitted *)
  audit_proofs : int;  (** inclusion + consistency proofs served/verified *)
  audit_equivocations : int;  (** auditor evidence records (0 = honest run) *)
  served_by_backend : (string * int) list;
      (** cluster-served requests per backend kind present in the config
          (cache hits never reach a cluster and are not attributed) *)
  epochs : int;  (** barrier iterations the run took (drain included) *)
  verify_memo : (int * int) array;
      (** per-domain (hits, misses) of the domain-local RSA verify memo
          ({!Crypto.Rsa.Memo}), in pool-slot order; the memos are cleared
          at the start of the run, so the counters cover this run alone.
          Only the audit path does real RSA here, so all zeros with audit
          off.  How the totals split across slots depends on [domains], so
          this field is excluded from {!fingerprint}. *)
  mon_scheduled : int;
      (** re-attestation probes submitted to clusters.  The conservation
          law [mon_scheduled = mon_served + missed + mon_shed] holds
          exactly once the run drains. *)
  mon_served : int;  (** probes completed at or before their deadline *)
  mon_missed_periodic : int;  (** periodic-class probes completed late *)
  mon_missed_recheck : int;  (** recheck-class probes completed late *)
  mon_shed : int;  (** probes dropped by admission control (retried) *)
  mon_dedups : int;  (** due probes answered by a budget-fresh cached verdict *)
  mon_ticks : int;  (** scheduler ticks (same count on every shard) *)
  mon_entries : int;
      (** distinct VMs tracked across all shards at end of run; equals
          [config.vms] when rescheduling was exactly-once *)
  mon_entry_dups : int;
      (** double-tracking events: a VM tracked on two shards at once or
          double-added on one — 0 unless rescheduling broke *)
  mon_fresh_min : float;  (** min over ticks of fraction-of-fleet-fresh *)
  mon_fresh_mean : float;
  mon_fresh_final : float;  (** fraction fresh at the last tick *)
  mon_storms : storm_outcome list;  (** per configured storm, in order *)
  trace_digest : string;
      (** hex SHA-256 over the per-shard event traces (arrivals, serves,
          sheds, migrations, every cross-shard message), folded in shard
          order.  Two runs with equal digests executed the same per-shard
          event sequences — the strongest cheap witness that a domains=N
          run replayed the domains=1 run exactly. *)
}

val run : config -> result
(** Deterministic: equal configs give equal results — including equal
    [trace_digest] across different [domains] values. *)

val fingerprint : result -> string
(** Hex SHA-256 over every result field except [config] and
    [verify_memo], so runs that differ only in [config.domains] can be
    compared for byte-identity with one string equality.  Monitor fields
    are hashed only for monitored runs, so an unmonitored run's
    fingerprint is byte-identical to the pre-monitor driver's. *)

val cold_attest_ms : float
(** Modelled end-to-end latency of an uncontended cold attestation (mean
    service + controller overhead), for calibration display. *)

val cache_hit_ms : float
(** Modelled latency of a verdict-cache hit. *)

val batch_attest_ms : int -> float
(** Modelled end-to-end latency of an uncontended n-report batched round
    (whole-batch service + controller overhead); divide by n for the
    amortized per-report cost.  [batch_attest_ms 1 = cold_attest_ms]. *)

val audit_verdict_ms : size:int -> float
(** Modelled extra latency auditing adds to one served verdict when the
    log holds [size] entries: append, head signature, inclusion proof and
    receipt verification.  Grows O(log size). *)

val cold_service_base_for : Tpm.Backend.kind -> Sim.Time.t
(** AS-side occupancy of one cold round under the given backend;
    [Classic] is the historical {!cold_attest_ms} service term. *)
