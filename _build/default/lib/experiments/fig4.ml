type result = {
  bits_sent : bool list;
  bits_received : bool list;
  bit_error_rate : float;
  bandwidth_bps : float;
  trace : (float * float) list;
}

let run ?(seed = 42) ?(bits = 96) () =
  let prng = Sim.Prng.create seed in
  let payload = Attacks.Covert_channel.random_bits prng bits in
  let engine = Sim.Engine.create () in
  let sched = Hypervisor.Credit_scheduler.create ~engine ~pcpus:1 () in
  let sender = Hypervisor.Credit_scheduler.add_domain sched ~name:"sender" ~weight:256 in
  let receiver = Hypervisor.Credit_scheduler.add_domain sched ~name:"receiver" ~weight:256 in
  Hypervisor.Credit_scheduler.set_burst_trace sender true;
  let sender_prog = Attacks.Covert_channel.sender_program ~bits:payload () in
  let receiver_prog, stamps = Attacks.Covert_channel.receiver_program () in
  ignore (Hypervisor.Credit_scheduler.add_vcpu sched sender ~pin:0 sender_prog
           : Hypervisor.Credit_scheduler.vcpu);
  ignore (Hypervisor.Credit_scheduler.add_vcpu sched receiver ~pin:0 receiver_prog
           : Hypervisor.Credit_scheduler.vcpu);
  let air_time = Attacks.Covert_channel.transmission_time ~bits () in
  Sim.Engine.run_until engine (air_time + Sim.Time.sec 2);
  let bits_received = Attacks.Covert_channel.decode (stamps ()) in
  let ber = Attacks.Covert_channel.bit_error_rate ~sent:payload ~received:bits_received in
  {
    bits_sent = payload;
    bits_received;
    bit_error_rate = ber;
    bandwidth_bps = float_of_int bits /. Sim.Time.to_sec air_time;
    trace =
      List.map
        (fun (at, len) -> (Sim.Time.to_ms at, Sim.Time.to_ms len))
        (Hypervisor.Credit_scheduler.burst_trace sender);
  }

let print r =
  Common.section "Figure 4: cross-VM covert information leakage";
  Printf.printf "bits sent: %d, decoded: %d, bit error rate: %.3f, bandwidth: %.0f bps\n"
    (List.length r.bits_sent) (List.length r.bits_received) r.bit_error_rate r.bandwidth_bps;
  Printf.printf "%-12s %-12s\n" "time (ms)" "interval (ms)";
  let shown = ref 0 in
  List.iter
    (fun (at, len) ->
      if !shown < 40 then begin
        incr shown;
        Printf.printf "%-12.1f %-8.1f %s\n" at len (Common.bar (len /. 30.0 *. 3.0))
      end)
    r.trace;
  if List.length r.trace > 40 then
    Printf.printf "... (%d more intervals)\n" (List.length r.trace - 40)
