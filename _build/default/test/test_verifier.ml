(* Tests for the symbolic protocol verifier. *)

open Verifier

let qtest = QCheck_alcotest.to_alcotest

let k = Term.Fresh "k"
let sk = Term.Fresh "sk"
let secret = Term.Fresh "secret"

(* --- Deduction rules ------------------------------------------------------- *)

let test_pair_projection () =
  let know = Deduction.of_list [ Term.Pair (secret, Term.Const "public") ] in
  Alcotest.(check bool) "left component leaks" true (Deduction.derives know secret)

let test_senc_without_key () =
  let know = Deduction.of_list [ Term.Senc (k, secret) ] in
  Alcotest.(check bool) "ciphertext alone keeps secret" false (Deduction.derives know secret)

let test_senc_with_key () =
  let know = Deduction.of_list [ Term.Senc (k, secret); k ] in
  Alcotest.(check bool) "key opens ciphertext" true (Deduction.derives know secret)

let test_senc_key_learned_later () =
  (* Saturation must re-examine old ciphertexts when the key becomes
     derivable through another ciphertext. *)
  let k2 = Term.Fresh "k2" in
  let know = Deduction.of_list [ Term.Senc (k, secret); Term.Senc (k2, k); k2 ] in
  Alcotest.(check bool) "chained decryption" true (Deduction.derives know secret)

let test_aenc () =
  let know = Deduction.of_list [ Term.Aenc (Term.Pub sk, secret) ] in
  Alcotest.(check bool) "without sk" false (Deduction.derives know secret);
  let know = Deduction.add know sk in
  Alcotest.(check bool) "with sk" true (Deduction.derives know secret)

let test_sign_reveals_payload () =
  let know = Deduction.of_list [ Term.Sign (sk, secret) ] in
  Alcotest.(check bool) "signatures are not confidential" true (Deduction.derives know secret);
  Alcotest.(check bool) "but the key stays secret" false (Deduction.derives know sk)

let test_sign_unforgeable () =
  let know = Deduction.of_list [ Term.Sign (sk, Term.Const "m1"); Term.Pub sk ] in
  Alcotest.(check bool) "cannot sign a different message" false
    (Deduction.derives know (Term.Sign (sk, Term.Const "m2")));
  Alcotest.(check bool) "can replay the exact signature" true
    (Deduction.derives know (Term.Sign (sk, Term.Const "m1")))

let test_hash_one_way () =
  let know = Deduction.of_list [ Term.Hash secret ] in
  Alcotest.(check bool) "hash does not invert" false (Deduction.derives know secret);
  Alcotest.(check bool) "hash of known value computable" true
    (Deduction.derives know (Term.Hash (Term.Const "x")))

let test_consts_always_derivable () =
  let know = Deduction.of_list [] in
  Alcotest.(check bool) "constants are public" true (Deduction.derives know (Term.Const "anything"));
  Alcotest.(check bool) "fresh values are not" false (Deduction.derives know (Term.Fresh "n"))

let test_pub_derivable_from_sk () =
  let know = Deduction.of_list [ sk ] in
  Alcotest.(check bool) "pub from sk" true (Deduction.derives know (Term.Pub sk));
  let know2 = Deduction.of_list [ Term.Pub sk ] in
  Alcotest.(check bool) "sk not from pub" false (Deduction.derives know2 sk)

let test_composition () =
  let know = Deduction.of_list [ k; Term.Fresh "m" ] in
  Alcotest.(check bool) "can encrypt known things" true
    (Deduction.derives know (Term.Senc (k, Term.Pair (Term.Fresh "m", Term.Const "tag"))))

let derivability_monotone =
  QCheck.Test.make ~name:"adding knowledge never loses derivability" ~count:50
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      let t1 = Term.Fresh (Printf.sprintf "x%d" (a mod 5)) in
      let t2 = Term.Fresh (Printf.sprintf "y%d" (b mod 5)) in
      let know = Deduction.of_list [ Term.Pair (t1, Term.Const "c") ] in
      let know' = Deduction.add know t2 in
      (not (Deduction.derives know t1)) || Deduction.derives know' t1)

(* --- Term utilities ----------------------------------------------------------- *)

let test_pair_list () =
  Alcotest.(check bool) "empty" true (Term.pair_list [] = Term.Const "nil");
  Alcotest.(check bool) "singleton" true (Term.pair_list [ k ] = k);
  Alcotest.(check bool) "nested right" true
    (Term.pair_list [ k; sk; secret ] = Term.Pair (k, Term.Pair (sk, secret)))

let test_subterms () =
  let t = Term.Senc (k, Term.Pair (secret, Term.Hash sk)) in
  let subs = Term.subterms t in
  Alcotest.(check bool) "contains itself" true (List.mem t subs);
  Alcotest.(check bool) "contains leaf" true (List.mem sk subs);
  Alcotest.(check int) "count" 6 (List.length subs)

let test_term_printing () =
  Alcotest.(check string) "render" "senc(~k; (a, ~s))"
    (Term.to_string (Term.Senc (k, Term.Pair (Term.Const "a", Term.Fresh "s"))))

(* --- CloudMonatt model ----------------------------------------------------------- *)

let expected_violations variant =
  List.filter_map
    (fun (c : Properties.check) ->
      match c.outcome with Properties.Holds -> None | Properties.Violated _ -> Some c.id)
    (Properties.run variant)

let test_secure_protocol_all_hold () =
  Alcotest.(check (list string)) "no violations" [] (expected_violations Model.secure);
  Alcotest.(check bool) "holds" true (Properties.holds (Properties.run Model.secure))

let test_no_nonces_breaks_freshness_only () =
  Alcotest.(check (list string)) "only freshness" [ "freshness" ]
    (expected_violations Model.no_nonces)

let test_no_encryption_breaks_secrecy_and_auth () =
  let got = List.sort compare (expected_violations Model.no_encryption) in
  Alcotest.(check (list string)) "secrecy + auth"
    [ "auth-as-server"; "auth-controller-as"; "auth-customer-controller"; "secrecy-payloads" ]
    got

let test_compromised_channels_integrity_survives () =
  let checks = Properties.run Model.compromised_channels in
  (match Properties.find checks "integrity" with
  | Some { outcome = Properties.Holds; _ } -> ()
  | _ -> Alcotest.fail "signature chain must survive channel compromise");
  match Properties.find checks "freshness" with
  | Some { outcome = Properties.Holds; _ } -> ()
  | _ -> Alcotest.fail "nonces must survive channel compromise"

let test_unsigned_measurements_forgeable () =
  let checks = Properties.run Model.no_measurement_signature in
  match Properties.find checks "integrity" with
  | Some { outcome = Properties.Violated _; _ } -> ()
  | _ -> Alcotest.fail "unsigned measurements must be forgeable"

let test_unsigned_reports_forgeable () =
  let checks = Properties.run Model.no_report_signature in
  match Properties.find checks "integrity" with
  | Some { outcome = Properties.Violated _; _ } -> ()
  | _ -> Alcotest.fail "unsigned reports must be forgeable"

let test_identity_keys_never_leak () =
  (* In every variant, long-term private keys stay secret: the protocol
     never transmits them in any form. *)
  List.iter
    (fun variant ->
      let checks = Properties.run variant in
      match Properties.find checks "secrecy-identity-keys" with
      | Some { outcome = Properties.Holds; _ } -> ()
      | _ -> Alcotest.fail "identity keys leaked")
    [
      Model.secure; Model.no_nonces; Model.no_encryption; Model.compromised_channels;
      Model.no_measurement_signature; Model.no_report_signature;
    ]

let test_check_ids_stable () =
  let checks = Properties.run Model.secure in
  Alcotest.(check (list string)) "ids in order" Properties.check_ids
    (List.map (fun (c : Properties.check) -> c.id) checks)

let test_model_sessions () =
  let t = Model.build Model.secure in
  Alcotest.(check int) "two sessions" 2 (List.length t.Model.sessions);
  (* P and rM are shared across sessions; nonces are not. *)
  let s1 = List.nth t.Model.sessions 0 and s2 = List.nth t.Model.sessions 1 in
  Alcotest.(check bool) "P shared" true (Term.equal s1.Model.property s2.Model.property);
  Alcotest.(check bool) "nonces fresh" false (Term.equal s1.Model.n3 s2.Model.n3)

let () =
  Alcotest.run "verifier"
    [
      ( "deduction",
        [
          Alcotest.test_case "pair projection" `Quick test_pair_projection;
          Alcotest.test_case "senc without key" `Quick test_senc_without_key;
          Alcotest.test_case "senc with key" `Quick test_senc_with_key;
          Alcotest.test_case "chained decryption" `Quick test_senc_key_learned_later;
          Alcotest.test_case "aenc" `Quick test_aenc;
          Alcotest.test_case "sign reveals payload" `Quick test_sign_reveals_payload;
          Alcotest.test_case "sign unforgeable" `Quick test_sign_unforgeable;
          Alcotest.test_case "hash one-way" `Quick test_hash_one_way;
          Alcotest.test_case "constants public" `Quick test_consts_always_derivable;
          Alcotest.test_case "pub from sk" `Quick test_pub_derivable_from_sk;
          Alcotest.test_case "composition" `Quick test_composition;
          qtest derivability_monotone;
        ] );
      ( "terms",
        [
          Alcotest.test_case "pair_list" `Quick test_pair_list;
          Alcotest.test_case "subterms" `Quick test_subterms;
          Alcotest.test_case "printing" `Quick test_term_printing;
        ] );
      ( "cloudmonatt-model",
        [
          Alcotest.test_case "secure: all hold" `Quick test_secure_protocol_all_hold;
          Alcotest.test_case "no nonces: freshness only" `Quick
            test_no_nonces_breaks_freshness_only;
          Alcotest.test_case "no encryption: secrecy+auth" `Quick
            test_no_encryption_breaks_secrecy_and_auth;
          Alcotest.test_case "channel compromise: integrity survives" `Quick
            test_compromised_channels_integrity_survives;
          Alcotest.test_case "unsigned measurements forgeable" `Quick
            test_unsigned_measurements_forgeable;
          Alcotest.test_case "unsigned reports forgeable" `Quick test_unsigned_reports_forgeable;
          Alcotest.test_case "identity keys never leak" `Quick test_identity_keys_never_leak;
          Alcotest.test_case "check ids stable" `Quick test_check_ids_stable;
          Alcotest.test_case "model sessions" `Quick test_model_sessions;
        ] );
    ]
