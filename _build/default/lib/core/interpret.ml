type covert_source = Cpu_bursts | Cache_misses

type integrity_source = Task_diff | Ima_whitelist

type refs = {
  golden_platform : string;
  golden_image : string -> string option;
  availability_min_pct : float;
  steal_min_fraction : float;
  min_histogram_samples : int;
  bimodal_min_separation : float;
  bimodal_min_weight : float;
  covert_sources : covert_source list;
  min_cache_windows : int;
  integrity_sources : integrity_source list;
  known_binary : string -> string -> bool;
}

let default_refs =
  {
    golden_platform = Hypervisor.Server.golden_platform_measurement;
    golden_image = (fun name -> Some (Hypervisor.Image.golden_hash ~name));
    availability_min_pct = 25.0;
    steal_min_fraction = 0.70;
    min_histogram_samples = 20;
    bimodal_min_separation = 0.25;
    bimodal_min_weight = 0.10;
    covert_sources = [ Cpu_bursts ];
    min_cache_windows = 20;
    integrity_sources = [ Task_diff ];
    known_binary =
      (fun name hash -> String.equal hash (Hypervisor.Guest_os.pristine_hash name));
  }

let requests_for refs = function
  | Property.Startup_integrity ->
      [ Monitors.Measurement.Platform_integrity; Monitors.Measurement.Vm_image_integrity ]
  | Property.Runtime_integrity ->
      List.map
        (function
          | Task_diff -> Monitors.Measurement.Task_list
          | Ima_whitelist -> Monitors.Measurement.Ima_log)
        refs.integrity_sources
  | Property.Covert_channel_free ->
      List.map
        (function
          | Cpu_bursts -> Monitors.Measurement.Cpu_burst_histogram
          | Cache_misses -> Monitors.Measurement.Cache_miss_pattern)
        refs.covert_sources
  | Property.Cpu_availability -> [ Monitors.Measurement.Cpu_time (Sim.Time.sec 1) ]

let histogram_verdict refs counts =
  let total = Array.fold_left ( + ) 0 counts in
  if total < refs.min_histogram_samples then
    ( Report.Unknown (Printf.sprintf "only %d bursts in detection period" total),
      Printf.sprintf "bursts=%d" total )
  else begin
    let hist = Sim.Stats.Histogram.of_counts ~width:1.0 counts in
    let dist = Sim.Stats.Histogram.distribution hist in
    let values = Array.init (Array.length counts) (fun i -> float_of_int i +. 0.5) in
    match Sim.Stats.Two_means.cluster ~values ~mass:dist with
    | None -> (Report.Unknown "empty distribution", "no mass")
    | Some r ->
        let c1, c2 = r.centers in
        let w1, w2 = r.weights in
        let evidence =
          Printf.sprintf "peaks at %.1fms (%.0f%%) and %.1fms (%.0f%%), separation %.2f" c1
            (100. *. w1) c2 (100. *. w2) r.separation
        in
        if
          Sim.Stats.Two_means.bimodal ~min_separation:refs.bimodal_min_separation
            ~min_weight:refs.bimodal_min_weight r
        then
          ( Report.Compromised
              "bimodal CPU-usage interval distribution: covert-channel signalling pattern",
            evidence )
        else (Report.Healthy, evidence)
  end

(* Prime-probe signalling shows up as windows that are either quiet or
   loud, with little in between: cluster the per-window miss counts. *)
let cache_verdict refs windows =
  let n = Array.length windows in
  if n < refs.min_cache_windows then
    ( Report.Unknown (Printf.sprintf "only %d cache windows in detection period" n),
      Printf.sprintf "windows=%d" n )
  else begin
    let maxc = Array.fold_left max 0 windows in
    if maxc = 0 then (Report.Healthy, "no cache contention")
    else begin
      (* Histogram of window miss counts over ~16 value bins. *)
      let bins = 16 in
      let width = float_of_int maxc /. float_of_int bins in
      let width = if width <= 0.0 then 1.0 else width in
      let mass = Array.make (bins + 1) 0.0 in
      Array.iter
        (fun c ->
          let i = int_of_float (float_of_int c /. width) in
          let i = if i > bins then bins else i in
          mass.(i) <- mass.(i) +. 1.0)
        windows;
      let values = Array.init (bins + 1) (fun i -> (float_of_int i +. 0.5) *. width) in
      match Sim.Stats.Two_means.cluster ~values ~mass with
      | None -> (Report.Unknown "empty distribution", "no mass")
      | Some r ->
          let c1, c2 = r.centers in
          let w1, w2 = r.weights in
          let evidence =
            Printf.sprintf
              "window miss counts cluster at %.0f (%.0f%%) and %.0f (%.0f%%), separation %.2f"
              c1 (100. *. w1) c2 (100. *. w2) r.separation
          in
          if
            Sim.Stats.Two_means.bimodal ~min_separation:refs.bimodal_min_separation
              ~min_weight:refs.bimodal_min_weight r
            && c2 > 4.0 *. Float.max c1 1.0
          then
            ( Report.Compromised
                "quiet/loud cache-miss window pattern: prime-probe covert-channel signalling",
              evidence )
          else (Report.Healthy, evidence)
    end
  end

let ima_verdict refs entries =
  let bad =
    List.filter_map
      (fun (name, hash) -> if refs.known_binary name hash then None else Some name)
      entries
  in
  let evidence = Printf.sprintf "%d measured binaries" (List.length entries) in
  match bad with
  | [] -> (Report.Healthy, evidence)
  | _ ->
      ( Report.Compromised
          (Printf.sprintf "unknown or modified binaries in IMA log: %s"
             (String.concat ", " (List.sort_uniq compare bad))),
        evidence )

let task_diff_verdict kernel visible =
  let hidden = List.filter (fun p -> not (List.mem p visible)) kernel in
  let evidence =
    Printf.sprintf "kernel tasks=%d, guest-visible=%d" (List.length kernel)
      (List.length visible)
  in
  if hidden = [] then (Report.Healthy, evidence)
  else
    ( Report.Compromised
        (Printf.sprintf "hidden processes detected by introspection: %s"
           (String.concat ", " hidden)),
      evidence )

(* Combine per-source verdicts: any compromised source condemns; all
   Unknown stays Unknown; otherwise healthy. *)
let combine verdicts =
  let compromised =
    List.find_opt (fun (s, _) -> match s with Report.Compromised _ -> true | _ -> false) verdicts
  in
  let evidence = String.concat "; " (List.map snd verdicts) in
  match compromised with
  | Some (s, _) -> (s, evidence)
  | None ->
      if List.for_all (fun (s, _) -> match s with Report.Unknown _ -> true | _ -> false) verdicts
      then
        ((match verdicts with (s, _) :: _ -> s | [] -> Report.Unknown "no measurements"), evidence)
      else (Report.Healthy, evidence)

let interpret refs ~image_name property values =
  match (property, values) with
  | ( Property.Startup_integrity,
      [ Monitors.Measurement.Measured_platform platform; Monitors.Measurement.Measured_image image ] ) ->
      let platform_ok = String.equal platform refs.golden_platform in
      let image_ok =
        match Option.bind image_name refs.golden_image with
        | Some golden -> String.equal image golden
        | None -> false
      in
      let evidence =
        Printf.sprintf "platform=%s image=%s" (Crypto.Hexs.short platform)
          (Crypto.Hexs.short image)
      in
      if not platform_ok then
        (Report.Compromised "platform measurement differs from golden boot chain", evidence)
      else if not image_ok then
        (Report.Compromised "VM image hash differs from pristine image", evidence)
      else (Report.Healthy, evidence)
  | Property.Runtime_integrity, values
    when values <> []
         && List.for_all
              (function
                | Monitors.Measurement.Measured_tasks _ | Monitors.Measurement.Measured_ima _ ->
                    true
                | _ -> false)
              values ->
      combine
        (List.map
           (function
             | Monitors.Measurement.Measured_tasks { kernel; visible } ->
                 task_diff_verdict kernel visible
             | Monitors.Measurement.Measured_ima entries -> ima_verdict refs entries
             | _ -> (Report.Unknown "unexpected measurement", "shape"))
           values)
  | Property.Covert_channel_free, values
    when values <> []
         && List.for_all
              (function
                | Monitors.Measurement.Measured_histogram _
                | Monitors.Measurement.Measured_miss_windows _ ->
                    true
                | _ -> false)
              values ->
      combine
        (List.map
           (function
             | Monitors.Measurement.Measured_histogram counts -> histogram_verdict refs counts
             | Monitors.Measurement.Measured_miss_windows w -> cache_verdict refs w
             | _ -> (Report.Unknown "unexpected measurement", "shape"))
           values)
  | ( Property.Cpu_availability,
      [ Monitors.Measurement.Measured_cpu { vtime; steal; window; vcpus } ] ) ->
      if window <= 0 then (Report.Unknown "empty measurement window", "window=0")
      else begin
        let pct = 100.0 *. float_of_int vtime /. float_of_int window in
        let wanted = vtime + steal in
        let steal_frac =
          if wanted = 0 then 0.0 else float_of_int steal /. float_of_int wanted
        in
        let evidence =
          Printf.sprintf "relative CPU usage %.1f%%, steal %.0f%% of demand (%d vcpus)" pct
            (100.0 *. steal_frac) vcpus
        in
        if pct < refs.availability_min_pct && steal_frac > refs.steal_min_fraction then
          ( Report.Compromised
              (Printf.sprintf
                 "CPU availability %.1f%% below the %.0f%% SLA floor while %.0f%% of demand is stolen"
                 pct refs.availability_min_pct (100.0 *. steal_frac)),
            evidence )
        else (Report.Healthy, evidence)
      end
  | _, vs ->
      ( Report.Unknown
          (Printf.sprintf "measurements do not match property (%d values)" (List.length vs)),
        "shape mismatch" )
