open Net.Network

let passive ~on_message msg =
  on_message msg;
  Pass

let corrupt ~offset payload =
  let b = Bytes.of_string payload in
  let i = min offset (Bytes.length b - 1) in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
  Bytes.to_string b

let flip_byte ?(offset = 48) ?(min_len = 64) () msg =
  if String.length msg.payload >= min_len then Replace (corrupt ~offset msg.payload) else Pass

let tamper_replies ?(offset = 48) ?(min_len = 64) () msg =
  match msg.dir with
  | Reply when String.length msg.payload >= min_len -> Replace (corrupt ~offset msg.payload)
  | Reply | Request -> Pass

let replay_requests () =
  let seen : (string * string, string) Hashtbl.t = Hashtbl.create 8 in
  fun msg ->
    match msg.dir with
    | Reply -> Pass
    | Request -> (
        let key = (msg.src, msg.dst) in
        match Hashtbl.find_opt seen key with
        | None ->
            Hashtbl.replace seen key msg.payload;
            Pass
        | Some old -> Replace old)

let drop_everything () _msg = Drop
