lib/core/commands.ml: Property Protocol Schedule Sim Wire
