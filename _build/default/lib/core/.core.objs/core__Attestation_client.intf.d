lib/core/attestation_client.mli: Hypervisor Monitors Net Protocol Sim
