(* Binary Merkle tree with domain-separated leaf/node hashes.  Odd nodes at
   a level are promoted unchanged, so the shape depends only on the leaf
   count and promoted leaves simply get shorter proofs. *)

let leaf_hash data = Sha256.digest_list [ "merkle-leaf|"; data ]
let node_hash l r = Sha256.digest_list [ "merkle-node|"; l; r ]

(* Which side of the pair the recorded sibling hash sits on. *)
type side = Sibling_left | Sibling_right

type proof = (side * string) list (* leaf -> root order *)

(* All levels bottom-up; the last has exactly one element, the root. *)
let levels leaves =
  if leaves = [] then invalid_arg "Merkle: no leaves";
  let rec up acc level =
    if Array.length level = 1 then List.rev (level :: acc)
    else begin
      let n = Array.length level in
      let next =
        Array.init
          ((n + 1) / 2)
          (fun i ->
            if (2 * i) + 1 < n then node_hash level.(2 * i) level.((2 * i) + 1)
            else level.(2 * i))
      in
      up (level :: acc) next
    end
  in
  up [] (Array.of_list (List.map leaf_hash leaves))

let root leaves =
  match List.rev (levels leaves) with
  | [| r |] :: _ -> r
  | _ -> assert false

let proof leaves i =
  let ls = levels leaves in
  if i < 0 || i >= List.length leaves then
    invalid_arg "Merkle.proof: leaf index out of range";
  let rec walk i acc = function
    | [] | [ _ ] -> List.rev acc
    | level :: rest ->
        let sib = i lxor 1 in
        let acc =
          if sib < Array.length level then
            let side = if sib < i then Sibling_left else Sibling_right in
            (side, level.(sib)) :: acc
          else acc (* promoted unchanged: nothing to hash at this level *)
        in
        walk (i / 2) acc rest
  in
  walk i [] ls

let verify ~root:expected ~leaf p =
  let h =
    List.fold_left
      (fun h (side, sib) ->
        match side with
        | Sibling_left -> node_hash sib h
        | Sibling_right -> node_hash h sib)
      (leaf_hash leaf) p
  in
  String.equal h expected

let proof_length = List.length

(* The side sequence (leaf -> root) of leaf [i]'s path in a tree over
   [size] leaves.  A path's sides determine the leaf position uniquely, so
   comparing them binds a claimed index to a side-tagged proof. *)
let expected_sides ~size i =
  let rec go lo hi i =
    if hi - lo <= 1 then []
    else begin
      (* Largest power of two strictly below the span: RFC 6962 split. *)
      let rec k_split n k = if 2 * k < n then k_split n (2 * k) else k in
      let k = k_split (hi - lo) 1 in
      if i < lo + k then go lo (lo + k) i @ [ Sibling_right ]
      else go (lo + k) hi i @ [ Sibling_left ]
    end
  in
  go 0 size i

let verify_at ~root ~leaf ~index ~size p =
  index >= 0 && index < size
  && List.map fst p = expected_sides ~size index
  && verify ~root ~leaf p

let node_count n =
  if n <= 0 then 0
  else begin
    (* n leaf hashes, plus one node hash per combined pair at each level. *)
    let rec interior n acc = if n <= 1 then acc else interior ((n + 1) / 2) (acc + (n / 2)) in
    n + interior n 0
  end

let max_proof_length n =
  if n <= 1 then 0
  else begin
    let rec depth n acc = if n <= 1 then acc else depth ((n + 1) / 2) (acc + 1) in
    depth n 0
  end

(* --- RFC 6962-style log views ---------------------------------------------
   The level-wise promote-odd construction above produces exactly the
   RFC 6962 tree (recursive split at the largest power of two below the
   leaf count), so append-only logs can serve inclusion proofs against any
   historical tree size and consistency proofs between two sizes, and both
   verify against roots produced by [root].  The functions below are
   parameterised by a subtree-root oracle [sub lo hi] so incremental logs
   (lib/audit) can memoize interior hashes across appends. *)

let empty_root = Sha256.digest "merkle-empty|"

(* Largest power of two strictly below [n]; [n >= 2]. *)
let k_split n =
  let rec go k = if 2 * k < n then go (2 * k) else k in
  go 1

let is_pow2 n = n > 0 && n land (n - 1) = 0

let inclusion_with ~sub ~size i =
  if size <= 0 then invalid_arg "Merkle.inclusion_with: empty tree";
  if i < 0 || i >= size then invalid_arg "Merkle.inclusion_with: leaf index out of range";
  let rec path lo hi i =
    if hi - lo <= 1 then []
    else begin
      let k = k_split (hi - lo) in
      if i < lo + k then path lo (lo + k) i @ [ (Sibling_right, sub (lo + k) hi) ]
      else path (lo + k) hi i @ [ (Sibling_left, sub lo (lo + k)) ]
    end
  in
  path 0 size i

let consistency_with ~sub ~old_size ~size =
  if old_size < 0 || old_size > size then
    invalid_arg "Merkle.consistency_with: sizes out of order";
  if old_size = 0 || old_size = size then []
  else begin
    (* RFC 6962 SUBPROOF: [m] old leaves inside the subtree [lo, hi); the
       flag records whether that subtree's root is derivable by the old
       tree's owner (true only along the original spine). *)
    let rec subproof lo hi m flag =
      if m = hi - lo then if flag then [] else [ sub lo hi ]
      else begin
        let k = k_split (hi - lo) in
        if m <= k then subproof lo (lo + k) m flag @ [ sub (lo + k) hi ]
        else subproof (lo + k) hi (m - k) false @ [ sub lo (lo + k) ]
      end
    in
    subproof 0 size old_size true
  end

(* RFC 6962 section 2.1.4.2, with [node_hash] as HASH(0x01 || l || r). *)
let verify_consistency ~old_size ~old_root ~size ~root p =
  if old_size < 0 || size < old_size then false
  else if old_size = 0 then p = []
  else if old_size = size then p = [] && String.equal old_root root
  else begin
    let path = if is_pow2 old_size then old_root :: p else p in
    match path with
    | [] -> false
    | seed :: rest ->
        let fn = ref (old_size - 1) and sn = ref (size - 1) in
        while !fn land 1 = 1 do
          fn := !fn lsr 1;
          sn := !sn lsr 1
        done;
        let fr = ref seed and sr = ref seed in
        let ok = ref true in
        List.iter
          (fun c ->
            if !ok then begin
              if !sn = 0 then ok := false
              else begin
                (if !fn land 1 = 1 || !fn = !sn then begin
                   fr := node_hash c !fr;
                   sr := node_hash c !sr;
                   if !fn land 1 = 0 then
                     while !fn <> 0 && !fn land 1 = 0 do
                       fn := !fn lsr 1;
                       sn := !sn lsr 1
                     done
                 end
                 else sr := node_hash !sr c);
                fn := !fn lsr 1;
                sn := !sn lsr 1
              end
            end)
          rest;
        !ok && String.equal !fr old_root && String.equal !sr root && !sn = 0
  end

(* List-of-leaves conveniences (tests, small verifiers). *)

let sub_of_leaves leaves =
  let hashes = Array.of_list (List.map leaf_hash leaves) in
  let rec sub lo hi =
    if hi - lo = 1 then hashes.(lo)
    else begin
      let k = k_split (hi - lo) in
      node_hash (sub lo (lo + k)) (sub (lo + k) hi)
    end
  in
  (sub, Array.length hashes)

let root_prefix leaves ~size =
  let sub, n = sub_of_leaves leaves in
  if size < 0 || size > n then invalid_arg "Merkle.root_prefix: size out of range";
  if size = 0 then empty_root else sub 0 size

let inclusion_prefix leaves ~size i =
  let sub, n = sub_of_leaves leaves in
  if size > n then invalid_arg "Merkle.inclusion_prefix: size out of range";
  inclusion_with ~sub ~size i

let consistency leaves ~old_size =
  let sub, n = sub_of_leaves leaves in
  consistency_with ~sub ~old_size ~size:n

let encode e p =
  Wire.Codec.Enc.list e
    (fun (side, hash) ->
      Wire.Codec.Enc.u8 e (match side with Sibling_left -> 0 | Sibling_right -> 1);
      Wire.Codec.Enc.str e hash)
    p

let decode d =
  Wire.Codec.Dec.list d (fun d ->
      let side =
        match Wire.Codec.Dec.u8 d with
        | 0 -> Sibling_left
        | 1 -> Sibling_right
        | _ -> raise (Wire.Codec.Error "bad Merkle proof side")
      in
      let hash = Wire.Codec.Dec.str d in
      (side, hash))
