lib/core/privacy_ca.ml: Crypto Hashtbl List Net String Tpm
