(** Hardware vendor root of trust for {!Cvm_device} attestation.

    In the CVM threat model the cloud operator sits outside the TCB: a
    verifier trusts only this vendor root, which endorsed each machine's
    fused platform key at manufacture time.  Session report keys are in
    turn endorsed by the platform key, and the whole two-link chain rides
    the wire as one opaque string ({!encode_chain}) in the endorsement
    field of a measure response. *)

type t

val create : ?bits:int -> seed:string -> unit -> t
(** DRBG seeded from ["platform-root|" ^ seed]; independent of every other
    key stream in a simulation built from the same seed. *)

val name : t -> string
val public : t -> Crypto.Rsa.public

val platform_key_payload : Crypto.Rsa.public -> string
(** Bytes the vendor root signs to endorse a platform key. *)

val report_key_payload : Crypto.Rsa.public -> string
(** Bytes a platform key signs to endorse a per-session report key. *)

val endorse_platform : t -> Crypto.Rsa.public -> string
(** The manufacture-time certificate over a machine's platform key. *)

val encode_chain : platform:Crypto.Rsa.public -> cert:string -> report_sig:string -> string
(** Pack (platform key, root cert, report-key signature) into the wire
    endorsement string. *)

val decode_chain : string -> (Crypto.Rsa.public * string * string) option

val verify_chain : root:Crypto.Rsa.public -> endorsement:string -> key:Crypto.Rsa.public -> bool
(** Check both links: the vendor [root] endorsed the platform key inside
    [endorsement], and that platform key endorsed the session report
    [key].  Memoized — re-appraising the same chain is a hash lookup. *)
