(* Tests for the simulation kernel: PRNG, heap, engine, statistics. *)

let qtest = QCheck_alcotest.to_alcotest

(* --- Prng ---------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Sim.Prng.create 42 and b = Sim.Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Prng.bits64 a) (Sim.Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Sim.Prng.create 1 and b = Sim.Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if not (Int64.equal (Sim.Prng.bits64 a) (Sim.Prng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_split_independent () =
  let a = Sim.Prng.create 7 in
  let b = Sim.Prng.split a in
  let xs = List.init 32 (fun _ -> Sim.Prng.bits64 a) in
  let ys = List.init 32 (fun _ -> Sim.Prng.bits64 b) in
  Alcotest.(check bool) "split streams differ" false (xs = ys)

let test_prng_split_stability () =
  (* Pinned vectors: [split] is the basis for the fleet driver's per-shard
     stream assignment, so its output order (parent advances, children are
     independent) must never drift — a change here silently re-randomizes
     every committed fleet artifact. *)
  let root = Sim.Prng.create 42 in
  let a = Sim.Prng.split root in
  let b = Sim.Prng.split root in
  let hex p = Printf.sprintf "%016Lx" (Sim.Prng.bits64 p) in
  Alcotest.(check (list string)) "root after two splits"
    [ "ecb8ad4703b360a1"; "ae17533239e499a1" ]
    [ hex root; hex root ];
  Alcotest.(check (list string)) "first child"
    [ "106fa1a13296fe62"; "8ee445d14631c453" ]
    [ hex a; hex a ];
  Alcotest.(check (list string)) "second child"
    [ "e77e94b6db1b6deb"; "9f62288718cc63b6" ]
    [ hex b; hex b ]

let prng_int_in_bounds =
  QCheck.Test.make ~name:"Prng.int stays in bounds" ~count:500
    QCheck.(pair int small_int)
    (fun (seed, bound) ->
      QCheck.assume (bound > 0);
      let p = Sim.Prng.create seed in
      let v = Sim.Prng.int p bound in
      v >= 0 && v < bound)

let prng_int_in_range =
  QCheck.Test.make ~name:"Prng.int_in inclusive range" ~count:500
    QCheck.(triple int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let p = Sim.Prng.create seed in
      let v = Sim.Prng.int_in p lo (lo + span) in
      v >= lo && v <= lo + span)

let test_prng_uniformity () =
  (* Coarse chi-square-ish check: each of 10 buckets within 30% of mean. *)
  let p = Sim.Prng.create 99 in
  let buckets = Array.make 10 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let i = Sim.Prng.int p 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket near uniform" true (abs (c - (n / 10)) < n * 3 / 100))
    buckets

let test_prng_gaussian_moments () =
  let p = Sim.Prng.create 5 in
  let s = Sim.Stats.Summary.create () in
  for _ = 1 to 20_000 do
    Sim.Stats.Summary.add s (Sim.Prng.gaussian p ~mu:3.0 ~sigma:2.0)
  done;
  Alcotest.(check bool) "mean ~3" true (abs_float (Sim.Stats.Summary.mean s -. 3.0) < 0.1);
  Alcotest.(check bool) "stddev ~2" true (abs_float (Sim.Stats.Summary.stddev s -. 2.0) < 0.1)

let test_prng_shuffle_permutation () =
  let p = Sim.Prng.create 13 in
  let a = Array.init 50 (fun i -> i) in
  Sim.Prng.shuffle p a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 (fun i -> i)) sorted

let test_prng_bytes_length () =
  let p = Sim.Prng.create 1 in
  Alcotest.(check int) "length" 33 (Bytes.length (Sim.Prng.bytes p 33))

(* --- Heap ---------------------------------------------------------------- *)

let heap_sorts =
  QCheck.Test.make ~name:"Heap drains in sorted order" ~count:300
    QCheck.(list int)
    (fun xs ->
      let h = Sim.Heap.create ~cmp:compare in
      List.iter (Sim.Heap.push h) xs;
      let rec drain acc =
        match Sim.Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

let test_heap_peek () =
  let h = Sim.Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Sim.Heap.is_empty h);
  Alcotest.(check (option int)) "peek empty" None (Sim.Heap.peek h);
  Sim.Heap.push h 5;
  Sim.Heap.push h 2;
  Sim.Heap.push h 9;
  Alcotest.(check (option int)) "peek min" (Some 2) (Sim.Heap.peek h);
  Alcotest.(check int) "length" 3 (Sim.Heap.length h);
  Alcotest.(check int) "to_list size" 3 (List.length (Sim.Heap.to_list h))

let test_heap_pop_push_churn () =
  (* Steady-state churn at fixed size — the engine's hot loop, and the shape
     that exercises the bottom-up pop path repeatedly.  The heap must keep
     returning the true minimum against a sorted-list oracle. *)
  let p = Sim.Prng.create 31 in
  let h = Sim.Heap.create ~cmp:compare in
  let oracle = ref [] in
  for _ = 1 to 256 do
    let x = Sim.Prng.int p 10_000 in
    Sim.Heap.push h x;
    oracle := x :: !oracle
  done;
  oracle := List.sort compare !oracle;
  for _ = 1 to 2_000 do
    (match (Sim.Heap.pop h, !oracle) with
    | Some got, expect :: rest ->
        Alcotest.(check int) "pop returns minimum" expect got;
        oracle := rest
    | _ -> Alcotest.fail "heap/oracle desync");
    let x = Sim.Prng.int p 10_000 in
    Sim.Heap.push h x;
    oracle := List.merge compare [ x ] !oracle
  done;
  Alcotest.(check int) "size preserved" 256 (Sim.Heap.length h)

(* --- Engine -------------------------------------------------------------- *)

let test_engine_ordering () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore (Sim.Engine.schedule e ~at:30 (fun () -> log := 30 :: !log));
  ignore (Sim.Engine.schedule e ~at:10 (fun () -> log := 10 :: !log));
  ignore (Sim.Engine.schedule e ~at:20 (fun () -> log := 20 :: !log));
  Sim.Engine.run_until e 100;
  Alcotest.(check (list int)) "time order" [ 10; 20; 30 ] (List.rev !log);
  Alcotest.(check int) "clock at horizon" 100 (Sim.Engine.now e)

let test_engine_fifo_same_time () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore (Sim.Engine.schedule e ~at:5 (fun () -> log := "a" :: !log));
  ignore (Sim.Engine.schedule e ~at:5 (fun () -> log := "b" :: !log));
  Sim.Engine.run_until e 5;
  Alcotest.(check (list string)) "FIFO among equals" [ "a"; "b" ] (List.rev !log)

let test_engine_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let h = Sim.Engine.schedule e ~at:10 (fun () -> fired := true) in
  Sim.Engine.cancel e h;
  Sim.Engine.run_until e 100;
  Alcotest.(check bool) "cancelled event does not fire" false !fired

let test_engine_schedule_from_handler () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore
    (Sim.Engine.schedule e ~at:10 (fun () ->
         log := "outer" :: !log;
         ignore (Sim.Engine.schedule e ~at:10 (fun () -> log := "inner" :: !log))));
  Sim.Engine.run_until e 10;
  Alcotest.(check (list string)) "zero-delay runs after" [ "outer"; "inner" ] (List.rev !log)

let test_engine_past_rejected () =
  let e = Sim.Engine.create () in
  Sim.Engine.run_until e 50;
  Alcotest.check_raises "past schedule rejected"
    (Invalid_argument "Engine.schedule: time is in the past") (fun () ->
      ignore (Sim.Engine.schedule e ~at:10 (fun () -> ())))

let test_engine_every () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let h = Sim.Engine.every e ~period:10 (fun () -> incr count) in
  Sim.Engine.run_until e 55;
  Alcotest.(check int) "5 ticks in 55" 5 !count;
  Sim.Engine.cancel e h;
  Sim.Engine.run_until e 200;
  Alcotest.(check int) "stopped after cancel" 5 !count

let test_engine_every_until () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  ignore (Sim.Engine.every e ~period:10 ~until:30 (fun () -> incr count));
  Sim.Engine.run_until e 500;
  Alcotest.(check int) "bounded recurrence" 3 !count

(* Regression: cancelling an [every] (one live event, many future ticks)
   used to decrement the live count on every cancel call, driving [pending]
   negative and leaking a tombstone per cancelled handle. *)
let test_engine_cancel_accounting () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let h = Sim.Engine.every e ~period:10 (fun () -> incr count) in
  Alcotest.(check int) "one live event" 1 (Sim.Engine.pending e);
  Sim.Engine.run_until e 35;
  Alcotest.(check int) "still one pending tick" 1 (Sim.Engine.pending e);
  Sim.Engine.cancel e h;
  Alcotest.(check int) "cancel removes it" 0 (Sim.Engine.pending e);
  Sim.Engine.cancel e h;
  Sim.Engine.cancel e h;
  Alcotest.(check int) "double cancel is a no-op" 0 (Sim.Engine.pending e);
  Sim.Engine.run_until e 500;
  Alcotest.(check int) "no ticks after cancel" 3 !count;
  let fired = ref false in
  let h2 = Sim.Engine.schedule e ~at:510 (fun () -> fired := true) in
  Sim.Engine.run_until e 520;
  Sim.Engine.cancel e h2;
  Alcotest.(check bool) "event fired" true !fired;
  Alcotest.(check int) "cancel after fire is a no-op" 0 (Sim.Engine.pending e)

(* Regression: the first tick of [every ~until] was scheduled without the
   expiry check applied to all subsequent ticks. *)
let test_engine_every_until_first_tick () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  ignore (Sim.Engine.every e ~period:10 ~until:5 (fun () -> incr count));
  Alcotest.(check int) "nothing scheduled" 0 (Sim.Engine.pending e);
  Sim.Engine.run_until e 500;
  Alcotest.(check int) "no tick past until" 0 !count

let test_engine_run_all_limit () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let rec reschedule () =
    incr count;
    ignore (Sim.Engine.schedule_after e ~delay:1 reschedule)
  in
  ignore (Sim.Engine.schedule_after e ~delay:1 reschedule);
  Sim.Engine.run_all e ~limit:10;
  Alcotest.(check int) "limit respected" 10 !count

(* --- Stats --------------------------------------------------------------- *)

let test_histogram_binning () =
  let h = Sim.Stats.Histogram.create ~bins:30 ~width:1.0 in
  (* The paper's example: a 4.6 ms burst lands in bin (4,5]. *)
  Sim.Stats.Histogram.add h 4.6;
  Alcotest.(check int) "bin (4,5]" 1 (Sim.Stats.Histogram.count h 4);
  (* Exact boundary 4.0 belongs to (3,4]. *)
  Sim.Stats.Histogram.add h 4.0;
  Alcotest.(check int) "bin (3,4]" 1 (Sim.Stats.Histogram.count h 3);
  (* Out of range clamps to the last bin. *)
  Sim.Stats.Histogram.add h 1000.0;
  Alcotest.(check int) "clamped" 1 (Sim.Stats.Histogram.count h 29);
  Alcotest.(check int) "total" 3 (Sim.Stats.Histogram.total h)

let test_histogram_distribution () =
  let h = Sim.Stats.Histogram.of_counts ~width:1.0 [| 1; 3; 0; 0 |] in
  let d = Sim.Stats.Histogram.distribution h in
  Alcotest.(check (float 1e-9)) "normalised" 0.25 d.(0);
  Alcotest.(check (float 1e-9)) "normalised" 0.75 d.(1);
  let empty = Sim.Stats.Histogram.create ~bins:4 ~width:1.0 in
  Alcotest.(check (float 1e-9)) "empty gives zeros" 0.0
    (Sim.Stats.Histogram.distribution empty).(0)

let test_histogram_merge () =
  let a = Sim.Stats.Histogram.of_counts ~width:1.0 [| 1; 2 |] in
  let b = Sim.Stats.Histogram.of_counts ~width:1.0 [| 3; 4 |] in
  let m = Sim.Stats.Histogram.merge a b in
  Alcotest.(check int) "merged count" 4 (Sim.Stats.Histogram.count m 0);
  Alcotest.(check int) "merged total" 10 (Sim.Stats.Histogram.total m);
  Alcotest.check_raises "incompatible shapes"
    (Invalid_argument "Histogram.merge: incompatible shapes") (fun () ->
      ignore (Sim.Stats.Histogram.merge a (Sim.Stats.Histogram.create ~bins:3 ~width:1.0)))

let summary_matches_naive =
  QCheck.Test.make ~name:"Summary matches direct computation" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Sim.Stats.Summary.create () in
      List.iter (Sim.Stats.Summary.add s) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var = List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. (n -. 1.0) in
      abs_float (Sim.Stats.Summary.mean s -. mean) < 1e-6 *. (1.0 +. abs_float mean)
      && abs_float (Sim.Stats.Summary.stddev s -. sqrt var) < 1e-6 *. (1.0 +. sqrt var))

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 9.0; 10.0 ] in
  Alcotest.(check (float 1e-9)) "p50" 5.0 (Sim.Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p100" 10.0 (Sim.Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p10" 1.0 (Sim.Stats.percentile xs 10.0)

let test_two_means_bimodal () =
  let values = Array.init 30 (fun i -> float_of_int i +. 0.5) in
  let mass = Array.make 30 0.0 in
  mass.(4) <- 0.5;
  mass.(19) <- 0.5;
  match Sim.Stats.Two_means.cluster ~values ~mass with
  | None -> Alcotest.fail "expected clusters"
  | Some r ->
      Alcotest.(check bool) "bimodal" true (Sim.Stats.Two_means.bimodal r);
      let c1, c2 = r.centers in
      Alcotest.(check (float 0.01)) "low center" 4.5 c1;
      Alcotest.(check (float 0.01)) "high center" 19.5 c2

let test_two_means_unimodal () =
  let values = Array.init 30 (fun i -> float_of_int i +. 0.5) in
  let mass = Array.make 30 0.0 in
  mass.(29) <- 1.0;
  match Sim.Stats.Two_means.cluster ~values ~mass with
  | None -> Alcotest.fail "expected clusters"
  | Some r -> Alcotest.(check bool) "not bimodal" false (Sim.Stats.Two_means.bimodal r)

let test_two_means_empty () =
  let values = [| 1.0; 2.0 |] in
  Alcotest.(check bool) "zero mass" true
    (Sim.Stats.Two_means.cluster ~values ~mass:[| 0.0; 0.0 |] = None)

(* --- Domain_pool --------------------------------------------------------- *)

exception Boom of int

let test_pool_covers_all_slots () =
  let pool = Sim.Domain_pool.create ~slots:4 in
  Alcotest.(check int) "slots" 4 (Sim.Domain_pool.slots pool);
  let counts = Array.make 4 0 in
  (* distinct cells per slot, so no synchronisation needed inside the job *)
  Sim.Domain_pool.run pool (fun slot -> counts.(slot) <- counts.(slot) + 1);
  Sim.Domain_pool.run pool (fun slot -> counts.(slot) <- counts.(slot) + 10);
  Sim.Domain_pool.shutdown pool;
  Alcotest.(check (array int)) "each slot ran once per run" [| 11; 11; 11; 11 |] counts

let test_pool_one_slot_degenerates () =
  let pool = Sim.Domain_pool.create ~slots:1 in
  let caller = Domain.self () in
  let seen = ref None in
  Sim.Domain_pool.run pool (fun slot -> seen := Some (slot, Domain.self ()));
  (match !seen with
  | Some (0, d) -> Alcotest.(check bool) "ran on caller's domain" true (d = caller)
  | _ -> Alcotest.fail "job did not run with slot 0");
  (* a failing job must propagate through the degenerate path too *)
  (match Sim.Domain_pool.run pool (fun _ -> raise (Boom 1)) with
  | () -> Alcotest.fail "expected Boom"
  | exception Boom 1 -> ());
  Sim.Domain_pool.shutdown pool

let test_pool_worker_failure_reraised () =
  let pool = Sim.Domain_pool.create ~slots:3 in
  (match Sim.Domain_pool.run pool (fun slot -> if slot = 2 then raise (Boom 2)) with
  | () -> Alcotest.fail "expected Boom"
  | exception Boom 2 -> ());
  (* the pool stays usable after a failed run *)
  let ok = Array.make 3 false in
  Sim.Domain_pool.run pool (fun slot -> ok.(slot) <- true);
  Sim.Domain_pool.shutdown pool;
  Alcotest.(check (array bool)) "usable after failure" [| true; true; true |] ok

let test_pool_own_failure_wins () =
  (* when both the caller's slot and a worker raise, slot 0's exception is
     the one re-raised (workers still finish first — run is a barrier) *)
  let pool = Sim.Domain_pool.create ~slots:2 in
  let worker_ran = ref false in
  (match
     Sim.Domain_pool.run pool (fun slot ->
         if slot = 1 then begin
           worker_ran := true;
           raise (Boom 1)
         end
         else raise (Boom 0))
   with
  | () -> Alcotest.fail "expected Boom"
  | exception Boom 0 -> ()
  | exception Boom _ -> Alcotest.fail "worker exception shadowed the caller's");
  Sim.Domain_pool.shutdown pool;
  Alcotest.(check bool) "worker slot still executed" true !worker_ran

let test_pool_invalid_slots () =
  Alcotest.check_raises "zero slots"
    (Invalid_argument "Domain_pool.create: slots must be positive") (fun () ->
      ignore (Sim.Domain_pool.create ~slots:0 : Sim.Domain_pool.t))

(* --- Time ---------------------------------------------------------------- *)

let test_time_conversions () =
  Alcotest.(check int) "ms" 5000 (Sim.Time.ms 5);
  Alcotest.(check int) "sec" 2_000_000 (Sim.Time.sec 2);
  Alcotest.(check int) "minutes" 60_000_000 (Sim.Time.minutes 1);
  Alcotest.(check (float 1e-9)) "to_ms" 1.5 (Sim.Time.to_ms 1500);
  Alcotest.(check int) "of_ms_float rounds" 1500 (Sim.Time.of_ms_float 1.4999);
  Alcotest.(check string) "pp us" "12us" (Format.asprintf "%a" Sim.Time.pp 12);
  Alcotest.(check string) "pp s" "2.000s" (Format.asprintf "%a" Sim.Time.pp 2_000_000)

let () =
  Alcotest.run "sim"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "split stability (pinned)" `Quick test_prng_split_stability;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
          Alcotest.test_case "shuffle is a permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "bytes length" `Quick test_prng_bytes_length;
          qtest prng_int_in_bounds;
          qtest prng_int_in_range;
        ] );
      ( "heap",
        [
          qtest heap_sorts;
          Alcotest.test_case "peek/length" `Quick test_heap_peek;
          Alcotest.test_case "pop/push churn" `Quick test_heap_pop_push_churn;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time ordering" `Quick test_engine_ordering;
          Alcotest.test_case "FIFO at same time" `Quick test_engine_fifo_same_time;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "schedule from handler" `Quick test_engine_schedule_from_handler;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "every" `Quick test_engine_every;
          Alcotest.test_case "every until" `Quick test_engine_every_until;
          Alcotest.test_case "cancel accounting" `Quick test_engine_cancel_accounting;
          Alcotest.test_case "every until first tick" `Quick test_engine_every_until_first_tick;
          Alcotest.test_case "run_all limit" `Quick test_engine_run_all_limit;
        ] );
      ( "stats",
        [
          Alcotest.test_case "histogram binning" `Quick test_histogram_binning;
          Alcotest.test_case "histogram distribution" `Quick test_histogram_distribution;
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
          qtest summary_matches_naive;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "two-means bimodal" `Quick test_two_means_bimodal;
          Alcotest.test_case "two-means unimodal" `Quick test_two_means_unimodal;
          Alcotest.test_case "two-means empty" `Quick test_two_means_empty;
        ] );
      ( "domain_pool",
        [
          Alcotest.test_case "covers all slots" `Quick test_pool_covers_all_slots;
          Alcotest.test_case "one slot degenerates" `Quick test_pool_one_slot_degenerates;
          Alcotest.test_case "worker failure re-raised" `Quick
            test_pool_worker_failure_reraised;
          Alcotest.test_case "own failure wins" `Quick test_pool_own_failure_wins;
          Alcotest.test_case "invalid slots" `Quick test_pool_invalid_slots;
        ] );
      ("time", [ Alcotest.test_case "conversions" `Quick test_time_conversions ]);
    ]
