(** The CPU resource-availability attack of paper section 4.5.

    The attacker VM exploits the credit scheduler's boost mechanism with
    the tick-evasion pattern of Zhou et al.: its main vCPU computes between
    debit ticks and sleeps across each tick instant, so it is never charged
    credits; a helper vCPU on another pCPU wakes it with an IPI right after
    every tick, so it returns boosted and preempts the victim.  The victim,
    CPU-bound, absorbs every tick debit, goes credit-negative, and starves
    (>10x slowdown in paper Figure 6). *)

val main_program :
  ?tick:Sim.Time.t -> ?guard:Sim.Time.t -> unit -> Hypervisor.Program.t
(** The vCPU that occupies the victim's pCPU.  [guard] (default 600 us) is
    how long before each tick it goes to sleep. *)

val helper_program :
  ?tick:Sim.Time.t -> ?lead:Sim.Time.t -> unit -> Hypervisor.Program.t
(** The vCPU that sends the wakeup IPIs, [lead] (default 200 us) after each
    tick. *)

val attacker_vm : vid:string -> owner:string -> unit -> Hypervisor.Vm.t
(** A two-vCPU VM running main + helper.  Launch it with
    [~pins:[Some victim_pcpu; Some other_pcpu]]. *)

val pins : victim_pcpu:int -> helper_pcpu:int -> int option list
