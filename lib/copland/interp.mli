(** Executable semantics for protocol phrases.

    Runs a well-typed phrase over the real Controller / Attestation Server
    machinery of a live {!Core.Cloud}; ill-typed phrases are rejected
    before any wire traffic.  The default phrase compiles to exactly one
    {!Core.Controller.attest} call — byte-identical wire traffic to the
    hardcoded flow. *)

type leaf_result = {
  slot : int;
  vid : string;
  property : Core.Property.t;
  nonce : string;
  report : (Core.Protocol.controller_report, string) result;
}

type outcome = {
  status : Core.Report.status;
      (** merged verdict: [Seq]/[Par All] take the worst branch, [Par Any]
          the best, [Par Quorum] needs a strict majority of healthy leaf
          appraisals; a checked [Layer] over a stale backend is
          [Compromised] with the body skipped *)
  leaves : leaf_result list;  (** executed appraisals, execution order *)
  ledger : Core.Ledger.t;
}

val reused_nonce : string
(** The fixed nonce weakened (no-nonce) appraisals reuse every round. *)

val run :
  ?drbg:Crypto.Drbg.t ->
  Core.Cloud.t ->
  vids:string array ->
  Phrase.t ->
  (outcome, string) result
(** Type-checks the phrase against the cloud's live topology, then executes
    it.  [drbg] supplies the per-appraisal customer nonces (fresh seed by
    default — pass the customer's own DRBG to reproduce its nonce
    stream). *)
