type error =
  [ `Server_unreachable of string
  | `Channel of Net.Secure_channel.error
  | `Server_refused of string
  | `Verification of Protocol.verify_error
  | `Uncertified_key
  | `No_platform_root ]

let pp_error ppf = function
  | `Server_unreachable s -> Format.fprintf ppf "server %s unreachable" s
  | `Channel e -> Format.fprintf ppf "channel error: %a" Net.Secure_channel.pp_error e
  | `Server_refused why -> Format.fprintf ppf "server refused: %s" why
  | `Verification e -> Format.fprintf ppf "verification failed: %a" Protocol.pp_verify_error e
  | `Uncertified_key -> Format.pp_print_string ppf "privacy CA would not certify the session key"
  | `No_platform_root ->
      Format.pp_print_string ppf "no hardware vendor root configured for CVM verification"

type history_entry = {
  at : Sim.Time.t;
  vid : string;
  property : Property.t;
  status : Report.status;
}

type t = {
  name : string;
  net : Net.Network.t;
  ca_public : Crypto.Rsa.public;
  pca : Privacy_ca.t;
  identity : Net.Secure_channel.Identity.t;
  drbg : Crypto.Drbg.t;
  mutable refs : Interpret.refs;
  mutable vm_image_lookup : string -> string option;
  channels : (string, Net.Secure_channel.Client.t) Hashtbl.t;
  (* Where cached channels charge wire time: rebound to the live ledger at
     the start of every [attest], so retries in later rounds are not
     accounted to the round that happened to open the channel. *)
  net_ledger : Ledger.t ref;
  mutable history : history_entry list; (* newest first *)
  mutable count : int;
  mutable degraded : int;
  mutable attest_attempts : int;
  mutable engine_now : unit -> Sim.Time.t;
  (* Verdict transparency log (lib/audit), opt-in.  When present, every
     signed verdict is appended and its inclusion receipt rides the service
     reply as a trailing block; when absent the reply bytes are exactly the
     pre-audit format. *)
  mutable audit : Audit.Log.t option;
  mutable receipts : Audit.Receipt.t list; (* this call's receipts, newest first *)
  (* Which trust backend each cloud server runs (wired by Cloud from the
     controller's database); defaults to classic everywhere, which keeps a
     homogeneous fleet on the exact pre-backend verification path. *)
  mutable backend_of : string -> Tpm.Backend.kind;
  (* Hardware vendor root for [Cvm_report] servers. *)
  mutable platform_root : Crypto.Rsa.public option;
}

let create ~net ~ca ~pca ~refs ~seed ?(key_bits = 1024) ?(name = "attestation-server") () =
  {
    name;
    net;
    ca_public = Net.Ca.public ca;
    pca;
    identity = Net.Secure_channel.Identity.make ca ~seed:(seed ^ "|as") ~bits:key_bits ~name ();
    drbg = Crypto.Drbg.create ~seed:(seed ^ "|as-drbg");
    refs;
    vm_image_lookup = (fun _ -> None);
    channels = Hashtbl.create 8;
    net_ledger = ref (Ledger.create ());
    history = [];
    count = 0;
    degraded = 0;
    attest_attempts = 2;
    engine_now = (fun () -> 0);
    audit = None;
    receipts = [];
    backend_of = (fun _ -> Tpm.Backend.Classic);
    platform_root = None;
  }

let name t = t.name
let identity t = t.identity
let public_key t = t.identity.Net.Secure_channel.Identity.keypair.public
let refs t = t.refs
let set_refs t refs = t.refs <- refs
let set_vm_image_lookup t f = t.vm_image_lookup <- f
let set_clock t f = t.engine_now <- f
let set_attest_attempts t n = t.attest_attempts <- max 1 n
let set_backend_lookup t f = t.backend_of <- f
let set_platform_root t key = t.platform_root <- Some key

let enable_audit t =
  match t.audit with
  | Some log -> log
  | None ->
      let log =
        Audit.Log.create ~log_id:t.name
          ~key:t.identity.Net.Secure_channel.Identity.keypair.secret
          ~clock:(fun () -> t.engine_now ())
          ()
      in
      t.audit <- Some log;
      log

let audit_log t = t.audit

let no_such_host_prefix = "no such host"

let is_no_such_host m =
  String.length m >= String.length no_such_host_prefix
  && String.equal (String.sub m 0 (String.length no_such_host_prefix)) no_such_host_prefix

(* Availability failures — lost messages after all transport retries, or a
   sequence desync that even a channel reset could not cure — degrade to an
   [Unknown] verdict.  Anything pointing at an active forgery (bad MACs,
   bad signatures, garbage replies) or a misconfigured fleet (no such
   host) stays a hard error: the paper's adversary must never be able to
   convert a detected attack into a mere "unknown". *)
let availability_failure = function
  | `Server_unreachable _ -> true
  | `Channel (`Transport m) -> not (is_no_such_host m)
  | `Channel e -> Net.Secure_channel.desync e
  | `Server_refused _ | `Verification _ | `Uncertified_key | `No_platform_root -> false

let transport t ~dst msg =
  let result, elapsed = Net.Network.call_with_retry t.net ~src:t.name ~dst msg in
  Ledger.add !(t.net_ledger) "network" elapsed;
  match result with
  | Ok r -> Ok r
  | Error `Dropped -> Error "message dropped"
  | Error (`No_such_host h) -> Error (no_such_host_prefix ^ ": " ^ h)

let channel_to t ~server ledger =
  let dst = Attestation_client.address_of server in
  match Hashtbl.find_opt t.channels server with
  | Some ch -> Ok ch
  | None -> (
      Ledger.add ledger "handshake-crypto" Costs.handshake_crypto;
      match
        Net.Secure_channel.Client.connect ~identity:t.identity ~ca:t.ca_public
          ~seed:(t.name ^ "->" ^ server)
          ~peer:server
          ~transport:(transport t ~dst)
      with
      | Ok ch ->
          Hashtbl.replace t.channels server ch;
          Ok ch
      | Error e -> Error (`Channel e))

let parse_client_reply raw =
  match
    Wire.Codec.decode_opt raw (fun d ->
        let tag = Wire.Codec.Dec.u8 d in
        let body = Wire.Codec.Dec.str d in
        (tag, body))
  with
  | Some (1, body) -> Ok body
  | Some (0, reason) -> Error (`Server_refused reason)
  | Some _ | None -> Error (`Server_refused "malformed reply")

let ( let* ) = Result.bind

let record t vid property status =
  t.count <- t.count + 1;
  t.history <- { at = t.engine_now (); vid; property; status } :: t.history

(* Produce the signed AS report for [report], recording it in the history.
   With auditing on, the serialized signed report is also appended to the
   transparency log and its inclusion receipt queued for the reply. *)
let sign_report t ~vid ~server ~property ~nonce ~ledger report =
  record t vid property report.Report.status;
  Ledger.add ledger "report-sign" Costs.report_sign;
  let quote = Protocol.q2 ~vid ~server ~property ~report ~nonce in
  let unsigned = { Protocol.vid; server; property; report; nonce; quote; signature = "" } in
  let signature =
    Crypto.Rsa.sign t.identity.Net.Secure_channel.Identity.keypair.secret
      (Protocol.as_report_payload unsigned)
  in
  let signed = { unsigned with Protocol.signature } in
  (match t.audit with
  | None -> ()
  | Some log ->
      let size = Audit.Log.size log + 1 in
      Ledger.add ledger "audit-append" (Costs.audit_append ~size);
      Ledger.add ledger "audit-sth-sign" Costs.sth_sign;
      Ledger.add ledger "audit-proof" (Costs.audit_proof ~size);
      let receipt = Audit.Log.append_with_receipt log (Protocol.encode_as_report signed) in
      t.receipts <- receipt :: t.receipts);
  signed

let stale_binding_status =
  Report.Compromised "vtpm-stale-binding: restored vTPM state was not re-registered"

let stale_binding_evidence = "session-key endorsement carries a stale or outdated binding epoch"

(* One measurement-collection round against the cloud server.  The trust
   chain is checked per backend: classic and vTPM responses go through the
   Privacy CA (the vTPM registry additionally enforcing the binding epoch),
   CVM responses through the hardware vendor root.  A known-but-stale vTPM
   binding is not an availability failure — it is the finding: the verdict
   comes back [Compromised], signed and audited like any other. *)
let attest_once t ~vid ~server ~property ~nonce ~requests_raw ledger =
  let backend = t.backend_of server in
  let* channel = channel_to t ~server ledger in
  let n3 = Crypto.Drbg.nonce t.drbg in
  let req = { Protocol.vid; requests_raw; nonce = n3 } in
  (* Server-side simulated cost: key generation, collection, signing. *)
  Ledger.add ledger "server-measure" (Attestation_client.measurement_cost ~backend req);
  let* raw =
    match
      Net.Secure_channel.Client.call_robust channel (Protocol.encode_measure_request req)
    with
    | Ok raw -> Ok raw
    | Error e ->
        (* A channel that retries and resets could not fix is unusable. *)
        Hashtbl.remove t.channels server;
        Error (`Channel e)
  in
  let* body = parse_client_reply raw in
  let* response =
    match Protocol.decode_measure_response body with
    | Some r -> Ok r
    | None -> Error (`Server_refused "malformed measurement response")
  in
  let* gate =
    match backend with
    | Tpm.Backend.Classic ->
        (* Certify the session key through the privacy CA, then verify. *)
        Ledger.add ledger "pca-certify" Costs.pca_certify;
        let* cert =
          match Crypto.Rsa.public_of_string response.avk with
          | None -> Error `Uncertified_key
          | Some avk -> (
              match
                Privacy_ca.certify_attestation_key t.pca ~key:avk
                  ~endorsement:response.endorsement
              with
              | Ok cert -> Ok cert
              | Error `Unknown_server -> Error `Uncertified_key)
        in
        Ledger.add ledger "verify" Costs.signature_verify;
        let* () =
          Result.map_error
            (fun e -> `Verification e)
            (Protocol.verify_measure_response ~pca:(Privacy_ca.public t.pca) ~cert
               ~expected_vid:vid ~expected_requests:requests_raw ~expected_nonce:n3 response)
        in
        Ok `Verified
    | Tpm.Backend.Evtpm -> (
        Ledger.add ledger "pca-certify" Costs.pca_certify;
        match Crypto.Rsa.public_of_string response.avk with
        | None -> Error `Uncertified_key
        | Some avk -> (
            match
              Privacy_ca.certify_evtpm_key t.pca ~key:avk ~endorsement:response.endorsement
            with
            | Error `Unknown_server -> Error `Uncertified_key
            | Error `Stale_binding ->
                (* The endorsement authenticates the response as coming from
                   a known vTPM — just one whose binding lapsed.  Check the
                   session signature so a forger cannot ride the stale path,
                   then let the verdict through. *)
                Ledger.add ledger "verify" Costs.signature_verify;
                if
                  Crypto.Rsa.verify_memo avk ~signature:response.signature
                    (Protocol.measure_response_payload response)
                then Ok `Stale_binding
                else Error (`Verification `Bad_signature)
            | Ok cert ->
                Ledger.add ledger "verify" Costs.signature_verify;
                let* () =
                  Result.map_error
                    (fun e -> `Verification e)
                    (Protocol.verify_measure_response ~pca:(Privacy_ca.public t.pca) ~cert
                       ~expected_vid:vid ~expected_requests:requests_raw ~expected_nonce:n3
                       response)
                in
                Ok `Verified))
    | Tpm.Backend.Cvm_report -> (
        match t.platform_root with
        | None -> Error `No_platform_root
        | Some root ->
            Ledger.add ledger "cvm-chain-verify" Costs.cvm_chain_verify;
            Ledger.add ledger "verify" Costs.signature_verify;
            let* () =
              Result.map_error
                (fun e -> `Verification e)
                (Protocol.verify_measure_response_cvm ~root ~expected_vid:vid
                   ~expected_requests:requests_raw ~expected_nonce:n3 response)
            in
            Ok `Verified)
  in
  match gate with
  | `Stale_binding ->
      Ok
        {
          Report.vid;
          property;
          status = stale_binding_status;
          evidence = stale_binding_evidence;
          produced_at = t.engine_now ();
        }
  | `Verified ->
      (* Interpret. *)
      Ledger.add ledger "interpret" Costs.interpret;
      let values =
        Option.value ~default:[] (Monitors.Measurement.decode_values response.values_raw)
      in
      let status, evidence =
        Interpret.interpret t.refs ~image_name:(t.vm_image_lookup vid) property values
      in
      Ok { Report.vid; property; status; evidence; produced_at = t.engine_now () }

let attest t ~vid ~server ~property ~nonce =
  let ledger = Ledger.create () in
  t.net_ledger := ledger;
  t.receipts <- [];
  Ledger.add ledger "db-lookup" Costs.db_lookup;
  let requests = Interpret.requests_for t.refs property in
  let requests_raw = Monitors.Measurement.encode_requests requests in
  (* Bounded re-attestation: a round lost to the network is retried from
     scratch (fresh channel, fresh N3); when every attempt is exhausted the
     verdict degrades to [Unknown] instead of wedging the pipeline — the
     availability loss itself is the finding the customer must see. *)
  let rec go attempt =
    match attest_once t ~vid ~server ~property ~nonce ~requests_raw ledger with
    | Ok report -> Ok (sign_report t ~vid ~server ~property ~nonce ~ledger report)
    | Error e when availability_failure e ->
        Hashtbl.remove t.channels server;
        if attempt < t.attest_attempts then go (attempt + 1)
        else begin
          t.degraded <- t.degraded + 1;
          let reason =
            Format.asprintf "attestation path unavailable after %d attempts: %a" attempt
              pp_error e
          in
          let report =
            {
              Report.vid;
              property;
              status = Report.Unknown reason;
              evidence = "no measurements collected";
              produced_at = t.engine_now ();
            }
          in
          Ok (sign_report t ~vid ~server ~property ~nonce ~ledger report)
        end
    | Error e -> Error e
  in
  (go 1, ledger)

(* --- Batched appraisal ---------------------------------------------------- *)

(* One measurement round for a whole batch: one channel call, one pCA
   certification, one signature verification; then per report an
   inclusion-proof walk, interpretation, and an individually signed
   verdict.  A report whose proof fails is rejected alone — the rest of
   the batch stands, because each verdict is bound to its own Q3 leaf
   under the signed root, never to its neighbours. *)
let attest_batch_once t ~server ~reqs ledger =
  let backend = t.backend_of server in
  let* channel = channel_to t ~server ledger in
  let n3 = Crypto.Drbg.nonce t.drbg in
  let bm =
    {
      Protocol.bm_items = List.map (fun (vid, _, requests_raw) -> (vid, requests_raw)) reqs;
      bm_nonce = n3;
    }
  in
  Ledger.add ledger "server-measure" (Attestation_client.batch_measurement_cost ~backend bm);
  let* raw =
    match
      Net.Secure_channel.Client.call_robust channel (Protocol.encode_batch_measure_request bm)
    with
    | Ok raw -> Ok raw
    | Error e ->
        Hashtbl.remove t.channels server;
        Error (`Channel e)
  in
  let* body = parse_client_reply raw in
  let* response =
    match Protocol.decode_batch_measure_response body with
    | Some r -> Ok r
    | None -> Error (`Server_refused "malformed batch measurement response")
  in
  if List.length response.Protocol.br_items <> List.length reqs then
    Error (`Server_refused "batch reply does not match request")
  else begin
    (* Certify the single session key and verify the single root signature
       — per backend, like the unbatched path.  A stale vTPM binding taints
       the whole batch: every item came from the same restored module, so
       every verdict is [Compromised]. *)
    let* gate =
      match backend with
      | Tpm.Backend.Classic ->
          Ledger.add ledger "pca-certify" Costs.pca_certify;
          let* cert =
            match Crypto.Rsa.public_of_string response.Protocol.br_avk with
            | None -> Error `Uncertified_key
            | Some avk -> (
                match
                  Privacy_ca.certify_attestation_key t.pca ~key:avk
                    ~endorsement:response.Protocol.br_endorsement
                with
                | Ok cert -> Ok cert
                | Error `Unknown_server -> Error `Uncertified_key)
          in
          Ledger.add ledger "verify" (Costs.batch_verify_cost ~batch:(List.length reqs));
          let* () =
            Result.map_error
              (fun e -> `Verification e)
              (Protocol.verify_batch_envelope ~pca:(Privacy_ca.public t.pca) ~cert
                 ~expected_nonce:n3 response)
          in
          Ok `Verified
      | Tpm.Backend.Evtpm -> (
          Ledger.add ledger "pca-certify" Costs.pca_certify;
          match Crypto.Rsa.public_of_string response.Protocol.br_avk with
          | None -> Error `Uncertified_key
          | Some avk -> (
              match
                Privacy_ca.certify_evtpm_key t.pca ~key:avk
                  ~endorsement:response.Protocol.br_endorsement
              with
              | Error `Unknown_server -> Error `Uncertified_key
              | Error `Stale_binding ->
                  Ledger.add ledger "verify" Costs.signature_verify;
                  if
                    Crypto.Rsa.verify_memo avk ~signature:response.Protocol.br_signature
                      (Tpm.Trust_module.batch_quote_payload
                         ~root:response.Protocol.br_root ~nonce:response.Protocol.br_nonce)
                    && String.equal response.Protocol.br_nonce n3
                  then Ok `Stale_binding
                  else Error (`Verification `Bad_signature)
              | Ok cert ->
                  Ledger.add ledger "verify" (Costs.batch_verify_cost ~batch:(List.length reqs));
                  let* () =
                    Result.map_error
                      (fun e -> `Verification e)
                      (Protocol.verify_batch_envelope ~pca:(Privacy_ca.public t.pca) ~cert
                         ~expected_nonce:n3 response)
                  in
                  Ok `Verified))
      | Tpm.Backend.Cvm_report -> (
          match t.platform_root with
          | None -> Error `No_platform_root
          | Some root ->
              Ledger.add ledger "cvm-chain-verify" Costs.cvm_chain_verify;
              Ledger.add ledger "verify" (Costs.batch_verify_cost ~batch:(List.length reqs));
              let* () =
                Result.map_error
                  (fun e -> `Verification e)
                  (Protocol.verify_batch_envelope_cvm ~root ~expected_nonce:n3 response)
              in
              Ok `Verified)
    in
    match gate with
    | `Stale_binding ->
        Ok
          (List.map
             (fun (vid, property, _) ->
               ( vid,
                 property,
                 Ok
                   {
                     Report.vid;
                     property;
                     status = stale_binding_status;
                     evidence = stale_binding_evidence;
                     produced_at = t.engine_now ();
                   } ))
             reqs)
    | `Verified ->
    let root = response.Protocol.br_root in
    let appraise (vid, property, requests_raw) (item : Protocol.batch_item) =
      let itemwise =
        if not (String.equal item.Protocol.bi_vid vid) then Error (`Verification `Vid_mismatch)
        else
          Result.map_error
            (fun e -> `Verification e)
            (Protocol.verify_batch_item ~root ~nonce:n3 ~expected_requests:requests_raw item)
      in
      match itemwise with
      | Error e -> (vid, property, Error e)
      | Ok () ->
          Ledger.add ledger "interpret" Costs.interpret;
          let values =
            Option.value ~default:[]
              (Monitors.Measurement.decode_values item.Protocol.bi_values_raw)
          in
          let status, evidence =
            Interpret.interpret t.refs ~image_name:(t.vm_image_lookup vid) property values
          in
          ( vid,
            property,
            Ok { Report.vid; property; status; evidence; produced_at = t.engine_now () } )
    in
    Ok (List.map2 appraise reqs response.Protocol.br_items)
  end

let attest_batch t ~server ~items ~nonce =
  let ledger = Ledger.create () in
  t.net_ledger := ledger;
  t.receipts <- [];
  Ledger.add ledger "db-lookup" Costs.db_lookup;
  let reqs =
    List.map
      (fun (vid, property) ->
        ( vid,
          property,
          Monitors.Measurement.encode_requests (Interpret.requests_for t.refs property) ))
      items
  in
  let degraded_report vid property reason =
    {
      Report.vid;
      property;
      status = Report.Unknown reason;
      evidence = "no measurements collected";
      produced_at = t.engine_now ();
    }
  in
  let sign (vid, property, itemwise) =
    match itemwise with
    | Ok report -> (vid, property, Ok (sign_report t ~vid ~server ~property ~nonce ~ledger report))
    | Error e -> (vid, property, Error e)
  in
  let rec go attempt =
    match attest_batch_once t ~server ~reqs ledger with
    | Ok results -> Ok (List.map sign results)
    | Error e when availability_failure e ->
        Hashtbl.remove t.channels server;
        if attempt < t.attest_attempts then go (attempt + 1)
        else begin
          t.degraded <- t.degraded + List.length items;
          let reason =
            Format.asprintf "attestation path unavailable after %d attempts: %a" attempt
              pp_error e
          in
          Ok
            (List.map
               (fun (vid, property, _) ->
                 sign (vid, property, Ok (degraded_report vid property reason)))
               reqs)
        end
    | Error e -> Error e
  in
  (go 1, ledger)

let history t = List.rev t.history
let attestations_done t = t.count
let degraded_count t = t.degraded

(* --- Network service ------------------------------------------------------ *)

(* Replies keep the exact pre-audit byte layout when no receipts are
   attached; with auditing on, the receipts ride as a trailing block the
   decoder recognizes by the bytes remaining after the ledger list. *)
let encode_service_reply ?(receipts = []) result ledger =
  Wire.Codec.encode (fun e ->
      match result with
      | Ok report ->
          Wire.Codec.Enc.u8 e 1;
          Wire.Codec.Enc.str e (Protocol.encode_as_report report);
          Wire.Codec.Enc.list e
            (fun (label, cost) ->
              Wire.Codec.Enc.str e label;
              Wire.Codec.Enc.int e cost)
            (Ledger.entries ledger);
          (match receipts with
          | [] -> ()
          | receipt :: _ -> Audit.Receipt.encode e receipt)
      | Error err ->
          Wire.Codec.Enc.u8 e 0;
          Wire.Codec.Enc.str e (Format.asprintf "%a" pp_error err))

(* A batch reply carries one tag+payload per requested item (in request
   order), so a rejected report travels next to its accepted siblings. *)
let encode_batch_service_reply ?(receipts = []) result ledger =
  Wire.Codec.encode (fun e ->
      match result with
      | Ok items ->
          Wire.Codec.Enc.u8 e 1;
          Wire.Codec.Enc.list e
            (fun (_, _, itemwise) ->
              match itemwise with
              | Ok report ->
                  Wire.Codec.Enc.u8 e 1;
                  Wire.Codec.Enc.str e (Protocol.encode_as_report report)
              | Error err ->
                  Wire.Codec.Enc.u8 e 0;
                  Wire.Codec.Enc.str e (Format.asprintf "%a" pp_error err))
            items;
          Wire.Codec.Enc.list e
            (fun (label, cost) ->
              Wire.Codec.Enc.str e label;
              Wire.Codec.Enc.int e cost)
            (Ledger.entries ledger);
          (match receipts with
          | [] -> ()
          | _ -> Wire.Codec.Enc.list e (Audit.Receipt.encode e) receipts)
      | Error err ->
          Wire.Codec.Enc.u8 e 0;
          Wire.Codec.Enc.str e (Format.asprintf "%a" pp_error err))

let decode_batch_service_reply raw =
  match
    Wire.Codec.decode_opt raw (fun d ->
        match Wire.Codec.Dec.u8 d with
        | 1 ->
            let items =
              Wire.Codec.Dec.list d (fun d ->
                  match Wire.Codec.Dec.u8 d with
                  | 1 -> `Report (Wire.Codec.Dec.str d)
                  | 0 -> `Rejected (Wire.Codec.Dec.str d)
                  | _ -> raise (Wire.Codec.Error "bad batch item tag"))
            in
            let entries =
              Wire.Codec.Dec.list d (fun d ->
                  let label = Wire.Codec.Dec.str d in
                  let cost = Wire.Codec.Dec.int d in
                  (label, cost))
            in
            (* Auditing AS: receipts (one per accepted report) trail the
               ledger; their absence is the pre-audit byte format. *)
            let receipts =
              if Wire.Codec.Dec.remaining d > 0 then
                Wire.Codec.Dec.list d Audit.Receipt.decode
              else []
            in
            `Ok (items, entries, receipts)
        | 0 -> `Err (Wire.Codec.Dec.str d)
        | _ -> raise (Wire.Codec.Error "bad reply tag"))
  with
  | Some (`Ok (items, entries, receipts)) ->
      let rec all acc = function
        | [] -> Ok (List.rev acc, entries, receipts)
        | `Rejected why :: rest -> all (Error why :: acc) rest
        | `Report raw :: rest -> (
            match Protocol.decode_as_report raw with
            | Some report -> all (Ok report :: acc) rest
            | None -> Error "malformed report in batch AS reply")
      in
      all [] items
  | Some (`Err why) -> Error why
  | None -> Error "malformed AS reply"

let request_handler t ~peer:_ plaintext =
  match Protocol.decode_batch_as_request plaintext with
  | Some breq ->
      let result, ledger =
        attest_batch t ~server:breq.Protocol.ba_server ~items:breq.Protocol.ba_items
          ~nonce:breq.Protocol.ba_nonce
      in
      encode_batch_service_reply ~receipts:(List.rev t.receipts) result ledger
  | None -> (
      match Protocol.decode_as_request plaintext with
      | None ->
          encode_service_reply (Error (`Server_refused "malformed request")) (Ledger.create ())
      | Some req ->
          let result, ledger =
            attest t ~vid:req.Protocol.vid ~server:req.Protocol.server
              ~property:req.Protocol.property ~nonce:req.Protocol.nonce
          in
          encode_service_reply ~receipts:(List.rev t.receipts) result ledger)

let decode_service_reply raw =
  match
    Wire.Codec.decode_opt raw (fun d ->
        match Wire.Codec.Dec.u8 d with
        | 1 ->
            let report_raw = Wire.Codec.Dec.str d in
            let entries =
              Wire.Codec.Dec.list d (fun d ->
                  let label = Wire.Codec.Dec.str d in
                  let cost = Wire.Codec.Dec.int d in
                  (label, cost))
            in
            let receipt =
              if Wire.Codec.Dec.remaining d > 0 then Some (Audit.Receipt.decode d) else None
            in
            `Ok (report_raw, entries, receipt)
        | 0 -> `Err (Wire.Codec.Dec.str d)
        | _ -> raise (Wire.Codec.Error "bad reply tag"))
  with
  | Some (`Ok (report_raw, entries, receipt)) -> (
      match Protocol.decode_as_report report_raw with
      | Some report -> Ok (report, entries, receipt)
      | None -> Error "malformed report in AS reply")
  | Some (`Err why) -> Error why
  | None -> Error "malformed AS reply"
