(** Simulated-latency cost model.

    The paper measures wall-clock stage times on its OpenStack testbed with
    Ceilometer; we account the same costs in an explicit ledger.  Constants
    are calibrated to the magnitudes the paper reports (Figures 9 and 11):
    spawning dominates VM launch, the attestation stage adds ~20%, and
    migration dwarfs suspension dwarfs termination. *)

(** {2 Crypto and attestation-path costs} *)

val session_keygen : Sim.Time.t
(** Trust Module generates the per-attestation RSA keypair (the dominant
    attestation cost, as on a real TPM). *)

val quote_sign : Sim.Time.t (** Trust Module signs the measurement payload *)

val signature_verify : Sim.Time.t

val report_sign : Sim.Time.t

val pca_certify : Sim.Time.t (** privacy CA checks + issues the AVKs cert *)

val measurement_collect : Sim.Time.t (** Monitor Module gathers one request *)

val interpret : Sim.Time.t (** property interpretation and decision *)

val db_lookup : Sim.Time.t

val handshake_crypto : Sim.Time.t
(** CPU cost of an SSL-style handshake (both sides combined). *)

(** {2 Per-backend attestation-path costs}

    The classic Trust Module keeps the calibration constants above; the
    vTPM runs its crypto in host software and the CVM report device signs
    with a pre-fused platform-derived key, so their RSA terms shrink. *)

val evtpm_session_keygen : Sim.Time.t
val evtpm_quote_sign : Sim.Time.t
val cvm_session_keygen : Sim.Time.t
val cvm_quote_sign : Sim.Time.t

val cvm_chain_verify : Sim.Time.t
(** Walking the two-link platform certificate chain (vendor root -> fused
    platform key -> report key): two RSA verifications, replacing the
    Privacy-CA certificate check. *)

val evtpm_state_save : Sim.Time.t
val evtpm_state_restore : Sim.Time.t

val evtpm_rebind : Sim.Time.t
(** Privacy-CA re-registration of a restored vTPM (same class as
    {!pca_certify}). *)

val layer_appraise : Sim.Time.t
(** Nested "attest the attester" check: appraising the freshness of a host's
    trust backend (binding epoch / stale flag) before accepting VM quotes
    routed through it.  Local bookkeeping, far cheaper than any RSA term. *)

val session_keygen_for : Tpm.Backend.kind -> Sim.Time.t
val quote_sign_for : Tpm.Backend.kind -> Sim.Time.t

(** {2 Batched attestation costs}

    One Trust-Module quote covers a Merkle tree of reports; the RSA terms
    are paid once per batch and the per-report residue is hashing. *)

val merkle_hash : Sim.Time.t
(** One hash evaluation while building a tree or walking a proof. *)

val batch_quote_cost : batch:int -> Sim.Time.t
(** Trust-Module cost of quoting a batch: one session keygen, one root
    signature, [Crypto.Merkle.node_count batch] hashes. *)

val batch_quote_cost_for : batch:int -> Tpm.Backend.kind -> Sim.Time.t
(** {!batch_quote_cost} with the backend's own keygen/sign terms. *)

val batch_verify_cost : batch:int -> Sim.Time.t
(** Appraiser cost: one signature verification plus per-report
    inclusion-proof walks. *)

val amortized_session_keygen : batch:int -> Sim.Time.t
val amortized_quote_sign : batch:int -> Sim.Time.t
(** Per-report share of the batch's single RSA operations (display only —
    ledgers charge whole batches). *)

(** {2 Transparency-log costs (lib/audit)}

    The verdict log's hot path is hashing (append + proof walks, O(log n)
    in the log size); signed tree heads pay RSA costs in the same class as
    report signing. *)

val audit_append : size:int -> Sim.Time.t
(** Appending one entry to a log of [size] entries: the leaf hash plus the
    right-spine interior rehashes. *)

val audit_proof : size:int -> Sim.Time.t
(** Serving or walking one inclusion/consistency proof at [size]. *)

val sth_sign : Sim.Time.t
val sth_verify : Sim.Time.t

val audit_receipt_verify : size:int -> Sim.Time.t
(** Customer-side check of an inclusion receipt: STH signature plus the
    proof walk. *)

(** {2 VM launch stage costs (OpenStack-shaped)} *)

val scheduling_base : Sim.Time.t
val scheduling_per_candidate : Sim.Time.t
val networking : Sim.Time.t
val mapping_base : Sim.Time.t
val mapping_per_gb : Sim.Time.t
val spawn_base : Sim.Time.t
val spawn_per_image_mb : Sim.Time.t
val spawn_per_mem_gb : Sim.Time.t

(** {2 Response costs (Figure 11)} *)

val terminate_base : Sim.Time.t
val suspend_base : Sim.Time.t
val suspend_per_mem_gb : Sim.Time.t
val resume_base : Sim.Time.t

val migration_dirty_fraction : float
(** Fraction of the VM's RAM actually transferred by pre-copy migration. *)

val migration_base : Sim.Time.t
