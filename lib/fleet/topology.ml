type server = { name : string; cluster : int }

type vm = {
  idx : int;
  vid : string;
  owner : string;
  home : int;
  mutable host : string;
}

type t = {
  seed : int;
  as_count : int;
  servers : server array;
  vms : vm array;
  routing : (string, int) Hashtbl.t;  (* host -> AS cluster index *)
}

let make ~seed ~servers:n_servers ~vms:n_vms ~as_count =
  if n_servers <= 0 then invalid_arg "Topology.make: need at least one server";
  if as_count <= 0 then invalid_arg "Topology.make: need at least one AS cluster";
  let as_count = min as_count n_servers in
  let prng = Sim.Prng.create (seed lxor 0x666c6565) in
  let servers =
    Array.init n_servers (fun i ->
        { name = Printf.sprintf "srv-%04d" (i + 1); cluster = i mod as_count })
  in
  let routing = Hashtbl.create (2 * n_servers) in
  Array.iter (fun s -> Hashtbl.replace routing s.name s.cluster) servers;
  let vms =
    Array.init n_vms (fun i ->
        let srv = servers.(Sim.Prng.int prng n_servers) in
        {
          idx = i;
          vid = Printf.sprintf "vm-%05d" (i + 1);
          owner = Printf.sprintf "cust-%03d" (i mod 97);
          home = srv.cluster;
          host = srv.name;
        })
  in
  { seed; as_count; servers; vms; routing }

let seed t = t.seed
let as_count t = t.as_count
let servers t = t.servers
let vms t = t.vms

let cluster_of t host = Option.value ~default:0 (Hashtbl.find_opt t.routing host)
let cluster_of_vm t vm = cluster_of t vm.host

let home_slices t =
  let buckets = Array.make t.as_count [] in
  (* Walk backwards so each cons-accumulated bucket comes out in idx order. *)
  for i = Array.length t.vms - 1 downto 0 do
    let vm = t.vms.(i) in
    buckets.(vm.home) <- vm :: buckets.(vm.home)
  done;
  Array.map Array.of_list buckets

let pick_vm t prng ?(hot = 0) ?(hot_p = 0.0) () =
  let n = Array.length t.vms in
  if n = 0 then invalid_arg "Topology.pick_vm: empty fleet";
  let hot = min hot n in
  if hot > 0 && Sim.Prng.float prng 1.0 < hot_p then t.vms.(Sim.Prng.int prng hot)
  else t.vms.(Sim.Prng.int prng n)

let pick_among prng ~pool ~hot ~hot_p =
  let n = Array.length pool in
  if n = 0 then invalid_arg "Topology.pick_among: empty pool";
  let h = Array.length hot in
  if h > 0 && Sim.Prng.float prng 1.0 < hot_p then hot.(Sim.Prng.int prng h)
  else pool.(Sim.Prng.int prng n)

let migrate t prng vm =
  let n = Array.length t.servers in
  if n > 1 then begin
    let rec fresh () =
      let candidate = t.servers.(Sim.Prng.int prng n).name in
      if String.equal candidate vm.host then fresh () else candidate
    in
    vm.host <- fresh ()
  end;
  vm.host
