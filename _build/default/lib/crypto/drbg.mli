(** Deterministic random bit generator, ChaCha20 in counter mode.

    Plays the role of the hardware RNG inside the Trust Module and of every
    other cryptographic randomness source in the simulation.  Seeded
    explicitly so runs are reproducible. *)

type t

val create : seed:string -> t
(** Seed material of any length (hashed into the cipher key). *)

val of_prng : Sim.Prng.t -> t
(** Seed a DRBG from the simulation PRNG, for convenience in tests. *)

val random_bytes : t -> int -> string
val random_u64 : t -> int64

val random_int : t -> int -> int
(** Uniform in [\[0, bound)]. *)

val nonce : t -> string
(** A fresh 16-byte nonce (the [N1], [N2], [N3] of the protocol). *)

val reseed : t -> string -> unit
(** Mix extra entropy into the state. *)
