lib/tpm/trust_module.ml: Array Crypto Hashtbl Pcr
