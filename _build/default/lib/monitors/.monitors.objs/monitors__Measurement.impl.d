lib/monitors/measurement.ml: Array Crypto Format List Printf Sim Wire
