(** VM Introspection tool (hypervisor-level monitor).

    Reads the target VM's kernel memory from outside the guest, so a
    rootkit that filters the in-guest task listing cannot hide from it
    (paper section 4.3). *)

val kernel_task_list : Hypervisor.Server.t -> vid:string -> string list option
(** Raw kernel task list, hidden processes included.  [None] if the VM is
    not hosted here. *)

val guest_reported_task_list : Hypervisor.Server.t -> vid:string -> string list option
(** What a query through the (possibly compromised) guest OS returns —
    collected for comparison against the kernel list. *)

val probe_cost : Sim.Time.t
(** Simulated time the memory probe pauses the target vCPU (intrusive
    monitors perturb the guest; cf. paper section 7.1.2). *)
