(* Protocol-space experiment: Dolev-Yao verdicts over a term catalogue,
   then interpreter runs checked against the static cost envelope.

   The symbolic catalogue plants its expectations: unweakened terms must
   verify cleanly, each weakened term must violate exactly the checks its
   dropped strengthening protects (with a concrete attack attached).  The
   executable sweep is the other half of the same contract — the envelope
   {!Copland.Estimate} derives from {!Core.Costs} must actually contain
   what the live Controller run spends. *)

module P = Copland.Phrase

type symbolic_row = {
  name : string;
  term : P.t;
  weakened : bool;
  expected : string list;
  violated : string list;
  attacks : int;
  as_expected : bool;
}

type exec_row = {
  e_name : string;
  e_term : P.t;
  servers : int;
  as_clusters : int;
  status : Core.Report.status;
  leaves : int;
  messages : int;
  drops : int;
  compute : Sim.Time.t;
  estimate : Copland.Estimate.t;
  within_estimate : bool;
}

type result = { seed : int; symbolic : symbolic_row list; executable : exec_row list }

(* --- Symbolic section ---------------------------------------------------- *)

(* (name, term, check ids that must be violated).  An empty expectation
   means the term must hold every check with no attacks. *)
let symbolic_catalogue =
  [
    ("default", "a0.0", []);
    ("seq", "(a0.0>a1.1)", []);
    ("par-all", "(a0.0&Aa1.1)", []);
    ("par-quorum", "(a0.0&Qa1.0)", []);
    ("delegated", "d1:a2.0", []);
    ("layered", "l0:a0.1", []);
    ("deleg-layer-quorum", "d1:l2:(a2.0&Qa2.1)", []);
    ("no-nonce", "a-0.0", [ "freshness" ]);
    ( "unchecked-layer",
      "l-0:a0.1",
      [ "secrecy-channel-keys"; "secrecy-payloads"; "integrity"; "auth-as-server" ] );
    ( "unauth-delegation",
      "d-1:a2.0",
      [ "secrecy-payloads"; "integrity"; "auth-controller-as" ] );
    ("replay-into-layer", "(a-0.0>l-1:a1.0)", [ "freshness" ]);
  ]

let symbolic_row (name, line, expected) =
  let term =
    match P.of_string line with
    | Ok t -> t
    | Error e -> invalid_arg (Printf.sprintf "protocols_exp: bad term %s: %s" line e)
  in
  let report = Copland.Dy.verify term in
  let violated = Copland.Dy.violated report in
  let attacks = List.length report.Copland.Dy.attacks in
  let as_expected =
    if expected = [] then violated = [] && attacks = 0
    else List.for_all (fun id -> List.mem id violated) expected && attacks > 0
  in
  { name; term; weakened = P.weakened term; expected; violated; attacks; as_expected }

(* --- Executable section -------------------------------------------------- *)

let launch ctl =
  match
    Core.Controller.launch ctl
      {
        Core.Controller.owner = "protocols-exp";
        image = "cirros";
        flavor = "small";
        properties = Core.Property.all;
        workload = "";
        pins = [];
      }
  with
  | Ok info -> info.Core.Commands.vid
  | Error _ -> invalid_arg "protocols_exp: launch failed"

let ledger_compute ledger =
  Core.Ledger.total ledger
  - Core.Ledger.of_label ledger "network"
  - Core.Ledger.of_label ledger "as:network"

(* The shapes re-expressed against a live topology: delegations name the
   cluster that actually appraises the covered slot, layers stay on the
   covered slot's own host. *)
let exec_shapes env =
  let a slot prop = P.Appraise { slot; prop; nonce = true } in
  let cluster_of = env.Copland.Env.typing.Copland.Typing.cluster_of in
  [
    ("default", P.default);
    ("seq", P.Seq (a 0 0, a 1 1));
    ("par-all", P.Par (P.All, a 0 0, a 1 2));
    ("par-quorum", P.Par (P.Quorum, a 0 0, a 2 0));
    ("layered", P.Layer { slot = 0; checked = true; body = a 0 1 });
    ("delegated", P.Deleg { cluster = cluster_of 0; auth = true; body = a 0 0 });
    ( "deleg-layer-seq",
      P.Deleg
        {
          cluster = cluster_of 0;
          auth = true;
          body = P.Layer { slot = 0; checked = true; body = P.Seq (a 0 0, a 0 3) };
        } );
  ]

let exec_scale ~seed ~servers ~as_clusters =
  let cloud =
    Core.Cloud.build
      ~config:
        {
          Core.Cloud.default_config with
          seed;
          key_bits = 512;
          num_servers = servers;
          num_attestation_servers = as_clusters;
        }
      ()
  in
  let ctl = Core.Cloud.controller cloud in
  let vids = Array.init servers (fun _ -> launch ctl) in
  let net = Core.Cloud.net cloud in
  let env = Copland.Env.of_cloud cloud ~vids in
  let drbg = Crypto.Drbg.create ~seed:(Printf.sprintf "protocols-exp|%d" seed) in
  List.map
    (fun (e_name, e_term) ->
      (* Re-derive per phrase: the verdict cache warms up as the sweep
         proceeds, which Env tracks via [cache_possible]. *)
      let estimate = Copland.Estimate.of_phrase env e_term in
      let msgs0 = Net.Network.message_count net in
      let drops0 = Net.Network.drop_count net in
      let outcome =
        match Copland.Interp.run ~drbg cloud ~vids e_term with
        | Ok o -> o
        | Error e ->
            invalid_arg (Printf.sprintf "protocols_exp: %s rejected: %s" e_name e)
      in
      let messages = Net.Network.message_count net - msgs0 in
      let drops = Net.Network.drop_count net - drops0 in
      let compute = ledger_compute outcome.Copland.Interp.ledger in
      let all_ok =
        List.for_all
          (fun (l : Copland.Interp.leaf_result) -> Result.is_ok l.Copland.Interp.report)
          outcome.Copland.Interp.leaves
      in
      let within_estimate =
        drops = 0 && all_ok
        && messages >= estimate.Copland.Estimate.messages_min
        && messages <= estimate.Copland.Estimate.messages_max
        && compute >= estimate.Copland.Estimate.compute_min
        && compute <= estimate.Copland.Estimate.compute_max
      in
      {
        e_name;
        e_term;
        servers;
        as_clusters;
        status = outcome.Copland.Interp.status;
        leaves = List.length outcome.Copland.Interp.leaves;
        messages;
        drops;
        compute;
        estimate;
        within_estimate;
      })
    (exec_shapes env)

let run ?(seed = 2015) () =
  let symbolic = List.map symbolic_row symbolic_catalogue in
  let executable =
    exec_scale ~seed ~servers:3 ~as_clusters:1
    @ exec_scale ~seed ~servers:4 ~as_clusters:2
  in
  { seed; symbolic; executable }

let clean { symbolic; executable; _ } =
  List.for_all (fun r -> r.as_expected) symbolic
  && List.for_all (fun r -> r.within_estimate) executable

(* --- Reporting ----------------------------------------------------------- *)

let print ({ seed; symbolic; executable } as r) =
  Common.section (Printf.sprintf "Protocols: phrase catalogue (seed %d)" seed);
  Printf.printf "Symbolic (Dolev-Yao per term):\n";
  Printf.printf "  %-20s %-22s %8s %-30s %s\n" "name" "term" "attacks" "violated" "verdict";
  List.iter
    (fun { name; term; violated; attacks; as_expected; _ } ->
      Printf.printf "  %-20s %-22s %8d %-30s %s\n" name (P.to_string term) attacks
        (if violated = [] then "-" else String.concat "," violated)
        (if as_expected then "as expected" else "UNEXPECTED"))
    symbolic;
  Printf.printf "\nExecutable (interpreter vs static estimate):\n";
  Printf.printf "  %-18s %3s/%-2s %-12s %6s %18s %10s %22s %s\n" "name" "srv" "AS"
    "status" "msgs" "msg envelope" "compute" "compute envelope" "verdict";
  List.iter
    (fun { e_name; servers; as_clusters; status; messages; compute; estimate; within_estimate; _ } ->
      Printf.printf "  %-18s %3d/%-2d %-12s %6d %8s[%3d,%3d] %8.1fms %9s[%6.1f,%6.1f] %s\n"
        e_name servers as_clusters
        (Format.asprintf "%a" Core.Report.pp_status status)
        messages "" estimate.Copland.Estimate.messages_min
        estimate.Copland.Estimate.messages_max (Sim.Time.to_ms compute) ""
        (Sim.Time.to_ms estimate.Copland.Estimate.compute_min)
        (Sim.Time.to_ms estimate.Copland.Estimate.compute_max)
        (if within_estimate then "within" else "OUTSIDE"))
    executable;
  Printf.printf "\n%s\n" (if clean r then "all gates clean" else "GATE VIOLATIONS — see above")

let status_str = function
  | Core.Report.Healthy -> "healthy"
  | Core.Report.Compromised _ -> "compromised"
  | Core.Report.Unknown _ -> "unknown"

let symbolic_to_json { name; term; weakened; expected; violated; attacks; as_expected } =
  Json.Obj
    [
      ("name", Json.Str name);
      ("term", Json.Str (P.to_string term));
      ("weakened", Json.Bool weakened);
      ("expected_violations", Json.List (List.map (fun s -> Json.Str s) expected));
      ("violated", Json.List (List.map (fun s -> Json.Str s) violated));
      ("attacks", Json.Int attacks);
      ("as_expected", Json.Bool as_expected);
    ]

let exec_to_json
    { e_name; e_term; servers; as_clusters; status; leaves; messages; drops; compute;
      estimate; within_estimate } =
  Json.Obj
    [
      ("name", Json.Str e_name);
      ("term", Json.Str (P.to_string e_term));
      ("servers", Json.Int servers);
      ("as_clusters", Json.Int as_clusters);
      ("status", Json.Str (status_str status));
      ("leaves", Json.Int leaves);
      ("messages", Json.Int messages);
      ("drops", Json.Int drops);
      ("compute_ms", Json.Float (Sim.Time.to_ms compute));
      ( "estimate",
        Json.Obj
          [
            ("appraisals", Json.Int estimate.Copland.Estimate.appraisals);
            ("messages_min", Json.Int estimate.Copland.Estimate.messages_min);
            ("messages_max", Json.Int estimate.Copland.Estimate.messages_max);
            ("compute_min_ms", Json.Float (Sim.Time.to_ms estimate.Copland.Estimate.compute_min));
            ("compute_max_ms", Json.Float (Sim.Time.to_ms estimate.Copland.Estimate.compute_max));
          ] );
      ("within_estimate", Json.Bool within_estimate);
    ]

let to_json ({ seed; symbolic; executable } as r) =
  Json.Obj
    [
      ("experiment", Json.Str "protocols");
      ("seed", Json.Int seed);
      ("clean", Json.Bool (clean r));
      ("symbolic", Json.List (List.map symbolic_to_json symbolic));
      ("executable", Json.List (List.map exec_to_json executable));
    ]
