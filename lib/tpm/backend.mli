(** Pluggable trust backends behind one BACKEND signature.

    Three families implement {!S}:
    - {!Classic_tpm} — the hardware Trust Module of the paper
      ({!Trust_module} verbatim; byte-identical on the wire to the
      pre-backend tree).  State is sealed in the device: save/restore
      always fail, the binding epoch is pinned at 0.
    - {!Evtpm_backend} — the migratable ephemeral vTPM ({!Evtpm}).
      Serializable state with an explicit binding epoch; restoring marks
      the module stale until a {!val-rebind} re-registers it with the
      Privacy CA.
    - {!Cvm_backend} — the CVM hardware-report device ({!Cvm_device}),
      verified against a {!Platform_root} instead of the operator's CA.

    The dynamic {!type-t} packs "some backend" existentially so servers,
    monitors and the attestation client dispatch uniformly. *)

type kind = Classic | Evtpm | Cvm_report

val all_kinds : kind list
val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val pp_kind : Format.formatter -> kind -> unit

(** The BACKEND signature. *)
module type S = sig
  type t

  val kind : kind
  val identity_public : t -> Crypto.Rsa.public
  val pcrs : t -> Pcr.t
  val random_nonce : t -> string
  val drbg : t -> Crypto.Drbg.t
  val num_registers : t -> int
  val read_registers : t -> int array
  val write_register : t -> int -> int -> unit
  val add_register : t -> int -> int -> unit
  val clear_registers : t -> unit
  val begin_session : t -> Trust_module.session
  val sign_with_session : t -> Trust_module.session -> string -> string option
  val end_session : t -> Trust_module.session -> unit
  val quote_batch : t -> Trust_module.session -> root:string -> nonce:string -> string option
  val sign_identity : t -> string -> string
  val decrypt_identity : t -> string -> string option

  val binding_epoch : t -> int
  (** 0 forever on immobile backends; bumped by {!rebind} on migratable
      ones. *)

  val stale : t -> bool
  (** True between a [restore_state] and the next [rebind]. *)

  val save_state : t -> (string, string) result
  val restore_state : t -> string -> (unit, string) result
  val rebind : t -> int
end

module Classic_tpm : S with type t = Trust_module.t
module Evtpm_backend : S with type t = Evtpm.t
module Cvm_backend : S with type t = Cvm_device.t

(** {2 Dynamic dispatch} *)

type t

type device =
  | Classic_dev of Trust_module.t
  | Evtpm_dev of Evtpm.t
  | Cvm_dev of Cvm_device.t

val classic : Trust_module.t -> t
val evtpm : Evtpm.t -> t
val cvm : Cvm_device.t -> t

val device : t -> device
val as_classic : t -> Trust_module.t option
val as_evtpm : t -> Evtpm.t option
val as_cvm : t -> Cvm_device.t option

val kind : t -> kind
val identity_public : t -> Crypto.Rsa.public
val pcrs : t -> Pcr.t
val random_nonce : t -> string
val drbg : t -> Crypto.Drbg.t
val num_registers : t -> int
val read_registers : t -> int array
val write_register : t -> int -> int -> unit
val add_register : t -> int -> int -> unit
val clear_registers : t -> unit
val begin_session : t -> Trust_module.session
val sign_with_session : t -> Trust_module.session -> string -> string option
val end_session : t -> Trust_module.session -> unit
val quote_batch : t -> Trust_module.session -> root:string -> nonce:string -> string option
val sign_identity : t -> string -> string
val decrypt_identity : t -> string -> string option
val binding_epoch : t -> int
val stale : t -> bool
val save_state : t -> (string, string) result
val restore_state : t -> string -> (unit, string) result
val rebind : t -> int
