(** Invariant oracles checked against every replayed scenario.

    The oracles are deliberately one-sided: each only flags behaviour the
    system {e guarantees} can never happen, so a violation is a real bug (or
    a planted one), never generator noise.

    - [time-monotone] — the engine clock never runs backwards, and an
      [Advance n] op moves it forward by exactly [n] ms.
    - [cache-consistency] — a verdict served from the verdict cache (its
      [produced_at] predates the op) is always [Healthy], and the model
      cache — which mirrors every store, TTL change, lifecycle transition,
      image corruption and unhealthy observation — agrees the entry was
      still valid.  Catches skipped invalidations (e.g. on migrate) and
      TTL-expiry bugs.
    - [verdict-signed] — every [Ok] controller report verifies under the
      controller's public key, binding vid, property and our nonce.
    - [terminated-vm] — an attestation of a terminated VM never comes back
      [Healthy].
    - [ledger-accounting] — ledger entries are non-negative, and a
      cache-served attestation charges no AS-side ledger labels (a hit must
      stay controller-local).
    - [net-accounting] — network message/byte/drop counters are monotone
      and drops never exceed messages.
    - [audit-honest] — with auditing on and an honest operator, gossiping
      auditors accumulate zero equivocation evidence.
    - [vtpm-stale-binding] — a freshly measured (not cache-served) verdict
      for a VM whose host's vTPM state was restored but not yet rebound is
      never [Healthy]: restored state must stay convictable until the
      explicit Privacy-CA re-registration.
    - [protocol-verifier-agreement] — the per-phrase Dolev-Yao engine
      agrees with the phrase's syntactic strength: an unweakened phrase
      proves every property, a weakened one yields a concrete attack.
    - [protocol-estimate] — on a clean interpreter run (accepted, no
      adversary, no drops, no leaf errors) the measured wire messages and
      non-network compute stay inside the static {!Copland.Estimate}
      envelope.
    - [monitor-freshness] — with continuous monitoring armed and no
      network adversary, no tracked VM (monitored, alive, not suspended)
      goes unprobed past twice the period plus a fixed slack, and every
      probe fires within that bound of the previous attempt.  Catches a
      monitor that only wakes at op boundaries instead of chunking its
      catch-up through [Advance].
    - [monitor-storm-detect] — a [Monitor_storm] compromise planted while
      the monitor is armed and the network honest must surface as a
      Compromised verdict within one period of any cached Healthy verdicts
      aging out (period + cache TTL + slack). *)

type violation = { oracle : string; op_index : int; detail : string }

val pp_violation : Format.formatter -> violation -> unit

(** What the replayer observed while executing one op. *)
type attest_obs = {
  a_vid : string;
  a_property : Core.Property.t;
  a_nonce : string;
  a_result : (Core.Protocol.controller_report, string) result;
  a_host : string option;  (** the VM's host at request time, when known *)
}

(** What the replayer observed running one protocol phrase. *)
type protocol_obs = {
  p_phrase : Copland.Phrase.t;
  p_accepted : bool;  (** type-checked against the live cloud and executed *)
  p_status : string;  (** merged verdict tag ["H"]/["C"]/["U"], ["-"] when rejected *)
  p_leaves : int;  (** leaf appraisals executed *)
  p_all_ok : bool;  (** every executed leaf delivered a report *)
  p_messages : int;  (** wire messages sent during the run *)
  p_drops : int;  (** wire drops during the run *)
  p_compute : Sim.Time.t;  (** non-network ledger total *)
  p_estimate : Copland.Estimate.t option;  (** static envelope, when accepted *)
  p_faulty : bool;  (** a network adversary was active during the run *)
}

(** One catch-up re-attestation the continuous monitor ran. *)
type monitor_probe = {
  mp_vid : string;
  mp_started : Sim.Time.t;  (** engine clock when the probe fired *)
  mp_attest : attest_obs;
}

(** What the replayer's continuous monitor did during one op. *)
type monitor_obs = {
  m_period : int;  (** re-attestation period (ms) in force after the op; 0 = off *)
  m_probes : monitor_probe list;  (** catch-up probes, in firing order *)
  m_storm : string list;  (** vids a [Monitor_storm] op planted malware in *)
}

type op_obs = {
  index : int;
  op : Op.op;
  started_at : Sim.Time.t;  (** engine clock when the op began *)
  finished_at : Sim.Time.t;
  attests : attest_obs list;  (** results, in request order *)
  target : string option;  (** resolved vid of a lifecycle/infect op *)
  lifecycle_ok : bool;  (** lifecycle op succeeded (true for non-lifecycle) *)
  launched : (string * int * bool) option;  (** (vid, image idx, monitored) *)
  ledger : (string * Sim.Time.t) list;  (** entries of this op's ledger *)
  net_messages : int;  (** cumulative, after the op *)
  net_bytes : int;
  net_drops : int;
  audit_evidence : int;  (** cumulative auditor evidence count *)
  vtpm_stale : string list;  (** hosts whose vTPM this op left holding restored state *)
  vtpm_rebound : string list;  (** hosts this op re-registered with the Privacy CA *)
  protocol : protocol_obs option;  (** set only for [Protocol_term] ops *)
  monitor : monitor_obs option;
      (** set for monitor ops and whenever the monitor is armed; [None] on
          histories that never touch the monitor, keeping their digests
          byte-identical to the pre-monitor grammar *)
}

type t

val create : controller_key:Crypto.Rsa.public -> unit -> t

val observe : t -> op_obs -> violation list
(** Feed one op observation; returns the violations it triggered (also
    retained for {!all}). *)

val all : t -> violation list
(** Every violation so far, oldest first. *)

val digest_of_obs : op_obs -> string
(** Stable summary line for the determinism digest. *)
