let poisson ~engine ~prng ~rate_per_s ~until fire =
  if rate_per_s <= 0.0 then invalid_arg "Load.poisson: rate must be positive";
  let interarrival () =
    (* U in (0, 1]: never take log 0. *)
    let u = 1.0 -. Sim.Prng.float prng 1.0 in
    let dt_us = -.log u /. rate_per_s *. 1_000_000.0 in
    max 1 (int_of_float (Float.round dt_us))
  in
  (* Check the horizon before scheduling, not inside the fired event: the
     sharded driver's epoch loop runs until every shard's queue is empty,
     so a dangling past-horizon arrival event would keep the barrier loop
     alive one epoch longer than the work it contains. *)
  let rec arm () =
    let at = Sim.Engine.now engine + interarrival () in
    if at <= until then
      ignore
        (Sim.Engine.schedule engine ~at (fun () ->
             fire ();
             arm ())
          : Sim.Engine.handle)
  in
  arm ()
