type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64, used only to expand the seed into the xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let st = ref (bits64 t) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the positive 62-bit range avoids modulo bias. *)
  let rec go () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    let r = v mod bound in
    if v - r + (bound - 1) < 0 then go () else r
  in
  go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u = 0.0 then nonzero () else u
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  b

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 choices in
  if total <= 0 then invalid_arg "Prng.weighted: no positive weight";
  let x = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Prng.weighted: no positive weight"
    | (w, v) :: rest ->
        let acc = acc + max 0 w in
        if x < acc then v else go acc rest
  in
  go 0 choices

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
