type t = { mutable key : string; mutable counter : int }

let create ~seed = { key = Sha256.digest ("drbg-seed|" ^ seed); counter = 0 }

let of_prng prng = create ~seed:(Bytes.unsafe_to_string (Sim.Prng.bytes prng 32))

let zero_nonce = String.make 12 '\x00'

let random_bytes t n =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    t.counter <- t.counter + 1;
    Buffer.add_string buf (Chacha20.block ~key:t.key ~nonce:zero_nonce ~counter:t.counter);
    (* Ratchet the key forward every 2^20 blocks for backtracking resistance;
       cheap enough to just do when the counter would wrap 32 bits. *)
    if t.counter land 0xFFFFF = 0 then begin
      t.key <- Sha256.digest t.key;
      t.counter <- 0
    end
  done;
  Buffer.sub buf 0 n

let random_u64 t =
  let s = random_bytes t 8 in
  let acc = ref 0L in
  String.iter (fun c -> acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code c))) s;
  !acc

let random_int t bound =
  if bound <= 0 then invalid_arg "Drbg.random_int: bound must be positive";
  let rec go () =
    let v = Int64.to_int (Int64.shift_right_logical (random_u64 t) 2) in
    let r = v mod bound in
    if v - r + (bound - 1) < 0 then go () else r
  in
  go ()

let nonce t = random_bytes t 16

let reseed t extra = t.key <- Sha256.digest_list [ t.key; extra ]
