type params = { round : Sim.Time.t; first_set : int; group : int; start_round : int }

let default_params = { round = Sim.Time.ms 10; first_set = 0; group = 16; start_round = 4 }

let target_sets p = List.init p.group (fun i -> p.first_set + i)

let thrash cache ~owner p =
  List.iter (fun set -> Hypervisor.Cache.fill_set cache ~owner ~set) (target_sets p)

(* The sender wakes just after each round boundary, emits (or not), and
   sleeps to the next boundary. *)
let sender_program cache ~owner ?(params = default_params) ~bits () =
  let queue = ref bits in
  let p = params in
  Hypervisor.Program.make (fun ~now ->
      let k = now / p.round in
      if k < p.start_round then
        Hypervisor.Program.Sleep ((p.start_round * p.round) + Sim.Time.us 100 - now)
      else begin
        match !queue with
        | [] -> Hypervisor.Program.Halt
        | bit :: rest ->
            queue := rest;
            if bit then thrash cache ~owner p;
            Hypervisor.Program.Sleep (((k + 1) * p.round) + Sim.Time.us 100 - now)
      end)

(* The receiver probes (and thereby re-primes) shortly before each round
   boundary. *)
let receiver_program cache ~owner ?(params = default_params) () =
  let p = params in
  let capacity = p.group * Hypervisor.Cache.ways cache in
  let results = ref [] in
  let primed = ref false in
  let prog =
    Hypervisor.Program.make (fun ~now ->
        if not !primed then begin
          List.iter (fun set -> Hypervisor.Cache.fill_set cache ~owner ~set) (target_sets p);
          primed := true;
          let k = now / p.round in
          Hypervisor.Program.Sleep (((k + 1) * p.round) - Sim.Time.us 200 - now)
        end
        else begin
          let k = now / p.round in
          let misses = Hypervisor.Cache.probe cache ~owner ~sets:(target_sets p) in
          results := (k, misses > capacity / 2) :: !results;
          Hypervisor.Program.Sleep (p.round)
        end)
  in
  (prog, fun () -> List.rev !results)

let received_bits ?(params = default_params) ~count stream =
  let p = params in
  List.filter_map
    (fun (round, bit) ->
      if round >= p.start_round && round < p.start_round + count then Some bit else None)
    stream

let sender_vm cache ~vid ~owner ?(params = default_params) ~bits () =
  Hypervisor.Vm.make ~vid ~owner ~image:Hypervisor.Image.ubuntu
    ~flavor:Hypervisor.Flavor.small
    ~programs:(fun () -> [ sender_program cache ~owner:vid ~params ~bits () ])
    ()
