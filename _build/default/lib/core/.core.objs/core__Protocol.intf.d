lib/core/protocol.mli: Crypto Format Net Property Report
