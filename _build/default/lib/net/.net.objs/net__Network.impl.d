lib/net/network.ml: Hashtbl List Sim String
