(* Protocol-phrase tests: codec, typing, static estimates, the Controller
   interpreter (including the default phrase's byte-identical wire pin) and
   the per-phrase Dolev-Yao engine. *)

open Core

let hex s = Crypto.Hexs.encode (Crypto.Sha256.digest s)

let parse line =
  match Copland.Phrase.of_string line with
  | Ok p -> p
  | Error e -> Alcotest.fail (Printf.sprintf "phrase %S did not parse: %s" line e)

(* --- Codec ----------------------------------------------------------------- *)

let roundtrip_lines =
  [
    "a0.0";
    "a-3.2";
    "(a0.0>a1.0)";
    "(a0.0&Aa1.1)";
    "(a0.0&Oa1.1)";
    "((a0.0>a0.1)&Qa1.0)";
    "d1:a2.0";
    "d-1:(a2.0>a2.1)";
    "l0:a0.1";
    "l-0:a0.1";
    "d1:l2:(a2.0&Aa2.3)";
    "(l0:a0.0>d1:(a1.0&Q(a1.1>a1.2)))";
  ]

let test_codec_roundtrip () =
  List.iter
    (fun line ->
      let p = parse line in
      Alcotest.(check string) ("canonical " ^ line) line (Copland.Phrase.to_string p);
      match Copland.Phrase.of_string (Copland.Phrase.to_string p) with
      | Ok p' ->
          Alcotest.(check bool) ("roundtrip " ^ line) true (Copland.Phrase.equal p p')
      | Error e -> Alcotest.fail e)
    roundtrip_lines

let test_codec_rejects_garbage () =
  List.iter
    (fun line ->
      match Copland.Phrase.of_string line with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" line)
      | Error _ -> ())
    [
      "";
      "a0";
      "a0.";
      "a.0";
      "a0.0x";
      "a0.0 ";
      " a0.0";
      "(a0.0>a1.0";
      "(a0.0>a1.0))";
      "(a0.0a1.0)";
      "(a0.0&Za1.0)";
      "(a0.0&a1.0)";
      "d1a0.0";
      "d:a0.0";
      "l:a0.0";
      "x0.0";
      "a--0.0";
    ]

let test_phrase_helpers () =
  let p = parse "(l0:a0.0>d1:(a1.0&Q(a1.1>a1.2)))" in
  Alcotest.(check int) "appraisals" 4 (Copland.Phrase.appraisals p);
  Alcotest.(check bool) "not weakened" false (Copland.Phrase.weakened p);
  Alcotest.(check bool) "weakened nonce" true (Copland.Phrase.weakened (parse "a-0.0"));
  Alcotest.(check bool) "weakened deleg" true (Copland.Phrase.weakened (parse "d-0:a0.0"));
  Alcotest.(check bool) "weakened layer" true (Copland.Phrase.weakened (parse "l-0:a0.0"));
  let leaves = Copland.Phrase.leaves p in
  Alcotest.(check (list int)) "leaf order" [ 0; 1; 2; 3 ]
    (List.map (fun l -> l.Copland.Phrase.index) leaves);
  let last = List.nth leaves 3 in
  Alcotest.(check (option (pair int bool))) "deleg ctx" (Some (1, true)) last.Copland.Phrase.deleg;
  Alcotest.(check (option (pair int bool)))
    "layer ctx of first" (Some (0, true))
    (List.hd leaves).Copland.Phrase.layer

(* --- Typing ---------------------------------------------------------------- *)

let ctx =
  {
    Copland.Typing.vms = 3;
    clusters = 2;
    properties = 4;
    cluster_of = (fun s -> if s = 2 then 1 else 0);
    host_of = (fun s -> s);
  }

let typing_ok line =
  match Copland.Typing.check ctx (parse line) with
  | Ok () -> ()
  | Error e ->
      Alcotest.fail
        (Printf.sprintf "%s should type-check: %s" line (Copland.Typing.error_to_string e))

let typing_err line expected =
  match Copland.Typing.check ctx (parse line) with
  | Ok () -> Alcotest.fail (Printf.sprintf "%s should be ill-typed" line)
  | Error e -> Alcotest.(check bool) (line ^ " error") true (expected e)

let test_typing () =
  typing_ok "a0.0";
  typing_ok "(a0.0>a2.3)";
  typing_ok "d1:a2.0";
  typing_ok "d0:(a0.0&Aa1.0)";
  typing_ok "l0:a0.1";
  typing_ok "l2:a2.0";
  typing_ok "d1:l2:a2.0";
  typing_err "a5.0" (function Copland.Typing.Bad_slot 5 -> true | _ -> false);
  typing_err "a0.9" (function Copland.Typing.Bad_property 9 -> true | _ -> false);
  typing_err "d9:a0.0" (function Copland.Typing.Bad_cluster 9 -> true | _ -> false);
  typing_err "d1:a0.0" (function
    | Copland.Typing.Cluster_mismatch { slot = 0; expected = 1; actual = 0 } -> true
    | _ -> false);
  typing_err "d0:d0:a0.0" (function Copland.Typing.Nested_delegation -> true | _ -> false);
  typing_err "l0:a1.0" (function
    | Copland.Typing.Host_mismatch { slot = 1; layer_slot = 0 } -> true
    | _ -> false)

(* --- Dolev-Yao engine ------------------------------------------------------ *)

let violated_ids line = Copland.Dy.violated (Copland.Dy.verify (parse line))

let test_dy_default_holds () =
  let r = Copland.Dy.verify Copland.Phrase.default in
  Alcotest.(check bool) "all six properties hold" true (Copland.Dy.holds r);
  Alcotest.(check int) "no attacks" 0 (List.length r.Copland.Dy.attacks);
  Alcotest.(check (list string)) "eight checks, canonical order"
    Verifier.Properties.check_ids
    (List.map (fun c -> c.Verifier.Properties.id) r.Copland.Dy.checks)

let test_dy_shapes_hold () =
  (* Every *unweakened* shape keeps all properties, whatever the topology
     of composition. *)
  List.iter
    (fun line ->
      let r = Copland.Dy.verify (parse line) in
      Alcotest.(check (list string)) (line ^ " holds") [] (Copland.Dy.violated r))
    [ "(a0.0>a1.0)"; "(a0.0&Aa1.1)"; "d1:a2.0"; "l0:a0.1"; "d1:l2:(a2.0&Qa2.1)" ]

let test_dy_dropped_nonce () =
  let r = Copland.Dy.verify (parse "a-0.0") in
  Alcotest.(check (list string)) "only freshness breaks" [ "freshness" ]
    (Copland.Dy.violated r);
  match r.Copland.Dy.attacks with
  | [] -> Alcotest.fail "expected a concrete replay attack"
  | a :: _ ->
      Alcotest.(check string) "attack on freshness" "freshness" a.Copland.Dy.check_id;
      (* The replayed message is session-1 traffic the attacker already
         holds: the proof must be a direct interception. *)
      (match a.Copland.Dy.proof with
      | Verifier.Deduction.Known _ -> ()
      | Verifier.Deduction.Build _ -> Alcotest.fail "replay should be intercepted, not built");
      Alcotest.(check bool) "attack pretty-prints" true
        (String.length (Format.asprintf "%a" Copland.Dy.pp_attack a) > 0)

let test_dy_skipped_layer () =
  let violated = violated_ids "l-0:a0.1" in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " violated") true (List.mem id violated))
    [ "secrecy-channel-keys"; "secrecy-payloads"; "integrity"; "auth-as-server" ];
  Alcotest.(check bool) "freshness unaffected" false (List.mem "freshness" violated);
  (* The checked form of the same phrase is safe. *)
  Alcotest.(check (list string)) "checked layer holds" [] (violated_ids "l0:a0.1")

let test_dy_unauth_deleg () =
  let violated = violated_ids "d-1:a2.0" in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " violated") true (List.mem id violated))
    [ "secrecy-payloads"; "integrity"; "auth-controller-as" ];
  Alcotest.(check bool) "channel keys stay secret" false
    (List.mem "secrecy-channel-keys" violated);
  Alcotest.(check (list string)) "authenticated deleg holds" [] (violated_ids "d1:a2.0")

let test_dy_attacks_have_proofs () =
  (* Every weakened phrase yields at least one attack, and every attack's
     proof derivation is non-empty and printable. *)
  List.iter
    (fun line ->
      let r = Copland.Dy.verify (parse line) in
      Alcotest.(check bool) (line ^ " attacked") true (List.length r.Copland.Dy.attacks > 0);
      List.iter
        (fun a ->
          let s = Format.asprintf "%a" Copland.Dy.pp_attack a in
          Alcotest.(check bool) "printable" true (String.length s > 10))
        r.Copland.Dy.attacks)
    [ "a-0.0"; "l-0:a0.1"; "d-1:a2.0"; "(a-0.0>l-1:a1.0)" ]

let test_dy_agrees_with_fixed_model () =
  (* The generated model must agree with the hand-written one on the flows
     both cover: the default phrase is the secure fixed model (everything
     holds), and dropping nonces violates freshness in both. *)
  Alcotest.(check bool) "fixed secure model holds" true
    (Verifier.Properties.holds (Verifier.Properties.run Verifier.Model.secure));
  Alcotest.(check bool) "generated default holds" true
    (Copland.Dy.holds (Copland.Dy.verify Copland.Phrase.default));
  let fixed_no_nonces =
    List.filter_map
      (fun c ->
        match c.Verifier.Properties.outcome with
        | Verifier.Properties.Violated _ -> Some c.Verifier.Properties.id
        | Verifier.Properties.Holds -> None)
      (Verifier.Properties.run Verifier.Model.no_nonces)
  in
  Alcotest.(check bool) "fixed model: no_nonces breaks freshness" true
    (List.mem "freshness" fixed_no_nonces);
  Alcotest.(check bool) "generated model: no nonce breaks freshness" true
    (List.mem "freshness" (violated_ids "a-0.0"))

(* --- Interpreter ----------------------------------------------------------- *)

let launch ctl ~properties =
  match
    Controller.launch ctl
      { Controller.owner = "copland"; image = "cirros"; flavor = "small";
        properties; workload = ""; pins = [] }
  with
  | Ok info -> info.Commands.vid
  | Error _ -> Alcotest.fail "launch failed"

let traffic_digest net =
  hex
    (String.concat "|"
       (List.map
          (fun (m : Net.Network.message) -> m.Net.Network.src ^ ">" ^ m.Net.Network.dst ^ ":" ^ m.Net.Network.payload)
          (Net.Network.recorded net)))

(* The default phrase must compile to exactly today's hardcoded flow: same
   wire bytes, pinned by digest against a direct [Controller.attest] run on
   an identically-seeded cloud. *)
let pinned_default_wire_digest =
  "b383830297d1001bdae057ed74839bb943eb71614452ded6e62b61fde722824c"

let build_pin_cloud () =
  let cloud = Cloud.build ~config:{ Cloud.default_config with key_bits = 512 } () in
  let ctl = Cloud.controller cloud in
  let vid = launch ctl ~properties:Property.all in
  (cloud, ctl, vid)

let test_interp_default_byte_identical () =
  (* Cloud A: the hardcoded flow. *)
  let _cloud_a, ctl_a, vid_a = build_pin_cloud () in
  let drbg_a = Crypto.Drbg.create ~seed:"copland-pin" in
  let direct, _ =
    Controller.attest ctl_a
      { Protocol.vid = vid_a; property = Property.Startup_integrity;
        nonce = Crypto.Drbg.nonce drbg_a }
  in
  (match direct with Ok _ -> () | Error e -> Alcotest.fail e);
  let digest_a = traffic_digest (Cloud.net _cloud_a) in
  (* Cloud B: the interpreter on the default phrase, same seeds. *)
  let cloud_b, _ctl_b, vid_b = build_pin_cloud () in
  let drbg_b = Crypto.Drbg.create ~seed:"copland-pin" in
  let outcome =
    match Copland.Interp.run ~drbg:drbg_b cloud_b ~vids:[| vid_b |] Copland.Phrase.default with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "one leaf" 1 (List.length outcome.Copland.Interp.leaves);
  (match outcome.Copland.Interp.status with
  | Report.Healthy -> ()
  | s -> Alcotest.fail (Format.asprintf "unexpected status %a" Report.pp_status s));
  let digest_b = traffic_digest (Cloud.net cloud_b) in
  Alcotest.(check string) "default phrase wire-identical to hardcoded flow" digest_a digest_b;
  Alcotest.(check string) "wire digest pinned" pinned_default_wire_digest digest_b

let ledger_compute ledger =
  Ledger.total ledger - Ledger.of_label ledger "network" - Ledger.of_label ledger "as:network"

let run_ok ?drbg cloud ~vids line =
  match Copland.Interp.run ?drbg cloud ~vids (parse line) with
  | Ok o -> o
  | Error e -> Alcotest.fail (line ^ ": " ^ e)

let test_interp_estimate_bounds () =
  let cloud =
    Cloud.build
      ~config:
        { Cloud.default_config with key_bits = 512; num_servers = 3; num_attestation_servers = 2 }
      ()
  in
  let ctl = Cloud.controller cloud in
  let vids = Array.init 3 (fun _ -> launch ctl ~properties:Property.all) in
  let net = Cloud.net cloud in
  List.iter
    (fun line ->
      let phrase = parse line in
      let env = Copland.Env.of_cloud cloud ~vids in
      let est = Copland.Estimate.of_phrase env phrase in
      let before_msgs = Net.Network.message_count net in
      let before_drops = Net.Network.drop_count net in
      let outcome = run_ok cloud ~vids line in
      let msgs = Net.Network.message_count net - before_msgs in
      let compute = ledger_compute outcome.Copland.Interp.ledger in
      Alcotest.(check bool) (line ^ " no drops") true
        (Net.Network.drop_count net = before_drops);
      Alcotest.(check bool)
        (Printf.sprintf "%s messages %d within [%d, %d]" line msgs est.Copland.Estimate.messages_min
           est.Copland.Estimate.messages_max)
        true
        (msgs >= est.Copland.Estimate.messages_min && msgs <= est.Copland.Estimate.messages_max);
      Alcotest.(check bool)
        (Printf.sprintf "%s compute %d within [%d, %d]" line compute
           est.Copland.Estimate.compute_min est.Copland.Estimate.compute_max)
        true
        (compute >= est.Copland.Estimate.compute_min
        && compute <= est.Copland.Estimate.compute_max))
    [
      "a0.0";
      "a0.1";
      "(a0.0>a1.2)";
      "(a0.0&A(a1.0>a2.3))";
      "l0:a0.1";
      (* slots 0 and 2 are round-robin routed to cluster 0; slot 1 to 1 *)
      "d0:(a0.0&Qa2.0)";
      "d1:a1.0";
    ]

let test_interp_rejects_ill_typed () =
  let cloud = Cloud.build ~config:{ Cloud.default_config with key_bits = 512 } () in
  let ctl = Cloud.controller cloud in
  let vid = launch ctl ~properties:Property.all in
  let net = Cloud.net cloud in
  let before = Net.Network.message_count net in
  List.iter
    (fun line ->
      match Copland.Interp.run cloud ~vids:[| vid |] (parse line) with
      | Ok _ -> Alcotest.fail (line ^ " should be rejected")
      | Error _ -> ())
    [ "a1.0"; "a0.7"; "d3:a0.0"; "d0:d0:a0.0" ];
  Alcotest.(check int) "no wire traffic for ill-typed phrases" before
    (Net.Network.message_count net)

let test_interp_routed_misroute_is_hard () =
  let cloud =
    Cloud.build
      ~config:
        { Cloud.default_config with key_bits = 512; num_servers = 2; num_attestation_servers = 2 }
      ()
  in
  let ctl = Cloud.controller cloud in
  let vid = launch ctl ~properties:Property.all in
  let host = Option.get (Controller.vm_host ctl ~vid) in
  let cluster = Controller.cluster_of_host ctl ~host in
  let wrong = 1 - cluster in
  (match
     Controller.attest_routed ctl ~cluster
       { Protocol.vid; property = Property.Startup_integrity; nonce = "n-route-1" }
   with
  | Ok _, _ -> ()
  | Error e, _ -> Alcotest.fail ("correct route should succeed: " ^ e));
  match
    Controller.attest_routed ctl ~cluster:wrong
      { Protocol.vid; property = Property.Startup_integrity; nonce = "n-route-2" }
  with
  | Ok _, _ -> Alcotest.fail "misroute must fail"
  | Error e, _ ->
      Alcotest.(check bool) "misroute error names the delegation" true
        (String.length e >= 10 && String.sub e 0 10 = "delegation")

(* Layered attestation over a restored-but-not-rebound vTPM host: the
   checked layer refuses to run the body; the unchecked layer trusts the
   stale host and only the AS-level stale-binding detection saves it. *)
let test_interp_layer_stale_backend () =
  let cloud =
    Cloud.build
      ~config:
        {
          Cloud.default_config with
          key_bits = 512;
          num_servers = 1;
          backend_of = (fun _ -> Tpm.Backend.Evtpm);
        }
      ()
  in
  let ctl = Cloud.controller cloud in
  let vid = launch ctl ~properties:Property.all in
  let host = Option.get (Controller.vm_host ctl ~vid) in
  (* Fresh backend: the checked layer passes through and appraises. *)
  let healthy = run_ok cloud ~vids:[| vid |] "l0:a0.0" in
  Alcotest.(check int) "body ran" 1 (List.length healthy.Copland.Interp.leaves);
  (match healthy.Copland.Interp.status with
  | Report.Healthy -> ()
  | s -> Alcotest.fail (Format.asprintf "fresh layer: %a" Report.pp_status s));
  Alcotest.(check bool) "layer check charged" true
    (Ledger.of_label healthy.Copland.Interp.ledger "layer-appraise" > 0);
  (* Save, restore, do NOT rebind: stale state. *)
  let state = Result.get_ok (Cloud.vtpm_save cloud ~server:host) in
  (match Cloud.vtpm_restore cloud ~server:host state with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let stale = run_ok cloud ~vids:[| vid |] "l0:a0.0" in
  Alcotest.(check int) "checked layer skips the body" 0
    (List.length stale.Copland.Interp.leaves);
  (match stale.Copland.Interp.status with
  | Report.Compromised _ -> ()
  | s -> Alcotest.fail (Format.asprintf "stale layer: %a" Report.pp_status s));
  (* The weakened layer runs the body anyway; the AS-level epoch check
     still catches the stale binding, so the verdict matches — but only
     because the lower layer is paranoid.  The leaves prove the body ran. *)
  let unchecked = run_ok cloud ~vids:[| vid |] "l-0:a0.0" in
  Alcotest.(check int) "unchecked layer runs the body" 1
    (List.length unchecked.Copland.Interp.leaves);
  (match unchecked.Copland.Interp.status with
  | Report.Compromised _ -> ()
  | s -> Alcotest.fail (Format.asprintf "unchecked stale: %a" Report.pp_status s));
  (* Rebind: the layer passes again. *)
  (match Cloud.vtpm_rebind cloud ~server:host with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let rebound = run_ok cloud ~vids:[| vid |] "l0:a0.0" in
  match rebound.Copland.Interp.status with
  | Report.Healthy -> ()
  | s -> Alcotest.fail (Format.asprintf "rebound layer: %a" Report.pp_status s)

(* Merge policies over a mixed-health fleet: server-2 runs a vTPM restored
   without rebinding (every appraisal of its VM is Compromised), server-1
   stays pristine. *)
let test_interp_merge_policies () =
  let cloud =
    Cloud.build
      ~config:
        {
          Cloud.default_config with
          key_bits = 512;
          num_servers = 2;
          backend_of = (fun i -> if i = 1 then Tpm.Backend.Evtpm else Tpm.Backend.Classic);
        }
      ()
  in
  let ctl = Cloud.controller cloud in
  let v1 = launch ctl ~properties:Property.all in
  let v2 = launch ctl ~properties:Property.all in
  let host_of v = Option.get (Controller.vm_host ctl ~vid:v) in
  (* Order slots so slot 0 is the classic (healthy) server's VM. *)
  let healthy_vid, stale_vid, stale_host =
    if String.equal (host_of v1) "server-2" then (v2, v1, host_of v1)
    else (v1, v2, host_of v2)
  in
  Alcotest.(check bool) "one VM per server" true
    (not (String.equal (host_of healthy_vid) (host_of stale_vid)));
  let vids = [| healthy_vid; stale_vid |] in
  let state = Result.get_ok (Cloud.vtpm_save cloud ~server:stale_host) in
  (match Cloud.vtpm_restore cloud ~server:stale_host state with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let status line =
    (run_ok cloud ~vids line).Copland.Interp.status
  in
  (match status "(a0.0&Aa1.0)" with
  | Report.Compromised _ -> ()
  | s -> Alcotest.fail (Format.asprintf "All: %a" Report.pp_status s));
  (match status "(a0.0&Oa1.0)" with
  | Report.Healthy -> ()
  | s -> Alcotest.fail (Format.asprintf "Any: %a" Report.pp_status s));
  (* Quorum of two with one healthy: no strict majority. *)
  (match status "(a0.0&Qa1.0)" with
  | Report.Compromised _ -> ()
  | s -> Alcotest.fail (Format.asprintf "Quorum 1/2: %a" Report.pp_status s));
  (* Three leaves, two healthy: majority. *)
  match status "((a0.0>a0.1)&Qa1.0)" with
  | Report.Healthy -> ()
  | s -> Alcotest.fail (Format.asprintf "Quorum 2/3: %a" Report.pp_status s)

let test_estimate_shape () =
  let cloud = Cloud.build ~config:{ Cloud.default_config with key_bits = 512 } () in
  let ctl = Cloud.controller cloud in
  let vids = Array.init 2 (fun _ -> launch ctl ~properties:Property.all) in
  let env = Copland.Env.of_cloud cloud ~vids in
  let est line = Copland.Estimate.of_phrase env (parse line) in
  let a = est "a0.0" and s = est "(a0.0>a1.0)" in
  Alcotest.(check int) "seq sums appraisals" (2 * a.Copland.Estimate.appraisals)
    s.Copland.Estimate.appraisals;
  Alcotest.(check int) "seq sums message floor" (2 * a.Copland.Estimate.messages_min)
    s.Copland.Estimate.messages_min;
  Alcotest.(check bool) "layer floor is the check itself" true
    ((est "l0:a0.0").Copland.Estimate.compute_min = Costs.layer_appraise);
  Alcotest.(check bool) "layer ceiling adds the check" true
    ((est "l0:a0.0").Copland.Estimate.compute_max
    = a.Copland.Estimate.compute_max + Costs.layer_appraise);
  Alcotest.(check bool) "estimate pretty-prints" true
    (String.length (Format.asprintf "%a" Copland.Estimate.pp a) > 0)

let () =
  Alcotest.run "copland"
    [
      ( "phrase",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "codec rejects garbage" `Quick test_codec_rejects_garbage;
          Alcotest.test_case "helpers" `Quick test_phrase_helpers;
        ] );
      ("typing", [ Alcotest.test_case "judgments" `Quick test_typing ]);
      ( "dy",
        [
          Alcotest.test_case "default holds" `Quick test_dy_default_holds;
          Alcotest.test_case "shapes hold" `Quick test_dy_shapes_hold;
          Alcotest.test_case "dropped nonce" `Quick test_dy_dropped_nonce;
          Alcotest.test_case "skipped layer" `Quick test_dy_skipped_layer;
          Alcotest.test_case "unauth delegation" `Quick test_dy_unauth_deleg;
          Alcotest.test_case "attacks have proofs" `Quick test_dy_attacks_have_proofs;
          Alcotest.test_case "agrees with fixed model" `Quick test_dy_agrees_with_fixed_model;
        ] );
      ( "interp",
        [
          Alcotest.test_case "default byte-identical" `Quick test_interp_default_byte_identical;
          Alcotest.test_case "estimate bounds" `Quick test_interp_estimate_bounds;
          Alcotest.test_case "rejects ill-typed" `Quick test_interp_rejects_ill_typed;
          Alcotest.test_case "misroute is hard" `Quick test_interp_routed_misroute_is_hard;
          Alcotest.test_case "layer over stale backend" `Quick test_interp_layer_stale_backend;
          Alcotest.test_case "merge policies" `Quick test_interp_merge_policies;
          Alcotest.test_case "estimate shape" `Quick test_estimate_shape;
        ] );
    ]
