type sample = { at : Sim.Time.t; runtime : Sim.Time.t; wait : Sim.Time.t }

type t = {
  server : Hypervisor.Server.t;
  history : int;
  table : (string, sample list ref) Hashtbl.t; (* vid -> samples, newest first *)
}

let record t () =
  let sched = Hypervisor.Server.scheduler t.server in
  let now = Sim.Engine.now (Hypervisor.Server.engine t.server) in
  List.iter
    (fun (inst : Hypervisor.Server.instance) ->
      let vid = inst.vm.vid in
      let runtime = Hypervisor.Credit_scheduler.domain_runtime sched inst.domain in
      let wait = Hypervisor.Credit_scheduler.domain_waittime sched inst.domain in
      let samples =
        match Hashtbl.find_opt t.table vid with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.replace t.table vid r;
            r
      in
      samples := { at = now; runtime; wait } :: !samples;
      if List.length !samples > t.history then
        samples := List.filteri (fun i _ -> i < t.history) !samples)
    (Hypervisor.Server.instances t.server)

let create ?(sample_period = Sim.Time.ms 100) ?(history = 1200) server =
  let t = { server; history; table = Hashtbl.create 8 } in
  ignore
    (Sim.Engine.every (Hypervisor.Server.engine server) ~period:sample_period (record t)
      : Sim.Engine.handle);
  t

let sample_now t = record t ()

let cpu_usage t ~vid ~window =
  match Hypervisor.Server.find t.server vid with
  | None -> None
  | Some inst ->
      let sched = Hypervisor.Server.scheduler t.server in
      let now = Sim.Engine.now (Hypervisor.Server.engine t.server) in
      let run_now = Hypervisor.Credit_scheduler.domain_runtime sched inst.domain in
      let wait_now = Hypervisor.Credit_scheduler.domain_waittime sched inst.domain in
      let target = now - window in
      let run_base, wait_base =
        match Hashtbl.find_opt t.table vid with
        | None -> (0, 0)
        | Some samples ->
            (* Newest first: the first sample at or before the window start
               is the baseline; if history is too short, use the oldest. *)
            let rec find best = function
              | [] -> best
              | s :: rest -> if s.at <= target then (s.runtime, s.wait) else find (s.runtime, s.wait) rest
            in
            find (0, 0) !samples
      in
      Some (max 0 (run_now - run_base), max 0 (wait_now - wait_base))

let cpu_time t ~vid ~window = Option.map fst (cpu_usage t ~vid ~window)
