lib/core/interpret.mli: Monitors Property Report
