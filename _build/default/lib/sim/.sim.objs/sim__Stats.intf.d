lib/sim/stats.mli:
