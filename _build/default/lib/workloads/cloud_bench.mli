(** The six cloud service benchmarks of the paper's evaluation (database,
    file, web, app, stream, mail), modelled as compute/IO duty cycles.
    What Figures 6, 7 and 10 depend on is each service's CPU-bound vs
    IO-bound character, which these profiles reproduce. *)

type t = { name : string; run : Sim.Time.t; idle : Sim.Time.t; cpu_bound : bool }

val database : t
val file : t
val web : t
val app : t
val stream : t
val mail : t

val all : t list
val of_name : string -> t option

val duty : t -> float
(** Fraction of time the service wants the CPU when unobstructed. *)

val programs : t -> vcpus:int -> unit -> Hypervisor.Program.t list
(** One duty-cycle program per vCPU. *)

val vm :
  vid:string -> owner:string -> ?flavor:Hypervisor.Flavor.t -> t -> Hypervisor.Vm.t
(** A VM descriptor running this benchmark (default flavor: large, as in the
    paper's runtime-attestation experiment). *)
