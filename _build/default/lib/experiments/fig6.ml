type cell = { victim : string; attacker : string; relative_time : float }

type result = { cells : cell list; attackers : string list; victims : string list }

let attacker_configs =
  "idle" :: List.map (fun b -> b.Workloads.Cloud_bench.name) Workloads.Cloud_bench.all
  @ [ "CPU_avail" ]

(* One scenario: victim pinned to pCPU 0; attacker as configured. *)
let scenario (spec : Workloads.Spec.t) attacker =
  let engine = Sim.Engine.create () in
  let sched = Hypervisor.Credit_scheduler.create ~engine ~pcpus:2 () in
  let victim = Hypervisor.Credit_scheduler.add_domain sched ~name:"victim" ~weight:256 in
  let finish = ref 0 in
  let prog = Workloads.Spec.program spec ~on_done:(fun t -> finish := t) () in
  ignore (Hypervisor.Credit_scheduler.add_vcpu sched victim ~pin:0 prog
           : Hypervisor.Credit_scheduler.vcpu);
  (match attacker with
  | "idle" -> ()
  | "CPU_avail" ->
      let att = Hypervisor.Credit_scheduler.add_domain sched ~name:"attacker" ~weight:256 in
      ignore (Hypervisor.Credit_scheduler.add_vcpu sched att ~pin:0
                (Attacks.Availability.main_program ())
               : Hypervisor.Credit_scheduler.vcpu);
      ignore (Hypervisor.Credit_scheduler.add_vcpu sched att ~pin:1
                (Attacks.Availability.helper_program ())
               : Hypervisor.Credit_scheduler.vcpu)
  | bench_name -> (
      match Workloads.Cloud_bench.of_name bench_name with
      | None -> invalid_arg ("fig6: unknown attacker " ^ bench_name)
      | Some bench ->
          let att = Hypervisor.Credit_scheduler.add_domain sched ~name:"attacker" ~weight:256 in
          ignore (Hypervisor.Credit_scheduler.add_vcpu sched att ~pin:0
                    (Hypervisor.Program.duty_cycle ~run:bench.run ~idle:bench.idle)
                   : Hypervisor.Credit_scheduler.vcpu)));
  let horizon = Sim.Time.sec 120 in
  Sim.Engine.run_until engine horizon;
  if !finish = 0 then horizon else !finish

let run ?seed:_ () =
  let victims = List.map (fun s -> s.Workloads.Spec.name) Workloads.Spec.all in
  let cells =
    List.concat_map
      (fun spec ->
        let solo = Common.solo_victim_time spec in
        List.map
          (fun attacker ->
            let time = scenario spec attacker in
            {
              victim = spec.Workloads.Spec.name;
              attacker;
              relative_time = Sim.Time.to_sec time /. Sim.Time.to_sec solo;
            })
          attacker_configs)
      Workloads.Spec.all
  in
  { cells; attackers = attacker_configs; victims }

let print r =
  Common.section "Figure 6: victim slowdown under CPU-availability attacks";
  Printf.printf "%-10s" "attacker";
  List.iter (fun v -> Printf.printf " %10s" v) r.victims;
  print_newline ();
  List.iter
    (fun attacker ->
      Printf.printf "%-10s" attacker;
      List.iter
        (fun victim ->
          let cell =
            List.find (fun c -> c.victim = victim && c.attacker = attacker) r.cells
          in
          Printf.printf " %9.2fx" cell.relative_time)
        r.victims;
      print_newline ())
    r.attackers
