lib/experiments/common.mli: Core Sim Workloads
