(* CloudMonatt command-line interface.

   Subcommands:
     experiment  -- regenerate the paper's figures (fig4..fig11, verify, all)
     verify      -- check the attestation protocol symbolically
     protocol    -- type-check, estimate, run and verify one protocol term
     launch      -- spin up a simulated cloud, launch a VM, attest properties
     catalog     -- list supported properties, images, flavors, workloads *)

open Cmdliner

let seed_arg =
  let doc = "Deterministic simulation seed." in
  Arg.(value & opt int 2015 & info [ "seed" ] ~docv:"SEED" ~doc)

(* --- experiment --------------------------------------------------------- *)

let all_experiments =
  [ "fig4"; "fig5"; "fig6"; "fig7"; "fig9"; "fig10"; "fig11"; "verify"; "cache"; "faults"; "fleet"; "monitor"; "batch"; "audit"; "backends"; "protocols"; "ablations" ]

let experiment_names = all_experiments @ [ "all" ]

let run_experiment seed name =
  match name with
  | "fig4" -> Experiments.Fig4.print (Experiments.Fig4.run ~seed ())
  | "fig5" -> Experiments.Fig5.print (Experiments.Fig5.run ~seed ())
  | "fig6" -> Experiments.Fig6.print (Experiments.Fig6.run ~seed ())
  | "fig7" -> Experiments.Fig7.print (Experiments.Fig7.run ~seed ())
  | "fig9" -> Experiments.Fig9.print (Experiments.Fig9.run ~seed ())
  | "fig10" -> Experiments.Fig10.print (Experiments.Fig10.run ~seed ())
  | "fig11" -> Experiments.Fig11.print (Experiments.Fig11.run ~seed ())
  | "verify" -> Experiments.Protocol_check.print (Experiments.Protocol_check.run ())
  | "cache" -> Experiments.Cache_exp.print (Experiments.Cache_exp.run ~seed ())
  | "faults" -> Experiments.Faults.print (Experiments.Faults.run ~seed ())
  | "fleet" -> Experiments.Fleet_exp.print (Experiments.Fleet_exp.run ~seed ())
  | "monitor" -> Experiments.Monitor_exp.print (Experiments.Monitor_exp.run ~seed ())
  | "batch" -> Experiments.Batch_exp.print (Experiments.Batch_exp.run ~seed ())
  | "audit" -> Experiments.Audit_exp.print (Experiments.Audit_exp.run ~seed ())
  | "backends" -> Experiments.Backends_exp.print (Experiments.Backends_exp.run ~seed ())
  | "protocols" -> Experiments.Protocols_exp.print (Experiments.Protocols_exp.run ~seed ())
  | "ablations" ->
      Experiments.Ablations.print_detector (Experiments.Ablations.detector_sweep ~seed ());
      Experiments.Ablations.print_benign (Experiments.Ablations.benign_false_positives ());
      Experiments.Ablations.print_ticks (Experiments.Ablations.tick_sweep ());
      Experiments.Ablations.print_latency (Experiments.Ablations.detection_latency ~seed ())
  | other ->
      (* unreachable: names are validated before running *)
      Printf.eprintf "unknown experiment %s (try: %s)\n" other (String.concat ", " experiment_names)

let experiment_cmd =
  let names =
    let doc = "Experiments to run (fig4..fig11, verify, cache, faults, fleet, monitor, batch, audit, backends, protocols, ablations, all)." in
    Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let run seed names =
    let unknown = List.filter (fun n -> not (List.mem n experiment_names)) names in
    if unknown <> [] then begin
      Printf.eprintf "unknown experiment%s: %s (valid: %s)\n"
        (if List.length unknown > 1 then "s" else "")
        (String.concat ", " unknown)
        (String.concat ", " experiment_names);
      Stdlib.exit 2
    end;
    let names = if List.mem "all" names then all_experiments else names in
    List.iter (run_experiment seed) names
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate the paper's evaluation figures")
    Term.(const run $ seed_arg $ names)

(* --- verify -------------------------------------------------------------- *)

let verify_cmd =
  let run () =
    let results = Experiments.Protocol_check.run () in
    Experiments.Protocol_check.print results;
    if Experiments.Protocol_check.all_as_expected results then begin
      print_endline "\nAll protocol variants behave as expected.";
      0
    end
    else begin
      print_endline "\nUNEXPECTED verification outcome!";
      1
    end
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Symbolically verify the attestation protocol (section 7.2.2)")
    Term.(const (fun () -> Stdlib.exit (run ())) $ const ())

(* --- protocol -------------------------------------------------------------- *)

let protocol_cmd =
  let term_arg =
    let doc =
      "Protocol term, e.g. a0.0, (a0.0>a1.1), (a0.0&Qa1.0), d1:a2.0, l0:a0.1; \
       a '-' after the operator weakens it (a-0.0 drops the nonce)."
    in
    Arg.(value & pos 0 string "a0.0" & info [] ~docv:"TERM" ~doc)
  in
  let servers_arg =
    Arg.(value & opt int 3 & info [ "servers" ] ~docv:"N" ~doc:"Cloud servers (one VM each).")
  in
  let clusters_arg =
    Arg.(value & opt int 2 & info [ "clusters" ] ~docv:"N" ~doc:"Attestation-server clusters.")
  in
  let run seed line servers clusters =
    match Copland.Phrase.of_string line with
    | Error e ->
        Printf.eprintf "parse error: %s\n" e;
        2
    | Ok term -> (
        Printf.printf "term      %s  (%d appraisal%s%s)\n"
          (Copland.Phrase.to_string term)
          (Copland.Phrase.appraisals term)
          (if Copland.Phrase.appraisals term = 1 then "" else "s")
          (if Copland.Phrase.weakened term then ", weakened" else "");
        let config =
          {
            Core.Cloud.default_config with
            seed;
            key_bits = 512;
            num_servers = servers;
            num_attestation_servers = clusters;
          }
        in
        let cloud = Core.Cloud.build ~config () in
        let ctl = Core.Cloud.controller cloud in
        let vids =
          Array.init servers (fun _ ->
              match
                Core.Controller.launch ctl
                  {
                    Core.Controller.owner = "cli-user";
                    image = "cirros";
                    flavor = "small";
                    properties = Core.Property.all;
                    workload = "";
                    pins = [];
                  }
              with
              | Ok info -> info.Core.Commands.vid
              | Error _ -> failwith "launch failed")
        in
        let env = Copland.Env.of_cloud cloud ~vids in
        match Copland.Typing.check env.Copland.Env.typing term with
        | Error e ->
            Format.printf "ill-typed: %a@." Copland.Typing.pp_error e;
            1
        | Ok () -> (
            Format.printf "estimate  %a@." Copland.Estimate.pp
              (Copland.Estimate.of_phrase env term);
            let report = Copland.Dy.verify term in
            Format.printf "dolev-yao %s@."
              (if Copland.Dy.holds report then "all checks hold"
               else "VIOLATED: " ^ String.concat ", " (Copland.Dy.violated report));
            List.iter
              (fun a -> Format.printf "  attack: %a@." Copland.Dy.pp_attack a)
              report.Copland.Dy.attacks;
            match Copland.Interp.run cloud ~vids term with
            | Error e ->
                Printf.printf "run       failed: %s\n" e;
                1
            | Ok outcome ->
                Format.printf "run       %a (%d leaf appraisal%s)@." Core.Report.pp_status
                  outcome.Copland.Interp.status
                  (List.length outcome.Copland.Interp.leaves)
                  (if List.length outcome.Copland.Interp.leaves = 1 then "" else "s");
                List.iter
                  (fun (l : Copland.Interp.leaf_result) ->
                    match l.Copland.Interp.report with
                    | Ok r ->
                        Format.printf "  slot %d %-22s %a@." l.Copland.Interp.slot
                          (Core.Property.to_string l.Copland.Interp.property)
                          Core.Report.pp_status
                          r.Core.Protocol.report.Core.Report.status
                    | Error e ->
                        Printf.printf "  slot %d %-22s error: %s\n" l.Copland.Interp.slot
                          (Core.Property.to_string l.Copland.Interp.property)
                          e)
                  outcome.Copland.Interp.leaves;
                0))
  in
  Cmd.v
    (Cmd.info "protocol"
       ~doc:"Type-check, estimate, Dolev-Yao-verify and run one protocol term")
    Term.(const (fun seed line s c -> Stdlib.exit (run seed line s c))
          $ seed_arg $ term_arg $ servers_arg $ clusters_arg)

(* --- launch ---------------------------------------------------------------- *)

let property_conv =
  let parse s =
    match Core.Property.of_string s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown property %s (known: %s)" s
               (String.concat ", " (List.map Core.Property.to_string Core.Property.all))))
  in
  Arg.conv (parse, Core.Property.pp)

let launch_cmd =
  let image =
    Arg.(value & opt string "ubuntu" & info [ "image" ] ~docv:"IMAGE" ~doc:"VM image name.")
  in
  let flavor =
    Arg.(value & opt string "small" & info [ "flavor" ] ~docv:"FLAVOR" ~doc:"VM flavor.")
  in
  let workload =
    Arg.(value & opt string "busy" & info [ "workload" ] ~docv:"WORKLOAD" ~doc:"Workload name.")
  in
  let properties =
    Arg.(
      value
      & opt_all property_conv Core.Property.all
      & info [ "property"; "p" ] ~docv:"PROPERTY" ~doc:"Security property to monitor (repeatable).")
  in
  let run seed image flavor workload properties =
    let config = { Core.Cloud.default_config with seed; key_bits = 512 } in
    let cloud = Core.Cloud.build ~config () in
    let customer = Core.Cloud.Customer.create cloud ~name:"cli-user" in
    Printf.printf "Launching %s/%s with workload %s...\n%!" image flavor workload;
    match Core.Cloud.Customer.launch customer ~image ~flavor ~properties ~workload () with
    | Error e -> Format.printf "launch failed: %a@." Core.Cloud.Customer.pp_error e
    | Ok info ->
        Printf.printf "VM %s launched. Stages:\n" info.Core.Commands.vid;
        List.iter
          (fun (stage, cost) -> Printf.printf "  %-12s %6.0f ms\n" stage (Sim.Time.to_ms cost))
          info.Core.Commands.stages;
        Core.Cloud.run_for cloud (Sim.Time.sec 5);
        print_endline "\nAttestation results after 5 s of simulated runtime:";
        List.iter
          (fun property ->
            match Core.Cloud.Customer.attest customer ~vid:info.Core.Commands.vid ~property with
            | Ok report ->
                Format.printf "  %-22s %a  (%s)@."
                  (Core.Property.to_string property)
                  Core.Report.pp_status report.Core.Report.status report.Core.Report.evidence
            | Error e ->
                Format.printf "  %-22s error: %a@."
                  (Core.Property.to_string property)
                  Core.Cloud.Customer.pp_error e)
          properties
  in
  Cmd.v
    (Cmd.info "launch" ~doc:"Launch a monitored VM in a simulated cloud and attest it")
    Term.(const run $ seed_arg $ image $ flavor $ workload $ properties)

(* --- catalog ------------------------------------------------------------------ *)

let catalog_cmd =
  let run () =
    print_endline "Security properties (paper section 4):";
    List.iter
      (fun p -> Printf.printf "  %s\n" (Core.Property.to_string p))
      Core.Property.all;
    print_endline "\nImages:";
    List.iter
      (fun i -> Printf.printf "  %-8s %4d MB\n" (Hypervisor.Image.name i) (Hypervisor.Image.size_mb i))
      [ Hypervisor.Image.cirros; Hypervisor.Image.fedora; Hypervisor.Image.ubuntu ];
    print_endline "\nFlavors:";
    List.iter (fun f -> Format.printf "  %a@." Hypervisor.Flavor.pp f) Hypervisor.Flavor.all;
    print_endline "\nWorkloads: idle, busy, database, file, web, app, stream, mail"
  in
  Cmd.v (Cmd.info "catalog" ~doc:"List properties, images, flavors and workloads")
    Term.(const run $ const ())

let main_cmd =
  let doc = "CloudMonatt: security health monitoring and attestation of VMs (ISCA'15)" in
  Cmd.group (Cmd.info "cloudmonatt" ~version:"1.0.0" ~doc)
    [ experiment_cmd; verify_cmd; protocol_cmd; launch_cmd; catalog_cmd ]

let () = exit (Cmd.eval main_cmd)
