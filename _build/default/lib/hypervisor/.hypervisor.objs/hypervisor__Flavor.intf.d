lib/hypervisor/flavor.mli: Format
