lib/wire/codec.mli:
