type t = {
  server : Hypervisor.Server.t;
  profiler : Vmm_profile.t;
  (* Burst counts at the previous histogram collection, per VM: the next
     collection reports only the new detection period. *)
  last_hist : (string, int array) Hashtbl.t;
  (* Start of the current cache-miss detection period, per VM. *)
  last_cache : (string, Sim.Time.t) Hashtbl.t;
}

type error = [ `Unknown_vm of string | `Unsupported of Measurement.request ]

let create server =
  {
    server;
    profiler = Vmm_profile.create server;
    last_hist = Hashtbl.create 8;
    last_cache = Hashtbl.create 8;
  }

let server t = t.server
let profiler t = t.profiler

let default_cpu_window = Sim.Time.sec 1

let load_registers t values =
  (* Mirror the measurements into the Trust Evidence Registers: histogram
     bins occupy registers 0..29, the CPU measure register 30. *)
  match Hypervisor.Server.trust_backend t.server with
  | None -> ()
  | Some tm ->
      List.iter
        (fun v ->
          match v with
          | Measurement.Measured_histogram bins ->
              Array.iteri
                (fun i c -> if i < Tpm.Backend.num_registers tm then Tpm.Backend.write_register tm i c)
                bins
          | Measurement.Measured_cpu { vtime; _ } ->
              if Tpm.Backend.num_registers tm > 30 then
                Tpm.Backend.write_register tm 30 vtime
          | Measurement.Measured_miss_windows w ->
              (* Summary into registers 31 (windows) and 32 (total misses). *)
              if Tpm.Backend.num_registers tm > 32 then begin
                Tpm.Backend.write_register tm 31 (Array.length w);
                Tpm.Backend.write_register tm 32 (Array.fold_left ( + ) 0 w)
              end
          | Measurement.Measured_platform _ | Measurement.Measured_image _
          | Measurement.Measured_tasks _ | Measurement.Measured_ima _ ->
              ())
        values

let collect_one t ~vid (inst : Hypervisor.Server.instance) request =
  let sched = Hypervisor.Server.scheduler t.server in
  match request with
  | Measurement.Platform_integrity -> (
      match Integrity_unit.platform_measurement t.server with
      | Some m -> Ok (Measurement.Measured_platform m)
      | None -> Error (`Unsupported request))
  | Measurement.Vm_image_integrity -> Ok (Measurement.Measured_image inst.image_hash_at_launch)
  | Measurement.Task_list ->
      let kernel = Hypervisor.Guest_os.kernel_tasks inst.vm.guest in
      let visible = Hypervisor.Guest_os.visible_tasks inst.vm.guest in
      Ok (Measurement.Measured_tasks { kernel; visible })
  | Measurement.Cpu_burst_histogram ->
      let counts = Hypervisor.Credit_scheduler.burst_counts inst.domain in
      let prev =
        match Hashtbl.find_opt t.last_hist vid with
        | Some p when Array.length p = Array.length counts -> p
        | Some _ | None -> Array.make (Array.length counts) 0
      in
      let delta = Array.mapi (fun i c -> max 0 (c - prev.(i))) counts in
      Hashtbl.replace t.last_hist vid counts;
      Ok (Measurement.Measured_histogram delta)
  | Measurement.Cpu_time window ->
      let window = if window <= 0 then default_cpu_window else window in
      Vmm_profile.sample_now t.profiler;
      (match Vmm_profile.cpu_usage t.profiler ~vid ~window with
      | Some (vtime, steal) ->
          Ok
            (Measurement.Measured_cpu
               { vtime; steal; window; vcpus = inst.vm.flavor.Hypervisor.Flavor.vcpus })
      | None -> Error (`Unknown_vm vid))
  | Measurement.Ima_log -> Ok (Measurement.Measured_ima (Hypervisor.Guest_os.ima_log inst.vm.guest))
  | Measurement.Cache_miss_pattern ->
      let cache = Hypervisor.Server.cache t.server in
      let now = Sim.Engine.now (Hypervisor.Server.engine t.server) in
      let since = Option.value ~default:0 (Hashtbl.find_opt t.last_cache vid) in
      Hashtbl.replace t.last_cache vid now;
      Ok (Measurement.Measured_miss_windows (Hypervisor.Cache.miss_windows cache ~owner:vid ~since))

let intrusion_pause _t requests =
  List.fold_left
    (fun acc r ->
      match r with
      | Measurement.Task_list | Measurement.Ima_log -> acc + Vmi_tool.probe_cost
      | Measurement.Platform_integrity | Measurement.Vm_image_integrity
      | Measurement.Cpu_burst_histogram | Measurement.Cpu_time _
      | Measurement.Cache_miss_pattern ->
          acc)
    0 requests

let collect t ~vid requests =
  match Hypervisor.Server.find t.server vid with
  | None -> Error (`Unknown_vm vid)
  | Some inst ->
      let rec go acc = function
        | [] ->
            let values = List.rev acc in
            load_registers t values;
            Ok values
        | r :: rest -> (
            match collect_one t ~vid inst r with
            | Ok v -> go (v :: acc) rest
            | Error e -> Error e)
      in
      go [] requests
