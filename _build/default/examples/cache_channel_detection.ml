(* Prime-probe cache covert channel and its detection (extension of paper
   section 4.4.3, which notes that "other types of covert channels can also
   be monitored"):

     dune exec examples/cache_channel_detection.exe

   Unlike the CPU-timing channel, the cache channel needs no shared pCPU —
   the conspirators only share the server's last-level cache.  The
   CPU-burst monitor is therefore blind to it.  The cloud is configured to
   monitor the Covert_channel_free property from BOTH sources; the
   cache-miss window pattern gives the sender away. *)

open Core

let () =
  let refs =
    { Interpret.default_refs with
      Interpret.covert_sources = [ Interpret.Cpu_bursts; Interpret.Cache_misses ];
    }
  in
  let config = { Cloud.default_config with key_bits = 512; refs } in
  let cloud = Cloud.build ~config () in
  let controller = Cloud.controller cloud in
  let bob = Cloud.Customer.create cloud ~name:"bob" in

  (* Bob's VM (secretly trojaned with a cache-channel sender) launches with
     covert-channel monitoring. *)
  let info =
    match
      Cloud.Customer.launch bob ~image:"ubuntu" ~flavor:"small"
        ~properties:[ Property.Covert_channel_free ] ()
    with
    | Ok info -> info
    | Error e -> Format.kasprintf failwith "launch failed: %a" Cloud.Customer.pp_error e
  in
  let vid = info.Commands.vid in
  let host = Option.get (Controller.vm_host controller ~vid) in
  let server = Option.get (Cloud.find_server cloud host) in
  let cache = Hypervisor.Server.cache server in

  (* The trojan: a sender vCPU inside Bob's VM (cache owner = the VM id, so
     the Monitor Module attributes its misses correctly). *)
  let prng = Sim.Prng.create 23 in
  let secret_bits = Attacks.Covert_channel.random_bits prng 200 in
  let inst = Option.get (Hypervisor.Server.find server vid) in
  ignore
    (Hypervisor.Credit_scheduler.add_vcpu
       (Hypervisor.Server.scheduler server)
       inst.Hypervisor.Server.domain ~pin:1
       (Attacks.Cache_channel.sender_program cache ~owner:vid ~bits:secret_bits ())
      : Hypervisor.Credit_scheduler.vcpu);

  (* Mallory's receiver, on a DIFFERENT pCPU of the same server. *)
  let recv_prog, stream = Attacks.Cache_channel.receiver_program cache ~owner:"recv" () in
  let recv_vm =
    Hypervisor.Vm.make ~vid:"recv" ~owner:"mallory" ~image:Hypervisor.Image.ubuntu
      ~flavor:Hypervisor.Flavor.small
      ~programs:(fun () -> [ recv_prog ])
      ()
  in
  (match Hypervisor.Server.launch server ~pin:0 recv_vm with
  | Ok _ -> print_endline "Receiver co-resident (different pCPU, shared cache). Channel live."
  | Error `Insufficient_memory -> failwith "receiver launch failed");

  Cloud.run_for cloud (Sim.Time.sec 3);
  let got = Attacks.Cache_channel.received_bits ~count:(List.length secret_bits) (stream ()) in
  Printf.printf "Bits leaked through the cache: %d/%d (BER %.3f)\n" (List.length got)
    (List.length secret_bits)
    (Attacks.Covert_channel.bit_error_rate ~sent:secret_bits ~received:got);

  (* One-time attestation: the cache-miss pattern betrays the sender. *)
  (match Cloud.Customer.attest bob ~vid ~property:Property.Covert_channel_free with
  | Ok r ->
      Format.printf "Attestation verdict: %a@.  evidence: %s@." Report.pp_status
        r.Report.status r.Report.evidence
  | Error e -> Format.printf "attest error: %a@." Cloud.Customer.pp_error e);

  print_endline "\nController event log:";
  List.iter (fun e -> Printf.printf "  %s\n" e) (Controller.events controller)
