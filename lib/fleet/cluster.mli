(** One Attestation-Server shard: a bounded priority request queue feeding
    [capacity] concurrent measurement slots, with in-flight coalescing.

    Coalescing: concurrent requests for the same (VM, property) — queued or
    already being measured — attach to the pending measurement instead of
    consuming queue space or another service slot; when the measurement
    completes, every attached requester receives the same verdict.

    Backpressure: admission follows {!Pqueue} semantics — a full queue sheds
    the lowest-priority queued work first, and rejects the arrival itself
    only when everything queued is at least as important.  Shed requests
    complete immediately with {!verdict} [Shed].

    Batching: with [batch_max > 1] a free slot serves up to [batch_max]
    queued jobs as one Merkle-batched measurement round (one Trust-Module
    quote for the whole batch).  A slot with fewer than [batch_max] jobs
    waits up to [batch_window] for more to arrive; a queued
    Customer-priority request flushes the window immediately.  Batching
    composes with coalescing and shedding unchanged — both act at admission,
    before batch formation.  [batch_max = 1] (the default) is byte-for-byte
    the unbatched scheduler, preserving deterministic replay. *)

type verdict =
  | Done of Core.Report.status  (** measurement completed with this status *)
  | Shed  (** dropped by admission control before being measured *)

type t

val create :
  engine:Sim.Engine.t ->
  name:string ->
  ?capacity:int ->
  queue_depth:int ->
  service_time:(unit -> Sim.Time.t) ->
  measure:(vid:string -> property:Core.Property.t -> Core.Report.status) ->
  metrics:Metrics.t ->
  ?batch_max:int ->
  ?batch_window:Sim.Time.t ->
  ?batch_service_time:(int -> Sim.Time.t) ->
  unit ->
  t
(** [capacity] (default 1) is the number of concurrent measurement rounds
    the AS sustains; [service_time] samples the simulated duration of one
    round; [measure] produces the verdict when a round completes.
    Coalescing, measurement and shed counts are recorded into [metrics].

    [batch_max] (default 1 = off) bounds how many jobs one slot serves per
    batched round, [batch_window] (default 0) how long a partial batch
    waits for company, and [batch_service_time n] samples the duration of
    an n-job batched round (default: [n] independent [service_time]
    draws).  With [batch_max = 1] none of the batch machinery runs. *)

val name : t -> string

val submit :
  t ->
  vid:string ->
  property:Core.Property.t ->
  priority:Pqueue.priority ->
  on_done:(verdict -> unit) ->
  unit
(** [on_done] fires exactly once: immediately (same engine step) for shed
    requests, at measurement completion otherwise. *)

val queue_length : t -> int
val inflight : t -> int
(** Pending distinct (VM, property) measurements: queued + in service. *)

val queue_gauge : t -> Sim.Stats.Gauge.t
(** Time-weighted queue-depth tracking (timestamps in simulated seconds). *)

val batches : t -> int
(** Batched rounds this cluster has started (0 with batching off). *)

val set_audit : t -> Audit.Log.t option -> unit
(** Attach (or detach) a verdict transparency log.  While attached, every
    completed measurement appends one canonical entry
    ["vid|property|status"] to the log — before the verdict is delivered
    to waiters — and counts a {!Metrics.record_audit_append}.  [None]
    (the default) is the pre-audit scheduler, bit for bit. *)

val audit : t -> Audit.Log.t option

val audit_entry :
  vid:string -> property:Core.Property.t -> Core.Report.status -> string
(** The canonical entry encoding, exposed so auditors can recompute the
    expected leaf when replaying a log. *)
