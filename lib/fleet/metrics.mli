(** Per-run fleet metrics: offered vs. served load, end-to-end latency
    percentiles, cache effectiveness, coalescing, and shed counts by
    priority class.

    In the sharded driver each shard keeps its own [t] (sample reservoirs
    have bounded memory at million-VM scale) and the driver folds them with
    {!merge_into} in shard order, so the merged result is independent of
    how many domains executed the shards. *)

type t

val create : ?cap:int -> ?seed:int -> unit -> t
(** [cap] bounds each sample reservoir (default {!Sim.Stats.Reservoir}'s);
    [seed] (default 0) seeds the reservoirs' subsampling prngs. *)

val merge_into : t -> t -> unit
(** [merge_into acc t] folds [t] into [acc] ([t] unchanged): counters add,
    reservoirs merge per {!Sim.Stats.Reservoir.merge_into}.  Call in a
    fixed shard order for reproducible percentiles. *)

val record_offered : t -> unit
val record_served : t -> latency_ms:float -> unit
val record_cache_hit : t -> unit
(** Counts the hit only; the request is additionally [record_served]. *)

val record_coalesced : t -> unit
(** A request that joined an already-pending measurement. *)

val record_measurement : t -> unit
(** One actual measurement round executed by an AS. *)

val record_shed : t -> Pqueue.priority -> unit
val record_unhealthy : t -> unit

val record_batch : t -> size:int -> unit
(** One batched measurement round (a single Trust-Module quote covering
    [size] reports). *)

val offered : t -> int
val served : t -> int
val cache_hits : t -> int
val coalesced : t -> int
val measurements : t -> int
val unhealthy : t -> int
val shed : t -> Pqueue.priority -> int
val shed_total : t -> int

val cache_hit_rate : t -> float
(** Hits over served requests (0 when nothing served). *)

val latency : t -> Sim.Stats.Reservoir.t
(** End-to-end latencies of served requests, in milliseconds. *)

val batches : t -> int
val batch_sizes : t -> Sim.Stats.Reservoir.t
val mean_batch_size : t -> float
(** 0 when no batched round ran. *)

(** {2 Transparency-log counters}

    Follow the shed-counter pattern: recorded where the event happens
    (cluster appends, driver checkpoints, auditor proof checks) and all
    zero when the audit layer is off. *)

val record_audit_append : t -> unit
(** One verdict appended to a cluster's log. *)

val record_audit_checkpoint : t -> unit
(** One periodic signed tree head emitted. *)

val record_audit_proof : t -> unit
(** One inclusion/consistency proof served and verified. *)

val record_audit_equivocations : t -> int -> unit
(** [n] new pieces of auditor evidence (split view, fork, rollback). *)

val audit_appends : t -> int
val audit_checkpoints : t -> int
val audit_proofs : t -> int
val audit_equivocations : t -> int

(** {2 Continuous-monitoring counters}

    Same pattern as the audit counters: recorded where the scheduler acts
    and all zero when the monitor is off.  Every probe the scheduler
    submits ([record_mon_scheduled]) completes exactly once as served (by
    its deadline), missed (after it) or shed — the conservation law
    [scheduled = served + missed + shed] the test suite pins. *)

val record_mon_scheduled : t -> Pqueue.priority -> unit
(** One re-attestation probe submitted to a cluster. *)

val record_mon_served : t -> Pqueue.priority -> unit
(** A probe completed at or before its freshness deadline. *)

val record_mon_missed : t -> Pqueue.priority -> unit
(** A probe completed after its freshness deadline. *)

val record_mon_shed : t -> Pqueue.priority -> unit
(** A probe dropped by cluster admission control (retried next tick). *)

val record_mon_dedup : t -> unit
(** A due probe answered by a cached verdict still inside the budget. *)

val record_mon_tick : t -> fresh:int -> total:int -> unit
(** One scheduler tick observing [fresh] of [total] tracked VMs holding a
    verdict younger than the freshness budget. *)

val mon_scheduled : t -> Pqueue.priority -> int
val mon_served : t -> Pqueue.priority -> int
val mon_missed : t -> Pqueue.priority -> int
val mon_shed : t -> Pqueue.priority -> int
val mon_scheduled_total : t -> int
val mon_served_total : t -> int
val mon_missed_total : t -> int
val mon_shed_total : t -> int
val mon_dedups : t -> int

val mon_ticks : t -> int
(** Scheduler ticks executed; merging takes the max (shards tick at the
    same absolute times, so per-shard tick counts coincide). *)

val mon_fresh : t -> Sim.Stats.Fraction_series.t
(** Fraction-of-fleet-fresh per tick; merges index-aligned across shards. *)
