(** Periodic-attestation schedules (paper Table 1): a constant frequency,
    or random intervals so an attacker cannot predict — and dodge — the
    next measurement window. *)

type t =
  | Fixed of Sim.Time.t  (** one attestation every period *)
  | Random_interval of { min : Sim.Time.t; max : Sim.Time.t }
      (** next attestation after a uniform random delay in [min, max] *)

val fixed : Sim.Time.t -> t
val random : min:Sim.Time.t -> max:Sim.Time.t -> t

val next_delay : t -> Crypto.Drbg.t -> Sim.Time.t
(** Delay until the next attestation round. *)

val min_period : t -> Sim.Time.t
(** Smallest possible inter-attestation gap (for rate limiting). *)

val pp : Format.formatter -> t -> unit

val encode : Wire.Codec.Enc.t -> t -> unit
val decode : Wire.Codec.Dec.t -> t
