(* Benchmark harness: one experiment per paper table/figure, the fleet-scale
   load experiment, plus bechamel micro-benchmarks of the building blocks.

   Usage: main.exe [--list] [--json FILE]
            [fig4|fig5|fig6|fig7|fig9|fig10|fig11|verify|cache|faults|fleet|monitor|batch|audit|crypto|ablations|micro|all]
   With no experiment, everything runs.  Unknown names abort with a listing;
   --list prints the known names one per line and exits 0.

   JSON-capable experiments (fleet, fig9, batch, audit, crypto) collect
   machine-readable results; they are written to FILE (or
   $CLOUDMONATT_BENCH_JSON) as one object keyed by experiment name, plus a
   "host" object pairing each run with its real wall-clock time and GC
   counters.  `fleet` alone defaults to writing BENCH_fleet.json, `batch`
   to BENCH_batch.json and `audit` to BENCH_audit.json, the
   perf-trajectory artifacts. *)

let seed = 2015

(* JSON results collected by the experiments that emit them. *)
let json_results : (string * Experiments.Json.t) list ref = ref []
let collect name json = json_results := (name, json) :: !json_results

(* Host-side observability: real elapsed time and GC pressure of each
   experiment, so the simulated-latency trajectory in the artifacts is
   paired with a real-CPU trajectory.  Kept in a separate top-level "host"
   object — the experiment results themselves stay purely simulated (and
   byte-stable across hosts). *)
let host_stats : (string * Experiments.Json.t) list ref = ref []

let observed name f =
  let wall0 = Unix.gettimeofday () in
  let cpu0 = Sys.time () in
  let gc0 = Gc.quick_stat () in
  f ();
  let wall = Unix.gettimeofday () -. wall0 in
  let cpu = Sys.time () -. cpu0 in
  let gc1 = Gc.quick_stat () in
  host_stats :=
    ( name,
      Experiments.Json.Obj
        [
          ("wall_s", Experiments.Json.Float wall);
          ("cpu_s", Experiments.Json.Float cpu);
          ( "gc",
            Experiments.Json.Obj
              [
                ( "minor_collections",
                  Experiments.Json.Int (gc1.Gc.minor_collections - gc0.Gc.minor_collections)
                );
                ( "major_collections",
                  Experiments.Json.Int (gc1.Gc.major_collections - gc0.Gc.major_collections)
                );
                ( "promoted_words",
                  Experiments.Json.Float (gc1.Gc.promoted_words -. gc0.Gc.promoted_words) );
              ] );
        ] )
    :: !host_stats

let run_fig4 () = Experiments.Fig4.print (Experiments.Fig4.run ~seed ())
let run_fig5 () = Experiments.Fig5.print (Experiments.Fig5.run ~seed ())
let run_fig6 () = Experiments.Fig6.print (Experiments.Fig6.run ~seed ())
let run_fig7 () = Experiments.Fig7.print (Experiments.Fig7.run ~seed ())

let run_fig9 () =
  let rows = Experiments.Fig9.run ~seed () in
  Experiments.Fig9.print rows;
  collect "fig9" (Experiments.Fig9.to_json ~seed rows)

let run_fig10 () = Experiments.Fig10.print (Experiments.Fig10.run ~seed ())
let run_fig11 () = Experiments.Fig11.print (Experiments.Fig11.run ~seed ())
let run_verify () = Experiments.Protocol_check.print (Experiments.Protocol_check.run ())
let run_cache () = Experiments.Cache_exp.print (Experiments.Cache_exp.run ~seed ())
let run_faults () = Experiments.Faults.print (Experiments.Faults.run ~seed ())

(* A domains=N fleet run that diverges from domains=1 is a determinism
   regression in the epoch-barrier protocol; it gates like the fuzz
   campaign. *)
let fleet_failed = ref false

let run_fleet () =
  let result = Experiments.Fleet_exp.run ~seed () in
  Experiments.Fleet_exp.print result;
  collect "fleet" (Experiments.Fleet_exp.to_json result);
  if not (Experiments.Fleet_exp.identical_across_domains result) then begin
    fleet_failed := true;
    Printf.eprintf
      "fleet: sharded results diverged across domain counts (see BENCH_fleet.json)\n%!"
  end

(* The monitoring SLOs gate too: an undetected (or slowly detected) rack
   compromise, a divergent domain curve or an empty fresh-fraction series
   all flip the exit status. *)
let monitor_failed = ref false

let run_monitor () =
  let result = Experiments.Monitor_exp.run ~seed () in
  Experiments.Monitor_exp.print result;
  collect "monitor" (Experiments.Monitor_exp.to_json result);
  if not (Experiments.Monitor_exp.clean result) then begin
    monitor_failed := true;
    Printf.eprintf "monitor: SLO gate violated (see BENCH_monitor.json)\n%!"
  end

let run_batch () =
  let result = Experiments.Batch_exp.run ~seed () in
  Experiments.Batch_exp.print result;
  collect "batch" (Experiments.Batch_exp.to_json result)

let run_audit () =
  let result = Experiments.Audit_exp.run ~seed () in
  Experiments.Audit_exp.print result;
  collect "audit" (Experiments.Audit_exp.to_json result)

let run_crypto () =
  let result = Experiments.Crypto_bench.run ~seed () in
  Experiments.Crypto_bench.print result;
  collect "crypto" (Experiments.Crypto_bench.to_json ~seed result)

(* The fuzz campaign gates CI: violations flip the process exit status and
   leave a replayable repro file for the artifact upload. *)
let fuzz_failed = ref false

let run_fuzz () =
  let result = Experiments.Fuzz_exp.run ~seed () in
  Experiments.Fuzz_exp.print result;
  collect "fuzz" (Experiments.Fuzz_exp.to_json result);
  if not (Experiments.Fuzz_exp.clean result) then begin
    fuzz_failed := true;
    let oc = open_out "fuzz-repros.txt" in
    List.iter
      (fun line -> output_string oc (line ^ "\n"))
      (Experiments.Fuzz_exp.repro_lines result);
    close_out oc;
    Printf.eprintf "fuzz: oracle violations found; repros written to fuzz-repros.txt\n%!"
  end

(* The backend lifecycle gates also flip the exit status: a stale-state
   vTPM quote that verifies Healthy is a security regression, not noise. *)
let backends_failed = ref false

let run_backends () =
  let result = Experiments.Backends_exp.run ~seed () in
  Experiments.Backends_exp.print result;
  collect "backends" (Experiments.Backends_exp.to_json result);
  if not (Experiments.Backends_exp.clean result) then begin
    backends_failed := true;
    Printf.eprintf "backends: lifecycle gate violated (see BENCH_backends.json)\n%!"
  end

(* The protocol catalogue gates too: a weakened term with no synthesised
   attack, a default term failing a check, or an interpreter run outside
   its static cost envelope all flip the exit status. *)
let protocols_failed = ref false

let run_protocols () =
  let result = Experiments.Protocols_exp.run ~seed () in
  Experiments.Protocols_exp.print result;
  collect "protocols" (Experiments.Protocols_exp.to_json result);
  if not (Experiments.Protocols_exp.clean result) then begin
    protocols_failed := true;
    Printf.eprintf "protocols: catalogue gate violated (see BENCH_protocols.json)\n%!"
  end

let run_ablations () =
  Experiments.Ablations.print_detector (Experiments.Ablations.detector_sweep ~seed ());
  Experiments.Ablations.print_benign (Experiments.Ablations.benign_false_positives ());
  Experiments.Ablations.print_ticks (Experiments.Ablations.tick_sweep ());
  Experiments.Ablations.print_latency (Experiments.Ablations.detection_latency ~seed ~trials:4 ())

(* --- Micro-benchmarks (bechamel): the primitives under the protocol. --- *)

let micro_tests () =
  let open Bechamel in
  let drbg = Crypto.Drbg.create ~seed:"bench" in
  let kb = Crypto.Drbg.random_bytes drbg 1024 in
  let four_kb = Crypto.Drbg.random_bytes drbg 4096 in
  let key32 = Crypto.Drbg.random_bytes drbg 32 in
  let nonce12 = Crypto.Drbg.random_bytes drbg 12 in
  let rsa = Crypto.Rsa.generate drbg ~bits:1024 in
  let signature = Crypto.Rsa.sign rsa.secret "payload" in
  let tm = Tpm.Trust_module.create ~key_bits:512 ~seed:"bench-tm" () in
  let session = Tpm.Trust_module.begin_session tm in
  [
    Test.make ~name:"sha256-1KB" (Staged.stage (fun () -> Crypto.Sha256.digest kb));
    Test.make ~name:"hmac-1KB" (Staged.stage (fun () -> Crypto.Hmac.mac ~key:key32 kb));
    Test.make ~name:"chacha20-4KB"
      (Staged.stage (fun () -> Crypto.Chacha20.xor ~key:key32 ~nonce:nonce12 four_kb));
    Test.make ~name:"rsa1024-sign" (Staged.stage (fun () -> Crypto.Rsa.sign rsa.secret "payload"));
    Test.make ~name:"rsa1024-verify"
      (Staged.stage (fun () -> Crypto.Rsa.verify rsa.public ~signature "payload"));
    Test.make ~name:"tpm-quote-sign"
      (Staged.stage (fun () -> Tpm.Trust_module.sign_with_session tm session "measurements"));
    Test.make ~name:"pcr-extend"
      (Staged.stage
         (let pcrs = Tpm.Pcr.create ~count:16 in
          fun () -> Tpm.Pcr.extend pcrs 0 "measurement"));
  ]

let run_micro () =
  Experiments.Common.section "Micro-benchmarks (bechamel, host CPU time)";
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let tests = micro_tests () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
          Toolkit.Instance.monotonic_clock raw
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-24s %12.1f ns/op\n" name est
          | Some _ | None -> Printf.printf "  %-24s (no estimate)\n" name)
        results)
    tests

(* (name, one-line description, runner).  The descriptions feed --list, so
   scripts can show an inventory without grepping the sources. *)
let experiments =
  [
    ("fig4", "cross-VM covert information leakage (paper Fig. 4)", run_fig4);
    ("fig5", "covert-channel vulnerability measurements (Fig. 5)", run_fig5);
    ("fig6", "performance impact of CPU-availability attacks (Fig. 6)", run_fig6);
    ("fig7", "CPU-availability vulnerability measurements (Fig. 7)", run_fig7);
    ("fig9", "VM launching performance (Fig. 9)", run_fig9);
    ("fig10", "performance effect of runtime attestation (Fig. 10)", run_fig10);
    ("fig11", "attestation and response reaction times (Fig. 11)", run_fig11);
    ("verify", "symbolic verification of the fixed protocol (section 7.2.2)", run_verify);
    ("cache", "prime-probe cache covert channel and its detection", run_cache);
    ("faults", "attestation availability on a lossy network", run_faults);
    ("fleet", "fleet-scale throughput sweep, sharded by AS cluster", run_fleet);
    ("monitor", "continuous re-attestation: storms, freshness SLOs, time-to-detect", run_monitor);
    ("batch", "Merkle-batched attestation frontier", run_batch);
    ("audit", "verdict-transparency log overhead and fork detection", run_audit);
    ("crypto", "RSA hot-path micro-benchmark (host CPU time)", run_crypto);
    ("fuzz", "oracle-checked fuzz campaign over generated histories", run_fuzz);
    ("backends", "trust-backend comparison and lifecycle gates", run_backends);
    ("protocols", "attestation-protocol catalogue: Dolev-Yao + cost envelopes", run_protocols);
    ("ablations", "design-choice ablation studies", run_ablations);
    ("micro", "bechamel micro-benchmarks of the primitives", run_micro);
  ]

let valid_names = "all" :: List.map (fun (n, _, _) -> n) experiments

let usage () =
  Printf.eprintf
    "usage: main.exe [--list] [--json FILE] [EXPERIMENT...]\nvalid experiments: %s\n"
    (String.concat ", " valid_names)

let parse_args argv =
  let rec go names json = function
    | [] -> (List.rev names, json)
    | "--list" :: _ ->
        (* Machine-readable inventory for scripts and CI: one
           "name: description" line per experiment (plus the bare "all"
           pseudo-name), success exit. *)
        print_endline "all: every experiment below";
        List.iter
          (fun (name, description, _) -> Printf.printf "%s: %s\n" name description)
          experiments;
        exit 0
    | "--json" :: path :: rest -> go names (Some path) rest
    | [ "--json" ] ->
        Printf.eprintf "error: --json needs a FILE argument\n";
        usage ();
        exit 2
    | name :: rest -> go (name :: names) json rest
  in
  let names, json = go [] None argv in
  let names = if names = [] then [ "all" ] else names in
  (* An unknown or misspelled experiment must fail loudly, not silently
     run nothing and exit 0. *)
  let unknown = List.filter (fun n -> not (List.mem n valid_names)) names in
  if unknown <> [] then begin
    Printf.eprintf "error: unknown experiment%s: %s\n"
      (if List.length unknown > 1 then "s" else "")
      (String.concat ", " unknown);
    usage ();
    exit 2
  end;
  (names, json)

let () =
  let which, json_arg =
    parse_args (Array.to_list (Array.sub Sys.argv 1 (Array.length Sys.argv - 1)))
  in
  (* Fail before running anything if the --json destination can never be
     written: an hour-long sweep that dies at write time helps nobody. *)
  (match json_arg with
  | Some path ->
      let dir = Filename.dirname path in
      if not (Sys.file_exists dir && Sys.is_directory dir) then begin
        Printf.eprintf "error: --json %s: parent directory %s does not exist\n" path dir;
        exit 2
      end
  | None -> ());
  let run_all = List.mem "all" which in
  print_endline "CloudMonatt evaluation harness (ISCA'15 figures)";
  List.iter
    (fun (name, _, f) ->
      if run_all || List.mem name which then begin
        let t0 = Sys.time () in
        observed name f;
        Printf.printf "[%s done in %.1fs host time]\n%!" name (Sys.time () -. t0)
      end)
    experiments;
  let json_paths =
    match (json_arg, Sys.getenv_opt "CLOUDMONATT_BENCH_JSON") with
    | Some p, _ -> [ p ]
    | None, Some p -> [ p ]
    | None, None ->
        (* `fleet` and `batch` write their trajectory artifacts even
           without --json. *)
        List.filter_map
          (fun (name, path) ->
            if List.mem_assoc name !json_results then Some path else None)
          [
            ("fleet", "BENCH_fleet.json");
            ("monitor", "BENCH_monitor.json");
            ("batch", "BENCH_batch.json");
            ("audit", "BENCH_audit.json");
            ("crypto", "BENCH_crypto.json");
            ("fuzz", "BENCH_fuzz.json");
            ("backends", "BENCH_backends.json");
            ("protocols", "BENCH_protocols.json");
          ]
  in
  match json_paths with
  | [] -> ()
  | paths ->
      (* The committed trajectory artifacts must stay byte-identical across
         runs, so the (nondeterministic) host-observability block only goes
         to explicitly requested destinations. *)
      let explicit_destination =
        json_arg <> None || Sys.getenv_opt "CLOUDMONATT_BENCH_JSON" <> None
      in
      if !json_results = [] then
        Printf.eprintf "warning: --json given but no selected experiment emits JSON\n"
      else
        List.iter
          (fun path ->
            let keep =
              (* Per-artifact default files carry only their own experiment;
                 an explicit --json FILE carries everything that ran. *)
              match (json_arg, path) with
              | None, "BENCH_fleet.json" ->
                  List.filter (fun (n, _) -> n = "fleet") !json_results
              | None, "BENCH_monitor.json" ->
                  List.filter (fun (n, _) -> n = "monitor") !json_results
              | None, "BENCH_batch.json" ->
                  List.filter (fun (n, _) -> n = "batch") !json_results
              | None, "BENCH_audit.json" ->
                  List.filter (fun (n, _) -> n = "audit") !json_results
              | None, "BENCH_crypto.json" ->
                  List.filter (fun (n, _) -> n = "crypto") !json_results
              | None, "BENCH_fuzz.json" ->
                  List.filter (fun (n, _) -> n = "fuzz") !json_results
              | None, "BENCH_backends.json" ->
                  List.filter (fun (n, _) -> n = "backends") !json_results
              | None, "BENCH_protocols.json" ->
                  List.filter (fun (n, _) -> n = "protocols") !json_results
              | _ -> !json_results
            in
            let doc =
              Experiments.Json.Obj
                (List.rev keep
                @
                if explicit_destination then
                  [ ("host", Experiments.Json.Obj (List.rev !host_stats)) ]
                else [])
            in
            match Experiments.Json.write_file_result path doc with
            | Ok () -> Printf.printf "wrote %s\n%!" path
            | Error msg ->
                Printf.eprintf "error: cannot write %s: %s\n" path msg;
                exit 2)
          paths

(* Fail the process (after the artifacts are written, so the repro file
   and JSON survive) when the fuzz campaign surfaced violations, the
   backend lifecycle gates tripped, the protocol catalogue deviated from
   its planted expectations, or the sharded fleet runs diverged. *)
let () =
  if
    !fuzz_failed || !backends_failed || !fleet_failed || !protocols_failed
    || !monitor_failed
  then exit 1
