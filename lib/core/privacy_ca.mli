(** Privacy Certificate Authority.

    Certifies per-attestation session keys ([AVKs]) without revealing which
    cloud server they came from: the endorsement signature is checked
    against the registry of enrolled server identity keys ([VKs]), but the
    issued certificate carries only an anonymous subject.  This is what
    keeps an attestation report from helping an attacker locate the VM's
    host (paper section 3.4.2). *)

type t

val create : seed:string -> ?bits:int -> unit -> t

val public : t -> Crypto.Rsa.public
(** The pCA verification key, trusted by the Attestation Server. *)

val enroll_server : t -> name:string -> Crypto.Rsa.public -> unit
(** Register a secure cloud server's identity key [VKs] (done when the
    server is deployed in the data center). *)

val enrolled : t -> string list

(** {2 Migratable vTPM registry}

    Ephemeral vTPMs enroll with an explicit {e binding epoch}.  The CA only
    certifies session keys endorsed fresh at the registered epoch; an
    endorsement carrying the stale marker, or minted at an older epoch, is
    rejected as [`Stale_binding] — the signal that restored state was not
    re-registered. *)

val enroll_evtpm : t -> name:string -> Crypto.Rsa.public -> epoch:int -> unit

val rebind_evtpm : t -> name:string -> Crypto.Rsa.public -> epoch:int -> unit
(** Re-registration after a restore: records the vTPM's new binding epoch
    (and identity key, which survives migration unchanged). *)

val evtpm_epoch : t -> name:string -> int option

val anonymous_subject : string
(** Subject string used on every attestation-key certificate. *)

val certify_attestation_key :
  t ->
  key:Crypto.Rsa.public ->
  endorsement:string ->
  (Net.Ca.cert, [ `Unknown_server ]) result
(** Verify that [endorsement] is a valid signature over [key] by {e some}
    enrolled server, and issue an anonymous certificate for [key]. *)

val certify_evtpm_key :
  t ->
  key:Crypto.Rsa.public ->
  endorsement:string ->
  (Net.Ca.cert, [ `Unknown_server | `Stale_binding ]) result
(** Like {!certify_attestation_key} for the vTPM registry.  Only an
    endorsement minted fresh at the registered binding epoch certifies;
    stale-marked or old-epoch endorsements from a known vTPM return
    [`Stale_binding]. *)

val check_certificate : pca:Crypto.Rsa.public -> Net.Ca.cert -> key:Crypto.Rsa.public -> bool
(** What the Attestation Server checks: a valid pCA signature, the
    anonymous subject, and that the certified key matches [key]. *)
