lib/monitors/monitor_kernel.ml: Array Hashtbl Hypervisor Integrity_unit List Measurement Option Sim Tpm Vmi_tool Vmm_profile
