(** VM lifecycle stages and their simulated durations.

    The paper's Figure 9 breaks VM launch into OpenStack's four stages plus
    CloudMonatt's new fifth stage (Attestation); Figure 11 measures the
    three remediation responses.  These functions compute the stage costs
    from the cost model, parameterized by image and flavor so the relative
    shapes (bigger image -> longer spawn; bigger RAM -> longer
    suspend/migrate) match the paper. *)

type stage = Scheduling | Networking | Block_device_mapping | Spawning | Attestation

val stage_label : stage -> string
val all_stages : stage list

val scheduling_time : considered:int -> Sim.Time.t
(** Host selection: grows with the number of servers the filters examine
    (the oat-database capability checks). *)

val networking_time : unit -> Sim.Time.t
val mapping_time : Hypervisor.Flavor.t -> Sim.Time.t
val spawning_time : Hypervisor.Image.t -> Hypervisor.Flavor.t -> Sim.Time.t

val termination_time : unit -> Sim.Time.t
val suspension_time : Hypervisor.Flavor.t -> Sim.Time.t
val resume_time : Hypervisor.Flavor.t -> Sim.Time.t

val migration_transfer_time : net:Net.Network.t -> Hypervisor.Flavor.t -> Sim.Time.t
(** Pre-copy transfer of the dirty fraction of RAM over the data-center
    network, plus fixed orchestration overhead. *)
