type row = {
  attacker : string;
  attacker_pct : float;
  victim_pct : float;
  victim_status : Core.Report.status;
}

type result = row list

(* Relative CPU usage of both domains over a profiling window, measured the
   way the Monitor Module does (domain runtime deltas). *)
let scenario attacker =
  let engine = Sim.Engine.create () in
  let sched = Hypervisor.Credit_scheduler.create ~engine ~pcpus:2 () in
  let victim = Hypervisor.Credit_scheduler.add_domain sched ~name:"victim" ~weight:256 in
  (* The victim loops CPU-bound work (the paper's victim programs). *)
  ignore (Hypervisor.Credit_scheduler.add_vcpu sched victim ~pin:0 (Hypervisor.Program.busy_loop ())
           : Hypervisor.Credit_scheduler.vcpu);
  let att_dom =
    match attacker with
    | "idle" -> None
    | "CPU_avail" ->
        let att = Hypervisor.Credit_scheduler.add_domain sched ~name:"attacker" ~weight:256 in
        ignore (Hypervisor.Credit_scheduler.add_vcpu sched att ~pin:0
                  (Attacks.Availability.main_program ())
                 : Hypervisor.Credit_scheduler.vcpu);
        ignore (Hypervisor.Credit_scheduler.add_vcpu sched att ~pin:1
                  (Attacks.Availability.helper_program ())
                 : Hypervisor.Credit_scheduler.vcpu);
        Some att
    | bench_name -> (
        match Workloads.Cloud_bench.of_name bench_name with
        | None -> invalid_arg ("fig7: unknown attacker " ^ bench_name)
        | Some bench ->
            let att =
              Hypervisor.Credit_scheduler.add_domain sched ~name:"attacker" ~weight:256
            in
            ignore (Hypervisor.Credit_scheduler.add_vcpu sched att ~pin:0
                      (Hypervisor.Program.duty_cycle ~run:bench.run ~idle:bench.idle)
                     : Hypervisor.Credit_scheduler.vcpu);
            Some att)
  in
  (* Warm up, then profile a window. *)
  Sim.Engine.run_until engine (Sim.Time.sec 5);
  let v0 = Hypervisor.Credit_scheduler.domain_runtime sched victim in
  let w0 = Hypervisor.Credit_scheduler.domain_waittime sched victim in
  let a0 =
    match att_dom with
    | Some d -> Hypervisor.Credit_scheduler.domain_runtime sched d
    | None -> 0
  in
  let window = Sim.Time.sec 5 in
  Sim.Engine.run_until engine (Sim.Time.sec 10);
  let victim_vtime = Hypervisor.Credit_scheduler.domain_runtime sched victim - v0 in
  let victim_steal = Hypervisor.Credit_scheduler.domain_waittime sched victim - w0 in
  let attacker_vtime =
    match att_dom with
    | Some d -> Hypervisor.Credit_scheduler.domain_runtime sched d - a0
    | None -> 0
  in
  let pct v = 100.0 *. float_of_int v /. float_of_int window in
  let victim_status, _evidence =
    Core.Interpret.interpret Core.Interpret.default_refs ~image_name:None
      Core.Property.Cpu_availability
      [
        Monitors.Measurement.Measured_cpu
          { vtime = victim_vtime; steal = victim_steal; window; vcpus = 1 };
      ]
  in
  { attacker; attacker_pct = pct attacker_vtime; victim_pct = pct victim_vtime; victim_status }

let run ?seed:_ () = List.map scenario Fig6.attacker_configs

let print rows =
  Common.section "Figure 7: relative CPU usage, attacker vs victim";
  Printf.printf "%-10s %14s %12s   %s\n" "attacker" "attacker CPU" "victim CPU" "availability verdict";
  List.iter
    (fun r ->
      Printf.printf "%-10s %13.1f%% %11.1f%%   %s\n" r.attacker r.attacker_pct r.victim_pct
        (Format.asprintf "%a" Core.Report.pp_status r.victim_status))
    rows
