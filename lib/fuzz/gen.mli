(** Scenario generator: a seeded PRNG composes random cloud histories.

    The grammar (weights in {!generate}):

    - the history opens with 1-3 launches so later ops have VMs to act on;
    - lifecycle ops (terminate/suspend/resume/migrate) and attestations
      reference VM slots, including slots of already-terminated VMs —
      attesting a dead VM is a path worth fuzzing;
    - configuration toggles (cache TTL, batching, audit) and fault
      adversaries flip at any point;
    - attack injection (hidden malware, image corruption) makes the
      health ground truth move under the cache;
    - time advances keep TTL expiry and periodic machinery in play.

    Everything derives from [Sim.Prng.create seed], so a (seed, size) pair
    names one scenario forever. *)

val generate : seed:int -> ops:int -> Op.scenario
(** [generate ~seed ~ops] builds a scenario of exactly [ops] operations
    (plus nothing else; the opening launches count). *)
