(** A small string-keyed LRU cache with hit/miss counters.

    Backs the RSA verification memo: lookups promote the entry to
    most-recently-used, and inserting past capacity evicts the
    least-recently-used entry.  Not thread-safe. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val find : 'a t -> string -> 'a option
(** Promotes the entry on hit; counts a miss otherwise. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or overwrite, promoting to most recent; evicts the LRU entry
    when the cache is full. *)

val length : 'a t -> int
val capacity : 'a t -> int

val hits : 'a t -> int
val misses : 'a t -> int
(** Cumulative [find] outcomes since creation (or the last [clear]). *)

val clear : 'a t -> unit
(** Drop all entries and reset the counters. *)
