(* STHs gossip as plain signed datagrams over the simulated network, so the
   lib/net fault adversaries apply: a garbled STH fails its signature (or
   does not decode) and is ignored, a dropped one just misses a round —
   the next interval's broadcast carries the same trusted heads again, so
   loss delays detection by at most one cadence. *)

let address name = "audit:" ^ name

let register net auditor =
  Net.Network.register net
    (address (Auditor.name auditor))
    (fun raw ->
      (match Sth.of_string raw with
      | Some sth -> Auditor.note auditor sth
      | None -> () (* garbage on the gossip port: ignore *));
      "ok")

let announce net ~src ~dst sth =
  (* Fire-and-forget: gossip tolerates loss by design, so no retries. *)
  ignore
    (Net.Network.call net ~src:(address src) ~dst:(address dst) (Sth.to_string sth))

let broadcast net auditor ~dst =
  List.iter
    (fun sth -> announce net ~src:(Auditor.name auditor) ~dst sth)
    (Auditor.trusted_heads auditor)
