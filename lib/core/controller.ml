type response_strategy = Terminate_vm | Suspend_vm | Migrate_vm

let strategy_label = function
  | Terminate_vm -> "termination"
  | Suspend_vm -> "suspension"
  | Migrate_vm -> "migration"

type response_record = {
  at : Sim.Time.t;
  vid : string;
  strategy : response_strategy;
  reaction : Sim.Time.t;
  detail : string;
}

type launch_error =
  [ `No_qualified_server
  | `Insufficient_memory
  | `Rejected of Report.t
  | `Attestation_failed of string ]

type launch_request = {
  owner : string;
  image : string;
  flavor : string;
  properties : Property.t list;
  workload : string;
  pins : int option list;
}

type t = {
  name : string;
  net : Net.Network.t;
  engine : Sim.Engine.t;
  ca_public : Crypto.Rsa.public;
  identity : Net.Secure_channel.Identity.t;
  drbg : Crypto.Drbg.t;
  sched_drbg : Crypto.Drbg.t;
  db : Database.t;
  (* One or more attestation servers, each responsible for a cluster of
     cloud servers (paper 3.2.3: "There can be different Attestation
     Servers for different clusters, enabling scalability").  Hosts are
     routed to their cluster's AS. *)
  attestation_servers : (string * Crypto.Rsa.public) array;
  as_channels : (int, Net.Secure_channel.Client.t) Hashtbl.t;
  (* Live ledger for cached-channel wire time (rebound per [attest]). *)
  as_ledger : Ledger.t ref;
  mutable cluster_of : string -> int;  (* host -> AS index *)
  cache : Verdict_cache.t;  (* healthy verdicts, TTL-bounded; 0 = off *)
  hypervisors : (string, Hypervisor.Server.t) Hashtbl.t;
  images : (string, Hypervisor.Image.t) Hashtbl.t;
  workloads : (string, Hypervisor.Flavor.t -> unit -> Hypervisor.Program.t list) Hashtbl.t;
  subscribers : (string, Protocol.controller_report -> unit) Hashtbl.t;
  periodic : (string * string, bool ref) Hashtbl.t; (* (vid, property) -> stop flag *)
  mutable response_policy : Report.t -> response_strategy option;
  mutable attest_attempts : int;
  mutable batching : bool;  (* Merkle-batched AS rounds in [attest_many]; off by default *)
  mutable auditing : bool;  (* require + verify AS inclusion receipts; off by default *)
  mutable auditor : Audit.Auditor.t option;  (* STH sink fed by verified receipts *)
  mutable auto_resume : bool;  (* re-check suspended VMs and resume on healthy *)
  mutable recheck_period : Sim.Time.t;
  mutable max_rechecks : int;
  mutable responses : response_record list; (* newest first *)
  mutable events : string list; (* newest first *)
  mutable next_vm : int;
}

let default_policy (r : Report.t) =
  match r.status with
  | Report.Healthy | Report.Unknown _ -> None
  | Report.Compromised _ -> (
      match r.property with
      | Property.Startup_integrity -> Some Terminate_vm
      | Property.Runtime_integrity -> Some Terminate_vm
      | Property.Covert_channel_free -> Some Migrate_vm
      | Property.Cpu_availability -> Some Migrate_vm)

let log t fmt =
  Format.kasprintf
    (fun s ->
      t.events <- Format.asprintf "[%a] %s" Sim.Time.pp (Sim.Engine.now t.engine) s :: t.events)
    fmt

let name t = t.name
let identity t = t.identity
let public_key t = t.identity.Net.Secure_channel.Identity.keypair.public
let db t = t.db
let engine t = t.engine

let register_hypervisor t server =
  let sname = Hypervisor.Server.name server in
  Hashtbl.replace t.hypervisors sname server;
  Database.add_server t.db
    {
      Database.name = sname;
      secure = Hypervisor.Server.is_secure server;
      backend =
        Option.value ~default:Tpm.Backend.Classic (Hypervisor.Server.backend_kind server);
      monitoring = List.filter_map Property.of_string (Hypervisor.Server.capabilities server);
    }

let hypervisor t name = Hashtbl.find_opt t.hypervisors name

let add_image t image = Hashtbl.replace t.images (Hypervisor.Image.name image) image
let find_image t name = Hashtbl.find_opt t.images name

let corrupt_image t name =
  match find_image t name with
  | None -> false
  | Some img ->
      Hashtbl.replace t.images name (Hypervisor.Image.tamper img ~payload:"storage-corruption");
      (* Image change: verdicts for every VM built from it are stale. *)
      List.iter
        (fun (r : Database.vm_record) ->
          if String.equal r.Database.image_name name then
            ignore (Verdict_cache.invalidate_vm t.cache ~vid:r.Database.vid : int))
        (Database.vms t.db);
      true

let register_workload t name factory = Hashtbl.replace t.workloads name factory

let subscribe t ~owner deliver = Hashtbl.replace t.subscribers owner deliver

let set_response_policy t policy = t.response_policy <- policy

let responses t = List.rev t.responses

let vm_host t ~vid = Option.bind (Database.vm t.db vid) (fun r -> r.Database.host)
let vm_state t ~vid = Option.map (fun r -> r.Database.state) (Database.vm t.db vid)
let events t = List.rev t.events

(* --- Talking to the Attestation Server ---------------------------------- *)

let as_index t ~host =
  let i = t.cluster_of host in
  if i < 0 || i >= Array.length t.attestation_servers then 0 else i

let as_transport t ~dst msg =
  let result, elapsed = Net.Network.call_with_retry t.net ~src:t.name ~dst msg in
  Ledger.add !(t.as_ledger) "network" elapsed;
  match result with
  | Ok r -> Ok r
  | Error `Dropped -> Error "message dropped"
  | Error (`No_such_host h) -> Error ("no such host: " ^ h)

let as_channel t ~idx ledger =
  match Hashtbl.find_opt t.as_channels idx with
  | Some ch -> Ok ch
  | None -> (
      let as_name, _ = t.attestation_servers.(idx) in
      Ledger.add ledger "handshake-crypto" Costs.handshake_crypto;
      match
        Net.Secure_channel.Client.connect ~identity:t.identity ~ca:t.ca_public
          ~seed:(t.name ^ "->" ^ as_name) ~peer:as_name
          ~transport:(as_transport t ~dst:as_name)
      with
      | Ok ch ->
          Hashtbl.replace t.as_channels idx ch;
          Ok ch
      | Error e -> Error e)

let ( let* ) = Result.bind

let is_no_such_host m =
  String.length m >= 12 && String.equal (String.sub m 0 12) "no such host"

(* Same split as in [Attestation_server]: only failures the lossy network
   can cause degrade to [Unknown]; anything forgery- or config-shaped stays
   a hard error. *)
let channel_availability (e : Net.Secure_channel.error) =
  match e with
  | `Transport m -> not (is_no_such_host m)
  | e -> Net.Secure_channel.desync e

let classify_channel what e =
  let msg = Format.asprintf "%s: %a" what Net.Secure_channel.pp_error e in
  if channel_availability e then `Avail msg else `Hard msg

let sign_controller_report t (req : Protocol.attest_request) ledger report =
  Ledger.add ledger "report-sign" Costs.report_sign;
  let quote = Protocol.q1 ~vid:req.vid ~property:req.property ~report ~nonce:req.nonce in
  let unsigned =
    {
      Protocol.vid = req.vid;
      property = req.property;
      report;
      nonce = req.nonce;
      quote;
      signature = "";
    }
  in
  let signature =
    Crypto.Rsa.sign t.identity.Net.Secure_channel.Identity.keypair.secret
      (Protocol.controller_report_payload unsigned)
  in
  { unsigned with Protocol.signature }

(* Verify the transparency-log inclusion receipt accompanying an AS report
   (auditing on only).  A missing or forged receipt is a HARD error — it is
   evidence of an equivocating or misconfigured AS, exactly the signal the
   audit layer exists to surface, so it must never degrade to a signed
   [Unknown] the way availability failures do. *)
let audit_check t ~idx (as_report : Protocol.as_report) receipt ledger =
  if not t.auditing then Ok ()
  else begin
    match receipt with
    | None -> Error (`Hard "audit receipt missing from AS reply")
    | Some (r : Audit.Receipt.t) ->
        Ledger.add ledger "audit-receipt-verify"
          (Costs.audit_receipt_verify ~size:r.Audit.Receipt.sth.Audit.Sth.size);
        let key = snd t.attestation_servers.(idx) in
        if
          not
            (Audit.Receipt.verify ~key ~entry:(Protocol.encode_as_report as_report) r)
        then Error (`Hard "audit inclusion receipt rejected")
        else begin
          (match t.auditor with
          | Some auditor -> Audit.Auditor.note auditor r.Audit.Receipt.sth
          | None -> ());
          Ok ()
        end
  end

(* One controller -> AS -> cloud server round.  Errors carry whether they
   are availability-shaped ([`Avail]) and thus eligible for degradation. *)
let attest_once t (req : Protocol.attest_request) ledger =
  Ledger.add ledger "db-lookup" Costs.db_lookup;
  let* record =
    match Database.vm t.db req.vid with
    | Some r -> Ok r
    | None -> Error (`Hard ("unknown VM " ^ req.vid))
  in
  let* host =
    match record.Database.host with
    | Some h -> Ok h
    | None -> Error (`Hard ("VM " ^ req.vid ^ " is not running on any host"))
  in
  let idx = as_index t ~host in
  let* channel =
    Result.map_error (classify_channel "AS channel") (as_channel t ~idx ledger)
  in
  let n2 = Crypto.Drbg.nonce t.drbg in
  let as_req =
    { Protocol.vid = req.vid; server = host; property = req.property; nonce = n2 }
  in
  let* raw =
    match
      Net.Secure_channel.Client.call_robust channel (Protocol.encode_as_request as_req)
    with
    | Ok raw -> Ok raw
    | Error e ->
        Hashtbl.remove t.as_channels idx;
        Error (classify_channel "AS call" e)
  in
  let* as_report, as_costs, receipt =
    Result.map_error (fun e -> `Hard e) (Attestation_server.decode_service_reply raw)
  in
  List.iter (fun (label, cost) -> Ledger.add ledger ("as:" ^ label) cost) as_costs;
  Ledger.add ledger "verify" Costs.signature_verify;
  let* () =
    Result.map_error
      (fun e -> `Hard (Format.asprintf "AS report rejected: %a" Protocol.pp_verify_error e))
      (Protocol.verify_as_report
         ~key:(snd t.attestation_servers.(idx))
         ~expected_vid:req.vid ~expected_server:host ~expected_property:req.property
         ~expected_nonce:n2 as_report)
  in
  let* () = audit_check t ~idx as_report receipt ledger in
  Ok (sign_controller_report t req ledger as_report.Protocol.report)

(* Never serve a stale healthy verdict after an unhealthy or undecidable
   observation; store fresh healthy ones for the TTL window. *)
let cache_bookkeep t ~vid ~property (report : Report.t) =
  match report.Report.status with
  | Report.Healthy -> ignore (Verdict_cache.store t.cache report : bool)
  | Report.Compromised _ | Report.Unknown _ ->
      ignore (Verdict_cache.invalidate t.cache ~vid ~property : bool)

(* The attest_service path: controller -> AS -> cloud server and back.
   Bounded re-attestation with degradation to a signed [Unknown] verdict
   when the path to the AS stays unavailable — the caller always gets an
   answer within the retry budget instead of an opaque transport error. *)
let attest t (req : Protocol.attest_request) =
  let ledger = Ledger.create () in
  t.as_ledger := ledger;
  match Verdict_cache.find t.cache ~vid:req.vid ~property:req.property with
  | Some cached ->
      (* Verdict-cache hit: re-sign the cached report under the customer's
         fresh nonce without a measurement round.  Only the controller-local
         costs are charged, so a cached re-attestation is visibly cheaper
         than a cold one on the ledger. *)
      Ledger.add ledger "db-lookup" Costs.db_lookup;
      (Ok (sign_controller_report t req ledger cached), ledger)
  | None ->
  let bookkeep (creport : Protocol.controller_report) =
    cache_bookkeep t ~vid:req.vid ~property:req.property creport.Protocol.report;
    creport
  in
  let rec go attempt =
    match attest_once t req ledger with
    | Ok creport -> Ok (bookkeep creport)
    | Error (`Avail msg) ->
        if attempt < t.attest_attempts then go (attempt + 1)
        else begin
          log t "attestation of %s degraded to unknown: %s" req.vid msg;
          let reason =
            Printf.sprintf "attestation server unreachable after %d attempts: %s" attempt
              msg
          in
          let report =
            {
              Report.vid = req.vid;
              property = req.property;
              status = Report.Unknown reason;
              evidence = "no attestation-server report";
              produced_at = Sim.Engine.now t.engine;
            }
          in
          Ok (bookkeep (sign_controller_report t req ledger report))
        end
    | Error (`Hard msg) -> Error msg
  in
  (go 1, ledger)

(* --- Cluster routing (protocol-term delegation) -------------------------- *)

let cluster_count t = Array.length t.attestation_servers
let cluster_of_host t ~host = as_index t ~host

(* Delegated attestation: the caller (a protocol term's [Deleg] node) claims
   the VM is appraised by AS cluster [cluster].  The claim is checked against
   the topology BEFORE any wire traffic — a misrouted delegation is a hard
   protocol error, never a degradable availability failure.  A matching
   route then takes the exact [attest] path, so delegation through the right
   cluster is byte-identical to the undelegated flow. *)
let attest_routed t ~cluster (req : Protocol.attest_request) =
  let fail msg = (Error msg, Ledger.create ()) in
  if cluster < 0 || cluster >= Array.length t.attestation_servers then
    fail (Printf.sprintf "delegation misroute: no AS cluster %d" cluster)
  else begin
    match Option.bind (Database.vm t.db req.vid) (fun r -> r.Database.host) with
    | None -> fail ("VM " ^ req.vid ^ " is not running on any host")
    | Some host ->
        let idx = as_index t ~host in
        if idx <> cluster then
          fail
            (Printf.sprintf "delegation misroute: VM %s is appraised by AS cluster %d, not %d"
               req.vid idx cluster)
        else attest t req
  end

(* --- Batched attestation (opt-in, like the verdict cache) ----------------- *)

(* One controller -> AS round covering a whole group of requests that share
   a host (and therefore an AS cluster).  The AS answers with individually
   signed reports derived from ONE Merkle-aggregated Trust-Module quote. *)
let attest_group_once t ~idx ~host items ledger =
  let* channel =
    Result.map_error (classify_channel "AS channel") (as_channel t ~idx ledger)
  in
  let n2 = Crypto.Drbg.nonce t.drbg in
  let ba = { Protocol.ba_server = host; ba_items = items; ba_nonce = n2 } in
  let* raw =
    match
      Net.Secure_channel.Client.call_robust channel (Protocol.encode_batch_as_request ba)
    with
    | Ok raw -> Ok raw
    | Error e ->
        Hashtbl.remove t.as_channels idx;
        Error (classify_channel "AS call" e)
  in
  let* per_item, as_costs, receipts =
    Result.map_error (fun e -> `Hard e) (Attestation_server.decode_batch_service_reply raw)
  in
  if List.length per_item <> List.length items then
    Error (`Hard "batch AS reply does not match request")
  else begin
    List.iter (fun (label, cost) -> Ledger.add ledger ("as:" ^ label) cost) as_costs;
    Ok (n2, per_item, receipts)
  end

let attest_group t ~host (reqs : Protocol.attest_request list) ledger =
  let idx = as_index t ~host in
  let items = List.map (fun (r : Protocol.attest_request) -> (r.Protocol.vid, r.Protocol.property)) reqs in
  let finish (req : Protocol.attest_request) creport =
    cache_bookkeep t ~vid:req.Protocol.vid ~property:req.Protocol.property
      creport.Protocol.report;
    creport
  in
  (* Each report in the batch reply still carries its own AS signature, so
     the controller's per-report verification is unchanged by batching.
     With auditing on, receipts pair with the [Ok] reports in reply order
     and each is verified before its verdict is accepted. *)
  let appraise n2 receipts (req : Protocol.attest_request) item =
    match item with
    | Error why -> Error ("AS rejected report: " ^ why)
    | Ok (as_report : Protocol.as_report) -> (
        let receipt =
          match !receipts with
          | r :: rest ->
              receipts := rest;
              Some r
          | [] -> None
        in
        Ledger.add ledger "verify" Costs.signature_verify;
        match
          Protocol.verify_as_report
            ~key:(snd t.attestation_servers.(idx))
            ~expected_vid:req.Protocol.vid ~expected_server:host
            ~expected_property:req.Protocol.property ~expected_nonce:n2 as_report
        with
        | Error e ->
            Error (Format.asprintf "AS report rejected: %a" Protocol.pp_verify_error e)
        | Ok () -> (
            match audit_check t ~idx as_report receipt ledger with
            | Error (`Hard msg) -> Error msg
            | Ok () ->
                Ok
                  (finish req (sign_controller_report t req ledger as_report.Protocol.report))))
  in
  let degraded msg (req : Protocol.attest_request) =
    let reason =
      Printf.sprintf "attestation server unreachable after %d attempts: %s"
        t.attest_attempts msg
    in
    let report =
      {
        Report.vid = req.Protocol.vid;
        property = req.Protocol.property;
        status = Report.Unknown reason;
        evidence = "no attestation-server report";
        produced_at = Sim.Engine.now t.engine;
      }
    in
    Ok (finish req (sign_controller_report t req ledger report))
  in
  let rec go attempt =
    match attest_group_once t ~idx ~host items ledger with
    | Ok (n2, per_item, receipts) -> List.map2 (appraise n2 (ref receipts)) reqs per_item
    | Error (`Avail msg) ->
        if attempt < t.attest_attempts then go (attempt + 1)
        else begin
          log t "batched attestation on %s degraded to unknown: %s" host msg;
          List.map (degraded msg) reqs
        end
    | Error (`Hard msg) -> List.map (fun _ -> Error msg) reqs
  in
  go 1

let set_batching t enabled = t.batching <- enabled
let batching t = t.batching
let set_auditing t enabled = t.auditing <- enabled
let auditing t = t.auditing
let set_auditor t auditor = t.auditor <- auditor
let auditor t = t.auditor

(* Attest many (vid, property) pairs in one call.  With batching enabled,
   cache misses are grouped by host and each group of two or more rides a
   single Merkle-batched AS round; cache hits, unplaced VMs and lone
   requests take the exact unbatched path.  With batching disabled this is
   just [attest] in a loop (shared ledger), so the flag only ever amortizes
   cost — it never changes who signs what. *)
let attest_many t (reqs : Protocol.attest_request list) =
  let shared = Ledger.create () in
  let merge sub = List.iter (fun (l, c) -> Ledger.add shared l c) (Ledger.entries sub) in
  let ireqs = List.mapi (fun i r -> (i, r)) reqs in
  let out = Array.make (List.length reqs) (Error "unprocessed") in
  let host_of (req : Protocol.attest_request) =
    if not t.batching then None
    else if Verdict_cache.find t.cache ~vid:req.vid ~property:req.property <> None then None
    else Option.bind (Database.vm t.db req.vid) (fun r -> r.Database.host)
  in
  let groups : (string, (int * Protocol.attest_request) list) Hashtbl.t = Hashtbl.create 4 in
  (* A (vid, property) pair already claimed by a group must not be measured
     a second time in the same round: the unbatched loop would have served
     the duplicate from the verdict cache the first result just populated
     (or re-measured it afterwards with the cache off).  Duplicates are
     deferred to the unbatched path AFTER the group rounds, which restores
     exactly that ordering — batching may never change a verdict. *)
  let deferred = ref [] in
  let singles =
    List.filter
      (fun (i, req) ->
        match host_of req with
        | None -> true
        | Some host ->
            let members = Option.value ~default:[] (Hashtbl.find_opt groups host) in
            let duplicate =
              List.exists
                (fun (_, (r : Protocol.attest_request)) ->
                  String.equal r.Protocol.vid req.Protocol.vid
                  && r.Protocol.property = req.Protocol.property)
                members
            in
            if duplicate then deferred := (i, req) :: !deferred
            else Hashtbl.replace groups host ((i, req) :: members);
            false)
      ireqs
  in
  (* A group of one gains nothing from a batch quote: unbatched path. *)
  let lone =
    Hashtbl.fold
      (fun host items acc -> match items with [ one ] -> (host, one) :: acc | _ -> acc)
      groups []
  in
  List.iter (fun (host, _) -> Hashtbl.remove groups host) lone;
  let singles =
    List.sort
      (fun (i, _) (j, _) -> compare i j)
      (List.map snd lone @ singles)
  in
  List.iter
    (fun (i, req) ->
      let result, sub = attest t req in
      merge sub;
      out.(i) <- result)
    singles;
  t.as_ledger := shared;
  let grouped =
    List.sort
      (fun (h1, _) (h2, _) -> compare h1 h2)
      (Hashtbl.fold
         (fun host items acc ->
           (host, List.sort (fun (i, _) (j, _) -> compare i j) items) :: acc)
         groups [])
  in
  List.iter
    (fun (host, items) ->
      let results = attest_group t ~host (List.map snd items) shared in
      List.iter2 (fun (i, _) r -> out.(i) <- r) items results)
    grouped;
  List.iter
    (fun (i, req) ->
      let result, sub = attest t req in
      merge sub;
      out.(i) <- result)
    (List.sort (fun (i, _) (j, _) -> compare i j) !deferred);
  (List.map2 (fun req r -> (req, r)) reqs (Array.to_list out), shared)

(* --- Responses (nova response module) ------------------------------------ *)

let record_response t vid strategy reaction detail =
  t.responses <- { at = Sim.Engine.now t.engine; vid; strategy; reaction; detail } :: t.responses;
  log t "response %s on %s: %s (%a)" (strategy_label strategy) vid detail Sim.Time.pp reaction

let periodic_stop t ~vid ~property =
  let key = (vid, Property.to_string property) in
  match Hashtbl.find_opt t.periodic key with
  | Some stop ->
      stop := true;
      Hashtbl.remove t.periodic key;
      log t "periodic attestation of %s for %a stopped" vid Property.pp property;
      true
  | None -> false

let stop_all_periodic t ~vid =
  List.iter (fun p -> ignore (periodic_stop t ~vid ~property:p : bool)) Property.all

let do_terminate t ~vid =
  match Database.vm t.db vid with
  | None -> Error ("unknown VM " ^ vid)
  | Some record ->
      stop_all_periodic t ~vid;
      ignore (Verdict_cache.invalidate_vm t.cache ~vid : int);
      (match record.Database.host with
      | Some host -> (
          match hypervisor t host with
          | Some hv -> ignore (Hypervisor.Server.destroy hv vid : bool)
          | None -> ())
      | None -> ());
      Database.set_state t.db ~vid Database.Terminated;
      Database.set_host t.db ~vid None;
      Ok (Lifecycle.termination_time ())

let do_suspend t ~vid =
  match Database.vm t.db vid with
  | None -> Error ("unknown VM " ^ vid)
  | Some record -> (
      match record.Database.host with
      | None -> Error ("VM " ^ vid ^ " is not running")
      | Some host -> (
          match hypervisor t host with
          | None -> Error ("host " ^ host ^ " is gone")
          | Some hv ->
              if Hypervisor.Server.suspend hv vid then begin
                Database.set_state t.db ~vid Database.Suspended;
                ignore (Verdict_cache.invalidate_vm t.cache ~vid : int);
                Ok (Lifecycle.suspension_time record.Database.flavor)
              end
              else Error ("could not suspend " ^ vid)))

let resume t ~vid =
  match Database.vm t.db vid with
  | None -> Error ("unknown VM " ^ vid)
  | Some record -> (
      match record.Database.host with
      | None -> Error ("VM " ^ vid ^ " is not placed")
      | Some host -> (
          match hypervisor t host with
          | None -> Error ("host " ^ host ^ " is gone")
          | Some hv ->
              if Hypervisor.Server.resume hv vid then begin
                Database.set_state t.db ~vid Database.Active;
                ignore (Verdict_cache.invalidate_vm t.cache ~vid : int);
                log t "resumed %s on %s" vid host;
                Ok (Lifecycle.resume_time record.Database.flavor)
              end
              else Error ("could not resume " ^ vid)))

let free_mem t name = Option.map Hypervisor.Server.mem_free_mb (hypervisor t name)

(* Post-migration attestation (sections 5.1 and 5.3): after landing on the
   destination, re-run the startup-integrity attestation; a bad destination
   platform sends the VM to the next qualified server. *)
let post_migration_attest t ~vid =
  let nonce = Crypto.Drbg.nonce t.drbg in
  attest t { Protocol.vid; property = Property.Startup_integrity; nonce }

let do_migrate t ~vid =
  match Database.vm t.db vid with
  | None -> Error ("unknown VM " ^ vid)
  | Some record -> (
      match record.Database.host with
      | None -> Error ("VM " ^ vid ^ " is not running")
      | Some src_name ->
          let monitored = record.Database.properties <> [] in
          let hop_cost =
            Lifecycle.suspension_time record.Database.flavor
            + Lifecycle.migration_transfer_time ~net:t.net record.Database.flavor
            + Lifecycle.resume_time record.Database.flavor
          in
          let rec hop ~from_name excluded cost attempts =
            if attempts <= 0 then begin
              log t "migration of %s: destinations exhausted, terminating" vid;
              Result.map (fun c -> cost + c) (do_terminate t ~vid)
            end
            else begin
              match
                Policy.select ~db:t.db ~free_mem:(free_mem t)
                  ~properties:record.Database.properties ~flavor:record.Database.flavor
                  ~exclude:excluded ()
              with
              | Error `No_qualified_server -> (
                  (* Section 5.3: no qualified server -> shut the VM down. *)
                  log t "migration of %s: no qualified server, terminating instead" vid;
                  match do_terminate t ~vid with
                  | Ok c -> Ok (cost + c)
                  | Error e -> Error e)
              | Ok decision -> (
                  let dst_name = decision.Policy.host in
                  match (hypervisor t from_name, hypervisor t dst_name) with
                  | Some src, Some dst -> (
                      Database.set_state t.db ~vid Database.Migrating;
                      match Hypervisor.Server.detach src vid with
                      | None -> Error ("VM " ^ vid ^ " vanished from " ^ from_name)
                      | Some inst -> (
                          match Hypervisor.Server.launch dst inst.Hypervisor.Server.vm with
                          | Error `Insufficient_memory ->
                              Database.set_state t.db ~vid Database.Terminated;
                              Database.set_host t.db ~vid None;
                              ignore (Verdict_cache.invalidate_vm t.cache ~vid : int);
                              Error ("target " ^ dst_name ^ " ran out of memory mid-migration")
                          | Ok _ -> (
                              Database.set_host t.db ~vid (Some dst_name);
                              (* The placement changed: any cached verdict
                                 describes measurements of the old host. *)
                              ignore (Verdict_cache.invalidate_vm t.cache ~vid : int);
                              let cost = cost + hop_cost in
                              if not monitored then begin
                                Database.set_state t.db ~vid Database.Active;
                                log t "migrated %s: %s -> %s" vid from_name dst_name;
                                Ok cost
                              end
                              else begin
                                (* Attest the new placement before declaring
                                   the migration done. *)
                                let result, ledger = post_migration_attest t ~vid in
                                let cost = cost + Ledger.total ledger in
                                match result with
                                | Ok creport
                                  when Report.is_healthy creport.Protocol.report ->
                                    Database.set_state t.db ~vid Database.Active;
                                    log t "migrated %s: %s -> %s (attested)" vid from_name
                                      dst_name;
                                    Ok cost
                                | Ok _ | Error _ ->
                                    log t
                                      "migration of %s: destination %s failed attestation, \
                                       retrying elsewhere"
                                      vid dst_name;
                                    hop ~from_name:dst_name (dst_name :: excluded) cost
                                      (attempts - 1)
                              end)))
                  | _ -> Error "hypervisor lookup failed")
            end
          in
          hop ~from_name:src_name [ src_name ] 0 3)

let respond t strategy ~vid =
  let result =
    match strategy with
    | Terminate_vm -> do_terminate t ~vid
    | Suspend_vm -> do_suspend t ~vid
    | Migrate_vm -> do_migrate t ~vid
  in
  (match result with
  | Ok reaction -> record_response t vid strategy reaction (strategy_label strategy ^ " completed")
  | Error e -> log t "response %s on %s failed: %s" (strategy_label strategy) vid e);
  result

let terminate t ~vid =
  match do_terminate t ~vid with
  | Ok _ ->
      log t "terminated %s" vid;
      true
  | Error _ -> false

(* --- Periodic attestation -------------------------------------------------- *)

let deliver t ~owner report =
  match Hashtbl.find_opt t.subscribers owner with
  | Some f -> f report
  | None -> ()

(* Section 5.2 response #2: a suspended VM is re-attested periodically;
   if the health recovers it is resumed, otherwise it is eventually
   terminated. *)
let start_suspension_recheck t ~vid ~property =
  let checks = ref 0 in
  let rec recheck () =
    if Database.vm t.db vid <> None && vm_state t ~vid = Some Database.Suspended then begin
      incr checks;
      let nonce = Crypto.Drbg.nonce t.drbg in
      match fst (attest t { Protocol.vid; property; nonce }) with
      | Ok report when Report.is_healthy report.Protocol.report ->
          log t "suspended %s re-attested healthy; resuming" vid;
          ignore (resume t ~vid : (Sim.Time.t, string) result)
      | Ok _ | Error _ ->
          if !checks >= t.max_rechecks then begin
            log t "suspended %s still unhealthy after %d checks; terminating" vid !checks;
            ignore (do_terminate t ~vid : (Sim.Time.t, string) result)
          end
          else
            ignore
              (Sim.Engine.schedule_after t.engine ~delay:t.recheck_period recheck
                : Sim.Engine.handle)
    end
  in
  ignore (Sim.Engine.schedule_after t.engine ~delay:t.recheck_period recheck : Sim.Engine.handle)

(* Execute the policy-selected response to a bad periodic attestation. *)
let execute_response t strategy ~vid ~property =
  ignore (periodic_stop t ~vid ~property : bool);
  (match respond t strategy ~vid with
  | Ok _ ->
      if strategy = Suspend_vm && t.auto_resume then start_suspension_recheck t ~vid ~property
  | Error _ -> ())

let periodic_start t ~vid ~property ~schedule ~nonce =
  match Database.vm t.db vid with
  | None -> false
  | Some record ->
      let key = (vid, Property.to_string property) in
      if Hashtbl.mem t.periodic key then false
      else begin
        let stop = ref false in
        let counter = ref 0 in
        let rec arm () =
          let delay = Schedule.next_delay schedule t.sched_drbg in
          ignore
            (Sim.Engine.schedule_after t.engine ~delay (fun () -> if not !stop then tick ())
              : Sim.Engine.handle)
        and tick () =
          incr counter;
          (* Fresh per-round nonce derived from the subscription nonce, so
             the customer can recompute and check it. *)
          let round_nonce = Crypto.Sha256.digest (nonce ^ "|" ^ string_of_int !counter) in
          let result, _ledger = attest t { Protocol.vid; property; nonce = round_nonce } in
          (match result with
          | Error e -> log t "periodic attestation of %s failed: %s" vid e
          | Ok report ->
              deliver t ~owner:record.Database.owner report;
              let r = report.Protocol.report in
              if not (Report.is_healthy r) then begin
                match t.response_policy r with
                | Some strategy -> execute_response t strategy ~vid ~property
                | None -> ()
              end);
          if not !stop then arm ()
        in
        Hashtbl.replace t.periodic key stop;
        arm ();
        log t "periodic attestation of %s for %a %a" vid Property.pp property Schedule.pp
          schedule;
        true
      end

let periodic_active t = Hashtbl.length t.periodic

(* --- Launch ------------------------------------------------------------------ *)

let fresh_vid t =
  t.next_vm <- t.next_vm + 1;
  Printf.sprintf "vm-%04d" t.next_vm

let idle_workload flavor () = Hypervisor.Vm.idle_programs flavor ()

let launch t (req : launch_request) =
  match (find_image t req.image, Hypervisor.Flavor.of_name req.flavor) with
  | None, _ -> Error (`Attestation_failed ("unknown image " ^ req.image))
  | _, None -> Error (`Attestation_failed ("unknown flavor " ^ req.flavor))
  | Some image, Some flavor ->
      let programs =
        match Hashtbl.find_opt t.workloads req.workload with
        | Some factory -> factory flavor
        | None -> idle_workload flavor
      in
      let vid = fresh_vid t in
      let record =
        {
          Database.vid;
          owner = req.owner;
          image_name = req.image;
          flavor;
          properties = req.properties;
          host = None;
          state = Database.Building;
        }
      in
      Database.add_vm t.db record;
      let stages = Ledger.create () in
      (* Retry loop: a server failing platform attestation is excluded and
         scheduling runs again (paper section 5.1). *)
      let rec try_launch excluded attempts =
        if attempts <= 0 then Error `No_qualified_server
        else begin
          match
            Policy.select ~db:t.db ~free_mem:(free_mem t) ~properties:req.properties ~flavor
              ~exclude:excluded ()
          with
          | Error `No_qualified_server -> Error `No_qualified_server
          | Ok decision -> (
              Ledger.add stages "scheduling"
                (Lifecycle.scheduling_time ~considered:decision.Policy.considered);
              let host = decision.Policy.host in
              match hypervisor t host with
              | None -> try_launch (host :: excluded) (attempts - 1)
              | Some hv -> (
                  Ledger.add stages "networking" (Lifecycle.networking_time ());
                  Ledger.add stages "mapping" (Lifecycle.mapping_time flavor);
                  let vm =
                    Hypervisor.Vm.make ~vid ~owner:req.owner ~image ~flavor
                      ~programs ()
                  in
                  match Hypervisor.Server.launch hv ~pins:req.pins vm with
                  | Error `Insufficient_memory -> try_launch (host :: excluded) (attempts - 1)
                  | Ok _instance -> (
                      Ledger.add stages "spawning" (Lifecycle.spawning_time image flavor);
                      Database.set_host t.db ~vid (Some host);
                      if req.properties = [] then begin
                        Database.set_state t.db ~vid Database.Active;
                        log t "launched %s on %s (unmonitored)" vid host;
                        Ok { Commands.vid; stages = Ledger.entries stages }
                      end
                      else begin
                        (* Fifth stage: startup attestation. *)
                        let n = Crypto.Drbg.nonce t.drbg in
                        let result, ledger =
                          attest t
                            { Protocol.vid; property = Property.Startup_integrity; nonce = n }
                        in
                        Ledger.add stages "attestation" (Ledger.total ledger);
                        match result with
                        | Error e ->
                            ignore (Hypervisor.Server.destroy hv vid : bool);
                            Database.set_host t.db ~vid None;
                            Error (`Attestation_failed e)
                        | Ok creport -> (
                            let r = creport.Protocol.report in
                            match r.Report.status with
                            | Report.Healthy ->
                                Database.set_state t.db ~vid Database.Active;
                                log t "launched %s on %s (attested)" vid host;
                                Ok { Commands.vid; stages = Ledger.entries stages }
                            | Report.Compromised why
                              when String.length why >= 8 && String.sub why 0 8 = "platform" ->
                                (* Bad platform: evict and reschedule elsewhere. *)
                                ignore (Hypervisor.Server.destroy hv vid : bool);
                                Database.set_host t.db ~vid None;
                                log t "launch of %s: platform %s failed attestation, retrying"
                                  vid host;
                                try_launch (host :: excluded) (attempts - 1)
                            | Report.Compromised _ | Report.Unknown _ ->
                                (* Bad image (or undecidable): reject the launch. *)
                                ignore (Hypervisor.Server.destroy hv vid : bool);
                                Database.set_host t.db ~vid None;
                                Database.set_state t.db ~vid Database.Terminated;
                                log t "launch of %s rejected: %a" vid Report.pp_status
                                  r.Report.status;
                                Error (`Rejected r))
                      end)))
        end
      in
      let result = try_launch [] 4 in
      (match result with
      | Error _ when Database.vm t.db vid <> None ->
          Database.set_state t.db ~vid Database.Terminated;
          ignore (Verdict_cache.invalidate_vm t.cache ~vid : int)
      | _ -> ());
      result

(* --- Customer API handler ---------------------------------------------------- *)

let owns t ~peer vid =
  match Database.vm t.db vid with
  | Some r -> String.equal r.Database.owner peer
  | None -> false

let handle_command t ~peer command =
  match command with
  | Commands.Launch { image; flavor; properties; workload } -> (
      match launch t { owner = peer; image; flavor; properties; workload; pins = [] } with
      | Ok info -> Commands.Ok_launch info
      | Error `No_qualified_server -> Commands.Err "no qualified server"
      | Error `Insufficient_memory -> Commands.Err "insufficient capacity"
      | Error (`Rejected r) ->
          Commands.Err (Format.asprintf "launch rejected: %a" Report.pp_status r.Report.status)
      | Error (`Attestation_failed e) -> Commands.Err ("attestation failed: " ^ e))
  | Commands.Attest_current req ->
      if not (owns t ~peer req.Protocol.vid) then Commands.Err "no such VM"
      else begin
        match fst (attest t req) with
        | Ok report -> Commands.Ok_report report
        | Error e -> Commands.Err e
      end
  | Commands.Attest_periodic { vid; property; schedule; nonce } ->
      if not (owns t ~peer vid) then Commands.Err "no such VM"
      else if Schedule.min_period schedule < Sim.Time.ms 100 then
        Commands.Err "frequency too high"
      else if periodic_start t ~vid ~property ~schedule ~nonce then Commands.Ok_ack
      else Commands.Err "periodic attestation already active"
  | Commands.Stop_periodic { vid; property; nonce = _ } ->
      if not (owns t ~peer vid) then Commands.Err "no such VM"
      else if periodic_stop t ~vid ~property then Commands.Ok_ack
      else Commands.Err "no periodic attestation active"
  | Commands.Terminate { vid } ->
      if not (owns t ~peer vid) then Commands.Err "no such VM"
      else if terminate t ~vid then Commands.Ok_ack
      else Commands.Err "could not terminate"
  | Commands.Describe { vid } -> (
      if not (owns t ~peer vid) then Commands.Err "no such VM"
      else begin
        match Database.vm t.db vid with
        | Some r ->
            Commands.Ok_describe
              {
                state = Database.vm_state_to_string r.Database.state;
                properties = r.Database.properties;
              }
        | None -> Commands.Err "no such VM"
      end)

let customer_handler t ~peer plaintext =
  match Commands.decode_command plaintext with
  | None -> Commands.encode_reply (Commands.Err "malformed command")
  | Some command -> Commands.encode_reply (handle_command t ~peer command)

let create ~net ~engine ~ca ~seed ?(key_bits = 1024) ?(name = "cloud-controller")
    ~attestation_servers ?(cluster_of = fun _ -> 0) () =
  if attestation_servers = [] then
    invalid_arg "Controller.create: need at least one attestation server";
  let identity =
    Net.Secure_channel.Identity.make ca ~seed:(seed ^ "|cc") ~bits:key_bits ~name ()
  in
  let t =
    {
      name;
      net;
      engine;
      ca_public = Net.Ca.public ca;
      identity;
      drbg = Crypto.Drbg.create ~seed:(seed ^ "|cc-drbg");
      sched_drbg = Crypto.Drbg.create ~seed:(seed ^ "|cc-sched");
      db = Database.create ();
      attestation_servers = Array.of_list attestation_servers;
      as_channels = Hashtbl.create 4;
      as_ledger = ref (Ledger.create ());
      cluster_of;
      cache = Verdict_cache.create ~clock:(fun () -> Sim.Engine.now engine) ();
      hypervisors = Hashtbl.create 8;
      images = Hashtbl.create 8;
      workloads = Hashtbl.create 8;
      subscribers = Hashtbl.create 8;
      periodic = Hashtbl.create 8;
      response_policy = default_policy;
      attest_attempts = 2;
      batching = false;
      auditing = false;
      auditor = None;
      auto_resume = true;
      recheck_period = Sim.Time.sec 5;
      max_rechecks = 10;
      responses = [];
      events = [];
      next_vm = 0;
    }
  in
  let channel_server =
    Net.Secure_channel.Server.create ~identity ~ca:(Net.Ca.public ca) ~seed
      ~on_request:(fun ~peer plaintext -> customer_handler t ~peer plaintext)
  in
  Net.Network.register net name (Net.Secure_channel.Server.handle channel_server);
  t

let set_cluster_map t f = t.cluster_of <- f
let set_attest_attempts t n = t.attest_attempts <- max 1 n
let verdict_cache t = t.cache
let set_verdict_cache_ttl t ttl = Verdict_cache.set_ttl t.cache ttl

let set_auto_resume t ?recheck_period ?max_rechecks enabled =
  t.auto_resume <- enabled;
  (match recheck_period with Some p -> t.recheck_period <- p | None -> ());
  match max_rechecks with Some m -> t.max_rechecks <- m | None -> ()
