(** Figure 4: cross-VM covert information leakage.

    A sender VM and receiver VM share a pCPU; the sender encodes a random
    bit string as long/short CPU bursts.  Reproduces the paper's trace of
    sender CPU-usage intervals over time, and additionally reports the
    receiver's decoding accuracy and the channel bandwidth. *)

type result = {
  bits_sent : bool list;
  bits_received : bool list;
  bit_error_rate : float;
  bandwidth_bps : float;
  trace : (float * float) list;  (** (time ms, sender CPU interval ms) *)
}

val run : ?seed:int -> ?bits:int -> unit -> result

val print : result -> unit
