lib/experiments/fig4.ml: Attacks Common Hypervisor List Printf Sim
