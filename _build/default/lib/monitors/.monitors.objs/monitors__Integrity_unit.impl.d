lib/monitors/integrity_unit.ml: Hypervisor Tpm
