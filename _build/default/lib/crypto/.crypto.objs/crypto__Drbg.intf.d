lib/crypto/drbg.mli: Sim
