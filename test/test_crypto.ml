(* Tests for the from-scratch cryptography: standard vectors plus algebraic
   property tests. *)

let qtest = QCheck_alcotest.to_alcotest

let hex = Crypto.Hexs.encode

(* --- SHA-256 (FIPS 180-4 / NIST CAVP vectors) ----------------------------- *)

let sha_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
  ]

let test_sha256_vectors () =
  List.iter
    (fun (msg, want) -> Alcotest.(check string) ("sha256 " ^ msg) want (Crypto.Sha256.hex msg))
    sha_vectors

let test_sha256_million_a () =
  Alcotest.(check string) "million a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Crypto.Sha256.hex (String.make 1_000_000 'a'))

let sha256_incremental_matches =
  QCheck.Test.make ~name:"incremental = one-shot for any chunking" ~count:200
    QCheck.(pair string (list small_nat))
    (fun (s, cuts) ->
      let ctx = Crypto.Sha256.init () in
      let n = String.length s in
      let pos = ref 0 in
      List.iter
        (fun cut ->
          let take = min cut (n - !pos) in
          if take > 0 then begin
            Crypto.Sha256.update ctx (String.sub s !pos take);
            pos := !pos + take
          end)
        cuts;
      if !pos < n then Crypto.Sha256.update ctx (String.sub s !pos (n - !pos));
      String.equal (Crypto.Sha256.finalize ctx) (Crypto.Sha256.digest s))

let test_sha256_digest_list () =
  Alcotest.(check string) "digest_list = digest of concat"
    (hex (Crypto.Sha256.digest "foobarbaz"))
    (hex (Crypto.Sha256.digest_list [ "foo"; "bar"; "baz" ]))

(* Known-answer tests for the streaming context across odd block boundaries:
   every FIPS vector, fed in two chunks split just before, at, and just
   after the 64-byte block edge (and at byte 1), must reproduce the
   one-shot digest.  Guards block-buffer bookkeeping during future kernel
   optimization work. *)
let test_sha256_streaming_boundaries () =
  List.iter
    (fun (msg, want) ->
      List.iter
        (fun cut ->
          if cut > 0 && cut < String.length msg then begin
            let ctx = Crypto.Sha256.init () in
            Crypto.Sha256.update ctx (String.sub msg 0 cut);
            Crypto.Sha256.update ctx (String.sub msg cut (String.length msg - cut));
            Alcotest.(check string)
              (Printf.sprintf "len %d split at %d" (String.length msg) cut)
              want
              (hex (Crypto.Sha256.finalize ctx))
          end)
        [ 1; 55; 56; 63; 64; 65 ])
    sha_vectors

let test_sha256_streaming_million_a () =
  (* The million-a vector streamed in 997-byte chunks: 997 is odd and no
     divisor of 64, so every update straddles a block boundary. *)
  let ctx = Crypto.Sha256.init () in
  let chunk = String.make 997 'a' in
  let rec feed left =
    if left > 0 then begin
      let take = min left 997 in
      Crypto.Sha256.update ctx (if take = 997 then chunk else String.make take 'a');
      feed (left - take)
    end
  in
  feed 1_000_000;
  Alcotest.(check string) "streamed million a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (hex (Crypto.Sha256.finalize ctx))

(* --- HMAC (RFC 4231) ------------------------------------------------------ *)

let test_hmac_rfc4231 () =
  let check name key data want =
    Alcotest.(check string) name want (hex (Crypto.Hmac.mac ~key data))
  in
  check "case 1"
    (String.make 20 '\x0b')
    "Hi There" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7";
  check "case 2" "Jefe" "what do ya want for nothing?"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843";
  check "case 3"
    (String.make 20 '\xaa')
    (String.make 50 '\xdd')
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe";
  (* case 4: 25-byte incrementing key *)
  check "case 4"
    (String.init 25 (fun i -> Char.chr (i + 1)))
    (String.make 50 '\xcd')
    "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b";
  (* case 6: key longer than the block size *)
  check "case 6"
    (String.make 131 '\xaa')
    "Test Using Larger Than Block-Size Key - Hash Key First"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54";
  (* case 7: key and data both longer than the block size *)
  check "case 7"
    (String.make 131 '\xaa')
    "This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm."
    "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"

let test_hmac_verify () =
  let tag = Crypto.Hmac.mac ~key:"k" "message" in
  Alcotest.(check bool) "accepts" true (Crypto.Hmac.verify ~key:"k" ~tag "message");
  Alcotest.(check bool) "rejects other message" false
    (Crypto.Hmac.verify ~key:"k" ~tag "messagX");
  Alcotest.(check bool) "rejects other key" false (Crypto.Hmac.verify ~key:"K" ~tag "message")

let test_hmac_derive () =
  let a = Crypto.Hmac.derive ~secret:"s" ~label:"a" 48 in
  let b = Crypto.Hmac.derive ~secret:"s" ~label:"b" 48 in
  Alcotest.(check int) "length" 48 (String.length a);
  Alcotest.(check bool) "label separation" false (String.equal a b);
  Alcotest.(check string) "deterministic" a (Crypto.Hmac.derive ~secret:"s" ~label:"a" 48);
  (* prefix property: derive is a stream *)
  Alcotest.(check string) "prefix consistent"
    (String.sub a 0 16)
    (Crypto.Hmac.derive ~secret:"s" ~label:"a" 16)

(* --- ChaCha20 (RFC 8439) --------------------------------------------------- *)

let test_chacha20_rfc_block () =
  let key =
    Crypto.Hexs.decode "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
  in
  let nonce = Crypto.Hexs.decode "000000090000004a00000000" in
  let block = Crypto.Chacha20.block ~key ~nonce ~counter:1 in
  Alcotest.(check string) "RFC 8439 2.3.2 keystream"
    "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4ed2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
    (hex block)

let test_chacha20_rfc_encrypt () =
  let key =
    Crypto.Hexs.decode "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
  in
  let nonce = Crypto.Hexs.decode "000000000000004a00000000" in
  let plaintext =
    "Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it."
  in
  let cipher = Crypto.Chacha20.xor ~key ~nonce ~counter:1 plaintext in
  Alcotest.(check string) "RFC 8439 2.4.2 ciphertext prefix"
    "6e2e359a2568f98041ba0728dd0d6981" (String.sub (hex cipher) 0 32)

let chacha20_involution =
  QCheck.Test.make ~name:"xor is its own inverse" ~count:200 QCheck.string (fun s ->
      let key = Crypto.Sha256.digest "key" in
      let nonce = String.sub (Crypto.Sha256.digest "nonce") 0 12 in
      String.equal s (Crypto.Chacha20.xor ~key ~nonce (Crypto.Chacha20.xor ~key ~nonce s)))

let test_chacha20_bad_sizes () =
  Alcotest.check_raises "short key" (Invalid_argument "Chacha20: key must be 32 bytes")
    (fun () -> ignore (Crypto.Chacha20.block ~key:"short" ~nonce:(String.make 12 '0') ~counter:0));
  Alcotest.check_raises "short nonce" (Invalid_argument "Chacha20: nonce must be 12 bytes")
    (fun () ->
      ignore (Crypto.Chacha20.block ~key:(String.make 32 'k') ~nonce:"short" ~counter:0))

(* --- DRBG ------------------------------------------------------------------ *)

let test_drbg_deterministic () =
  let a = Crypto.Drbg.create ~seed:"s" and b = Crypto.Drbg.create ~seed:"s" in
  Alcotest.(check string) "same stream"
    (hex (Crypto.Drbg.random_bytes a 64))
    (hex (Crypto.Drbg.random_bytes b 64))

let test_drbg_streams_differ () =
  let a = Crypto.Drbg.create ~seed:"s1" and b = Crypto.Drbg.create ~seed:"s2" in
  Alcotest.(check bool) "different seeds differ" false
    (String.equal (Crypto.Drbg.random_bytes a 32) (Crypto.Drbg.random_bytes b 32))

let test_drbg_reseed_changes_stream () =
  let a = Crypto.Drbg.create ~seed:"s" and b = Crypto.Drbg.create ~seed:"s" in
  Crypto.Drbg.reseed b "extra entropy";
  Alcotest.(check bool) "reseed diverges" false
    (String.equal (Crypto.Drbg.random_bytes a 32) (Crypto.Drbg.random_bytes b 32))

let drbg_int_bounds =
  QCheck.Test.make ~name:"Drbg.random_int in bounds" ~count:300 QCheck.small_int (fun bound ->
      QCheck.assume (bound > 0);
      let d = Crypto.Drbg.create ~seed:"b" in
      let v = Crypto.Drbg.random_int d bound in
      v >= 0 && v < bound)

(* --- Bignum ----------------------------------------------------------------- *)

module B = Crypto.Bignum

let nat = QCheck.map abs QCheck.int

let test_bignum_roundtrip_int () =
  List.iter
    (fun n -> Alcotest.(check (option int)) "roundtrip" (Some n) (B.to_int (B.of_int n)))
    [ 0; 1; 255; 1 lsl 26; (1 lsl 26) - 1; max_int ]

let bignum_addsub =
  QCheck.Test.make ~name:"(a+b)-b = a" ~count:300 (QCheck.pair nat nat) (fun (a, b) ->
      B.equal (B.of_int a) (B.sub (B.add (B.of_int a) (B.of_int b)) (B.of_int b)))

let bignum_mul_matches_int =
  QCheck.Test.make ~name:"mul matches native for small ints" ~count:300
    QCheck.(pair (int_range 0 (1 lsl 30)) (int_range 0 (1 lsl 30)))
    (fun (a, b) -> B.to_int (B.mul (B.of_int a) (B.of_int b)) = Some (a * b))

let big_of_seed seed bits =
  let d = Crypto.Drbg.create ~seed in
  B.random_bits d bits

let bignum_divmod_invariant =
  QCheck.Test.make ~name:"divmod: a = q*b + r, r < b (512-bit)" ~count:60
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let a = big_of_seed (string_of_int s1) 512 in
      let b = big_of_seed (string_of_int s2 ^ "x") 256 in
      QCheck.assume (not (B.is_zero b));
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r) && B.compare r b < 0)

let bignum_divmod_small_consistent =
  QCheck.Test.make ~name:"divmod_small agrees with divmod" ~count:100
    QCheck.(pair small_int (int_range 1 1000000))
    (fun (s, d) ->
      let a = big_of_seed (string_of_int s) 300 in
      let q1, r1 = B.divmod_small a d in
      let q2, r2 = B.divmod a (B.of_int d) in
      B.equal q1 q2 && B.to_int r2 = Some r1)

let test_bignum_div_by_zero () =
  Alcotest.check_raises "division by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let bignum_shift_roundtrip =
  QCheck.Test.make ~name:"shift left then right" ~count:100
    QCheck.(pair small_int (int_range 0 100))
    (fun (s, k) ->
      let a = big_of_seed (string_of_int s) 200 in
      B.equal a (B.shift_right (B.shift_left a k) k))

let bignum_modpow_matches_naive =
  QCheck.Test.make ~name:"mod_pow matches naive small case" ~count:100
    QCheck.(triple (int_range 0 1000) (int_range 0 40) (int_range 2 10000))
    (fun (base, e, m) ->
      let naive = ref 1 in
      for _ = 1 to e do
        naive := !naive * base mod m
      done;
      B.to_int (B.mod_pow ~base:(B.of_int base) ~exp:(B.of_int e) ~modulus:(B.of_int m))
      = Some !naive)

let test_bignum_modpow_fermat () =
  (* Fermat's little theorem on a large prime. *)
  let d = Crypto.Drbg.create ~seed:"fermat" in
  let p = B.generate_prime d ~bits:192 in
  let a = B.random_below d p in
  let a = if B.is_zero a then B.one else a in
  let r = B.mod_pow ~base:a ~exp:(B.sub p B.one) ~modulus:p in
  Alcotest.(check bool) "a^(p-1) = 1 mod p" true (B.equal r B.one)

let bignum_mod_inverse =
  QCheck.Test.make ~name:"mod_inverse: a * a^-1 = 1 (mod m)" ~count:60
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let d = Crypto.Drbg.create ~seed:(Printf.sprintf "inv%d-%d" s1 s2) in
      let m = B.generate_prime d ~bits:96 in
      let a = B.random_below d m in
      QCheck.assume (not (B.is_zero a));
      match B.mod_inverse a m with
      | None -> false
      | Some inv -> B.equal (B.rem (B.mul a inv) m) B.one)

let test_bignum_mod_inverse_none () =
  Alcotest.(check bool) "no inverse when gcd > 1" true
    (B.mod_inverse (B.of_int 6) (B.of_int 9) = None)

let bignum_bytes_roundtrip =
  QCheck.Test.make ~name:"of_bytes_be/to_bytes_be roundtrip" ~count:100 QCheck.small_int
    (fun s ->
      let a = big_of_seed (string_of_int s) 300 in
      B.equal a (B.of_bytes_be (B.to_bytes_be a)))

let test_bignum_to_bytes_width () =
  let a = B.of_int 0xABCD in
  Alcotest.(check string) "padded" "00000000abcd" (Crypto.Hexs.encode (B.to_bytes_be ~width:6 a));
  Alcotest.check_raises "width too small"
    (Invalid_argument "Bignum.to_bytes_be: width too small") (fun () ->
      ignore (B.to_bytes_be ~width:1 a))

let test_bignum_primality_known () =
  let d = Crypto.Drbg.create ~seed:"primes" in
  List.iter
    (fun (n, expect) ->
      Alcotest.(check bool)
        (string_of_int n) expect
        (B.is_probable_prime d (B.of_int n)))
    [
      (2, true); (3, true); (4, false); (17, true); (561, false) (* Carmichael *);
      (7919, true); (7917, false); (104729, true); (1000003, true); (1000001, false);
    ]

let test_bignum_generate_prime_bits () =
  let d = Crypto.Drbg.create ~seed:"gen" in
  let p = B.generate_prime d ~bits:128 in
  Alcotest.(check int) "bit length" 128 (B.bit_length p);
  Alcotest.(check bool) "odd" true (B.is_odd p);
  Alcotest.(check bool) "probably prime" true (B.is_probable_prime d p)

let test_bignum_gcd () =
  Alcotest.(check (option int)) "gcd" (Some 6)
    (B.to_int (B.gcd (B.of_int 54) (B.of_int 24)));
  Alcotest.(check (option int)) "gcd with zero" (Some 7)
    (B.to_int (B.gcd (B.of_int 7) B.zero))

let test_bignum_hex_roundtrip () =
  let a = big_of_seed "hexrt" 260 in
  Alcotest.(check bool) "hex roundtrip" true (B.equal a (B.of_hex (B.to_hex a)))

(* Regression: values just above 2^62 used to truncate — [limb lsl shift]
   dropped the high bits before the sign check, so 2^64 + 5 came back as
   [Some 5]-style garbage and could misroute primality testing onto the
   small-integer trial-division path. *)
let test_bignum_to_int_overflow () =
  let two_pow k = B.shift_left B.one k in
  Alcotest.(check (option int)) "2^62 - 1 fits" (Some max_int)
    (B.to_int (B.sub (two_pow 62) B.one));
  Alcotest.(check (option int)) "2^62 overflows" None (B.to_int (two_pow 62));
  Alcotest.(check (option int)) "2^63 overflows" None (B.to_int (two_pow 63));
  Alcotest.(check (option int)) "2^64 + 5 overflows (3-limb)" None
    (B.to_int (B.add (two_pow 64) (B.of_int 5)));
  Alcotest.(check (option int)) "2^100 + 1 overflows" None
    (B.to_int (B.add (two_pow 100) B.one));
  (* A 3-limb value whose high limbs are zero after normalization cannot
     exist, but a high-limb value with only low bits set must still fit. *)
  Alcotest.(check (option int)) "(2^62-1) round trips through bytes" (Some max_int)
    (B.to_int (B.of_bytes_be (B.to_bytes_be (B.sub (two_pow 62) B.one))))

(* Differential tests against the native int as reference model: every
   operation on small operands must agree exactly with 63-bit machine
   arithmetic. *)
let bignum_differential_int_model =
  QCheck.Test.make ~name:"add/sub/mul/divmod/mod_pow match int model" ~count:500
    QCheck.(triple (int_range 0 (1 lsl 30)) (int_range 0 (1 lsl 30)) (int_range 1 1000))
    (fun (a, b, m) ->
      let ba = B.of_int a and bb = B.of_int b in
      let hi = max a b and lo = min a b in
      let q, r = B.divmod (B.of_int hi) (B.of_int (max 1 lo)) in
      let e = lo mod 16 and modulus = m + 1 in
      let pow_ref =
        let acc = ref 1 in
        for _ = 1 to e do
          acc := !acc * (a mod modulus) mod modulus
        done;
        !acc
      in
      B.to_int (B.add ba bb) = Some (a + b)
      && B.to_int (B.sub (B.of_int hi) (B.of_int lo)) = Some (hi - lo)
      && B.to_int (B.mul ba bb) = Some (a * b)
      && B.to_int q = Some (hi / max 1 lo)
      && B.to_int r = Some (hi mod max 1 lo)
      && B.to_int
           (B.mod_pow ~base:(B.of_int (a mod modulus)) ~exp:(B.of_int e)
              ~modulus:(B.of_int modulus))
         = Some pow_ref)

(* The windowed Montgomery ladder against the division-based reference, on
   full-width random odd moduli: identical results bit for bit, window on
   or off. *)
let bignum_window_vs_generic =
  QCheck.Test.make ~name:"mod_pow_mont (windowed) = mod_pow_generic, odd moduli" ~count:30
    QCheck.small_int
    (fun s ->
      let m = big_of_seed (Printf.sprintf "winmod%d" s) 200 in
      let m = if B.is_odd m then m else B.add m B.one in
      QCheck.assume (B.compare m B.one > 0);
      let base = big_of_seed (Printf.sprintf "winbase%d" s) 250 in
      let exp = big_of_seed (Printf.sprintf "winexp%d" s) 180 in
      let reference = B.mod_pow_generic ~base ~exp ~modulus:m in
      B.equal (B.mod_pow_mont ~window:true ~base ~exp ~modulus:m) reference
      && B.equal (B.mod_pow_mont ~window:false ~base ~exp ~modulus:m) reference)

let test_bignum_divmod_large_shift () =
  (* Wide quotient exercising the walked-right shifted divisor: a 1500-bit
     dividend over a 30-bit divisor. *)
  let a = big_of_seed "divwide" 1500 in
  let b = big_of_seed "divnarrow" 30 in
  let b = if B.is_zero b then B.one else b in
  let q, r = B.divmod a b in
  Alcotest.(check bool) "a = q*b + r" true (B.equal a (B.add (B.mul q b) r));
  Alcotest.(check bool) "r < b" true (B.compare r b < 0)

(* --- RSA --------------------------------------------------------------------- *)

let shared_rsa =
  lazy
    (let d = Crypto.Drbg.create ~seed:"rsa-test" in
     Crypto.Rsa.generate d ~bits:512)

let test_rsa_sign_verify () =
  let kp = Lazy.force shared_rsa in
  let s = Crypto.Rsa.sign kp.secret "hello world" in
  Alcotest.(check bool) "verifies" true (Crypto.Rsa.verify kp.public ~signature:s "hello world");
  Alcotest.(check bool) "rejects other message" false
    (Crypto.Rsa.verify kp.public ~signature:s "hello worlx")

let test_rsa_signature_tamper () =
  let kp = Lazy.force shared_rsa in
  let s = Bytes.of_string (Crypto.Rsa.sign kp.secret "msg") in
  Bytes.set s 10 (Char.chr (Char.code (Bytes.get s 10) lxor 1));
  Alcotest.(check bool) "tampered signature rejected" false
    (Crypto.Rsa.verify kp.public ~signature:(Bytes.to_string s) "msg")

let test_rsa_wrong_key () =
  let kp = Lazy.force shared_rsa in
  let d = Crypto.Drbg.create ~seed:"rsa-other" in
  let other = Crypto.Rsa.generate d ~bits:512 in
  let s = Crypto.Rsa.sign kp.secret "msg" in
  Alcotest.(check bool) "other key rejects" false
    (Crypto.Rsa.verify other.public ~signature:s "msg")

let rsa_encrypt_roundtrip =
  QCheck.Test.make ~name:"encrypt/decrypt roundtrip" ~count:50
    (QCheck.string_of_size (QCheck.Gen.int_range 0 50))
    (fun msg ->
      let kp = Lazy.force shared_rsa in
      let d = Crypto.Drbg.create ~seed:("enc" ^ msg) in
      Crypto.Rsa.decrypt kp.secret (Crypto.Rsa.encrypt d kp.public msg) = Some msg)

let test_rsa_decrypt_tampered () =
  let kp = Lazy.force shared_rsa in
  let d = Crypto.Drbg.create ~seed:"enc-t" in
  let c = Bytes.of_string (Crypto.Rsa.encrypt d kp.public "secret") in
  Bytes.set c 5 (Char.chr (Char.code (Bytes.get c 5) lxor 1));
  (* Tampered ciphertext decrypts to garbage: either padding fails or the
     plaintext differs. *)
  match Crypto.Rsa.decrypt kp.secret (Bytes.to_string c) with
  | None -> ()
  | Some m -> Alcotest.(check bool) "differs" false (String.equal m "secret")

let test_rsa_encrypt_too_long () =
  let kp = Lazy.force shared_rsa in
  let d = Crypto.Drbg.create ~seed:"long" in
  let too_long = String.make (Crypto.Rsa.max_plaintext kp.public + 1) 'x' in
  Alcotest.check_raises "too long" (Invalid_argument "Rsa.encrypt: message too long for modulus")
    (fun () -> ignore (Crypto.Rsa.encrypt d kp.public too_long))

let test_rsa_public_roundtrip () =
  let kp = Lazy.force shared_rsa in
  match Crypto.Rsa.public_of_string (Crypto.Rsa.public_to_string kp.public) with
  | None -> Alcotest.fail "roundtrip failed"
  | Some p ->
      Alcotest.(check string) "fingerprints match"
        (hex (Crypto.Rsa.fingerprint kp.public))
        (hex (Crypto.Rsa.fingerprint p))

let test_rsa_public_of_string_garbage () =
  Alcotest.(check bool) "garbage rejected" true (Crypto.Rsa.public_of_string "nonsense" = None);
  Alcotest.(check bool) "wrong tag rejected" true
    (Crypto.Rsa.public_of_string "rsa-priv:512:aa:bb" = None)

(* All four (crt, window) combinations must produce byte-identical
   signatures: CRT and windowing change how m^d mod n is computed, never
   its value. *)
let rsa_crt_sign_byte_equal =
  QCheck.Test.make ~name:"CRT/window sign = classic sign, byte for byte" ~count:8
    QCheck.(pair (int_range 0 1000) (string_of_size (QCheck.Gen.int_range 0 80)))
    (fun (s, msg) ->
      let d = Crypto.Drbg.create ~seed:(Printf.sprintf "crt-eq-%d" s) in
      let kp = Crypto.Rsa.generate d ~bits:512 in
      let reference = Crypto.Rsa.sign ~crt:false ~window:false kp.secret msg in
      String.equal (Crypto.Rsa.sign kp.secret msg) reference
      && String.equal (Crypto.Rsa.sign ~crt:true ~window:false kp.secret msg) reference
      && String.equal (Crypto.Rsa.sign ~crt:false ~window:true kp.secret msg) reference
      && Crypto.Rsa.verify kp.public ~signature:reference msg)

let test_rsa_crt_params_consistent () =
  let kp = Lazy.force shared_rsa in
  match kp.secret.crt with
  | None -> Alcotest.fail "generate must produce CRT parameters"
  | Some c ->
      let open Crypto.Bignum in
      Alcotest.(check bool) "p * q = n" true (equal (mul c.p c.q) kp.public.n);
      Alcotest.(check bool) "qinv * q = 1 mod p" true
        (equal (rem (mul c.qinv c.q) c.p) one);
      Alcotest.(check bool) "dp = d mod p-1" true
        (equal c.dp (rem kp.secret.d (sub c.p one)))

let test_rsa_no_crt_fallback () =
  (* A secret reconstituted without its factors — e.g. deserialized from a
     stored (n, d) pair — must keep signing and decrypting correctly. *)
  let kp = Lazy.force shared_rsa in
  let bare = { kp.secret with Crypto.Rsa.crt = None } in
  let s = Crypto.Rsa.sign bare "fallback message" in
  Alcotest.(check string) "same bytes as CRT sign"
    (hex (Crypto.Rsa.sign kp.secret "fallback message"))
    (hex s);
  let d = Crypto.Drbg.create ~seed:"nocrt-enc" in
  let c = Crypto.Rsa.encrypt d kp.public "round trip" in
  Alcotest.(check (option string)) "decrypts without CRT" (Some "round trip")
    (Crypto.Rsa.decrypt bare c)

(* Pinned vectors captured from the pre-CRT/pre-window implementation: the
   same DRBG seeds must keep deriving the same keys, and fixed keys must
   keep producing these exact signature and ciphertext bytes.  Guards the
   wire format across any future exponentiation rework. *)
let test_rsa_pinned_vectors () =
  let check_pin ~seed ~bits ~n_hex ~sig_hex ~enc_hex =
    let d = Crypto.Drbg.create ~seed in
    let kp = Crypto.Rsa.generate d ~bits in
    let msg = "pinned attestation quote payload" in
    Alcotest.(check string) (seed ^ " modulus") n_hex (Crypto.Bignum.to_hex kp.public.n);
    Alcotest.(check string) (seed ^ " signature") sig_hex (hex (Crypto.Rsa.sign kp.secret msg));
    let enc_drbg = Crypto.Drbg.create ~seed:(seed ^ "|enc") in
    Alcotest.(check string) (seed ^ " ciphertext") enc_hex
      (hex (Crypto.Rsa.encrypt enc_drbg kp.public "pinned premaster secret"));
    Alcotest.(check (option string)) (seed ^ " decrypts")
      (Some "pinned premaster secret")
      (Crypto.Rsa.decrypt kp.secret (Crypto.Hexs.decode enc_hex))
  in
  check_pin ~seed:"pin-rsa-512" ~bits:512
    ~n_hex:
      "c7bdad6dedad801b262548f3a6eec934bc66e806ca9c3ad4f2fde753256722478ca482474bc5e5745654e6213632c835f1e7d69bdb0fa8a3e4e6a10a64260c77"
    ~sig_hex:
      "8bff6214172a8063eaf5fc159ac3610b6382c952aaaaef5f7d65a2e0454c1e14c8b7c492069a24ab71ef514cb3e7975cac30c52b1aed4848dde940fa3c30758b"
    ~enc_hex:
      "afcc2c4a6b9a7b21189e0416d8dd19ea17ecda52a574293781c73b6948765cf495f583fce5ba4d84567dd7a93c1769e8cab30c8e7ae0d834489408a75e8265fa";
  check_pin ~seed:"pin-rsa-1024" ~bits:1024
    ~n_hex:
      "e901284acc1e240bcf9adf1c63b5aa5934a02d99d83e2c65f46f38cb7537fde4cb727833606ea20d5892c49764390902c579aa3af02a363047c8bc52b36f6eb16289d7cf68b516e747062d859d5137e708c323169ba242262dd7525d188e350ba47a416aa201e56af41f8742aa1d9354212b671732dcdee3aeffc088aeb00e31"
    ~sig_hex:
      "cac34706155b6b024c3b139661ec56b7fc1c8406a93fcea498586207f149c1c7b150357647e08b1d1101e914a4281eec34eba279e2ee57009491349cb9975de8e1500254439d24f701dbe6c4a8134527822d8ff405c68cb27f6e0ba41d6c357fae1ccf804bc5b64a1a8aa0599161e2e081a07d35f59869c21f5e004811eb3a7e"
    ~enc_hex:
      "447dc3e18a05de96ee3fc4cc110f6fef15c50ef3fb0cb81995bfa4df84e01a60121d5f78f0a345bc3e56f2aff6f1f5b722d9be7b56944f042805b0462360b972ea35075b7577695a12505a8354a56ef3ce825ce56d3ca7a01f9e51ea919582eac18de0d2a2ca6f69252bfd39e7691fa581ae0774c9390e98478020d301ac60a6"

(* --- Verification memo ------------------------------------------------------ *)

let test_rsa_verify_memo_hit () =
  let kp = Lazy.force shared_rsa in
  let memo = Crypto.Rsa.Memo.create ~capacity:8 in
  let s = Crypto.Rsa.sign kp.secret "memoized message" in
  let cold = Crypto.Rsa.verify kp.public ~signature:s "memoized message" in
  let miss = Crypto.Rsa.verify_memo ~memo kp.public ~signature:s "memoized message" in
  let hit = Crypto.Rsa.verify_memo ~memo kp.public ~signature:s "memoized message" in
  Alcotest.(check bool) "cold verdict true" true cold;
  Alcotest.(check bool) "miss = cold" cold miss;
  Alcotest.(check bool) "hit = cold" cold hit;
  Alcotest.(check int) "one hit" 1 (Crypto.Rsa.Memo.hits memo);
  Alcotest.(check int) "one miss" 1 (Crypto.Rsa.Memo.misses memo)

let test_rsa_verify_memo_negative_cached () =
  (* Rejections memoize too — and must keep being rejections. *)
  let kp = Lazy.force shared_rsa in
  let memo = Crypto.Rsa.Memo.create ~capacity:8 in
  let s = Crypto.Rsa.sign kp.secret "m1" in
  Alcotest.(check bool) "bad verdict (miss)" false
    (Crypto.Rsa.verify_memo ~memo kp.public ~signature:s "tampered");
  Alcotest.(check bool) "bad verdict (hit)" false
    (Crypto.Rsa.verify_memo ~memo kp.public ~signature:s "tampered");
  Alcotest.(check int) "negative hit counted" 1 (Crypto.Rsa.Memo.hits memo)

let test_rsa_verify_memo_key_separation () =
  (* Same message and signature bytes under a different key must not hit
     the other key's entry. *)
  let kp = Lazy.force shared_rsa in
  let d = Crypto.Drbg.create ~seed:"memo-other" in
  let other = Crypto.Rsa.generate d ~bits:512 in
  let memo = Crypto.Rsa.Memo.create ~capacity:8 in
  let s = Crypto.Rsa.sign kp.secret "msg" in
  Alcotest.(check bool) "right key accepts" true
    (Crypto.Rsa.verify_memo ~memo kp.public ~signature:s "msg");
  Alcotest.(check bool) "wrong key rejects" false
    (Crypto.Rsa.verify_memo ~memo other.public ~signature:s "msg");
  Alcotest.(check int) "two distinct entries" 2 (Crypto.Rsa.Memo.length memo)

(* --- LRU --------------------------------------------------------------------- *)

module L = Crypto.Lru

let test_lru_eviction_order () =
  let c = L.create ~capacity:2 in
  L.add c "a" 1;
  L.add c "b" 2;
  ignore (L.find c "a");
  (* "b" is now least recent *)
  L.add c "c" 3;
  Alcotest.(check (option int)) "a survives (recently used)" (Some 1) (L.find c "a");
  Alcotest.(check (option int)) "b evicted" None (L.find c "b");
  Alcotest.(check (option int)) "c present" (Some 3) (L.find c "c");
  Alcotest.(check int) "len = capacity" 2 (L.length c)

let test_lru_overwrite_and_clear () =
  let c = L.create ~capacity:2 in
  L.add c "k" 1;
  L.add c "k" 9;
  Alcotest.(check (option int)) "overwritten" (Some 9) (L.find c "k");
  Alcotest.(check int) "one entry" 1 (L.length c);
  L.clear c;
  Alcotest.(check int) "cleared" 0 (L.length c);
  Alcotest.(check int) "counters reset" 0 (L.hits c);
  Alcotest.check_raises "bad capacity" (Invalid_argument "Lru.create: capacity must be positive")
    (fun () -> ignore (L.create ~capacity:0))

let lru_model_check =
  (* Differential check against a naive list model of LRU semantics. *)
  QCheck.Test.make ~name:"lru matches naive model" ~count:200
    QCheck.(pair (int_range 1 6) (small_list (pair (int_range 0 9) bool)))
    (fun (cap, ops) ->
      let c = L.create ~capacity:cap in
      (* model: assoc list, most recent first *)
      let model = ref [] in
      List.for_all
        (fun (k, is_add) ->
          let key = string_of_int k in
          if is_add then begin
            L.add c key k;
            model := (key, k) :: List.remove_assoc key !model;
            if List.length !model > cap then
              model := List.filteri (fun i _ -> i < cap) !model;
            true
          end
          else begin
            let got = L.find c key in
            let want = List.assoc_opt key !model in
            (match want with
            | Some _ ->
                model := (key, List.assoc key !model) :: List.remove_assoc key !model
            | None -> ());
            got = want
          end)
        ops)

(* --- Merkle ------------------------------------------------------------------- *)

module M = Crypto.Merkle

(* Deterministic leaf data: sizes include odd counts, so odd-node promotion
   at every level gets exercised. *)
let mk_leaves n = List.init n (fun i -> Printf.sprintf "leaf-%d-%d" n i)

let merkle_all_indices_verify =
  QCheck.Test.make ~name:"every leaf's proof verifies" ~count:60
    QCheck.(int_range 1 40)
    (fun n ->
      let leaves = mk_leaves n in
      let root = M.root leaves in
      List.for_all
        (fun i ->
          let p = M.proof leaves i in
          M.verify ~root ~leaf:(List.nth leaves i) p)
        (List.init n Fun.id))

let merkle_tampered_leaf_rejected =
  QCheck.Test.make ~name:"tampered leaf rejected" ~count:60
    QCheck.(pair (int_range 1 40) small_nat)
    (fun (n, k) ->
      let leaves = mk_leaves n in
      let i = k mod n in
      let p = M.proof leaves i in
      not (M.verify ~root:(M.root leaves) ~leaf:(List.nth leaves i ^ "!") p))

let merkle_wrong_index_proof_rejected =
  QCheck.Test.make ~name:"proof for another index rejected" ~count:60
    QCheck.(pair (int_range 2 40) small_nat)
    (fun (n, k) ->
      let leaves = mk_leaves n in
      let i = k mod n in
      let j = (i + 1) mod n in
      (* A proof belongs to exactly one position: using leaf j with leaf i's
         proof must fail (this is what the batch-appraisal tamper test
         relies on at the protocol layer). *)
      not (M.verify ~root:(M.root leaves) ~leaf:(List.nth leaves j) (M.proof leaves i)))

let merkle_proof_length_bounded =
  QCheck.Test.make ~name:"proof_length <= max_proof_length" ~count:60
    QCheck.(int_range 1 64)
    (fun n ->
      let leaves = mk_leaves n in
      List.for_all
        (fun i -> M.proof_length (M.proof leaves i) <= M.max_proof_length n)
        (List.init n Fun.id))

let merkle_codec_roundtrip =
  QCheck.Test.make ~name:"proof wire roundtrip" ~count:60
    QCheck.(pair (int_range 1 32) small_nat)
    (fun (n, k) ->
      let leaves = mk_leaves n in
      let i = k mod n in
      let p = M.proof leaves i in
      let raw = Wire.Codec.encode (fun e -> M.encode e p) in
      match Wire.Codec.decode_opt raw M.decode with
      | None -> false
      | Some p' -> M.verify ~root:(M.root leaves) ~leaf:(List.nth leaves i) p')

let test_merkle_single_leaf () =
  (* A one-leaf tree: root = leaf hash, empty proof. *)
  let root = M.root [ "only" ] in
  Alcotest.(check string) "root is the leaf hash" (hex (M.leaf_hash "only")) (hex root);
  let p = M.proof [ "only" ] 0 in
  Alcotest.(check int) "empty proof" 0 (M.proof_length p);
  Alcotest.(check bool) "verifies" true (M.verify ~root ~leaf:"only" p)

let test_merkle_domain_separation () =
  Alcotest.(check bool) "leaf hash differs from plain digest" false
    (String.equal (M.leaf_hash "x") (Crypto.Sha256.digest "x"))

let test_merkle_bounds () =
  Alcotest.check_raises "empty root" (Invalid_argument "Merkle: no leaves") (fun () ->
      ignore (M.root []));
  Alcotest.check_raises "index out of range"
    (Invalid_argument "Merkle.proof: leaf index out of range") (fun () ->
      ignore (M.proof [ "a"; "b" ] 2))

let test_merkle_node_count () =
  (* n leaf hashes plus interior nodes; for a perfect tree of 4: 4 + 2 + 1. *)
  Alcotest.(check int) "1 leaf" 1 (M.node_count 1);
  Alcotest.(check int) "4 leaves" 7 (M.node_count 4);
  Alcotest.(check int) "2 leaves" 3 (M.node_count 2);
  Alcotest.(check int) "max_proof_length 1" 0 (M.max_proof_length 1);
  Alcotest.(check int) "max_proof_length 4" 2 (M.max_proof_length 4);
  Alcotest.(check int) "max_proof_length 5" 3 (M.max_proof_length 5)

(* --- Merkle log views (RFC 6962 prefix/consistency machinery) ----------------

   PRNG-seeded sweeps over every tree size from 1 to 65 leaves, so each
   ragged shape (odd counts at every level) is hit deterministically rather
   than sampled.  These harden the PR 3 tree before the transparency log
   (lib/audit) builds on it. *)

let random_leaves prng n =
  List.init n (fun _ -> Bytes.to_string (Sim.Prng.bytes prng (1 + Sim.Prng.int prng 24)))

let test_merkle_prefix_root_matches () =
  let prng = Sim.Prng.create 0xA0D171 in
  for n = 1 to 65 do
    let leaves = random_leaves prng n in
    (* The prefix view at the full size is the classic tree... *)
    Alcotest.(check string)
      (Printf.sprintf "root_prefix = root at n=%d" n)
      (hex (M.root leaves))
      (hex (M.root_prefix leaves ~size:n));
    (* ...and at every proper prefix it matches the tree over that prefix. *)
    let m = 1 + Sim.Prng.int prng n in
    Alcotest.(check string)
      (Printf.sprintf "prefix %d of %d" m n)
      (hex (M.root (List.filteri (fun i _ -> i < m) leaves)))
      (hex (M.root_prefix leaves ~size:m))
  done

let test_merkle_inclusion_ragged () =
  let prng = Sim.Prng.create 0xA0D172 in
  for n = 1 to 65 do
    let leaves = random_leaves prng n in
    let arr = Array.of_list leaves in
    let root = M.root leaves in
    for i = 0 to n - 1 do
      let p = M.inclusion_prefix leaves ~size:n i in
      if not (M.verify ~root ~leaf:arr.(i) p) then
        Alcotest.failf "inclusion proof failed at n=%d i=%d" n i;
      (* The log-view proof must be byte-identical to the PR 3 proof. *)
      let enc p = Wire.Codec.encode (fun e -> M.encode e p) in
      if not (String.equal (enc p) (enc (M.proof leaves i))) then
        Alcotest.failf "inclusion_prefix <> proof at n=%d i=%d" n i
    done;
    (* Tampering with one leaf must break that leaf's proof. *)
    let i = Sim.Prng.int prng n in
    let p = M.inclusion_prefix leaves ~size:n i in
    if M.verify ~root ~leaf:(arr.(i) ^ "!") p then
      Alcotest.failf "tampered leaf accepted at n=%d i=%d" n i
  done

let test_merkle_consistency_all_pairs () =
  let prng = Sim.Prng.create 0xA0D173 in
  for n = 1 to 65 do
    let leaves = random_leaves prng n in
    for m = 0 to n do
      let proof = M.consistency leaves ~old_size:m in
      let old_root = M.root_prefix leaves ~size:m in
      if
        not
          (M.verify_consistency ~old_size:m ~old_root ~size:n ~root:(M.root leaves) proof)
      then Alcotest.failf "consistency proof failed for %d -> %d" m n
    done
  done

let test_merkle_consistency_tamper () =
  let prng = Sim.Prng.create 0xA0D174 in
  for n = 2 to 65 do
    let leaves = random_leaves prng n in
    let m = 1 + Sim.Prng.int prng (n - 1) in
    let proof = M.consistency leaves ~old_size:m in
    let old_root = M.root_prefix leaves ~size:m in
    let root = M.root leaves in
    (* A rewritten history: change one committed (prefix) leaf and rebuild.
       The old head can never be consistent with the rewritten tree. *)
    let k = Sim.Prng.int prng m in
    let rewritten = List.mapi (fun i l -> if i = k then l ^ "!" else l) leaves in
    let root' = M.root rewritten in
    if
      M.verify_consistency ~old_size:m ~old_root ~size:n ~root:root'
        (M.consistency rewritten ~old_size:m)
    then Alcotest.failf "rewritten history accepted at n=%d m=%d k=%d" n m k;
    (* A garbled proof element must be rejected (empty proofs are only
       legal for m = n, excluded here unless the proof is present). *)
    (match proof with
    | [] ->
        (* m < n with an empty proof only happens when... it cannot: the
           proof is empty iff m = 0 or m = n.  m >= 1 and m < n here. *)
        if m <> 0 && m <> n then Alcotest.failf "unexpected empty proof %d -> %d" m n
    | first :: rest ->
        let bad = Crypto.Sha256.digest (first ^ "?") :: rest in
        if M.verify_consistency ~old_size:m ~old_root ~size:n ~root bad then
          Alcotest.failf "garbled consistency proof accepted %d -> %d" m n);
    (* Wrong old root: claims a different history was committed. *)
    if
      M.verify_consistency ~old_size:m
        ~old_root:(Crypto.Sha256.digest "not the root")
        ~size:n ~root proof
    then Alcotest.failf "wrong old root accepted %d -> %d" m n
  done

let test_merkle_consistency_edges () =
  let leaves = mk_leaves 7 in
  let root = M.root leaves in
  (* Equal sizes: empty proof, equal roots required. *)
  Alcotest.(check bool) "m = n" true
    (M.verify_consistency ~old_size:7 ~old_root:root ~size:7 ~root []);
  Alcotest.(check bool) "m = n, wrong root" false
    (M.verify_consistency ~old_size:7 ~old_root:(M.root (mk_leaves 6)) ~size:7 ~root []);
  (* Empty old tree is trivially a prefix. *)
  Alcotest.(check bool) "m = 0" true
    (M.verify_consistency ~old_size:0 ~old_root:M.empty_root ~size:7 ~root []);
  (* Sizes out of order can never verify. *)
  Alcotest.(check bool) "m > n" false
    (M.verify_consistency ~old_size:8 ~old_root:root ~size:7 ~root []);
  Alcotest.check_raises "generation rejects m > n"
    (Invalid_argument "Merkle.consistency_with: sizes out of order") (fun () ->
      ignore (M.consistency leaves ~old_size:8))

(* --- Hex ---------------------------------------------------------------------- *)

let hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200 QCheck.string (fun s ->
      String.equal s (Crypto.Hexs.decode (Crypto.Hexs.encode s)))

let test_hex_errors () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hexs.decode: odd length") (fun () ->
      ignore (Crypto.Hexs.decode "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Hexs.decode: not a hex digit")
    (fun () -> ignore (Crypto.Hexs.decode "zz"))

let () =
  Alcotest.run "crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "NIST vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "million a's" `Slow test_sha256_million_a;
          qtest sha256_incremental_matches;
          Alcotest.test_case "digest_list" `Quick test_sha256_digest_list;
          Alcotest.test_case "streaming block boundaries" `Quick
            test_sha256_streaming_boundaries;
          Alcotest.test_case "streaming million a's" `Slow test_sha256_streaming_million_a;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_rfc4231;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
          Alcotest.test_case "derive" `Quick test_hmac_derive;
        ] );
      ( "chacha20",
        [
          Alcotest.test_case "RFC 8439 block" `Quick test_chacha20_rfc_block;
          Alcotest.test_case "RFC 8439 encryption" `Quick test_chacha20_rfc_encrypt;
          qtest chacha20_involution;
          Alcotest.test_case "bad sizes" `Quick test_chacha20_bad_sizes;
        ] );
      ( "drbg",
        [
          Alcotest.test_case "deterministic" `Quick test_drbg_deterministic;
          Alcotest.test_case "streams differ" `Quick test_drbg_streams_differ;
          Alcotest.test_case "reseed diverges" `Quick test_drbg_reseed_changes_stream;
          qtest drbg_int_bounds;
        ] );
      ( "bignum",
        [
          Alcotest.test_case "int roundtrip" `Quick test_bignum_roundtrip_int;
          qtest bignum_addsub;
          qtest bignum_mul_matches_int;
          qtest bignum_divmod_invariant;
          qtest bignum_divmod_small_consistent;
          Alcotest.test_case "division by zero" `Quick test_bignum_div_by_zero;
          qtest bignum_shift_roundtrip;
          qtest bignum_modpow_matches_naive;
          Alcotest.test_case "Fermat" `Quick test_bignum_modpow_fermat;
          qtest bignum_mod_inverse;
          Alcotest.test_case "no inverse" `Quick test_bignum_mod_inverse_none;
          qtest bignum_bytes_roundtrip;
          Alcotest.test_case "to_bytes width" `Quick test_bignum_to_bytes_width;
          Alcotest.test_case "known primes" `Quick test_bignum_primality_known;
          Alcotest.test_case "generate_prime" `Quick test_bignum_generate_prime_bits;
          Alcotest.test_case "gcd" `Quick test_bignum_gcd;
          Alcotest.test_case "hex roundtrip" `Quick test_bignum_hex_roundtrip;
          Alcotest.test_case "to_int overflow regression" `Quick test_bignum_to_int_overflow;
          qtest bignum_differential_int_model;
          qtest bignum_window_vs_generic;
          Alcotest.test_case "divmod wide quotient" `Quick test_bignum_divmod_large_shift;
        ] );
      ( "rsa",
        [
          Alcotest.test_case "sign/verify" `Quick test_rsa_sign_verify;
          Alcotest.test_case "tampered signature" `Quick test_rsa_signature_tamper;
          Alcotest.test_case "wrong key" `Quick test_rsa_wrong_key;
          qtest rsa_encrypt_roundtrip;
          Alcotest.test_case "tampered ciphertext" `Quick test_rsa_decrypt_tampered;
          Alcotest.test_case "plaintext too long" `Quick test_rsa_encrypt_too_long;
          Alcotest.test_case "public key roundtrip" `Quick test_rsa_public_roundtrip;
          Alcotest.test_case "public_of_string garbage" `Quick test_rsa_public_of_string_garbage;
          qtest rsa_crt_sign_byte_equal;
          Alcotest.test_case "CRT parameters consistent" `Quick test_rsa_crt_params_consistent;
          Alcotest.test_case "no-CRT fallback" `Quick test_rsa_no_crt_fallback;
          Alcotest.test_case "pinned seed vectors" `Quick test_rsa_pinned_vectors;
          Alcotest.test_case "verify memo hit" `Quick test_rsa_verify_memo_hit;
          Alcotest.test_case "verify memo caches rejection" `Quick
            test_rsa_verify_memo_negative_cached;
          Alcotest.test_case "verify memo key separation" `Quick
            test_rsa_verify_memo_key_separation;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "overwrite and clear" `Quick test_lru_overwrite_and_clear;
          qtest lru_model_check;
        ] );
      ( "merkle",
        [
          qtest merkle_all_indices_verify;
          qtest merkle_tampered_leaf_rejected;
          qtest merkle_wrong_index_proof_rejected;
          qtest merkle_proof_length_bounded;
          qtest merkle_codec_roundtrip;
          Alcotest.test_case "single leaf" `Quick test_merkle_single_leaf;
          Alcotest.test_case "domain separation" `Quick test_merkle_domain_separation;
          Alcotest.test_case "bounds" `Quick test_merkle_bounds;
          Alcotest.test_case "node_count" `Quick test_merkle_node_count;
          Alcotest.test_case "prefix roots (1..65)" `Quick test_merkle_prefix_root_matches;
          Alcotest.test_case "ragged inclusion (1..65)" `Quick test_merkle_inclusion_ragged;
          Alcotest.test_case "consistency all pairs (1..65)" `Quick
            test_merkle_consistency_all_pairs;
          Alcotest.test_case "consistency tamper" `Quick test_merkle_consistency_tamper;
          Alcotest.test_case "consistency edges" `Quick test_merkle_consistency_edges;
        ] );
      ("hex", [ qtest hex_roundtrip; Alcotest.test_case "errors" `Quick test_hex_errors ]);
    ]
