(* Tests for the CloudMonatt core: properties, reports, protocol messages,
   privacy CA, policy, database, ledger and interpretation. *)

open Core

let qtest = QCheck_alcotest.to_alcotest

(* --- Property --------------------------------------------------------------- *)

let test_property_strings () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Property.to_string p)
        true
        (Property.of_string (Property.to_string p) = Some p))
    Property.all;
  Alcotest.(check bool) "unknown" true (Property.of_string "nope" = None)

let property_codec_roundtrip =
  QCheck.Test.make ~name:"property list codec" ~count:50
    (QCheck.make
       (QCheck.Gen.list_size (QCheck.Gen.int_range 0 6) (QCheck.Gen.oneofl Property.all)))
    (fun ps ->
      Wire.Codec.decode
        (Wire.Codec.encode (fun e -> Property.encode_list e ps))
        Property.decode_list
      = ps)

(* --- Report ------------------------------------------------------------------ *)

let report_gen =
  let open QCheck.Gen in
  map2
    (fun (vid, evidence) (property, (status_tag, why, at)) ->
      let status =
        match status_tag mod 3 with
        | 0 -> Report.Healthy
        | 1 -> Report.Compromised why
        | _ -> Report.Unknown why
      in
      { Report.vid; property; status; evidence; produced_at = at })
    (pair string string)
    (pair (oneofl Property.all) (triple nat string nat))

let report_codec_roundtrip =
  QCheck.Test.make ~name:"report codec roundtrip" ~count:100 (QCheck.make report_gen)
    (fun r -> Wire.Codec.decode (Wire.Codec.encode (fun e -> Report.encode e r)) Report.decode = r)

let test_report_is_healthy () =
  let r =
    { Report.vid = "v"; property = Property.Startup_integrity; status = Report.Healthy;
      evidence = ""; produced_at = 0 }
  in
  Alcotest.(check bool) "healthy" true (Report.is_healthy r);
  Alcotest.(check bool) "compromised" false
    (Report.is_healthy { r with status = Report.Compromised "x" });
  Alcotest.(check bool) "unknown" false (Report.is_healthy { r with status = Report.Unknown "x" })

(* --- Ledger ------------------------------------------------------------------- *)

let test_ledger () =
  let l = Ledger.create () in
  Ledger.add l "a" 10;
  Ledger.add l "b" 5;
  Ledger.add l "a" 7;
  Alcotest.(check int) "total" 22 (Ledger.total l);
  Alcotest.(check int) "merged label" 17 (Ledger.of_label l "a");
  Alcotest.(check int) "missing label" 0 (Ledger.of_label l "zz");
  Alcotest.(check (list (pair string int))) "insertion order" [ ("a", 17); ("b", 5) ]
    (Ledger.entries l);
  let l2 = Ledger.create () in
  Ledger.add l2 "c" 1;
  Ledger.merge_into l l2;
  Alcotest.(check int) "merge" 23 (Ledger.total l)

(* --- Privacy CA ------------------------------------------------------------------ *)

let test_privacy_ca () =
  let pca = Privacy_ca.create ~seed:"pca" ~bits:512 () in
  let tm = Tpm.Trust_module.create ~key_bits:512 ~seed:"srv" () in
  Privacy_ca.enroll_server pca ~name:"server-1" (Tpm.Trust_module.identity_public tm);
  Alcotest.(check (list string)) "enrolled" [ "server-1" ] (Privacy_ca.enrolled pca);
  let session = Tpm.Trust_module.begin_session tm in
  (match
     Privacy_ca.certify_attestation_key pca ~key:session.public
       ~endorsement:session.endorsement
   with
  | Error `Unknown_server -> Alcotest.fail "should certify enrolled server"
  | Ok cert ->
      Alcotest.(check string) "anonymous subject" Privacy_ca.anonymous_subject
        cert.Net.Ca.subject;
      Alcotest.(check bool) "cert checks" true
        (Privacy_ca.check_certificate ~pca:(Privacy_ca.public pca) cert ~key:session.public));
  (* An unenrolled module's endorsement is refused. *)
  let rogue = Tpm.Trust_module.create ~key_bits:512 ~seed:"rogue" () in
  let rogue_session = Tpm.Trust_module.begin_session rogue in
  match
    Privacy_ca.certify_attestation_key pca ~key:rogue_session.public
      ~endorsement:rogue_session.endorsement
  with
  | Error `Unknown_server -> ()
  | Ok _ -> Alcotest.fail "rogue module must be refused"

let test_privacy_ca_mismatched_key () =
  let pca = Privacy_ca.create ~seed:"pca2" ~bits:512 () in
  let tm = Tpm.Trust_module.create ~key_bits:512 ~seed:"srv2" () in
  Privacy_ca.enroll_server pca ~name:"s" (Tpm.Trust_module.identity_public tm);
  let s1 = Tpm.Trust_module.begin_session tm in
  let s2 = Tpm.Trust_module.begin_session tm in
  (* Endorsement of key 1 does not certify key 2. *)
  match Privacy_ca.certify_attestation_key pca ~key:s2.public ~endorsement:s1.endorsement with
  | Error `Unknown_server -> ()
  | Ok _ -> Alcotest.fail "endorsement must bind the exact key"

(* --- Protocol messages --------------------------------------------------------------- *)

let sample_report =
  {
    Report.vid = "vm-1";
    property = Property.Cpu_availability;
    status = Report.Healthy;
    evidence = "usage 52%";
    produced_at = 123456;
  }

let rsa = lazy (Crypto.Rsa.generate (Crypto.Drbg.create ~seed:"proto") ~bits:512)

let signed_as_report () =
  let kp = Lazy.force rsa in
  let quote =
    Protocol.q2 ~vid:"vm-1" ~server:"server-1" ~property:Property.Cpu_availability
      ~report:sample_report ~nonce:"N2"
  in
  let unsigned =
    {
      Protocol.vid = "vm-1";
      server = "server-1";
      property = Property.Cpu_availability;
      report = sample_report;
      nonce = "N2";
      quote;
      signature = "";
    }
  in
  { unsigned with Protocol.signature = Crypto.Rsa.sign kp.secret (Protocol.as_report_payload unsigned) }

let test_as_report_verifies () =
  let kp = Lazy.force rsa in
  let r = signed_as_report () in
  Alcotest.(check bool) "verifies" true
    (Protocol.verify_as_report ~key:kp.public ~expected_vid:"vm-1" ~expected_server:"server-1"
       ~expected_property:Property.Cpu_availability ~expected_nonce:"N2" r
    = Ok ())

let test_as_report_rejections () =
  let kp = Lazy.force rsa in
  let r = signed_as_report () in
  let verify ?(vid = "vm-1") ?(server = "server-1") ?(nonce = "N2") r =
    Protocol.verify_as_report ~key:kp.public ~expected_vid:vid ~expected_server:server
      ~expected_property:Property.Cpu_availability ~expected_nonce:nonce r
  in
  Alcotest.(check bool) "wrong nonce" true (verify ~nonce:"N9" r = Error `Nonce_mismatch);
  Alcotest.(check bool) "wrong vid" true (verify ~vid:"vm-2" r = Error `Vid_mismatch);
  (* Tampered report body invalidates the signature. *)
  let tampered =
    { r with Protocol.report = { sample_report with Report.status = Report.Compromised "x" } }
  in
  Alcotest.(check bool) "tampered body" true (verify tampered = Error `Bad_signature);
  (* Re-signed by the attacker's key fails key pinning. *)
  let attacker = Crypto.Rsa.generate (Crypto.Drbg.create ~seed:"attacker") ~bits:512 in
  let forged =
    { tampered with
      Protocol.signature =
        Crypto.Rsa.sign attacker.secret
          (Protocol.as_report_payload { tampered with Protocol.signature = "" });
    }
  in
  Alcotest.(check bool) "forged signature" true (verify forged = Error `Bad_signature);
  (* Bad quote caught even with a valid re-signature under the right key
     (defence in depth). *)
  let bad_quote_unsigned = { r with Protocol.quote = Crypto.Sha256.digest "bogus"; signature = "" } in
  let bad_quote =
    { bad_quote_unsigned with
      Protocol.signature =
        Crypto.Rsa.sign kp.secret (Protocol.as_report_payload bad_quote_unsigned);
    }
  in
  Alcotest.(check bool) "bad quote" true (verify bad_quote = Error `Bad_quote)

let test_protocol_codecs_roundtrip () =
  let r = signed_as_report () in
  Alcotest.(check bool) "as_report" true
    (Protocol.decode_as_report (Protocol.encode_as_report r) = Some r);
  let areq = { Protocol.vid = "v"; property = Property.Runtime_integrity; nonce = "n" } in
  Alcotest.(check bool) "attest_request" true
    (Protocol.decode_attest_request (Protocol.encode_attest_request areq) = Some areq);
  let asreq = { Protocol.vid = "v"; server = "s"; property = Property.Runtime_integrity; nonce = "n" } in
  Alcotest.(check bool) "as_request" true
    (Protocol.decode_as_request (Protocol.encode_as_request asreq) = Some asreq);
  let mreq = { Protocol.vid = "v"; requests_raw = "rM"; nonce = "n3" } in
  Alcotest.(check bool) "measure_request" true
    (Protocol.decode_measure_request (Protocol.encode_measure_request mreq) = Some mreq);
  let mresp =
    {
      Protocol.vid = "v"; requests_raw = "rM"; values_raw = "M"; nonce = "n3";
      quote = "q"; signature = "sig"; avk = "avk"; endorsement = "end";
    }
  in
  Alcotest.(check bool) "measure_response" true
    (Protocol.decode_measure_response (Protocol.encode_measure_response mresp) = Some mresp);
  Alcotest.(check bool) "garbage" true (Protocol.decode_as_report "garbage" = None)

let test_quotes_differ () =
  let q_a = Protocol.q3 ~vid:"v" ~requests_raw:"r" ~values_raw:"m" ~nonce:"n" in
  Alcotest.(check bool) "nonce binds" false
    (String.equal q_a (Protocol.q3 ~vid:"v" ~requests_raw:"r" ~values_raw:"m" ~nonce:"n2"));
  Alcotest.(check bool) "values bind" false
    (String.equal q_a (Protocol.q3 ~vid:"v" ~requests_raw:"r" ~values_raw:"m2" ~nonce:"n"))

(* --- Batched quotes -------------------------------------------------------------------- *)

(* A full batch envelope the way a cloud server builds one: three reports
   under a single Merkle root, one session signature over root||N3. *)
let build_batch () =
  let pca = Privacy_ca.create ~seed:"pca-batch" ~bits:512 () in
  let tm = Tpm.Trust_module.create ~key_bits:512 ~seed:"batch-srv" () in
  Privacy_ca.enroll_server pca ~name:"server-1" (Tpm.Trust_module.identity_public tm);
  let session = Tpm.Trust_module.begin_session tm in
  let cert =
    match
      Privacy_ca.certify_attestation_key pca ~key:session.public
        ~endorsement:session.endorsement
    with
    | Ok c -> c
    | Error `Unknown_server -> Alcotest.fail "certify failed"
  in
  let nonce = "N3-batch" in
  let specs =
    List.init 3 (fun i ->
        (Printf.sprintf "vm-%d" i, Printf.sprintf "rM-%d" i, Printf.sprintf "M-%d" i))
  in
  let leaves =
    List.map
      (fun (vid, rm, m) -> Protocol.q3 ~vid ~requests_raw:rm ~values_raw:m ~nonce)
      specs
  in
  let root = Crypto.Merkle.root leaves in
  let items =
    List.mapi
      (fun i (vid, rm, m) ->
        {
          Protocol.bi_vid = vid;
          bi_requests_raw = rm;
          bi_values_raw = m;
          bi_proof = Crypto.Merkle.proof leaves i;
        })
      specs
  in
  let br =
    {
      Protocol.br_items = items;
      br_nonce = nonce;
      br_root = root;
      br_signature = Option.get (Tpm.Trust_module.quote_batch tm session ~root ~nonce);
      br_avk = Crypto.Rsa.public_to_string session.public;
      br_endorsement = session.endorsement;
    }
  in
  (pca, cert, specs, br)

let test_batch_envelope_and_items_verify () =
  let pca, cert, specs, br = build_batch () in
  Alcotest.(check bool) "one envelope check covers the batch" true
    (Protocol.verify_batch_envelope ~pca:(Privacy_ca.public pca) ~cert
       ~expected_nonce:br.Protocol.br_nonce br
    = Ok ());
  List.iteri
    (fun i item ->
      let _, rm, _ = List.nth specs i in
      Alcotest.(check bool)
        (Printf.sprintf "item %d verifies" i)
        true
        (Protocol.verify_batch_item ~root:br.Protocol.br_root
           ~nonce:br.Protocol.br_nonce ~expected_requests:rm item
        = Ok ()))
    br.Protocol.br_items;
  (* Wrong nonce is caught at the envelope. *)
  Alcotest.(check bool) "stale nonce rejected" true
    (Protocol.verify_batch_envelope ~pca:(Privacy_ca.public pca) ~cert
       ~expected_nonce:"N3-stale" br
    <> Ok ())

let test_batch_tampered_proof_isolated () =
  (* A cheating aggregator holds valid session keys, so the envelope still
     verifies — but swapping one report's inclusion proof makes exactly
     that report fail appraisal while its batch mates stand. *)
  let _, _, specs, br = build_batch () in
  let root = br.Protocol.br_root and nonce = br.Protocol.br_nonce in
  let tampered =
    match br.Protocol.br_items with
    | [ a; b; c ] -> [ a; { b with Protocol.bi_proof = c.Protocol.bi_proof }; c ]
    | _ -> assert false
  in
  List.iteri
    (fun i item ->
      let _, rm, _ = List.nth specs i in
      let got = Protocol.verify_batch_item ~root ~nonce ~expected_requests:rm item in
      if i = 1 then
        Alcotest.(check bool) "tampered item rejected" true (got = Error `Bad_quote)
      else
        Alcotest.(check bool) (Printf.sprintf "sibling %d still accepted" i) true (got = Ok ()))
    tampered;
  (* Substituted measurement values likewise die on the inclusion proof. *)
  let forged = { (List.hd br.Protocol.br_items) with Protocol.bi_values_raw = "M-forged" } in
  Alcotest.(check bool) "forged values rejected" true
    (Protocol.verify_batch_item ~root ~nonce ~expected_requests:"rM-0" forged
    = Error `Bad_quote)

let test_batch_codecs_roundtrip () =
  let bm = { Protocol.bm_items = [ ("vm-1", "r1"); ("vm-2", "r2") ]; bm_nonce = "n3" } in
  Alcotest.(check bool) "batch_measure_request" true
    (Protocol.decode_batch_measure_request (Protocol.encode_batch_measure_request bm)
    = Some bm);
  let _, _, _, br = build_batch () in
  Alcotest.(check bool) "batch_measure_response" true
    (Protocol.decode_batch_measure_response (Protocol.encode_batch_measure_response br)
    = Some br);
  let ba =
    {
      Protocol.ba_server = "server-1";
      ba_items = [ ("vm-1", Property.Runtime_integrity); ("vm-2", Property.Cpu_availability) ];
      ba_nonce = "n2";
    }
  in
  Alcotest.(check bool) "batch_as_request" true
    (Protocol.decode_batch_as_request (Protocol.encode_batch_as_request ba) = Some ba);
  Alcotest.(check bool) "garbage" true (Protocol.decode_batch_measure_response "junk" = None);
  (* The batch magic never collides with the single-shot AS request codec. *)
  Alcotest.(check bool) "magics disjoint" true
    (Protocol.decode_as_request (Protocol.encode_batch_as_request ba) = None)

(* --- Policy --------------------------------------------------------------------------- *)

let policy_db () =
  let db = Database.create () in
  Database.add_server db { Database.name = "secure-big"; secure = true; backend = Tpm.Backend.Classic; monitoring = Property.all };
  Database.add_server db
    { Database.name = "secure-small"; secure = true; backend = Tpm.Backend.Classic; monitoring = Property.all };
  Database.add_server db { Database.name = "legacy"; secure = false; backend = Tpm.Backend.Classic; monitoring = [] };
  db

let free_mem_of assoc name = List.assoc_opt name assoc

let test_policy_property_filter () =
  let db = policy_db () in
  let free = free_mem_of [ ("secure-big", 10000); ("secure-small", 4000); ("legacy", 50000) ] in
  (* With properties requested, the huge legacy server is filtered out. *)
  (match
     Policy.select ~db ~free_mem:free ~properties:[ Property.Runtime_integrity ]
       ~flavor:Hypervisor.Flavor.small ()
   with
  | Ok d ->
      Alcotest.(check string) "secure server chosen" "secure-big" d.Policy.host;
      Alcotest.(check int) "two candidates" 2 d.Policy.candidates;
      Alcotest.(check int) "three considered" 3 d.Policy.considered
  | Error `No_qualified_server -> Alcotest.fail "expected a host");
  (* Without properties the weigher is free to pick the legacy box. *)
  match
    Policy.select ~db ~free_mem:free ~properties:[] ~flavor:Hypervisor.Flavor.small ()
  with
  | Ok d -> Alcotest.(check string) "most free memory wins" "legacy" d.Policy.host
  | Error `No_qualified_server -> Alcotest.fail "expected a host"

let test_policy_memory_filter () =
  let db = policy_db () in
  let free = free_mem_of [ ("secure-big", 1000); ("secure-small", 1000); ("legacy", 1000) ] in
  match
    Policy.select ~db ~free_mem:free ~properties:[] ~flavor:Hypervisor.Flavor.small ()
  with
  | Error `No_qualified_server -> ()
  | Ok _ -> Alcotest.fail "nothing has 2 GB free"

let test_policy_exclusion () =
  let db = policy_db () in
  let free = free_mem_of [ ("secure-big", 10000); ("secure-small", 4000) ] in
  match
    Policy.select ~db ~free_mem:free ~properties:[ Property.Cpu_availability ]
      ~flavor:Hypervisor.Flavor.small ~exclude:[ "secure-big" ] ()
  with
  | Ok d -> Alcotest.(check string) "excluded host skipped" "secure-small" d.Policy.host
  | Error `No_qualified_server -> Alcotest.fail "expected a host"

let test_property_filter_unit () =
  let secure = { Database.name = "s"; secure = true; backend = Tpm.Backend.Classic; monitoring = [ Property.Runtime_integrity ] } in
  let insecure = { Database.name = "i"; secure = false; backend = Tpm.Backend.Classic; monitoring = [] } in
  Alcotest.(check bool) "supported" true (Policy.property_filter secure [ Property.Runtime_integrity ]);
  Alcotest.(check bool) "unsupported property" false
    (Policy.property_filter secure [ Property.Cpu_availability ]);
  Alcotest.(check bool) "insecure fails any" false (Policy.property_filter insecure [ Property.Runtime_integrity ]);
  Alcotest.(check bool) "empty request ok anywhere" true (Policy.property_filter insecure [])

(* --- Database ------------------------------------------------------------------------- *)

let test_database_crud () =
  let db = Database.create () in
  let r =
    {
      Database.vid = "v1"; owner = "alice"; image_name = "ubuntu";
      flavor = Hypervisor.Flavor.small; properties = [ Property.Startup_integrity ];
      host = None; state = Database.Building;
    }
  in
  Database.add_vm db r;
  Alcotest.(check bool) "found" true (Database.vm db "v1" <> None);
  Database.set_host db ~vid:"v1" (Some "server-1");
  Database.set_state db ~vid:"v1" Database.Active;
  Alcotest.(check bool) "host" true ((Option.get (Database.vm db "v1")).Database.host = Some "server-1");
  Alcotest.(check int) "vms_on" 1 (List.length (Database.vms_on db "server-1"));
  Alcotest.(check int) "vms_on other" 0 (List.length (Database.vms_on db "server-2"));
  Database.remove_vm db ~vid:"v1";
  Alcotest.(check bool) "removed" true (Database.vm db "v1" = None);
  Alcotest.(check int) "empty listing" 0 (List.length (Database.vms db))

(* --- Interpretation ---------------------------------------------------------------------- *)

let refs = Interpret.default_refs

let test_interpret_requests_mapping () =
  Alcotest.(check int) "startup needs 2 measurements" 2
    (List.length (Interpret.requests_for refs Property.Startup_integrity));
  Alcotest.(check int) "covert defaults to one source" 1
    (List.length (Interpret.requests_for refs Property.Covert_channel_free));
  let both = { refs with Interpret.covert_sources = [ Interpret.Cpu_bursts; Interpret.Cache_misses ] } in
  Alcotest.(check int) "two sources when configured" 2
    (List.length (Interpret.requests_for both Property.Covert_channel_free))

let test_interpret_startup () =
  let golden_p = Hypervisor.Server.golden_platform_measurement in
  let golden_i = Hypervisor.Image.golden_hash ~name:"ubuntu" in
  let status v =
    fst (Interpret.interpret refs ~image_name:(Some "ubuntu") Property.Startup_integrity v)
  in
  Alcotest.(check bool) "healthy" true
    (status
       [ Monitors.Measurement.Measured_platform golden_p;
         Monitors.Measurement.Measured_image golden_i ]
    = Report.Healthy);
  (match
     status
       [ Monitors.Measurement.Measured_platform (Crypto.Sha256.digest "evil");
         Monitors.Measurement.Measured_image golden_i ]
   with
  | Report.Compromised why ->
      Alcotest.(check bool) "platform named" true (String.length why > 0 && String.sub why 0 8 = "platform")
  | _ -> Alcotest.fail "expected platform compromise");
  match
    status
      [ Monitors.Measurement.Measured_platform golden_p;
        Monitors.Measurement.Measured_image (Crypto.Sha256.digest "evil") ]
  with
  | Report.Compromised _ -> ()
  | _ -> Alcotest.fail "expected image compromise"

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_interpret_runtime_integrity () =
  let status kernel visible =
    fst
      (Interpret.interpret refs ~image_name:None Property.Runtime_integrity
         [ Monitors.Measurement.Measured_tasks { kernel; visible } ])
  in
  Alcotest.(check bool) "clean" true (status [ "a"; "b" ] [ "a"; "b" ] = Report.Healthy);
  match status [ "a"; "b"; "rootkit" ] [ "a"; "b" ] with
  | Report.Compromised why -> Alcotest.(check bool) "names it" true (contains why "rootkit")
  | _ -> Alcotest.fail "expected compromise"

let test_interpret_covert_channel () =
  let counts_bimodal = Array.make 30 0 in
  counts_bimodal.(4) <- 50;
  counts_bimodal.(19) <- 50;
  (match Interpret.histogram_verdict refs counts_bimodal with
  | Report.Compromised _, _ -> ()
  | _ -> Alcotest.fail "bimodal must be flagged");
  let counts_benign = Array.make 30 0 in
  counts_benign.(29) <- 100;
  (match Interpret.histogram_verdict refs counts_benign with
  | Report.Healthy, _ -> ()
  | _ -> Alcotest.fail "unimodal must pass");
  let counts_sparse = Array.make 30 0 in
  counts_sparse.(4) <- 3;
  (match Interpret.histogram_verdict refs counts_sparse with
  | Report.Unknown _, _ -> ()
  | _ -> Alcotest.fail "too few samples must be Unknown");
  (* Thresholds are honoured: nearby peaks below the separation cut pass. *)
  let counts_near = Array.make 30 0 in
  counts_near.(25) <- 50;
  counts_near.(29) <- 50;
  match Interpret.histogram_verdict refs counts_near with
  | Report.Healthy, _ -> ()
  | Report.Compromised _, _ -> Alcotest.fail "nearby peaks should not trip the detector"
  | Report.Unknown _, _ -> Alcotest.fail "should be decidable"

let test_interpret_cache_verdict () =
  (* Alternating quiet/loud windows: the signalling pattern. *)
  let signalling = Array.init 60 (fun i -> if i mod 2 = 0 then 0 else 128) in
  (match Interpret.cache_verdict refs signalling with
  | Report.Compromised _, _ -> ()
  | _ -> Alcotest.fail "signalling must be flagged");
  (* Steady moderate misses: benign. *)
  let steady = Array.make 60 40 in
  (match Interpret.cache_verdict refs steady with
  | Report.Healthy, _ -> ()
  | _ -> Alcotest.fail "steady workload must pass");
  (* No activity: benign. *)
  (match Interpret.cache_verdict refs (Array.make 60 0) with
  | Report.Healthy, _ -> ()
  | _ -> Alcotest.fail "idle must pass");
  (* Too few windows: unknown. *)
  match Interpret.cache_verdict refs (Array.make 5 100) with
  | Report.Unknown _, _ -> ()
  | _ -> Alcotest.fail "short period must be Unknown"

let test_interpret_covert_combined () =
  let both = { refs with Interpret.covert_sources = [ Interpret.Cpu_bursts; Interpret.Cache_misses ] } in
  let benign_hist = Array.make 30 0 in
  benign_hist.(29) <- 100;
  let signalling = Array.init 60 (fun i -> if i mod 2 = 0 then 0 else 128) in
  (* CPU source clean but the cache source is dirty: still flagged. *)
  (match
     Interpret.interpret both ~image_name:None Property.Covert_channel_free
       [ Monitors.Measurement.Measured_histogram benign_hist;
         Monitors.Measurement.Measured_miss_windows signalling ]
   with
  | Report.Compromised _, _ -> ()
  | _ -> Alcotest.fail "any dirty source must condemn");
  (* Both clean: healthy. *)
  match
    Interpret.interpret both ~image_name:None Property.Covert_channel_free
      [ Monitors.Measurement.Measured_histogram benign_hist;
        Monitors.Measurement.Measured_miss_windows (Array.make 60 0) ]
  with
  | Report.Healthy, _ -> ()
  | _ -> Alcotest.fail "clean sources must pass"

let cpu_measure ~vtime ~steal =
  [ Monitors.Measurement.Measured_cpu { vtime; steal; window = Sim.Time.sec 1; vcpus = 1 } ]

let test_interpret_availability () =
  let status v = fst (Interpret.interpret refs ~image_name:None Property.Cpu_availability v) in
  (* Starved: little runtime, huge steal. *)
  (match status (cpu_measure ~vtime:(Sim.Time.ms 80) ~steal:(Sim.Time.ms 900)) with
  | Report.Compromised _ -> ()
  | _ -> Alcotest.fail "starved VM must be flagged");
  (* Fair contention: 50% usage. *)
  Alcotest.(check bool) "fair share healthy" true
    (status (cpu_measure ~vtime:(Sim.Time.ms 500) ~steal:(Sim.Time.ms 500)) = Report.Healthy);
  (* Voluntarily idle: low usage but no steal -> healthy. *)
  Alcotest.(check bool) "idle VM healthy" true
    (status (cpu_measure ~vtime:(Sim.Time.ms 50) ~steal:(Sim.Time.ms 10)) = Report.Healthy)

let test_interpret_shape_mismatch () =
  match
    Interpret.interpret refs ~image_name:None Property.Runtime_integrity
      (cpu_measure ~vtime:1 ~steal:1)
  with
  | Report.Unknown _, _ -> ()
  | _ -> Alcotest.fail "wrong measurement shape must be Unknown"

let test_interpret_ima () =
  let pristine name = (name, Hypervisor.Guest_os.pristine_hash name) in
  (* Clean log. *)
  (match Interpret.ima_verdict refs [ pristine "init"; pristine "sshd" ] with
  | Report.Healthy, _ -> ()
  | _ -> Alcotest.fail "pristine log must pass");
  (* Unknown binary. *)
  (match Interpret.ima_verdict refs [ pristine "init"; ("cryptominer", Crypto.Sha256.digest "x") ] with
  | Report.Compromised why, _ ->
      Alcotest.(check bool) "names the binary" true (contains why "cryptominer")
  | _ -> Alcotest.fail "unknown binary must be flagged");
  (* Trojaned well-known binary: right name, wrong hash. *)
  match Interpret.ima_verdict refs [ ("sshd", Crypto.Sha256.digest "backdoor") ] with
  | Report.Compromised why, _ -> Alcotest.(check bool) "names sshd" true (contains why "sshd")
  | _ -> Alcotest.fail "trojaned binary must be flagged"

let test_interpret_integrity_combined () =
  let both =
    { refs with Interpret.integrity_sources = [ Interpret.Task_diff; Interpret.Ima_whitelist ] }
  in
  Alcotest.(check int) "two requests when configured" 2
    (List.length (Interpret.requests_for both Property.Runtime_integrity));
  let pristine name = (name, Hypervisor.Guest_os.pristine_hash name) in
  (* Task diff clean but IMA dirty: flagged. *)
  (match
     Interpret.interpret both ~image_name:None Property.Runtime_integrity
       [ Monitors.Measurement.Measured_tasks { kernel = [ "init"; "miner" ]; visible = [ "init"; "miner" ] };
         Monitors.Measurement.Measured_ima [ pristine "init"; ("miner", Crypto.Sha256.digest "m") ] ]
   with
  | Report.Compromised _, _ -> ()
  | _ -> Alcotest.fail "IMA source must condemn");
  (* Both clean: healthy. *)
  match
    Interpret.interpret both ~image_name:None Property.Runtime_integrity
      [ Monitors.Measurement.Measured_tasks { kernel = [ "init" ]; visible = [ "init" ] };
        Monitors.Measurement.Measured_ima [ pristine "init" ] ]
  with
  | Report.Healthy, _ -> ()
  | _ -> Alcotest.fail "clean sources must pass"

(* --- Commands codec ------------------------------------------------------------------- *)

let test_commands_roundtrip () =
  let cases =
    [
      Commands.Launch
        { image = "ubuntu"; flavor = "small"; properties = Property.all; workload = "db" };
      Commands.Attest_current { Protocol.vid = "v"; property = Property.Cpu_availability; nonce = "n" };
      Commands.Attest_periodic
        {
          vid = "v";
          property = Property.Runtime_integrity;
          schedule = Schedule.fixed (Sim.Time.sec 5);
          nonce = "n";
        };
      Commands.Attest_periodic
        {
          vid = "v";
          property = Property.Covert_channel_free;
          schedule = Schedule.random ~min:(Sim.Time.sec 2) ~max:(Sim.Time.sec 9);
          nonce = "n";
        };
      Commands.Stop_periodic { vid = "v"; property = Property.Runtime_integrity; nonce = "n" };
      Commands.Terminate { vid = "v" };
      Commands.Describe { vid = "v" };
    ]
  in
  List.iter
    (fun c ->
      Alcotest.(check bool) "command roundtrip" true
        (Commands.decode_command (Commands.encode_command c) = Some c))
    cases;
  let replies =
    [
      Commands.Ok_launch { vid = "v"; stages = [ ("scheduling", 100); ("spawning", 2000) ] };
      Commands.Ok_ack;
      Commands.Ok_describe { state = "active"; properties = [ Property.Startup_integrity ] };
      Commands.Err "nope";
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "reply roundtrip" true
        (Commands.decode_reply (Commands.encode_reply r) = Some r))
    replies;
  Alcotest.(check bool) "garbage command" true (Commands.decode_command "junk" = None)

(* --- Schedule ------------------------------------------------------------------------ *)

let test_schedule_fixed () =
  let d = Crypto.Drbg.create ~seed:"sch" in
  let s = Schedule.fixed (Sim.Time.sec 5) in
  Alcotest.(check int) "constant delay" (Sim.Time.sec 5) (Schedule.next_delay s d);
  Alcotest.(check int) "min period" (Sim.Time.sec 5) (Schedule.min_period s)

let test_schedule_random_bounds () =
  let d = Crypto.Drbg.create ~seed:"sch2" in
  let s = Schedule.random ~min:(Sim.Time.sec 1) ~max:(Sim.Time.sec 4) in
  let delays = List.init 200 (fun _ -> Schedule.next_delay s d) in
  List.iter
    (fun delay ->
      Alcotest.(check bool) "in bounds" true
        (delay >= Sim.Time.sec 1 && delay <= Sim.Time.sec 4))
    delays;
  Alcotest.(check bool) "varies" true (List.length (List.sort_uniq compare delays) > 10);
  Alcotest.(check int) "min period" (Sim.Time.sec 1) (Schedule.min_period s)

let test_schedule_random_invalid () =
  Alcotest.check_raises "max < min" (Invalid_argument "Schedule.random: need 0 < min <= max")
    (fun () -> ignore (Schedule.random ~min:(Sim.Time.sec 5) ~max:(Sim.Time.sec 1)))

let schedule_codec_roundtrip =
  QCheck.Test.make ~name:"schedule codec roundtrip" ~count:100
    QCheck.(pair (int_range 1 1000000) (int_range 0 1000000))
    (fun (a, span) ->
      let cases = [ Schedule.Fixed a; Schedule.Random_interval { min = a; max = a + span } ] in
      List.for_all
        (fun sch ->
          Wire.Codec.decode (Wire.Codec.encode (fun e -> Schedule.encode e sch)) Schedule.decode
          = sch)
        cases)

(* --- Protocol fuzzing -------------------------------------------------------------------- *)

(* Any single byte mutation of a signed report must fail verification (or
   fail to parse) — the signed chain has no malleable bytes. *)
let as_report_fuzz =
  QCheck.Test.make ~name:"byte mutations of a signed AS report never verify" ~count:120
    QCheck.(pair small_nat (int_range 0 255))
    (fun (pos, delta) ->
      QCheck.assume (delta land 0xff <> 0);
      let kp = Lazy.force rsa in
      let r = signed_as_report () in
      let encoded = Protocol.encode_as_report r in
      let pos = pos mod String.length encoded in
      let b = Bytes.of_string encoded in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (delta land 0xff)));
      match Protocol.decode_as_report (Bytes.to_string b) with
      | None -> true (* no longer parses: fine *)
      | Some mutant ->
          Protocol.verify_as_report ~key:kp.public ~expected_vid:"vm-1"
            ~expected_server:"server-1" ~expected_property:Property.Cpu_availability
            ~expected_nonce:"N2" mutant
          <> Ok ())

(* --- Lifecycle costs --------------------------------------------------------------------- *)

let test_lifecycle_shapes () =
  Alcotest.(check bool) "bigger image spawns slower" true
    (Lifecycle.spawning_time Hypervisor.Image.ubuntu Hypervisor.Flavor.small
    > Lifecycle.spawning_time Hypervisor.Image.cirros Hypervisor.Flavor.small);
  Alcotest.(check bool) "bigger flavor suspends slower" true
    (Lifecycle.suspension_time Hypervisor.Flavor.large
    > Lifecycle.suspension_time Hypervisor.Flavor.small);
  let net = Net.Network.create ~seed:1 () in
  Alcotest.(check bool) "migration dwarfs termination" true
    (Lifecycle.migration_transfer_time ~net Hypervisor.Flavor.small
    > (3 * Lifecycle.termination_time ()));
  Alcotest.(check bool) "more candidates, slower scheduling" true
    (Lifecycle.scheduling_time ~considered:10 > Lifecycle.scheduling_time ~considered:1)

let () =
  Alcotest.run "core"
    [
      ( "property-report",
        [
          Alcotest.test_case "property strings" `Quick test_property_strings;
          qtest property_codec_roundtrip;
          qtest report_codec_roundtrip;
          Alcotest.test_case "is_healthy" `Quick test_report_is_healthy;
        ] );
      ("ledger", [ Alcotest.test_case "accumulates" `Quick test_ledger ]);
      ( "privacy-ca",
        [
          Alcotest.test_case "certify enrolled" `Quick test_privacy_ca;
          Alcotest.test_case "mismatched key" `Quick test_privacy_ca_mismatched_key;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "as_report verifies" `Quick test_as_report_verifies;
          Alcotest.test_case "rejections" `Quick test_as_report_rejections;
          Alcotest.test_case "codecs roundtrip" `Quick test_protocol_codecs_roundtrip;
          Alcotest.test_case "quotes bind fields" `Quick test_quotes_differ;
        ] );
      ( "batch-quote",
        [
          Alcotest.test_case "envelope + items verify" `Quick
            test_batch_envelope_and_items_verify;
          Alcotest.test_case "tampered proof isolated" `Quick
            test_batch_tampered_proof_isolated;
          Alcotest.test_case "codecs roundtrip" `Quick test_batch_codecs_roundtrip;
        ] );
      ( "policy",
        [
          Alcotest.test_case "property filter" `Quick test_policy_property_filter;
          Alcotest.test_case "memory filter" `Quick test_policy_memory_filter;
          Alcotest.test_case "exclusion" `Quick test_policy_exclusion;
          Alcotest.test_case "property_filter unit" `Quick test_property_filter_unit;
        ] );
      ("database", [ Alcotest.test_case "crud" `Quick test_database_crud ]);
      ( "interpret",
        [
          Alcotest.test_case "P->rM mapping" `Quick test_interpret_requests_mapping;
          Alcotest.test_case "startup integrity" `Quick test_interpret_startup;
          Alcotest.test_case "runtime integrity" `Quick test_interpret_runtime_integrity;
          Alcotest.test_case "covert channel" `Quick test_interpret_covert_channel;
          Alcotest.test_case "cache verdict" `Quick test_interpret_cache_verdict;
          Alcotest.test_case "covert combined sources" `Quick test_interpret_covert_combined;
          Alcotest.test_case "IMA whitelist" `Quick test_interpret_ima;
          Alcotest.test_case "integrity combined sources" `Quick
            test_interpret_integrity_combined;
          Alcotest.test_case "availability" `Quick test_interpret_availability;
          Alcotest.test_case "shape mismatch" `Quick test_interpret_shape_mismatch;
        ] );
      ("commands", [ Alcotest.test_case "roundtrip" `Quick test_commands_roundtrip ]);
      ( "schedule",
        [
          Alcotest.test_case "fixed" `Quick test_schedule_fixed;
          Alcotest.test_case "random bounds" `Quick test_schedule_random_bounds;
          Alcotest.test_case "invalid range" `Quick test_schedule_random_invalid;
          qtest schedule_codec_roundtrip;
        ] );
      ("fuzz", [ qtest as_report_fuzz ]);
      ("lifecycle", [ Alcotest.test_case "cost shapes" `Quick test_lifecycle_shapes ]);
    ]
