lib/hypervisor/program.ml: Sim
