(* CPU-availability attack and remediation (paper section 4.5):

     dune exec examples/availability_attack.exe

   Alice's CPU-bound VM shares a pCPU with an attacker VM that abuses the
   credit scheduler's boost mechanism (IPI ping-pong + tick evasion) to
   starve it.  Alice's periodic Cpu_availability attestation measures the
   collapse through the VMM Profile Tool; the Response Module migrates her
   VM to another server, restoring its SLA share. *)

open Core

let () =
  let config = { Cloud.default_config with key_bits = 512; pcpus = 2 } in
  let cloud = Cloud.build ~config () in
  let controller = Cloud.controller cloud in
  let alice = Cloud.Customer.create cloud ~name:"alice" in

  (* Alice's VM: a CPU-bound service, availability-monitored. *)
  let info =
    match
      Cloud.Customer.launch alice ~image:"ubuntu" ~flavor:"small"
        ~properties:[ Property.Cpu_availability ]
        ~workload:"busy" ()
    with
    | Ok info -> info
    | Error e -> Format.kasprintf failwith "launch failed: %a" Cloud.Customer.pp_error e
  in
  let vid = info.Commands.vid in
  let host = Option.get (Controller.vm_host controller ~vid) in
  let server = Option.get (Cloud.find_server cloud host) in

  let show_usage label =
    match Controller.vm_host controller ~vid with
    | None -> Printf.printf "%s: VM not running\n" label
    | Some h ->
        let s = Option.get (Cloud.find_server cloud h) in
        let inst = Option.get (Hypervisor.Server.find s vid) in
        let sched = Hypervisor.Server.scheduler s in
        let r0 = Hypervisor.Credit_scheduler.domain_runtime sched inst.Hypervisor.Server.domain in
        Cloud.run_for cloud (Sim.Time.sec 2);
        let r1 = Hypervisor.Credit_scheduler.domain_runtime sched inst.Hypervisor.Server.domain in
        Printf.printf "%s: VM on %s, CPU share %.0f%%\n" label h
          (100.0 *. Sim.Time.to_sec (r1 - r0) /. 2.0)
  in

  show_usage "Before attack  ";

  (* The attacker co-locates on the same server: main vCPU on the victim's
     pCPU, helper on the other one. *)
  let attacker = Attacks.Availability.attacker_vm ~vid:"attacker-vm" ~owner:"mallory" () in
  (match
     Hypervisor.Server.launch server
       ~pins:(Attacks.Availability.pins ~victim_pcpu:0 ~helper_pcpu:1)
       attacker
   with
  | Ok _ -> print_endline "Attacker VM co-located; boost attack running."
  | Error `Insufficient_memory -> failwith "attacker launch failed");

  show_usage "Under attack   ";

  (* Periodic availability attestation detects it; the default response
     policy migrates the victim. *)
  (match
     Cloud.Customer.attest_periodic alice ~vid ~property:Property.Cpu_availability
       ~freq:(Sim.Time.sec 5)
       ~on_report:(fun r ->
         Format.printf "  periodic report: %a (%s)@." Report.pp_status r.Report.status
           r.Report.evidence)
       ()
   with
  | Ok () -> ()
  | Error e -> Format.printf "periodic error: %a@." Cloud.Customer.pp_error e);
  Cloud.run_for cloud (Sim.Time.sec 11);

  show_usage "After response ";

  print_endline "\nController event log:";
  List.iter (fun e -> Printf.printf "  %s\n" e) (Controller.events controller)
