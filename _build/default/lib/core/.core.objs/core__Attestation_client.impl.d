lib/core/attestation_client.ml: Costs Crypto Hypervisor List Monitors Net Protocol Tpm Wire
