(* Static cost estimates, derived from the same [Core.Costs] constants the
   live ledgers charge.  The bounds cover the non-lossy execution paths:
   the low bound admits verdict-cache hits (when the cache is on) and the
   cheapest verification gate; the high bound admits cold secure channels
   on both hops and audit-receipt overhead (when auditing is on).  Retries
   on a lossy network can exceed the high bound — callers comparing against
   a live run should only apply the upper bounds when no message was
   dropped during it (the interpreter-vs-estimate fuzz oracle does). *)

type t = {
  appraisals : int;
  messages_min : int;
  messages_max : int;
  compute_min : Sim.Time.t;
  compute_max : Sim.Time.t;
}

(* One warm-channel, cache-miss appraisal: every non-network ledger entry
   the Controller and the AS charge on the verified path.  [gate] is the
   backend-specific trust-chain check the AS runs on the response. *)
let warm_compute (env : Env.t) ~slot ~prop =
  let backend = env.backend_of slot in
  let gate =
    match backend with
    | Tpm.Backend.Classic | Tpm.Backend.Evtpm ->
        Core.Costs.pca_certify + Core.Costs.signature_verify
    | Tpm.Backend.Cvm_report ->
        Core.Costs.cvm_chain_verify + Core.Costs.signature_verify
  in
  let measure =
    Core.Costs.session_keygen_for backend
    + Core.Costs.quote_sign_for backend
    + (env.requests_of prop * Core.Costs.measurement_collect)
  in
  (* Controller: db-lookup + verify + report-sign; AS: db-lookup + measure
     + gate + interpret + report-sign. *)
  Core.Costs.db_lookup + Core.Costs.signature_verify + Core.Costs.report_sign
  + Core.Costs.db_lookup + measure + gate + Core.Costs.interpret + Core.Costs.report_sign

(* Generous allowance for the audit trailer on one appraisal: STH sign and
   verify plus the O(log n) hash walks on both sides. *)
let audit_allowance =
  Core.Costs.sth_sign + Core.Costs.sth_verify + (200 * Core.Costs.merkle_hash)

(* Wire messages per appraisal: each hop (controller<->AS, AS<->server) is
   one request/reply call; a cold secure channel adds two handshake calls
   (hello + key exchange) on that hop. *)
let warm_messages = 4
let cold_messages = 12

let zero = { appraisals = 0; messages_min = 0; messages_max = 0; compute_min = 0; compute_max = 0 }

let seq a b =
  {
    appraisals = a.appraisals + b.appraisals;
    messages_min = a.messages_min + b.messages_min;
    messages_max = a.messages_max + b.messages_max;
    compute_min = a.compute_min + b.compute_min;
    compute_max = a.compute_max + b.compute_max;
  }

let of_phrase (env : Env.t) phrase =
  let leaf ~slot ~prop =
    let warm = warm_compute env ~slot ~prop in
    {
      appraisals = 1;
      messages_min = (if env.cache_possible then 0 else warm_messages);
      messages_max = cold_messages;
      (* The stale-vTPM path skips interpretation; a cache hit collapses to
         controller-local work. *)
      compute_min =
        (if env.cache_possible then Core.Costs.db_lookup + Core.Costs.report_sign
         else warm - Core.Costs.interpret);
      compute_max =
        warm + (2 * Core.Costs.handshake_crypto)
        + (if env.audit_possible then audit_allowance else 0);
    }
  in
  let rec go = function
    | Phrase.Appraise { slot; prop; nonce = _ } -> leaf ~slot ~prop
    | Phrase.Seq (a, b) | Phrase.Par (_, a, b) -> seq (go a) (go b)
    | Phrase.Deleg { body; _ } -> go body
    | Phrase.Layer { checked; body; _ } ->
        let b = go body in
        if not checked then b
        else
          (* A failed freshness check skips the body entirely, so only the
             check itself is guaranteed work. *)
          {
            b with
            messages_min = 0;
            compute_min = Core.Costs.layer_appraise;
            compute_max = b.compute_max + Core.Costs.layer_appraise;
          }
  in
  let e = go phrase in
  { e with appraisals = Phrase.appraisals phrase }

let pp ppf t =
  Format.fprintf ppf "%d appraisal(s), %d-%d messages, %a-%a compute" t.appraisals
    t.messages_min t.messages_max Sim.Time.pp t.compute_min Sim.Time.pp t.compute_max
