type t = {
  log_id : string;
  key : Crypto.Rsa.secret;
  clock : unit -> Sim.Time.t;
  mutable entries : string array;
  mutable hashes : string array; (* leaf hashes, same length as [entries] *)
  mutable size : int;
  (* Interior-node memo keyed by [(lo, hi)].  Entries are append-only, so a
     subtree over [lo, hi) with [hi <= size] never changes and the memo is
     never invalidated; each append adds at most O(log n) new interior
     nodes along the right spine. *)
  memo : (int * int, string) Hashtbl.t;
  mutable latest : Sth.t option;
  mutable appends : int;
  mutable checkpoints : int;
  mutable proofs_served : int;
}

let create ~log_id ~key ?(clock = fun () -> Sim.Time.zero) () =
  {
    log_id;
    key;
    clock;
    entries = Array.make 16 "";
    hashes = Array.make 16 "";
    size = 0;
    memo = Hashtbl.create 64;
    latest = None;
    appends = 0;
    checkpoints = 0;
    proofs_served = 0;
  }

let log_id t = t.log_id
let public_key t = t.key.Crypto.Rsa.pub
let size t = t.size
let appends t = t.appends
let checkpoints t = t.checkpoints
let proofs_served t = t.proofs_served

let grow t =
  if t.size = Array.length t.entries then begin
    let cap = 2 * Array.length t.entries in
    let entries = Array.make cap "" and hashes = Array.make cap "" in
    Array.blit t.entries 0 entries 0 t.size;
    Array.blit t.hashes 0 hashes 0 t.size;
    t.entries <- entries;
    t.hashes <- hashes
  end

let append t entry =
  grow t;
  let index = t.size in
  t.entries.(index) <- entry;
  t.hashes.(index) <- Crypto.Merkle.leaf_hash entry;
  t.size <- index + 1;
  t.appends <- t.appends + 1;
  index

let entry t i = if i >= 0 && i < t.size then Some t.entries.(i) else None

let rec subroot t lo hi =
  if hi - lo = 1 then t.hashes.(lo)
  else begin
    match Hashtbl.find_opt t.memo (lo, hi) with
    | Some h -> h
    | None ->
        let k =
          let rec go k = if 2 * k < hi - lo then go (2 * k) else k in
          go 1
        in
        let h = Crypto.Merkle.node_hash (subroot t lo (lo + k)) (subroot t (lo + k) hi) in
        Hashtbl.add t.memo (lo, hi) h;
        h
  end

let sub t lo hi =
  if lo < 0 || hi > t.size || lo >= hi then invalid_arg "Audit.Log: subtree out of range";
  subroot t lo hi

let root_at t n =
  if n < 0 || n > t.size then invalid_arg "Audit.Log.root_at: size out of range";
  if n = 0 then Crypto.Merkle.empty_root else subroot t 0 n

let root t = root_at t t.size

let sign_head t =
  Sth.sign t.key ~log_id:t.log_id ~size:t.size ~root:(root t) ~at:(t.clock ())

let checkpoint t =
  let sth = sign_head t in
  t.latest <- Some sth;
  t.checkpoints <- t.checkpoints + 1;
  sth

let latest_sth t = t.latest

let inclusion t ~size i =
  if size > t.size then invalid_arg "Audit.Log.inclusion: size beyond log";
  t.proofs_served <- t.proofs_served + 1;
  Crypto.Merkle.inclusion_with ~sub:(subroot t) ~size i

let consistency t ~old_size ~size =
  if size > t.size then invalid_arg "Audit.Log.consistency: size beyond log";
  t.proofs_served <- t.proofs_served + 1;
  Crypto.Merkle.consistency_with ~sub:(subroot t) ~old_size ~size

let append_with_receipt t item =
  let index = append t item in
  let sth = sign_head t in
  t.latest <- Some sth;
  t.proofs_served <- t.proofs_served + 1;
  let proof = Crypto.Merkle.inclusion_with ~sub:(subroot t) ~size:t.size index in
  { Receipt.index; sth; proof }
