lib/attacks/cache_channel.mli: Hypervisor Sim
