(** Arbitrary-precision natural numbers, built for RSA.

    Little-endian arrays of 26-bit limbs on the native int.  Provides the
    arithmetic RSA needs: multiplication, division, Montgomery modular
    exponentiation, modular inverse, Miller-Rabin primality and prime
    generation.  All values are non-negative. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int option
(** [None] when the value exceeds [max_int]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_odd : t -> bool

val add : t -> t -> t

val sub : t -> t -> t
(** @raise Invalid_argument when the result would be negative. *)

val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)].
    @raise Division_by_zero when [b] is zero. *)

val rem : t -> t -> t

val divmod_small : t -> int -> t * int
(** Division by a small positive int, in one pass. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
val bit_length : t -> int
val test_bit : t -> int -> bool

val mod_pow : base:t -> exp:t -> modulus:t -> t
(** Montgomery exponentiation (width-4 sliding window) for odd moduli;
    falls back to classic square-and-multiply with division for even
    moduli. *)

val mod_pow_mont : window:bool -> base:t -> exp:t -> modulus:t -> t
(** The Montgomery path on its own; [modulus] must be odd.
    [window:false] keeps bit-at-a-time square-and-multiply; the result is
    identical either way.  Exposed for the crypto micro-bench's window
    on/off ablation and the windowed-vs-generic equivalence tests. *)

val mod_pow_generic : base:t -> exp:t -> modulus:t -> t
(** Division-based square-and-multiply reference; any modulus. *)

val mod_inverse : t -> t -> t option
(** [mod_inverse a m] is [a{^-1} mod m] when [gcd a m = 1]. *)

val gcd : t -> t -> t

val of_bytes_be : string -> t
val to_bytes_be : ?width:int -> t -> string
(** Big-endian bytes; [width] left-pads with zeros (and must be large
    enough to hold the value). *)

val of_hex : string -> t
val to_hex : t -> string

val random_bits : Drbg.t -> int -> t
(** Uniform with exactly the given maximal bit width (top bit not forced). *)

val random_below : Drbg.t -> t -> t
(** Uniform in [\[0, bound)]; [bound] must be positive. *)

val is_probable_prime : ?rounds:int -> Drbg.t -> t -> bool
(** Miller-Rabin with random bases (plus small trial division). *)

val generate_prime : Drbg.t -> bits:int -> t
(** A random probable prime with the top two bits set. *)

val pp : Format.formatter -> t -> unit
