type stage = Scheduling | Networking | Block_device_mapping | Spawning | Attestation

let stage_label = function
  | Scheduling -> "scheduling"
  | Networking -> "networking"
  | Block_device_mapping -> "mapping"
  | Spawning -> "spawning"
  | Attestation -> "attestation"

let all_stages = [ Scheduling; Networking; Block_device_mapping; Spawning; Attestation ]

let scheduling_time ~considered =
  Costs.scheduling_base + (considered * Costs.scheduling_per_candidate)

let networking_time () = Costs.networking

let mapping_time (flavor : Hypervisor.Flavor.t) =
  Costs.mapping_base + (flavor.disk_gb * Costs.mapping_per_gb)

let spawning_time image (flavor : Hypervisor.Flavor.t) =
  Costs.spawn_base
  + (Hypervisor.Image.size_mb image * Costs.spawn_per_image_mb)
  + (flavor.mem_mb * Costs.spawn_per_mem_gb / 1024)

let termination_time () = Costs.terminate_base

let suspension_time (flavor : Hypervisor.Flavor.t) =
  Costs.suspend_base + (flavor.mem_mb * Costs.suspend_per_mem_gb / 1024)

let resume_time (flavor : Hypervisor.Flavor.t) =
  Costs.resume_base + (flavor.mem_mb * Costs.suspend_per_mem_gb / 2048)

let migration_transfer_time ~net (flavor : Hypervisor.Flavor.t) =
  let dirty_bytes =
    int_of_float (float_of_int (flavor.mem_mb * 1024 * 1024) *. Costs.migration_dirty_fraction)
  in
  Costs.migration_base + Net.Network.transfer_time net ~bytes:dirty_bytes
