(* Tests for the TPM substrate: PCRs and the Trust Module. *)

let qtest = QCheck_alcotest.to_alcotest

(* --- PCR ------------------------------------------------------------------ *)

let test_pcr_initial_zero () =
  let p = Tpm.Pcr.create ~count:4 in
  Alcotest.(check string) "starts zeroed" (String.make 32 '\x00') (Tpm.Pcr.read p 0);
  Alcotest.(check int) "count" 4 (Tpm.Pcr.count p)

let test_pcr_extend_changes () =
  let p = Tpm.Pcr.create ~count:2 in
  let v1 = Tpm.Pcr.extend p 0 "m1" in
  Alcotest.(check bool) "changed" false (String.equal v1 (String.make 32 '\x00'));
  Alcotest.(check string) "read matches" v1 (Tpm.Pcr.read p 0);
  Alcotest.(check string) "other register untouched" (String.make 32 '\x00') (Tpm.Pcr.read p 1)

let test_pcr_order_sensitive () =
  let p1 = Tpm.Pcr.create ~count:1 and p2 = Tpm.Pcr.create ~count:1 in
  ignore (Tpm.Pcr.extend p1 0 "a" : string);
  ignore (Tpm.Pcr.extend p1 0 "b" : string);
  ignore (Tpm.Pcr.extend p2 0 "b" : string);
  ignore (Tpm.Pcr.extend p2 0 "a" : string);
  Alcotest.(check bool) "order matters" false (String.equal (Tpm.Pcr.read p1 0) (Tpm.Pcr.read p2 0))

let test_pcr_deterministic () =
  let run () =
    let p = Tpm.Pcr.create ~count:2 in
    ignore (Tpm.Pcr.extend p 0 "hypervisor" : string);
    ignore (Tpm.Pcr.extend p 1 "host-os" : string);
    Tpm.Pcr.composite p [ 0; 1 ]
  in
  Alcotest.(check string) "same chain, same composite" (run ()) (run ())

let test_pcr_composite_selection () =
  let p = Tpm.Pcr.create ~count:3 in
  ignore (Tpm.Pcr.extend p 0 "x" : string);
  let c01 = Tpm.Pcr.composite p [ 0; 1 ] in
  let c0 = Tpm.Pcr.composite p [ 0 ] in
  Alcotest.(check bool) "selection matters" false (String.equal c01 c0);
  (* duplicates and order are normalised *)
  Alcotest.(check string) "sorted/dedup" c01 (Tpm.Pcr.composite p [ 1; 0; 1 ])

let test_pcr_reset () =
  let p = Tpm.Pcr.create ~count:1 in
  ignore (Tpm.Pcr.extend p 0 "x" : string);
  Tpm.Pcr.reset p 0;
  Alcotest.(check string) "reset to zero" (String.make 32 '\x00') (Tpm.Pcr.read p 0)

let test_pcr_bounds () =
  let p = Tpm.Pcr.create ~count:2 in
  Alcotest.check_raises "out of range" (Invalid_argument "Pcr: index out of range") (fun () ->
      ignore (Tpm.Pcr.read p 2))

(* --- Trust Module ----------------------------------------------------------- *)

let tm = lazy (Tpm.Trust_module.create ~key_bits:512 ~num_registers:32 ~seed:"test" ())

let test_registers () =
  let t = Lazy.force tm in
  Tpm.Trust_module.clear_registers t;
  Alcotest.(check int) "count" 32 (Tpm.Trust_module.num_registers t);
  Tpm.Trust_module.write_register t 3 42;
  Tpm.Trust_module.add_register t 3 8;
  Alcotest.(check int) "write+add" 50 (Tpm.Trust_module.read_registers t).(3);
  Tpm.Trust_module.clear_registers t;
  Alcotest.(check int) "cleared" 0 (Tpm.Trust_module.read_registers t).(3)

let test_register_bounds () =
  let t = Lazy.force tm in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Trust_module: register index out of range") (fun () ->
      Tpm.Trust_module.write_register t 32 1)

let test_registers_copy () =
  let t = Lazy.force tm in
  Tpm.Trust_module.clear_registers t;
  let snapshot = Tpm.Trust_module.read_registers t in
  snapshot.(0) <- 999;
  Alcotest.(check int) "read_registers returns a copy" 0 (Tpm.Trust_module.read_registers t).(0)

let test_session_sign_verify () =
  let t = Lazy.force tm in
  let session = Tpm.Trust_module.begin_session t in
  (match Tpm.Trust_module.sign_with_session t session "measurements" with
  | None -> Alcotest.fail "session should sign"
  | Some s ->
      Alcotest.(check bool) "verifies under AVKs" true
        (Crypto.Rsa.verify session.public ~signature:s "measurements"));
  Tpm.Trust_module.end_session t session;
  Alcotest.(check bool) "ended session refuses" true
    (Tpm.Trust_module.sign_with_session t session "more" = None)

let test_sessions_are_fresh () =
  let t = Lazy.force tm in
  let s1 = Tpm.Trust_module.begin_session t in
  let s2 = Tpm.Trust_module.begin_session t in
  Alcotest.(check bool) "fresh keys per attestation" false
    (String.equal
       (Crypto.Rsa.public_to_string s1.public)
       (Crypto.Rsa.public_to_string s2.public))

let test_endorsement_verifies () =
  let t = Lazy.force tm in
  let session = Tpm.Trust_module.begin_session t in
  let payload = Tpm.Trust_module.endorsement_payload session.public in
  Alcotest.(check bool) "endorsement binds AVKs to VKs" true
    (Crypto.Rsa.verify (Tpm.Trust_module.identity_public t) ~signature:session.endorsement
       payload)

let test_endorsement_not_transferable () =
  let t = Lazy.force tm in
  let other = Tpm.Trust_module.create ~key_bits:512 ~seed:"other" () in
  let session = Tpm.Trust_module.begin_session t in
  Alcotest.(check bool) "other module's VKs rejects" false
    (Crypto.Rsa.verify
       (Tpm.Trust_module.identity_public other)
       ~signature:session.endorsement
       (Tpm.Trust_module.endorsement_payload session.public))

let test_identity_ops () =
  let t = Lazy.force tm in
  let s = Tpm.Trust_module.sign_identity t "channel-auth" in
  Alcotest.(check bool) "identity signature verifies" true
    (Crypto.Rsa.verify (Tpm.Trust_module.identity_public t) ~signature:s "channel-auth");
  let d = Crypto.Drbg.create ~seed:"enc" in
  let c = Crypto.Rsa.encrypt d (Tpm.Trust_module.identity_public t) "premaster" in
  Alcotest.(check (option string)) "identity decrypts" (Some "premaster")
    (Tpm.Trust_module.decrypt_identity t c)

let test_quote_batch () =
  let t = Lazy.force tm in
  let session = Tpm.Trust_module.begin_session t in
  let root = Crypto.Merkle.root [ "q1"; "q2"; "q3" ] in
  let nonce = Tpm.Trust_module.random_nonce t in
  (match Tpm.Trust_module.quote_batch t session ~root ~nonce with
  | None -> Alcotest.fail "live session should sign a batch quote"
  | Some s ->
      Alcotest.(check bool) "batch quote verifies under AVKs over the payload" true
        (Crypto.Rsa.verify session.public ~signature:s
           (Tpm.Trust_module.batch_quote_payload ~root ~nonce));
      Alcotest.(check bool) "bound to the root" false
        (Crypto.Rsa.verify session.public ~signature:s
           (Tpm.Trust_module.batch_quote_payload ~root:(Crypto.Merkle.root [ "qx" ]) ~nonce)));
  Tpm.Trust_module.end_session t session;
  Alcotest.(check bool) "ended session refuses batch quotes" true
    (Tpm.Trust_module.quote_batch t session ~root ~nonce = None)

let test_nonces_fresh () =
  let t = Lazy.force tm in
  let n1 = Tpm.Trust_module.random_nonce t in
  let n2 = Tpm.Trust_module.random_nonce t in
  Alcotest.(check int) "16 bytes" 16 (String.length n1);
  Alcotest.(check bool) "fresh" false (String.equal n1 n2)

let trust_module_deterministic =
  QCheck.Test.make ~name:"same seed, same identity" ~count:3 QCheck.small_int (fun s ->
      let a = Tpm.Trust_module.create ~key_bits:256 ~seed:(string_of_int s) () in
      let b = Tpm.Trust_module.create ~key_bits:256 ~seed:(string_of_int s) () in
      String.equal
        (Crypto.Rsa.public_to_string (Tpm.Trust_module.identity_public a))
        (Crypto.Rsa.public_to_string (Tpm.Trust_module.identity_public b)))

let () =
  Alcotest.run "tpm"
    [
      ( "pcr",
        [
          Alcotest.test_case "initial zero" `Quick test_pcr_initial_zero;
          Alcotest.test_case "extend changes" `Quick test_pcr_extend_changes;
          Alcotest.test_case "order sensitive" `Quick test_pcr_order_sensitive;
          Alcotest.test_case "deterministic" `Quick test_pcr_deterministic;
          Alcotest.test_case "composite selection" `Quick test_pcr_composite_selection;
          Alcotest.test_case "reset" `Quick test_pcr_reset;
          Alcotest.test_case "bounds" `Quick test_pcr_bounds;
        ] );
      ( "trust-module",
        [
          Alcotest.test_case "registers" `Quick test_registers;
          Alcotest.test_case "register bounds" `Quick test_register_bounds;
          Alcotest.test_case "registers copy" `Quick test_registers_copy;
          Alcotest.test_case "session sign/verify" `Quick test_session_sign_verify;
          Alcotest.test_case "sessions fresh" `Quick test_sessions_are_fresh;
          Alcotest.test_case "endorsement verifies" `Quick test_endorsement_verifies;
          Alcotest.test_case "endorsement not transferable" `Quick
            test_endorsement_not_transferable;
          Alcotest.test_case "identity ops" `Quick test_identity_ops;
          Alcotest.test_case "batch quote" `Quick test_quote_batch;
          Alcotest.test_case "nonces fresh" `Quick test_nonces_fresh;
          qtest trust_module_deterministic;
        ] );
    ]
