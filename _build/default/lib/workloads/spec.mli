(** SPEC2006-like victim programs: bzip2, hmmer and astar as in paper
    Figure 6.  Each is a pure CPU-bound batch job with a fixed amount of
    work; the experiment measures completion time under co-residents. *)

type t = { name : string; work : Sim.Time.t }

val bzip2 : t
val hmmer : t
val astar : t
val all : t list

val program : t -> on_done:(Sim.Time.t -> unit) -> unit -> Hypervisor.Program.t
(** Runs [work] of compute in 1 ms chunks, reporting the completion time. *)

val vm :
  vid:string ->
  owner:string ->
  t ->
  on_done:(Sim.Time.t -> unit) ->
  Hypervisor.Vm.t
(** A single-vCPU (small-flavor) VM running the benchmark once. *)
