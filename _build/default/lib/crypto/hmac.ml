let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let b = Bytes.make block_size '\x00' in
  Bytes.blit_string key 0 b 0 (String.length key);
  Bytes.unsafe_to_string b

let xor_with s c =
  String.map (fun ch -> Char.chr (Char.code ch lxor c)) s

let mac ~key msg =
  let k0 = normalize_key key in
  let inner = Sha256.digest_list [ xor_with k0 0x36; msg ] in
  Sha256.digest_list [ xor_with k0 0x5c; inner ]

let constant_time_equal a b =
  String.length a = String.length b
  &&
  let acc = ref 0 in
  String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
  !acc = 0

let verify ~key ~tag msg = constant_time_equal tag (mac ~key msg)

let derive ~secret ~label n =
  let buf = Buffer.create n in
  let block = ref "" in
  let counter = ref 1 in
  while Buffer.length buf < n do
    let data = Printf.sprintf "%s|%s|%d" !block label !counter in
    block := mac ~key:secret data;
    Buffer.add_string buf !block;
    incr counter
  done;
  Buffer.sub buf 0 n
