(** Ablation studies for the design choices DESIGN.md calls out.

    Not in the paper: these probe {e why} the reproduced results look the
    way they do —
    - how close the covert channel's two signalling durations can get
      before the bimodality detector loses it (and what bursty-but-benign
      workloads do to the false-positive rate);
    - how the availability attack degrades as the scheduler's debit tick
      shrinks (the attack lives in the gap between ticks);
    - how periodic-attestation frequency trades off against detection
      latency. *)

(** Detector sweep: separation of the two signalling durations vs verdict. *)
type detector_row = {
  long_burst_ms : float;  (** short burst fixed at 5 ms *)
  separation : float;  (** cluster separation the detector computed *)
  detected : bool;
  receiver_ber : float;  (** the channel still works even when undetected *)
}

val detector_sweep : ?seed:int -> unit -> detector_row list

(** False-positive probe: benign two-phase workloads vs the detector. *)
type benign_row = { label : string; detected : bool; evidence : string }

val benign_false_positives : ?seed:int -> unit -> benign_row list

(** Scheduler tick ablation: victim slowdown under the boost attack as the
    debit tick shrinks. *)
type tick_row = { tick_ms : float; slowdown : float }

val tick_sweep : ?seed:int -> unit -> tick_row list

(** Detection-latency vs attestation schedule. *)
type latency_row = {
  schedule : string;
  mean_detect_ms : float;  (** infection -> response, averaged over trials *)
}

val detection_latency : ?seed:int -> ?trials:int -> unit -> latency_row list

val print_detector : detector_row list -> unit
val print_benign : benign_row list -> unit
val print_ticks : tick_row list -> unit
val print_latency : latency_row list -> unit
