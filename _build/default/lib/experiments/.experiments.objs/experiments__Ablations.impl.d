lib/experiments/ablations.ml: Array Attacks Cloud Commands Common Controller Core Fun Hypervisor Interpret List Option Printf Property Report Schedule Sim
