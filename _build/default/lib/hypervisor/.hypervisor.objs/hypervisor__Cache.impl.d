lib/hypervisor/cache.ml: Array Hashtbl List Option Sim String
