type party = {
  label : string;
  windows : int array;
  status : Core.Report.status;
  evidence : string;
}

type result = {
  bits : int;
  bit_error_rate : float;
  bandwidth_bps : float;
  sender : party;
  receiver : party;
  benign : party;
}

let run ?(seed = 42) () =
  let engine = Sim.Engine.create () in
  let cache = Hypervisor.Cache.create ~engine () in
  let sched = Hypervisor.Credit_scheduler.create ~engine ~pcpus:2 () in
  let prng = Sim.Prng.create seed in
  let bits = Attacks.Covert_channel.random_bits prng 200 in
  let add name pin prog =
    let d = Hypervisor.Credit_scheduler.add_domain sched ~name ~weight:256 in
    ignore (Hypervisor.Credit_scheduler.add_vcpu sched d ~pin prog : Hypervisor.Credit_scheduler.vcpu);
    d
  in
  ignore
    (add "sender" 0 (Attacks.Cache_channel.sender_program cache ~owner:"sender" ~bits ())
      : Hypervisor.Credit_scheduler.domain);
  let recv_prog, stream = Attacks.Cache_channel.receiver_program cache ~owner:"receiver" () in
  ignore (add "receiver" 1 recv_prog : Hypervisor.Credit_scheduler.domain);
  (* A benign VM doing steady memory work in a disjoint set region. *)
  ignore
    (add "benign" 1
       (Hypervisor.Program.make (fun ~now ->
            for set = 40 to 55 do
              ignore
                (Hypervisor.Cache.access cache ~owner:"benign" ~set
                   ~tag:((now / Sim.Time.ms 1) mod 16)
                  : bool)
            done;
            Hypervisor.Program.Compute (Sim.Time.ms 1)))
      : Hypervisor.Credit_scheduler.domain);
  let air = Sim.Time.ms (10 * (List.length bits + 8)) in
  Sim.Engine.run_until engine air;
  let got = Attacks.Cache_channel.received_bits ~count:(List.length bits) (stream ()) in
  let refs =
    { Core.Interpret.default_refs with Core.Interpret.covert_sources = [ Core.Interpret.Cache_misses ] }
  in
  let party label owner =
    let windows = Hypervisor.Cache.miss_windows cache ~owner ~since:0 in
    let status, evidence = Core.Interpret.cache_verdict refs windows in
    { label; windows; status; evidence }
  in
  {
    bits = List.length bits;
    bit_error_rate = Attacks.Covert_channel.bit_error_rate ~sent:bits ~received:got;
    bandwidth_bps = float_of_int (List.length bits) /. Sim.Time.to_sec air;
    sender = party "cache-channel sender" "sender";
    receiver = party "cache-channel receiver" "receiver";
    benign = party "benign memory-heavy VM" "benign";
  }

let print_party p =
  Printf.printf "\n%s  --  %s\n" p.label (Format.asprintf "%a" Core.Report.pp_status p.status);
  Printf.printf "  evidence: %s\n" p.evidence;
  let loud = Array.fold_left (fun acc w -> if w > 0 then acc + 1 else acc) 0 p.windows in
  Printf.printf "  windows: %d total, %d with misses, max %d misses/window\n"
    (Array.length p.windows) loud
    (Array.fold_left max 0 p.windows)

let print r =
  Common.section "Extension: prime-probe cache covert channel (section 4.4.3)";
  Printf.printf "bits: %d, bit error rate: %.3f, bandwidth: %.0f bps\n" r.bits r.bit_error_rate
    r.bandwidth_bps;
  print_party r.sender;
  print_party r.receiver;
  print_party r.benign
