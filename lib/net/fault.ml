(* Deterministic fault injection on the simulated wire.  Unlike the active
   attackers in lib/attacks (which try to subvert the protocol), these model
   the paper's availability threat: a lossy or garbling network leg that the
   attestation path must survive through retries and channel resets. *)

let garble ?(offset = 0) payload =
  if String.length payload = 0 then payload
  else begin
    let b = Bytes.of_string payload in
    let i = offset mod Bytes.length b in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    Bytes.to_string b
  end

let drop_nth ?(phase = 0) n =
  if n <= 0 then invalid_arg "Fault.drop_nth: n must be positive";
  let count = ref phase in
  fun (_ : Network.message) ->
    incr count;
    if !count mod n = 0 then Network.Drop else Network.Pass

let garble_nth ?(phase = 0) ?offset n =
  if n <= 0 then invalid_arg "Fault.garble_nth: n must be positive";
  let count = ref phase in
  fun (msg : Network.message) ->
    incr count;
    if !count mod n = 0 then Network.Replace (garble ?offset msg.Network.payload)
    else Network.Pass

let drop_first n =
  let count = ref 0 in
  fun (_ : Network.message) ->
    incr count;
    if !count <= n then Network.Drop else Network.Pass

let lossy ?(garble_p = 0.0) ~drop_p ~seed () =
  if drop_p < 0.0 || drop_p > 1.0 || garble_p < 0.0 || garble_p > 1.0 then
    invalid_arg "Fault.lossy: probabilities must be in [0, 1]";
  let prng = Sim.Prng.create seed in
  fun (msg : Network.message) ->
    let x = Sim.Prng.float prng 1.0 in
    if x < drop_p then Network.Drop
    else if x < drop_p +. garble_p then Network.Replace (garble msg.Network.payload)
    else Network.Pass

let blackout () (_ : Network.message) = Network.Drop
