let ms = Sim.Time.ms

(* Attestation path.  A hardware TPM takes hundreds of milliseconds for RSA
   key generation and signing; the TPM emulator the paper integrates is
   faster but the network dominates either way (paper 7.1.1). *)
let session_keygen = ms 320
let quote_sign = ms 140
let signature_verify = ms 8
let report_sign = ms 25
let pca_certify = ms 45
let measurement_collect = ms 18
let interpret = ms 30
let db_lookup = ms 12
let handshake_crypto = ms 60

(* Launch stages, calibrated to Figure 9's 3-6 s totals. *)
let scheduling_base = ms 280
let scheduling_per_candidate = ms 25
let networking = ms 750
let mapping_base = ms 220
let mapping_per_gb = ms 4
let spawn_base = ms 900
let spawn_per_image_mb = Sim.Time.us 3200
let spawn_per_mem_gb = ms 90

(* Responses (Figure 11). *)
let terminate_base = ms 450
let suspend_base = ms 800
let suspend_per_mem_gb = ms 350
let resume_base = ms 600
let migration_dirty_fraction = 0.20
let migration_base = ms 2500
