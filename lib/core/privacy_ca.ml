type t = { ca : Net.Ca.t; servers : (string, Crypto.Rsa.public) Hashtbl.t }

let anonymous_subject = "cloudmonatt-attestation-key"

let create ~seed ?(bits = 1024) () =
  { ca = Net.Ca.create ~seed ~bits ~name:"privacy-ca" (); servers = Hashtbl.create 8 }

let public t = Net.Ca.public t.ca

let enroll_server t ~name key = Hashtbl.replace t.servers name key

let enrolled t = List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) t.servers [])

let certify_attestation_key t ~key ~endorsement =
  let payload = Tpm.Trust_module.endorsement_payload key in
  let endorsed =
    Hashtbl.fold
      (* Memoized: a re-certification of the same attestation key retries
         the same (endorsement, payload) pair against the same server keys,
         including the misses against non-matching servers. *)
      (fun _ vks acc -> acc || Crypto.Rsa.verify_memo vks ~signature:endorsement payload)
      t.servers false
  in
  if endorsed then Ok (Net.Ca.issue t.ca ~subject:anonymous_subject key)
  else Error `Unknown_server

let check_certificate ~pca cert ~key =
  Net.Ca.verify ~ca:pca cert
  && String.equal cert.Net.Ca.subject anonymous_subject
  && String.equal (Crypto.Rsa.public_to_string cert.Net.Ca.pubkey) (Crypto.Rsa.public_to_string key)
