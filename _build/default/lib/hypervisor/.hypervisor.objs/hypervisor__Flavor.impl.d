lib/hypervisor/flavor.ml: Format List String
