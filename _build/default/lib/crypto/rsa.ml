type public = { n : Bignum.t; e : Bignum.t; bits : int }
type secret = { pub : public; d : Bignum.t }
type keypair = { public : public; secret : secret }

let e65537 = Bignum.of_int 65537

let generate drbg ~bits =
  if bits < 128 then invalid_arg "Rsa.generate: modulus must be at least 128 bits";
  let half = bits / 2 in
  let rec gen_suitable_prime () =
    let p = Bignum.generate_prime drbg ~bits:half in
    let p1 = Bignum.sub p Bignum.one in
    if Bignum.equal (Bignum.gcd p1 e65537) Bignum.one then p else gen_suitable_prime ()
  in
  let rec go () =
    let p = gen_suitable_prime () in
    let q = gen_suitable_prime () in
    if Bignum.equal p q then go ()
    else begin
      let n = Bignum.mul p q in
      if Bignum.bit_length n <> bits then go ()
      else begin
        let phi = Bignum.mul (Bignum.sub p Bignum.one) (Bignum.sub q Bignum.one) in
        match Bignum.mod_inverse e65537 phi with
        | None -> go ()
        | Some d ->
            let pub = { n; e = e65537; bits } in
            { public = pub; secret = { pub; d } }
      end
    end
  in
  go ()

let modulus_bytes pub = (pub.bits + 7) / 8

(* EMSA-PKCS1-v1.5 style: 00 01 FF..FF 00 <label> <sha256(msg)> *)
let digest_label = "sha256:"

let emsa_encode pub msg =
  let k = modulus_bytes pub in
  let h = Sha256.digest msg in
  let payload = digest_label ^ h in
  let pad_len = k - 3 - String.length payload in
  if pad_len < 8 then invalid_arg "Rsa: modulus too small for signature padding";
  let b = Buffer.create k in
  Buffer.add_char b '\x00';
  Buffer.add_char b '\x01';
  Buffer.add_string b (String.make pad_len '\xff');
  Buffer.add_char b '\x00';
  Buffer.add_string b payload;
  Buffer.contents b

let sign secret msg =
  let em = Bignum.of_bytes_be (emsa_encode secret.pub msg) in
  let s = Bignum.mod_pow ~base:em ~exp:secret.d ~modulus:secret.pub.n in
  Bignum.to_bytes_be ~width:(modulus_bytes secret.pub) s

let verify pub ~signature msg =
  String.length signature = modulus_bytes pub
  &&
  let s = Bignum.of_bytes_be signature in
  Bignum.compare s pub.n < 0
  &&
  let em = Bignum.mod_pow ~base:s ~exp:pub.e ~modulus:pub.n in
  String.equal (Bignum.to_bytes_be ~width:(modulus_bytes pub) em) (emsa_encode pub msg)

let max_plaintext pub = modulus_bytes pub - 11

let encrypt drbg pub msg =
  let k = modulus_bytes pub in
  if String.length msg > max_plaintext pub then
    invalid_arg "Rsa.encrypt: message too long for modulus";
  let pad_len = k - 3 - String.length msg in
  let pad = Bytes.of_string (Drbg.random_bytes drbg pad_len) in
  for i = 0 to pad_len - 1 do
    (* Padding bytes must be non-zero so the 00 separator is unambiguous. *)
    if Bytes.get pad i = '\x00' then Bytes.set pad i '\x01'
  done;
  let b = Buffer.create k in
  Buffer.add_char b '\x00';
  Buffer.add_char b '\x02';
  Buffer.add_bytes b pad;
  Buffer.add_char b '\x00';
  Buffer.add_string b msg;
  let m = Bignum.of_bytes_be (Buffer.contents b) in
  Bignum.to_bytes_be ~width:k (Bignum.mod_pow ~base:m ~exp:pub.e ~modulus:pub.n)

let decrypt secret cipher =
  let k = modulus_bytes secret.pub in
  if String.length cipher <> k then None
  else begin
    let c = Bignum.of_bytes_be cipher in
    if Bignum.compare c secret.pub.n >= 0 then None
    else begin
      let em = Bignum.to_bytes_be ~width:k (Bignum.mod_pow ~base:c ~exp:secret.d ~modulus:secret.pub.n) in
      if String.length em < 11 || em.[0] <> '\x00' || em.[1] <> '\x02' then None
      else begin
        match String.index_from_opt em 2 '\x00' with
        | None -> None
        | Some sep when sep < 10 -> None
        | Some sep -> Some (String.sub em (sep + 1) (String.length em - sep - 1))
      end
    end
  end

let public_to_string pub =
  Printf.sprintf "rsa-pub:%d:%s:%s" pub.bits (Bignum.to_hex pub.n) (Bignum.to_hex pub.e)

let public_of_string s =
  match String.split_on_char ':' s with
  | [ "rsa-pub"; bits; n; e ] -> (
      match int_of_string_opt bits with
      | Some bits -> ( try Some { bits; n = Bignum.of_hex n; e = Bignum.of_hex e } with Invalid_argument _ -> None)
      | None -> None)
  | _ -> None

let fingerprint pub = Sha256.digest (public_to_string pub)
