lib/verifier/term.ml: Format Set Stdlib
