lib/experiments/fig7.mli: Core
