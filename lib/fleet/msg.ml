type payload =
  | Submit of {
      vid : string;
      property : Core.Property.t;
      priority : Pqueue.priority;
      arrived : Sim.Time.t;
    }
  | Invalidate of { vid : string }
  | Mon_add of { vid : string; idx : int }
  | Mon_del of { vid : string; moved_to : int }
  | Compromise of { vid : string; storm : int }

type t = {
  at : Sim.Time.t;
  src : int;
  seq : int;
  dst : int;
  payload : payload;
}

let compare a b =
  let c = Stdlib.compare a.at b.at in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.src b.src in
    if c <> 0 then c else Stdlib.compare a.seq b.seq

let encode_payload = function
  | Submit { vid; property; priority; arrived } ->
      Printf.sprintf "S|%s|%s|%d|%d" vid
        (Core.Property.to_string property)
        (Pqueue.rank priority) arrived
  | Invalidate { vid } -> "I|" ^ vid
  | Mon_add { vid; idx } -> Printf.sprintf "A|%s|%d" vid idx
  | Mon_del { vid; moved_to } -> Printf.sprintf "D|%s|%d" vid moved_to
  | Compromise { vid; storm } -> Printf.sprintf "C|%s|%d" vid storm

let encode m =
  Printf.sprintf "%d|%d|%d|%d|%s" m.at m.src m.seq m.dst
    (encode_payload m.payload)
