(** Trust-backend comparison and lifecycle gates.

    One heterogeneous fleet smoke run (three AS shards, one per backend
    kind, served throughput split per backend), an e-vTPM
    migrate-without-rebind campaign whose restored-state attestations must
    all come back Compromised until the Privacy-CA rebind, and a CVM cloud
    whose hardware reports verify against the vendor platform root alone.

    Exit-status material: {!clean} is false whenever a stale-state quote
    verified Healthy, a rebind failed to recover, or a CVM report did not
    verify — CI fails the bench step on it. *)

type campaign = {
  cycles : int;
  healthy_fresh : int;  (** fresh attestations before any save/restore *)
  stale_attests : int;  (** attestations issued against restored state *)
  healthy_after_stale : int;  (** MUST be 0 *)
  compromised_after_stale : int;
  rebinds : int;
  healthy_after_rebind : int;
}

type cvm_check = { attests : int; healthy : int; root_present : bool }

type result = {
  seed : int;
  fleet : Fleet.Driver.result;
  campaign : campaign;
  cvm : cvm_check;
}

val run : ?seed:int -> unit -> result
val clean : result -> bool
val print : result -> unit
val to_json : result -> Json.t
