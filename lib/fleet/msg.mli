(** Cross-shard messages for the epoch-barrier fleet driver.

    Within an epoch every shard runs its own engine independently; anything
    one shard wants another to see is appended to the sender's outbox as a
    timestamped message and delivered at the next barrier.  The total order
    [(at, src, seq)] is a pure function of each shard's deterministic
    execution, so sorting the union of all outboxes gives the same delivery
    sequence no matter how many domains ran the shards — this is the whole
    determinism argument for the parallel driver. *)

type payload =
  | Submit of {
      vid : string;
      property : Core.Property.t;
      priority : Pqueue.priority;
      arrived : Sim.Time.t;  (** generation time on the home shard *)
    }
      (** Attestation request for a VM currently served by another shard's
          cluster.  The destination checks its verdict cache on delivery
          and submits to its cluster on a miss. *)
  | Invalidate of { vid : string }
      (** Lifecycle churn moved [vid] into or out of the destination's
          cluster; drop any cached verdicts for it. *)
  | Mon_add of { vid : string; idx : int }
      (** Churn moved [vid] onto the destination's cluster: start tracking
          it in the destination's re-attestation scheduler (as a recheck,
          due soon).  Only sent when the monitor is on. *)
  | Mon_del of { vid : string; moved_to : int }
      (** Churn moved [vid] off the destination's cluster (to
          [moved_to]): stop tracking it.  Paired with exactly one
          {!Mon_add}, so a migrating VM is rescheduled exactly once.  Only
          sent when the monitor is on. *)
  | Compromise of { vid : string; storm : int }
      (** A storm scenario (index [storm] in the monitor config) planted a
          compromise on [vid], which the destination's cluster currently
          serves: its measurements must observe it.  Only sent when the
          monitor is on. *)

type t = {
  at : Sim.Time.t;  (** send time on the source shard's clock *)
  src : int;  (** sending shard *)
  seq : int;  (** per-source send counter, breaks same-instant ties *)
  dst : int;  (** destination shard *)
  payload : payload;
}

val compare : t -> t -> int
(** Lexicographic [(at, src, seq)] — a total order over all messages of an
    epoch, independent of collection order. *)

val encode : t -> string
(** Canonical one-line encoding, fed to the per-shard trace digest.  Times
    are integral microseconds, so the encoding is platform-stable. *)
