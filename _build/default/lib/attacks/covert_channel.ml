type params = {
  short_burst : Sim.Time.t;
  long_burst : Sim.Time.t;
  short_gap : Sim.Time.t;
  long_gap : Sim.Time.t;
  settle : Sim.Time.t;
  chunk : Sim.Time.t;
}

let default_params =
  {
    short_burst = Sim.Time.ms 5;
    long_burst = Sim.Time.ms 20;
    short_gap = Sim.Time.ms 10;
    long_gap = Sim.Time.ms 30;
    settle = Sim.Time.ms 100;
    chunk = Sim.Time.us 500;
  }

let sender_program ?(params = default_params) ~bits () =
  let queue = ref bits in
  let phase = ref `Settle in
  Hypervisor.Program.make (fun ~now:_ ->
      match !phase with
      | `Settle ->
          phase := `Burst;
          Hypervisor.Program.Sleep params.settle
      | `Burst -> (
          match !queue with
          | [] -> Hypervisor.Program.Halt
          | bit :: _ ->
              phase := `Gap;
              Hypervisor.Program.Compute (if bit then params.long_burst else params.short_burst))
      | `Gap -> (
          match !queue with
          | [] -> Hypervisor.Program.Halt
          | bit :: rest ->
              queue := rest;
              phase := `Burst;
              Hypervisor.Program.Sleep (if bit then params.long_gap else params.short_gap)))

let receiver_program ?(params = default_params) () =
  let stamps = ref [] in
  let prog =
    Hypervisor.Program.make (fun ~now ->
        stamps := now :: !stamps;
        Hypervisor.Program.Compute params.chunk)
  in
  (prog, fun () -> List.rev !stamps)

let decode ?(params = default_params) stamps =
  (* A gap between chunk completions larger than the chunk itself means the
     receiver was preempted: the excess is the sender's burst length. *)
  let threshold = params.chunk + Sim.Time.ms 2 in
  let cut = (params.short_burst + params.long_burst) / 2 in
  let rec go acc = function
    | a :: (b :: _ as rest) ->
        let gap = b - a in
        if gap > threshold then begin
          let burst = gap - params.chunk in
          go ((burst > cut) :: acc) rest
        end
        else go acc rest
    | [ _ ] | [] -> List.rev acc
  in
  go [] stamps

let bit_error_rate ~sent ~received =
  match sent with
  | [] -> 0.0
  | _ ->
      let n = List.length sent in
      let rec count s r errs =
        match (s, r) with
        | [], _ -> errs
        | _ :: s', [] -> count s' [] (errs + 1)
        | sb :: s', rb :: r' -> count s' r' (if Bool.equal sb rb then errs else errs + 1)
      in
      float_of_int (count sent received 0) /. float_of_int n

let transmission_time ?(params = default_params) ~bits () =
  let per_bit =
    (params.short_burst + params.long_burst + params.short_gap + params.long_gap) / 2
  in
  params.settle + (bits * per_bit)

let random_bits prng n = List.init n (fun _ -> Sim.Prng.bool prng)

let sender_vm ~vid ~owner ?(params = default_params) ~bits () =
  Hypervisor.Vm.make ~vid ~owner ~image:Hypervisor.Image.ubuntu
    ~flavor:Hypervisor.Flavor.small
    ~programs:(fun () -> [ sender_program ~params ~bits () ])
    ()

let receiver_vm ~vid ~owner ?(params = default_params) () =
  let prog, stamps = receiver_program ~params () in
  let first = ref (Some prog) in
  let vm =
    Hypervisor.Vm.make ~vid ~owner ~image:Hypervisor.Image.ubuntu
      ~flavor:Hypervisor.Flavor.small
      ~programs:(fun () ->
        match !first with
        | Some p ->
            first := None;
            [ p ]
        | None -> [ fst (receiver_program ~params ()) ])
      ()
  in
  (vm, stamps)
