lib/hypervisor/vm.ml: Flavor Guest_os Image List Program
