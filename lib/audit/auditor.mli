(** Auditors: the independent parties that keep a log operator honest.

    An auditor tracks, per log, the newest {e trusted} signed tree head —
    one it has verified extends every head it trusted before.  Heads
    arrive two ways: by polling the log's own face ({!observe}) and by
    gossip from peers ({!note}).  Misbehaviour surfaces as [evidence]:

    - {e Split_view}: two validly signed heads of the same size with
      different roots (no proof needed — the pair itself convicts).
    - {e Inconsistent}: a head that the served view cannot prove to extend
      (or be a prefix of) the trusted one — a fork or a dropped entry.
    - {e Rollback}: the log's own face served a head older than one it
      already served this auditor.
    - {e Bad_signature} / {e Bad_entry}: forged heads; entries that fail
      replay (e.g. a verdict whose AS signature does not verify).

    Detection latency is bounded by the gossip cadence: once two observers
    hold divergent checkpoints, the first {!exchange} between them yields
    evidence — within one checkpoint interval of the divergence. *)

type kind = Split_view | Inconsistent | Rollback | Bad_signature | Bad_entry

type evidence = {
  log_id : string;
  kind : kind;
  trusted : Sth.t option;  (** the head we held, if any *)
  offending : Sth.t option;  (** the head that convicted the operator *)
  detail : string;
  at : Sim.Time.t;  (** simulated detection time *)
}

type t

val create :
  name:string ->
  key_of:(string -> Crypto.Rsa.public option) ->
  ?clock:(unit -> Sim.Time.t) ->
  unit ->
  t
(** [key_of log_id] resolves the operator key used to verify that log's
    STH signatures; unknown logs yield [Bad_signature] evidence. *)

val name : t -> string

val observe : t -> View.t -> unit
(** Poll the log's face: verify its latest head extends the trusted one
    (consistency proof), then re-check any gossiped heads against the
    served view. *)

val note : t -> Sth.t -> unit
(** Take in a gossiped head: signature and same-size cross-checks happen
    immediately; prefix checks wait for the next {!observe}. *)

val replay : t -> View.t -> upto:int -> check:(index:int -> string -> bool) -> int
(** [replay t view ~upto ~check] walks entries [0, upto) through [check]
    (e.g. verdict-signature verification), records [Bad_entry] evidence
    for each failure and returns the failure count. *)

val broadcast : t -> to_:t -> unit
val exchange : t -> t -> unit
(** Gossip every trusted head to a peer (one way / both ways). *)

val trusted : t -> log_id:string -> Sth.t option

val trusted_heads : t -> Sth.t list
(** Every trusted head, ordered by log id (for gossip broadcasts). *)

val evidence : t -> evidence list
(** Oldest first. *)

val evidence_count : t -> int
val sths_checked : t -> int
val proofs_checked : t -> int
val entries_checked : t -> int

val pp_kind : Format.formatter -> kind -> unit
val pp_evidence : Format.formatter -> evidence -> unit
