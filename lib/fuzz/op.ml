type fault = Drop_nth of int | Garble_nth of int | Lossy of int * int | Blackout

type op =
  | Launch of { image : int; monitored : bool; workload : int }
  | Terminate of int
  | Suspend of int
  | Resume of int
  | Migrate of int
  | Attest of int * int
  | Attest_many of (int * int) list
  | Set_cache_ttl of int
  | Set_batching of bool
  | Enable_audit
  | Set_fault of fault
  | Clear_fault
  | Advance of int
  | Infect of int
  | Corrupt_image of int
  | Vtpm_cycle of int  (** save + restore the vTPM of vm#slot's host (state now stale) *)
  | Vtpm_clone of int * int  (** restore vm#src's host vTPM state into vm#dst's host *)
  | Vtpm_rebind of int  (** re-register vm#slot's host vTPM with the Privacy CA *)
  | Protocol_term of Copland.Phrase.t
      (** run a protocol phrase through the Controller interpreter *)
  | Monitor_enable of int
      (** arm continuous monitoring with this re-attestation period (ms);
          0 disarms *)
  | Monitor_period of int  (** change the period of an armed monitor (ms) *)
  | Monitor_storm of int
      (** rack-style incident: hide malware in every VM co-hosted with
          vm#slot *)

type scenario = { seed : int; ops : op list }

let images = [| "cirros"; "fedora"; "ubuntu" |]
let workloads = [| ""; "busy" |]
let properties = Array.of_list Core.Property.all

(* --- Compact textual form -------------------------------------------------

   One token per op, ';'-separated.  The grammar is deliberately dense so a
   whole repro fits on one line:

     L<image>.<mon>.<workload>   launch        K<slot>  terminate (kill)
     S<slot> suspend   R<slot> resume   M<slot> migrate
     a<slot>.<prop>    attest
     A<slot>.<prop>+<slot>.<prop>+...   attest_many
     c<ms>   cache TTL          b0|b1    batching off/on
     u       enable audit       t<ms>    advance
     x<slot> infect             i<image> corrupt image
     vs<slot> vTPM save+restore   vm<src>.<dst> vTPM clone   vr<slot> vTPM rebind
     fd<n> fg<n> fl<drop>.<garble> fb    faults;   f0  clear fault
     P<phrase>   protocol term (Copland codec; no ';' or space inside)
     me<ms> monitor enable (0 disarms)   mp<ms> monitor period
     mt<slot> monitor storm (infect vm#slot's whole host) *)

let op_to_string = function
  | Launch { image; monitored; workload } ->
      Printf.sprintf "L%d.%d.%d" image (if monitored then 1 else 0) workload
  | Terminate s -> Printf.sprintf "K%d" s
  | Suspend s -> Printf.sprintf "S%d" s
  | Resume s -> Printf.sprintf "R%d" s
  | Migrate s -> Printf.sprintf "M%d" s
  | Attest (s, p) -> Printf.sprintf "a%d.%d" s p
  | Attest_many items ->
      "A" ^ String.concat "+" (List.map (fun (s, p) -> Printf.sprintf "%d.%d" s p) items)
  | Set_cache_ttl ms -> Printf.sprintf "c%d" ms
  | Set_batching b -> if b then "b1" else "b0"
  | Enable_audit -> "u"
  | Set_fault (Drop_nth n) -> Printf.sprintf "fd%d" n
  | Set_fault (Garble_nth n) -> Printf.sprintf "fg%d" n
  | Set_fault (Lossy (d, g)) -> Printf.sprintf "fl%d.%d" d g
  | Set_fault Blackout -> "fb"
  | Clear_fault -> "f0"
  | Advance ms -> Printf.sprintf "t%d" ms
  | Infect s -> Printf.sprintf "x%d" s
  | Corrupt_image i -> Printf.sprintf "i%d" i
  | Vtpm_cycle s -> Printf.sprintf "vs%d" s
  | Vtpm_clone (src, dst) -> Printf.sprintf "vm%d.%d" src dst
  | Vtpm_rebind s -> Printf.sprintf "vr%d" s
  | Protocol_term p -> "P" ^ Copland.Phrase.to_string p
  | Monitor_enable ms -> Printf.sprintf "me%d" ms
  | Monitor_period ms -> Printf.sprintf "mp%d" ms
  | Monitor_storm s -> Printf.sprintf "mt%d" s

let int_of s = int_of_string_opt s

let pair_of s =
  match String.index_opt s '.' with
  | None -> None
  | Some i -> (
      match
        ( int_of (String.sub s 0 i),
          int_of (String.sub s (i + 1) (String.length s - i - 1)) )
      with
      | Some a, Some b -> Some (a, b)
      | _ -> None)

let op_of_string s =
  let n = String.length s in
  if n = 0 then None
  else
    let rest = String.sub s 1 (n - 1) in
    match s.[0] with
    | 'L' -> (
        match String.split_on_char '.' rest with
        | [ i; m; w ] -> (
            match (int_of i, int_of m, int_of w) with
            | Some image, Some mon, Some workload when mon = 0 || mon = 1 ->
                Some (Launch { image; monitored = mon = 1; workload })
            | _ -> None)
        | _ -> None)
    | 'K' -> Option.map (fun s -> Terminate s) (int_of rest)
    | 'S' -> Option.map (fun s -> Suspend s) (int_of rest)
    | 'R' -> Option.map (fun s -> Resume s) (int_of rest)
    | 'M' -> Option.map (fun s -> Migrate s) (int_of rest)
    | 'a' -> Option.map (fun (s, p) -> Attest (s, p)) (pair_of rest)
    | 'A' ->
        let items = List.map pair_of (String.split_on_char '+' rest) in
        if items = [] || List.exists Option.is_none items then None
        else Some (Attest_many (List.map Option.get items))
    | 'c' -> Option.map (fun ms -> Set_cache_ttl ms) (int_of rest)
    | 'b' -> (
        match rest with "0" -> Some (Set_batching false) | "1" -> Some (Set_batching true) | _ -> None)
    | 'u' -> if rest = "" then Some Enable_audit else None
    | 't' -> Option.map (fun ms -> Advance ms) (int_of rest)
    | 'x' -> Option.map (fun s -> Infect s) (int_of rest)
    | 'i' -> Option.map (fun i -> Corrupt_image i) (int_of rest)
    | 'v' ->
        if n < 3 then None
        else begin
          let arg = String.sub s 2 (n - 2) in
          match s.[1] with
          | 's' -> Option.map (fun s -> Vtpm_cycle s) (int_of arg)
          | 'm' -> Option.map (fun (src, dst) -> Vtpm_clone (src, dst)) (pair_of arg)
          | 'r' -> Option.map (fun s -> Vtpm_rebind s) (int_of arg)
          | _ -> None
        end
    | 'P' -> (
        match Copland.Phrase.of_string rest with
        | Ok p -> Some (Protocol_term p)
        | Error _ -> None)
    | 'm' ->
        if n < 3 then None
        else begin
          let arg = String.sub s 2 (n - 2) in
          match s.[1] with
          | 'e' -> Option.map (fun ms -> Monitor_enable ms) (int_of arg)
          | 'p' -> Option.map (fun ms -> Monitor_period ms) (int_of arg)
          | 't' -> Option.map (fun s -> Monitor_storm s) (int_of arg)
          | _ -> None
        end
    | 'f' ->
        if rest = "0" then Some Clear_fault
        else if rest = "b" then Some (Set_fault Blackout)
        else if n < 3 then None
        else begin
          let arg = String.sub s 2 (n - 2) in
          match s.[1] with
          | 'd' -> Option.map (fun n -> Set_fault (Drop_nth n)) (int_of arg)
          | 'g' -> Option.map (fun n -> Set_fault (Garble_nth n)) (int_of arg)
          | 'l' -> Option.map (fun (d, g) -> Set_fault (Lossy (d, g))) (pair_of arg)
          | _ -> None
        end
    | _ -> None

let to_string { seed; ops } =
  Printf.sprintf "seed=%d ops=%s" seed (String.concat ";" (List.map op_to_string ops))

let of_string line =
  let line = String.trim line in
  match String.index_opt line ' ' with
  | None -> None
  | Some sp ->
      let seed_part = String.sub line 0 sp in
      let ops_part = String.sub line (sp + 1) (String.length line - sp - 1) in
      let prefixed prefix s =
        let pn = String.length prefix in
        if String.length s >= pn && String.sub s 0 pn = prefix then
          Some (String.sub s pn (String.length s - pn))
        else None
      in
      (match (prefixed "seed=" seed_part, prefixed "ops=" ops_part) with
      | Some seed_s, Some ops_s -> (
          match int_of_string_opt seed_s with
          | None -> None
          | Some seed ->
              if ops_s = "" then Some { seed; ops = [] }
              else
                let ops = List.map op_of_string (String.split_on_char ';' ops_s) in
                if List.exists Option.is_none ops then None
                else Some { seed; ops = List.map Option.get ops })
      | _ -> None)

let equal_op (a : op) (b : op) = a = b

let pp_op ppf op =
  let fault_label = function
    | Drop_nth n -> Printf.sprintf "drop-every-%d" n
    | Garble_nth n -> Printf.sprintf "garble-every-%d" n
    | Lossy (d, g) -> Printf.sprintf "lossy(drop %d%%, garble %d%%)" d g
    | Blackout -> "blackout"
  in
  match op with
  | Launch { image; monitored; workload } ->
      Format.fprintf ppf "launch %s%s%s"
        images.(image mod Array.length images)
        (if monitored then " monitored" else "")
        (match workloads.(workload mod Array.length workloads) with
        | "" -> ""
        | w -> " workload=" ^ w)
  | Terminate s -> Format.fprintf ppf "terminate vm#%d" s
  | Suspend s -> Format.fprintf ppf "suspend vm#%d" s
  | Resume s -> Format.fprintf ppf "resume vm#%d" s
  | Migrate s -> Format.fprintf ppf "migrate vm#%d" s
  | Attest (s, p) ->
      Format.fprintf ppf "attest vm#%d %a" s Core.Property.pp
        properties.(p mod Array.length properties)
  | Attest_many items ->
      Format.fprintf ppf "attest_many [%s]"
        (String.concat "; "
           (List.map
              (fun (s, p) ->
                Format.asprintf "vm#%d %a" s Core.Property.pp
                  properties.(p mod Array.length properties))
              items))
  | Set_cache_ttl ms -> Format.fprintf ppf "cache ttl := %d ms" ms
  | Set_batching b -> Format.fprintf ppf "batching := %b" b
  | Enable_audit -> Format.fprintf ppf "enable audit"
  | Set_fault f -> Format.fprintf ppf "fault := %s" (fault_label f)
  | Clear_fault -> Format.fprintf ppf "fault cleared"
  | Advance ms -> Format.fprintf ppf "advance %d ms" ms
  | Infect s -> Format.fprintf ppf "infect vm#%d" s
  | Corrupt_image i ->
      Format.fprintf ppf "corrupt image %s" images.(i mod Array.length images)
  | Vtpm_cycle s -> Format.fprintf ppf "vtpm save+restore host of vm#%d" s
  | Vtpm_clone (src, dst) ->
      Format.fprintf ppf "vtpm clone host of vm#%d -> host of vm#%d" src dst
  | Vtpm_rebind s -> Format.fprintf ppf "vtpm rebind host of vm#%d" s
  | Protocol_term p ->
      Format.fprintf ppf "protocol %s%s"
        (Copland.Phrase.to_string p)
        (if Copland.Phrase.weakened p then " (weakened)" else "")
  | Monitor_enable ms ->
      if ms > 0 then Format.fprintf ppf "monitor enable, period %d ms" ms
      else Format.fprintf ppf "monitor disarm"
  | Monitor_period ms -> Format.fprintf ppf "monitor period := %d ms" ms
  | Monitor_storm s -> Format.fprintf ppf "storm: infect host of vm#%d" s

let pp ppf { seed; ops } =
  Format.fprintf ppf "@[<v>scenario seed=%d (%d ops)@," seed (List.length ops);
  List.iteri (fun i op -> Format.fprintf ppf "  %2d: %a@," i pp_op op) ops;
  Format.fprintf ppf "@]"
