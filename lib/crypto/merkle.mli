(** Binary Merkle tree over {!Sha256}, for batched attestation quotes.

    One Trust-Module signature over the root covers many measurement
    reports; each report stays individually checkable through its O(log n)
    inclusion proof, so a verifier never has to trust the aggregator.

    Leaf and interior hashes are domain-separated (a leaf digest can never
    be replayed as an interior node or vice versa), which blocks the
    classic second-preimage tricks on unbalanced trees.  Odd nodes at any
    level are promoted unchanged, so the tree shape is a deterministic
    function of the leaf count alone. *)

type proof
(** An inclusion proof: the sibling hashes from a leaf up to the root,
    each tagged with the side it hashes on. *)

val leaf_hash : string -> string
(** [leaf_hash data] is the domain-separated digest a leaf contributes. *)

val root : string list -> string
(** [root leaves] is the Merkle root of the leaf {e data} (hashed with
    {!leaf_hash} internally).  Raises [Invalid_argument] on []. *)

val proof : string list -> int -> proof
(** [proof leaves i] is the inclusion proof for leaf [i] (0-based).
    Raises [Invalid_argument] if [i] is out of range or [leaves] is []. *)

val verify : root:string -> leaf:string -> proof -> bool
(** [verify ~root ~leaf p] checks that [leaf] (raw data, not a digest) is
    included under [root] via [p]. *)

val proof_length : proof -> int
(** Number of sibling hashes in the proof (= the leaf's depth). *)

val node_count : int -> int
(** [node_count n] is the total number of hash evaluations needed to build
    a tree over [n] leaves (leaf hashes + interior nodes) — the term the
    cost model charges per batch. *)

val max_proof_length : int -> int
(** [max_proof_length n] is the longest inclusion proof in a tree over [n]
    leaves (= ceil(log2 n)); the per-report verification cost bound. *)

val encode : Wire.Codec.Enc.t -> proof -> unit
val decode : Wire.Codec.Dec.t -> proof
(** Wire codecs, so proofs travel inside batch measurement responses. *)
