lib/core/privacy_ca.mli: Crypto Net
