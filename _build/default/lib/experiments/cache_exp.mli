(** Extension experiment: the prime-probe cache covert channel and its
    detection from the [Cache_misses] monitoring source (paper section
    4.4.3 sketches monitoring multiple covert-channel media; this
    experiment realises a second medium end to end). *)

type party = {
  label : string;
  windows : int array;  (** per-10 ms cache-miss counts *)
  status : Core.Report.status;
  evidence : string;
}

type result = {
  bits : int;
  bit_error_rate : float;
  bandwidth_bps : float;
  sender : party;
  receiver : party;
  benign : party;
}

val run : ?seed:int -> unit -> result
val print : result -> unit
