(* Weighted generator of protocol phrases for the fuzzer.

   Generated phrases are well-typed against the replay cloud whenever the
   generation-time slot count matches the live VM table (a slot landing on
   a wrong-cluster delegation still parses and replays — the interpreter's
   typing rejection is itself a fuzzed path).  Layers always wrap an
   appraisal of their own slot, so the host-sharing side condition holds by
   construction. *)

let n_properties = List.length Core.Property.all

(* The replay cloud runs two AS clusters (see {!Replay}). *)
let clusters = 2

let merge prng = Sim.Prng.pick prng [| Copland.Phrase.All; Copland.Phrase.Any; Copland.Phrase.Quorum |]

let appraise prng ~slots =
  Copland.Phrase.Appraise
    { slot = Sim.Prng.int prng slots; prop = Sim.Prng.int prng n_properties; nonce = true }

let rec body prng ~slots ~depth ~deleg_ok =
  if depth <= 0 then appraise prng ~slots
  else
    let choices =
      [ (8, `Leaf); (4, `Seq); (4, `Par); (2, `Layer) ]
      @ if deleg_ok then [ (2, `Deleg) ] else []
    in
    match Sim.Prng.weighted prng choices with
    | `Leaf -> appraise prng ~slots
    | `Seq ->
        let a = body prng ~slots ~depth:(depth - 1) ~deleg_ok in
        Copland.Phrase.Seq (a, body prng ~slots ~depth:(depth - 1) ~deleg_ok)
    | `Par ->
        let m = merge prng in
        let a = body prng ~slots ~depth:(depth - 1) ~deleg_ok in
        Copland.Phrase.Par (m, a, body prng ~slots ~depth:(depth - 1) ~deleg_ok)
    | `Deleg ->
        Copland.Phrase.Deleg
          {
            cluster = Sim.Prng.int prng clusters;
            auth = true;
            body = body prng ~slots ~depth:(depth - 1) ~deleg_ok:false;
          }
    | `Layer ->
        let slot = Sim.Prng.int prng slots in
        Copland.Phrase.Layer
          {
            slot;
            checked = true;
            body =
              Copland.Phrase.Appraise
                { slot; prop = Sim.Prng.int prng n_properties; nonce = true };
          }

let generate prng ~slots =
  let slots = max 1 slots in
  body prng ~slots ~depth:(Sim.Prng.int_in prng 1 3) ~deleg_ok:true

(* Flip exactly one strengthening flag — a nonce, a delegation auth or a
   layer check — chosen uniformly among those present. *)
let weaken prng phrase =
  let total = ref 0 in
  let rec count = function
    | Copland.Phrase.Appraise { nonce; _ } -> if nonce then incr total
    | Copland.Phrase.Seq (a, b) | Copland.Phrase.Par (_, a, b) ->
        count a;
        count b
    | Copland.Phrase.Deleg { auth; body; _ } ->
        if auth then incr total;
        count body
    | Copland.Phrase.Layer { checked; body; _ } ->
        if checked then incr total;
        count body
  in
  count phrase;
  if !total = 0 then phrase
  else begin
    let target = Sim.Prng.int prng !total in
    let seen = ref (-1) in
    let hit () =
      incr seen;
      !seen = target
    in
    let rec go = function
      | Copland.Phrase.Appraise { slot; prop; nonce } ->
          let nonce = if nonce && hit () then false else nonce in
          Copland.Phrase.Appraise { slot; prop; nonce }
      | Copland.Phrase.Seq (a, b) ->
          let a = go a in
          Copland.Phrase.Seq (a, go b)
      | Copland.Phrase.Par (m, a, b) ->
          let a = go a in
          Copland.Phrase.Par (m, a, go b)
      | Copland.Phrase.Deleg { cluster; auth; body } ->
          let auth = if auth && hit () then false else auth in
          Copland.Phrase.Deleg { cluster; auth; body = go body }
      | Copland.Phrase.Layer { slot; checked; body } ->
          let checked = if checked && hit () then false else checked in
          Copland.Phrase.Layer { slot; checked; body = go body }
    in
    go phrase
  end
