lib/experiments/fig6.ml: Attacks Common Hypervisor List Printf Sim Workloads
