type variant_result = {
  variant : string;
  checks : Verifier.Properties.check list;
  expected_violations : string list;
  as_expected : bool;
}

type result = variant_result list

let variants =
  [
    ("secure protocol (as specified)", Verifier.Model.secure, []);
    ( "no nonces in quoted payloads",
      Verifier.Model.no_nonces,
      [ "freshness" ] );
    ( "no encryption (SSL layer off)",
      Verifier.Model.no_encryption,
      [ "secrecy-payloads"; "auth-customer-controller"; "auth-controller-as"; "auth-as-server" ] );
    ( "channel keys leaked (compromised SSL endpoints)",
      Verifier.Model.compromised_channels,
      [
        "secrecy-channel-keys";
        "secrecy-payloads";
        "auth-customer-controller";
        "auth-controller-as";
        "auth-as-server";
      ] );
    ( "measurements unsigned + channel keys leaked",
      Verifier.Model.no_measurement_signature,
      [
        "secrecy-channel-keys";
        "secrecy-payloads";
        "integrity";
        "freshness";
        "auth-customer-controller";
        "auth-controller-as";
        "auth-as-server";
      ] );
    ( "reports unsigned + channel keys leaked",
      Verifier.Model.no_report_signature,
      [
        "secrecy-channel-keys";
        "secrecy-payloads";
        "integrity";
        "freshness";
        "auth-customer-controller";
        "auth-controller-as";
        "auth-as-server";
      ] );
  ]

let violated checks =
  List.filter_map
    (fun (c : Verifier.Properties.check) ->
      match c.outcome with
      | Verifier.Properties.Holds -> None
      | Verifier.Properties.Violated _ -> Some c.id)
    checks

let run () =
  List.map
    (fun (name, variant, expected) ->
      let checks = Verifier.Properties.run variant in
      let got = List.sort compare (violated checks) in
      let expected_violations = List.sort compare expected in
      { variant = name; checks; expected_violations; as_expected = got = expected_violations })
    variants

let all_as_expected rs = List.for_all (fun r -> r.as_expected) rs

let print rs =
  Common.section "Section 7.2.2: protocol verification (Dolev-Yao symbolic checker)";
  List.iter
    (fun r ->
      Printf.printf "\n--- %s  [%s]\n" r.variant
        (if r.as_expected then "matches expectations" else "UNEXPECTED OUTCOME");
      List.iter
        (fun c -> Printf.printf "  %s\n" (Format.asprintf "%a" Verifier.Properties.pp_check c))
        r.checks)
    rs
