(** The CPU-based cross-VM covert channel of paper section 4.4.

    The sender VM leaks bits to a co-resident receiver by occupying their
    shared pCPU for a long time (bit 1) or a short time (bit 0).  It sleeps
    between bursts so each transmission starts with a boosted wakeup that
    preempts the receiver, and keeps its duty cycle below its credit share
    so the boost never runs out.  The receiver runs tight compute chunks
    and reads bits from the gaps the sender's bursts punch into its own
    progress.

    Detection (section 4.4.2): the hypervisor's burst histogram for the
    sender shows two peaks — at the short and long burst lengths — where a
    benign CPU-bound VM shows a single peak at the 30 ms timeslice. *)

type params = {
  short_burst : Sim.Time.t;  (** CPU occupation encoding a 0 (default 5 ms) *)
  long_burst : Sim.Time.t;  (** CPU occupation encoding a 1 (default 20 ms) *)
  short_gap : Sim.Time.t;  (** idle time after a 0 (default 10 ms) *)
  long_gap : Sim.Time.t;  (** idle time after a 1 (default 30 ms) *)
  settle : Sim.Time.t;  (** initial idle period to accumulate credits *)
  chunk : Sim.Time.t;  (** receiver measurement granularity (default 0.5 ms) *)
}

val default_params : params

val sender_program : ?params:params -> bits:bool list -> unit -> Hypervisor.Program.t
(** Transmit [bits] once, then idle forever. *)

val receiver_program :
  ?params:params -> unit -> Hypervisor.Program.t * (unit -> Sim.Time.t list)
(** The receiver and an accessor for its chunk-completion timestamps. *)

val decode : ?params:params -> Sim.Time.t list -> bool list
(** Recover the transmitted bits from receiver timestamps. *)

val bit_error_rate : sent:bool list -> received:bool list -> float
(** Fraction of wrong or missing bits. *)

val transmission_time : ?params:params -> bits:int -> unit -> Sim.Time.t
(** Expected air time for [bits] random bits (for bandwidth estimates). *)

val random_bits : Sim.Prng.t -> int -> bool list

val sender_vm :
  vid:string -> owner:string -> ?params:params -> bits:bool list -> unit -> Hypervisor.Vm.t

val receiver_vm :
  vid:string ->
  owner:string ->
  ?params:params ->
  unit ->
  Hypervisor.Vm.t * (unit -> Sim.Time.t list)
