lib/crypto/rsa.ml: Bignum Buffer Bytes Drbg Printf Sha256 String
