lib/core/costs.mli: Sim
