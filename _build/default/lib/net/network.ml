type address = string

type direction = Request | Reply

type message = { seq : int; src : address; dst : address; dir : direction; payload : string }

type action = Pass | Replace of string | Drop

type adversary = message -> action

type error = [ `Dropped | `No_such_host of address ]

type t = {
  prng : Sim.Prng.t;
  base_latency_us : int;
  jitter_us : int;
  bandwidth_bytes_per_us : float;
  handlers : (address, string -> string) Hashtbl.t;
  mutable adversary : adversary option;
  mutable log : message list; (* newest first *)
  mutable seq : int;
  mutable messages : int;
  mutable bytes : int;
}

let create ?(base_latency_us = 200) ?(jitter_us = 50) ?(bandwidth_mbps = 1000.0) ~seed () =
  {
    prng = Sim.Prng.create seed;
    base_latency_us;
    jitter_us;
    bandwidth_bytes_per_us = bandwidth_mbps *. 1.0e6 /. 8.0 /. 1.0e6;
    handlers = Hashtbl.create 16;
    adversary = None;
    log = [];
    seq = 0;
    messages = 0;
    bytes = 0;
  }

let register t addr handler = Hashtbl.replace t.handlers addr handler
let unregister t addr = Hashtbl.remove t.handlers addr

let leg_latency t nbytes =
  let jitter =
    if t.jitter_us = 0 then 0
    else int_of_float (abs_float (Sim.Prng.gaussian t.prng ~mu:0.0 ~sigma:(float_of_int t.jitter_us)))
  in
  let wire = int_of_float (float_of_int nbytes /. t.bandwidth_bytes_per_us) in
  t.base_latency_us + jitter + wire

let observe t ~src ~dst ~dir payload =
  t.seq <- t.seq + 1;
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + String.length payload;
  let msg = { seq = t.seq; src; dst; dir; payload } in
  t.log <- msg :: t.log;
  match t.adversary with
  | None -> Some payload
  | Some adv -> (
      match adv msg with
      | Pass -> Some payload
      | Replace p -> Some p
      | Drop -> None)

let call t ~src ~dst payload =
  match Hashtbl.find_opt t.handlers dst with
  | None -> (Error (`No_such_host dst), Sim.Time.zero)
  | Some handler -> (
      let t1 = leg_latency t (String.length payload) in
      match observe t ~src ~dst ~dir:Request payload with
      | None -> (Error `Dropped, Sim.Time.us t1)
      | Some delivered -> (
          let reply = handler delivered in
          let t2 = leg_latency t (String.length reply) in
          match observe t ~src:dst ~dst:src ~dir:Reply reply with
          | None -> (Error `Dropped, Sim.Time.us (t1 + t2))
          | Some reply -> (Ok reply, Sim.Time.us (t1 + t2))))

let transfer_time t ~bytes =
  Sim.Time.us (t.base_latency_us + int_of_float (float_of_int bytes /. t.bandwidth_bytes_per_us))

let set_adversary t adv = t.adversary <- Some adv
let clear_adversary t = t.adversary <- None

let recorded t = List.rev t.log
let message_count t = t.messages
let bytes_sent t = t.bytes
