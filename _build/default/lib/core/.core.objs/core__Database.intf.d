lib/core/database.mli: Hypervisor Property
