(** Section 7.2.2: formal verification of the attestation protocol.

    Runs the symbolic checker on the protocol as specified and on each
    deliberately weakened variant, and compares the outcomes with
    expectations: the secure protocol satisfies all properties; each
    removed protection breaks exactly the properties it guards. *)

type variant_result = {
  variant : string;
  checks : Verifier.Properties.check list;
  expected_violations : string list;  (** check ids *)
  as_expected : bool;
}

type result = variant_result list

val run : unit -> result
val print : result -> unit

val all_as_expected : result -> bool
