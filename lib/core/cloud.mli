(** Whole-cloud assembly: engine, network, CAs, Cloud Controller,
    Attestation Server and a fleet of cloud servers, wired as in paper
    Figure 1, plus the customer-side API with end-to-end report
    verification. *)

type config = {
  seed : int;
  num_servers : int;
  num_attestation_servers : int;
      (** AS instances; cloud servers are partitioned into clusters
          round-robin, one AS each (paper 3.2.3 scalability) *)
  pcpus : int;  (** per server *)
  mem_mb : int;  (** per server *)
  key_bits : int;  (** RSA modulus size for every identity (tests use 512) *)
  insecure_servers : int;  (** trailing servers built without a Trust Module *)
  corrupt_platforms : int list;  (** indices of servers booted with a tampered hypervisor *)
  refs : Interpret.refs;
  backend_of : int -> Tpm.Backend.kind;
      (** trust backend per server index (default all [Classic], which is
          byte-identical on the wire to the pre-backend cloud); a vendor
          {!Tpm.Platform_root} is minted iff some index maps to
          [Cvm_report] *)
}

val default_config : config
(** 3 servers (as in the paper's testbed), 4 pCPUs / 32 GB each, 1024-bit
    keys, everything secure and pristine. *)

type t

val build : ?config:config -> unit -> t
(** Create and wire everything: CA + privacy CA, identities, per-server
    attestation clients and monitor kernels, network handlers, golden
    reference values, and the standard workload registry (idle, the six
    cloud benchmarks, busy). *)

val config : t -> config
val engine : t -> Sim.Engine.t
val net : t -> Net.Network.t
val ca : t -> Net.Ca.t
val pca : t -> Privacy_ca.t
val controller : t -> Controller.t
val attestation_server : t -> Attestation_server.t
(** The first (or only) attestation server. *)

val attestation_servers : t -> Attestation_server.t list
val servers : t -> Hypervisor.Server.t list
val find_server : t -> string -> Hypervisor.Server.t option

val platform_root : t -> Tpm.Platform_root.t option
(** The hardware vendor root, present iff the config placed a [Cvm_report]
    backend somewhere. *)

(** {2 vTPM lifecycle}

    Management-plane operations on servers running the {!Tpm.Evtpm}
    backend: serialize the module state (what a migration or
    suspend-to-disk carries), restore it (which marks the module stale),
    and re-register with the Privacy CA (which is the {e only} way quotes
    from restored state verify Healthy again). *)

val vtpm_save : t -> server:string -> (string, string) result

val vtpm_restore : t -> server:string -> string -> (unit, string) result
(** Restore saved state into [server]'s vTPM.  Until {!vtpm_rebind}, every
    quote it mints is rejected by the Privacy CA as a stale binding and
    comes back as a signed [Compromised] verdict. *)

val vtpm_rebind : t -> server:string -> (int, string) result
(** Bump the binding epoch on the device and mirror it to the Privacy CA;
    returns the new epoch. *)

val run_for : t -> Sim.Time.t -> unit
(** Advance simulated time (runs scheduler ticks, periodic attestations,
    workload programs...). *)

val now : t -> Sim.Time.t

val enable_audit : ?checkpoint_interval:Sim.Time.t -> t -> Audit.Log.t list
(** Switch the verdict transparency layer on end to end (opt-in; off by
    default, in which case every wire byte is identical to the pre-audit
    protocol): calls {!Attestation_server.enable_audit} on every AS, turns
    on {!Controller.set_auditing}, and schedules a periodic signed
    checkpoint of every log ([checkpoint_interval] defaults to 1 s; pass
    [0] to skip scheduling).  Returns the logs, one per AS, for wiring
    auditors. *)

(** Customer-side API: issues Table 1 requests over a secure channel and
    verifies the full signature chain of every report it accepts. *)
module Customer : sig
  type cloud := t
  type t

  type error = [ `Cloud of string | `Channel of Net.Secure_channel.error | `Forged of string ]

  val pp_error : Format.formatter -> error -> unit

  val create : cloud -> name:string -> t
  val name : t -> string

  val launch :
    t ->
    image:string ->
    flavor:string ->
    ?properties:Property.t list ->
    ?workload:string ->
    unit ->
    (Commands.launch_info, error) result

  val attest : t -> vid:string -> property:Property.t -> (Report.t, error) result
  (** One-time attestation with a fresh nonce; the controller report's
      signature, quote Q1, vid, property and nonce are all verified before
      the report is trusted. *)

  val attest_periodic :
    t ->
    vid:string ->
    property:Property.t ->
    freq:Sim.Time.t ->
    ?on_report:(Report.t -> unit) ->
    unit ->
    (unit, error) result
  (** Table 1 [runtime_attest_periodic]: results arrive as the simulation
      advances; each is chain-verified before [on_report] sees it. *)

  val attest_periodic_random :
    t ->
    vid:string ->
    property:Property.t ->
    min:Sim.Time.t ->
    max:Sim.Time.t ->
    ?on_report:(Report.t -> unit) ->
    unit ->
    (unit, error) result
  (** Periodic attestation at unpredictable intervals, so an attacker
      cannot time its activity around the measurement windows. *)

  val attest_periodic_scheduled :
    t ->
    vid:string ->
    property:Property.t ->
    schedule:Schedule.t ->
    ?on_report:(Report.t -> unit) ->
    unit ->
    (unit, error) result

  val stop_periodic : t -> vid:string -> property:Property.t -> (unit, error) result
  val terminate : t -> vid:string -> (unit, error) result
  val describe : t -> vid:string -> (string * Property.t list, error) result

  val periodic_reports : t -> Report.t list
  (** All verified periodic reports received so far, oldest first. *)

  val forged_count : t -> int
  (** Periodic deliveries that failed verification (would indicate an
      attack on the monitoring plane). *)
end
