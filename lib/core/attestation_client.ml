type t = {
  server : Hypervisor.Server.t;
  trust : Tpm.Backend.t;
  kernel : Monitors.Monitor_kernel.t;
  identity : Net.Secure_channel.Identity.t;
  mutable served : int;
}

let address_of name = "att:" ^ name

let address t = address_of (Hypervisor.Server.name t.server)
let server t = t.server
let kernel t = t.kernel
let identity t = t.identity
let requests_served t = t.served

let error_reply reason =
  Wire.Codec.encode (fun e ->
      Wire.Codec.Enc.u8 e 0;
      Wire.Codec.Enc.str e reason)

let ok_reply payload =
  Wire.Codec.encode (fun e ->
      Wire.Codec.Enc.u8 e 1;
      Wire.Codec.Enc.str e payload)

(* Batched measurement: collect every item, build a Merkle tree over the
   per-item Q3 quotes, and have the Trust Module mint ONE session key and
   sign ONE root — the whole point of batching.  Any item that cannot be
   collected fails the batch (the AS retries those items unbatched), so a
   batch reply always covers exactly what was asked. *)
let handle_batch t (req : Protocol.batch_measure_request) =
  if req.bm_items = [] then error_reply "empty batch"
  else begin
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | (vid, requests_raw) :: rest -> (
          match Monitors.Measurement.decode_requests requests_raw with
          | None -> Error "malformed measurement list"
          | Some requests -> (
              match Monitors.Monitor_kernel.collect t.kernel ~vid requests with
              | Error (`Unknown_vm vid) -> Error ("unknown vm " ^ vid)
              | Error (`Unsupported r) ->
                  Error
                    ("unsupported measurement " ^ Monitors.Measurement.request_to_string r)
              | Ok values ->
                  collect
                    ((vid, requests_raw, Monitors.Measurement.encode_values values) :: acc)
                    rest))
    in
    match collect [] req.bm_items with
    | Error why -> error_reply why
    | Ok measured ->
        let leaves =
          List.map
            (fun (vid, requests_raw, values_raw) ->
              Protocol.q3 ~vid ~requests_raw ~values_raw ~nonce:req.bm_nonce)
            measured
        in
        let root = Crypto.Merkle.root leaves in
        let session = Tpm.Backend.begin_session t.trust in
        let signature =
          match Tpm.Backend.quote_batch t.trust session ~root ~nonce:req.bm_nonce with
          | Some s -> s
          | None -> ""
        in
        Tpm.Backend.end_session t.trust session;
        let items =
          List.mapi
            (fun i (bi_vid, bi_requests_raw, bi_values_raw) ->
              {
                Protocol.bi_vid;
                bi_requests_raw;
                bi_values_raw;
                bi_proof = Crypto.Merkle.proof leaves i;
              })
            measured
        in
        t.served <- t.served + List.length items;
        ok_reply
          (Protocol.encode_batch_measure_response
             {
               Protocol.br_items = items;
               br_nonce = req.bm_nonce;
               br_root = root;
               br_signature = signature;
               br_avk = Crypto.Rsa.public_to_string session.public;
               br_endorsement = session.endorsement;
             })
  end

let handle t plaintext =
  match Protocol.decode_batch_measure_request plaintext with
  | Some req -> handle_batch t req
  | None -> (
  match Protocol.decode_measure_request plaintext with
  | None -> error_reply "malformed measurement request"
  | Some req -> (
      match Monitors.Measurement.decode_requests req.requests_raw with
      | None -> error_reply "malformed measurement list"
      | Some requests -> (
          match Monitors.Monitor_kernel.collect t.kernel ~vid:req.vid requests with
          | Error (`Unknown_vm vid) -> error_reply ("unknown vm " ^ vid)
          | Error (`Unsupported r) ->
              error_reply ("unsupported measurement " ^ Monitors.Measurement.request_to_string r)
          | Ok values ->
              let values_raw = Monitors.Measurement.encode_values values in
              let session = Tpm.Backend.begin_session t.trust in
              let quote =
                Protocol.q3 ~vid:req.vid ~requests_raw:req.requests_raw ~values_raw
                  ~nonce:req.nonce
              in
              let unsigned =
                {
                  Protocol.vid = req.vid;
                  requests_raw = req.requests_raw;
                  values_raw;
                  nonce = req.nonce;
                  quote;
                  signature = "";
                  avk = Crypto.Rsa.public_to_string session.public;
                  endorsement = session.endorsement;
                }
              in
              let signature =
                match
                  Tpm.Backend.sign_with_session t.trust session
                    (Protocol.measure_response_payload unsigned)
                with
                | Some s -> s
                | None -> ""
              in
              Tpm.Backend.end_session t.trust session;
              t.served <- t.served + 1;
              ok_reply (Protocol.encode_measure_response { unsigned with signature }))))

let create ~net ~ca ~seed ?(key_bits = 1024) server =
  match Hypervisor.Server.trust_backend server with
  | None -> Error `Not_secure
  | Some trust ->
      (* The channel identity key is the Trust Module's identity keypair
         would be ideal; we give the attestation client its own CA-certified
         channel identity (as real deployments separate TLS keys from
         attestation keys) while the measurement signatures come from the
         Trust Module. *)
      let name = Hypervisor.Server.name server in
      let identity =
        Net.Secure_channel.Identity.make ca ~seed:(seed ^ "|attclient") ~bits:key_bits ~name ()
      in
      let t =
        {
          server;
          trust;
          kernel = Monitors.Monitor_kernel.create server;
          identity;
          served = 0;
        }
      in
      let channel_server =
        Net.Secure_channel.Server.create ~identity ~ca:(Net.Ca.public ca) ~seed
          ~on_request:(fun ~peer:_ plaintext -> handle t plaintext)
      in
      Net.Network.register net (address_of name) (Net.Secure_channel.Server.handle channel_server);
      Ok t

let measurement_cost ?(backend = Tpm.Backend.Classic) (req : Protocol.measure_request) =
  let n =
    match Monitors.Measurement.decode_requests req.requests_raw with
    | Some rs -> List.length rs
    | None -> 1
  in
  Costs.session_keygen_for backend + Costs.quote_sign_for backend
  + (n * Costs.measurement_collect)

let batch_measurement_cost ?(backend = Tpm.Backend.Classic) (req : Protocol.batch_measure_request) =
  let collects =
    List.fold_left
      (fun acc (_, requests_raw) ->
        acc
        +
        match Monitors.Measurement.decode_requests requests_raw with
        | Some rs -> List.length rs
        | None -> 1)
      0 req.bm_items
  in
  (* One keygen + one root signature for the whole batch; collection stays
     per measurement and the Merkle build is charged per node. *)
  Costs.batch_quote_cost_for ~batch:(List.length req.bm_items) backend
  + (collects * Costs.measurement_collect)
