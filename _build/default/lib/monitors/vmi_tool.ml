let with_instance server ~vid f =
  match Hypervisor.Server.find server vid with
  | None -> None
  | Some inst -> Some (f inst)

let kernel_task_list server ~vid =
  with_instance server ~vid (fun inst -> Hypervisor.Guest_os.kernel_tasks inst.vm.guest)

let guest_reported_task_list server ~vid =
  with_instance server ~vid (fun inst -> Hypervisor.Guest_os.visible_tasks inst.vm.guest)

let probe_cost = Sim.Time.us 200
