(** The fuzz campaign as a registered experiment: a deterministic sweep of
    generated cloud histories through the oracle library, a fleet-config
    property sweep, and mutation testing of the oracles themselves (each
    planted cache-invalidation bug must be caught and shrink to a short
    repro).

    Exit-status material: {!clean} is false whenever any oracle fired on
    the unmutated system or a planted bug went uncaught, so CI can gate on
    it and publish {!repro_lines}. *)

type planted = {
  bug_name : string;
  caught : bool;
  found_at_seed : int;  (** seed of the first failing scenario (-1 if uncaught) *)
  shrunk_ops : int;
  repro : string;
}

type result = {
  seed : int;
  scale : string;
  report : Fuzz.Campaign.report;
  fleet_runs : int;
  fleet_violations : Fuzz.Fleet_props.violation list;
  planted : planted list;
}

val run : ?seed:int -> ?scale:[ `Default | `Smoke ] -> unit -> result
(** [scale] defaults to [`Smoke] when [CLOUDMONATT_FLEET_SCALE=smoke], else
    [`Default] (1000 runs; smoke runs 200).  [CLOUDMONATT_FUZZ_RUNS]
    overrides the campaign size either way. *)

val clean : result -> bool
val repro_lines : result -> string list
(** One replayable line per failure (campaign failures, then planted). *)

val print : result -> unit
val to_json : result -> Json.t
