let default_tick = Sim.Time.ms 10

let next_tick ~tick now = ((now / tick) + 1) * tick

let main_program ?(tick = default_tick) ?(guard = Sim.Time.us 600) () =
  let phase = ref `Compute in
  Hypervisor.Program.make (fun ~now ->
      match !phase with
      | `Compute ->
          phase := `Sleep;
          let d = next_tick ~tick now - now - guard in
          if d <= 0 then Hypervisor.Program.Compute (Sim.Time.us 100)
          else Hypervisor.Program.Compute d
      | `Sleep ->
          phase := `Compute;
          (* Sleep "forever": the helper's IPI provides the real wakeup. *)
          Hypervisor.Program.Sleep (Sim.Time.sec 3600))

let helper_program ?(tick = default_tick) ?(lead = Sim.Time.us 200) () =
  let phase = ref `Sleep in
  Hypervisor.Program.make (fun ~now ->
      match !phase with
      | `Sleep ->
          phase := `Ipi;
          Hypervisor.Program.Sleep (next_tick ~tick now - now + lead)
      | `Ipi ->
          phase := `Sleep;
          Hypervisor.Program.Ipi 0)

let attacker_vm ~vid ~owner () =
  Hypervisor.Vm.make ~vid ~owner ~image:Hypervisor.Image.ubuntu
    ~flavor:Hypervisor.Flavor.medium
    ~programs:(fun () -> [ main_program (); helper_program () ])
    ()

let pins ~victim_pcpu ~helper_pcpu = [ Some victim_pcpu; Some helper_pcpu ]
