lib/monitors/vmi_tool.ml: Hypervisor Sim
