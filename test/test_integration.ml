(* Integration tests: the full CloudMonatt cloud, end-to-end.

   These exercise the complete Figure 1 architecture over the simulated
   network with real cryptography: customer -> Cloud Controller ->
   Attestation Server -> Cloud Server and back, with detection and
   remediation scenarios from sections 4 and 5 and the unforgeability
   claims of section 7.2. *)

open Core

let fast_config = { Cloud.default_config with key_bits = 512 }

let make_cloud ?(config = fast_config) () = Cloud.build ~config ()

let launch_ok customer ~image ~flavor ~properties ?workload () =
  match Cloud.Customer.launch customer ~image ~flavor ~properties ?workload () with
  | Ok info -> info
  | Error e -> Alcotest.failf "launch failed: %a" Cloud.Customer.pp_error e

let attest_ok customer ~vid ~property =
  match Cloud.Customer.attest customer ~vid ~property with
  | Ok r -> r
  | Error e -> Alcotest.failf "attest failed: %a" Cloud.Customer.pp_error e

(* --- Launch ------------------------------------------------------------------ *)

let test_launch_unmonitored () =
  let cloud = make_cloud () in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info = launch_ok c ~image:"cirros" ~flavor:"small" ~properties:[] () in
  (* Four OpenStack stages, no attestation stage. *)
  Alcotest.(check (list string)) "stages"
    [ "scheduling"; "networking"; "mapping"; "spawning" ]
    (List.map fst info.Commands.stages)

let test_launch_monitored_five_stages () =
  let cloud = make_cloud () in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info =
    launch_ok c ~image:"ubuntu" ~flavor:"large" ~properties:[ Property.Startup_integrity ] ()
  in
  Alcotest.(check (list string)) "five stages"
    [ "scheduling"; "networking"; "mapping"; "spawning"; "attestation" ]
    (List.map fst info.Commands.stages);
  let att = List.assoc "attestation" info.Commands.stages in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 info.Commands.stages in
  let pct = 100.0 *. float_of_int att /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "attestation ~20%% of launch (got %.1f%%)" pct)
    true
    (pct > 10.0 && pct < 30.0)

let test_launch_unknown_image () =
  let cloud = make_cloud () in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  match Cloud.Customer.launch c ~image:"win95" ~flavor:"small" () with
  | Error (`Cloud _) -> ()
  | _ -> Alcotest.fail "unknown image must fail"

let test_launch_tampered_image_rejected () =
  let cloud = make_cloud () in
  ignore (Controller.corrupt_image (Cloud.controller cloud) "fedora" : bool);
  let c = Cloud.Customer.create cloud ~name:"alice" in
  (match
     Cloud.Customer.launch c ~image:"fedora" ~flavor:"small"
       ~properties:[ Property.Startup_integrity ] ()
   with
  | Error (`Cloud _) -> ()
  | Ok _ -> Alcotest.fail "tampered image must be rejected"
  | Error e -> Alcotest.failf "unexpected error: %a" Cloud.Customer.pp_error e);
  (* But an unmonitored launch of the same image sails through: without the
     property request there is no startup attestation (and no protection). *)
  match Cloud.Customer.launch c ~image:"fedora" ~flavor:"small" ~properties:[] () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unmonitored launch failed: %a" Cloud.Customer.pp_error e

let test_corrupt_platform_avoided () =
  (* Server 1 boots a trojaned hypervisor.  The launch retry loop must land
     monitored VMs on a pristine server. *)
  let config = { fast_config with corrupt_platforms = [ 0 ] } in
  let cloud = make_cloud ~config () in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  for _ = 1 to 3 do
    let info =
      launch_ok c ~image:"cirros" ~flavor:"small" ~properties:[ Property.Startup_integrity ] ()
    in
    let host = Option.get (Controller.vm_host (Cloud.controller cloud) ~vid:info.Commands.vid) in
    Alcotest.(check bool) ("avoids corrupt server, got " ^ host) true (host <> "server-1")
  done

let test_no_qualified_server () =
  (* All servers insecure: monitored VMs cannot be placed at all. *)
  let config = { fast_config with insecure_servers = 3 } in
  let cloud = make_cloud ~config () in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  (match
     Cloud.Customer.launch c ~image:"cirros" ~flavor:"small"
       ~properties:[ Property.Runtime_integrity ] ()
   with
  | Error (`Cloud "no qualified server") -> ()
  | Ok _ -> Alcotest.fail "insecure fleet must refuse monitored VMs"
  | Error e -> Alcotest.failf "unexpected: %a" Cloud.Customer.pp_error e);
  (* Unmonitored VMs still work on insecure servers. *)
  match Cloud.Customer.launch c ~image:"cirros" ~flavor:"small" ~properties:[] () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unmonitored should work: %a" Cloud.Customer.pp_error e

(* --- Attestation happy paths ---------------------------------------------------- *)

let test_attest_all_properties_healthy () =
  let cloud = make_cloud () in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info =
    launch_ok c ~image:"ubuntu" ~flavor:"small" ~properties:Property.all ~workload:"busy" ()
  in
  Cloud.run_for cloud (Sim.Time.sec 5);
  List.iter
    (fun property ->
      let r = attest_ok c ~vid:info.Commands.vid ~property in
      match r.Report.status with
      | Report.Healthy -> ()
      | s ->
          Alcotest.failf "%s should be healthy, got %a" (Property.to_string property)
            Report.pp_status s)
    [ Property.Startup_integrity; Property.Runtime_integrity; Property.Cpu_availability ]

let test_attest_other_customers_vm_refused () =
  let cloud = make_cloud () in
  let alice = Cloud.Customer.create cloud ~name:"alice" in
  let eve = Cloud.Customer.create cloud ~name:"eve" in
  let info = launch_ok alice ~image:"cirros" ~flavor:"small" ~properties:Property.all () in
  match Cloud.Customer.attest eve ~vid:info.Commands.vid ~property:Property.Runtime_integrity with
  | Error (`Cloud "no such VM") -> ()
  | Ok _ -> Alcotest.fail "cross-customer attestation must be refused"
  | Error e -> Alcotest.failf "unexpected: %a" Cloud.Customer.pp_error e

let test_attest_unknown_vm () =
  let cloud = make_cloud () in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  match Cloud.Customer.attest c ~vid:"vm-9999" ~property:Property.Runtime_integrity with
  | Error (`Cloud _) -> ()
  | _ -> Alcotest.fail "unknown VM must fail"

let test_as_history_recorded () =
  let cloud = make_cloud () in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info = launch_ok c ~image:"cirros" ~flavor:"small" ~properties:Property.all () in
  ignore (attest_ok c ~vid:info.Commands.vid ~property:Property.Runtime_integrity);
  let history = Attestation_server.history (Cloud.attestation_server cloud) in
  (* startup attestation + our runtime one *)
  Alcotest.(check bool) "history grows" true (List.length history >= 2);
  Alcotest.(check bool) "count matches" true
    (Attestation_server.attestations_done (Cloud.attestation_server cloud)
    = List.length history)

(* --- Batched attestation ---------------------------------------------------------- *)

(* Launch enough monitored VMs that at least one server hosts two or more
   (three servers, so four VMs pigeonhole), and return a host with its
   co-located vids. *)
let co_located_vms cloud customer n =
  let controller = Cloud.controller cloud in
  let all_vids =
    List.init n (fun _ ->
        (launch_ok customer ~image:"cirros" ~flavor:"small"
           ~properties:[ Property.Runtime_integrity ] ())
          .Commands.vid)
  in
  let by_host = Hashtbl.create 4 in
  List.iter
    (fun vid ->
      let host = Option.get (Controller.vm_host controller ~vid) in
      Hashtbl.replace by_host host
        (vid :: Option.value ~default:[] (Hashtbl.find_opt by_host host)))
    all_vids;
  let best =
    Hashtbl.fold
      (fun host vids acc ->
        match acc with
        | Some (_, best, _) when List.length best >= List.length vids -> acc
        | _ -> Some (host, List.rev vids, all_vids))
      by_host None
  in
  match best with
  | Some (host, vids, all) when List.length vids >= 2 -> (host, vids, all)
  | _ -> Alcotest.fail "expected co-located VMs"

let test_batch_attest_end_to_end () =
  let cloud = make_cloud () in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let host, vids, _ = co_located_vms cloud c 4 in
  let as_ = Cloud.attestation_server cloud in
  let items = List.map (fun vid -> (vid, Property.Runtime_integrity)) vids in
  let nonce = String.make 16 'b' in
  let result, ledger = Attestation_server.attest_batch as_ ~server:host ~items ~nonce in
  (match result with
  | Error e -> Alcotest.failf "batch refused: %a" Attestation_server.pp_error e
  | Ok reports ->
      Alcotest.(check int) "one reply per request" (List.length items) (List.length reports);
      List.iter2
        (fun (vid, property) (rvid, rproperty, r) ->
          Alcotest.(check string) "request order preserved" vid rvid;
          Alcotest.(check bool) "property echoed" true (Property.equal property rproperty);
          match r with
          | Error e -> Alcotest.failf "item failed: %a" Attestation_server.pp_error e
          | Ok report ->
              (* Every report in the batch is individually signed and
                 individually verifiable, exactly like the unbatched path. *)
              Alcotest.(check bool) "individually verifies" true
                (Protocol.verify_as_report
                   ~key:(Attestation_server.public_key as_)
                   ~expected_vid:vid ~expected_server:host ~expected_property:property
                   ~expected_nonce:nonce report
                = Ok ());
              Alcotest.(check bool) "healthy" true (Report.is_healthy report.Protocol.report))
        items reports);
  (* The ledger shows the amortization: one batch-sized verification charge
     instead of per-report RSA verifies, and the whole batch's quote cost
     stays below what per-report session keygens alone would have cost. *)
  let n = List.length items in
  Alcotest.(check int) "batched verify charge"
    (Costs.batch_verify_cost ~batch:n)
    (Ledger.of_label ledger "verify");
  Alcotest.(check bool) "quote cost amortized across the batch" true
    (Ledger.of_label ledger "server-measure" < n * Costs.session_keygen);
  Alcotest.(check int) "per-report interpretation still happens"
    (n * Costs.interpret)
    (Ledger.of_label ledger "interpret")

let test_attest_many_batched_matches_unbatched () =
  let cloud = make_cloud () in
  let controller = Cloud.controller cloud in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let _host, _co, all_vids = co_located_vms cloud c 4 in
  let reqs =
    List.mapi
      (fun i vid ->
        { Protocol.vid; property = Property.Runtime_integrity; nonce = Printf.sprintf "nonce-%04d" i })
      all_vids
  in
  Alcotest.(check bool) "have requests" true (List.length reqs >= 2);
  (* Batching off: attest_many is attest in a loop. *)
  let unbatched, _ = Controller.attest_many controller reqs in
  (* Batching on: host groups ride one Merkle-batched AS round. *)
  Controller.set_batching controller true;
  Alcotest.(check bool) "batching on" true (Controller.batching controller);
  let batched, _ = Controller.attest_many controller reqs in
  List.iter2
    (fun ((req0 : Protocol.attest_request), r0) ((req1 : Protocol.attest_request), r1) ->
      Alcotest.(check string) "request order preserved" req0.Protocol.vid req1.Protocol.vid;
      match (r0, r1) with
      | Ok a, Ok b ->
          Alcotest.(check bool) "same verdict either way" true
            (a.Protocol.report.Report.status = b.Protocol.report.Report.status);
          (* Both verify under the controller key against their own nonce. *)
          List.iter
            (fun ((req : Protocol.attest_request), (r : Protocol.controller_report)) ->
              Alcotest.(check bool) "verifies" true
                (Protocol.verify_controller_report ~key:(Controller.public_key controller)
                   ~expected_vid:req.Protocol.vid
                   ~expected_property:req.Protocol.property
                   ~expected_nonce:req.Protocol.nonce r
                = Ok ()))
            [ (req0, a); (req1, b) ]
      | r0, r1 ->
          Alcotest.failf "mismatched outcomes: %s / %s"
            (match r0 with Ok _ -> "ok" | Error e -> e)
            (match r1 with Ok _ -> "ok" | Error e -> e))
    unbatched batched

let test_attest_many_unbatched_equals_attest_loop () =
  (* With batching off (the default) attest_many must be observably the
     plain attest loop: same verdicts, same per-report verification. *)
  let cloud = make_cloud () in
  let controller = Cloud.controller cloud in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let _host, _co, vids = co_located_vms cloud c 4 in
  let reqs =
    List.mapi
      (fun i vid ->
        { Protocol.vid; property = Property.Runtime_integrity; nonce = Printf.sprintf "n-%d" i })
      vids
  in
  let looped =
    List.map (fun req -> Result.get_ok (fst (Controller.attest controller req))) reqs
  in
  let many, _ = Controller.attest_many controller reqs in
  List.iter2
    (fun (loop : Protocol.controller_report) (_, r) ->
      let r = Result.get_ok r in
      Alcotest.(check string) "same vid" loop.Protocol.vid r.Protocol.vid;
      Alcotest.(check bool) "same status" true
        (loop.Protocol.report.Report.status = r.Protocol.report.Report.status))
    looped many

let test_batch_attest_unknown_vm_refused () =
  (* A vid the cloud server cannot measure refuses the whole batch as a
     hard error: a batch reply always covers exactly what was asked, and
     nothing is silently dropped or fabricated as healthy. *)
  let cloud = make_cloud () in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let host, vids, _ = co_located_vms cloud c 4 in
  let as_ = Cloud.attestation_server cloud in
  let items =
    List.map (fun vid -> (vid, Property.Runtime_integrity)) vids
    @ [ ("vm-9999", Property.Runtime_integrity) ]
  in
  let result, _ = Attestation_server.attest_batch as_ ~server:host ~items ~nonce:"nonce-bad-vm-x" in
  (match result with
  | Error (`Server_refused _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Attestation_server.pp_error e
  | Ok _ -> Alcotest.fail "a batch with an unmeasurable vid must be refused");
  (* The same batch without the bogus vid sails through. *)
  let items = List.map (fun vid -> (vid, Property.Runtime_integrity)) vids in
  match fst (Attestation_server.attest_batch as_ ~server:host ~items ~nonce:"nonce-good-x") with
  | Ok reports -> Alcotest.(check int) "served" (List.length items) (List.length reports)
  | Error e -> Alcotest.failf "clean batch failed: %a" Attestation_server.pp_error e

(* --- Detection + response scenarios ----------------------------------------------- *)

let test_malware_detected_and_terminated () =
  let cloud = make_cloud () in
  let controller = Cloud.controller cloud in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info =
    launch_ok c ~image:"cirros" ~flavor:"small" ~properties:[ Property.Runtime_integrity ] ()
  in
  let vid = info.Commands.vid in
  let host = Option.get (Controller.vm_host controller ~vid) in
  let server = Option.get (Cloud.find_server cloud host) in
  let inst = Option.get (Hypervisor.Server.find server vid) in
  ignore (Attacks.Malware.infect_hidden inst.Hypervisor.Server.vm () : Hypervisor.Guest_os.process);
  (match Cloud.Customer.attest c ~vid ~property:Property.Runtime_integrity with
  | Ok { Report.status = Report.Compromised _; _ } -> ()
  | Ok r -> Alcotest.failf "expected compromise, got %a" Report.pp_status r.Report.status
  | Error e -> Alcotest.failf "attest failed: %a" Cloud.Customer.pp_error e);
  (* Periodic attestation triggers the termination response. *)
  (match
     Cloud.Customer.attest_periodic c ~vid ~property:Property.Runtime_integrity
       ~freq:(Sim.Time.sec 2) ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "periodic failed: %a" Cloud.Customer.pp_error e);
  Cloud.run_for cloud (Sim.Time.sec 5);
  Alcotest.(check bool) "terminated" true
    (Controller.vm_state controller ~vid = Some Database.Terminated);
  Alcotest.(check bool) "gone from the hypervisor" true (Hypervisor.Server.find server vid = None);
  match Controller.responses controller with
  | [ r ] ->
      Alcotest.(check string) "termination response" "termination"
        (Controller.strategy_label r.Controller.strategy)
  | rs -> Alcotest.failf "expected one response, got %d" (List.length rs)

let test_availability_attack_migrates_victim () =
  let config = { fast_config with pcpus = 2 } in
  let cloud = make_cloud ~config () in
  let controller = Cloud.controller cloud in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info =
    launch_ok c ~image:"ubuntu" ~flavor:"small" ~properties:[ Property.Cpu_availability ]
      ~workload:"busy" ()
  in
  let vid = info.Commands.vid in
  let host0 = Option.get (Controller.vm_host controller ~vid) in
  let server = Option.get (Cloud.find_server cloud host0) in
  let attacker = Attacks.Availability.attacker_vm ~vid:"att" ~owner:"mallory" () in
  (match
     Hypervisor.Server.launch server
       ~pins:(Attacks.Availability.pins ~victim_pcpu:0 ~helper_pcpu:1)
       attacker
   with
  | Ok _ -> ()
  | Error `Insufficient_memory -> Alcotest.fail "attacker launch failed");
  (match
     Cloud.Customer.attest_periodic c ~vid ~property:Property.Cpu_availability
       ~freq:(Sim.Time.sec 5) ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "periodic failed: %a" Cloud.Customer.pp_error e);
  Cloud.run_for cloud (Sim.Time.sec 11);
  let host1 = Option.get (Controller.vm_host controller ~vid) in
  Alcotest.(check bool) "victim migrated away" true (host1 <> host0);
  (* After migration the victim runs unobstructed again. *)
  Cloud.run_for cloud (Sim.Time.sec 2);
  let server1 = Option.get (Cloud.find_server cloud host1) in
  let inst = Option.get (Hypervisor.Server.find server1 vid) in
  let sched = Hypervisor.Server.scheduler server1 in
  let r0 = Hypervisor.Credit_scheduler.domain_runtime sched inst.Hypervisor.Server.domain in
  Cloud.run_for cloud (Sim.Time.sec 2);
  let r1 = Hypervisor.Credit_scheduler.domain_runtime sched inst.Hypervisor.Server.domain in
  Alcotest.(check bool) "full share restored" true (r1 - r0 > Sim.Time.of_ms_float 1900.

  )

let test_covert_channel_detected () =
  let config = { fast_config with pcpus = 2 } in
  let cloud = make_cloud ~config () in
  let controller = Cloud.controller cloud in
  let prng = Sim.Prng.create 11 in
  let bits = Attacks.Covert_channel.random_bits prng 200 in
  Controller.register_workload controller "covert" (fun _flavor () ->
      [ Attacks.Covert_channel.sender_program ~bits () ]);
  let c = Cloud.Customer.create cloud ~name:"bob" in
  let info =
    launch_ok c ~image:"ubuntu" ~flavor:"small" ~properties:[ Property.Covert_channel_free ]
      ~workload:"covert" ()
  in
  let vid = info.Commands.vid in
  let host = Option.get (Controller.vm_host controller ~vid) in
  let server = Option.get (Cloud.find_server cloud host) in
  let receiver, _ = Attacks.Covert_channel.receiver_vm ~vid:"recv" ~owner:"mallory" () in
  (match Hypervisor.Server.launch server ~pin:0 receiver with
  | Ok _ -> ()
  | Error `Insufficient_memory -> Alcotest.fail "receiver launch failed");
  Cloud.run_for cloud (Sim.Time.sec 10);
  match Cloud.Customer.attest c ~vid ~property:Property.Covert_channel_free with
  | Ok { Report.status = Report.Compromised _; _ } -> ()
  | Ok r -> Alcotest.failf "expected detection, got %a" Report.pp_status r.Report.status
  | Error e -> Alcotest.failf "attest failed: %a" Cloud.Customer.pp_error e

let test_cache_channel_detected_full_pipeline () =
  (* The Covert_channel_free property monitored from BOTH sources: CPU
     bursts and cache-miss patterns (paper 4.4.3's extension point).  The
     cache-channel pair does not share a pCPU, so the CPU-burst source is
     blind to it — only the cache source catches it. *)
  let refs =
    { Interpret.default_refs with
      Interpret.covert_sources = [ Interpret.Cpu_bursts; Interpret.Cache_misses ];
    }
  in
  let config = { fast_config with refs } in
  let cloud = make_cloud ~config () in
  let controller = Cloud.controller cloud in
  let c = Cloud.Customer.create cloud ~name:"bob" in
  let info =
    launch_ok c ~image:"ubuntu" ~flavor:"small" ~properties:[ Property.Covert_channel_free ] ()
  in
  let vid = info.Commands.vid in
  let host = Option.get (Controller.vm_host controller ~vid) in
  let server = Option.get (Cloud.find_server cloud host) in
  let cache = Hypervisor.Server.cache server in
  (* Trojan inside the monitored VM: a cache-channel sender keyed to the
     VM's own id, so the Monitor Module attributes the misses to it. *)
  let prng = Sim.Prng.create 17 in
  let bits = Attacks.Covert_channel.random_bits prng 150 in
  let inst = Option.get (Hypervisor.Server.find server vid) in
  ignore
    (Hypervisor.Credit_scheduler.add_vcpu
       (Hypervisor.Server.scheduler server)
       inst.Hypervisor.Server.domain ~pin:1
       (Attacks.Cache_channel.sender_program cache ~owner:vid ~bits ())
      : Hypervisor.Credit_scheduler.vcpu);
  let recv_prog, stream = Attacks.Cache_channel.receiver_program cache ~owner:"recv" () in
  let recv_vm =
    Hypervisor.Vm.make ~vid:"recv" ~owner:"mallory" ~image:Hypervisor.Image.ubuntu
      ~flavor:Hypervisor.Flavor.small
      ~programs:(fun () -> [ recv_prog ])
      ()
  in
  (match Hypervisor.Server.launch server ~pin:0 recv_vm with
  | Ok _ -> ()
  | Error `Insufficient_memory -> Alcotest.fail "receiver launch failed");
  Cloud.run_for cloud (Sim.Time.sec 3);
  (* The channel really works... *)
  let got = Attacks.Cache_channel.received_bits ~count:(List.length bits) (stream ()) in
  Alcotest.(check (list bool)) "bits leaked through the cache" bits got;
  (* ...and the attestation catches it. *)
  match Cloud.Customer.attest c ~vid ~property:Property.Covert_channel_free with
  | Ok { Report.status = Report.Compromised why; _ } ->
      Alcotest.(check bool) "cache pattern named" true
        (String.length why > 0
        && String.split_on_char ' ' why <> [])
  | Ok r -> Alcotest.failf "expected detection, got %a" Report.pp_status r.Report.status
  | Error e -> Alcotest.failf "attest failed: %a" Cloud.Customer.pp_error e

let test_ima_catches_what_task_diff_misses () =
  (* A visible cryptominer and a trojaned sshd hide from the task-list diff
     (nothing is hidden); the IMA whitelist source catches both. *)
  let refs =
    { Interpret.default_refs with
      Interpret.integrity_sources = [ Interpret.Task_diff; Interpret.Ima_whitelist ];
    }
  in
  let plain_cloud = make_cloud () in
  let ima_cloud = make_cloud ~config:{ fast_config with refs } () in
  let run cloud =
    let controller = Cloud.controller cloud in
    let c = Cloud.Customer.create cloud ~name:"alice" in
    let info =
      launch_ok c ~image:"cirros" ~flavor:"small" ~properties:[ Property.Runtime_integrity ] ()
    in
    let vid = info.Commands.vid in
    let host = Option.get (Controller.vm_host controller ~vid) in
    let server = Option.get (Cloud.find_server cloud host) in
    let inst = Option.get (Hypervisor.Server.find server vid) in
    ignore (Attacks.Malware.infect_visible inst.Hypervisor.Server.vm ()
             : Hypervisor.Guest_os.process);
    ignore (Attacks.Malware.trojan_binary inst.Hypervisor.Server.vm ()
             : Hypervisor.Guest_os.process);
    match Cloud.Customer.attest c ~vid ~property:Property.Runtime_integrity with
    | Ok r -> r.Report.status
    | Error e -> Alcotest.failf "attest failed: %a" Cloud.Customer.pp_error e
  in
  (match run plain_cloud with
  | Report.Healthy -> () (* the paper's task-diff detector alone is blind here *)
  | s -> Alcotest.failf "task diff unexpectedly flagged: %a" Report.pp_status s);
  match run ima_cloud with
  | Report.Compromised _ -> ()
  | s -> Alcotest.failf "IMA should flag it, got %a" Report.pp_status s

let test_suspend_resume_response () =
  let cloud = make_cloud () in
  let controller = Cloud.controller cloud in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info =
    launch_ok c ~image:"cirros" ~flavor:"small" ~properties:[ Property.Runtime_integrity ]
      ~workload:"busy" ()
  in
  let vid = info.Commands.vid in
  (match Controller.respond controller Controller.Suspend_vm ~vid with
  | Ok reaction -> Alcotest.(check bool) "suspension takes time" true (reaction > 0)
  | Error e -> Alcotest.failf "suspend failed: %s" e);
  Alcotest.(check bool) "suspended" true
    (Controller.vm_state controller ~vid = Some Database.Suspended);
  (* After re-attestation the controller resumes the VM (section 5.2 #2). *)
  (match Controller.resume controller ~vid with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "resume failed: %s" e);
  Alcotest.(check bool) "active again" true
    (Controller.vm_state controller ~vid = Some Database.Active);
  match Cloud.Customer.attest c ~vid ~property:Property.Runtime_integrity with
  | Ok r -> Alcotest.(check bool) "healthy after resume" true (Report.is_healthy r)
  | Error e -> Alcotest.failf "attest failed: %a" Cloud.Customer.pp_error e

let test_periodic_reports_verified () =
  let cloud = make_cloud () in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info =
    launch_ok c ~image:"cirros" ~flavor:"small" ~properties:[ Property.Runtime_integrity ]
      ~workload:"busy" ()
  in
  let seen = ref 0 in
  (match
     Cloud.Customer.attest_periodic c ~vid:info.Commands.vid
       ~property:Property.Runtime_integrity ~freq:(Sim.Time.sec 2)
       ~on_report:(fun _ -> incr seen)
       ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "periodic failed: %a" Cloud.Customer.pp_error e);
  Cloud.run_for cloud (Sim.Time.sec 9);
  Alcotest.(check int) "four rounds delivered" 4 !seen;
  Alcotest.(check int) "all chain-verified" 4 (List.length (Cloud.Customer.periodic_reports c));
  Alcotest.(check int) "none forged" 0 (Cloud.Customer.forged_count c);
  (* Stop, and confirm no more arrive. *)
  (match Cloud.Customer.stop_periodic c ~vid:info.Commands.vid ~property:Property.Runtime_integrity with
  | Ok () -> ()
  | Error e -> Alcotest.failf "stop failed: %a" Cloud.Customer.pp_error e);
  Cloud.run_for cloud (Sim.Time.sec 6);
  Alcotest.(check int) "stopped" 4 !seen

let test_random_interval_periodic () =
  let cloud = make_cloud () in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info =
    launch_ok c ~image:"cirros" ~flavor:"small" ~properties:[ Property.Runtime_integrity ]
      ~workload:"busy" ()
  in
  let stamps = ref [] in
  (match
     Cloud.Customer.attest_periodic_random c ~vid:info.Commands.vid
       ~property:Property.Runtime_integrity ~min:(Sim.Time.sec 1) ~max:(Sim.Time.sec 4)
       ~on_report:(fun _ -> stamps := Cloud.now cloud :: !stamps)
       ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "periodic failed: %a" Cloud.Customer.pp_error e);
  Cloud.run_for cloud (Sim.Time.sec 30);
  let n = List.length !stamps in
  (* Mean gap 2.5 s over 30 s -> roughly 8-20 rounds. *)
  Alcotest.(check bool) (Printf.sprintf "rounds in plausible band (got %d)" n) true
    (n >= 8 && n <= 25);
  (* Gaps actually vary (it is not a fixed frequency). *)
  let gaps =
    let rec go = function a :: (b :: _ as rest) -> (a - b) :: go rest | _ -> [] in
    go !stamps
  in
  let distinct = List.sort_uniq compare gaps in
  Alcotest.(check bool) "gaps vary" true (List.length distinct > 2);
  List.iter
    (fun g ->
      Alcotest.(check bool) "gap within bounds" true (g >= Sim.Time.sec 1 && g <= Sim.Time.sec 4))
    gaps;
  Alcotest.(check int) "all verified" n (List.length (Cloud.Customer.periodic_reports c))

let test_suspend_recheck_resumes_after_cleanup () =
  (* Section 5.2 response #2: suspension with re-attestation and automatic
     resume once health returns. *)
  let cloud = make_cloud () in
  let controller = Cloud.controller cloud in
  (* Policy: suspend (rather than terminate) on runtime-integrity loss. *)
  Controller.set_response_policy controller (fun r ->
      match r.Report.status with
      | Report.Compromised _ -> Some Controller.Suspend_vm
      | Report.Healthy | Report.Unknown _ -> None);
  Controller.set_auto_resume controller ~recheck_period:(Sim.Time.sec 3) ~max_rechecks:5 true;
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info =
    launch_ok c ~image:"cirros" ~flavor:"small" ~properties:[ Property.Runtime_integrity ] ()
  in
  let vid = info.Commands.vid in
  let host = Option.get (Controller.vm_host controller ~vid) in
  let server = Option.get (Cloud.find_server cloud host) in
  let inst = Option.get (Hypervisor.Server.find server vid) in
  let proc = Attacks.Malware.infect_hidden inst.Hypervisor.Server.vm () in
  (match
     Cloud.Customer.attest_periodic c ~vid ~property:Property.Runtime_integrity
       ~freq:(Sim.Time.sec 2) ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "periodic failed: %a" Cloud.Customer.pp_error e);
  Cloud.run_for cloud (Sim.Time.sec 4);
  Alcotest.(check bool) "suspended on detection" true
    (Controller.vm_state controller ~vid = Some Database.Suspended);
  (* The operator cleans the malware; the next re-check resumes the VM. *)
  Alcotest.(check bool) "cleanup" true
    (Hypervisor.Guest_os.kill inst.Hypervisor.Server.vm.guest proc.Hypervisor.Guest_os.pid);
  Cloud.run_for cloud (Sim.Time.sec 8);
  Alcotest.(check bool) "auto-resumed" true
    (Controller.vm_state controller ~vid = Some Database.Active)

let test_suspend_recheck_terminates_if_never_clean () =
  let cloud = make_cloud () in
  let controller = Cloud.controller cloud in
  Controller.set_response_policy controller (fun r ->
      match r.Report.status with
      | Report.Compromised _ -> Some Controller.Suspend_vm
      | Report.Healthy | Report.Unknown _ -> None);
  Controller.set_auto_resume controller ~recheck_period:(Sim.Time.sec 2) ~max_rechecks:3 true;
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info =
    launch_ok c ~image:"cirros" ~flavor:"small" ~properties:[ Property.Runtime_integrity ] ()
  in
  let vid = info.Commands.vid in
  let host = Option.get (Controller.vm_host controller ~vid) in
  let server = Option.get (Cloud.find_server cloud host) in
  let inst = Option.get (Hypervisor.Server.find server vid) in
  ignore (Attacks.Malware.infect_hidden inst.Hypervisor.Server.vm () : Hypervisor.Guest_os.process);
  (match
     Cloud.Customer.attest_periodic c ~vid ~property:Property.Runtime_integrity
       ~freq:(Sim.Time.sec 2) ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "periodic failed: %a" Cloud.Customer.pp_error e);
  Cloud.run_for cloud (Sim.Time.sec 15);
  Alcotest.(check bool) "terminated after failed rechecks" true
    (Controller.vm_state controller ~vid = Some Database.Terminated)

let test_migration_avoids_corrupt_destination () =
  (* Post-migration attestation (section 5.3): server-2 has a trojaned
     hypervisor; a migration away from server-1 must skip it and land on
     server-3. *)
  let config = { fast_config with corrupt_platforms = [ 1 ] } in
  let cloud = make_cloud ~config () in
  let controller = Cloud.controller cloud in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info =
    launch_ok c ~image:"cirros" ~flavor:"small" ~properties:[ Property.Runtime_integrity ] ()
  in
  let vid = info.Commands.vid in
  Alcotest.(check (option string)) "starts on a pristine server" (Some "server-1")
    (Controller.vm_host controller ~vid);
  (match Controller.respond controller Controller.Migrate_vm ~vid with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "migration failed: %s" e);
  Alcotest.(check (option string)) "lands on the other pristine server" (Some "server-3")
    (Controller.vm_host controller ~vid);
  Alcotest.(check bool) "active" true (Controller.vm_state controller ~vid = Some Database.Active)

let test_terminate_via_api () =
  let cloud = make_cloud () in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info = launch_ok c ~image:"cirros" ~flavor:"small" ~properties:[] () in
  (match Cloud.Customer.terminate c ~vid:info.Commands.vid with
  | Ok () -> ()
  | Error e -> Alcotest.failf "terminate failed: %a" Cloud.Customer.pp_error e);
  match Cloud.Customer.describe c ~vid:info.Commands.vid with
  | Ok (state, _) -> Alcotest.(check string) "terminated" "terminated" state
  | Error e -> Alcotest.failf "describe failed: %a" Cloud.Customer.pp_error e

(* --- Adversarial scenarios (section 7.2) ---------------------------------------------- *)

let test_network_tampering_detected_not_forged () =
  let cloud = make_cloud () in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info = launch_ok c ~image:"cirros" ~flavor:"small" ~properties:Property.all () in
  Cloud.run_for cloud (Sim.Time.sec 1);
  (* From now on the Dolev-Yao attacker corrupts every reply on the wire. *)
  Net.Network.set_adversary (Cloud.net cloud)
    (Attacks.Network_attacker.tamper_replies ~offset:60 ~min_len:80 ());
  (match Cloud.Customer.attest c ~vid:info.Commands.vid ~property:Property.Runtime_integrity with
  | Ok _ -> Alcotest.fail "tampered exchange must not produce a report"
  | Error (`Channel _) | Error (`Cloud _) | Error (`Forged _) -> ());
  Net.Network.clear_adversary (Cloud.net cloud);
  (* The system recovers on a fresh channel. *)
  match Cloud.Customer.attest c ~vid:info.Commands.vid ~property:Property.Runtime_integrity with
  | Ok r -> Alcotest.(check bool) "healthy after attack stops" true (Report.is_healthy r)
  | Error e -> Alcotest.failf "recovery failed: %a" Cloud.Customer.pp_error e

let test_report_unforgeable_field_by_field () =
  (* Flip every field of a signed controller report and check the customer-
     side verifier rejects each mutant. *)
  let cloud = make_cloud () in
  let controller = Cloud.controller cloud in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info = launch_ok c ~image:"cirros" ~flavor:"small" ~properties:Property.all () in
  let vid = info.Commands.vid in
  let nonce = String.make 16 'n' in
  let report, _ =
    Controller.attest controller { Protocol.vid; property = Property.Runtime_integrity; nonce }
  in
  let report = Result.get_ok report in
  let key = Controller.public_key controller in
  let verify r =
    Protocol.verify_controller_report ~key ~expected_vid:vid
      ~expected_property:Property.Runtime_integrity ~expected_nonce:nonce r
  in
  Alcotest.(check bool) "genuine verifies" true (verify report = Ok ());
  let mutants =
    [
      ("vid", { report with Protocol.vid = "vm-0666" });
      ("property", { report with Protocol.property = Property.Startup_integrity });
      ( "status",
        { report with
          Protocol.report = { report.Protocol.report with Report.status = Report.Compromised "x" }
        } );
      ("nonce", { report with Protocol.nonce = String.make 16 'm' });
      ("quote", { report with Protocol.quote = Crypto.Sha256.digest "other" });
      ( "signature",
        { report with
          Protocol.signature =
            (let b = Bytes.of_string report.Protocol.signature in
             Bytes.set b 3 (Char.chr (Char.code (Bytes.get b 3) lxor 1));
             Bytes.to_string b);
        } );
    ]
  in
  List.iter
    (fun (name, mutant) ->
      Alcotest.(check bool) (name ^ " mutant rejected") true (verify mutant <> Ok ()))
    mutants

let test_multiple_attestation_servers () =
  (* Paper 3.2.3: several Attestation Servers, one per cluster.  With two
     AS instances and three servers, attestations route by host cluster
     and every report still verifies end to end. *)
  let config = { fast_config with num_attestation_servers = 2 } in
  let cloud = make_cloud ~config () in
  let controller = Cloud.controller cloud in
  Alcotest.(check int) "two AS instances" 2 (List.length (Cloud.attestation_servers cloud));
  let c = Cloud.Customer.create cloud ~name:"alice" in
  (* Fill the fleet so VMs land on different clusters. *)
  let vms =
    List.init 3 (fun _ ->
        (launch_ok c ~image:"cirros" ~flavor:"small" ~properties:Property.all ()).Commands.vid)
  in
  let hosts = List.filter_map (fun vid -> Controller.vm_host controller ~vid) vms in
  Alcotest.(check bool) "VMs spread over hosts" true (List.length (List.sort_uniq compare hosts) >= 2);
  List.iter
    (fun vid ->
      match Cloud.Customer.attest c ~vid ~property:Property.Runtime_integrity with
      | Ok r -> Alcotest.(check bool) "verified healthy" true (Report.is_healthy r)
      | Error e -> Alcotest.failf "attest failed: %a" Cloud.Customer.pp_error e)
    vms;
  (* Both AS instances actually served appraisals (startup + runtime). *)
  let counts =
    List.map Attestation_server.attestations_done (Cloud.attestation_servers cloud)
  in
  List.iter
    (fun n -> Alcotest.(check bool) "AS did work" true (n > 0))
    counts

let test_insecure_server_cannot_attest () =
  (* A VM forced onto a non-secure server has no attestation client; the
     attestation must fail rather than fabricate data. *)
  let config = { fast_config with insecure_servers = 1 } in
  let cloud = make_cloud ~config () in
  let controller = Cloud.controller cloud in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info = launch_ok c ~image:"cirros" ~flavor:"small" ~properties:[] () in
  let vid = info.Commands.vid in
  (* Move the record onto the insecure server behind the policy's back. *)
  Database.set_host (Controller.db controller) ~vid (Some "server-3");
  match Cloud.Customer.attest c ~vid ~property:Property.Runtime_integrity with
  | Ok _ -> Alcotest.fail "attestation of an insecure server must fail"
  | Error _ -> ()

let test_rogue_attestation_endpoint () =
  (* A compromised host VM replaces the attestation client with garbage:
     attestations against that server must fail, never fabricate. *)
  let cloud = make_cloud () in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info = launch_ok c ~image:"cirros" ~flavor:"small" ~properties:Property.all () in
  let host = Option.get (Controller.vm_host (Cloud.controller cloud) ~vid:info.Commands.vid) in
  Net.Network.register (Cloud.net cloud)
    (Attestation_client.address_of host)
    (fun _ -> "not-a-real-reply");
  match Cloud.Customer.attest c ~vid:info.Commands.vid ~property:Property.Runtime_integrity with
  | Ok _ -> Alcotest.fail "rogue endpoint must not yield a report"
  | Error _ -> ()

let test_periodic_double_start_rejected () =
  let cloud = make_cloud () in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info = launch_ok c ~image:"cirros" ~flavor:"small" ~properties:Property.all () in
  let vid = info.Commands.vid in
  (match
     Cloud.Customer.attest_periodic c ~vid ~property:Property.Runtime_integrity
       ~freq:(Sim.Time.sec 5) ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "first start failed: %a" Cloud.Customer.pp_error e);
  (match
     Cloud.Customer.attest_periodic c ~vid ~property:Property.Runtime_integrity
       ~freq:(Sim.Time.sec 2) ()
   with
  | Error (`Cloud _) -> ()
  | Ok () -> Alcotest.fail "double start must be rejected"
  | Error e -> Alcotest.failf "unexpected: %a" Cloud.Customer.pp_error e);
  (* Stop without an active subscription on another property. *)
  match Cloud.Customer.stop_periodic c ~vid ~property:Property.Cpu_availability with
  | Error (`Cloud _) -> ()
  | Ok () -> Alcotest.fail "stop without start must be rejected"
  | Error e -> Alcotest.failf "unexpected: %a" Cloud.Customer.pp_error e

let test_periodic_rate_limit () =
  let cloud = make_cloud () in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info = launch_ok c ~image:"cirros" ~flavor:"small" ~properties:Property.all () in
  match
    Cloud.Customer.attest_periodic c ~vid:info.Commands.vid
      ~property:Property.Runtime_integrity ~freq:(Sim.Time.ms 10) ()
  with
  | Error (`Cloud "frequency too high") -> ()
  | Ok () -> Alcotest.fail "abusive frequency must be rejected"
  | Error e -> Alcotest.failf "unexpected: %a" Cloud.Customer.pp_error e

let test_capacity_exhaustion () =
  (* Tiny servers: the first large VM per server fits, the next run out. *)
  let config = { fast_config with mem_mb = 9000 } in
  let cloud = make_cloud ~config () in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  for _ = 1 to 3 do
    ignore (launch_ok c ~image:"cirros" ~flavor:"large" ~properties:[] ())
  done;
  match Cloud.Customer.launch c ~image:"cirros" ~flavor:"large" () with
  | Error (`Cloud "no qualified server") -> ()
  | Ok _ -> Alcotest.fail "fleet is full; launch must fail"
  | Error e -> Alcotest.failf "unexpected: %a" Cloud.Customer.pp_error e

let interpret_never_crashes =
  (* The interpreter is a total function over arbitrary measurement lists. *)
  let value_gen =
    let open QCheck.Gen in
    oneof
      [
        map (fun s -> Monitors.Measurement.Measured_platform s) string;
        map (fun s -> Monitors.Measurement.Measured_image s) string;
        map
          (fun a -> Monitors.Measurement.Measured_histogram (Array.map abs a))
          (array_size (int_range 0 30) nat);
        map
          (fun a -> Monitors.Measurement.Measured_miss_windows (Array.map abs a))
          (array_size (int_range 0 60) nat);
        map2
          (fun (vtime, steal) window ->
            Monitors.Measurement.Measured_cpu { vtime; steal; window; vcpus = 1 })
          (pair nat nat) nat;
        map2
          (fun kernel visible -> Monitors.Measurement.Measured_tasks { kernel; visible })
          (list_size (int_range 0 4) string)
          (list_size (int_range 0 4) string);
      ]
  in
  QCheck.Test.make ~name:"interpret is total" ~count:300
    (QCheck.make
       QCheck.Gen.(
         pair (oneofl Property.all) (list_size (int_range 0 4) value_gen)))
    (fun (property, values) ->
      let _status, _evidence =
        Interpret.interpret Interpret.default_refs ~image_name:(Some "ubuntu") property values
      in
      true)

let () =
  Alcotest.run "integration"
    [
      ( "launch",
        [
          Alcotest.test_case "unmonitored: 4 stages" `Quick test_launch_unmonitored;
          Alcotest.test_case "monitored: 5 stages" `Quick test_launch_monitored_five_stages;
          Alcotest.test_case "unknown image" `Quick test_launch_unknown_image;
          Alcotest.test_case "tampered image rejected" `Quick test_launch_tampered_image_rejected;
          Alcotest.test_case "corrupt platform avoided" `Quick test_corrupt_platform_avoided;
          Alcotest.test_case "no qualified server" `Quick test_no_qualified_server;
        ] );
      ( "attestation",
        [
          Alcotest.test_case "all properties healthy" `Quick test_attest_all_properties_healthy;
          Alcotest.test_case "cross-customer refused" `Quick
            test_attest_other_customers_vm_refused;
          Alcotest.test_case "unknown vm" `Quick test_attest_unknown_vm;
          Alcotest.test_case "AS history" `Quick test_as_history_recorded;
        ] );
      ( "batched-attestation",
        [
          Alcotest.test_case "batch end to end" `Quick test_batch_attest_end_to_end;
          Alcotest.test_case "batched = unbatched verdicts" `Quick
            test_attest_many_batched_matches_unbatched;
          Alcotest.test_case "attest_many default = attest loop" `Quick
            test_attest_many_unbatched_equals_attest_loop;
          Alcotest.test_case "unmeasurable vid refuses batch" `Quick
            test_batch_attest_unknown_vm_refused;
        ] );
      ( "detection-response",
        [
          Alcotest.test_case "malware -> terminate" `Quick test_malware_detected_and_terminated;
          Alcotest.test_case "availability attack -> migrate" `Quick
            test_availability_attack_migrates_victim;
          Alcotest.test_case "covert channel detected" `Quick test_covert_channel_detected;
          Alcotest.test_case "cache channel detected (full pipeline)" `Quick
            test_cache_channel_detected_full_pipeline;
          Alcotest.test_case "IMA catches what task-diff misses" `Quick
            test_ima_catches_what_task_diff_misses;
          Alcotest.test_case "suspend/resume" `Quick test_suspend_resume_response;
          Alcotest.test_case "periodic verified" `Quick test_periodic_reports_verified;
          Alcotest.test_case "random-interval periodic" `Quick test_random_interval_periodic;
          Alcotest.test_case "suspend-recheck resumes" `Quick
            test_suspend_recheck_resumes_after_cleanup;
          Alcotest.test_case "suspend-recheck terminates" `Quick
            test_suspend_recheck_terminates_if_never_clean;
          Alcotest.test_case "migration avoids corrupt destination" `Quick
            test_migration_avoids_corrupt_destination;
          Alcotest.test_case "terminate via API" `Quick test_terminate_via_api;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "tampering detected, never forged" `Quick
            test_network_tampering_detected_not_forged;
          Alcotest.test_case "report unforgeable field-by-field" `Quick
            test_report_unforgeable_field_by_field;
          Alcotest.test_case "insecure server cannot attest" `Quick
            test_insecure_server_cannot_attest;
          Alcotest.test_case "multiple attestation servers" `Quick
            test_multiple_attestation_servers;
          Alcotest.test_case "rogue attestation endpoint" `Quick
            test_rogue_attestation_endpoint;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "periodic double start" `Quick test_periodic_double_start_rejected;
          Alcotest.test_case "periodic rate limit" `Quick test_periodic_rate_limit;
          Alcotest.test_case "capacity exhaustion" `Quick test_capacity_exhaustion;
          QCheck_alcotest.to_alcotest interpret_never_crashes;
        ] );
    ]
