(** Deadline-aware epoch re-attestation scheduler (one instance per shard).

    Continuous monitoring turns the fleet driver's open-loop request
    stream into the paper's periodic/recheck mode: every tracked VM must
    hold an attestation verdict younger than a freshness [budget].  The
    scheduler ticks at a fixed [tick] period on every shard's own engine
    (at the same absolute simulated times fleet-wide), scans its entries
    in a deterministic order, and emits a {e probe} for each VM whose
    deadline falls within [lead] — unless a cached verdict is still
    inside the budget, in which case the probe is deduplicated and the
    deadline simply advances to when that verdict goes stale.

    The scheduler holds only per-shard state and consumes no prng: with
    the monitor off the driver is byte-identical to the unmonitored one,
    and with it on the run is byte-identical at any domain count (entries
    migrate between shards on the epoch-barrier {!Msg} path, exactly once
    per churn event).

    Storm scenarios model correlated incidents: a rack-wide compromise
    (every VM hosted on one cluster starts measuring Compromised until
    re-imaged — the time-to-detect SLO input), an image-CVE recheck
    forcing one property re-proven fleet-wide, and a mass-migration wave
    re-placing a slice of the fleet at once. *)

type storm =
  | Rack_compromise of { at : Sim.Time.t; cluster : int }
      (** From [at], every VM hosted on [cluster] measures Compromised. *)
  | Image_cve of { at : Sim.Time.t; property : Core.Property.t }
      (** At [at], invalidate [property] fleet-wide and force every VM to
          re-prove it as a recheck. *)
  | Migration_wave of { at : Sim.Time.t; count : int }
      (** At [at], migrate [count] VMs (spread over shards by their share
          of the fleet) through the normal churn machinery. *)

type config = {
  tick : Sim.Time.t;  (** scheduler period (the SLO sampling interval) *)
  budget : Sim.Time.t;  (** per-VM verdict freshness budget *)
  recheck_budget : Sim.Time.t;
      (** tighter deadline granted to forced rechecks (storms, migrations) *)
  lead : Sim.Time.t;
      (** schedule a probe this long before its deadline, so service time
          and queueing fit inside the budget; must cover at least one
          [tick] or every probe completes late *)
  property : Core.Property.t;  (** property the periodic probes re-prove *)
  storms : storm list;  (** processed in order at the first tick >= [at] *)
}

val default_config : config
(** 500 ms ticks, 5 s budget, 1 s recheck budget, 1.5 s lead,
    runtime-integrity probes, no storms. *)

type t

val create : config -> t
val config : t -> config

val add :
  t -> vid:string -> idx:int -> cls:Pqueue.priority -> deadline:Sim.Time.t -> bool
(** Track [vid] (global fleet index [idx], first deadline [deadline]).
    Returns [false] when [vid] was already tracked here (the existing
    entry is replaced) — a double-schedule the driver counts as a bug. *)

val remove : t -> vid:string -> bool
(** Stop tracking [vid]; [false] when it was not tracked here. *)

val size : t -> int
val vids : t -> string list
(** Tracked VMs, in unspecified order (for end-of-run uniqueness checks). *)

type probe = {
  vid : string;
  cls : Pqueue.priority;  (** Periodic normally, Recheck when forced *)
  prop : Core.Property.t;
  deadline : Sim.Time.t;  (** completing after this counts as a miss *)
  token : int;  (** pass back to {!complete}; stale tokens are ignored *)
}

type tick_result = {
  probes : probe list;  (** due entries to submit, in fleet-index order *)
  dedups : string list;  (** due entries answered from cache, same order *)
  fresh : int;  (** entries whose verdict is younger than the budget *)
  total : int;  (** entries tracked at this tick *)
}

val tick :
  t ->
  now:Sim.Time.t ->
  fresh_until:(vid:string -> prop:Core.Property.t -> Sim.Time.t option) ->
  tick_result
(** One scheduler tick.  [fresh_until] consults the shard's verdict cache:
    [Some t'] means a cached verdict for (vid, prop) stays inside the
    freshness budget until [t'] (> [now] dedups the probe and moves the
    deadline to [t']).  Entries already in flight are skipped — cluster
    coalescing handles collisions with arrival traffic, this handles
    collisions with the scheduler itself. *)

val complete : t -> probe -> now:Sim.Time.t -> served:bool -> unit
(** Report the cluster verdict for a probe.  [served = true] marks the
    entry fresh until [now + budget] and re-arms its periodic deadline;
    [served = false] (shed) leaves the deadline armed so the next tick
    retries.  A pending force (see {!force_all}) is applied either way.
    No-op when the entry was removed or replaced since the probe was
    emitted (the probe's token no longer matches). *)

val force_all :
  t -> now:Sim.Time.t -> cls:Pqueue.priority -> prop:Core.Property.t -> string list
(** Force every tracked VM to re-prove [prop] as class [cls] with deadline
    [now + recheck_budget]; in-flight entries pick the force up when their
    current probe completes.  Returns the affected vids in fleet-index
    order. *)

val due_storms : t -> now:Sim.Time.t -> (int * storm) list
(** Storms with [at <= now] not yet handed out, with their index in
    [config.storms]; each storm is returned exactly once. *)

val fresh_until_of_report : config -> Core.Report.t -> Sim.Time.t
(** [produced_at + budget]: when a cached verdict stops satisfying the
    freshness budget — the value [tick]'s [fresh_until] callback should
    derive from a cache hit. *)
