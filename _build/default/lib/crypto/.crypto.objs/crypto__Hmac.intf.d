lib/crypto/hmac.mli:
