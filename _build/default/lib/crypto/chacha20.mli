(** ChaCha20 stream cipher (RFC 8439), the symmetric cipher protecting
    secure-channel payloads ([Kx], [Ky], [Kz] in the attestation protocol). *)

val key_size : int (** 32 bytes *)

val nonce_size : int (** 12 bytes *)

val block : key:string -> nonce:string -> counter:int -> string
(** One 64-byte keystream block. *)

val xor : key:string -> nonce:string -> ?counter:int -> string -> string
(** Encrypt or decrypt (the operation is its own inverse). *)
