lib/core/cloud.mli: Attestation_server Commands Controller Format Hypervisor Interpret Net Privacy_ca Property Report Schedule Sim
