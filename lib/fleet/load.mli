(** Open-loop load generation: arrivals keep coming at the configured rate
    regardless of how the system keeps up, which is what exposes queueing
    and shedding behaviour. *)

val poisson :
  engine:Sim.Engine.t ->
  prng:Sim.Prng.t ->
  rate_per_s:float ->
  until:Sim.Time.t ->
  (unit -> unit) ->
  unit
(** [poisson ~engine ~prng ~rate_per_s ~until fire] schedules [fire] at
    Poisson arrival times (exponential inter-arrivals, mean [1/rate_per_s]
    seconds) from now until the simulated clock passes [until]. *)
