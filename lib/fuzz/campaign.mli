(** Campaign driver: generate, replay, cross-check and shrink.

    Each run [i] of a campaign:

    + generates [Gen.generate ~seed:(seed0 + i) ~ops];
    + replays it under every {!Oracle} invariant;
    + replays it a second time and compares trace digests (bit-for-bit
      determinism is itself an invariant — [determinism] oracle);
    + if the scenario toggled batching on, replays a fault-free twin and
      its unbatched counterpart and compares per-op verdict statuses
      ([batch-equivalence] oracle: batching may change cost, never
      verdicts);
    + on failure, delta-debugs the op list ({!Shrink.minimize}) down to a
      1-minimal counterexample and renders a one-line repro
      ([seed=N ops=...]) replayable with {!Replay.run} via
      {!Op.of_string}. *)

type failure = {
  scenario : Op.scenario;  (** as generated *)
  first : Oracle.violation;  (** first violation of the original replay *)
  shrunk : Op.scenario;  (** 1-minimal (within the shrink budget) *)
  repro : string;  (** one-line replayable form of [shrunk] *)
  shrink_replays : int;
}

type report = {
  seed0 : int;
  runs : int;
  ops_per_run : int;
  total_ops : int;
  total_vms : int;
  total_attests : int;
  failures : failure list;  (** at most one per failing run *)
  determinism_mismatches : int;
  batch_checked : int;  (** scenarios put through the batching twin check *)
  batch_mismatches : (int * string) list;  (** (seed, detail) *)
}

val campaign :
  ?bug:Replay.bug ->
  ?check_determinism:bool ->
  ?check_batch_equiv:bool ->
  ?shrink_budget:int ->
  seed0:int ->
  runs:int ->
  ops_per_run:int ->
  unit ->
  report

val clean : report -> bool
(** No failures, no determinism mismatches, no batching mismatches. *)

val pp_failure : Format.formatter -> failure -> unit
val pp_report : Format.formatter -> report -> unit
