type t = {
  vid : string;
  owner : string;
  image : Image.t;
  flavor : Flavor.t;
  programs : unit -> Program.t list;
  guest : Guest_os.t;
}

let idle_programs flavor () = List.init flavor.Flavor.vcpus (fun _ -> Program.idle)

let make ~vid ~owner ~image ~flavor ?programs () =
  let programs = match programs with Some p -> p | None -> idle_programs flavor in
  { vid; owner; image; flavor; programs; guest = Guest_os.create () }
