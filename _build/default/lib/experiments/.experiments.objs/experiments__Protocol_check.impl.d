lib/experiments/protocol_check.ml: Common Format List Printf Verifier
