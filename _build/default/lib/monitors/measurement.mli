(** Measurement requests and values.

    A {e request} is the "rM" of the attestation protocol — what the
    Attestation Server asks a cloud server's Monitor Module to collect.
    A {e value} is the "M" that comes back, which the Trust Module signs.
    Both have canonical byte encodings: the protocol quotes
    ([Q3 = H(Vid || rM || M || N3)]) hash exactly these bytes. *)

type request =
  | Platform_integrity  (** PCR composite of the measured boot chain *)
  | Vm_image_integrity  (** hash of the VM image recorded at launch *)
  | Task_list  (** VMI: raw kernel task list + guest-visible task list *)
  | Cpu_burst_histogram  (** the 30 Trust Evidence Register interval bins *)
  | Cpu_time of Sim.Time.t  (** VMM profile: CPU usage over this window *)
  | Cache_miss_pattern  (** per-window cache-miss counts since last collection *)
  | Ima_log  (** IMA-style measurement log: every loaded binary's hash *)

type value =
  | Measured_platform of string
  | Measured_image of string
  | Measured_tasks of { kernel : string list; visible : string list }
  | Measured_histogram of int array
  | Measured_cpu of {
      vtime : Sim.Time.t;  (** virtual run time over the window *)
      steal : Sim.Time.t;  (** runnable-but-not-running time over the window *)
      window : Sim.Time.t;
      vcpus : int;
    }
  | Measured_miss_windows of int array
      (** cache misses per accounting window over the detection period *)
  | Measured_ima of (string * string) list
      (** (program name, binary hash) for every process in the kernel *)

val request_to_string : request -> string
val pp_request : Format.formatter -> request -> unit
val pp_value : Format.formatter -> value -> unit

val encode_requests : request list -> string
val decode_requests : string -> request list option

val encode_values : value list -> string
val decode_values : string -> value list option
