(** Attestation verdict cache.

    Caches {e healthy} attestation reports per (VM, property) for a bounded
    TTL so that repeated attestations of an unchanged VM can be answered at
    the controller without a fresh measurement round trip (the "cached
    appraisal" of layered attestation systems; cf. Ozga et al.,
    arXiv:2304.00382).

    Semantics, deliberately conservative:

    - Only [Report.Healthy] verdicts are ever stored.  [Unknown] means the
      measurement path was unavailable and [Compromised] must always be
      re-observed, so neither is cacheable; observing one {e invalidates}
      any cached healthy verdict for that key.
    - Every VM lifecycle transition that can change what a measurement
      would observe (migrate, suspend, resume, terminate, image change)
      must call {!invalidate_vm}.  The controller does this.
    - A TTL of 0 disables the cache entirely: [find] misses without
      recording stats and [store] is a no-op. *)

type t

type stats = {
  hits : int;
  misses : int;
  stores : int;
  invalidations : int;  (** entries removed by explicit invalidation *)
}

val create : ?ttl:Sim.Time.t -> clock:(unit -> Sim.Time.t) -> unit -> t
(** [ttl] defaults to 0 (disabled). [clock] supplies the simulated time
    used for expiry. *)

val ttl : t -> Sim.Time.t
val set_ttl : t -> Sim.Time.t -> unit
(** Lowering the TTL does not eagerly drop entries; they expire on lookup. *)

val enabled : t -> bool

val find : t -> vid:string -> property:Property.t -> Report.t option
(** Fresh (unexpired) cached healthy report, or [None].  Expired entries
    are dropped on the way.  Counts a hit or miss when enabled. *)

val store : t -> Report.t -> bool
(** [store t report] caches [report] under its (vid, property) key if the
    cache is enabled and the report is healthy; returns whether it was
    stored. *)

val invalidate : t -> vid:string -> property:Property.t -> bool
val invalidate_vm : t -> vid:string -> int
(** Drop every property entry for [vid]; returns how many were dropped. *)

val clear : t -> unit
val size : t -> int
val stats : t -> stats
