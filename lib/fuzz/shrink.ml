let triggers ?(bug = Replay.No_bug) ?oracle scenario =
  match Replay.run ~bug scenario with
  | exception _ ->
      (* A crashing replay counts as the pseudo-oracle "exception", so a
         crash found by the campaign shrinks like any other failure. *)
      (match oracle with None | Some "exception" -> true | Some _ -> false)
  | out -> (
      match oracle with
      | None -> out.Replay.violations <> []
      | Some name ->
          List.exists (fun v -> v.Oracle.oracle = name) out.Replay.violations)

(* Split [lst] into [n] contiguous chunks of near-equal size. *)
let split_into n lst =
  let len = List.length lst in
  let base = len / n and rem = len mod n in
  let take k l =
    let rec go k l front =
      if k = 0 then (List.rev front, l)
      else
        match l with
        | [] -> (List.rev front, [])
        | x :: tl -> go (k - 1) tl (x :: front)
    in
    go k l []
  in
  let rec go i rest acc =
    if i = n then List.rev acc
    else
      let size = base + if i < rem then 1 else 0 in
      let chunk, rest = take size rest in
      go (i + 1) rest (chunk :: acc)
  in
  go 0 lst []

let minimize ?(bug = Replay.No_bug) ?oracle ?(max_replays = 500) scenario =
  let replays = ref 0 in
  let fails ops =
    if !replays >= max_replays then false
    else begin
      incr replays;
      triggers ~bug ?oracle { scenario with Op.ops }
    end
  in
  let rec ddmin ops n =
    let len = List.length ops in
    if len <= 1 || n > len || !replays >= max_replays then ops
    else begin
      let chunks = split_into n ops in
      match List.find_opt fails chunks with
      | Some chunk -> ddmin chunk 2
      | None -> (
          let complements =
            List.mapi
              (fun i _ ->
                List.concat (List.filteri (fun j _ -> j <> i) chunks))
              chunks
          in
          match List.find_opt fails complements with
          | Some rest -> ddmin rest (max (n - 1) 2)
          | None -> if n < len then ddmin ops (min len (2 * n)) else ops)
    end
  in
  if not (fails scenario.Op.ops) then (scenario, !replays)
  else
    let ops = ddmin scenario.Op.ops 2 in
    ({ scenario with Op.ops }, !replays)
