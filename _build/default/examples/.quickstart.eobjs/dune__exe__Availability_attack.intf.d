examples/availability_attack.mli:
