open Core

(* --- Detector sweep ------------------------------------------------------ *)

type detector_row = {
  long_burst_ms : float;
  separation : float;
  detected : bool;
  receiver_ber : float;
}

let channel_with_long_burst ~seed long_burst =
  let params =
    { Attacks.Covert_channel.default_params with Attacks.Covert_channel.long_burst }
  in
  let prng = Sim.Prng.create seed in
  let bits = Attacks.Covert_channel.random_bits prng 80 in
  let engine = Sim.Engine.create () in
  let sched = Hypervisor.Credit_scheduler.create ~engine ~pcpus:1 () in
  let sender = Hypervisor.Credit_scheduler.add_domain sched ~name:"s" ~weight:256 in
  let receiver = Hypervisor.Credit_scheduler.add_domain sched ~name:"r" ~weight:256 in
  ignore
    (Hypervisor.Credit_scheduler.add_vcpu sched sender ~pin:0
       (Attacks.Covert_channel.sender_program ~params ~bits ())
      : Hypervisor.Credit_scheduler.vcpu);
  let rp, stamps = Attacks.Covert_channel.receiver_program ~params () in
  ignore (Hypervisor.Credit_scheduler.add_vcpu sched receiver ~pin:0 rp
           : Hypervisor.Credit_scheduler.vcpu);
  Sim.Engine.run_until engine (Sim.Time.sec 10);
  let received = Attacks.Covert_channel.decode ~params (stamps ()) in
  let ber = Attacks.Covert_channel.bit_error_rate ~sent:bits ~received in
  let counts = Hypervisor.Credit_scheduler.burst_counts sender in
  let status, _ = Interpret.histogram_verdict Interpret.default_refs counts in
  let dist = Sim.Stats.Histogram.distribution (Sim.Stats.Histogram.of_counts ~width:1.0 counts) in
  let values = Array.init (Array.length counts) (fun i -> float_of_int i +. 0.5) in
  let separation =
    match Sim.Stats.Two_means.cluster ~values ~mass:dist with
    | Some r -> r.Sim.Stats.Two_means.separation
    | None -> 0.0
  in
  {
    long_burst_ms = Sim.Time.to_ms long_burst;
    separation;
    detected = (match status with Report.Compromised _ -> true | _ -> false);
    receiver_ber = ber;
  }

let detector_sweep ?(seed = 42) () =
  List.map
    (fun ms -> channel_with_long_burst ~seed (Sim.Time.ms ms))
    [ 25; 20; 15; 12; 10; 8; 7; 6 ]

(* --- Benign false positives ----------------------------------------------- *)

type benign_row = { label : string; detected : bool; evidence : string }

let benign_case ~label programs =
  let engine = Sim.Engine.create () in
  let sched = Hypervisor.Credit_scheduler.create ~engine ~pcpus:1 () in
  let d = Hypervisor.Credit_scheduler.add_domain sched ~name:"benign" ~weight:256 in
  List.iter
    (fun p -> ignore (Hypervisor.Credit_scheduler.add_vcpu sched d ~pin:0 p
                       : Hypervisor.Credit_scheduler.vcpu))
    programs;
  (* A contending neighbour so slices get cut. *)
  let other = Hypervisor.Credit_scheduler.add_domain sched ~name:"other" ~weight:256 in
  ignore (Hypervisor.Credit_scheduler.add_vcpu sched other ~pin:0 (Hypervisor.Program.busy_loop ())
           : Hypervisor.Credit_scheduler.vcpu);
  Sim.Engine.run_until engine (Sim.Time.sec 10);
  let counts = Hypervisor.Credit_scheduler.burst_counts d in
  let status, evidence = Interpret.histogram_verdict Interpret.default_refs counts in
  { label; detected = (match status with Report.Compromised _ -> true | _ -> false); evidence }

let benign_false_positives ?seed:_ () =
  [
    benign_case ~label:"steady CPU-bound" [ Hypervisor.Program.busy_loop () ];
    benign_case ~label:"steady 20% duty cycle"
      [ Hypervisor.Program.duty_cycle ~run:(Sim.Time.ms 4) ~idle:(Sim.Time.ms 16) ];
    benign_case ~label:"two-phase 5ms/20ms worker"
      [
        (let phase = ref 0 in
         Hypervisor.Program.make (fun ~now:_ ->
             incr phase;
             if !phase mod 4 = 0 then Hypervisor.Program.Sleep (Sim.Time.ms 10)
             else if !phase mod 2 = 0 then Hypervisor.Program.Compute (Sim.Time.ms 20)
             else Hypervisor.Program.Compute (Sim.Time.ms 5)));
      ];
  ]

(* --- Scheduler tick ablation ------------------------------------------------ *)

type tick_row = { tick_ms : float; slowdown : float }

let attack_slowdown ~tick =
  let config = { Hypervisor.Credit_scheduler.default_config with tick } in
  let run attacker =
    let engine = Sim.Engine.create () in
    let sched = Hypervisor.Credit_scheduler.create ~config ~engine ~pcpus:2 () in
    let victim = Hypervisor.Credit_scheduler.add_domain sched ~name:"v" ~weight:256 in
    let finish = ref 0 in
    ignore
      (Hypervisor.Credit_scheduler.add_vcpu sched victim ~pin:0
         (Hypervisor.Program.compute_total ~total:(Sim.Time.sec 1)
            ~on_done:(fun t -> finish := t)
            ())
        : Hypervisor.Credit_scheduler.vcpu);
    if attacker then begin
      let att = Hypervisor.Credit_scheduler.add_domain sched ~name:"a" ~weight:256 in
      ignore
        (Hypervisor.Credit_scheduler.add_vcpu sched att ~pin:0
           (Attacks.Availability.main_program ~tick ())
          : Hypervisor.Credit_scheduler.vcpu);
      ignore
        (Hypervisor.Credit_scheduler.add_vcpu sched att ~pin:1
           (Attacks.Availability.helper_program ~tick ())
          : Hypervisor.Credit_scheduler.vcpu)
    end;
    Sim.Engine.run_until engine (Sim.Time.sec 120);
    if !finish = 0 then Sim.Time.sec 120 else !finish
  in
  let solo = run false in
  let attacked = run true in
  { tick_ms = Sim.Time.to_ms tick; slowdown = float_of_int attacked /. float_of_int solo }

let tick_sweep ?seed:_ () =
  List.map (fun ms -> attack_slowdown ~tick:(Sim.Time.ms ms)) [ 10; 5; 2; 1 ]

(* --- Detection latency ------------------------------------------------------- *)

type latency_row = { schedule : string; mean_detect_ms : float }

let one_trial ~seed ~schedule ~infect_after =
  let cloud = Cloud.build ~config:(Common.fast_config ~seed) () in
  let controller = Cloud.controller cloud in
  let customer = Cloud.Customer.create cloud ~name:"alice" in
  match
    Cloud.Customer.launch customer ~image:"cirros" ~flavor:"small"
      ~properties:[ Property.Runtime_integrity ] ()
  with
  | Error _ -> None
  | Ok info -> (
      let vid = info.Commands.vid in
      (match
         Cloud.Customer.attest_periodic_scheduled customer ~vid
           ~property:Property.Runtime_integrity ~schedule ()
       with
      | Ok () -> ()
      | Error _ -> ());
      Cloud.run_for cloud infect_after;
      let host = Option.get (Controller.vm_host controller ~vid) in
      let server = Option.get (Cloud.find_server cloud host) in
      let inst = Option.get (Hypervisor.Server.find server vid) in
      let infected_at = Cloud.now cloud in
      ignore (Attacks.Malware.infect_hidden inst.Hypervisor.Server.vm ()
               : Hypervisor.Guest_os.process);
      Cloud.run_for cloud (Sim.Time.minutes 3);
      match Controller.responses controller with
      | r :: _ -> Some (Sim.Time.to_ms (r.Controller.at - infected_at))
      | [] -> None)

let detection_latency ?(seed = 42) ?(trials = 5) () =
  let schedules =
    [
      ("every 60s", Schedule.fixed (Sim.Time.minutes 1));
      ("every 10s", Schedule.fixed (Sim.Time.sec 10));
      ("every 5s", Schedule.fixed (Sim.Time.sec 5));
      ("random 5-15s", Schedule.random ~min:(Sim.Time.sec 5) ~max:(Sim.Time.sec 15));
    ]
  in
  List.map
    (fun (label, schedule) ->
      let latencies =
        List.filter_map
          (fun i ->
            one_trial ~seed:(seed + i) ~schedule
              ~infect_after:(Sim.Time.ms (1700 * (i + 1))))
          (List.init trials Fun.id)
      in
      let mean =
        match latencies with
        | [] -> nan
        | _ -> List.fold_left ( +. ) 0.0 latencies /. float_of_int (List.length latencies)
      in
      { schedule = label; mean_detect_ms = mean })
    schedules

(* --- Printing -------------------------------------------------------------------- *)

let print_detector rows =
  Common.section "Ablation: covert-channel detector vs signalling separation";
  Printf.printf "%-14s %12s %10s %14s\n" "long burst" "separation" "detected" "channel BER";
  List.iter
    (fun r ->
      Printf.printf "%11.0f ms %12.2f %10s %14.3f\n" r.long_burst_ms r.separation
        (if r.detected then "yes" else "NO")
        r.receiver_ber)
    rows

let print_benign rows =
  Common.section "Ablation: detector false positives on benign workloads";
  List.iter
    (fun r ->
      Printf.printf "%-28s %-14s %s\n" r.label
        (if r.detected then "FALSE POSITIVE" else "clean")
        r.evidence)
    rows

let print_ticks rows =
  Common.section "Ablation: availability attack vs scheduler debit tick";
  Printf.printf "%-10s %10s\n" "tick" "slowdown";
  List.iter (fun r -> Printf.printf "%7.0f ms %9.2fx\n" r.tick_ms r.slowdown) rows

let print_latency rows =
  Common.section "Ablation: detection latency vs attestation schedule";
  Printf.printf "%-16s %20s\n" "schedule" "mean time-to-respond";
  List.iter
    (fun r -> Printf.printf "%-16s %17.0f ms\n" r.schedule r.mean_detect_ms)
    rows
