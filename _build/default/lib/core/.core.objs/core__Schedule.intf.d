lib/core/schedule.mli: Crypto Format Sim Wire
