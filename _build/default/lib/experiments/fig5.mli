(** Figure 5: measurements of covert-channel vulnerabilities.

    The full monitoring pipeline: a covert-channel sender VM and a benign
    CPU-bound VM run in a CloudMonatt cloud; the customer attests the
    [Covert_channel_free] property of both.  The Trust Evidence Register
    histograms show the paper's two shapes — bimodal peaks at the two
    signalling durations for the covert VM, a single ~30 ms peak for the
    benign VM — and the Property Interpretation Module flags only the
    covert one. *)

type vm_result = {
  label : string;
  distribution : float array;  (** 30 bins of 1 ms, normalised *)
  status : Core.Report.status;
  evidence : string;
}

type result = { covert : vm_result; benign : vm_result }

val run : ?seed:int -> unit -> result
val print : result -> unit
