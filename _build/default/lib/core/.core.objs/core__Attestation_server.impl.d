lib/core/attestation_server.ml: Attestation_client Costs Crypto Format Hashtbl Interpret Ledger List Monitors Net Option Privacy_ca Property Protocol Report Result Sim Wire
