lib/net/ca.mli: Crypto Wire
