lib/hypervisor/vm.mli: Flavor Guest_os Image Program
