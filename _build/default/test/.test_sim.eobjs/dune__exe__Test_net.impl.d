test/test_net.ml: Alcotest Attacks Lazy List Net QCheck QCheck_alcotest String Wire
