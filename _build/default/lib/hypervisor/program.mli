(** Virtual-CPU behaviour programs.

    A program is a generator of actions: each time a vCPU finishes its
    current action the scheduler asks the program for the next one, passing
    the current simulated time so programs can self-instrument (measure
    their own progress, as the covert-channel receiver does). *)

type action =
  | Compute of Sim.Time.t  (** burn CPU for the duration (may be preempted) *)
  | Sleep of Sim.Time.t  (** block voluntarily; wake after the duration *)
  | Ipi of int  (** send an inter-processor interrupt to the sibling vCPU
                    with this index in the same domain; takes no time *)
  | Halt  (** terminate the vCPU *)

type t

val make : (now:Sim.Time.t -> action) -> t

val next : t -> now:Sim.Time.t -> action
(** Called by the scheduler; not idempotent. *)

val of_actions : ?repeat:bool -> action list -> t
(** Play a fixed script, optionally looping.  An empty list halts. *)

val idle : t
(** Halt immediately. *)

val busy_loop : unit -> t
(** Compute forever (in 10 ms requests, so preemption statistics look like
    a real CPU-bound task). *)

val compute_total : ?chunk:Sim.Time.t -> total:Sim.Time.t -> on_done:(Sim.Time.t -> unit) -> unit -> t
(** Run [total] of pure compute split into [chunk]s, call [on_done] with the
    completion time, then halt.  Models a batch job such as a SPEC run. *)

val duty_cycle : run:Sim.Time.t -> idle:Sim.Time.t -> t
(** Loop: compute [run], sleep [idle].  Models IO-bound services. *)
