(** One Attestation-Server shard: a bounded priority request queue feeding
    [capacity] concurrent measurement slots, with in-flight coalescing.

    Coalescing: concurrent requests for the same (VM, property) — queued or
    already being measured — attach to the pending measurement instead of
    consuming queue space or another service slot; when the measurement
    completes, every attached requester receives the same verdict.

    Backpressure: admission follows {!Pqueue} semantics — a full queue sheds
    the lowest-priority queued work first, and rejects the arrival itself
    only when everything queued is at least as important.  Shed requests
    complete immediately with {!verdict} [Shed]. *)

type verdict =
  | Done of Core.Report.status  (** measurement completed with this status *)
  | Shed  (** dropped by admission control before being measured *)

type t

val create :
  engine:Sim.Engine.t ->
  name:string ->
  ?capacity:int ->
  queue_depth:int ->
  service_time:(unit -> Sim.Time.t) ->
  measure:(vid:string -> property:Core.Property.t -> Core.Report.status) ->
  metrics:Metrics.t ->
  unit ->
  t
(** [capacity] (default 1) is the number of concurrent measurement rounds
    the AS sustains; [service_time] samples the simulated duration of one
    round; [measure] produces the verdict when a round completes.
    Coalescing, measurement and shed counts are recorded into [metrics]. *)

val name : t -> string

val submit :
  t ->
  vid:string ->
  property:Core.Property.t ->
  priority:Pqueue.priority ->
  on_done:(verdict -> unit) ->
  unit
(** [on_done] fires exactly once: immediately (same engine step) for shed
    requests, at measurement completion otherwise. *)

val queue_length : t -> int
val inflight : t -> int
(** Pending distinct (VM, property) measurements: queued + in service. *)

val queue_gauge : t -> Sim.Stats.Gauge.t
(** Time-weighted queue-depth tracking (timestamps in simulated seconds). *)
