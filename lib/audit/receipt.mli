(** Inclusion receipts: what a verdict consumer gets back with each reply.

    A receipt binds one log entry (the serialized signed AS report) to a
    signed tree head: [proof] walks from the entry at [index] up to
    [sth.root].  Accepting a verdict only with a valid receipt means the
    verdict is on the public record — the AS cannot later deny having
    issued it without forking its log, which gossiping auditors detect. *)

type t = {
  index : int;  (** position of the entry in the log *)
  sth : Sth.t;  (** tree head the proof verifies against *)
  proof : Crypto.Merkle.proof;  (** inclusion path, entry -> [sth.root] *)
}

val verify : key:Crypto.Rsa.public -> entry:string -> t -> bool
(** [verify ~key ~entry r] checks the STH signature under the log
    operator's key and the inclusion of [entry] under [r.sth.root]. *)

val encode : Wire.Codec.Enc.t -> t -> unit
val decode : Wire.Codec.Dec.t -> t
