(** Scenario algebra for the deterministic fuzzer.

    A scenario is a seed plus a list of abstract operations over a cloud:
    lifecycle transitions, attestations, configuration toggles, fault
    adversaries and attack injection.  Operations reference VMs by {e launch
    slot} (the index of the [Launch] that created them, modulo the number of
    VMs launched so far) and images/properties by index into fixed pools, so
    a scenario stays replayable after the shrinker removes operations.

    Every scenario has an exact one-line textual form ([to_string] /
    [of_string] round-trip), so a failing run prints a repro line that can be
    pasted into a pinned regression test. *)

type fault =
  | Drop_nth of int  (** drop every n-th wire message *)
  | Garble_nth of int  (** flip a byte of every n-th message *)
  | Lossy of int * int  (** (drop %, garble %) per message, PRNG-driven *)
  | Blackout  (** total partition *)

type op =
  | Launch of { image : int; monitored : bool; workload : int }
      (** boot a VM from image pool slot [image]; monitored VMs request
          security properties and go through startup attestation *)
  | Terminate of int  (** VM slot *)
  | Suspend of int
  | Resume of int
  | Migrate of int
  | Attest of int * int  (** (VM slot, property index) *)
  | Attest_many of (int * int) list
      (** one [Controller.attest_many] call over (VM slot, property) pairs *)
  | Set_cache_ttl of int  (** verdict-cache TTL in ms; 0 disables *)
  | Set_batching of bool
  | Enable_audit  (** one-way: transparency log + receipt verification on *)
  | Set_fault of fault
  | Clear_fault
  | Advance of int  (** run the engine forward by this many ms *)
  | Infect of int  (** hide malware in the VM at this slot *)
  | Corrupt_image of int  (** tamper the stored image at this pool index *)
  | Vtpm_cycle of int
      (** save then restore the vTPM state of this slot's host — what a
          migration or suspend-to-disk carries; the state is stale until a
          [Vtpm_rebind] *)
  | Vtpm_clone of int * int
      (** restore the vTPM state saved from [src]'s host into [dst]'s host
          (rollback/clone attack; a backend-mismatched restore fails) *)
  | Vtpm_rebind of int  (** re-register this slot's host vTPM with the Privacy CA *)
  | Protocol_term of Copland.Phrase.t
      (** run a protocol phrase through the Controller interpreter; an
          ill-typed phrase (e.g. a delegation that no longer matches the
          live placement) replays as a rejected no-op *)
  | Monitor_enable of int
      (** arm continuous monitoring: every monitored, running VM is
          re-attested (Runtime_integrity) whenever its last probe is older
          than this period in ms; 0 disarms.  Probing also happens {e
          inside} [Advance] ops, in period-sized chunks, so long quiet
          stretches stay covered *)
  | Monitor_period of int
      (** change the re-attestation period of an armed monitor (ms > 0;
          a no-op while disarmed) *)
  | Monitor_storm of int
      (** correlated incident: hide malware in every VM co-hosted with
          this slot's VM — an armed monitor must surface a Compromised
          verdict within one period of any cached verdicts expiring *)

type scenario = { seed : int; ops : op list }

val images : string array
(** The image pool scenario ops index into. *)

val workloads : string array
(** The workload pool ([""] means idle). *)

val properties : Core.Property.t array
(** The property pool, [Core.Property.all] in order. *)

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> scenario -> unit

val op_to_string : op -> string
val op_of_string : string -> op option

val to_string : scenario -> string
(** One line: [seed=<n> ops=<op>;<op>;...]. *)

val of_string : string -> scenario option
(** Parses exactly the [to_string] form; [None] on any malformed input. *)

val equal_op : op -> op -> bool
