(* The BACKEND signature: one interface over the three trust-module
   families (classic hardware TPM, migratable ephemeral vTPM, CVM
   hardware-report device), plus an existential pack so a cloud server can
   hold "some backend" without committing the rest of the system to a
   concrete one.  Classic_tpm is Trust_module verbatim — every byte it
   puts on the wire is identical to the pre-backend tree. *)

type kind = Classic | Evtpm | Cvm_report

let all_kinds = [ Classic; Evtpm; Cvm_report ]

let kind_to_string = function
  | Classic -> "classic"
  | Evtpm -> "evtpm"
  | Cvm_report -> "cvm"

let kind_of_string = function
  | "classic" -> Some Classic
  | "evtpm" -> Some Evtpm
  | "cvm" -> Some Cvm_report
  | _ -> None

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

module type S = sig
  type t

  val kind : kind

  (* Identity and randomness. *)
  val identity_public : t -> Crypto.Rsa.public
  val pcrs : t -> Pcr.t
  val random_nonce : t -> string
  val drbg : t -> Crypto.Drbg.t

  (* Trust Evidence Registers. *)
  val num_registers : t -> int
  val read_registers : t -> int array
  val write_register : t -> int -> int -> unit
  val add_register : t -> int -> int -> unit
  val clear_registers : t -> unit

  (* Per-attestation sessions and quotes. *)
  val begin_session : t -> Trust_module.session
  val sign_with_session : t -> Trust_module.session -> string -> string option
  val end_session : t -> Trust_module.session -> unit
  val quote_batch : t -> Trust_module.session -> root:string -> nonce:string -> string option

  (* Identity-key operations (channel auth). *)
  val sign_identity : t -> string -> string
  val decrypt_identity : t -> string -> string option

  (* State mobility and binding.  Backends whose state cannot leave the
     device return [Error] from save/restore and keep the epoch at 0. *)
  val binding_epoch : t -> int
  val stale : t -> bool
  val save_state : t -> (string, string) result
  val restore_state : t -> string -> (unit, string) result
  val rebind : t -> int
end

module Classic_tpm : S with type t = Trust_module.t = struct
  include Trust_module

  let kind = Classic
  let binding_epoch _ = 0
  let stale _ = false
  let save_state _ = Error "classic TPM state is sealed inside the device"
  let restore_state _ _ = Error "classic TPM state is sealed inside the device"
  let rebind _ = 0
end

module Evtpm_backend : S with type t = Evtpm.t = struct
  include Evtpm

  let kind = Evtpm
end

module Cvm_backend : S with type t = Cvm_device.t = struct
  include Cvm_device

  let kind = Cvm_report
  let binding_epoch _ = 0
  let stale _ = false
  let save_state _ = Error "cvm platform state is fused into the hardware"
  let restore_state _ _ = Error "cvm platform state is fused into the hardware"
  let rebind _ = 0
end

(* The existential pack is what the rest of the system holds; the concrete
   [device] witness travels alongside so the few places that genuinely
   need one family (tests poking a classic module, the vTPM lifecycle
   helpers) can downcast without unsafe tricks. *)
type pack = Pack : (module S with type t = 'a) * 'a -> pack

type device =
  | Classic_dev of Trust_module.t
  | Evtpm_dev of Evtpm.t
  | Cvm_dev of Cvm_device.t

type t = { pack : pack; device : device }

let classic tm = { pack = Pack ((module Classic_tpm), tm); device = Classic_dev tm }
let evtpm e = { pack = Pack ((module Evtpm_backend), e); device = Evtpm_dev e }
let cvm c = { pack = Pack ((module Cvm_backend), c); device = Cvm_dev c }

let device t = t.device
let as_classic t = match t.device with Classic_dev d -> Some d | _ -> None
let as_evtpm t = match t.device with Evtpm_dev d -> Some d | _ -> None
let as_cvm t = match t.device with Cvm_dev d -> Some d | _ -> None

let kind { pack = Pack ((module B), _); _ } = B.kind
let identity_public { pack = Pack ((module B), d); _ } = B.identity_public d
let pcrs { pack = Pack ((module B), d); _ } = B.pcrs d
let random_nonce { pack = Pack ((module B), d); _ } = B.random_nonce d
let drbg { pack = Pack ((module B), d); _ } = B.drbg d
let num_registers { pack = Pack ((module B), d); _ } = B.num_registers d
let read_registers { pack = Pack ((module B), d); _ } = B.read_registers d
let write_register { pack = Pack ((module B), d); _ } i v = B.write_register d i v
let add_register { pack = Pack ((module B), d); _ } i v = B.add_register d i v
let clear_registers { pack = Pack ((module B), d); _ } = B.clear_registers d
let begin_session { pack = Pack ((module B), d); _ } = B.begin_session d
let sign_with_session { pack = Pack ((module B), d); _ } s p = B.sign_with_session d s p
let end_session { pack = Pack ((module B), d); _ } s = B.end_session d s

let quote_batch { pack = Pack ((module B), d); _ } s ~root ~nonce =
  B.quote_batch d s ~root ~nonce

let sign_identity { pack = Pack ((module B), d); _ } m = B.sign_identity d m
let decrypt_identity { pack = Pack ((module B), d); _ } c = B.decrypt_identity d c
let binding_epoch { pack = Pack ((module B), d); _ } = B.binding_epoch d
let stale { pack = Pack ((module B), d); _ } = B.stale d
let save_state { pack = Pack ((module B), d); _ } = B.save_state d
let restore_state { pack = Pack ((module B), d); _ } blob = B.restore_state d blob
let rebind { pack = Pack ((module B), d); _ } = B.rebind d
