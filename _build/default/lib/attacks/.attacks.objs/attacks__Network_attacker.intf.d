lib/attacks/network_attacker.mli: Net
