test/test_tpm.ml: Alcotest Array Crypto Lazy QCheck QCheck_alcotest String Tpm
