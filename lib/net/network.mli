(** Simulated network with a Dolev-Yao adversary position.

    Nodes register request handlers under string addresses; [call] performs
    a synchronous request/response exchange and returns both the reply and
    the simulated wire latency of the exchange (two legs of base latency +
    jitter + payload/bandwidth).

    The adversary sits on the wire: it sees every message (eavesdrop log)
    and may pass, rewrite or drop each one.  Because payloads are the real
    serialized bytes of the protocol, tampering is only detected if the
    protocol's cryptography detects it. *)

type t

type address = string

type direction = Request | Reply

type message = {
  seq : int;  (** global message counter *)
  src : address;
  dst : address;
  dir : direction;
  payload : string;
}

type action = Pass | Replace of string | Drop

type adversary = message -> action

type error = [ `Dropped | `No_such_host of address ]

type retry_policy = {
  max_attempts : int;  (** total attempts, including the first (>= 1) *)
  base_delay : Sim.Time.t;  (** wait before the second attempt *)
  backoff : float;  (** multiplier applied to the wait after each failure *)
  max_delay : Sim.Time.t;  (** cap on any single wait *)
  deadline : Sim.Time.t option;
      (** total simulated-time budget for one exchange, waits included; a
          retry that would overrun it is not attempted *)
}

val default_retry_policy : retry_policy
(** 4 attempts, 2 ms initial backoff doubling to a 50 ms cap, 2 s deadline. *)

val create :
  ?base_latency_us:int ->
  ?jitter_us:int ->
  ?bandwidth_mbps:float ->
  seed:int ->
  unit ->
  t
(** Defaults model the paper's testbed LAN: 200 us base latency, 50 us
    jitter, 1000 Mbps. *)

val register : t -> address -> (string -> string) -> unit
(** Install the request handler for an address (replacing any previous). *)

val unregister : t -> address -> unit

val call : t -> src:address -> dst:address -> string -> (string, error) result * Sim.Time.t
(** Send a request and wait for the reply.  The returned duration covers
    both wire legs (not handler compute time, which the caller accounts). *)

val call_with_retry :
  ?policy:retry_policy ->
  t ->
  src:address ->
  dst:address ->
  string ->
  (string, error) result * Sim.Time.t
(** [call] hardened against message loss: a [`Dropped] exchange is retried
    with exponential backoff until it succeeds, [policy.max_attempts] is
    reached or the next wait would overrun [policy.deadline].  The returned
    duration is the whole exchange — every wire leg attempted plus every
    backoff wait — so callers charge the true cost of an adversarial
    network to their ledgers.  [`No_such_host] is permanent and never
    retried.  [policy] defaults to the network's own (see
    {!set_retry_policy}). *)

val set_retry_policy : t -> retry_policy -> unit
(** Replace the network-wide default policy used by {!call_with_retry}. *)

val retry_policy : t -> retry_policy

val transfer_time : t -> bytes:int -> Sim.Time.t
(** Wire time for a bulk transfer of [bytes] (used for VM migration). *)

val set_adversary : t -> adversary -> unit
val clear_adversary : t -> unit

val recorded : t -> message list
(** Every message the adversary position has observed, oldest first. *)

val message_count : t -> int

val bytes_sent : t -> int
(** Bytes that crossed the wire: delivered length for passed or rewritten
    messages, original length for dropped ones (the sender's leg was paid). *)

val drop_count : t -> int
(** Messages the adversary dropped. *)

val retry_count : t -> int
(** Re-send attempts performed by {!call_with_retry} so far. *)
