lib/hypervisor/server.mli: Cache Credit_scheduler Sim Tpm Vm
