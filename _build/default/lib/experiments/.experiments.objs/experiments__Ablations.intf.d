lib/experiments/ablations.mli:
