(** Delta-debugging minimisation of failing scenarios.

    [minimize] runs classic ddmin over the op list: try each chunk alone,
    then each complement, doubling granularity until single-op removal is
    exhausted, so the result is 1-minimal — removing any single remaining
    op makes the failure disappear (unless the replay budget ran out
    first, in which case the smallest scenario found so far is returned).

    The predicate is "replay still violates the {e same} oracle", so
    shrinking cannot wander from, say, a cache-consistency failure to an
    unrelated signature failure. *)

val triggers : ?bug:Replay.bug -> ?oracle:string -> Op.scenario -> bool
(** Does replaying the scenario violate [oracle] (any oracle if omitted)? *)

val minimize :
  ?bug:Replay.bug ->
  ?oracle:string ->
  ?max_replays:int ->
  Op.scenario ->
  Op.scenario * int
(** [minimize scenario] returns the shrunk scenario and the number of
    replays spent.  [max_replays] defaults to 500.  If the input does not
    fail at all, it is returned unchanged (0 extra shrink work). *)
