lib/workloads/cloud_bench.ml: Hypervisor List Sim String
