lib/monitors/measurement.mli: Format Sim
