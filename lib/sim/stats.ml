module Histogram = struct
  type t = { width : float; counts : int array; mutable total : int }

  let create ~bins ~width =
    if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
    if width <= 0.0 then invalid_arg "Histogram.create: width must be positive";
    { width; counts = Array.make bins 0; total = 0 }

  let bin_of t x =
    (* Bin i covers (i*width, (i+1)*width]: a burst of exactly 4.0ms with
       1ms bins lands in bin 3, matching the paper's (4,5] example for 4.6. *)
    let i = int_of_float (ceil (x /. t.width)) - 1 in
    let i = if i < 0 then 0 else i in
    if i >= Array.length t.counts then Array.length t.counts - 1 else i

  let add t x =
    t.counts.(bin_of t x) <- t.counts.(bin_of t x) + 1;
    t.total <- t.total + 1

  let count t i = t.counts.(i)
  let counts t = Array.copy t.counts
  let total t = t.total
  let bins t = Array.length t.counts
  let width t = t.width

  let distribution t =
    let n = Array.length t.counts in
    if t.total = 0 then Array.make n 0.0
    else Array.map (fun c -> float_of_int c /. float_of_int t.total) t.counts

  let of_counts ~width counts =
    let t = create ~bins:(Array.length counts) ~width in
    Array.iteri (fun i c -> t.counts.(i) <- c) counts;
    t.total <- Array.fold_left ( + ) 0 counts;
    t

  let merge a b =
    if a.width <> b.width || Array.length a.counts <> Array.length b.counts then
      invalid_arg "Histogram.merge: incompatible shapes";
    of_counts ~width:a.width (Array.mapi (fun i c -> c + b.counts.(i)) a.counts)

  let clear t =
    Array.fill t.counts 0 (Array.length t.counts) 0;
    t.total <- 0
end

module Summary = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  (* Welford's online algorithm. *)
  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let n t = t.n
  let mean t = t.mean
  let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
  let min t = t.min
  let max t = t.max
end

module Series = struct
  type t = {
    mutable data : float array;
    mutable len : int;
    mutable sorted : bool;
    mutable sum : float;
  }

  let create () = { data = Array.make 64 0.0; len = 0; sorted = true; sum = 0.0 }

  let add t x =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) 0.0 in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1;
    t.sorted <- false;
    t.sum <- t.sum +. x

  let n t = t.len
  let mean t = if t.len = 0 then 0.0 else t.sum /. float_of_int t.len

  let ensure_sorted t =
    if not t.sorted then begin
      let a = Array.sub t.data 0 t.len in
      Array.sort compare a;
      Array.blit a 0 t.data 0 t.len;
      t.sorted <- true
    end

  (* Nearest-rank, matching [percentile] below. *)
  let percentile t p =
    if t.len = 0 then nan
    else begin
      ensure_sorted t;
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.len)) in
      let rank = if rank < 1 then 1 else if rank > t.len then t.len else rank in
      t.data.(rank - 1)
    end

  let min t =
    if t.len = 0 then nan
    else begin
      ensure_sorted t;
      t.data.(0)
    end

  let max t =
    if t.len = 0 then nan
    else begin
      ensure_sorted t;
      t.data.(t.len - 1)
    end

  let clear t =
    t.len <- 0;
    t.sorted <- true;
    t.sum <- 0.0
end

module Reservoir = struct
  type t = {
    cap : int;
    prng : Prng.t;
    mutable data : float array;
    mutable len : int;  (* retained samples *)
    mutable count : int;  (* total observations *)
    mutable sum : float;
    mutable lo : float;
    mutable hi : float;
    mutable sorted : bool;
  }

  let create ?(cap = 8192) ~seed () =
    if cap <= 0 then invalid_arg "Reservoir.create: cap must be positive";
    {
      cap;
      prng = Prng.create seed;
      data = [||];
      len = 0;
      count = 0;
      sum = 0.0;
      lo = infinity;
      hi = neg_infinity;
      sorted = true;
    }

  let ensure_room t =
    let room = Array.length t.data in
    if t.len = room then begin
      let bigger = Array.make (Stdlib.min t.cap (Stdlib.max 64 (2 * room))) 0.0 in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end

  (* Algorithm R: while under [cap] keep everything (the sample is exact);
     past it, each new observation replaces a random slot with probability
     cap/count.  The prng is the reservoir's own, so sampling draws never
     perturb any simulation stream. *)
  let add t x =
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    if x < t.lo then t.lo <- x;
    if x > t.hi then t.hi <- x;
    if t.len < t.cap then begin
      ensure_room t;
      t.data.(t.len) <- x;
      t.len <- t.len + 1;
      t.sorted <- false
    end
    else begin
      let j = Prng.int t.prng t.count in
      if j < t.cap then begin
        t.data.(j) <- x;
        t.sorted <- false
      end
    end

  let n t = t.count
  let retained t = t.len
  let cap t = t.cap
  let exact t = t.count = t.len
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
  let min t = if t.count = 0 then nan else t.lo
  let max t = if t.count = 0 then nan else t.hi

  let ensure_sorted t =
    if not t.sorted then begin
      let a = Array.sub t.data 0 t.len in
      Array.sort compare a;
      Array.blit a 0 t.data 0 t.len;
      t.sorted <- true
    end

  (* Nearest-rank over the retained sample; exact whenever count <= cap. *)
  let percentile t p =
    if t.len = 0 then nan
    else begin
      ensure_sorted t;
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.len)) in
      let rank = if rank < 1 then 1 else if rank > t.len then t.len else rank in
      t.data.(rank - 1)
    end

  (* Fold [b] into [a].  Totals (count, sum, min, max) merge exactly; the
     retained sample is the concatenation when it fits, otherwise a weighted
     without-replacement subsample where each retained item of a reservoir
     stands for count/len originals.  All randomness comes from [a]'s own
     prng, so a fixed merge order gives a fixed result — the property the
     sharded fleet driver's domains=1 vs domains=N byte-identity rests on. *)
  let merge_into a b =
    let total = a.count + b.count in
    a.sum <- a.sum +. b.sum;
    if b.lo < a.lo then a.lo <- b.lo;
    if b.hi > a.hi then a.hi <- b.hi;
    if b.len = 0 then a.count <- total
    else if a.len + b.len <= a.cap then begin
      for i = 0 to b.len - 1 do
        ensure_room a;
        a.data.(a.len) <- b.data.(i);
        a.len <- a.len + 1
      done;
      a.sorted <- false;
      a.count <- total
    end
    else begin
      let wa = float_of_int a.count /. float_of_int a.len
      and wb = float_of_int b.count /. float_of_int b.len in
      let da = Array.sub a.data 0 a.len and db = Array.sub b.data 0 b.len in
      let na = ref a.len and nb = ref b.len in
      let out = Array.make a.cap 0.0 in
      for k = 0 to a.cap - 1 do
        let ta = wa *. float_of_int !na and tb = wb *. float_of_int !nb in
        let from_a = !nb = 0 || (!na > 0 && Prng.float a.prng (ta +. tb) < ta) in
        if from_a then begin
          let i = Prng.int a.prng !na in
          out.(k) <- da.(i);
          da.(i) <- da.(!na - 1);
          decr na
        end
        else begin
          let i = Prng.int a.prng !nb in
          out.(k) <- db.(i);
          db.(i) <- db.(!nb - 1);
          decr nb
        end
      done;
      a.data <- out;
      a.len <- a.cap;
      a.sorted <- false;
      a.count <- total
    end
end

module Gauge = struct
  type t = {
    mutable level : int;
    mutable peak : int;
    mutable last : float;
    mutable area : float;  (* integral of level over time *)
    mutable started : bool;
  }

  let create () = { level = 0; peak = 0; last = 0.0; area = 0.0; started = false }

  let set t ~now v =
    if t.started then t.area <- t.area +. (float_of_int t.level *. (now -. t.last))
    else t.started <- true;
    t.last <- now;
    t.level <- v;
    if v > t.peak then t.peak <- v

  let level t = t.level
  let peak t = t.peak

  let time_weighted_mean t ~now =
    if not t.started || now <= 0.0 then 0.0
    else (t.area +. (float_of_int t.level *. (now -. t.last))) /. now
end

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile xs p =
  match xs with
  | [] -> nan
  | _ ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      let rank = if rank < 1 then 1 else if rank > n then n else rank in
      a.(rank - 1)

module Fraction_series = struct
  type t = {
    mutable num : int array;
    mutable den : int array;
    mutable len : int;
  }

  let create () = { num = [||]; den = [||]; len = 0 }

  let ensure_room t =
    let room = Array.length t.num in
    if t.len = room then begin
      let bigger = Stdlib.max 16 (2 * room) in
      let num = Array.make bigger 0 and den = Array.make bigger 0 in
      Array.blit t.num 0 num 0 t.len;
      Array.blit t.den 0 den 0 t.len;
      t.num <- num;
      t.den <- den
    end

  let record t ~num ~den =
    if num < 0 || den < 0 || num > den then
      invalid_arg "Fraction_series.record: need 0 <= num <= den";
    ensure_room t;
    t.num.(t.len) <- num;
    t.den.(t.len) <- den;
    t.len <- t.len + 1

  let length t = t.len
  let numerator t i = t.num.(i)
  let denominator t i = t.den.(i)

  let fraction t i =
    if t.den.(i) = 0 then nan
    else float_of_int t.num.(i) /. float_of_int t.den.(i)

  (* Index-aligned: tick k of [b] folds into tick k of [a].  [a] grows when
     [b] has seen more ticks, so merging per-shard series whose clocks tick
     at the same absolute times yields the fleet-wide fraction per tick. *)
  let merge_into a b =
    for i = 0 to b.len - 1 do
      if i < a.len then begin
        a.num.(i) <- a.num.(i) + b.num.(i);
        a.den.(i) <- a.den.(i) + b.den.(i)
      end
      else record a ~num:b.num.(i) ~den:b.den.(i)
    done

  (* Summaries skip empty ticks (den = 0): a shard with no tracked VMs
     still ticks, and an all-empty series has no defined fraction. *)
  let fold f init t =
    let acc = ref init in
    for i = 0 to t.len - 1 do
      if t.den.(i) > 0 then acc := f !acc (fraction t i)
    done;
    !acc

  let min_fraction t =
    match fold (fun a x -> if x < a then x else a) infinity t with
    | x when x = infinity -> nan
    | x -> x

  let mean_fraction t =
    let n = fold (fun a _ -> a + 1) 0 t in
    if n = 0 then nan else fold ( +. ) 0.0 t /. float_of_int n

  let final_fraction t =
    let rec last i = if i < 0 then nan else if t.den.(i) > 0 then fraction t i else last (i - 1) in
    last (t.len - 1)
end

module Two_means = struct
  type result = {
    centers : float * float;
    weights : float * float;
    separation : float;
  }

  let cluster ~values ~mass =
    let n = Array.length values in
    if n = 0 || n <> Array.length mass then None
    else begin
      let total = Array.fold_left ( +. ) 0.0 mass in
      if total <= 0.0 then None
      else begin
        let lo = values.(0) and hi = values.(n - 1) in
        (* Initialise the centers at the extreme values that actually carry
           mass; seeding from empty bins strands one cluster on an outlier
           and merges genuinely separate peaks. *)
        let first_mass = ref lo and last_mass = ref hi in
        (try
           for i = 0 to n - 1 do
             if mass.(i) > 0.0 then begin
               first_mass := values.(i);
               raise Exit
             end
           done
         with Exit -> ());
        (try
           for i = n - 1 downto 0 do
             if mass.(i) > 0.0 then begin
               last_mass := values.(i);
               raise Exit
             end
           done
         with Exit -> ());
        let c1 = ref !first_mass and c2 = ref !last_mass in
        for _iter = 1 to 32 do
          let s1 = ref 0.0 and w1 = ref 0.0 and s2 = ref 0.0 and w2 = ref 0.0 in
          for i = 0 to n - 1 do
            if mass.(i) > 0.0 then begin
              let v = values.(i) in
              if abs_float (v -. !c1) <= abs_float (v -. !c2) then begin
                s1 := !s1 +. (v *. mass.(i));
                w1 := !w1 +. mass.(i)
              end
              else begin
                s2 := !s2 +. (v *. mass.(i));
                w2 := !w2 +. mass.(i)
              end
            end
          done;
          if !w1 > 0.0 then c1 := !s1 /. !w1;
          if !w2 > 0.0 then c2 := !s2 /. !w2
        done;
        let w1 = ref 0.0 and w2 = ref 0.0 in
        for i = 0 to n - 1 do
          if abs_float (values.(i) -. !c1) <= abs_float (values.(i) -. !c2) then
            w1 := !w1 +. mass.(i)
          else w2 := !w2 +. mass.(i)
        done;
        let range = if hi > lo then hi -. lo else 1.0 in
        let lo_c = Float.min !c1 !c2 and hi_c = Float.max !c1 !c2 in
        let lo_w, hi_w = if !c1 <= !c2 then (!w1, !w2) else (!w2, !w1) in
        Some
          {
            centers = (lo_c, hi_c);
            weights = (lo_w /. total, hi_w /. total);
            separation = (hi_c -. lo_c) /. range;
          }
      end
    end

  let bimodal ?(min_separation = 0.25) ?(min_weight = 0.10) r =
    let w1, w2 = r.weights in
    r.separation >= min_separation && w1 >= min_weight && w2 >= min_weight
end
