(* Tests for the workload models. *)

open Workloads

let test_bench_catalog () =
  Alcotest.(check int) "six benchmarks" 6 (List.length Cloud_bench.all);
  Alcotest.(check bool) "lookup" true (Cloud_bench.of_name "database" = Some Cloud_bench.database);
  Alcotest.(check bool) "unknown" true (Cloud_bench.of_name "nosql" = None)

let test_bench_cpu_bound_split () =
  let cpu = List.filter (fun b -> b.Cloud_bench.cpu_bound) Cloud_bench.all in
  let io = List.filter (fun b -> not b.Cloud_bench.cpu_bound) Cloud_bench.all in
  Alcotest.(check (list string)) "cpu-bound: database/web/app"
    [ "database"; "web"; "app" ]
    (List.map (fun b -> b.Cloud_bench.name) cpu);
  Alcotest.(check (list string)) "io-bound: file/stream/mail"
    [ "file"; "stream"; "mail" ]
    (List.map (fun b -> b.Cloud_bench.name) io)

let test_bench_duty () =
  List.iter
    (fun b ->
      let d = Cloud_bench.duty b in
      Alcotest.(check bool) (b.Cloud_bench.name ^ " duty in (0,1)") true (d > 0.0 && d < 1.0);
      if b.Cloud_bench.cpu_bound then
        Alcotest.(check bool) (b.Cloud_bench.name ^ " demands most of the CPU") true (d > 0.9)
      else Alcotest.(check bool) (b.Cloud_bench.name ^ " mostly idle") true (d < 0.3))
    Cloud_bench.all

let test_bench_duty_realised () =
  (* Run each benchmark alone: the realised CPU share matches its duty. *)
  List.iter
    (fun b ->
      let engine = Sim.Engine.create () in
      let sched = Hypervisor.Credit_scheduler.create ~engine ~pcpus:1 () in
      let d = Hypervisor.Credit_scheduler.add_domain sched ~name:b.Cloud_bench.name ~weight:256 in
      List.iter
        (fun p -> ignore (Hypervisor.Credit_scheduler.add_vcpu sched d ~pin:0 p))
        (Cloud_bench.programs b ~vcpus:1 ());
      Sim.Engine.run_until engine (Sim.Time.sec 10);
      let share =
        Sim.Time.to_sec (Hypervisor.Credit_scheduler.domain_runtime sched d) /. 10.0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s realises duty %.2f (got %.2f)" b.Cloud_bench.name
           (Cloud_bench.duty b) share)
        true
        (abs_float (share -. Cloud_bench.duty b) < 0.05))
    Cloud_bench.all

let test_bench_vm () =
  let vm = Cloud_bench.vm ~vid:"v" ~owner:"o" Cloud_bench.web in
  Alcotest.(check int) "programs per vcpu" vm.Hypervisor.Vm.flavor.Hypervisor.Flavor.vcpus
    (List.length (vm.Hypervisor.Vm.programs ()))

let test_spec_catalog () =
  Alcotest.(check (list string)) "three victims" [ "bzip2"; "hmmer"; "astar" ]
    (List.map (fun s -> s.Spec.name) Spec.all)

let test_spec_completes_solo () =
  List.iter
    (fun spec ->
      let engine = Sim.Engine.create () in
      let sched = Hypervisor.Credit_scheduler.create ~engine ~pcpus:1 () in
      let d = Hypervisor.Credit_scheduler.add_domain sched ~name:spec.Spec.name ~weight:256 in
      let finish = ref 0 in
      ignore
        (Hypervisor.Credit_scheduler.add_vcpu sched d ~pin:0
           (Spec.program spec ~on_done:(fun t -> finish := t) ()));
      Sim.Engine.run_until engine (Sim.Time.sec 30);
      Alcotest.(check int)
        (spec.Spec.name ^ " completes in exactly its work time")
        spec.Spec.work !finish)
    Spec.all

let test_spec_vm () =
  let finish = ref 0 in
  let vm = Spec.vm ~vid:"v" ~owner:"o" Spec.bzip2 ~on_done:(fun t -> finish := t) in
  Alcotest.(check int) "single vcpu" 1 (List.length (vm.Hypervisor.Vm.programs ()))

let () =
  Alcotest.run "workloads"
    [
      ( "cloud-bench",
        [
          Alcotest.test_case "catalog" `Quick test_bench_catalog;
          Alcotest.test_case "cpu/io split" `Quick test_bench_cpu_bound_split;
          Alcotest.test_case "duty bounds" `Quick test_bench_duty;
          Alcotest.test_case "duty realised" `Quick test_bench_duty_realised;
          Alcotest.test_case "vm construction" `Quick test_bench_vm;
        ] );
      ( "spec",
        [
          Alcotest.test_case "catalog" `Quick test_spec_catalog;
          Alcotest.test_case "completes solo" `Quick test_spec_completes_solo;
          Alcotest.test_case "vm construction" `Quick test_spec_vm;
        ] );
    ]
