(** Figure 9: performance of VM launching.

    Launches each image (cirros, fedora, ubuntu) in each flavor (small,
    medium, large) with security properties requested, and reports the
    five stage times — OpenStack's scheduling / networking / block-device
    mapping / spawning plus CloudMonatt's attestation stage.  Paper shape:
    attestation adds roughly 20% to the launch time. *)

type row = {
  image : string;
  flavor : string;
  stages : (string * float) list;  (** stage -> milliseconds *)
  total_ms : float;
  attestation_pct : float;
}

type result = row list

val run : ?seed:int -> unit -> result
val print : result -> unit

val to_json : seed:int -> result -> Json.t
(** Machine-readable form for the [--json] bench output. *)
