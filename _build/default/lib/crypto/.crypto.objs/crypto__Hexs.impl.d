lib/crypto/hexs.ml: Bytes Char Format String
