(** Per-phrase Dolev-Yao verification.

    Generates the symbolic protocol model from a phrase — two sessions
    over long-lived channel keys, per-leaf session keys and nonces, plus
    the attacker knowledge each weakened operator grants — and replays the
    same eight checks as {!Verifier.Properties} (the paper's six section
    7.2.2 properties) over it.  Every violation comes with a concrete
    attack: the forged or replayed message and its derivation. *)

type attack = {
  check_id : string;
  description : string;
  message : Verifier.Term.t;  (** the accepting forged/replayed term *)
  proof : Verifier.Deduction.proof;  (** how the attacker assembles it *)
}

type report = {
  phrase : Phrase.t;
  checks : Verifier.Properties.check list;  (** in {!Verifier.Properties.check_ids} order *)
  attacks : attack list;
}

val verify : Phrase.t -> report
(** Pure and deterministic; needs no cloud (the model is the phrase). *)

val holds : report -> bool
(** All eight checks hold. *)

val violated : report -> string list
(** Ids of the violated checks, in report order. *)

val pp_attack : Format.formatter -> attack -> unit
