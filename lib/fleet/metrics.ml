type t = {
  mutable offered : int;
  mutable served : int;
  mutable cache_hits : int;
  mutable coalesced : int;
  mutable measurements : int;
  mutable unhealthy : int;
  sheds : int array;  (* by Pqueue.rank *)
  latency : Sim.Stats.Reservoir.t;
  mutable batches : int;
  batch_sizes : Sim.Stats.Reservoir.t;
  (* Transparency-log activity (audit-enabled runs only; all zero when the
     audit layer is off). *)
  mutable audit_appends : int;
  mutable audit_checkpoints : int;
  mutable audit_proofs : int;
  mutable audit_equivocations : int;
  (* Continuous-monitoring scheduler activity (monitor-enabled runs only;
     all zero when the monitor is off). *)
  mon_scheduled : int array;  (* probes submitted, by Pqueue.rank *)
  mon_served : int array;  (* probes completed by their deadline *)
  mon_missed : int array;  (* probes completed after their deadline *)
  mon_shed : int array;  (* probes shed by cluster admission *)
  mutable mon_dedups : int;
  mutable mon_ticks : int;
  mon_fresh : Sim.Stats.Fraction_series.t;
}

let create ?cap ?(seed = 0) () =
  {
    offered = 0;
    served = 0;
    cache_hits = 0;
    coalesced = 0;
    measurements = 0;
    unhealthy = 0;
    sheds = Array.make 3 0;
    latency = Sim.Stats.Reservoir.create ?cap ~seed:(seed lxor 0x6c617465) ();
    batches = 0;
    batch_sizes = Sim.Stats.Reservoir.create ?cap ~seed:(seed lxor 0x62617463) ();
    audit_appends = 0;
    audit_checkpoints = 0;
    audit_proofs = 0;
    audit_equivocations = 0;
    mon_scheduled = Array.make 3 0;
    mon_served = Array.make 3 0;
    mon_missed = Array.make 3 0;
    mon_shed = Array.make 3 0;
    mon_dedups = 0;
    mon_ticks = 0;
    mon_fresh = Sim.Stats.Fraction_series.create ();
  }

let record_offered t = t.offered <- t.offered + 1

let record_served t ~latency_ms =
  t.served <- t.served + 1;
  Sim.Stats.Reservoir.add t.latency latency_ms

let record_cache_hit t = t.cache_hits <- t.cache_hits + 1
let record_coalesced t = t.coalesced <- t.coalesced + 1
let record_measurement t = t.measurements <- t.measurements + 1
let record_shed t p = t.sheds.(Pqueue.rank p) <- t.sheds.(Pqueue.rank p) + 1
let record_unhealthy t = t.unhealthy <- t.unhealthy + 1

let record_batch t ~size =
  t.batches <- t.batches + 1;
  Sim.Stats.Reservoir.add t.batch_sizes (float_of_int size)

let record_audit_append t = t.audit_appends <- t.audit_appends + 1
let record_audit_checkpoint t = t.audit_checkpoints <- t.audit_checkpoints + 1
let record_audit_proof t = t.audit_proofs <- t.audit_proofs + 1

let record_audit_equivocations t n =
  t.audit_equivocations <- t.audit_equivocations + max 0 n

let record_mon_scheduled t p = t.mon_scheduled.(Pqueue.rank p) <- t.mon_scheduled.(Pqueue.rank p) + 1
let record_mon_served t p = t.mon_served.(Pqueue.rank p) <- t.mon_served.(Pqueue.rank p) + 1
let record_mon_missed t p = t.mon_missed.(Pqueue.rank p) <- t.mon_missed.(Pqueue.rank p) + 1
let record_mon_shed t p = t.mon_shed.(Pqueue.rank p) <- t.mon_shed.(Pqueue.rank p) + 1
let record_mon_dedup t = t.mon_dedups <- t.mon_dedups + 1

let record_mon_tick t ~fresh ~total =
  t.mon_ticks <- t.mon_ticks + 1;
  Sim.Stats.Fraction_series.record t.mon_fresh ~num:fresh ~den:total

let merge_into acc t =
  acc.offered <- acc.offered + t.offered;
  acc.served <- acc.served + t.served;
  acc.cache_hits <- acc.cache_hits + t.cache_hits;
  acc.coalesced <- acc.coalesced + t.coalesced;
  acc.measurements <- acc.measurements + t.measurements;
  acc.unhealthy <- acc.unhealthy + t.unhealthy;
  Array.iteri (fun i n -> acc.sheds.(i) <- acc.sheds.(i) + n) t.sheds;
  Sim.Stats.Reservoir.merge_into acc.latency t.latency;
  acc.batches <- acc.batches + t.batches;
  Sim.Stats.Reservoir.merge_into acc.batch_sizes t.batch_sizes;
  acc.audit_appends <- acc.audit_appends + t.audit_appends;
  acc.audit_checkpoints <- acc.audit_checkpoints + t.audit_checkpoints;
  acc.audit_proofs <- acc.audit_proofs + t.audit_proofs;
  acc.audit_equivocations <- acc.audit_equivocations + t.audit_equivocations;
  Array.iteri (fun i n -> acc.mon_scheduled.(i) <- acc.mon_scheduled.(i) + n) t.mon_scheduled;
  Array.iteri (fun i n -> acc.mon_served.(i) <- acc.mon_served.(i) + n) t.mon_served;
  Array.iteri (fun i n -> acc.mon_missed.(i) <- acc.mon_missed.(i) + n) t.mon_missed;
  Array.iteri (fun i n -> acc.mon_shed.(i) <- acc.mon_shed.(i) + n) t.mon_shed;
  acc.mon_dedups <- acc.mon_dedups + t.mon_dedups;
  (* Monitor ticks fire at the same absolute times on every shard, so the
     per-shard fresh series are index-aligned and max-length merges keep
     the tick count (not the sum). *)
  acc.mon_ticks <- max acc.mon_ticks t.mon_ticks;
  Sim.Stats.Fraction_series.merge_into acc.mon_fresh t.mon_fresh

let offered t = t.offered
let served t = t.served
let cache_hits t = t.cache_hits
let coalesced t = t.coalesced
let measurements t = t.measurements
let unhealthy t = t.unhealthy
let shed t p = t.sheds.(Pqueue.rank p)
let shed_total t = Array.fold_left ( + ) 0 t.sheds

let cache_hit_rate t =
  if t.served = 0 then 0.0 else float_of_int t.cache_hits /. float_of_int t.served

let latency t = t.latency
let batches t = t.batches
let batch_sizes t = t.batch_sizes

let mean_batch_size t =
  if t.batches = 0 then 0.0 else Sim.Stats.Reservoir.mean t.batch_sizes

let audit_appends t = t.audit_appends
let audit_checkpoints t = t.audit_checkpoints
let audit_proofs t = t.audit_proofs
let audit_equivocations t = t.audit_equivocations
let mon_scheduled t p = t.mon_scheduled.(Pqueue.rank p)
let mon_served t p = t.mon_served.(Pqueue.rank p)
let mon_missed t p = t.mon_missed.(Pqueue.rank p)
let mon_shed t p = t.mon_shed.(Pqueue.rank p)
let mon_scheduled_total t = Array.fold_left ( + ) 0 t.mon_scheduled
let mon_served_total t = Array.fold_left ( + ) 0 t.mon_served
let mon_missed_total t = Array.fold_left ( + ) 0 t.mon_missed
let mon_shed_total t = Array.fold_left ( + ) 0 t.mon_shed
let mon_dedups t = t.mon_dedups
let mon_ticks t = t.mon_ticks
let mon_fresh t = t.mon_fresh
