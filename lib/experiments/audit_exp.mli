(** Verdict-transparency experiment: audit overhead versus an audit-off
    baseline across checkpoint interval, offered rate and shard count,
    plus split-view detection latency under a forking log operator. *)

type row = {
  interval : Sim.Time.t;  (** checkpoint (STH) interval *)
  rate : float;
  as_count : int;
  base : Fleet.Driver.result;  (** audit off, otherwise identical config *)
  audited : Fleet.Driver.result;
}

type detection = {
  det_interval : Sim.Time.t;
  forked_at : Sim.Time.t;  (** when the operator's histories diverged *)
  detected_at : Sim.Time.t option;  (** first auditor evidence, if any *)
  evidence_kind : string;
}

type result = { seed : int; scale : string; rows : row list; detections : detection list }

val detection_run : seed:int -> interval:Sim.Time.t -> detection
(** One adversarial scenario: a {!Audit.View.fork} planted mid-interval
    under two gossiping auditors checkpointing every [interval]. *)

val run : ?seed:int -> ?scale:[ `Default | `Smoke ] -> unit -> result
(** [scale] defaults to [`Smoke] when [CLOUDMONATT_FLEET_SCALE=smoke],
    [`Default] otherwise. *)

val print : result -> unit
val to_json : result -> Json.t
