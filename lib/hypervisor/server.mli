(** A cloud server: pCPUs under the credit scheduler, RAM, a software
    platform (hypervisor + host OS, measured at boot), and — on secure
    servers — the Trust Module of Figure 2.

    The server is the {e attester}: the Monitor Module (in [lib/monitors])
    reads its scheduler statistics, guest kernels and platform measurements,
    and its Trust Module signs them. *)

type platform = { hypervisor_build : string; host_os_build : string }

val pristine_platform : platform
val corrupted_platform : platform
(** A platform whose hypervisor binary was tampered with in storage. *)

val golden_platform_measurement : string
(** PCR composite a pristine boot produces; the appraiser's reference. *)

type instance = {
  vm : Vm.t;
  domain : Credit_scheduler.domain;
  image_hash_at_launch : string;
  mutable suspended : bool;
}

type t

val create :
  engine:Sim.Engine.t ->
  name:string ->
  ?pcpus:int ->
  ?mem_mb:int ->
  ?platform:platform ->
  ?secure:bool ->
  ?capabilities:string list ->
  ?key_bits:int ->
  ?backend:Tpm.Backend.kind ->
  ?platform_root:Tpm.Platform_root.t ->
  seed:string ->
  unit ->
  t
(** Defaults: 4 pCPUs, 32 GB, pristine platform, [backend = Classic].
    When [secure] (default true) the server gets a trust backend of the
    chosen kind and boots measured: the platform software is
    hash-extended into PCRs 0 and 1.  A [Cvm_report] backend needs the
    hardware vendor's [platform_root] to endorse its fused platform key
    ([Invalid_argument] otherwise). *)

val name : t -> string
val engine : t -> Sim.Engine.t
val scheduler : t -> Credit_scheduler.t

val cache : t -> Cache.t
(** The server's shared last-level cache (co-resident VMs contend in it). *)

val trust_backend : t -> Tpm.Backend.t option
(** The server's trust backend, whatever its kind; [None] on insecure
    servers. *)

val backend_kind : t -> Tpm.Backend.kind option

val trust_module : t -> Tpm.Trust_module.t option
(** The concrete classic Trust Module — [None] on insecure servers {e and}
    on servers running a non-classic backend.  Prefer {!trust_backend}. *)

val is_secure : t -> bool
val capabilities : t -> string list
val platform : t -> platform
val pcpus : t -> int
val mem_total_mb : t -> int
val mem_free_mb : t -> int

(** {2 VM management} *)

val launch :
  t -> ?pin:int -> ?pins:int option list -> Vm.t -> (instance, [ `Insufficient_memory ]) result
(** Create the domain and vCPUs; records the image hash at launch time for
    startup-integrity attestation.  [pin] pins every vCPU to one pCPU;
    [pins] gives per-vCPU placements and overrides [pin] where set. *)

val find : t -> string -> instance option
val instances : t -> instance list

val suspend : t -> string -> bool
val resume : t -> string -> bool

val destroy : t -> string -> bool
(** Remove the VM and free its memory. *)

val detach : t -> string -> instance option
(** Like {!destroy} but returns the instance (for migration: the VM record
    and guest state move to the target server). *)
