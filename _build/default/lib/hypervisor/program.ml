type action = Compute of Sim.Time.t | Sleep of Sim.Time.t | Ipi of int | Halt

type t = { next : now:Sim.Time.t -> action }

let make next = { next }
let next t ~now = t.next ~now

let of_actions ?(repeat = false) actions =
  match actions with
  | [] -> make (fun ~now:_ -> Halt)
  | _ ->
      let remaining = ref actions in
      make (fun ~now:_ ->
          match !remaining with
          | a :: rest ->
              remaining := (if rest = [] && repeat then actions else rest);
              a
          | [] -> Halt)

let idle = make (fun ~now:_ -> Halt)

let busy_loop () = make (fun ~now:_ -> Compute (Sim.Time.ms 10))

let compute_total ?(chunk = Sim.Time.ms 1) ~total ~on_done () =
  let left = ref total in
  make (fun ~now ->
      if !left <= 0 then begin
        on_done now;
        Halt
      end
      else begin
        let step = min chunk !left in
        left := !left - step;
        Compute step
      end)

let duty_cycle ~run ~idle =
  let phase = ref `Run in
  make (fun ~now:_ ->
      match !phase with
      | `Run ->
          phase := `Idle;
          Compute run
      | `Idle ->
          phase := `Run;
          Sleep idle)
