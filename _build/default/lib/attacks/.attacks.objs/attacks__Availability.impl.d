lib/attacks/availability.ml: Hypervisor Sim
