(** Minimal JSON emitter (no external dependencies) for machine-readable
    benchmark results. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Serialize; [indent] > 0 pretty-prints (default 2).  Non-finite floats
    serialize as [null], keeping the output strictly standard JSON. *)

val write_file : string -> t -> unit
(** Write [to_string] plus a trailing newline.  Raises [Sys_error] when the
    file cannot be created (e.g. missing parent directory). *)

val write_file_result : string -> t -> (unit, string) result
(** Like {!write_file} but returns the [Sys_error] message instead of
    raising, so CLIs can fail with a clean one-line error. *)
