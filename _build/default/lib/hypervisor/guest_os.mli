(** Guest operating-system model.

    Holds the kernel task list of a VM.  A rootkit can mark processes as
    hidden: the in-guest [ps] view filters them out, while the raw kernel
    memory (what a hypervisor-level VM-introspection tool reads) still
    contains them.  The difference is exactly what the Runtime Integrity
    property of paper section 4.3 detects. *)

type process = {
  pid : int;
  name : string;
  hidden : bool;
  binary_hash : string;  (** hash of the executable, as an IMA-style
                             measurement agent would record at exec time *)
}

val pristine_hash : string -> string
(** The hash of the stock binary with this name (what an appraiser's
    whitelist stores). *)

type t

val create : ?init:string list -> unit -> t
(** [init] names the initial (visible) system processes. *)

val spawn : t -> ?hidden:bool -> ?binary:string -> string -> process
(** [binary] overrides the executable content (a trojaned binary hashes
    differently from the pristine one). *)

val kill : t -> int -> bool

val hide : t -> int -> bool
(** Rootkit action: make an existing process invisible to the guest. *)

val visible_tasks : t -> string list
(** What a query from inside the (possibly compromised) guest returns. *)

val kernel_tasks : t -> string list
(** What introspection of raw kernel memory returns: every process. *)

val processes : t -> process list

val ima_log : t -> (string * string) list
(** IMA-style measurement log: (name, binary hash) for every process in
    the kernel, pid order — hidden ones included, since the measurement
    happens at exec time, below the rootkit's filtering. *)

val snapshot : t -> t
(** Deep copy, used by VM suspension and migration. *)
