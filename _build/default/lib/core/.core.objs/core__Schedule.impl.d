lib/core/schedule.ml: Crypto Format Sim Wire
