open Core

type vm_result = {
  label : string;
  distribution : float array;
  status : Report.status;
  evidence : string;
}

type result = { covert : vm_result; benign : vm_result }

let run ?(seed = 42) () =
  let cloud = Cloud.build ~config:(Common.two_pcpu_config ~seed) () in
  let controller = Cloud.controller cloud in
  let prng = Sim.Prng.create (seed + 1) in
  let bits = Attacks.Covert_channel.random_bits prng 200 in
  (* Register the scenario workloads. *)
  Controller.register_workload controller "covert-sender" (fun _flavor () ->
      [ Attacks.Covert_channel.sender_program ~bits () ]);
  Controller.register_workload controller "covert-receiver" (fun _flavor () ->
      [ fst (Attacks.Covert_channel.receiver_program ()) ]);
  let launch ~owner ~workload ~host_pin =
    match
      Controller.launch controller
        {
          owner;
          image = "ubuntu";
          flavor = "small";
          properties = [ Property.Covert_channel_free ];
          workload;
          pins = host_pin;
        }
    with
    | Ok info -> info.Commands.vid
    | Error _ -> failwith "fig5: launch failed"
  in
  (* The property filter spreads VMs over servers by free memory; we pin the
     colluding pair together by launching them back to back (same host has
     most free memory twice in a row only if we bias), so instead place
     explicitly via pCPU pins and per-server memory: sender+receiver land on
     the emptiest server, the benign pair on the next. *)
  let sender_vid = launch ~owner:"mallory" ~workload:"covert-sender" ~host_pin:[ Some 0 ] in
  let sender_host = Option.get (Controller.vm_host controller ~vid:sender_vid) in
  (* Fill co-resident receiver on the same host: temporarily the scheduler
     picks by free memory, so the sender's host no longer has the most; we
     bypass the weigher by launching directly on the hypervisor. *)
  let server = Option.get (Cloud.find_server cloud sender_host) in
  let receiver_vm =
    Hypervisor.Vm.make ~vid:"recv-1" ~owner:"mallory" ~image:Hypervisor.Image.ubuntu
      ~flavor:Hypervisor.Flavor.small
      ~programs:(fun () -> [ fst (Attacks.Covert_channel.receiver_program ()) ])
      ()
  in
  (match Hypervisor.Server.launch server ~pin:0 receiver_vm with
  | Ok _ -> ()
  | Error `Insufficient_memory -> failwith "fig5: receiver launch failed");
  (* Benign contender pair on a different server. *)
  Controller.register_workload controller "busy1" (fun _flavor () ->
      [ Hypervisor.Program.busy_loop () ]);
  let benign_vid = launch ~owner:"bob" ~workload:"busy1" ~host_pin:[ Some 0 ] in
  let benign_host = Option.get (Controller.vm_host controller ~vid:benign_vid) in
  let benign_server = Option.get (Cloud.find_server cloud benign_host) in
  let contender =
    Hypervisor.Vm.make ~vid:"contender-1" ~owner:"bob" ~image:Hypervisor.Image.ubuntu
      ~flavor:Hypervisor.Flavor.small
      ~programs:(fun () -> [ Hypervisor.Program.busy_loop () ])
      ()
  in
  (match Hypervisor.Server.launch benign_server ~pin:0 contender with
  | Ok _ -> ()
  | Error `Insufficient_memory -> failwith "fig5: contender launch failed");
  (* Let the channel transmit and the benign pair contend. *)
  Cloud.run_for cloud (Sim.Time.sec 15);
  let attest_of owner vid label =
    let customer = Cloud.Customer.create cloud ~name:owner in
    let server_of () =
      let host = Option.get (Controller.vm_host controller ~vid) in
      Option.get (Cloud.find_server cloud host)
    in
    let inst = Option.get (Hypervisor.Server.find (server_of ()) vid) in
    let counts = Hypervisor.Credit_scheduler.burst_counts inst.Hypervisor.Server.domain in
    let hist = Sim.Stats.Histogram.of_counts ~width:1.0 counts in
    match Cloud.Customer.attest customer ~vid ~property:Property.Covert_channel_free with
    | Ok report ->
        {
          label;
          distribution = Sim.Stats.Histogram.distribution hist;
          status = report.Report.status;
          evidence = report.Report.evidence;
        }
    | Error e -> failwith (Format.asprintf "fig5: attestation failed: %a" Cloud.Customer.pp_error e)
  in
  let covert = attest_of "mallory" sender_vid "covert-channel sender" in
  let benign = attest_of "bob" benign_vid "benign CPU-bound VM" in
  { covert; benign }

let print_distribution (vm : vm_result) =
  Printf.printf "\n%s  --  %s\n" vm.label
    (Format.asprintf "%a" Report.pp_status vm.status);
  Printf.printf "  evidence: %s\n" vm.evidence;
  Printf.printf "  %-14s %-12s\n" "interval bin" "probability";
  Array.iteri
    (fun i p ->
      if p > 0.001 then
        Printf.printf "  (%2d,%2d] ms     %.3f  %s\n" i (i + 1) p (Common.bar (p *. 4.0)))
    vm.distribution

let print r =
  Common.section "Figure 5: covert-channel measurement distributions";
  print_distribution r.covert;
  print_distribution r.benign
